#!/usr/bin/env python3
"""Bench regression gate.

Compares a fresh `hft bench --quick` run against the committed
BENCH_hft.json baseline, row by (bench, flow) row:

- `fsim_events` and `podem_backtracks` are deterministic engine
  counters: an increase beyond --tolerance is a hard failure (the
  fault-processing pipeline got less incremental, or the search
  changed shape unannounced).
- `wall_ms.atpg` is reported as a speedup ratio for every row.  Wall
  clock is noisy on shared CI runners, so it only fails when the
  fresh run is slower than the baseline by more than --atpg-slack.
- `waterfall` (the fault-forensics ledger's per-outcome class/fault
  tallies) is fully deterministic: any drift from the baseline is a
  hard failure — a fault silently moved between drop-detected /
  PODEM-detected / aborted / untestable.  Rows whose baseline predates
  the field are skipped.
- `guided` (the static-analysis-guided re-run) is gated on its
  soundness contract: `verdict_flips` must be 0 (a Test<->Untestable
  disagreement between the guided and unguided runs is a guidance
  soundness bug), the guided aborted-class count must not exceed the
  unguided run's (guidance may only move classes OUT of the aborted
  bucket), and it must not regress against the baseline's guided
  aborted-class count.  Rows whose baseline predates the field only
  check the first two.

Exit status 0 = pass, 1 = regression, 2 = usage/schema problem.
"""

import argparse
import json
import sys


def rows_by_key(doc):
    if doc.get("schema") != "hft-bench/1":
        sys.exit(f"unexpected bench schema: {doc.get('schema')!r}")
    return {(r["bench"], r["flow"]): r for r in doc["results"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_hft.json")
    ap.add_argument("--fresh", required=True, help="bench output from this run")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=1.0,
        help="allowed counter growth factor (default: exact match or better)",
    )
    ap.add_argument(
        "--atpg-slack",
        type=float,
        default=3.0,
        help="fail when fresh atpg wall time exceeds baseline by this factor",
    )
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = rows_by_key(json.load(f))
        with open(args.fresh) as f:
            fresh = rows_by_key(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"cannot load bench files: {e}")

    missing = sorted(set(base) - set(fresh))
    if missing:
        print(f"FAIL: rows missing from fresh run: {missing}")
        return 1

    failures = 0
    print(f"{'bench':8} {'flow':14} {'atpg ms':>16} {'events':>14} {'backtracks':>14}")
    for key in sorted(base):
        b, f = base[key], fresh[key]
        b_ms, f_ms = b["wall_ms"]["atpg"], f["wall_ms"]["atpg"]
        ratio = b_ms / f_ms if f_ms > 0 else float("inf")
        verdicts = []
        for field in ("fsim_events", "podem_backtracks"):
            if f[field] > b[field] * args.tolerance:
                verdicts.append(f"{field} {b[field]} -> {f[field]}")
        if f_ms > b_ms * args.atpg_slack:
            verdicts.append(f"atpg {b_ms}ms -> {f_ms}ms")
        if "waterfall" in b and b["waterfall"] != f.get("waterfall"):
            verdicts.append(
                f"waterfall drift {b['waterfall']} -> {f.get('waterfall')}"
            )
        fg = f.get("guided")
        if "guided" in b and fg is None:
            verdicts.append("guided sub-object missing from fresh run")
        if fg is not None:
            flips = fg.get("verdict_flips", 0)
            if flips:
                verdicts.append(f"{flips} guided verdict flip(s)")
            g_aborted = fg["waterfall"]["aborted"]["classes"]
            u_aborted = f["waterfall"]["aborted"]["classes"]
            if g_aborted > u_aborted:
                verdicts.append(
                    f"guided aborted classes {g_aborted} exceed unguided {u_aborted}"
                )
            if "guided" in b:
                b_aborted = b["guided"]["waterfall"]["aborted"]["classes"]
                if g_aborted > b_aborted:
                    verdicts.append(
                        f"guided aborted classes {b_aborted} -> {g_aborted}"
                    )
        status = "ok" if not verdicts else "FAIL " + "; ".join(verdicts)
        print(
            f"{key[0]:8} {key[1]:14} {b_ms:7.2f}->{f_ms:6.2f} "
            f"{b['fsim_events']:>6}->{f['fsim_events']:<6} "
            f"{b['podem_backtracks']:>6}->{f['podem_backtracks']:<6} "
            f"[{ratio:4.1f}x] {status}"
        )
        failures += bool(verdicts)

    if failures:
        print(f"\n{failures} row(s) regressed")
        return 1
    print("\nall rows within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
