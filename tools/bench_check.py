#!/usr/bin/env python3
"""Bench regression gate.

Compares a fresh `hft bench --quick` run against the committed
BENCH_hft.json baseline, row by (bench, flow) row:

- `fsim_events` and `podem_backtracks` are deterministic engine
  counters: an increase beyond --tolerance is a hard failure (the
  fault-processing pipeline got less incremental, or the search
  changed shape unannounced).
- `wall_ms.atpg` is reported as a speedup ratio for every row.  Wall
  clock is noisy on shared CI runners, so it only fails when the
  fresh run is slower than the baseline by more than --atpg-slack.
- `waterfall` (the fault-forensics ledger's per-outcome class/fault
  tallies) is fully deterministic: any drift from the baseline is a
  hard failure — a fault silently moved between drop-detected /
  PODEM-detected / aborted / untestable.  Rows whose baseline predates
  the field are skipped.
- `guided` (the static-analysis-guided re-run) is gated on its
  soundness contract: `verdict_flips` must be 0 (a Test<->Untestable
  disagreement between the guided and unguided runs is a guidance
  soundness bug), the guided aborted-class count must not exceed the
  unguided run's (guidance may only move classes OUT of the aborted
  bucket), and it must not regress against the baseline's guided
  aborted-class count.  Rows whose baseline predates the field only
  check the first two.
- `jobs_matrix` (the unguided leg re-run at several domain counts, from
  `hft bench --jobs`) is gated on the parallel engine's determinism
  contract: every leg's `faults`, `podem_backtracks`, `fsim_events`,
  `atpg_coverage`, `fsim_coverage` and `waterfall` must be bit-identical
  to the cell's sequential fields — any drift is a hard failure (the
  sharded campaign did different engine work).  Every leg must also
  carry a `parallel` scheduler-telemetry object with a `utilization`
  figure, and that object's accounting must conserve (hard failures):
  `spec_hits + spec_misses + inline == tasks` (every dispatched task
  lands in exactly one commit bucket) and the per-worker `classes`
  fields must sum to the cell waterfall's class count (every committed
  class is attributed to exactly one worker).  Speedups are always
  reported; `--min-speedup` additionally requires the best measured
  multi-job speedup to reach the threshold on at least one cell, but
  only when the producing host had at least as many cores as the
  largest jobs count (`host_cores` in the fresh document) — wall-clock
  parallel speedup is not measurable on fewer cores than domains.
  `--require-jobs-matrix` makes a fresh run without any matrix a
  failure (so CI cannot silently drop the leg).

Live-telemetry gates (the hft-progress/1 stream must be a provable
no-op on the engines):

- `--progress-fresh FILE` names a second fresh bench run made with
  --progress-out.  Its legacy counters (`faults`, `podem_backtracks`,
  `fsim_events`, `waterfall`) must be bit-identical to the plain fresh
  run's, and its atpg wall time is bounded by --progress-slack times
  the plain run's (streaming buys observability with bounded
  overhead, never with different engine work).
- `--progress-stream FILE` names the JSONL stream that run emitted.
  Sequence numbers must be strictly monotone, the stream must carry
  at least --min-snapshots intermediate snapshots and end with a
  stream_end terminator, and each campaign's final snapshot waterfall
  must bit-match the matching bench cell (labels
  `<bench>/<flow>/unguided` and `.../guided`).

Exit status 0 = pass, 1 = regression, 2 = usage/schema problem.
"""

import argparse
import json
import sys


def rows_by_key(doc):
    if doc.get("schema") != "hft-bench/1":
        sys.exit(f"unexpected bench schema: {doc.get('schema')!r}")
    return {(r["bench"], r["flow"]): r for r in doc["results"]}


def check_parallel_stats(leg, cell):
    """Conservation-law gate on one jobs leg's scheduler telemetry."""
    j = leg.get("jobs")
    par = leg.get("parallel")
    if not isinstance(par, dict):
        return [f"-j{j} missing parallel telemetry object"]
    verdicts = []
    if not isinstance(par.get("utilization"), (int, float)):
        verdicts.append(f"-j{j} parallel.utilization missing")
    if par.get("jobs") != j:
        verdicts.append(f"-j{j} parallel.jobs says {par.get('jobs')}")
    tasks = par.get("tasks", 0)
    buckets = (
        par.get("spec_hits", 0) + par.get("spec_misses", 0) + par.get("inline", 0)
    )
    if buckets != tasks:
        verdicts.append(
            f"-j{j} task bucketing broken: hits+misses+inline {buckets} "
            f"!= tasks {tasks}"
        )
    workers = par.get("workers")
    if not isinstance(workers, list) or len(workers) != j:
        verdicts.append(f"-j{j} expected {j} worker record(s)")
        workers = []
    w_classes = sum(w.get("classes", 0) for w in workers)
    cell_classes = (cell.get("waterfall") or {}).get("classes")
    if workers and cell_classes is not None and w_classes != cell_classes:
        verdicts.append(
            f"-j{j} class attribution broken: sum worker classes "
            f"{w_classes} != waterfall classes {cell_classes}"
        )
    if workers:
        steals = sum(w.get("steals", 0) for w in workers)
        stolen = sum(w.get("stolen", 0) for w in workers)
        if steals != stolen:
            verdicts.append(
                f"-j{j} steal asymmetry: {steals} performed != {stolen} suffered"
            )
    return verdicts


def check_jobs_matrix(fresh, host_cores, min_speedup, require):
    """Gate the parallel-ATPG legs: bit-identical engine work at every
    jobs count, with speedup enforced only where it is measurable."""
    failures = 0
    best = None  # (speedup, key, jobs)
    max_jobs = 0
    seen = 0
    for key in sorted(fresh):
        cell = fresh[key]
        matrix = cell.get("jobs_matrix")
        if not matrix:
            continue
        seen += 1
        verdicts = []
        walls = {}
        for leg in matrix:
            j = leg.get("jobs")
            max_jobs = max(max_jobs, j or 0)
            walls[j] = leg.get("wall_ms_atpg")
            for field in (
                "faults",
                "podem_backtracks",
                "fsim_events",
                "atpg_coverage",
                "fsim_coverage",
                "waterfall",
            ):
                if leg.get(field) != cell.get(field):
                    verdicts.append(
                        f"-j{j} {field} {cell.get(field)} != {leg.get(field)}"
                    )
            verdicts.extend(check_parallel_stats(leg, cell))
        w1 = walls.get(1)
        for j, w in sorted(walls.items()):
            if j != 1 and w1 and w:
                s = w1 / w
                if best is None or s > best[0]:
                    best = (s, key, j)
        status = "ok" if not verdicts else "FAIL " + "; ".join(verdicts)
        speedups = " ".join(
            f"-j{j}:{w1 / w:4.2f}x"
            for j, w in sorted(walls.items())
            if j != 1 and w1 and w
        )
        print(f"jobs     {key[0]:8} {key[1]:14} {speedups:24} {status}")
        failures += bool(verdicts)
    if require and not seen:
        print("FAIL: no jobs_matrix in the fresh run (bench --jobs leg missing)")
        failures += 1
    if seen and best:
        s, key, j = best
        print(
            f"jobs     best speedup {s:.2f}x at -j{j} on {key[0]}/{key[1]} "
            f"(host cores: {host_cores})"
        )
        if min_speedup is not None:
            if host_cores is not None and host_cores < max_jobs:
                print(
                    f"jobs     speedup threshold {min_speedup}x not enforced: "
                    f"host has {host_cores} core(s) < {max_jobs} jobs"
                )
            elif s < min_speedup:
                print(
                    f"FAIL: best jobs speedup {s:.2f}x below required "
                    f"{min_speedup}x"
                )
                failures += 1
    return failures


def check_progress_fresh(fresh, path, slack):
    """The streamed bench run must do bit-identical engine work."""
    try:
        with open(path) as f:
            streamed = rows_by_key(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"cannot load {path}: {e}")
    failures = 0
    missing = sorted(set(fresh) - set(streamed))
    if missing:
        print(f"FAIL: rows missing from progress run: {missing}")
        failures += 1
    for key in sorted(set(fresh) & set(streamed)):
        p, f = streamed[key], fresh[key]
        verdicts = []
        for field in ("faults", "podem_backtracks", "fsim_events", "waterfall"):
            if p.get(field) != f.get(field):
                verdicts.append(
                    f"{field} {f.get(field)} != {p.get(field)} under streaming"
                )
        if "guided" in f and "guided" in p:
            for field in ("podem_backtracks", "waterfall"):
                if p["guided"].get(field) != f["guided"].get(field):
                    verdicts.append(f"guided {field} differs under streaming")
        f_ms, p_ms = f["wall_ms"]["atpg"], p["wall_ms"]["atpg"]
        if p_ms > f_ms * slack:
            verdicts.append(
                f"streaming overhead unbounded: atpg {f_ms}ms -> {p_ms}ms"
            )
        status = "ok" if not verdicts else "FAIL " + "; ".join(verdicts)
        print(f"progress {key[0]:8} {key[1]:14} {status}")
        failures += bool(verdicts)
    return failures


def check_progress_stream(path, fresh, min_snapshots):
    """Lint the hft-progress/1 tape and tie its final snapshots to the
    bench cells the same process wrote."""
    try:
        with open(path) as f:
            events = [json.loads(l) for l in f if l.strip()]
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"cannot parse progress stream {path}: {e}")
    failures = 0

    def fail(msg):
        nonlocal failures
        print(f"progress stream FAIL: {msg}")
        failures += 1

    if not events:
        fail("empty stream")
        return failures
    last_seq = -1
    for ev in events:
        if ev.get("schema") != "hft-progress/1":
            fail(f"bad schema on event {ev.get('seq')}: {ev.get('schema')!r}")
        seq = ev.get("seq", -1)
        if seq <= last_seq:
            fail(f"seq not strictly monotone at {seq} (after {last_seq})")
        last_seq = seq
    snapshots = [e for e in events if e.get("type") == "snapshot"]
    intermediate = [e for e in snapshots if not e.get("final")]
    if len(intermediate) < min_snapshots:
        fail(
            f"only {len(intermediate)} intermediate snapshot(s), "
            f"need {min_snapshots}"
        )
    if events[-1].get("type") != "stream_end":
        fail(f"stream not terminated (last event: {events[-1].get('type')!r})")
    finals = [e for e in snapshots if e.get("final")]
    matched = 0
    for ev in finals:
        label = ev.get("campaign") or ""
        parts = label.split("/")
        if len(parts) != 3:
            continue
        bench, flow, leg = parts
        cell = fresh.get((bench, flow))
        if cell is None:
            fail(f"final snapshot for unknown bench cell {label}")
            continue
        # Prefix match: the jobs-matrix legs are labelled unguided-jN
        # and must land on the same waterfall as the sequential cell
        # (the parallel engine's bit-identity contract).
        if leg.startswith("unguided"):
            want = cell.get("waterfall")
        elif leg.startswith("guided"):
            want = cell.get("guided", {}).get("waterfall")
        else:
            want = None
        if want is None:
            continue
        if ev.get("waterfall") != want:
            fail(
                f"{label}: final snapshot waterfall {ev.get('waterfall')} "
                f"!= bench cell {want}"
            )
        else:
            matched += 1
    if finals and not matched and fresh:
        fail("no final snapshot matched a bench cell label")
    print(
        f"progress stream: {len(events)} events, "
        f"{len(intermediate)} intermediate snapshot(s), "
        f"{len(finals)} final(s), {matched} matched bench cells"
    )
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_hft.json")
    ap.add_argument("--fresh", required=True, help="bench output from this run")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=1.0,
        help="allowed counter growth factor (default: exact match or better)",
    )
    ap.add_argument(
        "--atpg-slack",
        type=float,
        default=3.0,
        help="fail when fresh atpg wall time exceeds baseline by this factor",
    )
    ap.add_argument(
        "--progress-fresh",
        help="bench output from a --progress-out run; its legacy counters "
        "must be bit-identical to --fresh",
    )
    ap.add_argument(
        "--progress-slack",
        type=float,
        default=3.0,
        help="fail when the --progress-fresh atpg wall time exceeds the "
        "plain fresh run by this factor",
    )
    ap.add_argument(
        "--progress-stream",
        help="hft-progress/1 JSONL emitted by the --progress-fresh run",
    )
    ap.add_argument(
        "--min-snapshots",
        type=int,
        default=2,
        help="minimum intermediate snapshots required in --progress-stream",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        help="require the best jobs_matrix speedup to reach this factor on "
        "at least one cell (only enforced when host_cores >= max jobs)",
    )
    ap.add_argument(
        "--require-jobs-matrix",
        action="store_true",
        help="fail when the fresh run carries no jobs_matrix at all",
    )
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = rows_by_key(json.load(f))
        with open(args.fresh) as f:
            fresh_doc = json.load(f)
        fresh = rows_by_key(fresh_doc)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"cannot load bench files: {e}")

    missing = sorted(set(base) - set(fresh))
    if missing:
        print(f"FAIL: rows missing from fresh run: {missing}")
        return 1

    failures = 0
    print(f"{'bench':8} {'flow':14} {'atpg ms':>16} {'events':>14} {'backtracks':>14}")
    for key in sorted(base):
        b, f = base[key], fresh[key]
        b_ms, f_ms = b["wall_ms"]["atpg"], f["wall_ms"]["atpg"]
        ratio = b_ms / f_ms if f_ms > 0 else float("inf")
        verdicts = []
        for field in ("fsim_events", "podem_backtracks"):
            if f[field] > b[field] * args.tolerance:
                verdicts.append(f"{field} {b[field]} -> {f[field]}")
        if f_ms > b_ms * args.atpg_slack:
            verdicts.append(f"atpg {b_ms}ms -> {f_ms}ms")
        if "waterfall" in b and b["waterfall"] != f.get("waterfall"):
            verdicts.append(
                f"waterfall drift {b['waterfall']} -> {f.get('waterfall')}"
            )
        fg = f.get("guided")
        if "guided" in b and fg is None:
            verdicts.append("guided sub-object missing from fresh run")
        if fg is not None:
            flips = fg.get("verdict_flips", 0)
            if flips:
                verdicts.append(f"{flips} guided verdict flip(s)")
            g_aborted = fg["waterfall"]["aborted"]["classes"]
            u_aborted = f["waterfall"]["aborted"]["classes"]
            if g_aborted > u_aborted:
                verdicts.append(
                    f"guided aborted classes {g_aborted} exceed unguided {u_aborted}"
                )
            if "guided" in b:
                b_aborted = b["guided"]["waterfall"]["aborted"]["classes"]
                if g_aborted > b_aborted:
                    verdicts.append(
                        f"guided aborted classes {b_aborted} -> {g_aborted}"
                    )
        status = "ok" if not verdicts else "FAIL " + "; ".join(verdicts)
        print(
            f"{key[0]:8} {key[1]:14} {b_ms:7.2f}->{f_ms:6.2f} "
            f"{b['fsim_events']:>6}->{f['fsim_events']:<6} "
            f"{b['podem_backtracks']:>6}->{f['podem_backtracks']:<6} "
            f"[{ratio:4.1f}x] {status}"
        )
        failures += bool(verdicts)

    failures += check_jobs_matrix(
        fresh,
        fresh_doc.get("host_cores"),
        args.min_speedup,
        args.require_jobs_matrix,
    )

    if args.progress_fresh:
        failures += check_progress_fresh(
            fresh, args.progress_fresh, args.progress_slack
        )
    if args.progress_stream:
        failures += check_progress_stream(
            args.progress_stream, fresh, args.min_snapshots
        )

    if failures:
        print(f"\n{failures} check(s) regressed")
        return 1
    print("\nall rows within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
