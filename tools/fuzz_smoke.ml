(* Fuzz smoke: differential and chaos checks over seeded random
   sequential netlists (Netlist_gen).  Per circuit:

   1. fault-simulation differential — the naive (full-resimulation) and
      cone-limited strategies must report the same detected set;
   2. ATPG differential — per-fault outcomes of the Naive and Drop
      engines may differ in effort (aborts), but a fault detected by
      one and proved untestable by the other is a soundness bug;
   3. every generation-time detection claim must be confirmed by an
      independent replay;
   4. with chaos injections armed at every engine site, the supervised
      campaign must still terminate, conserve outcomes and make only
      sound detection claims;
   5. guided-vs-unguided PODEM differential — under static-analysis
      guidance (Hft_analysis.Guidance) a per-fault verdict may only
      improve (Aborted -> Test/Untestable).  A Test<->Untestable
      disagreement, a guided abort where the unguided search concluded,
      or a guided test the fault simulator rejects is a soundness bug
      in the guidance layer; the offending fault is printed as the
      minimized reproducer;
   6. parallel differential — the domain-pool-sharded campaign
      (jobs = 4) must reproduce the sequential Drop run bit for bit:
      stats, per-fault outcomes, generated test set and the ledger
      waterfall.  Any drift is a determinism bug in the sharding
      (speculation committed out of order, or a worker-side write that
      escaped its telemetry tape).

   Usage: fuzz_smoke [N_CIRCUITS] [BASE_SEED].  Exit 1 on any failure,
   with the offending seed on stderr (the generator is seed-determined,
   so that seed is the whole reproducer). *)

open Hft_gate

let failures = ref 0

let fail seed fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "fuzz FAIL seed=%d: %s\n%!" seed msg)
    fmt

(* Per-fault outcome kinds from the ledger of the last run. *)
let outcome_map () =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (row : Hft_obs.Ledger.row) ->
      let kind = Hft_obs.Ledger.resolution_key row.lr_resolution in
      List.iter (fun m -> Hashtbl.replace tbl m kind) row.lr_members)
    (Hft_obs.Ledger.rows ());
  tbl

let is_detected k =
  List.mem k [ "drop_detected"; "podem_detected"; "salvaged" ]

let check_circuit seed =
  let nl = Netlist_gen.sequential ~seed ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let faults = Fault.collapsed nl in
  let scanned = List.filteri (fun i _ -> i mod 2 = 0) (Netlist.dffs nl) in
  let detected strategy =
    let rng = Hft_util.Rng.create ((seed * 3) + 1) in
    (Fsim.comb_random ~strategy nl ~rng ~n_patterns:32 faults).Fsim.detected
    |> List.sort compare
  in
  if detected Fsim.Naive <> detected Fsim.Cone then
    fail seed "fsim naive/cone detected sets differ";
  let run_atpg ?(jobs = 1) strategy on_test =
    Hft_obs.reset ();
    let stats =
      Seq_atpg.run ~backtrack_limit:30 ~max_frames:3 ~strategy ~jobs ?on_test
        nl ~faults ~scanned
    in
    (stats, outcome_map ())
  in
  let conservation tag (s : Seq_atpg.stats) =
    if s.detected + s.untestable + s.aborted <> s.total then
      fail seed "%s: outcome conservation violated (%d+%d+%d <> %d)" tag
        s.detected s.untestable s.aborted s.total
  in
  let tests = ref [] in
  let s_naive, o_naive = run_atpg Seq_atpg.Naive None in
  let s_drop, o_drop =
    run_atpg Seq_atpg.Drop (Some (fun t -> tests := t :: !tests))
  in
  conservation "naive" s_naive;
  conservation "drop" s_drop;
  (* 6. Parallel differential: same engine, sharded over 4 domains. *)
  let wf_drop = Hft_util.Json.to_string (Hft_obs.Ledger.waterfall_json ()) in
  let par_tests = ref [] in
  let s_par, o_par =
    run_atpg ~jobs:4 Seq_atpg.Drop (Some (fun t -> par_tests := t :: !par_tests))
  in
  let wf_par = Hft_util.Json.to_string (Hft_obs.Ledger.waterfall_json ()) in
  if s_par <> s_drop then fail seed "parallel differential: stats differ";
  if wf_par <> wf_drop then
    fail seed "parallel differential: waterfall differs (%s vs %s)" wf_drop
      wf_par;
  if !par_tests <> !tests then
    fail seed "parallel differential: generated test sets differ";
  let bindings tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  if bindings o_par <> bindings o_drop then
    fail seed "parallel differential: per-fault outcomes differ";
  Hashtbl.iter
    (fun f k1 ->
      match Hashtbl.find_opt o_drop f with
      | None -> fail seed "fault %s missing from drop ledger" f
      | Some k2 ->
        if
          (is_detected k1 && k2 = "untestable")
          || (k1 = "untestable" && is_detected k2)
        then fail seed "fault %s: naive says %s, drop says %s" f k1 k2)
    o_naive;
  let confirm tag tests =
    let claimed =
      List.concat_map (fun t -> t.Seq_atpg.t_detects) tests
      |> List.sort_uniq compare
    in
    let _, undet = Seq_atpg.replay nl ~scanned ~tests claimed in
    if undet <> [] then
      fail seed "%s: %d claimed detection(s) fail to replay" tag
        (List.length undet)
  in
  confirm "chaos-off" !tests;
  let chaos_tests = ref [] in
  (match
     Hft_robust.Chaos.with_config
       {
         Hft_robust.Chaos.seed = (seed * 7) + 5;
         prob = 0.2;
         sites =
           [ Hft_robust.Chaos.Podem; Hft_robust.Chaos.Fsim;
             Hft_robust.Chaos.Collapse ];
         arm_after = 0;
       }
       (fun () ->
         Hft_obs.reset ();
         Seq_atpg.run ~backtrack_limit:30 ~max_frames:3
           ~strategy:Seq_atpg.Drop
           ~on_test:(fun t -> chaos_tests := t :: !chaos_tests)
           nl ~faults ~scanned)
   with
   | s -> conservation "chaos" s
   | exception e -> fail seed "chaos run escaped with %s" (Printexc.to_string e));
  confirm "chaos-on" !chaos_tests;
  (* 5. Guided differential, per fault on the full-scan view (every DFF
     a pseudo-PI, its D input a pseudo-PO) so each PODEM call is purely
     combinational and the oracle is exact. *)
  let dffs = Netlist.dffs nl in
  let assignable = Netlist.pis nl @ dffs in
  let observe =
    Netlist.pos nl @ List.map (fun d -> (Netlist.fanin nl d).(0)) dffs
  in
  let verdict = function
    | Podem.Test _ -> "test"
    | Podem.Untestable -> "untestable"
    | Podem.Aborted -> "aborted"
  in
  List.iter
    (fun f ->
      let unguided, _ =
        Podem.generate ~backtrack_limit:30 nl ~faults:[ f ] ~assignable
          ~observe
      in
      let guided, _ =
        Podem.generate ~backtrack_limit:30
          ~guidance:(Hft_analysis.Guidance.provide nl ~observe ~faults:[ f ])
          nl ~faults:[ f ] ~assignable ~observe
      in
      let ku = verdict unguided and kg = verdict guided in
      let repro () = Fault.to_string nl f in
      (match (unguided, guided) with
       | Podem.Test _, Podem.Untestable | Podem.Untestable, Podem.Test _ ->
         fail seed "guided differential: fault %s unguided=%s guided=%s"
           (repro ()) ku kg
       | _, Podem.Aborted when unguided <> Podem.Aborted ->
         fail seed
           "guided differential: fault %s regressed to aborted (unguided=%s)"
           (repro ()) ku
       | _ -> ());
      (* A guided test must actually detect the fault it targets
         (two-valued check is exact here: every source is assignable
         and unlisted sources default to 0, PODEM's X fill). *)
      match guided with
      | Podem.Test assign ->
        let det =
          Fsim.detect_groups nl ~assignment:assign ~observe [ [ f ] ]
        in
        if not det.(0) then
          fail seed "guided differential: test for %s fails replay" (repro ())
      | _ -> ())
    faults

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 25
  in
  let base =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1000
  in
  Hft_obs.enabled := true;
  for i = 0 to n - 1 do
    check_circuit (base + i)
  done;
  if !failures > 0 then begin
    Printf.eprintf "fuzz smoke: %d failure(s) over %d circuits\n%!" !failures n;
    exit 1
  end;
  Printf.printf "fuzz smoke: %d circuits ok (base seed %d)\n" n base
