(* Fuzz smoke: the Hft_fuzz differential oracles over seeded random
   sequential netlists.

   The six checks (fault-simulation differential, Naive-vs-Drop ATPG
   soundness, parallel bit-identity, replay confirmation, chaos-armed
   conservation, guided-vs-unguided PODEM) live in Hft_fuzz.Oracle —
   this tool is a thin driver that generates [N_CIRCUITS] circuits
   from [BASE_SEED] and runs the full oracle battery on each, so CI's
   quick smoke and the continuous `hft fuzz` campaign can never drift
   apart: they execute the same checks from the same module.

   Usage: fuzz_smoke [N_CIRCUITS] [BASE_SEED].  Exit 1 on any failure,
   with the offending seed on stderr (the generator is
   seed-determined, so that seed is the whole reproducer). *)

let () =
  let n_circuits =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 12
  in
  let base_seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1000
  in
  Hft_obs.enabled := true;
  let failures = ref 0 in
  for i = 0 to n_circuits - 1 do
    let seed = base_seed + i in
    let nl =
      Hft_gate.Netlist_gen.sequential ~seed ~n_pi:4 ~n_dff:3 ~n_gates:14
    in
    let report = Hft_fuzz.Oracle.run ~seed nl in
    List.iter
      (fun (f : Hft_fuzz.Oracle.finding) ->
        incr failures;
        Printf.eprintf "fuzz FAIL seed=%d [%s]: %s\n%!" seed
          f.Hft_fuzz.Oracle.f_check f.Hft_fuzz.Oracle.f_detail)
      report.Hft_fuzz.Oracle.r_findings
  done;
  if !failures > 0 then begin
    Printf.eprintf "fuzz smoke: %d failure(s) over %d circuit(s)\n%!"
      !failures n_circuits;
    exit 1
  end;
  Printf.printf "fuzz smoke: %d circuit(s) clean (6 oracles each)\n%!"
    n_circuits
