(* Crash-only campaign state ("hft-fuzz/1") on the shared checkpoint
   tape.

   The record stream is a sequence of trial transactions: zero or more
   [{"kind":"finding", ...}] lines followed by exactly one
   [{"kind":"trial", ...}] commit marker carrying the arm choice, the
   reward and the counts.  Every line is flushed (and chaos-checked)
   before the next, so a [kill -9] leaves a loadable prefix whose last
   transaction may be uncommitted; {!load} rolls those trailing finding
   lines back, and the campaign re-runs the interrupted trial
   deterministically — regenerating the same findings and the same
   reward, which is what makes resume bit-identical to the
   uninterrupted run.  The bandit is not serialized at all: it is
   rebuilt by replaying the committed (arm, reward) history through the
   same fixed-order float arithmetic. *)

open Hft_util

let schema = "hft-fuzz/1"

type finding_rec = {
  s_trial : int;
  s_fingerprint : string;
  s_check : string;
  s_detail : string;
  s_file : string;  (** corpus-relative reproducer file name *)
  s_canary : bool;
}

type trial_rec = {
  t_trial : int;
  t_arm : int;
  t_reward : float;
  t_findings : int;
  t_escalations : int;
  t_circuit_seed : int;
}

type t = {
  meta : Hft_robust.Checkpoint.meta;
  trials : trial_rec list;  (** committed, in trial order *)
  findings : finding_rec list;  (** committed, deduped, in append order *)
}

let finding_json f =
  Json.Obj
    [ ("kind", Json.String "finding");
      ("trial", Json.Int f.s_trial);
      ("fingerprint", Json.String f.s_fingerprint);
      ("check", Json.String f.s_check);
      ("detail", Json.String f.s_detail);
      ("file", Json.String f.s_file);
      ("canary", Json.Bool f.s_canary) ]

let trial_json t =
  Json.Obj
    [ ("kind", Json.String "trial");
      ("trial", Json.Int t.t_trial);
      ("arm", Json.Int t.t_arm);
      ("reward", Json.Float t.t_reward);
      ("findings", Json.Int t.t_findings);
      ("escalations", Json.Int t.t_escalations);
      ("circuit_seed", Json.Int t.t_circuit_seed) ]

let finding_of_json j =
  let str k =
    match Json.member k j with Some (Json.String s) -> Some s | _ -> None
  in
  let int k =
    match Json.member k j with Some (Json.Int i) -> Some i | _ -> None
  in
  match
    (int "trial", str "fingerprint", str "check", str "detail", str "file",
     Json.member "canary" j)
  with
  | ( Some s_trial, Some s_fingerprint, Some s_check, Some s_detail,
      Some s_file, Some (Json.Bool s_canary) ) ->
    Some { s_trial; s_fingerprint; s_check; s_detail; s_file; s_canary }
  | _ -> None

let trial_of_json j =
  let int k =
    match Json.member k j with Some (Json.Int i) -> Some i | _ -> None
  in
  let reward =
    match Json.member "reward" j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match
    (int "trial", int "arm", reward, int "findings", int "escalations",
     int "circuit_seed")
  with
  | ( Some t_trial, Some t_arm, Some t_reward, Some t_findings,
      Some t_escalations, Some t_circuit_seed ) ->
    Some { t_trial; t_arm; t_reward; t_findings; t_escalations;
           t_circuit_seed }
  | _ -> None

type writer = {
  w_tape : Hft_robust.Checkpoint.Tape.writer;
  mutable w_trials : int;
  mutable w_findings : int;
}

let create ~path ~meta =
  { w_tape = Hft_robust.Checkpoint.Tape.create ~path ~schema ~meta;
    w_trials = 0;
    w_findings = 0 }

let append_finding w f =
  Hft_robust.Checkpoint.Tape.emit w.w_tape (finding_json f);
  w.w_findings <- w.w_findings + 1

let append_trial w t =
  Hft_robust.Checkpoint.Tape.emit w.w_tape (trial_json t);
  w.w_trials <- w.w_trials + 1;
  Hft_obs.Journal.record
    (Hft_obs.Journal.Checkpoint { classes = w.w_trials; tests = w.w_findings })

let close w = Hft_robust.Checkpoint.Tape.close w.w_tape

(* Parse the committed prefix: walk the records keeping a pending
   finding buffer that only graduates when its trial commit marker
   arrives; whatever is pending at end-of-file was torn off by the
   crash and is discarded (the resumed campaign regenerates it).
   Findings dedup by fingerprint as belt and braces — a re-run trial
   rewrites its reproducer atomically under the same name. *)
let load ~path =
  match Hft_robust.Checkpoint.Tape.load ~path ~schema with
  | Error m -> Error m
  | Ok (meta, records) ->
    let seen = Hashtbl.create 32 in
    let trials = ref [] in
    let findings = ref [] in
    let pending = ref [] in
    let rec walk = function
      | [] -> Ok ()
      | r :: rest ->
        (match Json.member "kind" r with
         | Some (Json.String "finding") ->
           (match finding_of_json r with
            | Some f ->
              pending := f :: !pending;
              walk rest
            | None -> Error (path ^ ": malformed finding record"))
         | Some (Json.String "trial") ->
           (match trial_of_json r with
            | Some t ->
              let expected =
                match !trials with
                | [] -> 0
                | prev :: _ -> prev.t_trial + 1
              in
              if t.t_trial <> expected then
                Error
                  (Printf.sprintf "%s: trial %d committed out of order" path
                     t.t_trial)
              else begin
                List.iter
                  (fun f ->
                    if not (Hashtbl.mem seen f.s_fingerprint) then begin
                      Hashtbl.replace seen f.s_fingerprint ();
                      findings := f :: !findings
                    end)
                  (List.rev !pending);
                pending := [];
                trials := t :: !trials;
                walk rest
              end
            | None -> Error (path ^ ": malformed trial record"))
         | _ -> Error (path ^ ": record with unknown kind"))
    in
    (match walk records with
     | Error _ as e -> e
     | Ok () ->
       Ok { meta; trials = List.rev !trials; findings = List.rev !findings })

(* Resume: rewrite the committed prefix through a fresh tape (emit_raw,
   so the compaction consumes no chaos draws), atomically replace the
   file, and hand back a writer positioned after the last committed
   trial.  Uncommitted trailing finding lines — and a torn final line —
   vanish in the rewrite, so the resumed campaign's appends continue a
   clean transaction stream. *)
let resume ~path st =
  let tmp = path ^ ".compact" in
  let w = Hft_robust.Checkpoint.Tape.create ~path:tmp ~schema ~meta:st.meta in
  let by_trial = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_trial f.s_trial)
      in
      Hashtbl.replace by_trial f.s_trial (f :: prev))
    st.findings;
  List.iter
    (fun t ->
      List.iter
        (fun f -> Hft_robust.Checkpoint.Tape.emit_raw w (finding_json f))
        (List.rev
           (Option.value ~default:[] (Hashtbl.find_opt by_trial t.t_trial)));
      Hft_robust.Checkpoint.Tape.emit_raw w (trial_json t))
    st.trials;
  Hft_robust.Checkpoint.Tape.close w;
  Sys.rename tmp path;
  { w_tape = Hft_robust.Checkpoint.Tape.reopen ~path;
    w_trials = List.length st.trials;
    w_findings = List.length st.findings }
