(** The differential oracles of the fuzz campaign: every cross-engine
    agreement check, factored into one place so [tools/fuzz_smoke] and
    the continuous campaign can never drift apart.

    The six checks ({!check_names}):
    - [fsim-diff] — naive vs cone-limited fault simulation must agree
      on the detected set;
    - [atpg-diff] — a fault detected by one of Naive/Drop ATPG and
      proved untestable by the other is a soundness bug (plus outcome
      conservation on both);
    - [par-diff] — the jobs=4 sharded Drop campaign must reproduce the
      sequential one bit for bit (stats, outcomes, tests, waterfall);
    - [replay-confirm] — every generation-time detection claim must be
      confirmed by an independent replay;
    - [chaos-conservation] — with injections armed at every engine
      site the supervised campaign must terminate, conserve outcomes
      and make only sound claims;
    - [guided-diff] — a statically-guided PODEM verdict may only
      improve on the unguided one, and guided tests must replay.

    Checks are deterministic given (netlist, [seed], [canary]):
    derived RNG/chaos seeds are fixed functions of [seed] and engine
    deadlines are step budgets, never wall clocks.  Each check runs
    under {!Hft_robust.Supervisor.guard}, so hangs, crashes and chaos
    injections come back as findings, not exceptions.

    The checks reset and read the global {!Hft_obs} recorder; callers
    with live telemetry of their own must wrap calls in
    [Hft_obs.isolated]. *)

type finding = {
  f_check : string;  (** the {!check_names} entry that fired *)
  f_detail : string;  (** human-readable evidence *)
}

type report = {
  r_findings : finding list;
  r_escalations : int;  (** checks that died under the supervisor *)
}

val check_names : string list

(** Step budget (cooperative deadline ticks) per engine attempt;
    deterministic, unlike a wall clock. *)
val default_step_budget : int

(** Run one named check.  [canary] disables PODEM's propagation
    fallbacks for the ATPG differential, re-exposing the historical
    seed-4246 unsound-Untestable bug class.  Returns the findings and
    the escalation count (0 or 1).  Raises [Invalid_argument] on an
    unknown name. *)
val run_check :
  ?canary:bool -> ?step_budget:int -> name:string -> seed:int ->
  Hft_gate.Netlist.t -> finding list * int

(** Run every check in {!check_names} order. *)
val run :
  ?canary:bool -> ?step_budget:int -> seed:int -> Hft_gate.Netlist.t ->
  report
