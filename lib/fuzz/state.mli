(** Crash-only campaign state ("hft-fuzz/1") on the shared
    {!Hft_robust.Checkpoint.Tape}.

    The record stream is a sequence of trial transactions: zero or
    more finding records followed by one trial commit marker (arm
    choice, reward, counts).  {!load} returns only committed
    transactions, rolling back a torn tail; the campaign re-runs the
    interrupted trial deterministically, so resume is bit-identical to
    the uninterrupted run.  The bandit is never serialized — it is
    rebuilt by replaying the committed (arm, reward) history. *)

type finding_rec = {
  s_trial : int;
  s_fingerprint : string;
  s_check : string;
  s_detail : string;
  s_file : string;  (** corpus-relative reproducer file name *)
  s_canary : bool;
}

type trial_rec = {
  t_trial : int;
  t_arm : int;
  t_reward : float;
  t_findings : int;
  t_escalations : int;
  t_circuit_seed : int;
}

type t = {
  meta : Hft_robust.Checkpoint.meta;
  trials : trial_rec list;  (** committed, in trial order *)
  findings : finding_rec list;
      (** committed, deduped by fingerprint, in append order *)
}

val schema : string

type writer

(** Truncate/create [path] and write the header. *)
val create : path:string -> meta:Hft_robust.Checkpoint.meta -> writer

(** Chaos-checked, flushed appends: findings first, then the trial
    marker that commits them.  {!append_trial} also journals a
    [Checkpoint] event with the running totals. *)
val append_finding : writer -> finding_rec -> unit

val append_trial : writer -> trial_rec -> unit
val close : writer -> unit

(** Parse the committed prefix of a campaign file; trailing findings
    with no trial commit are rolled back.  [Error] on unreadable
    files, schema mismatch or mid-file corruption. *)
val load : path:string -> (t, string) result

(** Compact the file to its committed prefix (atomic rewrite; no chaos
    draws) and reopen it for appending after the last committed
    trial. *)
val resume : path:string -> t -> writer
