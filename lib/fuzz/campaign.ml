(* The continuous fuzz campaign: a LinUCB bandit steering a portfolio
   of netlist-generator configurations at the differential oracles.

   One trial = pick an arm, generate a circuit, run every oracle check
   on it (inside [Hft_obs.isolated], so the engines' telemetry never
   pollutes the campaign's own), minimize and persist whatever fired,
   reward the bandit, commit the trial to the hft-fuzz/1 state tape.
   Everything a trial does is a deterministic function of (campaign
   seed, trial number, committed history): circuit seeds derive from
   the campaign seed, oracle deadlines are step budgets, the bandit
   replays bit-identically from the committed (arm, reward) stream.
   The only nondeterministic input is the optional wall-clock duration
   budget, which can change *when* the campaign stops but never what
   any completed trial contains. *)

open Hft_gate
open Hft_util

type arm_kind = Generator of Netlist_gen.config | Regression

type arm = { a_name : string; a_kind : arm_kind }

(* The portfolio: one arm per structural failure hypothesis — depth,
   width, reconvergence, sequential-loop density, control domination,
   inversion chains — plus the regression arm, which replays the
   seed-4246 family against the PODEM canary (propagation fallbacks
   disabled) so the campaign proves on every run that it would still
   catch the historical unsound-Untestable bug. *)
let portfolio =
  let d = Netlist_gen.default in
  [ { a_name = "baseline"; a_kind = Generator d };
    { a_name = "deep";
      a_kind = Generator { d with g_window = 3; g_n_gates = 20 } };
    { a_name = "wide";
      a_kind = Generator { d with g_n_pi = 8; g_n_gates = 18 } };
    { a_name = "reconv";
      a_kind =
        Generator
          { d with g_hub_bias = 3; g_n_gates = 18;
            g_mix = Netlist_gen.Xor_heavy } };
    { a_name = "seq-dense";
      a_kind = Generator { d with g_n_dff = 6; g_n_gates = 16 } };
    { a_name = "mux-ctl";
      a_kind = Generator { d with g_n_gates = 16; g_mix = Netlist_gen.Mux_heavy } };
    { a_name = "chains";
      a_kind =
        Generator
          { d with g_window = 2; g_n_gates = 18;
            g_mix = Netlist_gen.Chain_heavy } };
    { a_name = "regression"; a_kind = Regression } ]

let arm_names = List.map (fun a -> a.a_name) portfolio
let n_arms = List.length portfolio
let arm_canary a = a.a_kind = Regression

(* Static per-arm context: bias plus the generator shape, each
   dimension normalized to the portfolio's range so no single feature
   dominates the ridge estimate. *)
let feature_dim = 7

let features a =
  let cfg =
    match a.a_kind with Generator c -> c | Regression -> Netlist_gen.default
  in
  let mix_idx =
    match cfg.Netlist_gen.g_mix with
    | Netlist_gen.Balanced -> 0.0
    | Netlist_gen.Xor_heavy -> 1.0
    | Netlist_gen.Mux_heavy -> 2.0
    | Netlist_gen.Chain_heavy -> 3.0
  in
  [| 1.0;
     float_of_int cfg.Netlist_gen.g_n_pi /. 8.0;
     float_of_int cfg.Netlist_gen.g_n_dff /. 8.0;
     float_of_int cfg.Netlist_gen.g_n_gates /. 24.0;
     float_of_int cfg.Netlist_gen.g_window /. 4.0;
     float_of_int cfg.Netlist_gen.g_hub_bias /. 4.0;
     mix_idx /. 4.0 |]

let contexts = Array.of_list (List.map features portfolio)

(* Reward shaping: a never-seen finding class is the jackpot, a known
   class re-found is mild evidence the arm probes real weaknesses, and
   an escalation (check crashed/hung under the supervisor) is worth
   keeping the arm warm even before the crash dedups to a class. *)
let reward ~fresh ~refound ~escalations =
  (3.0 *. float_of_int fresh)
  +. (1.0 *. float_of_int refound)
  +. (0.5 *. float_of_int escalations)

type cfg = {
  c_seed : int;
  c_trials : int;  (** total committed trials to reach (resume included) *)
  c_duration : float option;  (** optional wall-clock budget, seconds *)
  c_corpus : string;  (** corpus directory (created if missing) *)
  c_resume : bool;
  c_step_budget : int;
}

let default_cfg =
  { c_seed = 1; c_trials = 32; c_duration = None; c_corpus = "fuzz-corpus";
    c_resume = false; c_step_budget = Oracle.default_step_budget }

type arm_stat = { as_name : string; as_pulls : int; as_reward_sum : float }

type summary = {
  y_trials_run : int;  (** trials committed by this invocation *)
  y_trials_total : int;
  y_new_findings : int;
  y_refound : int;
  y_escalations : int;
  y_corpus_size : int;  (** distinct finding classes on disk *)
  y_real_findings : int;  (** distinct non-canary classes — the alarms *)
  y_arms : arm_stat list;
  y_stop : string;
  y_state_path : string;
  y_bandit : Json.t;  (** {!Linucb.state_json} — resume bit-identity probe *)
}

let summary_json y =
  Json.Obj
    [ ("schema", Json.String "hft-fuzz-summary/1");
      ("trials_run", Json.Int y.y_trials_run);
      ("trials_total", Json.Int y.y_trials_total);
      ("new_findings", Json.Int y.y_new_findings);
      ("refound", Json.Int y.y_refound);
      ("escalations", Json.Int y.y_escalations);
      ("corpus_size", Json.Int y.y_corpus_size);
      ("real_findings", Json.Int y.y_real_findings);
      ("stop", Json.String y.y_stop);
      ("state", Json.String y.y_state_path);
      ("arms",
       Json.List
         (List.map
            (fun a ->
              Json.Obj
                [ ("name", Json.String a.as_name);
                  ("pulls", Json.Int a.as_pulls);
                  ("reward_sum", Json.Float a.as_reward_sum) ])
            y.y_arms));
      ("bandit", y.y_bandit) ]

let state_file = "campaign.state"

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let meta_of cfg =
  [ ("seed", Json.Int cfg.c_seed);
    ("portfolio", Json.String (String.concat "," arm_names)) ]

let check_meta ~path cfg meta =
  let want = meta_of cfg in
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k meta with
      | Some v' when v' = v -> ()
      | got ->
        Hft_robust.Validation.fail ~site:"fuzz.resume"
          ~hint:"resume with the original --seed, or start a fresh corpus"
          (Printf.sprintf "%s: %s mismatch (campaign has %s, resume wants %s)"
             path k
             (match got with Some g -> Json.to_string g | None -> "nothing")
             (Json.to_string v)))
    want

(* Deterministic per-trial circuit seed.  Regression-arm seeds walk the
   4246 family by pull count instead, so the first regression pull
   always replays the exact historical failure. *)
let circuit_seed cfg ~trial = (cfg.c_seed * 1_000_003) + trial

let generate_for ~reg_pulls cfg arm ~trial =
  match arm.a_kind with
  | Generator g ->
    let seed = circuit_seed cfg ~trial in
    (seed, Netlist_gen.generate ~seed g)
  | Regression ->
    let seed = 4246 + reg_pulls in
    (seed, Netlist_gen.sequential ~seed ~n_pi:4 ~n_dff:3 ~n_gates:14)

(* Run the oracle (or one check) against a scratch recorder: the
   engines under test need observability on for their ledger outcome
   maps, but nothing they record may leak into the campaign's own
   metrics, journal or progress stream. *)
let oracle_run ~canary ~step_budget ~seed nl =
  Hft_obs.isolated (fun () ->
      Hft_obs.with_enabled true (fun () ->
          Oracle.run ~canary ~step_budget ~seed nl))

let oracle_recheck ~canary ~step_budget ~name ~seed nl =
  Hft_obs.isolated (fun () ->
      Hft_obs.with_enabled true (fun () ->
          let fs, _ = Oracle.run_check ~canary ~step_budget ~name ~seed nl in
          fs))

let metric_trials = "hft.fuzz.trials"
let metric_new = "hft.fuzz.findings.new"
let metric_refound = "hft.fuzz.findings.refound"
let metric_escalations = "hft.fuzz.escalations"
let metric_corpus = "hft.fuzz.corpus.size"
let metric_minimize = "hft.fuzz.minimize.steps"

let run cfg =
  mkdirs cfg.c_corpus;
  let path = Filename.concat cfg.c_corpus state_file in
  (* Committed history: replayed into the bandit and the dedup set so a
     resumed campaign continues the same trajectory. *)
  let prior =
    if cfg.c_resume then
      match State.load ~path with
      | Ok st ->
        check_meta ~path cfg st.State.meta;
        st
      | Error m ->
        Hft_robust.Validation.fail ~site:"fuzz.resume"
          ~hint:"pass the corpus directory of an interrupted campaign" m
    else { State.meta = meta_of cfg; trials = []; findings = [] }
  in
  let bandit = Linucb.create ~alpha:1.0 ~d:feature_dim ~arms:n_arms in
  let reward_sums = Array.make n_arms 0.0 in
  List.iter
    (fun (t : State.trial_rec) ->
      Linucb.update bandit ~arm:t.State.t_arm ~x:contexts.(t.State.t_arm)
        ~reward:t.State.t_reward;
      reward_sums.(t.State.t_arm) <-
        reward_sums.(t.State.t_arm) +. t.State.t_reward)
    prior.State.trials;
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (f : State.finding_rec) ->
      Hashtbl.replace seen f.State.s_fingerprint f.State.s_canary)
    prior.State.findings;
  let writer =
    if cfg.c_resume then State.resume ~path prior
    else State.create ~path ~meta:prior.State.meta
  in
  let start_trial = List.length prior.State.trials in
  let reg_arm =
    let rec idx i = function
      | [] -> -1
      | a :: _ when a.a_kind = Regression -> i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 portfolio
  in
  let reg_pulls = ref (if reg_arm >= 0 then Linucb.pulls bandit reg_arm else 0) in
  let t0 = Hft_obs.Clock.now () in
  let new_total = ref 0 and refound_total = ref 0 and esc_total = ref 0 in
  let trials_run = ref 0 in
  let stop = ref (if start_trial >= cfg.c_trials then "trials" else "") in
  Hft_obs.Progress.campaign_begin ~label:"fuzz"
    ~faults:(max 0 (cfg.c_trials - start_trial));
  Fun.protect
    ~finally:(fun () -> State.close writer)
    (fun () ->
      let trial = ref start_trial in
      while !stop = "" do
        let t = !trial in
        let arm_idx =
          if t < n_arms then t else Linucb.select bandit ~contexts
        in
        let arm = List.nth portfolio arm_idx in
        let canary = arm_canary arm in
        let seed, nl = generate_for ~reg_pulls:!reg_pulls cfg arm ~trial:t in
        if canary then incr reg_pulls;
        let cls =
          Hft_obs.Ledger.register_class
            ~rep:(Printf.sprintf "t%05d:%s" t arm.a_name)
            ~members:[ Printf.sprintf "t%05d:%s" t arm.a_name ]
        in
        let report =
          oracle_run ~canary ~step_budget:cfg.c_step_budget ~seed nl
        in
        let fresh = ref 0 and refound = ref 0 in
        let fingerprints = ref [] in
        List.iter
          (fun (f : Oracle.finding) ->
            let fp =
              Repro.fingerprint ~check:f.Oracle.f_check ~seed
                ~detail:f.Oracle.f_detail
            in
            fingerprints := fp :: !fingerprints;
            if Hashtbl.mem seen fp then incr refound
            else begin
              Hashtbl.replace seen fp canary;
              incr fresh;
              (* Shrink while the same check still fires, then persist a
                 self-contained reproducer and its state record — the
                 trial marker below commits both. *)
              let still_fails nl' =
                oracle_recheck ~canary ~step_budget:cfg.c_step_budget
                  ~name:f.Oracle.f_check ~seed nl'
                <> []
              in
              let reduced, steps = Minimize.reduce ~check:still_fails nl in
              Hft_obs.Registry.record metric_minimize (float_of_int steps);
              let repro =
                { Repro.p_fingerprint = fp;
                  p_check = f.Oracle.f_check;
                  p_detail = f.Oracle.f_detail;
                  p_seed = seed;
                  p_canary = canary;
                  p_arm = arm.a_name;
                  p_trial = t;
                  p_netlist = reduced;
                  p_original_nodes = Netlist.n_nodes nl;
                  p_minimize_steps = steps }
              in
              let _ = Repro.save ~dir:cfg.c_corpus repro in
              State.append_finding writer
                { State.s_trial = t;
                  s_fingerprint = fp;
                  s_check = f.Oracle.f_check;
                  s_detail = f.Oracle.f_detail;
                  s_file = Repro.filename repro;
                  s_canary = canary }
            end)
          report.Oracle.r_findings;
        let r =
          reward ~fresh:!fresh ~refound:!refound
            ~escalations:report.Oracle.r_escalations
        in
        Linucb.update bandit ~arm:arm_idx ~x:contexts.(arm_idx) ~reward:r;
        reward_sums.(arm_idx) <- reward_sums.(arm_idx) +. r;
        State.append_trial writer
          { State.t_trial = t;
            t_arm = arm_idx;
            t_reward = r;
            t_findings = !fresh + !refound;
            t_escalations = report.Oracle.r_escalations;
            t_circuit_seed = seed };
        new_total := !new_total + !fresh;
        refound_total := !refound_total + !refound;
        esc_total := !esc_total + report.Oracle.r_escalations;
        incr trials_run;
        Hft_obs.Registry.incr metric_trials;
        Hft_obs.Registry.incr ~by:!fresh metric_new;
        Hft_obs.Registry.incr ~by:!refound metric_refound;
        Hft_obs.Registry.incr ~by:report.Oracle.r_escalations
          metric_escalations;
        Hft_obs.Registry.set metric_corpus
          (float_of_int (Hashtbl.length seen));
        (* A clean trial resolves its watch class as proved-quiet; a
           finding-bearing one as aborted with the evidence attached —
           reusing the ledger taxonomy keeps `hft watch` working with no
           fuzz-specific stream events. *)
        Hft_obs.Ledger.resolve cls
          (if !fingerprints = [] then
             Hft_obs.Ledger.Proved_untestable { frames = 0 }
           else
             Hft_obs.Ledger.Aborted
               { budget = 0; frames = 0;
                 reason = Some (String.concat "," (List.rev !fingerprints)) });
        trial := t + 1;
        if !trial >= cfg.c_trials then stop := "trials"
        else
          match cfg.c_duration with
          | Some d when Hft_obs.Clock.now () -. t0 >= d -> stop := "duration"
          | _ -> ()
      done);
  Hft_obs.Progress.campaign_end ();
  let real =
    Hashtbl.fold (fun _ canary n -> if canary then n else n + 1) seen 0
  in
  {
    y_trials_run = !trials_run;
    y_trials_total = start_trial + !trials_run;
    y_new_findings = !new_total;
    y_refound = !refound_total;
    y_escalations = !esc_total;
    y_corpus_size = Hashtbl.length seen;
    y_real_findings = real;
    y_arms =
      List.mapi
        (fun i a ->
          { as_name = a.a_name;
            as_pulls = Linucb.pulls bandit i;
            as_reward_sum = reward_sums.(i) })
        portfolio;
    y_stop = !stop;
    y_state_path = path;
    y_bandit = Linucb.state_json bandit;
  }
