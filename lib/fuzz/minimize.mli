(** Greedy 1-minimal netlist reducer for fuzz findings.

    The move set is single-gate bypasses (replace a gate by one of its
    fanins, drop dead logic); [check] is re-run after every candidate
    reduction and only passing reductions are kept, so the result
    still reproduces the finding and no single remaining bypass can
    shrink it further.  PIs are never removed, keeping the generator
    interface stable. *)

(** [reduce ~check nl] returns the minimized netlist and the number of
    candidate reductions attempted (bounded, so minimization always
    terminates).  [check] must return [true] iff the finding still
    reproduces on its argument; it is never called on [nl] itself —
    callers pass netlists that already reproduce. *)
val reduce :
  check:(Hft_gate.Netlist.t -> bool) -> Hft_gate.Netlist.t ->
  Hft_gate.Netlist.t * int
