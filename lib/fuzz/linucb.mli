(** Linear-UCB contextual bandit over a fixed arm set (the fuzz
    campaign's generator portfolio).

    Per-arm state is the classic LinUCB pair (design matrix [A],
    reward vector [b]); {!select} scores every arm by
    [theta . x + alpha * sqrt(x . A^-1 x)] and returns the
    deterministic argmax (ties break to the lowest index).  All float
    arithmetic runs in a fixed order, so replaying a recorded
    [(arm, x, reward)] history rebuilds the matrices bit for bit —
    the property the crash-resilient campaign resume relies on. *)

type t

(** [create ~alpha ~d ~arms] — [alpha] is the exploration weight, [d]
    the context-feature dimension.  Every [A] starts as the identity,
    every [b] as zero. *)
val create : alpha:float -> d:int -> arms:int -> t

val arms : t -> int

(** Times {!update} has been applied to [arm]. *)
val pulls : t -> int -> int

(** UCB score of one arm under context [x] (length [d]). *)
val score : t -> arm:int -> x:float array -> float

(** Deterministic argmax of {!score} over [contexts] (one context per
    arm, lowest index wins ties). *)
val select : t -> contexts:float array array -> int

(** Rank-one update: [A += x x^T], [b += reward * x]. *)
val update : t -> arm:int -> x:float array -> reward:float -> unit

(** The full float state through Json's exact float printer — two
    bandits render equal iff their matrices are bit-identical (used by
    the resume bit-identity tests). *)
val state_json : t -> Hft_util.Json.t
