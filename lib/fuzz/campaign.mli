(** The continuous fuzz campaign: a LinUCB contextual bandit
    ({!Linucb}) steering a portfolio of generator configurations at
    the differential oracles ({!Oracle}), with crash-only state
    ({!State}) and self-contained minimized reproducers ({!Repro}) in
    a corpus directory.

    Trials are deterministic functions of (campaign seed, trial
    number, committed history); the optional wall-clock duration
    budget only affects when the campaign stops, never what a
    committed trial contains.  [kill -9] at any point, then
    [c_resume = true]: the state tape's committed prefix replays the
    bandit bit-identically and the interrupted trial re-runs from
    scratch, reproducing the uninterrupted run's findings, arm choices
    and corpus exactly.

    One arm is the {e regression} arm: it replays the seed-4246 family
    against the PODEM canary ([propagation_fallbacks_enabled := false]
    for its ATPG differential), so every campaign proves the
    historical unsound-Untestable bug class would still be caught.
    Canary findings are expected and excluded from [y_real_findings]. *)

type cfg = {
  c_seed : int;
  c_trials : int;  (** total committed trials to reach (resume included) *)
  c_duration : float option;  (** optional wall-clock budget, seconds *)
  c_corpus : string;  (** corpus directory (created if missing) *)
  c_resume : bool;
  c_step_budget : int;  (** per-engine-attempt deadline, in steps *)
}

val default_cfg : cfg

(** Portfolio arm names, in arm-index order (the bandit's arm ids). *)
val arm_names : string list

(** The state tape's file name inside the corpus directory. *)
val state_file : string

type arm_stat = { as_name : string; as_pulls : int; as_reward_sum : float }

type summary = {
  y_trials_run : int;  (** trials committed by this invocation *)
  y_trials_total : int;
  y_new_findings : int;
  y_refound : int;
  y_escalations : int;
  y_corpus_size : int;  (** distinct finding classes on disk *)
  y_real_findings : int;  (** distinct non-canary classes — the alarms *)
  y_arms : arm_stat list;
  y_stop : string;  (** ["trials"] or ["duration"] *)
  y_state_path : string;
  y_bandit : Hft_util.Json.t;
      (** {!Linucb.state_json} — the resume bit-identity probe *)
}

val summary_json : summary -> Hft_util.Json.t

(** Run (or resume) a campaign.  Raises
    {!Hft_robust.Validation.Invalid} on a resume mismatch (missing or
    foreign state file, different seed/portfolio). *)
val run : cfg -> summary
