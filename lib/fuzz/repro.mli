(** Self-contained reproducer files ("hft-repro/1").

    One JSON document per finding: the minimized netlist itself (not
    its generation recipe), the oracle check, seed and canary flag
    needed to re-run it, and provenance.  {!replay} needs nothing but
    the file, so committed reproducers keep working as the generator
    portfolio evolves. *)

type t = {
  p_fingerprint : string;  (** {!fingerprint} of the finding class *)
  p_check : string;  (** the {!Oracle.check_names} entry that fired *)
  p_detail : string;
  p_seed : int;  (** oracle seed to replay with *)
  p_canary : bool;  (** replay with the PODEM canary armed *)
  p_arm : string;  (** portfolio arm that generated the circuit *)
  p_trial : int;
  p_netlist : Hft_gate.Netlist.t;
  p_original_nodes : int;  (** node count before minimization *)
  p_minimize_steps : int;
}

val schema : string

(** Stable identity of a finding class: MD5 over (check, seed, detail)
    — deliberately netlist-free so pre- and post-minimization forms of
    the same bug dedup to one corpus entry. *)
val fingerprint : check:string -> seed:int -> detail:string -> string

val to_json : t -> Hft_util.Json.t
val of_json : Hft_util.Json.t -> (t, string) result

(** Corpus file name, derived from the fingerprint. *)
val filename : t -> string

(** Atomic write (tmp + rename) into [dir]; returns the path. *)
val save : dir:string -> t -> string

val load : string -> (t, string) result

(** Re-run the stored check on the stored netlist; the finding
    reproduces iff the result is non-empty.  Runs against a fresh,
    isolated recorder, so it works (and stays silent) regardless of
    the caller's observability state. *)
val replay : t -> Oracle.finding list
