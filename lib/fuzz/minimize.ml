(* Greedy 1-minimal netlist reducer for fuzz findings.

   The reduction move is a bypass: pick a live gate [v] and one of its
   fanins [s], rewrite every reference to [v] as a reference to [s],
   then drop [v] and any logic that became dead.  Each candidate
   reduction is accepted only if the caller's [check] still fires on
   the rebuilt netlist, so the result is 1-minimal with respect to the
   move set: no single remaining bypass preserves the finding.  That
   re-check-after-every-step discipline is what makes the reproducers
   trustworthy — a minimizer that trims without re-running the oracle
   produces circuits that no longer reproduce anything. *)

open Hft_gate

(* Rebuild [nl] with node [drop] replaced by [subst] everywhere, dead
   logic removed.  Liveness is marked from the POs and the DFFs
   (following substituted fanins); PIs always survive so the generator
   interface (pattern shapes, scan order) stays stable. *)
let rebuild nl ~drop ~subst =
  let n = Netlist.n_nodes nl in
  let resolve v = if v = drop then subst else v in
  let live = Array.make n false in
  let rec mark v =
    let v = resolve v in
    if not live.(v) then begin
      live.(v) <- true;
      Array.iter mark (Netlist.fanin nl v)
    end
  in
  List.iter mark (Netlist.pos nl);
  List.iter
    (fun d ->
      if d <> drop then begin
        live.(d) <- true;
        Array.iter mark (Netlist.fanin nl d)
      end)
    (Netlist.dffs nl);
  List.iter (fun p -> live.(p) <- true) (Netlist.pis nl);
  live.(drop) <- false;
  let out = Netlist.create ~name:(Netlist.circuit_name nl) () in
  let map = Array.make n (-1) in
  (* Two passes in old-id order: DFFs get a placeholder D first (their
     source may map to a higher id), then a fixup pass rewires them. *)
  let placeholder = ref (-1) in
  for v = 0 to n - 1 do
    if live.(v) then begin
      let name = Netlist.node_name nl v in
      match Netlist.kind nl v with
      | Netlist.Dff ->
        let ph =
          match Netlist.pis out with
          | p :: _ -> p
          | [] ->
            if !placeholder < 0 then
              placeholder := Netlist.add out Netlist.Const0 [||];
            !placeholder
        in
        map.(v) <- Netlist.add out ~name Netlist.Dff [| ph |]
      | k ->
        let fanins =
          Array.map (fun s -> map.(resolve s)) (Netlist.fanin nl v)
        in
        map.(v) <- Netlist.add out ~name k fanins
    end
  done;
  List.iter
    (fun d ->
      if live.(d) then
        let src = resolve (Netlist.fanin nl d).(0) in
        Netlist.set_fanin out map.(d) 0 map.(src))
    (Netlist.dffs nl);
  Netlist.validate out;
  out

(* Gates (not PIs, DFFs or constants) whose bypass is worth trying,
   highest id first so downstream logic shrinks before the cone it
   reads from. *)
let candidates nl =
  let acc = ref [] in
  for v = 0 to Netlist.n_nodes nl - 1 do
    match Netlist.kind nl v with
    | Netlist.Pi | Netlist.Po | Netlist.Dff | Netlist.Const0 | Netlist.Const1
      -> ()
    | _ -> acc := v :: !acc
  done;
  !acc

let max_steps = 200

let reduce ~check nl =
  let steps = ref 0 in
  let current = ref nl in
  let progress = ref true in
  while !progress && !steps < max_steps do
    progress := false;
    (* Restart the scan after every accepted reduction: ids shift, and
       earlier rejections may succeed on the smaller circuit. *)
    (try
       List.iter
         (fun v ->
           let fanins =
             Array.to_list (Netlist.fanin !current v) |> List.sort_uniq compare
           in
           List.iter
             (fun s ->
               if !steps < max_steps then begin
                 incr steps;
                 match rebuild !current ~drop:v ~subst:s with
                 | reduced when check reduced ->
                   current := reduced;
                   progress := true;
                   raise Exit
                 | _ -> ()
                 | exception Invalid_argument _ -> ()
                 | exception Hft_robust.Validation.Invalid _ -> ()
               end)
             fanins)
         (candidates !current)
     with Exit -> ())
  done;
  (!current, !steps)
