(* The differential oracles: every cross-engine agreement check the
   fuzz campaign (and tools/fuzz_smoke, a thin driver over this module)
   runs against a candidate circuit.  Factored here so the six checks
   live in exactly one place.

   Each check is independent (it re-runs whatever engines it needs) and
   deterministic given (netlist, seed, canary flag): derived RNG seeds
   and chaos seeds are fixed functions of [seed], engine deadlines are
   step budgets (never wall clocks), and the parallel check relies on
   the engines' jobs-count bit-identity contract.  {!run} wraps every
   check in [Supervisor.guard] so a hang (step budget), a crash or a
   chaos injection surfaces as a finding instead of killing the
   campaign.

   Obs discipline: the checks reset and read the global recorder
   (ledger outcome maps), so a caller with live telemetry of its own —
   the campaign — must wrap calls in [Hft_obs.isolated]. *)

open Hft_gate

type finding = { f_check : string; f_detail : string }

type report = { r_findings : finding list; r_escalations : int }

let check_names =
  [ "fsim-diff"; "atpg-diff"; "par-diff"; "replay-confirm";
    "chaos-conservation"; "guided-diff" ]

let default_step_budget = 5_000_000

(* Per-fault outcome kinds from the ledger of the last engine run. *)
let outcome_map () =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (row : Hft_obs.Ledger.row) ->
      let kind = Hft_obs.Ledger.resolution_key row.lr_resolution in
      List.iter (fun m -> Hashtbl.replace tbl m kind) row.lr_members)
    (Hft_obs.Ledger.rows ());
  tbl

let is_detected k =
  List.mem k [ "drop_detected"; "podem_detected"; "salvaged" ]

let scanned_of nl = List.filteri (fun i _ -> i mod 2 = 0) (Netlist.dffs nl)

let supervisor ~step_budget =
  Some
    { Hft_robust.Supervisor.default with
      Hft_robust.Supervisor.deadline_steps = Some step_budget }

let run_atpg ~step_budget ?(jobs = 1) nl ~faults ~scanned strategy on_test =
  Hft_obs.reset ();
  let stats =
    Seq_atpg.run ~backtrack_limit:30 ~max_frames:3 ~strategy ~jobs
      ~supervisor:(supervisor ~step_budget) ?on_test nl ~faults ~scanned
  in
  (stats, outcome_map ())

let conservation fs tag (s : Seq_atpg.stats) =
  if s.detected + s.untestable + s.aborted <> s.total then
    fs :=
      { f_check = tag;
        f_detail =
          Printf.sprintf "outcome conservation violated (%d+%d+%d <> %d)"
            s.detected s.untestable s.aborted s.total }
      :: !fs

(* The regression canary: run [f] with PODEM's propagation fallbacks
   disabled, restoring them afterwards — re-opens the seed-4246-class
   unsound-Untestable dead end so the differential proves it would
   still be caught. *)
let with_canary canary f =
  if not canary then f ()
  else begin
    Podem.propagation_fallbacks_enabled := false;
    Fun.protect
      ~finally:(fun () -> Podem.propagation_fallbacks_enabled := true)
      f
  end

let confirm_replay fs tag nl ~scanned tests =
  let claimed =
    List.concat_map (fun t -> t.Seq_atpg.t_detects) tests
    |> List.sort_uniq compare
  in
  let _, undet = Seq_atpg.replay nl ~scanned ~tests claimed in
  if undet <> [] then
    fs :=
      { f_check = tag;
        f_detail =
          Printf.sprintf "%d claimed detection(s) fail to replay"
            (List.length undet) }
      :: !fs

(* 1. Fault-simulation differential: the naive (full-resimulation) and
   cone-limited strategies must report the same detected set. *)
let check_fsim_diff ~seed nl =
  let faults = Fault.collapsed nl in
  let detected strategy =
    let rng = Hft_util.Rng.create ((seed * 3) + 1) in
    (Fsim.comb_random ~strategy nl ~rng ~n_patterns:32 faults).Fsim.detected
    |> List.sort compare
  in
  if detected Fsim.Naive <> detected Fsim.Cone then
    [ { f_check = "fsim-diff";
        f_detail = "fsim naive/cone detected sets differ" } ]
  else []

(* 2. ATPG differential: Naive and Drop may differ in effort, but a
   fault detected by one and proved untestable by the other is a
   soundness bug.  Under [canary] the propagation fallbacks are
   disabled, re-exposing the historical seed-4246 dead end. *)
let check_atpg_diff ~canary ~step_budget ~seed:_ nl =
  let faults = Fault.collapsed nl in
  let scanned = scanned_of nl in
  with_canary canary (fun () ->
      let fs = ref [] in
      let s_naive, o_naive =
        run_atpg ~step_budget nl ~faults ~scanned Seq_atpg.Naive None
      in
      let s_drop, o_drop =
        run_atpg ~step_budget nl ~faults ~scanned Seq_atpg.Drop None
      in
      conservation fs "atpg-diff" s_naive;
      conservation fs "atpg-diff" s_drop;
      Hashtbl.iter
        (fun f k1 ->
          match Hashtbl.find_opt o_drop f with
          | None ->
            fs :=
              { f_check = "atpg-diff";
                f_detail =
                  Printf.sprintf "fault %s missing from drop ledger" f }
              :: !fs
          | Some k2 ->
            if
              (is_detected k1 && k2 = "untestable")
              || (k1 = "untestable" && is_detected k2)
            then
              fs :=
                { f_check = "atpg-diff";
                  f_detail =
                    Printf.sprintf "fault %s: naive says %s, drop says %s" f
                      k1 k2 }
                :: !fs)
        o_naive;
      List.rev !fs)

(* 3. Parallel differential: the domain-pool-sharded campaign (jobs=4)
   must reproduce the sequential Drop run bit for bit — stats,
   per-fault outcomes, generated test set and ledger waterfall. *)
let check_par_diff ~step_budget ~seed:_ nl =
  let faults = Fault.collapsed nl in
  let scanned = scanned_of nl in
  let fs = ref [] in
  let tests = ref [] in
  let s_drop, o_drop =
    run_atpg ~step_budget nl ~faults ~scanned Seq_atpg.Drop
      (Some (fun t -> tests := t :: !tests))
  in
  let wf_drop = Hft_util.Json.to_string (Hft_obs.Ledger.waterfall_json ()) in
  let par_tests = ref [] in
  let s_par, o_par =
    run_atpg ~step_budget ~jobs:4 nl ~faults ~scanned Seq_atpg.Drop
      (Some (fun t -> par_tests := t :: !par_tests))
  in
  let wf_par = Hft_util.Json.to_string (Hft_obs.Ledger.waterfall_json ()) in
  let bad detail = fs := { f_check = "par-diff"; f_detail = detail } :: !fs in
  if s_par <> s_drop then bad "stats differ";
  if wf_par <> wf_drop then
    bad (Printf.sprintf "waterfall differs (%s vs %s)" wf_drop wf_par);
  if !par_tests <> !tests then bad "generated test sets differ";
  let bindings tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  if bindings o_par <> bindings o_drop then bad "per-fault outcomes differ";
  List.rev !fs

(* 4. Replay confirmation: every generation-time detection claim of the
   Drop engine must be confirmed by an independent replay. *)
let check_replay_confirm ~step_budget ~seed:_ nl =
  let faults = Fault.collapsed nl in
  let scanned = scanned_of nl in
  let fs = ref [] in
  let tests = ref [] in
  let _ =
    run_atpg ~step_budget nl ~faults ~scanned Seq_atpg.Drop
      (Some (fun t -> tests := t :: !tests))
  in
  confirm_replay fs "replay-confirm" nl ~scanned !tests;
  List.rev !fs

(* 5. Chaos conservation: with injections armed at every engine site,
   the supervised campaign must still terminate, conserve outcomes and
   make only sound detection claims. *)
let check_chaos_conservation ~step_budget ~seed nl =
  let faults = Fault.collapsed nl in
  let scanned = scanned_of nl in
  let fs = ref [] in
  let chaos_tests = ref [] in
  (match
     Hft_robust.Chaos.with_config
       {
         Hft_robust.Chaos.seed = (seed * 7) + 5;
         prob = 0.2;
         sites =
           [ Hft_robust.Chaos.Podem; Hft_robust.Chaos.Fsim;
             Hft_robust.Chaos.Collapse ];
         arm_after = 0;
       }
       (fun () ->
         Hft_obs.reset ();
         Seq_atpg.run ~backtrack_limit:30 ~max_frames:3
           ~strategy:Seq_atpg.Drop
           ~supervisor:(supervisor ~step_budget)
           ~on_test:(fun t -> chaos_tests := t :: !chaos_tests)
           nl ~faults ~scanned)
   with
   | s -> conservation fs "chaos-conservation" s
   | exception e ->
     fs :=
       { f_check = "chaos-conservation";
         f_detail = "chaos run escaped with " ^ Printexc.to_string e }
       :: !fs);
  confirm_replay fs "chaos-conservation" nl ~scanned !chaos_tests;
  List.rev !fs

(* 6. Guided differential: per fault on the full-scan view (every DFF a
   pseudo-PI, its D input a pseudo-PO), a guided verdict may only
   improve on the unguided one, and a guided test must replay. *)
let check_guided_diff ~step_budget ~seed:_ nl =
  let faults = Fault.collapsed nl in
  let fs = ref [] in
  let dffs = Netlist.dffs nl in
  let assignable = Netlist.pis nl @ dffs in
  let observe =
    Netlist.pos nl @ List.map (fun d -> (Netlist.fanin nl d).(0)) dffs
  in
  let verdict = function
    | Podem.Test _ -> "test"
    | Podem.Untestable -> "untestable"
    | Podem.Aborted -> "aborted"
  in
  let checker () =
    Hft_robust.Deadline.checker
      (Hft_robust.Deadline.make ~steps:step_budget ())
  in
  let bad detail = fs := { f_check = "guided-diff"; f_detail = detail } :: !fs in
  List.iter
    (fun f ->
      let unguided, _ =
        Podem.generate ~backtrack_limit:30 ~check:(checker ()) nl
          ~faults:[ f ] ~assignable ~observe
      in
      let guided, _ =
        Podem.generate ~backtrack_limit:30 ~check:(checker ())
          ~guidance:(Hft_analysis.Guidance.provide nl ~observe ~faults:[ f ])
          nl ~faults:[ f ] ~assignable ~observe
      in
      let ku = verdict unguided and kg = verdict guided in
      let repro () = Fault.to_string nl f in
      (match (unguided, guided) with
       | Podem.Test _, Podem.Untestable | Podem.Untestable, Podem.Test _ ->
         bad
           (Printf.sprintf "fault %s unguided=%s guided=%s" (repro ()) ku kg)
       | _, Podem.Aborted when unguided <> Podem.Aborted ->
         bad
           (Printf.sprintf "fault %s regressed to aborted (unguided=%s)"
              (repro ()) ku)
       | _ -> ());
      match guided with
      | Podem.Test assign ->
        let det =
          Fsim.detect_groups nl ~assignment:assign ~observe [ [ f ] ]
        in
        if not det.(0) then
          bad (Printf.sprintf "guided test for %s fails replay" (repro ()))
      | _ -> ())
    faults;
  List.rev !fs

let dispatch ~canary ~step_budget ~seed nl = function
  | "fsim-diff" -> check_fsim_diff ~seed nl
  | "atpg-diff" -> check_atpg_diff ~canary ~step_budget ~seed nl
  | "par-diff" -> check_par_diff ~step_budget ~seed nl
  | "replay-confirm" -> check_replay_confirm ~step_budget ~seed nl
  | "chaos-conservation" -> check_chaos_conservation ~step_budget ~seed nl
  | "guided-diff" -> check_guided_diff ~step_budget ~seed nl
  | name -> invalid_arg ("Hft_fuzz.Oracle: unknown check " ^ name)

let run_check ?(canary = false) ?(step_budget = default_step_budget) ~name
    ~seed nl =
  match
    Hft_robust.Supervisor.guard ~name:("fuzz." ^ name) (fun () ->
        dispatch ~canary ~step_budget ~seed nl name)
  with
  | Ok fs -> (fs, 0)
  | Error fail ->
    ( [ { f_check = name;
          f_detail = "crash: " ^ Hft_robust.Failure.to_string fail } ],
      1 )

let run ?(canary = false) ?(step_budget = default_step_budget) ~seed nl =
  let escalations = ref 0 in
  let findings =
    List.concat_map
      (fun name ->
        let fs, esc = run_check ~canary ~step_budget ~name ~seed nl in
        escalations := !escalations + esc;
        fs)
      check_names
  in
  { r_findings = findings; r_escalations = !escalations }
