(* Self-contained reproducer files ("hft-repro/1").

   One JSON document per finding: the full (minimized) netlist, the
   oracle check that fired, the seed and canary flag needed to re-run
   it, and provenance (campaign trial, arm, minimizer effort).  A
   reproducer replays with nothing but this file — the corpus survives
   generator and portfolio changes because the circuit itself is
   stored, not its generation recipe. *)

open Hft_gate
open Hft_util

let schema = "hft-repro/1"

type t = {
  p_fingerprint : string;
  p_check : string;
  p_detail : string;
  p_seed : int;
  p_canary : bool;
  p_arm : string;
  p_trial : int;
  p_netlist : Netlist.t;
  p_original_nodes : int;
  p_minimize_steps : int;
}

(* The fingerprint identifies a finding class across runs: the check
   that fired, the oracle seed and the evidence text.  Deliberately
   excludes the netlist — the same bug found pre- and post-minimization
   must dedup to one corpus entry. *)
let fingerprint ~check ~seed ~detail =
  Digest.to_hex (Digest.string (check ^ "|" ^ string_of_int seed ^ "|" ^ detail))

let kind_name = function
  | Netlist.Pi -> "pi"
  | Netlist.Po -> "po"
  | Netlist.Dff -> "dff"
  | Netlist.Const0 -> "const0"
  | Netlist.Const1 -> "const1"
  | Netlist.Buf -> "buf"
  | Netlist.Not -> "not"
  | Netlist.And -> "and"
  | Netlist.Or -> "or"
  | Netlist.Nand -> "nand"
  | Netlist.Nor -> "nor"
  | Netlist.Xor -> "xor"
  | Netlist.Xnor -> "xnor"
  | Netlist.Mux2 -> "mux2"

let kind_of_name = function
  | "pi" -> Some Netlist.Pi
  | "po" -> Some Netlist.Po
  | "dff" -> Some Netlist.Dff
  | "const0" -> Some Netlist.Const0
  | "const1" -> Some Netlist.Const1
  | "buf" -> Some Netlist.Buf
  | "not" -> Some Netlist.Not
  | "and" -> Some Netlist.And
  | "or" -> Some Netlist.Or
  | "nand" -> Some Netlist.Nand
  | "nor" -> Some Netlist.Nor
  | "xor" -> Some Netlist.Xor
  | "xnor" -> Some Netlist.Xnor
  | "mux2" -> Some Netlist.Mux2
  | _ -> None

(* Nodes serialize in id order, so ids are implicit positions.  A DFF's
   D input may reference a later id (sequential loop); deserialization
   mirrors the generator's placeholder-then-fixup dance. *)
let netlist_json nl =
  let nodes = ref [] in
  for v = Netlist.n_nodes nl - 1 downto 0 do
    nodes :=
      Json.Obj
        [ ("kind", Json.String (kind_name (Netlist.kind nl v)));
          ("name", Json.String (Netlist.node_name nl v));
          ("fanins",
           Json.List
             (Array.to_list
                (Array.map (fun s -> Json.Int s) (Netlist.fanin nl v)))) ]
      :: !nodes
  done;
  Json.Obj
    [ ("name", Json.String (Netlist.circuit_name nl));
      ("nodes", Json.List !nodes) ]

let netlist_of_json_exn j =
  let ( let* ) = Result.bind in
  let str = function Json.String s -> Ok s | _ -> Error "expected string" in
  let* name =
    match Json.member "name" j with Some s -> str s | None -> Ok "repro"
  in
  let* nodes =
    match Json.member "nodes" j with
    | Some (Json.List l) -> Ok l
    | _ -> Error "missing nodes list"
  in
  let nl = Netlist.create ~name () in
  let fixups = ref [] in
  let* () =
    List.fold_left
      (fun acc nj ->
        let* () = acc in
        let* kname =
          match Json.member "kind" nj with
          | Some s -> str s
          | None -> Error "node missing kind"
        in
        let* kind =
          match kind_of_name kname with
          | Some k -> Ok k
          | None -> Error ("unknown node kind " ^ kname)
        in
        let* nname =
          match Json.member "name" nj with
          | Some s -> str s
          | None -> Ok ""
        in
        let* fanins =
          match Json.member "fanins" nj with
          | Some (Json.List l) ->
            List.fold_left
              (fun acc f ->
                let* acc = acc in
                match f with
                | Json.Int i -> Ok (i :: acc)
                | _ -> Error "non-integer fanin")
              (Ok []) l
            |> Result.map (fun l -> Array.of_list (List.rev l))
          | _ -> Error "node missing fanins"
        in
        let add k f =
          let v =
            if nname = "" then Netlist.add nl k f
            else Netlist.add nl ~name:nname k f
          in
          ignore v
        in
        match kind with
        | Netlist.Dff ->
          (* A DFF's D may be a forward reference (sequential loop):
             add on a placeholder, fix up once every node exists. *)
          let* src =
            if Array.length fanins = 1 then Ok fanins.(0)
            else Error "DFF with wrong fanin count"
          in
          if src >= 0 && src < Netlist.n_nodes nl then begin
            add Netlist.Dff [| src |];
            Ok ()
          end
          else begin
            let here = Netlist.n_nodes nl in
            if here = 0 then Error "DFF forward reference with no prior node"
            else begin
              add Netlist.Dff [| here - 1 |];
              fixups := (here, src) :: !fixups;
              Ok ()
            end
          end
        | k ->
          add k fanins;
          Ok ())
      (Ok ()) nodes
  in
  let* () =
    List.fold_left
      (fun acc (d, src) ->
        let* () = acc in
        if src >= 0 && src < Netlist.n_nodes nl then begin
          Netlist.set_fanin nl d 0 src;
          Ok ()
        end
        else Error "dangling DFF fanin")
      (Ok ()) !fixups
  in
  Netlist.validate nl;
  Ok nl

(* Construction raises typed diagnostics on malformed files (arity,
   dangling fanins, combinational cycles); fold them into the result. *)
let netlist_of_json j =
  match netlist_of_json_exn j with
  | r -> r
  | exception Hft_robust.Validation.Invalid d ->
    Error ("invalid netlist: " ^ Hft_robust.Validation.to_string d)
  | exception Invalid_argument m -> Error ("invalid netlist: " ^ m)

let to_json p =
  Json.Obj
    [ ("schema", Json.String schema);
      ("fingerprint", Json.String p.p_fingerprint);
      ("check", Json.String p.p_check);
      ("detail", Json.String p.p_detail);
      ("seed", Json.Int p.p_seed);
      ("canary", Json.Bool p.p_canary);
      ("arm", Json.String p.p_arm);
      ("trial", Json.Int p.p_trial);
      ("original_nodes", Json.Int p.p_original_nodes);
      ("minimize_steps", Json.Int p.p_minimize_steps);
      ("netlist", netlist_json p.p_netlist) ]

let of_json j =
  let ( let* ) = Result.bind in
  let str k =
    match Json.member k j with
    | Some (Json.String s) -> Ok s
    | _ -> Error ("missing field " ^ k)
  in
  let int k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error ("missing field " ^ k)
  in
  let* s = str "schema" in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "schema mismatch: %s, want %s" s schema)
  in
  let* p_fingerprint = str "fingerprint" in
  let* p_check = str "check" in
  let* p_detail = str "detail" in
  let* p_seed = int "seed" in
  let* p_canary =
    match Json.member "canary" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "missing field canary"
  in
  let* p_arm = str "arm" in
  let* p_trial = int "trial" in
  let* p_original_nodes = int "original_nodes" in
  let* p_minimize_steps = int "minimize_steps" in
  let* p_netlist =
    match Json.member "netlist" j with
    | Some nj -> netlist_of_json nj
    | None -> Error "missing field netlist"
  in
  Ok
    { p_fingerprint; p_check; p_detail; p_seed; p_canary; p_arm; p_trial;
      p_netlist; p_original_nodes; p_minimize_steps }

let filename p = "repro-" ^ String.sub p.p_fingerprint 0 12 ^ ".json"

(* Atomic write (tmp + rename): a kill mid-save leaves either the old
   corpus entry or none, never a torn file — resume rewrites it. *)
let save ~dir p =
  let path = Filename.concat dir (filename p) in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (to_json p));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path;
  path

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text ->
    (match Json.parse text with
     | Error m -> Error (path ^ ": " ^ m)
     | Ok j -> of_json j)

(* The oracles read the ledger/registry the engines write, so replay
   needs recording on — against a fresh recorder, so replaying a
   reproducer never pollutes the caller's telemetry. *)
let replay p =
  Hft_obs.isolated (fun () ->
      Hft_obs.with_enabled true (fun () ->
          let findings, _ =
            Oracle.run_check ~canary:p.p_canary ~name:p.p_check ~seed:p.p_seed
              p.p_netlist
          in
          findings))
