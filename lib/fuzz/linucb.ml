(* Linear-UCB contextual bandit over a fixed arm set.

   Per arm: the d x d design matrix A (initialised to the identity) and
   the reward vector b.  Selection scores each arm by the ridge
   estimate's payoff plus an exploration bonus,
   theta . x + alpha * sqrt(x . A^-1 x) with theta = A^-1 b, solving
   the two small linear systems by Gaussian elimination with partial
   pivoting — d is the handful of generator-portfolio features, so a
   fresh O(d^3) solve per arm per trial is cheaper than maintaining an
   inverse, and every float operation happens in a fixed order, which
   is what makes a replayed campaign reproduce its arm choices bit for
   bit. *)

type t = {
  l_alpha : float;
  l_d : int;
  l_a : float array array array;  (* per arm: d x d *)
  l_b : float array array;  (* per arm: d *)
  l_pulls : int array;
}

let create ~alpha ~d ~arms =
  if d < 1 || arms < 1 then invalid_arg "Hft_fuzz.Linucb.create";
  {
    l_alpha = alpha;
    l_d = d;
    l_a =
      Array.init arms (fun _ ->
          Array.init d (fun i ->
              Array.init d (fun j -> if i = j then 1.0 else 0.0)));
    l_b = Array.init arms (fun _ -> Array.make d 0.0);
    l_pulls = Array.make arms 0;
  }

let arms t = Array.length t.l_pulls
let pulls t arm = t.l_pulls.(arm)

(* Solve [m x = v] by Gaussian elimination with partial pivoting on a
   scratch copy.  A is symmetric positive definite by construction
   (identity plus rank-one updates), so the system is always solvable. *)
let solve m v =
  let d = Array.length v in
  let a = Array.init d (fun i -> Array.copy m.(i)) in
  let x = Array.copy v in
  for col = 0 to d - 1 do
    let piv = ref col in
    for r = col + 1 to d - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      let tv = x.(col) in
      x.(col) <- x.(!piv);
      x.(!piv) <- tv
    end;
    let p = a.(col).(col) in
    for r = col + 1 to d - 1 do
      let f = a.(r).(col) /. p in
      if f <> 0.0 then begin
        for c = col to d - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done;
        x.(r) <- x.(r) -. (f *. x.(col))
      end
    done
  done;
  for r = d - 1 downto 0 do
    let s = ref x.(r) in
    for c = r + 1 to d - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  x

let dot u v =
  let s = ref 0.0 in
  Array.iteri (fun i ui -> s := !s +. (ui *. v.(i))) u;
  !s

let score t ~arm ~x =
  if Array.length x <> t.l_d then invalid_arg "Hft_fuzz.Linucb.score";
  let theta = solve t.l_a.(arm) t.l_b.(arm) in
  let z = solve t.l_a.(arm) x in
  dot theta x +. (t.l_alpha *. sqrt (Float.max 0.0 (dot x z)))

(* Deterministic argmax: strictly-greater to switch, so ties break to
   the lowest arm index. *)
let select t ~contexts =
  if Array.length contexts <> arms t then invalid_arg "Hft_fuzz.Linucb.select";
  let best = ref 0 in
  let best_score = ref (score t ~arm:0 ~x:contexts.(0)) in
  for a = 1 to arms t - 1 do
    let s = score t ~arm:a ~x:contexts.(a) in
    if s > !best_score then begin
      best := a;
      best_score := s
    end
  done;
  !best

let update t ~arm ~x ~reward =
  if Array.length x <> t.l_d then invalid_arg "Hft_fuzz.Linucb.update";
  let a = t.l_a.(arm) in
  for i = 0 to t.l_d - 1 do
    for j = 0 to t.l_d - 1 do
      a.(i).(j) <- a.(i).(j) +. (x.(i) *. x.(j))
    done
  done;
  let b = t.l_b.(arm) in
  for i = 0 to t.l_d - 1 do
    b.(i) <- b.(i) +. (reward *. x.(i))
  done;
  t.l_pulls.(arm) <- t.l_pulls.(arm) + 1

(* Bit-exactness probe for checkpoint tests: the full float state,
   rendered through Json's shortest-round-trip printer, so two bandits
   are equal iff every matrix entry is bit-identical. *)
let state_json t =
  let open Hft_util.Json in
  Obj
    [ ("alpha", Float t.l_alpha);
      ("d", Int t.l_d);
      ("pulls", List (Array.to_list (Array.map (fun p -> Int p) t.l_pulls)));
      ("a",
       List
         (Array.to_list
            (Array.map
               (fun m ->
                 List
                   (Array.to_list
                      (Array.map
                         (fun row ->
                           List
                             (Array.to_list
                                (Array.map (fun v -> Float v) row)))
                         m)))
               t.l_a)));
      ("b",
       List
         (Array.to_list
            (Array.map
               (fun v ->
                 List (Array.to_list (Array.map (fun f -> Float f) v)))
               t.l_b))) ]
