(** Typed input-validation diagnostics.

    Construction-time checks (netlist arity, dangling fanins,
    combinational cycles, CDFG output marks) raise {!Invalid} with a
    structured diagnostic instead of a bare [Invalid_argument], so the
    CLI can report the site and a fix-it hint and exit 2 — bad input,
    as opposed to exit 1 for an engine failure — without a backtrace. *)

type diag = {
  site : string;  (** e.g. ["netlist.add"] *)
  message : string;
  hint : string option;
}

exception Invalid of diag

(** [fail ~site ?hint msg] raises {!Invalid}. *)
val fail : site:string -> ?hint:string -> string -> 'a

(** ["site: message (hint: ...)"] *)
val to_string : diag -> string

val to_json : diag -> Hft_util.Json.t
