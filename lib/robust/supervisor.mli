(** Campaign supervisor: typed result discipline plus a retry ladder.

    {!protect} runs one engine invocation and converts every way it can
    die — chaos injection, cooperative deadline, any exception — into
    an [Error of Failure.t]; the happy path is a bare [try], so with
    chaos off and no deadlines a supervised engine is bit-identical to
    an unsupervised one.  {!ladder} stacks attempts on top: each retry
    multiplies the backtrack budget by [budget_growth] and the deadlines
    by [backoff_growth], journalling a [Retry] event per rung, and
    returns the last failure when the ladder is exhausted — the caller
    then degrades (random-pattern salvage, skip, zero result) instead of
    crashing. *)

type policy = {
  retries : int;  (** extra attempts after the first failure *)
  budget_growth : int;  (** backtrack-budget multiplier per rung *)
  deadline_wall : float option;  (** per-attempt wall deadline, seconds *)
  deadline_steps : int option;  (** per-attempt step (tick) deadline *)
  backoff_growth : float;  (** deadline multiplier per rung *)
  salvage_patterns : int;
      (** random patterns a degrading caller may try before marking the
          class aborted-with-reason *)
}

(** retries = 2, budget_growth = 2, no deadlines, backoff_growth = 2.0,
    salvage_patterns = 32. *)
val default : policy

(** Run [f] once under the typed result discipline.  The chaos check
    for [site] fires inside the protected region.  [Out_of_memory] and
    [Sys.Break] are re-raised; everything else becomes a failure. *)
val protect : site:Chaos.site -> (unit -> 'a) -> ('a, Failure.t) result

(** Like {!protect} for supervision points outside the chaos-site
    taxonomy (e.g. one fuzz-oracle check): no chaos draw of its own —
    injections from [Chaos.check]s inside [f] still classify as
    [Injected] — and failures carry the free-form [name] as their
    site. *)
val guard : name:string -> (unit -> 'a) -> ('a, Failure.t) result

(** [ladder policy ~site ~budget f] — run [f ~budget ~check] through the
    retry ladder.  [check] is the per-attempt deadline hook ([None] when
    the policy sets no deadlines). *)
val ladder :
  policy -> site:Chaos.site -> budget:int ->
  (budget:int -> check:(unit -> unit) option -> 'a) ->
  ('a, Failure.t) result

(** The backtrack budget of the final rung:
    [budget * budget_growth ^ retries]. *)
val final_budget : policy -> budget:int -> int
