(** Deterministic chaos harness: a seeded fault injector threaded
    through the engine supervision sites.

    When configured, every {!check} at an enabled site draws from one
    splitmix64 stream and raises {!Injection} with probability [prob]
    once the site has been exercised [arm_after] times.  The draw order
    is the supervision-call order of the campaign, so a given seed
    reproduces the exact same injection points run after run — tests can
    kill a campaign at a chosen serialisation and assert the resumed run
    is bit-identical.  Disabled (the default), {!check} is a single ref
    read. *)

type site = Podem | Fsim | Collapse | Serialize | Shard

(** Raised by {!check} when the injector trips.  [seq] numbers the
    injections of the current configuration from 1. *)
exception Injection of { site : string; seq : int }

type config = {
  seed : int;
  prob : float;  (** per-check trip probability in [0, 1] *)
  sites : site list;  (** sites the injector is armed at *)
  arm_after : int;
      (** number of checks a site passes unharmed before the injector
          may trip there — lets tests place a failure mid-run *)
}

val all_sites : site list
val site_name : site -> string
val site_of_string : string -> site option

(** Install a configuration (resets the stream and all counters). *)
val configure : config -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** Raise {!Injection} if the injector trips at [site]; no-op while
    disabled or when [site] is not armed. *)
val check : site -> unit

(** Injections raised since the last {!configure}. *)
val injections : unit -> int

(** Read [HFT_CHAOS_SEED] (enables the injector when set),
    [HFT_CHAOS_PROB] (default 0.05, must parse to a float in [0, 1]),
    [HFT_CHAOS_SITES] (comma-separated site names, default all) and
    [HFT_CHAOS_ARM] (default 0, must be a non-negative integer).
    Stays disabled when no variable is set.  A malformed value — or a
    chaos knob set without [HFT_CHAOS_SEED] — raises
    {!Validation.Invalid} so the CLI reports the bad variable and
    exits 2 instead of silently running with a default. *)
val of_env : unit -> unit

(** Run [f] under [config], restoring the previous injector state
    afterwards (including on exception). *)
val with_config : config -> (unit -> 'a) -> 'a
