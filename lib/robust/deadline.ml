type cause =
  | Wall of { elapsed : float; limit : float }
  | Steps of { steps : int; limit : int }

exception Expired of cause

type t = {
  wall : float option;
  started : float;
  steps : int option;
  mutable ticks : int;
}

let make ?wall ?steps () =
  let started = match wall with Some _ -> Hft_obs.Clock.now () | None -> 0.0 in
  { wall; started; steps; ticks = 0 }

let tick t =
  t.ticks <- t.ticks + 1;
  (match t.steps with
   | Some limit when t.ticks > limit ->
     raise (Expired (Steps { steps = t.ticks; limit }))
   | _ -> ());
  match t.wall with
  | Some limit when t.ticks land 63 = 0 ->
    let elapsed = Hft_obs.Clock.now () -. t.started in
    if elapsed > limit then raise (Expired (Wall { elapsed; limit }))
  | _ -> ()

let checker t () = tick t
