type diag = { site : string; message : string; hint : string option }

exception Invalid of diag

let fail ~site ?hint message = raise (Invalid { site; message; hint })

let to_string d =
  match d.hint with
  | None -> Printf.sprintf "%s: %s" d.site d.message
  | Some h -> Printf.sprintf "%s: %s (hint: %s)" d.site d.message h

let to_json d =
  let open Hft_util.Json in
  Obj
    (("site", String d.site)
     :: ("message", String d.message)
     ::
     (match d.hint with None -> [] | Some h -> [ ("hint", String h) ]))

(* Render [Invalid] through [Printexc] as the structured line, not the
   constructor dump, so an unexpected escape is still readable. *)
let () =
  Printexc.register_printer (function
    | Invalid d -> Some ("invalid input — " ^ to_string d)
    | _ -> None)
