type t =
  | Timeout of { site : string; elapsed : float; limit : float }
  | Budget_exhausted of { site : string; steps : int; limit : int }
  | Engine_exception of string
  | Injected of { site : string; seq : int }

let site = function
  | Timeout { site; _ } -> site
  | Budget_exhausted { site; _ } -> site
  | Engine_exception _ -> "engine"
  | Injected { site; _ } -> site

let to_string = function
  | Timeout { site; elapsed; limit } ->
    Printf.sprintf "timeout(%s: %.2fs > %.2fs)" site elapsed limit
  | Budget_exhausted { site; steps; limit } ->
    Printf.sprintf "budget_exhausted(%s: %d steps > %d)" site steps limit
  | Engine_exception msg -> Printf.sprintf "engine_exception(%s)" msg
  | Injected { site; seq } -> Printf.sprintf "injected(%s #%d)" site seq

let to_json t =
  let open Hft_util.Json in
  let kind, fields =
    match t with
    | Timeout { site; elapsed; limit } ->
      ( "timeout",
        [ ("site", String site); ("elapsed_s", Float elapsed);
          ("limit_s", Float limit) ] )
    | Budget_exhausted { site; steps; limit } ->
      ( "budget_exhausted",
        [ ("site", String site); ("steps", Int steps); ("limit", Int limit) ] )
    | Engine_exception msg -> ("engine_exception", [ ("message", String msg) ])
    | Injected { site; seq } ->
      ("injected", [ ("site", String site); ("seq", Int seq) ])
  in
  Obj (("kind", String kind) :: fields)
