type site = Podem | Fsim | Collapse | Serialize | Shard

exception Injection of { site : string; seq : int }

type config = { seed : int; prob : float; sites : site list; arm_after : int }

let all_sites = [ Podem; Fsim; Collapse; Serialize; Shard ]

let site_name = function
  | Podem -> "podem"
  | Fsim -> "fsim"
  | Collapse -> "collapse"
  | Serialize -> "serialize"
  | Shard -> "shard"

let site_of_string s =
  List.find_opt (fun site -> site_name site = s) all_sites

(* One counter per site so [arm_after] places the trip at the Nth use of
   a specific site, independent of how often the others fire. *)
type state = {
  cfg : config;
  rng : Hft_util.Rng.t;
  counts : (site * int ref) list;
  mutable injected : int;
}

let state : state option ref = ref None

let configure cfg =
  state :=
    Some
      {
        cfg;
        rng = Hft_util.Rng.create cfg.seed;
        counts = List.map (fun s -> (s, ref 0)) all_sites;
        injected = 0;
      }

let disable () = state := None
let enabled () = !state <> None
let injections () = match !state with None -> 0 | Some st -> st.injected

let check site =
  match !state with
  | None -> ()
  | Some st ->
    if List.mem site st.cfg.sites then begin
      let c = List.assoc site st.counts in
      incr c;
      if !c > st.cfg.arm_after
         && Hft_util.Rng.float st.rng < st.cfg.prob
      then begin
        st.injected <- st.injected + 1;
        Hft_obs.Registry.incr "hft.chaos.injections";
        raise (Injection { site = site_name site; seq = st.injected })
      end
    end

let of_env () =
  match Sys.getenv_opt "HFT_CHAOS_SEED" with
  | None -> ()
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | None -> ()
     | Some seed ->
       let prob =
         match Sys.getenv_opt "HFT_CHAOS_PROB" with
         | Some p -> (try float_of_string (String.trim p) with _ -> 0.05)
         | None -> 0.05
       in
       let sites =
         match Sys.getenv_opt "HFT_CHAOS_SITES" with
         | None -> all_sites
         | Some spec ->
           String.split_on_char ',' spec
           |> List.filter_map (fun tok -> site_of_string (String.trim tok))
       in
       let arm_after =
         match Sys.getenv_opt "HFT_CHAOS_ARM" with
         | Some a -> (try int_of_string (String.trim a) with _ -> 0)
         | None -> 0
       in
       configure { seed; prob; sites = (if sites = [] then all_sites else sites); arm_after })

let with_config cfg f =
  let saved = !state in
  configure cfg;
  Fun.protect ~finally:(fun () -> state := saved) f
