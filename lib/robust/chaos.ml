type site = Podem | Fsim | Collapse | Serialize | Shard

exception Injection of { site : string; seq : int }

type config = { seed : int; prob : float; sites : site list; arm_after : int }

let all_sites = [ Podem; Fsim; Collapse; Serialize; Shard ]

let site_name = function
  | Podem -> "podem"
  | Fsim -> "fsim"
  | Collapse -> "collapse"
  | Serialize -> "serialize"
  | Shard -> "shard"

let site_of_string s =
  List.find_opt (fun site -> site_name site = s) all_sites

(* One counter per site so [arm_after] places the trip at the Nth use of
   a specific site, independent of how often the others fire. *)
type state = {
  cfg : config;
  rng : Hft_util.Rng.t;
  counts : (site * int ref) list;
  mutable injected : int;
}

let state : state option ref = ref None

let configure cfg =
  state :=
    Some
      {
        cfg;
        rng = Hft_util.Rng.create cfg.seed;
        counts = List.map (fun s -> (s, ref 0)) all_sites;
        injected = 0;
      }

let disable () = state := None
let enabled () = !state <> None
let injections () = match !state with None -> 0 | Some st -> st.injected

let check site =
  match !state with
  | None -> ()
  | Some st ->
    if List.mem site st.cfg.sites then begin
      let c = List.assoc site st.counts in
      incr c;
      if !c > st.cfg.arm_after
         && Hft_util.Rng.float st.rng < st.cfg.prob
      then begin
        st.injected <- st.injected + 1;
        Hft_obs.Registry.incr "hft.chaos.injections";
        raise (Injection { site = site_name site; seq = st.injected })
      end
    end

(* Environment parsing is strict: a malformed value is a typed
   {!Validation.Invalid} (the CLI maps it to exit 2 with the standard
   error contract), never a silent default — a chaos campaign that
   quietly ran unarmed because of a typo'd HFT_CHAOS_PROB is worse than
   one that refuses to start. *)
let env_fail var value hint =
  Validation.fail ~site:("chaos.env." ^ var) ~hint
    (Printf.sprintf "malformed %s value %S" var value)

let of_env () =
  match Sys.getenv_opt "HFT_CHAOS_SEED" with
  | None ->
    (* No seed, no injector — but a stray knob alongside a missing seed
       is almost certainly a mistyped campaign; flag it. *)
    (match
       List.find_opt
         (fun v -> Sys.getenv_opt v <> None)
         [ "HFT_CHAOS_PROB"; "HFT_CHAOS_SITES"; "HFT_CHAOS_ARM" ]
     with
     | None -> ()
     | Some v ->
       Validation.fail ~site:"chaos.env"
         ~hint:"set HFT_CHAOS_SEED=<int> to arm the injector"
         (v ^ " is set but HFT_CHAOS_SEED is not"))
  | Some s ->
    let seed =
      match int_of_string_opt (String.trim s) with
      | Some seed -> seed
      | None -> env_fail "HFT_CHAOS_SEED" s "expected an integer seed"
    in
    let prob =
      match Sys.getenv_opt "HFT_CHAOS_PROB" with
      | None -> 0.05
      | Some p ->
        (match float_of_string_opt (String.trim p) with
         | Some f when f >= 0.0 && f <= 1.0 -> f
         | Some _ | None ->
           env_fail "HFT_CHAOS_PROB" p "expected a probability in [0, 1]")
    in
    let sites =
      match Sys.getenv_opt "HFT_CHAOS_SITES" with
      | None -> all_sites
      | Some spec ->
        let toks =
          String.split_on_char ',' spec
          |> List.map String.trim
          |> List.filter (fun t -> t <> "")
        in
        if toks = [] then
          env_fail "HFT_CHAOS_SITES" spec
            "expected a comma-separated list of sites";
        List.map
          (fun tok ->
            match site_of_string tok with
            | Some site -> site
            | None ->
              env_fail "HFT_CHAOS_SITES" tok
                ("known sites: "
                 ^ String.concat ", " (List.map site_name all_sites)))
          toks
    in
    let arm_after =
      match Sys.getenv_opt "HFT_CHAOS_ARM" with
      | None -> 0
      | Some a ->
        (match int_of_string_opt (String.trim a) with
         | Some n when n >= 0 -> n
         | Some _ | None ->
           env_fail "HFT_CHAOS_ARM" a "expected a non-negative integer")
    in
    configure { seed; prob; sites; arm_after }

let with_config cfg f =
  let saved = !state in
  configure cfg;
  Fun.protect ~finally:(fun () -> state := saved) f
