(** Typed engine-failure taxonomy for the campaign supervisor.

    Every supervised engine invocation (PODEM call, fault-simulation
    pass, fault collapse, checkpoint serialisation) finishes as
    [Ok outcome] or [Error of t]; the supervisor's retry/degrade ladder
    dispatches on the constructor, and the final reason lands in the
    forensics ledger as [Aborted {reason}] evidence — a campaign never
    dies of an unhandled exception. *)

type t =
  | Timeout of { site : string; elapsed : float; limit : float }
      (** A cooperative wall-clock deadline expired ([elapsed] and
          [limit] in seconds). *)
  | Budget_exhausted of { site : string; steps : int; limit : int }
      (** A cooperative step budget (implication ticks) ran out. *)
  | Engine_exception of string
      (** The engine raised; the exception is rendered, never re-raised. *)
  | Injected of { site : string; seq : int }
      (** The chaos harness tripped injection number [seq] at [site]. *)

(** The site the failure was observed at. *)
val site : t -> string

(** Short display form, e.g. ["timeout(podem: 1.52s > 1.00s)"] — used
    verbatim as the ledger's abort reason. *)
val to_string : t -> string

val to_json : t -> Hft_util.Json.t
