(** Cooperative per-attempt deadlines: no signals, no threads.

    A deadline is a tick counter the engine's inner loop advances
    through the hook it already exposes ({!Hft_gate.Podem.generate}'s
    [?check]); {!tick} raises {!Expired} when the step budget runs out,
    and re-reads the wall clock every 64 ticks to bound the syscall
    cost.  Step deadlines are fully deterministic; wall-clock deadlines
    are for production runs where a pathological cone must not stall the
    campaign. *)

type cause =
  | Wall of { elapsed : float; limit : float }
  | Steps of { steps : int; limit : int }

exception Expired of cause

type t

(** [make ?wall ?steps ()] — [wall] in seconds from now, [steps] in
    ticks; omitted bounds never expire. *)
val make : ?wall:float -> ?steps:int -> unit -> t

(** Advance one tick; raises {!Expired} past either bound. *)
val tick : t -> unit

(** [checker t] is [fun () -> tick t] — the shape engine hooks expect. *)
val checker : t -> unit -> unit
