(** Campaign checkpoints: append-only JSONL, schema [hft-ckpt/1].

    Line 1 is a header carrying the schema tag and a caller-supplied
    fingerprint ([meta]); every later line is one record:
    [{"kind":"class", "rep":..., "resolution":...}] for a resolved
    fault class, or [{"kind":"test", ...}] for a generated test (PI
    vectors and scan load as "0101" bit strings, detected faults as
    [[node, pin|null, stuck]] triples).  Each append is flushed, so an
    interrupted campaign leaves a loadable prefix.

    {!load} tolerates exactly the damage an interruption can cause:
    an unparsable final line is dropped, and the final test transaction
    is rolled back unless it committed — a test counts as committed
    only when a class line resolves to it via [podem_detected] or
    [salvaged] (the generating engine always appends that line last).
    Replaying a rolled-back transaction regenerates it bit-identically,
    which is what makes resume reproduce the uninterrupted run. *)

type meta = (string * Hft_util.Json.t) list

(** Generic crash-only JSONL tape shared by every checkpoint schema
    (hft-ckpt/1 below, hft-fuzz/1 in [Hft_fuzz.State]): a header line
    carrying the schema tag and [meta], then one record per line.
    Every {!Tape.emit} runs a [Chaos.check Serialize] and flushes, so
    the chaos harness can kill a campaign at any serialisation boundary
    and an interrupted file is always a loadable prefix.  {!Tape.load}
    drops an unparsable {e final} line (the expected crash artifact)
    and reports damage anywhere else as corruption; rolling back an
    uncommitted trailing {e transaction} is the schema owner's job. *)
module Tape : sig
  type writer

  (** Truncate/create [path] and write the header (header writes are
      not chaos-checked — the injector targets record appends). *)
  val create : path:string -> schema:string -> meta:meta -> writer

  (** Open [path] for appending (resume) without touching it. *)
  val reopen : path:string -> writer

  (** Append one record: [Chaos.check Serialize], write, flush. *)
  val emit : writer -> Hft_util.Json.t -> unit

  (** Append without the chaos check — for maintenance rewrites
      (resume-time compaction) that replay already-committed records
      and must not consume injection draws. *)
  val emit_raw : writer -> Hft_util.Json.t -> unit

  val close : writer -> unit

  (** Parse header + records; [Error] on a schema mismatch, an
      unreadable file, or mid-file corruption. *)
  val load :
    path:string -> schema:string ->
    (meta * Hft_util.Json.t list, string) result
end

type cls = { ck_rep : string; ck_resolution : Hft_obs.Ledger.resolution }

type test = {
  ck_frames : int;
  ck_vectors : bool array array;  (** one PI vector per frame *)
  ck_scan : bool array;  (** frame-0 scan load *)
  ck_detects : (int * int option * bool) list;
      (** (node, pin, stuck) per fault the test detects *)
}

type t = { meta : meta; classes : cls list; tests : test list }

val schema : string

type writer

(** Truncate/create [path] and write the header. *)
val create : path:string -> meta:meta -> writer

(** Open [path] for appending (resume) without touching its contents. *)
val reopen : path:string -> writer

(** Append one record and flush.  Both appends run a
    [Chaos.check Serialize] first, so the chaos harness can kill a
    campaign at a serialisation boundary. *)
val append_class : writer -> rep:string -> Hft_obs.Ledger.resolution -> unit

val append_test : writer -> test -> unit
val close : writer -> unit

(** Parse a checkpoint; [Error] on unreadable files or mid-file
    corruption (a damaged tail is repaired as described above). *)
val load : path:string -> (t, string) result
