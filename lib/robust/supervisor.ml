type policy = {
  retries : int;
  budget_growth : int;
  deadline_wall : float option;
  deadline_steps : int option;
  backoff_growth : float;
  salvage_patterns : int;
}

let default =
  {
    retries = 2;
    budget_growth = 2;
    deadline_wall = None;
    deadline_steps = None;
    backoff_growth = 2.0;
    salvage_patterns = 32;
  }

let protect ~site f =
  let name = Chaos.site_name site in
  try
    Chaos.check site;
    Ok (f ())
  with
  | Chaos.Injection { site; seq } -> Error (Failure.Injected { site; seq })
  | Deadline.Expired (Deadline.Wall { elapsed; limit }) ->
    Error (Failure.Timeout { site = name; elapsed; limit })
  | Deadline.Expired (Deadline.Steps { steps; limit }) ->
    Error (Failure.Budget_exhausted { site = name; steps; limit })
  | (Out_of_memory | Sys.Break) as e -> raise e
  | e -> Error (Failure.Engine_exception (Printexc.to_string e))

(* Like [protect] but for callers outside the chaos-site taxonomy (the
   fuzz campaign names its sites after oracle checks): no chaos draw of
   its own — injections still surface from [Chaos.check]s {e inside}
   [f] — and the free-form [name] labels the failure. *)
let guard ~name f =
  try Ok (f ()) with
  | Chaos.Injection { site; seq } -> Error (Failure.Injected { site; seq })
  | Deadline.Expired (Deadline.Wall { elapsed; limit }) ->
    Error (Failure.Timeout { site = name; elapsed; limit })
  | Deadline.Expired (Deadline.Steps { steps; limit }) ->
    Error (Failure.Budget_exhausted { site = name; steps; limit })
  | (Out_of_memory | Sys.Break) as e -> raise e
  | e -> Error (Failure.Engine_exception (Printexc.to_string e))

let ladder policy ~site ~budget f =
  let rec go attempt budget scale =
    let deadline =
      match (policy.deadline_wall, policy.deadline_steps) with
      | None, None -> None
      | wall, steps ->
        Some
          (Deadline.make
             ?wall:(Option.map (fun w -> w *. scale) wall)
             ?steps:
               (Option.map
                  (fun s -> int_of_float (float_of_int s *. scale))
                  steps)
             ())
    in
    let check = Option.map Deadline.checker deadline in
    match protect ~site (fun () -> f ~budget ~check) with
    | Ok _ as ok -> ok
    | Error fail ->
      if attempt >= policy.retries then Error fail
      else begin
        let budget' = budget * policy.budget_growth in
        Hft_obs.Registry.incr "hft.robust.retries";
        Hft_obs.Journal.record
          (Hft_obs.Journal.Retry
             { site = Chaos.site_name site; attempt = attempt + 1;
               budget = budget' });
        go (attempt + 1) budget' (scale *. policy.backoff_growth)
      end
  in
  go 0 budget 1.0

let final_budget policy ~budget =
  let rec go i b = if i >= policy.retries then b else go (i + 1) (b * policy.budget_growth) in
  go 0 budget
