type meta = (string * Hft_util.Json.t) list

(* Generic crash-only JSONL tape: a schema header line, then one JSON
   record per line, each append chaos-checked (Serialize site) and
   flushed.  [load] tolerates exactly the damage a kill can cause — an
   unparsable final line is dropped — and reports damage anywhere else
   as corruption.  Transaction semantics (which trailing records form
   an uncommitted suffix) belong to the schema owner: hft-ckpt/1 rolls
   back an uncommitted test below, hft-fuzz/1 rolls back findings with
   no trial commit marker in [Hft_fuzz.State]. *)
module Tape = struct
  type writer = { w_oc : out_channel }

  let write_line oc json =
    output_string oc (Hft_util.Json.to_string json);
    output_char oc '\n';
    flush oc

  let create ~path ~schema ~meta =
    let oc = open_out path in
    write_line oc
      (Hft_util.Json.Obj
         [ ("schema", Hft_util.Json.String schema);
           ("meta", Hft_util.Json.Obj meta) ]);
    { w_oc = oc }

  let reopen ~path =
    { w_oc = open_out_gen [ Open_append; Open_creat ] 0o644 path }

  let emit w json =
    Chaos.check Chaos.Serialize;
    write_line w.w_oc json

  let emit_raw w json = write_line w.w_oc json

  let close w = close_out w.w_oc

  let read_lines path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])

  let load ~path ~schema =
    match read_lines path with
    | exception Sys_error msg -> Error msg
    | [] -> Error "empty checkpoint"
    | header :: body ->
      (match Hft_util.Json.parse header with
       | Error msg -> Error ("bad checkpoint header: " ^ msg)
       | Ok h ->
         (match Hft_util.Json.member "schema" h with
          | Some (Hft_util.Json.String s) when s = schema ->
            let meta =
              match Hft_util.Json.member "meta" h with
              | Some (Hft_util.Json.Obj kvs) -> kvs
              | _ -> []
            in
            let n_body = List.length body in
            let records = ref [] in
            let err = ref None in
            List.iteri
              (fun i line ->
                if !err = None then
                  match Hft_util.Json.parse line with
                  | Error msg ->
                    (* A torn final line is the expected crash artifact;
                       damage anywhere else is corruption. *)
                    if i < n_body - 1 then
                      err :=
                        Some
                          (Printf.sprintf "corrupt record %d: %s" (i + 2) msg)
                  | Ok j -> records := j :: !records)
              body;
            (match !err with
             | Some msg -> Error msg
             | None -> Ok (meta, List.rev !records))
          | _ -> Error ("not an " ^ schema ^ " checkpoint")))
end

type cls = { ck_rep : string; ck_resolution : Hft_obs.Ledger.resolution }

type test = {
  ck_frames : int;
  ck_vectors : bool array array;
  ck_scan : bool array;
  ck_detects : (int * int option * bool) list;
}

type t = { meta : meta; classes : cls list; tests : test list }

let schema = "hft-ckpt/1"

type writer = {
  w_tape : Tape.writer;
  mutable w_classes : int;
  mutable w_tests : int;
}

let create ~path ~meta =
  { w_tape = Tape.create ~path ~schema ~meta; w_classes = 0; w_tests = 0 }

let reopen ~path = { w_tape = Tape.reopen ~path; w_classes = 0; w_tests = 0 }

let bits_to_string bits =
  String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0')

let bits_of_string s = Array.init (String.length s) (fun i -> s.[i] = '1')

let append_class w ~rep res =
  Tape.emit w.w_tape
    (Hft_util.Json.Obj
       [ ("kind", Hft_util.Json.String "class");
         ("rep", Hft_util.Json.String rep);
         ("resolution", Hft_obs.Ledger.resolution_to_json res) ]);
  w.w_classes <- w.w_classes + 1

let append_test w t =
  let open Hft_util.Json in
  Tape.emit w.w_tape
    (Obj
       [ ("kind", String "test");
         ("frames", Int t.ck_frames);
         ("vectors",
          List
            (Array.to_list t.ck_vectors
             |> List.map (fun v -> String (bits_to_string v))));
         ("scan", String (bits_to_string t.ck_scan));
         ("detects",
          List
            (List.map
               (fun (node, pin, stuck) ->
                 List
                   [ Int node;
                     (match pin with None -> Null | Some p -> Int p);
                     Bool stuck ])
               t.ck_detects)) ]);
  w.w_tests <- w.w_tests + 1;
  Hft_obs.Journal.record
    (Hft_obs.Journal.Checkpoint { classes = w.w_classes; tests = w.w_tests })

let close w = Tape.close w.w_tape

let parse_test j =
  let open Hft_util.Json in
  match (member "frames" j, member "vectors" j, member "scan" j,
         member "detects" j)
  with
  | Some (Int frames), Some (List vecs), Some (String scan), Some (List dets)
    ->
    let vectors =
      List.map
        (function String s -> bits_of_string s | _ -> raise Exit)
        vecs
      |> Array.of_list
    in
    let detects =
      List.map
        (function
          | List [ Int node; Null; Bool stuck ] -> (node, None, stuck)
          | List [ Int node; Int pin; Bool stuck ] -> (node, Some pin, stuck)
          | _ -> raise Exit)
        dets
    in
    Some { ck_frames = frames; ck_vectors = vectors;
           ck_scan = bits_of_string scan; ck_detects = detects }
  | _ -> None

(* Roll back the final test transaction unless it committed: the engine
   appends the generating class's podem_detected/salvaged line last, so
   a final test with no such line is a torn write — discard it together
   with every class record referencing it, and the resumed engine will
   regenerate the whole transaction with the same test id. *)
let repair_tail classes tests =
  let n_tests = List.length tests in
  let references t c = Hft_obs.Ledger.resolution_test c.ck_resolution = Some t in
  let commits t c =
    match c.ck_resolution with
    | Hft_obs.Ledger.Podem_detected { test; _ }
    | Hft_obs.Ledger.Salvaged { test; _ } -> test = t
    | _ -> false
  in
  let classes, tests =
    if n_tests > 0 && not (List.exists (commits (n_tests - 1)) classes) then
      ( List.filter (fun c -> not (references (n_tests - 1) c)) classes,
        List.filteri (fun i _ -> i < n_tests - 1) tests )
    else (classes, tests)
  in
  (* Paranoia: any record referencing a test beyond the file is torn. *)
  let n_tests = List.length tests in
  ( List.filter
      (fun c ->
        match Hft_obs.Ledger.resolution_test c.ck_resolution with
        | Some t -> t < n_tests
        | None -> true)
      classes,
    tests )

let load ~path =
  match Tape.load ~path ~schema with
  | Error msg -> Error msg
  | Ok (meta, records) ->
    let classes = ref [] and tests = ref [] in
    let err = ref None in
    List.iteri
      (fun i j ->
        if !err = None then
          match Hft_util.Json.member "kind" j with
          | Some (Hft_util.Json.String "class") ->
            (match
               ( Hft_util.Json.member "rep" j,
                 Hft_util.Json.member "resolution" j )
             with
             | Some (Hft_util.Json.String rep), Some rj ->
               (match Hft_obs.Ledger.resolution_of_json rj with
                | Some res ->
                  classes := { ck_rep = rep; ck_resolution = res } :: !classes
                | None ->
                  err :=
                    Some
                      (Printf.sprintf "bad resolution at record %d" (i + 2)))
             | _ -> err := Some (Printf.sprintf "bad class record %d" (i + 2)))
          | Some (Hft_util.Json.String "test") ->
            (match try parse_test j with Exit -> None with
             | Some t -> tests := t :: !tests
             | None -> err := Some (Printf.sprintf "bad test record %d" (i + 2)))
          | _ ->
            err := Some (Printf.sprintf "unknown record kind at %d" (i + 2)))
      records;
    (match !err with
     | Some msg -> Error msg
     | None ->
       let classes, tests = repair_tail (List.rev !classes) (List.rev !tests) in
       Ok { meta; classes; tests })
