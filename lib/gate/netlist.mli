(** Gate-level sequential netlists.

    Nodes are dense integer ids.  A [Dff]'s value is its current state;
    its single fanin is the D input sampled at each clock edge.  [Po]
    nodes are observation points with one fanin.  [Mux2] fanins are
    [\[| select; a; b |\]] with [select = 1] choosing [b]. *)

type kind =
  | Pi
  | Po
  | Dff
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux2

type t

val create : ?name:string -> unit -> t

(** [add nl kind fanins] appends a node and returns its id.  Arity is
    checked ([Pi]/[Const*]: 0, [Po]/[Buf]/[Not]/[Dff]: 1, [Mux2]: 3,
    binary gates: 2). *)
val add : t -> ?name:string -> kind -> int array -> int

val n_nodes : t -> int

(** Structural copy sharing nothing mutable with the original.  Node
    ids are positions, so ids, fault sites and observe lists transfer
    verbatim; derived caches (fanout/order/cones) start empty and the
    {!version} carries over.  Used for per-domain ATPG workspaces. *)
val copy : t -> t

(** Mutation counter, bumped by {!add} and {!set_fanin} — lets external
    caches keyed on a netlist notice structural changes. *)
val version : t -> int

val kind : t -> int -> kind
val fanin : t -> int -> int array

(**/**)

(** Raw backing arrays (may be longer than [n_nodes]; indices beyond it
    are garbage).  For the simulator hot loops only — read-only. *)
val raw_kinds : t -> kind array

val raw_fanins : t -> int array array

(**/**)
val node_name : t -> int -> string
val circuit_name : t -> string

(** Fanout lists (computed on first use, cached; do not [add] after). *)
val fanout : t -> int -> int list

(** [set_fanin nl node pin new_src] rewires one input (used by scan
    insertion and expansion to close forward references); invalidates
    the fanout/order caches. *)
val set_fanin : t -> int -> int -> int -> unit

val pis : t -> int list
val pos : t -> int list
val dffs : t -> int list

(** Gate count excluding [Pi]/[Po]/[Const] bookkeeping nodes. *)
val n_gates : t -> int

(** Combinational evaluation order: every non-[Dff] node appears after
    its fanins, with [Dff]s treated as sources.  Raises
    [Invalid_argument] on a combinational cycle. *)
val comb_order : t -> int list

(** [topo_pos nl] maps node id to its position in {!comb_order}
    (memoized; invalidated by [add]/[set_fanin]). *)
val topo_pos : t -> int array

(** [fanout_cone nl v] is the combinational fanout cone of [v] — every
    node whose single-pass evaluation can change when [v]'s value
    changes — in levelized ({!comb_order}) order, [v] included.  [Dff]
    consumers terminate the walk: one combinational pass never updates
    flip-flop state.  Memoized per node; do not mutate the returned
    array. *)
val fanout_cone : t -> int -> int array

(** Topologically sorted union of the roots' fanout cones (deduplicated;
    freshly allocated, safe to mutate). *)
val fanout_cone_union : t -> int list -> int array

(** Eval one gate over booleans ([Pi]/[Dff]/[Const] excluded). *)
val eval_bool : kind -> bool array -> bool

(** 3-valued evaluation; values are [0], [1], [2] (= X). *)
val eval_tri : kind -> int array -> int

(** Non-allocating 3-valued primitives ([2] = X) — the hot simulation
    loops use these directly instead of boxing operand arrays for
    {!eval_tri}. *)
val tri_not : int -> int
val tri_and : int -> int -> int
val tri_or : int -> int -> int
val tri_xor : int -> int -> int
val tri_mux : int -> int -> int -> int

val validate : t -> unit
val stats : t -> string
