(** PODEM combinational test generation with dual three-valued
    simulation (good machine / faulty machine).

    Works on any netlist whose relevant part is combinational:
    [assignable] nodes (PIs) take decisions; every other source ([Pi]s
    not listed, [Dff]s) is held at X — this is how unknown initial state
    and uncontrollable inputs are modelled.  A fault is detected when
    some [observe] node carries a D or D' (good and faulty values both
    defined and different). *)

type effort = {
  mutable decisions : int;
  mutable backtracks : int;
  mutable implications : int;
  mutable guided_cuts : int;
      (** branches pruned by a static requirement-set conflict *)
  mutable static_proof : bool;
      (** the verdict came from the static analysis, no search ran *)
}

type result =
  | Test of (int * bool) list  (** satisfying assignment per assignable PI *)
  | Untestable                 (** proven: search space exhausted *)
  | Aborted                    (** backtrack limit hit *)

(** Static-analysis guidance, built by [Hft_analysis.Guidance] (plain
    data here so the analysis library can layer above this one).  Node
    ids refer to the netlist the search runs on.

    - [g_static_untestable]: the analysis proved no assignment detects
      the fault; [generate] returns [Untestable] without searching.
    - [g_common_required]: literals [(node, value)] every detecting
      test must satisfy — seeded as mandatory assignments outside the
      decision stack and enforced as conflicts during search.
    - [g_site_required]: one requirement set per fault site; when every
      site's set is contradicted by the current cube the branch is cut.
    - [g_cc0]/[g_cc1]/[g_co]: SCOAP controllability/observability used
      purely to order objectives, frontier gates and backtrace inputs.

    Soundness contract: the requirement sets may only contain literals
    that hold in {e every} detecting completion (per site), so cuts and
    mandatory assignments never remove a test and [Untestable] stays a
    proof. *)
type guidance = {
  g_static_untestable : bool;
  g_common_required : (int * int) array;
  g_site_required : (int * int) array array;
  g_cc0 : int array;
  g_cc1 : int array;
  g_co : int array;
}

(** A guidance factory: called per (netlist, observe set, fault) by the
    engines that thread guidance through to [generate]. *)
type provider =
  Netlist.t -> observe:int list -> faults:Fault.t list -> guidance

(** Regression-canary knob (default [true]).  Clearing it restores the
    pre-fix objective ladder that could declare [Untestable] when the
    preferred propagation site's X-paths died — the historical
    seed-4246 unsoundness — so the fuzz campaign's differential oracles
    can prove they still catch that bug class.  Never clear it outside
    a canary check: with it off, [Untestable] is {e not} a proof. *)
val propagation_fallbacks_enabled : bool ref

(** [generate nl ~faults ~assignable ~observe ~backtrack_limit] —
    [faults] lists the injection sites of one logical fault (several
    sites for a fault replicated across time frames).  [check] is
    called once per search iteration; it may raise (e.g. a cooperative
    {!Hft_robust.Deadline}) to abandon the attempt — the exception
    propagates to the caller unchanged.

    Without [?guidance] the search is bit-identical to the historical
    behaviour.  With guidance, the per-fault verdict is provably no
    worse: [Test]/[Untestable] are sound proofs, and a guided [Aborted]
    falls back to one unguided run with the same budget and returns its
    outcome (efforts combined). *)
val generate :
  ?backtrack_limit:int -> ?check:(unit -> unit) -> ?guidance:guidance ->
  Netlist.t -> faults:Fault.t list -> assignable:int list ->
  observe:int list -> result * effort

(** Convenience for fully-combinational circuits: assignable = all PIs,
    observe = all POs. *)
val generate_comb :
  ?backtrack_limit:int -> Netlist.t -> fault:Fault.t -> result * effort

(** [check nl ~faults ~assignment ~observe] — verify by dual simulation
    that the assignment detects the fault (used by tests). *)
val check :
  Netlist.t -> faults:Fault.t list -> assignment:(int * bool) list ->
  observe:int list -> bool
