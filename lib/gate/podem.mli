(** PODEM combinational test generation with dual three-valued
    simulation (good machine / faulty machine).

    Works on any netlist whose relevant part is combinational:
    [assignable] nodes (PIs) take decisions; every other source ([Pi]s
    not listed, [Dff]s) is held at X — this is how unknown initial state
    and uncontrollable inputs are modelled.  A fault is detected when
    some [observe] node carries a D or D' (good and faulty values both
    defined and different). *)

type effort = {
  mutable decisions : int;
  mutable backtracks : int;
  mutable implications : int;
}

type result =
  | Test of (int * bool) list  (** satisfying assignment per assignable PI *)
  | Untestable                 (** proven: search space exhausted *)
  | Aborted                    (** backtrack limit hit *)

(** [generate nl ~faults ~assignable ~observe ~backtrack_limit] —
    [faults] lists the injection sites of one logical fault (several
    sites for a fault replicated across time frames).  [check] is
    called once per search iteration; it may raise (e.g. a cooperative
    {!Hft_robust.Deadline}) to abandon the attempt — the exception
    propagates to the caller unchanged. *)
val generate :
  ?backtrack_limit:int -> ?check:(unit -> unit) ->
  Netlist.t -> faults:Fault.t list -> assignable:int list ->
  observe:int list -> result * effort

(** Convenience for fully-combinational circuits: assignable = all PIs,
    observe = all POs. *)
val generate_comb :
  ?backtrack_limit:int -> Netlist.t -> fault:Fault.t -> result * effort

(** [check nl ~faults ~assignment ~observe] — verify by dual simulation
    that the assignment detects the fault (used by tests). *)
val check :
  Netlist.t -> faults:Fault.t list -> assignment:(int * bool) list ->
  observe:int list -> bool
