(** Structural fault collapsing: equivalence classes over the single
    stuck-at universe.

    Two faults are merged when their faulty circuits are {e identical}
    functions: stem/branch identification on fanout-free nets, plus the
    gate-boundary equivalences
    [And]: input sa-0 ≡ output sa-0, [Nand]: input sa-0 ≡ output sa-1,
    [Or]: input sa-1 ≡ output sa-1, [Nor]: input sa-1 ≡ output sa-0,
    [Buf]: input sa-v ≡ output sa-v, [Not]: input sa-v ≡ output sa-(¬v)
    — transitively closed with a union-find.  Because members share one
    faulty function, any pattern set detects either all or none of a
    class, so ATPG and fault simulation run on one representative per
    class and report results over the full list. *)

type t

(** Classes over [Fault.universe nl].  Emits [hft.collapse.*]
    counters. *)
val compute : Netlist.t -> t

val n_faults : t -> int
val n_classes : t -> int

(** Class of a fault, [None] when outside the universe. *)
val class_of : t -> Fault.t -> int option

val members : t -> int -> Fault.t list

(** Lowest-indexed member; deterministic. *)
val representative : t -> int -> Fault.t

val representatives : t -> Fault.t list

(** [partition t faults] groups an arbitrary fault sample by class,
    first-occurrence order, leader first in each group; faults outside
    the universe become singletons. *)
val partition : t -> Fault.t list -> (Fault.t * Fault.t list) list
