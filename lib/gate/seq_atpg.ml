type stats = {
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
  decisions : int;
  backtracks : int;
  implications : int;
  frames_used : int;
}

let fault_coverage s =
  if s.total = 0 then 1.0 else float_of_int s.detected /. float_of_int s.total

let unroll ?assignable_pis ?(strapped = []) nl ~frames ~scanned =
  if frames < 1 then invalid_arg "Seq_atpg.unroll: frames < 1";
  let pi_allowed =
    match assignable_pis with
    | None -> fun _ -> true
    | Some l -> fun v -> List.mem v l
  in
  let strap_copy = Hashtbl.create 4 in
  let n = Netlist.n_nodes nl in
  let u = Netlist.create ~name:(Netlist.circuit_name nl ^ "_unrolled") () in
  (* node_map.(t).(v) = copy of node v in frame t *)
  let node_map = Array.make_matrix frames n (-1) in
  let assignable = ref [] in
  let observe = ref [] in
  let is_scanned = Array.make n false in
  List.iter (fun d -> is_scanned.(d) <- true) scanned;
  let order = Netlist.comb_order nl in
  for t = 0 to frames - 1 do
    (* Sources first: Dffs. *)
    List.iter
      (fun v ->
        match Netlist.kind nl v with
        | Netlist.Dff ->
          let name = Printf.sprintf "%s@%d" (Netlist.node_name nl v) t in
          if t = 0 then begin
            let pi = Netlist.add u ~name Netlist.Pi [||] in
            node_map.(0).(v) <- pi;
            if is_scanned.(v) then assignable := pi :: !assignable
            (* unscanned frame-0 state: PI left unassignable = X *)
          end
          else begin
            (* Functional edge: this frame's state is last frame's D. *)
            let d_src = (Netlist.fanin nl v).(0) in
            let prev = node_map.(t - 1).(d_src) in
            node_map.(t).(v) <- Netlist.add u ~name Netlist.Buf [| prev |]
          end
        | _ -> ())
      order;
    (* Combinational copies. *)
    List.iter
      (fun v ->
        match Netlist.kind nl v with
        | Netlist.Dff -> ()
        | Netlist.Pi ->
          if List.mem v strapped then begin
            let pi =
              match Hashtbl.find_opt strap_copy v with
              | Some pi -> pi
              | None ->
                let pi =
                  Netlist.add u ~name:(Netlist.node_name nl v) Netlist.Pi [||]
                in
                Hashtbl.replace strap_copy v pi;
                if pi_allowed v then assignable := pi :: !assignable;
                pi
            in
            node_map.(t).(v) <- pi
          end
          else begin
            let name = Printf.sprintf "%s@%d" (Netlist.node_name nl v) t in
            let pi = Netlist.add u ~name Netlist.Pi [||] in
            node_map.(t).(v) <- pi;
            if pi_allowed v then assignable := pi :: !assignable
          end
        | k ->
          let fi = Array.map (fun f -> node_map.(t).(f)) (Netlist.fanin nl v) in
          Array.iter (fun f -> assert (f >= 0)) fi;
          let name = Printf.sprintf "%s@%d" (Netlist.node_name nl v) t in
          let id = Netlist.add u ~name k fi in
          node_map.(t).(v) <- id;
          if k = Netlist.Po then observe := id :: !observe)
      order
  done;
  (* Scan-out observation: final-frame D input of scanned DFFs. *)
  List.iter
    (fun v ->
      if is_scanned.(v) then begin
        let d_src = (Netlist.fanin nl v).(0) in
        let po =
          Netlist.add u
            ~name:(Printf.sprintf "scanout_%s" (Netlist.node_name nl v))
            Netlist.Po
            [| node_map.(frames - 1).(d_src) |]
        in
        observe := po :: !observe
      end)
    (Netlist.dffs nl);
  let map_fault f =
    List.init frames (fun t ->
        { f with Fault.node = node_map.(t).(f.Fault.node) })
    |> List.filter (fun f' -> f'.Fault.node >= 0)
  in
  Hft_obs.Registry.incr "hft.seq_atpg.frames_expanded" ~by:frames;
  Hft_obs.Registry.incr "hft.seq_atpg.unrolls";
  (u, List.rev !assignable, List.rev !observe, map_fault)

let run ?(backtrack_limit = 200) ?(min_frames = 1) ?(max_frames = 6)
    ?assignable_pis ?strapped nl ~faults ~scanned =
  Hft_obs.Span.with_ "seq-atpg"
    ~attrs:
      [ ("circuit", Netlist.circuit_name nl);
        ("faults", string_of_int (List.length faults));
        ("scanned", string_of_int (List.length scanned)) ]
  @@ fun () ->
  let detected = ref 0 and untestable = ref 0 and aborted = ref 0 in
  let decisions = ref 0 and backtracks = ref 0 and implications = ref 0 in
  let frames_used = ref 0 in
  (* Pre-build unrolled circuits per frame count (shared across
     faults). *)
  let unrolled =
    Array.init max_frames (fun i ->
        lazy (unroll ?assignable_pis ?strapped nl ~frames:(i + 1) ~scanned))
  in
  List.iter
    (fun f ->
      let rec attempt frames last =
        if frames > max_frames then last
        else begin
          let u, assignable, observe, map_fault =
            Lazy.force unrolled.(frames - 1)
          in
          let result, effort =
            Podem.generate ~backtrack_limit u ~faults:(map_fault f)
              ~assignable ~observe
          in
          decisions := !decisions + effort.Podem.decisions;
          backtracks := !backtracks + effort.Podem.backtracks;
          implications := !implications + effort.Podem.implications;
          if frames > !frames_used then frames_used := frames;
          match result with
          | Podem.Test _ -> `Detected
          | Podem.Untestable ->
            (* May become testable with more frames. *)
            attempt (frames + 1) `Untestable
          | Podem.Aborted -> attempt (frames + 1) `Aborted
        end
      in
      match attempt (min min_frames max_frames) `Untestable with
      | `Detected -> incr detected
      | `Untestable -> incr untestable
      | `Aborted -> incr aborted)
    faults;
  Hft_obs.Registry.incr "hft.seq_atpg.faults" ~by:(List.length faults);
  Hft_obs.Registry.incr "hft.seq_atpg.detected" ~by:!detected;
  Hft_obs.Span.add_attr_int "detected" !detected;
  {
    detected = !detected;
    untestable = !untestable;
    aborted = !aborted;
    total = List.length faults;
    decisions = !decisions;
    backtracks = !backtracks;
    implications = !implications;
    frames_used = !frames_used;
  }
