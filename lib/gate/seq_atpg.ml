type stats = {
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
  decisions : int;
  backtracks : int;
  implications : int;
  frames_used : int;
}

type strategy = Naive | Drop

type test = {
  t_frames : int;
  t_pi_vectors : bool array array;
  t_scan_state : bool array;
  t_detects : Fault.t list;
}

let fault_coverage s =
  if s.total = 0 then 1.0 else float_of_int s.detected /. float_of_int s.total

(* Where an unrolled assignable PI comes from, for reconstructing tests
   in terms of the original circuit. *)
type origin =
  | Orig_pi of int * int  (* original PI node, frame *)
  | Strapped_pi of int    (* original PI node, all frames share one copy *)
  | Scan_state of int     (* scanned DFF node, frame-0 load *)

type unrolled = {
  u_net : Netlist.t;
  u_assignable : int list;
  u_observe : int list;
  u_map_fault : Fault.t -> Fault.t list;
  u_origin : (int, origin) Hashtbl.t;
  u_frames : int;
}

let unroll_full ?assignable_pis ?(strapped = []) nl ~frames ~scanned =
  if frames < 1 then invalid_arg "Seq_atpg.unroll: frames < 1";
  (* Membership probes are per-node in the copy loop: precompute hash
     sets instead of [List.mem] scans. *)
  let pi_allowed =
    match assignable_pis with
    | None -> fun _ -> true
    | Some l ->
      let h = Hashtbl.create (List.length l + 1) in
      List.iter (fun v -> Hashtbl.replace h v ()) l;
      fun v -> Hashtbl.mem h v
  in
  let is_strapped =
    let h = Hashtbl.create (List.length strapped + 1) in
    List.iter (fun v -> Hashtbl.replace h v ()) strapped;
    fun v -> Hashtbl.mem h v
  in
  let strap_copy = Hashtbl.create 4 in
  let n = Netlist.n_nodes nl in
  let u = Netlist.create ~name:(Netlist.circuit_name nl ^ "_unrolled") () in
  (* node_map.(t).(v) = copy of node v in frame t *)
  let node_map = Array.make_matrix frames n (-1) in
  let assignable = ref [] in
  let observe = ref [] in
  let origin = Hashtbl.create 16 in
  let is_scanned = Array.make n false in
  List.iter (fun d -> is_scanned.(d) <- true) scanned;
  let order = Netlist.comb_order nl in
  for t = 0 to frames - 1 do
    (* Sources first: Dffs. *)
    List.iter
      (fun v ->
        match Netlist.kind nl v with
        | Netlist.Dff ->
          let name = Printf.sprintf "%s@%d" (Netlist.node_name nl v) t in
          if t = 0 then begin
            let pi = Netlist.add u ~name Netlist.Pi [||] in
            node_map.(0).(v) <- pi;
            if is_scanned.(v) then begin
              assignable := pi :: !assignable;
              Hashtbl.replace origin pi (Scan_state v)
            end
            (* unscanned frame-0 state: PI left unassignable = X *)
          end
          else begin
            (* Functional edge: this frame's state is last frame's D. *)
            let d_src = (Netlist.fanin nl v).(0) in
            let prev = node_map.(t - 1).(d_src) in
            node_map.(t).(v) <- Netlist.add u ~name Netlist.Buf [| prev |]
          end
        | _ -> ())
      order;
    (* Combinational copies. *)
    List.iter
      (fun v ->
        match Netlist.kind nl v with
        | Netlist.Dff -> ()
        | Netlist.Pi ->
          if is_strapped v then begin
            let pi =
              match Hashtbl.find_opt strap_copy v with
              | Some pi -> pi
              | None ->
                let pi =
                  Netlist.add u ~name:(Netlist.node_name nl v) Netlist.Pi [||]
                in
                Hashtbl.replace strap_copy v pi;
                if pi_allowed v then begin
                  assignable := pi :: !assignable;
                  Hashtbl.replace origin pi (Strapped_pi v)
                end;
                pi
            in
            node_map.(t).(v) <- pi
          end
          else begin
            let name = Printf.sprintf "%s@%d" (Netlist.node_name nl v) t in
            let pi = Netlist.add u ~name Netlist.Pi [||] in
            node_map.(t).(v) <- pi;
            if pi_allowed v then begin
              assignable := pi :: !assignable;
              Hashtbl.replace origin pi (Orig_pi (v, t))
            end
          end
        | k ->
          let fi = Array.map (fun f -> node_map.(t).(f)) (Netlist.fanin nl v) in
          Array.iter (fun f -> assert (f >= 0)) fi;
          let name = Printf.sprintf "%s@%d" (Netlist.node_name nl v) t in
          let id = Netlist.add u ~name k fi in
          node_map.(t).(v) <- id;
          if k = Netlist.Po then observe := id :: !observe)
      order
  done;
  (* Scan-out observation: final-frame D input of scanned DFFs. *)
  List.iter
    (fun v ->
      if is_scanned.(v) then begin
        let d_src = (Netlist.fanin nl v).(0) in
        let po =
          Netlist.add u
            ~name:(Printf.sprintf "scanout_%s" (Netlist.node_name nl v))
            Netlist.Po
            [| node_map.(frames - 1).(d_src) |]
        in
        observe := po :: !observe
      end)
    (Netlist.dffs nl);
  let map_fault f =
    List.init frames (fun t ->
        { f with Fault.node = node_map.(t).(f.Fault.node) })
    |> List.filter (fun f' -> f'.Fault.node >= 0)
  in
  Hft_obs.Registry.incr "hft.seq_atpg.frames_expanded" ~by:frames;
  Hft_obs.Registry.incr "hft.seq_atpg.unrolls";
  {
    u_net = u;
    u_assignable = List.rev !assignable;
    u_observe = List.rev !observe;
    u_map_fault = map_fault;
    u_origin = origin;
    u_frames = frames;
  }

let unroll ?assignable_pis ?strapped nl ~frames ~scanned =
  let u = unroll_full ?assignable_pis ?strapped nl ~frames ~scanned in
  (u.u_net, u.u_assignable, u.u_observe, u.u_map_fault)

(* Rebuild a test in original-circuit terms from a PODEM assignment over
   unrolled PIs.  Unassigned inputs (X in the test cube) are filled with
   0 — any concrete fill keeps the test valid for the targeted fault. *)
let reconstruct_test nl ~scanned u assignment ~detects =
  let pis = Netlist.pis nl in
  let pi_col = Hashtbl.create (List.length pis) in
  List.iteri (fun i v -> Hashtbl.replace pi_col v i) pis;
  let scan_col = Hashtbl.create (List.length scanned + 1) in
  List.iteri (fun i v -> Hashtbl.replace scan_col v i) scanned;
  let vectors = Array.make_matrix u.u_frames (List.length pis) false in
  let state = Array.make (List.length scanned) false in
  List.iter
    (fun (upi, b) ->
      match Hashtbl.find_opt u.u_origin upi with
      | Some (Orig_pi (v, t)) -> vectors.(t).(Hashtbl.find pi_col v) <- b
      | Some (Strapped_pi v) ->
        let c = Hashtbl.find pi_col v in
        Array.iter (fun row -> row.(c) <- b) vectors
      | Some (Scan_state d) -> state.(Hashtbl.find scan_col d) <- b
      | None -> ())
    assignment;
  {
    t_frames = u.u_frames;
    t_pi_vectors = vectors;
    t_scan_state = state;
    t_detects = detects;
  }

(* Confirm which of [faults] the reconstructed tests detect.  Each test
   is applied on the unrolled circuit — frame-0 unscanned state held at
   0, the concrete counterpart of the X that PODEM guaranteed detection
   under — with the cone-limited group check, and only against the
   pending faults it was proven to detect during generation
   ([t_detects]), so the cost is a handful of small cone replays rather
   than whole-netlist sequential passes.  Detected faults are dropped
   between tests. *)
let replay ?assignable_pis ?strapped nl ~scanned ~tests faults =
  let pis = Netlist.pis nl in
  let pi_col = Hashtbl.create (List.length pis) in
  List.iteri (fun i v -> Hashtbl.replace pi_col v i) pis;
  let scan_col = Hashtbl.create (List.length scanned + 1) in
  List.iteri (fun i v -> Hashtbl.replace scan_col v i) scanned;
  let by_frames = Hashtbl.create 4 in
  List.iter
    (fun t ->
      let prev = try Hashtbl.find by_frames t.t_frames with Not_found -> [] in
      Hashtbl.replace by_frames t.t_frames (t :: prev))
    tests;
  let frame_counts =
    Hashtbl.fold (fun k _ acc -> k :: acc) by_frames [] |> List.sort compare
  in
  let detected = ref [] in
  let pending = ref faults in
  List.iter
    (fun frames ->
      if !pending <> [] then begin
        let u = unroll_full ?assignable_pis ?strapped nl ~frames ~scanned in
        let assignment_of t =
          List.map
            (fun upi ->
              match Hashtbl.find_opt u.u_origin upi with
              | Some (Orig_pi (v, fr)) ->
                (upi, t.t_pi_vectors.(fr).(Hashtbl.find pi_col v))
              | Some (Strapped_pi v) ->
                (upi, t.t_pi_vectors.(0).(Hashtbl.find pi_col v))
              | Some (Scan_state d) ->
                (upi, t.t_scan_state.(Hashtbl.find scan_col d))
              | None -> (upi, false))
            (Netlist.pis u.u_net)
        in
        List.iter
          (fun t ->
            let ps =
              List.filter (fun f -> List.mem f t.t_detects) !pending
            in
            match ps with
            | [] -> ()
            | ps ->
              let flags =
                Fsim.detect_groups u.u_net ~assignment:(assignment_of t)
                  ~observe:u.u_observe
                  (List.map u.u_map_fault ps)
              in
              let hit = Hashtbl.create (List.length ps) in
              List.iteri
                (fun i f -> if flags.(i) then Hashtbl.replace hit f ())
                ps;
              pending :=
                List.filter
                  (fun f ->
                    if Hashtbl.mem hit f then begin
                      detected := f :: !detected;
                      false
                    end
                    else true)
                  !pending)
          (List.rev (Hashtbl.find by_frames frames))
      end)
    frame_counts;
  (List.rev !detected, !pending)

(* One speculated PODEM attempt of the frame-growing ladder for one
   class, evaluated on a worker domain: the supervised search outcome,
   the tape of observability writes it deferred ({!Hft_obs.Capture}),
   and — when the ladder failed — the speculated salvage-pattern search
   with its own tape.  The orchestrator replays tapes at commit time in
   class order, so committed telemetry is bit-identical to a sequential
   run; tapes of discarded speculation (the class was dropped first)
   are simply never replayed. *)
type spec_attempt = {
  sp_frames : int;
  sp_outcome : (Podem.result * Podem.effort, Hft_robust.Failure.t) result;
  sp_tape : Hft_obs.Capture.tape;
  sp_salvage :
    ((((int * bool) list * int) option) * Hft_obs.Capture.tape) option;
}

let run ?(backtrack_limit = 200) ?(min_frames = 1) ?(max_frames = 6)
    ?assignable_pis ?strapped ?(strategy = Drop) ?on_test
    ?(supervisor = Some Hft_robust.Supervisor.default) ?resolved ?on_resolved
    ?guidance ?on_par_stats ?(jobs = 1) nl ~faults ~scanned =
  let jobs = Hft_par.clamp_jobs jobs in
  let t_start = Hft_obs.Clock.now () in
  Hft_obs.Span.with_ "seq-atpg"
    ~attrs:
      [ ("circuit", Netlist.circuit_name nl);
        ("faults", string_of_int (List.length faults));
        ("scanned", string_of_int (List.length scanned)) ]
  @@ fun () ->
  let detected = ref 0 and untestable = ref 0 and aborted = ref 0 in
  let decisions = ref 0 and backtracks = ref 0 and implications = ref 0 in
  let frames_used = ref 0 in
  (* Pre-build unrolled circuits per frame count (shared across
     faults). *)
  let unrolled =
    Array.init max_frames (fun i ->
        lazy (unroll_full ?assignable_pis ?strapped nl ~frames:(i + 1) ~scanned))
  in
  (* Work on one representative per structural equivalence class; every
     class member shares the representative's outcome exactly (identical
     faulty functions). *)
  let naive_groups () = List.map (fun f -> (f, [ f ])) faults in
  let groups =
    match strategy with
    | Naive -> naive_groups ()
    | Drop ->
      let collapse () =
        let fc = Fault_collapse.compute nl in
        Fault_collapse.partition fc faults
      in
      let p =
        match supervisor with
        | None -> collapse ()
        | Some _ ->
          (match
             Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Collapse
               collapse
           with
           | Ok p -> p
           | Error _ ->
             (* Degrade to one class per fault: more PODEM calls, but the
                campaign keeps going. *)
             Hft_obs.Journal.record
               (Hft_obs.Journal.Degraded
                  { site = "collapse"; action = "uncollapsed" });
             Hft_obs.Registry.incr "hft.robust.degraded";
             naive_groups ())
      in
      Hft_obs.Registry.incr "hft.seq_atpg.classes" ~by:(List.length p);
      p
  in
  let leaders = Array.of_list (List.map fst groups) in
  let members = Array.of_list (List.map snd groups) in
  let sizes = Array.of_list (List.map (fun (_, ms) -> List.length ms) groups) in
  let n_groups = Array.length leaders in
  let status = Array.make n_groups `Pending in
  let dropped = ref 0 in
  (* Forensics ledger: one row per class.  Handles are [-1] when
     observability is off, making every ledger call below a no-op; the
     [obs] guard additionally skips the display-string building. *)
  let obs = !Hft_obs.Config.enabled in
  let lh =
    if obs then
      Array.init n_groups (fun gi ->
          Hft_obs.Ledger.register_class
            ~rep:(Fault.to_string nl leaders.(gi))
            ~members:(List.map (Fault.to_string nl) members.(gi)))
    else Array.make n_groups (-1)
  in
  let rep_of gi = Fault.to_string nl leaders.(gi) in
  (* Route every class resolution through one helper so the checkpoint
     hook ([on_resolved]) sees exactly what the ledger records. *)
  let resolve_class gi res =
    Hft_obs.Ledger.resolve lh.(gi) res;
    match on_resolved with None -> () | Some k -> k ~rep:(rep_of gi) res
  in
  (* Checkpoint restore: classes the interrupted run already resolved
     keep their exact recorded resolution and are never re-targeted, so
     a resumed campaign continues bit-identically.  Restored rows go to
     the ledger directly, not through [on_resolved] — they are already
     in the checkpoint. *)
  let restored = ref 0 in
  (match resolved with
   | None -> ()
   | Some lookup ->
     Array.iteri
       (fun gi _ ->
         match lookup (rep_of gi) with
         | None -> ()
         | Some res ->
           (match res with
            | Hft_obs.Ledger.Drop_detected _ | Hft_obs.Ledger.Podem_detected _
            | Hft_obs.Ledger.Salvaged _ -> status.(gi) <- `Detected
            | Hft_obs.Ledger.Proved_untestable _ -> status.(gi) <- `Untestable
            | Hft_obs.Ledger.Aborted _ -> status.(gi) <- `Aborted
            | Hft_obs.Ledger.Never_targeted -> ());
           if status.(gi) <> `Pending then begin
             Hft_obs.Ledger.resolve lh.(gi) res;
             incr restored
           end)
       leaders);
  if !restored > 0 then
    Hft_obs.Registry.incr "hft.seq_atpg.restored" ~by:!restored;
  (* Fault dropping: fault-simulate each fresh test against every
     pending class, three-valued ([Fsim.detect_groups_tri], cone
     limited) with unassigned sources at X — a sequential circuit's
     initial state is unknown, and the X-sound check guarantees the
     dropped fault is detected for any initial state, exactly PODEM's
     own criterion.  Returns the dropped members plus the deferred
     class resolutions: the caller forwards those to [on_resolved] only
     after the test itself is serialized, so a checkpoint transaction is
     always test line first, resolution lines last. *)
  let drop_pass u assignment self tid =
    let pending = ref [] in
    for gj = n_groups - 1 downto 0 do
      if gj <> self && status.(gj) = `Pending then pending := gj :: !pending
    done;
    match !pending with
    | [] -> ([], [])
    | pending ->
      let parr = Array.of_list pending in
      let flags =
        Fsim.detect_groups_tri u.u_net
          ~on_group_events:(fun k ev ->
            Hft_obs.Ledger.charge lh.(parr.(k)) ~fsim_events:ev)
          ~assignment ~observe:u.u_observe
          (List.map (fun gj -> u.u_map_fault leaders.(gj)) pending)
      in
      let drops = ref [] and resolutions = ref [] in
      List.iteri
        (fun k gj ->
          if flags.(k) then begin
            status.(gj) <- `Detected;
            dropped := !dropped + sizes.(gj);
            let res = Hft_obs.Ledger.Drop_detected { test = tid } in
            Hft_obs.Ledger.resolve lh.(gj) res;
            resolutions := (gj, res) :: !resolutions;
            if obs then
              Hft_obs.Journal.record
                (Hft_obs.Journal.Fault_dropped { cls = lh.(gj); test = tid });
            drops := members.(gj) @ !drops
          end)
        pending;
      (!drops, List.rev !resolutions)
  in
  let safe_drop_pass u assignment self tid =
    match supervisor with
    | None -> drop_pass u assignment self tid
    | Some _ ->
      (match
         Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Fsim (fun () ->
             drop_pass u assignment self tid)
       with
       | Ok r -> r
       | Error _ ->
         (* Lose the sweep, keep the test: pending classes get their own
            PODEM attempt later. *)
         Hft_obs.Journal.record
           (Hft_obs.Journal.Degraded
              { site = "fsim"; action = "drop-pass-skipped" });
         Hft_obs.Registry.incr "hft.robust.degraded";
         ([], []))
  in
  let emit_resolutions rs =
    match on_resolved with
    | None -> ()
    | Some k -> List.iter (fun (gj, res) -> k ~rep:(rep_of gj) res) rs
  in
  (* One PODEM invocation under the supervisor's retry ladder (budget
     escalation + per-attempt deadlines); unsupervised calls keep the
     historical direct path, bit for bit. *)
  let podem_call u f =
    let faults = u.u_map_fault f in
    let gd =
      Option.map (fun provide -> provide u.u_net ~observe:u.u_observe ~faults)
        guidance
    in
    match supervisor with
    | None ->
      Ok
        (Podem.generate ~backtrack_limit ?guidance:gd u.u_net ~faults
           ~assignable:u.u_assignable ~observe:u.u_observe)
    | Some policy ->
      Hft_robust.Supervisor.ladder policy ~site:Hft_robust.Chaos.Podem
        ~budget:backtrack_limit (fun ~budget ~check ->
          Podem.generate ~backtrack_limit:budget ?check ?guidance:gd u.u_net
            ~faults ~assignable:u.u_assignable ~observe:u.u_observe)
  in
  (* Graceful degradation once the PODEM ladder is exhausted: a
     deterministic burst of random patterns over the unrolled inputs,
     checked three-valued (X-sound — a salvaged detection is as real as
     a PODEM one).  The salvage seed depends only on the class index and
     frame count, so an interrupted-and-resumed campaign salvages
     identically.  Misses resolve the class aborted-with-reason; the
     campaign never crashes. *)
  (* [salvage_search] is a pure function of (workspace unroll, class,
     policy) — the seed depends only on the class index and frame
     count — so worker domains can speculate it; [salvage_commit]
     performs the side-effecting half (test registration, drop pass,
     resolutions) and only ever runs on the orchestrating thread. *)
  let salvage_search policy u gi =
    let try_salvage () =
      let rng = Hft_util.Rng.create (0x5a17a6e + (7919 * gi) + u.u_frames) in
      let found = ref None in
      let tries = ref 0 in
      while
        !found = None
        && !tries < policy.Hft_robust.Supervisor.salvage_patterns
      do
        incr tries;
        let assignment =
          List.map (fun pi -> (pi, Hft_util.Rng.bool rng)) u.u_assignable
        in
        let flags =
          Fsim.detect_groups_tri u.u_net ~assignment ~observe:u.u_observe
            [ u.u_map_fault leaders.(gi) ]
        in
        if flags.(0) then found := Some (assignment, !tries)
      done;
      !found
    in
    if policy.Hft_robust.Supervisor.salvage_patterns <= 0 then None
    else
      match
        Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Fsim try_salvage
      with
      | Ok r -> r
      | Error _ -> None
  in
  let salvage_commit policy u gi fail found =
    match found with
    | Some (assignment, patterns) ->
      let tid = Hft_obs.Ledger.register_test ~frames:u.u_frames in
      let drops, resolutions = safe_drop_pass u assignment gi tid in
      if obs then
        Hft_obs.Journal.record
          (Hft_obs.Journal.Test_generated { test = tid; frames = u.u_frames });
      Hft_obs.Journal.record
        (Hft_obs.Journal.Degraded { site = "podem"; action = "salvage" });
      Hft_obs.Registry.incr "hft.robust.salvaged";
      (match on_test with
       | Some k ->
         k
           (reconstruct_test nl ~scanned u assignment
              ~detects:(members.(gi) @ drops))
       | None -> ());
      emit_resolutions resolutions;
      resolve_class gi (Hft_obs.Ledger.Salvaged { test = tid; patterns });
      `Detected
    | None ->
      let budget =
        Hft_robust.Supervisor.final_budget policy ~budget:backtrack_limit
      in
      Hft_obs.Journal.record
        (Hft_obs.Journal.Degraded { site = "podem"; action = "abort" });
      Hft_obs.Registry.incr "hft.robust.degraded";
      resolve_class gi
        (Hft_obs.Ledger.Aborted
           { budget; frames = u.u_frames;
             reason = Some (Hft_robust.Failure.to_string fail) });
      `Aborted
  in
  (* Target one class through the growing-frames ladder and commit its
     resolution.  [spec] carries per-frame attempts a worker domain
     evaluated speculatively: a matching attempt replays its captured
     telemetry and reuses the search outcome instead of re-running
     PODEM; on any mismatch (or no speculation at all — [jobs = 1],
     dead shard) the attempt is computed inline by exactly the code the
     sequential engine runs.  Commit order is class order either way,
     so results and telemetry are bit-identical at any jobs count. *)
  let process_class ?(spec = []) gi f =
    let cls_backtracks = ref 0 in
    let rec attempt spec frames last =
      if frames > max_frames then begin
        (match last with
         | `Untestable ->
           resolve_class gi
             (Hft_obs.Ledger.Proved_untestable { frames = max_frames })
         | `Aborted ->
           resolve_class gi
             (Hft_obs.Ledger.Aborted
                { budget = backtrack_limit; frames = max_frames;
                  reason = None })
         | _ -> ());
        last
      end
      else begin
        let u = Lazy.force unrolled.(frames - 1) in
        if obs then
          Hft_obs.Journal.record
            (Hft_obs.Journal.Atpg_target
               { cls = lh.(gi); rep = Fault.to_string nl f; frames });
        let outcome, spec_salvage, spec_rest =
          match spec with
          | sa :: rest when sa.sp_frames = frames ->
            Hft_obs.Capture.replay sa.sp_tape;
            (sa.sp_outcome, sa.sp_salvage, rest)
          | _ -> (podem_call u f, None, [])
        in
        match outcome with
        | Error fail ->
          (* Ladder exhausted at this frame count: the failure is
             not frame-related (timeout / injection / exception), so
             degrade right here instead of burning more frames. *)
          (match supervisor with
           | Some policy ->
             let found =
               match spec_salvage with
               | Some (found, stape) ->
                 Hft_obs.Capture.replay stape;
                 found
               | None -> salvage_search policy u gi
             in
             salvage_commit policy u gi fail found
           | None -> assert false)
        | Ok (result, effort) ->
          decisions := !decisions + effort.Podem.decisions;
          backtracks := !backtracks + effort.Podem.backtracks;
          implications := !implications + effort.Podem.implications;
          cls_backtracks := !cls_backtracks + effort.Podem.backtracks;
          Hft_obs.Ledger.charge lh.(gi)
            ~implications:effort.Podem.implications
            ~backtracks:effort.Podem.backtracks
            ~guided_cuts:effort.Podem.guided_cuts;
          if obs && effort.Podem.static_proof then
            Hft_obs.Journal.record
              (Hft_obs.Journal.Static_untestable
                 { cls = lh.(gi); frames });
          if obs then
            Hft_obs.Journal.record
              (Hft_obs.Journal.Podem_result
                 { cls = lh.(gi);
                   outcome =
                     (match result with
                      | Podem.Test _ -> "test"
                      | Podem.Untestable -> "untestable"
                      | Podem.Aborted -> "aborted");
                   frames;
                   backtracks = effort.Podem.backtracks });
          if frames > !frames_used then frames_used := frames;
          match result with
          | Podem.Test assignment ->
            let tid = Hft_obs.Ledger.register_test ~frames in
            (* Drop first: the test's recorded detections then cover
               both the targeted class and every class it swept. *)
            let drops, resolutions =
              if strategy = Drop then safe_drop_pass u assignment gi tid
              else ([], [])
            in
            if obs then
              Hft_obs.Journal.record
                (Hft_obs.Journal.Test_generated { test = tid; frames });
            (match on_test with
             | Some k ->
               k (reconstruct_test nl ~scanned u assignment
                    ~detects:(members.(gi) @ drops))
             | None -> ());
            emit_resolutions resolutions;
            resolve_class gi
              (Hft_obs.Ledger.Podem_detected
                 { test = tid; backtracks = !cls_backtracks; frames });
            `Detected
          | Podem.Untestable ->
            (* May become testable with more frames. *)
            attempt spec_rest (frames + 1) `Untestable
          | Podem.Aborted -> attempt spec_rest (frames + 1) `Aborted
      end
    in
    status.(gi) <- attempt spec (min min_frames max_frames) `Untestable
  in
  (* Speculative evaluation of one class on a worker domain: run the
     same frame ladder [process_class] will walk, with every
     observability write captured onto tapes.  Workspaces are
     per-worker unroll caches built from the (read-only) original
     netlist; their construction cost is suppressed outright — it has
     no sequential counterpart. *)
  let ws_unroll ws frames =
    match ws.(frames - 1) with
    | Some u -> u
    | None ->
      let u =
        Hft_obs.Capture.suppress (fun () ->
            unroll_full ?assignable_pis ?strapped nl ~frames ~scanned)
      in
      ws.(frames - 1) <- Some u;
      u
  in
  let eval_class ws gi =
    let f = leaders.(gi) in
    let rec go frames acc =
      let u = ws_unroll ws frames in
      let outcome, tape = Hft_obs.Capture.record (fun () -> podem_call u f) in
      match outcome with
      | Ok (Podem.Test _, _) ->
        List.rev
          ({ sp_frames = frames; sp_outcome = outcome; sp_tape = tape;
             sp_salvage = None }
           :: acc)
      | Ok ((Podem.Untestable | Podem.Aborted), _) ->
        let acc =
          { sp_frames = frames; sp_outcome = outcome; sp_tape = tape;
            sp_salvage = None }
          :: acc
        in
        if frames >= max_frames then List.rev acc else go (frames + 1) acc
      | Error _ ->
        let sp_salvage =
          match supervisor with
          | None -> None
          | Some policy ->
            Some (Hft_obs.Capture.record (fun () -> salvage_search policy u gi))
        in
        List.rev
          ({ sp_frames = frames; sp_outcome = outcome; sp_tape = tape;
             sp_salvage }
           :: acc)
    in
    go (min min_frames max_frames) []
  in
  (* Parallel driver: windows of ~2×jobs pending classes are evaluated
     speculatively across the pool, then committed strictly in class
     order.  A class dropped by an earlier commit discards its
     speculation (tapes never replayed); a shard death leaves [None]
     results that commit inline — the window size trades speculation
     waste against parallelism and cannot affect results. *)
  let par_stats = ref None in
  let run_parallel pool =
    (* Warm the original netlist's derived caches before handing it to
       worker domains: afterwards every access is read-only. *)
    ignore (Netlist.comb_order nl);
    (* Scheduler telemetry rides along only when a consumer asked for
       it; the collector is observational either way (commit order and
       replayed tapes are untouched). *)
    let stats =
      Option.map (fun _ -> Hft_par.Stats.collector ~jobs) on_par_stats
    in
    Hft_par.Pool.parallel pool ?stats
      ~init:(fun () -> Array.make max_frames None)
    @@ fun section ->
    let win = 2 * jobs in
    let cursor = ref 0 in
    while !cursor < n_groups do
      let chunk_start = !cursor in
      let picked = ref [] in
      let count = ref 0 in
      let i = ref chunk_start in
      while !count < win && !i < n_groups do
        if status.(!i) = `Pending then begin
          picked := !i :: !picked;
          incr count
        end;
        incr i
      done;
      let chunk_end = !i in
      let window = Array.of_list (List.rev !picked) in
      let specs, fails =
        if Array.length window = 0 then ([||], [])
        else begin
          (match stats with
           | Some c ->
             Hft_par.Stats.note_window c ~filled:(Array.length window)
               ~cap:win
           | None -> ());
          section.run ~n:(Array.length window) ~f:(fun ws k ->
              eval_class ws window.(k))
        end
      in
      List.iter
        (fun _fail ->
          Hft_obs.Journal.record
            (Hft_obs.Journal.Degraded
               { site = "shard"; action = "sequential-fallback" });
          Hft_obs.Registry.incr "hft.robust.degraded")
        fails;
      (* Commit strictly in class order.  [window] is exactly the
         classes of [chunk_start, chunk_end) that were pending at pick
         time, in ascending order, so iterating it is the same loop the
         sequential chunk walk ran — plus per-task speculation
         accounting: a still-pending class replays its speculation
         (hit) or recomputes inline (dead shard); a class resolved by
         an earlier commit discards it (miss).  Exactly one bucket per
         dispatched task. *)
      Array.iteri
        (fun k gi ->
          if status.(gi) = `Pending then
            match specs.(k) with
            | Some spec ->
              (match stats with
               | Some c -> Hft_par.Stats.note_hit c ~task:k
               | None -> ());
              process_class ~spec gi leaders.(gi)
            | None ->
              (match stats with
               | Some c -> Hft_par.Stats.note_inline c
               | None -> ());
              process_class gi leaders.(gi)
          else
            match stats with
            | Some c -> Hft_par.Stats.note_miss c ~task:k
            | None -> ())
        window;
      cursor := chunk_end
    done;
    match stats with
    | Some c -> par_stats := Some (Hft_par.Stats.finish c ~classes:n_groups)
    | None -> ()
  in
  if jobs > 1 && n_groups > 1 then run_parallel (Hft_par.Pool.get ~jobs)
  else
    Array.iteri
      (fun gi f -> if status.(gi) = `Pending then process_class gi f)
      leaders;
  (match on_par_stats with
   | None -> ()
   | Some k ->
     let s =
       match !par_stats with
       | Some s -> s
       | None ->
         (* Sequential path: synthesize the degenerate summary so every
            consumer sees a utilization field. *)
         Hft_par.Stats.sequential ~classes:n_groups
           ~wall_ns:
             (int_of_float ((Hft_obs.Clock.now () -. t_start) *. 1e9))
     in
     k s);
  Array.iteri
    (fun gi st ->
      match st with
      | `Detected -> detected := !detected + sizes.(gi)
      | `Untestable -> untestable := !untestable + sizes.(gi)
      | `Aborted -> aborted := !aborted + sizes.(gi)
      | `Pending -> assert false)
    status;
  Hft_obs.Registry.incr "hft.seq_atpg.faults" ~by:(List.length faults);
  Hft_obs.Registry.incr "hft.seq_atpg.detected" ~by:!detected;
  Hft_obs.Registry.incr "hft.seq_atpg.dropped" ~by:!dropped;
  Hft_obs.Span.add_attr_int "detected" !detected;
  Hft_obs.Span.add_attr_int "dropped" !dropped;
  {
    detected = !detected;
    untestable = !untestable;
    aborted = !aborted;
    total = List.length faults;
    decisions = !decisions;
    backtracks = !backtracks;
    implications = !implications;
    frames_used = !frames_used;
  }
