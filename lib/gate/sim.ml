open Hft_util

type pstate = { values : Bitvec.t array; n_patterns : int }

let pcreate nl ~n_patterns =
  {
    values = Array.init (Netlist.n_nodes nl) (fun _ -> Bitvec.create n_patterns);
    n_patterns;
  }

let pset_pi st pi v = Bitvec.assign ~dst:st.values.(pi) v

let pset_state = pset_pi
let pvalue st v = st.values.(v)

(* Fault forcing helpers.  The common case in the hot simulation loops
   is a list of one or two injection sites (one logical fault, possibly
   replicated across time frames): a direct scan of such a list beats
   any table.  Long lists — batch forcing — are preprocessed into hash
   tables so per-node probes stay O(1).  Forcing semantics match the
   original list scans either way: for stem faults the last matching
   entry wins, for pin faults the first. *)
type fault_tab =
  | Ft_list of Fault.t list
  | Ft_tab of {
      ft_stem : (int, Fault.t) Hashtbl.t;
      ft_pin : (int * int, Fault.t) Hashtbl.t;
    }

let fault_tab faults =
  if List.compare_length_with faults 8 <= 0 then Ft_list faults
  else begin
    let ft_stem = Hashtbl.create 16 and ft_pin = Hashtbl.create 16 in
    List.iter
      (fun f ->
        match f.Fault.pin with
        | None -> Hashtbl.replace ft_stem f.Fault.node f
        | Some p ->
          if not (Hashtbl.mem ft_pin (f.Fault.node, p)) then
            Hashtbl.add ft_pin (f.Fault.node, p) f)
      faults;
    Ft_tab { ft_stem; ft_pin }
  end

(* Closure-free list probes: the simulator calls these per node (stem)
   and per gate input (pin), so they must not allocate on the miss
   path — hand-rolled recursion instead of [List.find_opt]. *)
let rec list_stem_fault fs v best =
  match fs with
  | [] -> best
  | f :: tl ->
    list_stem_fault tl v
      (if f.Fault.pin = None && f.Fault.node = v then Some f else best)

let rec list_pin_fault fs v p =
  match fs with
  | [] -> None
  | f :: tl ->
    (match f.Fault.pin with
     | Some q when q = p && f.Fault.node = v -> Some f
     | _ -> list_pin_fault tl v p)

let stem_fault tab v =
  match tab with
  | Ft_list fs -> list_stem_fault fs v None
  | Ft_tab t -> Hashtbl.find_opt t.ft_stem v

let pin_fault tab v p =
  match tab with
  | Ft_list fs -> list_pin_fault fs v p
  | Ft_tab t -> Hashtbl.find_opt t.ft_pin (v, p)

let force_bitvec dst stuck =
  Bitvec.fill dst stuck

let peval ?(faults = []) nl st =
  let order = Netlist.comb_order nl in
  let tab = fault_tab faults in
  let scratch = Array.init 3 (fun _ -> Bitvec.create st.n_patterns) in
  let read v consumer pin =
    match pin_fault tab consumer pin with
    | Some f ->
      let tmp = scratch.(pin) in
      force_bitvec tmp f.Fault.stuck;
      tmp
    | None -> st.values.(v)
  in
  List.iter
    (fun v ->
      (match Netlist.kind nl v with
       | Netlist.Pi | Netlist.Dff -> () (* sources: keep assigned values *)
       | Netlist.Const0 -> Bitvec.fill st.values.(v) false
       | Netlist.Const1 -> Bitvec.fill st.values.(v) true
       | Netlist.Po | Netlist.Buf ->
         Bitvec.assign ~dst:st.values.(v) (read (Netlist.fanin nl v).(0) v 0)
       | Netlist.Not ->
         Bitvec.not_ ~dst:st.values.(v) (read (Netlist.fanin nl v).(0) v 0)
       | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
       | Netlist.Xnor ->
         let fi = Netlist.fanin nl v in
         let a = read fi.(0) v 0 and b = read fi.(1) v 1 in
         (match Netlist.kind nl v with
          | Netlist.And -> Bitvec.and_ ~dst:st.values.(v) a b
          | Netlist.Or -> Bitvec.or_ ~dst:st.values.(v) a b
          | Netlist.Xor -> Bitvec.xor ~dst:st.values.(v) a b
          | Netlist.Nand ->
            Bitvec.and_ ~dst:scratch.(2) a b;
            Bitvec.not_ ~dst:st.values.(v) scratch.(2)
          | Netlist.Nor ->
            Bitvec.or_ ~dst:scratch.(2) a b;
            Bitvec.not_ ~dst:st.values.(v) scratch.(2)
          | Netlist.Xnor ->
            Bitvec.xor ~dst:scratch.(2) a b;
            Bitvec.not_ ~dst:st.values.(v) scratch.(2)
          | _ -> assert false)
       | Netlist.Mux2 ->
         let fi = Netlist.fanin nl v in
         let s = read fi.(0) v 0 in
         let a = read fi.(1) v 1 and b = read fi.(2) v 2 in
         Bitvec.mux ~dst:st.values.(v) s a b);
      (* Stem faults override the computed value. *)
      match stem_fault tab v with
      | Some f -> force_bitvec st.values.(v) f.Fault.stuck
      | None -> ())
    order

let pclock ?(faults = []) nl st =
  (* Sample D inputs simultaneously. *)
  let dffs = Netlist.dffs nl in
  let tab = fault_tab faults in
  let sampled =
    List.map
      (fun d ->
        let src = (Netlist.fanin nl d).(0) in
        let v =
          match pin_fault tab d 0 with
          | Some f ->
            let tmp = Bitvec.create st.n_patterns in
            force_bitvec tmp f.Fault.stuck;
            tmp
          | None -> Bitvec.copy st.values.(src)
        in
        (d, v))
      dffs
  in
  List.iter
    (fun (d, v) ->
      Bitvec.assign ~dst:st.values.(d) v;
      (* Stem fault on the DFF forces its state. *)
      match stem_fault tab d with
      | Some f -> force_bitvec st.values.(d) f.Fault.stuck
      | None -> ())
    sampled

type tstate = int array

let tcreate nl = Array.make (Netlist.n_nodes nl) 2

(* Single-node 3-valued evaluation with fault forcing — non-allocating;
   shared by the full pass ([teval]), the cone-limited re-evaluation
   ([teval_nodes]) and the event-driven walk ([teval_dirty]).  The
   faultless case (every good-machine pass) skips the probes
   entirely. *)
let teval_read tab (st : tstate) (fi : int array) pin v =
  match pin_fault tab v pin with
  | Some f -> if f.Fault.stuck then 1 else 0
  | None -> Array.unsafe_get st (Array.unsafe_get fi pin)

let teval_node_nofault kinds fanins (st : tstate) v =
  match Array.unsafe_get kinds v with
  | Netlist.Pi | Netlist.Dff -> ()
  | Netlist.Const0 -> Array.unsafe_set st v 0
  | Netlist.Const1 -> Array.unsafe_set st v 1
  | k ->
    let fi = Array.unsafe_get fanins v in
    let a = Array.unsafe_get st (Array.unsafe_get fi 0) in
    Array.unsafe_set st v
      (match k with
       | Netlist.Po | Netlist.Buf -> a
       | Netlist.Not -> Netlist.tri_not a
       | Netlist.And ->
         Netlist.tri_and a (Array.unsafe_get st (Array.unsafe_get fi 1))
       | Netlist.Or ->
         Netlist.tri_or a (Array.unsafe_get st (Array.unsafe_get fi 1))
       | Netlist.Nand ->
         Netlist.tri_not
           (Netlist.tri_and a (Array.unsafe_get st (Array.unsafe_get fi 1)))
       | Netlist.Nor ->
         Netlist.tri_not
           (Netlist.tri_or a (Array.unsafe_get st (Array.unsafe_get fi 1)))
       | Netlist.Xor ->
         Netlist.tri_xor a (Array.unsafe_get st (Array.unsafe_get fi 1))
       | Netlist.Xnor ->
         Netlist.tri_not
           (Netlist.tri_xor a (Array.unsafe_get st (Array.unsafe_get fi 1)))
       | Netlist.Mux2 ->
         Netlist.tri_mux a
           (Array.unsafe_get st (Array.unsafe_get fi 1))
           (Array.unsafe_get st (Array.unsafe_get fi 2))
       | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1 ->
         assert false)

let teval_node_faulty tab kinds fanins (st : tstate) v =
  (match Array.unsafe_get kinds v with
   | Netlist.Pi | Netlist.Dff -> ()
   | Netlist.Const0 -> Array.unsafe_set st v 0
   | Netlist.Const1 -> Array.unsafe_set st v 1
   | k ->
     let fi = Array.unsafe_get fanins v in
     let a = teval_read tab st fi 0 v in
     Array.unsafe_set st v
       (match k with
        | Netlist.Po | Netlist.Buf -> a
        | Netlist.Not -> Netlist.tri_not a
        | Netlist.And -> Netlist.tri_and a (teval_read tab st fi 1 v)
        | Netlist.Or -> Netlist.tri_or a (teval_read tab st fi 1 v)
        | Netlist.Nand ->
          Netlist.tri_not (Netlist.tri_and a (teval_read tab st fi 1 v))
        | Netlist.Nor ->
          Netlist.tri_not (Netlist.tri_or a (teval_read tab st fi 1 v))
        | Netlist.Xor -> Netlist.tri_xor a (teval_read tab st fi 1 v)
        | Netlist.Xnor ->
          Netlist.tri_not (Netlist.tri_xor a (teval_read tab st fi 1 v))
        | Netlist.Mux2 ->
          Netlist.tri_mux a (teval_read tab st fi 1 v)
            (teval_read tab st fi 2 v)
        | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1 ->
          assert false));
  match stem_fault tab v with
  | Some f -> st.(v) <- (if f.Fault.stuck then 1 else 0)
  | None -> ()


let teval ?(faults = []) nl st =
  let tab = fault_tab faults in
  let kinds = Netlist.raw_kinds nl and fanins = Netlist.raw_fanins nl in
  let order = Netlist.comb_order nl in
  match tab with
  | Ft_list [] ->
    List.iter (fun v -> teval_node_nofault kinds fanins st v) order
  | _ -> List.iter (fun v -> teval_node_faulty tab kinds fanins st v) order

let teval_nodes ?(faults = []) nl st nodes =
  let tab = fault_tab faults in
  let kinds = Netlist.raw_kinds nl and fanins = Netlist.raw_fanins nl in
  match tab with
  | Ft_list [] ->
    Array.iter (fun v -> teval_node_nofault kinds fanins st v) nodes
  | _ -> Array.iter (fun v -> teval_node_faulty tab kinds fanins st v) nodes

let teval_fn ?(faults = []) nl =
  let tab = fault_tab faults in
  let kinds = Netlist.raw_kinds nl and fanins = Netlist.raw_fanins nl in
  match tab with
  | Ft_list [] -> fun st v -> teval_node_nofault kinds fanins st v
  | _ -> fun st v -> teval_node_faulty tab kinds fanins st v

let teval_dirty ?(faults = []) ?acc nl st ~cones ~mark ~stamp =
  let tab = fault_tab faults in
  let kinds = Netlist.raw_kinds nl and fanins = Netlist.raw_fanins nl in
  let faultless = match tab with Ft_list [] -> true | _ -> false in
  let record v =
    match acc with Some r -> r := v :: !r | None -> ()
  in
  List.iter
    (fun cone ->
      let len = Array.length cone in
      for idx = 0 to len - 1 do
        let v = Array.unsafe_get cone idx in
        match Array.unsafe_get kinds v with
        | Netlist.Pi | Netlist.Dff ->
          (* Sources appear only as cone roots; the caller already
             wrote their values — just honour stem forcing, as the
             full pass does. *)
          if not faultless then (
            match stem_fault tab v with
            | Some f ->
              let nv = if f.Fault.stuck then 1 else 0 in
              if st.(v) <> nv then begin
                st.(v) <- nv;
                Array.unsafe_set mark v stamp;
                record v
              end
            | None -> ())
        | Netlist.Const0 | Netlist.Const1 ->
          if Array.unsafe_get mark v = stamp then begin
            let old = Array.unsafe_get st v in
            (if faultless then teval_node_nofault kinds fanins st v
             else teval_node_faulty tab kinds fanins st v);
            if Array.unsafe_get st v <> old then record v
          end
        | _ ->
          let fi = Array.unsafe_get fanins v in
          let affected =
            Array.unsafe_get mark v = stamp
            ||
            let nfi = Array.length fi in
            Array.unsafe_get mark (Array.unsafe_get fi 0) = stamp
            || (nfi >= 2
                && Array.unsafe_get mark (Array.unsafe_get fi 1) = stamp)
            || (nfi >= 3
                && Array.unsafe_get mark (Array.unsafe_get fi 2) = stamp)
          in
          if affected then begin
            let old = Array.unsafe_get st v in
            (if faultless then teval_node_nofault kinds fanins st v
             else teval_node_faulty tab kinds fanins st v);
            if Array.unsafe_get st v <> old then begin
              Array.unsafe_set mark v stamp;
              record v
            end
          end
      done)
    cones

let run_cycles ?(faults = []) ?init nl ~stimuli =
  (* The state's own bitvecs are written in place: no per-PI scratch
     vector per stimulus, and the init bits are indexed once instead of
     [List.nth] per flip-flop. *)
  let pis = Array.of_list (Netlist.pis nl) in
  let pos = Array.of_list (Netlist.pos nl) in
  let st = pcreate nl ~n_patterns:1 in
  (match init with
   | None -> ()
   | Some bits ->
     let bits = Array.of_list bits in
     List.iteri
       (fun i d -> Bitvec.set st.values.(d) 0 bits.(i))
       (Netlist.dffs nl));
  Array.map
    (fun stimulus ->
      Array.iteri
        (fun i pi -> Bitvec.set st.values.(pi) 0 stimulus.(i))
        pis;
      peval ~faults nl st;
      let out = Array.map (fun po -> Bitvec.get st.values.(po) 0) pos in
      pclock ~faults nl st;
      out)
    stimuli
