(** Seeded random netlist generation for fuzzing.

    The circuits are small sequential blocks: [n_pi] primary inputs,
    [n_dff] flip-flops (D inputs wired to random nodes after the
    combinational body exists, so state loops — including self-loops —
    occur naturally), [n_gates] random gates whose fanins reference
    earlier nodes only (combinationally acyclic by construction), and
    two primary outputs.  The same [seed] always yields the same
    circuit, so a fuzz failure is reproducible from its seed alone. *)

val sequential :
  seed:int -> n_pi:int -> n_dff:int -> n_gates:int -> Netlist.t
