(** Seeded random netlist generation for fuzzing.

    The circuits are small sequential blocks: [n_pi] primary inputs,
    [n_dff] flip-flops (D inputs wired to random nodes after the
    combinational body exists, so state loops — including self-loops —
    occur naturally), [n_gates] random gates whose fanins reference
    earlier nodes only (combinationally acyclic by construction), and
    two primary outputs.  The same [seed] always yields the same
    circuit, so a fuzz failure is reproducible from its seed alone. *)

val sequential :
  seed:int -> n_pi:int -> n_dff:int -> n_gates:int -> Netlist.t

(** Gate-mix flavour of a generator configuration: uniform over all
    kinds, XOR/XNOR-heavy (reconvergent parity cones), MUX-heavy
    (control-dominated logic), or NOT/BUF-heavy (long inversion
    chains). *)
type mix = Balanced | Xor_heavy | Mux_heavy | Chain_heavy

val mix_name : mix -> string

(** One point in the fuzz campaign's generator portfolio.  [g_window]
    > 0 draws fanins from the newest [g_window] nodes (deep, narrow
    circuits); [g_hub_bias] > 0 routes half the draws to the oldest
    [g_hub_bias] nodes (high-fanout hubs whose cones reconverge); both
    0 is a uniform draw.  [g_n_dff] sets sequential-loop density,
    [g_n_pi] the input width. *)
type config = {
  g_n_pi : int;
  g_n_dff : int;
  g_n_gates : int;
  g_window : int;
  g_hub_bias : int;
  g_mix : mix;
}

(** [sequential]'s shape as a [config]: 4 PIs, 3 DFFs, 14 gates,
    uniform draws, balanced mix (the draw order differs, so the same
    seed yields a different — equally valid — circuit). *)
val default : config

(** Deterministic: the same [seed] and [config] always yield the same
    circuit. *)
val generate : seed:int -> config -> Netlist.t
