open Hft_util

type strategy = Naive | Cone

type comb_result = {
  detected : Fault.t list;
  undetected : Fault.t list;
  n_patterns : int;
}

let coverage r =
  let d = List.length r.detected and u = List.length r.undetected in
  if d + u = 0 then 1.0 else float_of_int d /. float_of_int (d + u)

let load_patterns nl st patterns =
  let pis = Netlist.pis nl in
  let n_patterns = Array.length patterns in
  List.iteri
    (fun i pi ->
      let bv = Bitvec.create n_patterns in
      Array.iteri (fun p row -> Bitvec.set bv p row.(i)) patterns;
      Sim.pset_pi st pi bv)
    pis

(* One flush per simulation call: [events] counts node evaluations
   (nodes × passes for the naive strategy, good pass + cone sizes for
   the cone strategy), the unit the ROADMAP's events/sec goal is stated
   in. *)
let flush ~faults ~detected ~patterns ~events ~seconds =
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.fsim.runs";
    Hft_obs.Registry.incr "hft.fsim.faults" ~by:faults;
    Hft_obs.Registry.incr "hft.fsim.detected" ~by:detected;
    Hft_obs.Registry.incr "hft.fsim.patterns" ~by:patterns;
    Hft_obs.Registry.incr "hft.fsim.events" ~by:events;
    Hft_obs.Registry.observe "hft.fsim.time" seconds;
    if seconds > 0.0 then
      Hft_obs.Registry.set "hft.fsim.events_per_sec"
        (float_of_int events /. seconds);
    Hft_obs.Journal.record
      (Hft_obs.Journal.Fsim_run { faults; detected; patterns; events })
  end

(* ------------------------------------------------------------------ *)
(* Group engine.  A group is one logical fault as a list of injection  *)
(* sites (several when replicated across time frames); detection means *)
(* some observe node differs from the good machine with all sites      *)
(* active at once.                                                     *)

(* Effective roots of a group for one combinational pass: a stem fault
   changes its own node, a pin fault changes the consuming gate — except
   on a [Dff], whose D input is only sampled by [pclock], never read
   combinationally. *)
let group_roots nl group =
  List.filter_map
    (fun f ->
      match f.Fault.pin with
      | None -> Some f.Fault.node
      | Some _ ->
        if Netlist.kind nl f.Fault.node = Netlist.Dff then None
        else Some f.Fault.node)
    group

let group_cone nl group = Netlist.fanout_cone_union nl (group_roots nl group)

(* [run_groups] simulates every group against the good machine whose
   sources [load] establishes.  Returns per-group detection flags plus
   the event count.

   Naive: full re-evaluation of the netlist per group (the historical
   algorithm, kept for differential testing).

   Cone: copy-on-write from the good state — only the union of the
   fault sites' fanout cones is re-evaluated, reading good values for
   fanins outside the cone, and only observe nodes inside the cone are
   compared.  Nodes outside the cone provably keep their good values,
   so the two strategies report bit-identical detections. *)
let run_groups ?(on_group_events = fun _ _ -> ()) ~strategy nl ~n_patterns
    ~load ~observe groups =
  let n = Netlist.n_nodes nl in
  let good = Sim.pcreate nl ~n_patterns in
  load good;
  Sim.peval nl good;
  let events = ref n in
  let n_groups = List.length groups in
  let detected = Array.make n_groups false in
  (match strategy with
   | Naive ->
     let good_obs =
       List.map (fun o -> Bitvec.copy (Sim.pvalue good o)) observe
     in
     let faulty = Sim.pcreate nl ~n_patterns in
     List.iteri
       (fun gi group ->
         (* Reload source values each time: a stem fault on a source
            node forces the state in place and would otherwise leak
            into later groups. *)
         load faulty;
         Sim.peval ~faults:group nl faulty;
         events := !events + n;
         on_group_events gi n;
         detected.(gi) <-
           List.exists2
             (fun o gobs -> Bitvec.any_diff (Sim.pvalue faulty o) gobs)
             observe good_obs)
       groups
   | Cone ->
     let is_obs = Array.make n false in
     List.iter (fun o -> is_obs.(o) <- true) observe;
     (* Copy-on-write faulty values: [None] means "same as good". *)
     let fval : Bitvec.t option array = Array.make n None in
     let pool = ref [] in
     let alloc () =
       match !pool with
       | b :: tl -> pool := tl; b
       | [] -> Bitvec.create n_patterns
     in
     let forced = Array.init 3 (fun _ -> Bitvec.create n_patterns) in
     let tmp = Bitvec.create n_patterns in
     List.iteri
       (fun gi group ->
         (* Groups are one logical fault (a handful of sites at most):
            direct list probes beat building tables. *)
         let stem_of v =
           List.fold_left
             (fun acc f ->
               if f.Fault.pin = None && f.Fault.node = v then Some f else acc)
             None group
         and pin_of v p =
           List.find_opt
             (fun f -> f.Fault.node = v && f.Fault.pin = Some p)
             group
         in
         let read src consumer pin =
           match pin_of consumer pin with
           | Some f ->
             Bitvec.fill forced.(pin) f.Fault.stuck;
             forced.(pin)
           | None ->
             (match fval.(src) with
              | Some b -> b
              | None -> Sim.pvalue good src)
         in
         let cone = group_cone nl group in
         if !Hft_obs.Config.enabled then
           Hft_obs.Registry.record "hft.fsim.cone_nodes"
             (float_of_int (Array.length cone));
         on_group_events gi (Array.length cone);
         let hit = ref false in
         Array.iter
           (fun v ->
             incr events;
             (match stem_of v with
              | Some f ->
                let b = alloc () in
                Bitvec.fill b f.Fault.stuck;
                fval.(v) <- Some b
              | None ->
                (match Netlist.kind nl v with
                 | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1
                   -> () (* sources keep their good values *)
                 | Netlist.Po | Netlist.Buf ->
                   let b = alloc () in
                   Bitvec.assign ~dst:b (read (Netlist.fanin nl v).(0) v 0);
                   fval.(v) <- Some b
                 | Netlist.Not ->
                   let b = alloc () in
                   Bitvec.not_ ~dst:b (read (Netlist.fanin nl v).(0) v 0);
                   fval.(v) <- Some b
                 | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor
                 | Netlist.Xor | Netlist.Xnor ->
                   let fi = Netlist.fanin nl v in
                   let a = read fi.(0) v 0 and c = read fi.(1) v 1 in
                   let b = alloc () in
                   (match Netlist.kind nl v with
                    | Netlist.And -> Bitvec.and_ ~dst:b a c
                    | Netlist.Or -> Bitvec.or_ ~dst:b a c
                    | Netlist.Xor -> Bitvec.xor ~dst:b a c
                    | Netlist.Nand ->
                      Bitvec.and_ ~dst:tmp a c;
                      Bitvec.not_ ~dst:b tmp
                    | Netlist.Nor ->
                      Bitvec.or_ ~dst:tmp a c;
                      Bitvec.not_ ~dst:b tmp
                    | Netlist.Xnor ->
                      Bitvec.xor ~dst:tmp a c;
                      Bitvec.not_ ~dst:b tmp
                    | _ -> assert false);
                   fval.(v) <- Some b
                 | Netlist.Mux2 ->
                   let fi = Netlist.fanin nl v in
                   let s = read fi.(0) v 0 in
                   let a = read fi.(1) v 1 and c = read fi.(2) v 2 in
                   let b = alloc () in
                   Bitvec.mux ~dst:b s a c;
                   fval.(v) <- Some b));
             if is_obs.(v) then
               match fval.(v) with
               | Some b ->
                 if Bitvec.any_diff b (Sim.pvalue good v) then hit := true
               | None -> ())
           cone;
         detected.(gi) <- !hit;
         Array.iter
           (fun v ->
             match fval.(v) with
             | Some b ->
               pool := b :: !pool;
               fval.(v) <- None
             | None -> ())
           cone)
       groups);
  (detected, !events)

let count_true a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a

let result_of_flags faults flags n_patterns =
  let detected = ref [] and undetected = ref [] in
  List.iteri
    (fun i f ->
      if flags.(i) then detected := f :: !detected
      else undetected := f :: !undetected)
    faults;
  { detected = List.rev !detected; undetected = List.rev !undetected;
    n_patterns }

let zero_dffs nl st =
  List.iter (fun d -> Bitvec.fill (Sim.pvalue st d) false) (Netlist.dffs nl)

let comb ?(strategy = Cone) nl ~patterns faults =
  let t0 = Hft_obs.Clock.now () in
  let n_patterns = Array.length patterns in
  if n_patterns = 0 then
    { detected = []; undetected = faults; n_patterns = 0 }
  else begin
    let load st =
      load_patterns nl st patterns;
      zero_dffs nl st
    in
    let flags, events =
      run_groups ~strategy nl ~n_patterns ~load ~observe:(Netlist.pos nl)
        (List.map (fun f -> [ f ]) faults)
    in
    flush ~faults:(List.length faults) ~detected:(count_true flags)
      ~patterns:n_patterns ~events
      ~seconds:(Hft_obs.Clock.now () -. t0);
    result_of_flags faults flags n_patterns
  end

let comb_random ?strategy nl ~rng ~n_patterns faults =
  let n_pi = List.length (Netlist.pis nl) in
  let patterns =
    Array.init n_patterns (fun _ ->
        Array.init n_pi (fun _ -> Rng.bool rng))
  in
  comb ?strategy nl ~patterns faults

let comb_scan ?(strategy = Cone) nl ~scanned ~patterns faults =
  let t0 = Hft_obs.Clock.now () in
  let n_patterns = Array.length patterns in
  if n_patterns = 0 then
    { detected = []; undetected = faults; n_patterns = 0 }
  else begin
    let pis = Netlist.pis nl in
    let n_pi = List.length pis in
    let load st =
      load_patterns nl st patterns;
      zero_dffs nl st;
      (* Scan load: columns beyond the PIs preset the scan cells. *)
      List.iteri
        (fun i d ->
          let bv = Sim.pvalue st d in
          Array.iteri (fun p row -> Bitvec.set bv p row.(n_pi + i)) patterns)
        scanned
    in
    (* Scan observe: the captured next state of every scan cell is
       shifted out, so its D input joins the POs as an observation
       point. *)
    let observe =
      List.sort_uniq compare
        (Netlist.pos nl
         @ List.map (fun d -> (Netlist.fanin nl d).(0)) scanned)
    in
    let flags, events =
      run_groups ~strategy nl ~n_patterns ~load ~observe
        (List.map (fun f -> [ f ]) faults)
    in
    flush ~faults:(List.length faults) ~detected:(count_true flags)
      ~patterns:n_patterns ~events
      ~seconds:(Hft_obs.Clock.now () -. t0);
    result_of_flags faults flags n_patterns
  end

let detect_groups ?on_group_events ?(strategy = Cone) nl ~assignment ~observe
    groups =
  let t0 = Hft_obs.Clock.now () in
  let load st =
    List.iter (fun p -> Bitvec.fill (Sim.pvalue st p) false) (Netlist.pis nl);
    zero_dffs nl st;
    List.iter
      (fun (v, b) -> Bitvec.set (Sim.pvalue st v) 0 b)
      assignment
  in
  let flags, events =
    run_groups ?on_group_events ~strategy nl ~n_patterns:1 ~load ~observe
      groups
  in
  flush ~faults:(List.length groups) ~detected:(count_true flags) ~patterns:1
    ~events ~seconds:(Hft_obs.Clock.now () -. t0);
  flags

(* Three-valued (X-sound) variant of the drop check: sources without an
   assignment stay at X, and detection requires a defined, differing
   good/faulty pair at an observe node — exactly [Podem.check]'s
   criterion, so a positive answer is valid for {e any} value of the
   unassigned sources (unknown initial state included).  The [Cone]
   strategy evaluates only each group's fanout cone copy-on-write over
   the good three-valued state. *)
let detect_groups_tri ?(on_group_events = fun _ _ -> ()) ?(strategy = Cone) nl
    ~assignment ~observe groups =
  let t0 = Hft_obs.Clock.now () in
  let n = Netlist.n_nodes nl in
  let load st =
    List.iter (fun (v, b) -> st.(v) <- (if b then 1 else 0)) assignment
  in
  let good = Sim.tcreate nl in
  load good;
  Sim.teval nl good;
  let events = ref n in
  let n_groups = List.length groups in
  let detected = Array.make n_groups false in
  let differs g f = g < 2 && f < 2 && g <> f in
  (match strategy with
   | Naive ->
     List.iteri
       (fun gi group ->
         let faulty = Sim.tcreate nl in
         load faulty;
         Sim.teval ~faults:group nl faulty;
         events := !events + n;
         on_group_events gi n;
         detected.(gi) <-
           List.exists (fun o -> differs good.(o) faulty.(o)) observe)
       groups
   | Cone ->
     let is_obs = Array.make n false in
     List.iter (fun o -> is_obs.(o) <- true) observe;
     (* Copy-on-write faulty values: [-1] means "same as good". *)
     let fval = Array.make n (-1) in
     List.iteri
       (fun gi group ->
         let stem_of v =
           List.fold_left
             (fun acc f ->
               if f.Fault.pin = None && f.Fault.node = v then Some f else acc)
             None group
         and pin_of v p =
           List.find_opt
             (fun f -> f.Fault.node = v && f.Fault.pin = Some p)
             group
         in
         let read src consumer pin =
           match pin_of consumer pin with
           | Some f -> if f.Fault.stuck then 1 else 0
           | None -> if fval.(src) >= 0 then fval.(src) else good.(src)
         in
         let cone = group_cone nl group in
         if !Hft_obs.Config.enabled then
           Hft_obs.Registry.record "hft.fsim.cone_nodes"
             (float_of_int (Array.length cone));
         on_group_events gi (Array.length cone);
         let hit = ref false in
         Array.iter
           (fun v ->
             incr events;
             (match stem_of v with
              | Some f -> fval.(v) <- (if f.Fault.stuck then 1 else 0)
              | None ->
                (match Netlist.kind nl v with
                 | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1
                   -> ()
                 | Netlist.Po | Netlist.Buf | Netlist.Not ->
                   fval.(v) <-
                     Netlist.eval_tri (Netlist.kind nl v)
                       [| read (Netlist.fanin nl v).(0) v 0 |]
                 | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor
                 | Netlist.Xor | Netlist.Xnor ->
                   let fi = Netlist.fanin nl v in
                   fval.(v) <-
                     Netlist.eval_tri (Netlist.kind nl v)
                       [| read fi.(0) v 0; read fi.(1) v 1 |]
                 | Netlist.Mux2 ->
                   let fi = Netlist.fanin nl v in
                   fval.(v) <-
                     Netlist.eval_tri Netlist.Mux2
                       [| read fi.(0) v 0; read fi.(1) v 1; read fi.(2) v 2 |]));
             if is_obs.(v) && fval.(v) >= 0 && differs good.(v) fval.(v) then
               hit := true)
           cone;
         detected.(gi) <- !hit;
         Array.iter (fun v -> fval.(v) <- -1) cone)
       groups);
  flush ~faults:n_groups ~detected:(count_true detected) ~patterns:1
    ~events:!events
    ~seconds:(Hft_obs.Clock.now () -. t0);
  detected

let coverage_curve nl ~checkpoints ~next_pattern faults =
  let checkpoints = List.sort compare checkpoints in
  let remaining = ref faults in
  let total = List.length faults in
  let applied = ref 0 in
  List.map
    (fun target ->
      let batch = max 0 (target - !applied) in
      if batch > 0 then begin
        let patterns = Array.init batch (fun _ -> next_pattern ()) in
        let r = comb nl ~patterns !remaining in
        remaining := r.undetected;
        applied := target
      end;
      let det = total - List.length !remaining in
      (target, if total = 0 then 1.0 else float_of_int det /. float_of_int total))
    checkpoints

let sequential nl ~stimuli faults =
  let t0 = Hft_obs.Clock.now () in
  let good = Sim.run_cycles nl ~stimuli in
  let detected = ref [] and undetected = ref [] in
  List.iter
    (fun f ->
      let bad = Sim.run_cycles ~faults:[ f ] nl ~stimuli in
      if bad <> good then detected := f :: !detected
      else undetected := f :: !undetected)
    faults;
  let n_faults = List.length faults in
  flush ~faults:n_faults
    ~detected:(List.length !detected)
    ~patterns:(Array.length stimuli)
    ~events:(Netlist.n_nodes nl * (n_faults + 1) * Array.length stimuli)
    ~seconds:(Hft_obs.Clock.now () -. t0);
  { detected = List.rev !detected; undetected = List.rev !undetected;
    n_patterns = Array.length stimuli }
