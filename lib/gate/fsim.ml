open Hft_util

type comb_result = {
  detected : Fault.t list;
  undetected : Fault.t list;
  n_patterns : int;
}

let coverage r =
  let d = List.length r.detected and u = List.length r.undetected in
  if d + u = 0 then 1.0 else float_of_int d /. float_of_int (d + u)

let load_patterns nl st patterns =
  let pis = Netlist.pis nl in
  let n_patterns = Array.length patterns in
  List.iteri
    (fun i pi ->
      let bv = Bitvec.create n_patterns in
      Array.iteri (fun p row -> Bitvec.set bv p row.(i)) patterns;
      Sim.pset_pi st pi bv)
    pis

(* One flush per simulation call: [events] counts node evaluations
   (nodes × passes), the unit the ROADMAP's events/sec goal is stated
   in. *)
let flush ~faults ~detected ~patterns ~events ~seconds =
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.fsim.runs";
    Hft_obs.Registry.incr "hft.fsim.faults" ~by:faults;
    Hft_obs.Registry.incr "hft.fsim.detected" ~by:detected;
    Hft_obs.Registry.incr "hft.fsim.patterns" ~by:patterns;
    Hft_obs.Registry.incr "hft.fsim.events" ~by:events;
    Hft_obs.Registry.observe "hft.fsim.time" seconds;
    if seconds > 0.0 then
      Hft_obs.Registry.set "hft.fsim.events_per_sec"
        (float_of_int events /. seconds)
  end

let comb nl ~patterns faults =
  let t0 = Hft_obs.Clock.now () in
  let n_patterns = Array.length patterns in
  if n_patterns = 0 then
    { detected = []; undetected = faults; n_patterns = 0 }
  else begin
    let good = Sim.pcreate nl ~n_patterns in
    load_patterns nl good patterns;
    Sim.peval nl good;
    let pos = Netlist.pos nl in
    let good_pos = List.map (fun po -> Bitvec.copy (Sim.pvalue good po)) pos in
    let faulty = Sim.pcreate nl ~n_patterns in
    let detected = ref [] and undetected = ref [] in
    List.iter
      (fun f ->
        (* Reload PI values and DFF states each time: a stem fault on a
           source node forces the state in place and would otherwise
           leak into later faults. *)
        load_patterns nl faulty patterns;
        List.iter
          (fun d -> Bitvec.fill (Sim.pvalue faulty d) false)
          (Netlist.dffs nl);
        Sim.peval ~faults:[ f ] nl faulty;
        let diff =
          List.exists2
            (fun po gpo -> Bitvec.any_diff (Sim.pvalue faulty po) gpo)
            pos good_pos
        in
        if diff then detected := f :: !detected else undetected := f :: !undetected)
      faults;
    let n_faults = List.length faults in
    flush ~faults:n_faults
      ~detected:(List.length !detected)
      ~patterns:n_patterns
      ~events:(Netlist.n_nodes nl * (n_faults + 1))
      ~seconds:(Hft_obs.Clock.now () -. t0);
    { detected = List.rev !detected; undetected = List.rev !undetected;
      n_patterns }
  end

let comb_random nl ~rng ~n_patterns faults =
  let n_pi = List.length (Netlist.pis nl) in
  let patterns =
    Array.init n_patterns (fun _ ->
        Array.init n_pi (fun _ -> Rng.bool rng))
  in
  comb nl ~patterns faults

let coverage_curve nl ~checkpoints ~next_pattern faults =
  let checkpoints = List.sort compare checkpoints in
  let remaining = ref faults in
  let total = List.length faults in
  let applied = ref 0 in
  List.map
    (fun target ->
      let batch = max 0 (target - !applied) in
      if batch > 0 then begin
        let patterns = Array.init batch (fun _ -> next_pattern ()) in
        let r = comb nl ~patterns !remaining in
        remaining := r.undetected;
        applied := target
      end;
      let det = total - List.length !remaining in
      (target, if total = 0 then 1.0 else float_of_int det /. float_of_int total))
    checkpoints

let sequential nl ~stimuli faults =
  let t0 = Hft_obs.Clock.now () in
  let good = Sim.run_cycles nl ~stimuli in
  let detected = ref [] and undetected = ref [] in
  List.iter
    (fun f ->
      let bad = Sim.run_cycles ~faults:[ f ] nl ~stimuli in
      if bad <> good then detected := f :: !detected
      else undetected := f :: !undetected)
    faults;
  let n_faults = List.length faults in
  flush ~faults:n_faults
    ~detected:(List.length !detected)
    ~patterns:(Array.length stimuli)
    ~events:(Netlist.n_nodes nl * (n_faults + 1) * Array.length stimuli)
    ~seconds:(Hft_obs.Clock.now () -. t0);
  { detected = List.rev !detected; undetected = List.rev !undetected;
    n_patterns = Array.length stimuli }
