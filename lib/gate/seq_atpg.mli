(** Sequential ATPG by iterative time-frame expansion.

    The sequential circuit is unrolled into [frames] combinational
    copies; DFF outputs in frame 0 start at X (unknown initial state)
    except for {e scanned} flip-flops, whose frame-0 value is a free
    decision variable (scan load) and whose final-frame D input is
    observable (scan out).  The fault is injected in every frame.

    The default [Drop] strategy is the classical ATPG pipeline: the
    fault list is first collapsed into structural equivalence classes
    ({!Fault_collapse}), PODEM runs on one representative per class, and
    every generated test is immediately fault-simulated (cone-limited,
    {!Fsim.detect_groups}) against the remaining undetected classes —
    serendipitous detections are confirmed by dual three-valued
    simulation ({!Podem.check}, unknown state at X, so dropping is sound
    for any initial state) and dropped before the next PODEM call.
    [Naive] is the historical one-PODEM-call-per-fault loop, kept for
    differential measurement.

    This module is the measurement instrument for the survey's central
    empirical claim (§3.1): test generation effort explodes with
    S-graph loops and grows with sequential depth, and scan — full or
    partial — is what tames it. *)

type stats = {
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
  decisions : int;
  backtracks : int;
  implications : int;
  frames_used : int;
}

(** [Drop] (default): collapse + fault dropping. [Naive]: one PODEM call
    per fault, no collapsing — the pre-optimization behaviour. *)
type strategy = Naive | Drop

(** A generated test reconstructed in original-circuit terms: one PI
    vector per frame ([Netlist.pis] order) plus the frame-0 scan load
    (in [scanned] order).  Inputs PODEM left at X are filled with 0.
    [t_detects] lists the faults this test was proven to detect at
    generation time (the targeted class plus any swept by dropping) —
    {!replay} only re-checks those, keeping confirmation cheap. *)
type test = {
  t_frames : int;
  t_pi_vectors : bool array array;
  t_scan_state : bool array;
  t_detects : Fault.t list;
}

val fault_coverage : stats -> float

(** [run nl ~faults ~scanned ~max_frames ~backtrack_limit] attempts each
    fault (class) with growing frame counts (1, 2, ... max_frames),
    recording aggregate effort.  [scanned] lists DFF node ids treated as
    scan cells.  [assignable_pis] restricts which of the original PIs
    ATPG may drive (default: all) — used for controller–data-path
    composites whose control lines are internally driven.
    [strapped] PIs get a single shared copy across all frames (test-mode
    and test-select pins are held constant during a test in reality, and
    one decision instead of one per frame keeps the search tractable).
    [on_test] is called once per PODEM-generated test, e.g. to feed a
    pattern store.  Outcomes are reported over the full fault list: a
    class outcome applies to each of its sampled members.

    [supervisor] (default {!Hft_robust.Supervisor.default}) runs every
    engine invocation — collapse, PODEM, drop passes — under the typed
    failure discipline: PODEM failures climb the retry ladder, then
    degrade to a random-pattern salvage, then resolve the class
    aborted-with-reason; fsim/collapse failures skip the optimisation
    and continue.  Pass [~supervisor:None] for the bare engines
    (failures propagate as exceptions).  With chaos off and no
    deadlines the supervised run is bit-identical to the unsupervised
    one.

    [resolved] (checkpoint restore) maps a class representative's
    display string to a prior resolution: matching classes keep it and
    are never re-targeted.  [on_resolved] fires once per {e fresh}
    resolution, in engine order — the flow appends them to the
    checkpoint.

    [guidance] (a {!Podem.provider}, typically
    [Hft_analysis.Guidance.provide]) is invoked per (unrolled netlist,
    fault) and threads static-analysis guidance into every PODEM call:
    per-fault verdicts are provably no worse than unguided (see
    {!Podem.generate}); omitting it keeps the historical search bit for
    bit.

    [jobs] (default 1, clamped to 1–64) shards the campaign over an
    {!Hft_par} domain pool: pending classes are PODEM-evaluated
    speculatively on workers, then committed strictly in class order.
    Coverage, verdicts, tests, ledger waterfalls and the determinism-
    contract counters are bit-identical at any jobs count; a worker
    domain that dies degrades its shard to inline sequential
    evaluation (one [Degraded {site = "shard"}] journal event per
    failure) with unchanged results.  [jobs = 1] is the historical
    sequential path, bit for bit.

    [on_par_stats] receives the campaign's scheduler telemetry
    ({!Hft_par.Stats.t}) once, after the last class commits: real
    per-worker measurements on the parallel path, the degenerate
    {!Hft_par.Stats.sequential} summary on the sequential one.
    Collection is observational — all bit-identity contracts above hold
    with or without it. *)
val run :
  ?backtrack_limit:int -> ?min_frames:int -> ?max_frames:int ->
  ?assignable_pis:int list -> ?strapped:int list ->
  ?strategy:strategy -> ?on_test:(test -> unit) ->
  ?supervisor:Hft_robust.Supervisor.policy option ->
  ?resolved:(string -> Hft_obs.Ledger.resolution option) ->
  ?on_resolved:(rep:string -> Hft_obs.Ledger.resolution -> unit) ->
  ?guidance:Podem.provider ->
  ?on_par_stats:(Hft_par.Stats.t -> unit) ->
  ?jobs:int ->
  Netlist.t -> faults:Fault.t list -> scanned:int list -> stats

(** [replay nl ~scanned ~tests faults] — which of [faults] the
    reconstructed [tests] actually detect.  Each test is applied on the
    unrolled circuit with frame-0 unscanned state held at 0 (the
    concrete counterpart of the X PODEM guaranteed detection under) and
    checked with the cone-limited {!Fsim.detect_groups}; detected faults
    are dropped between tests.  Returns [(detected, undetected)].
    Pass the same [assignable_pis]/[strapped] as the generating {!run}
    so strapped pins keep their shared per-test value. *)
val replay :
  ?assignable_pis:int list -> ?strapped:int list -> Netlist.t ->
  scanned:int list -> tests:test list -> Fault.t list ->
  Fault.t list * Fault.t list

(** Unroll helper exposed for tests: returns the unrolled netlist, the
    assignable PI ids, the observe ids, and a function mapping a fault
    to its per-frame injection sites. *)
val unroll :
  ?assignable_pis:int list -> ?strapped:int list -> Netlist.t -> frames:int ->
  scanned:int list ->
  Netlist.t * int list * int list * (Fault.t -> Fault.t list)
