open Hft_util

type t = {
  universe : Fault.t array;
  index : (Fault.t, int) Hashtbl.t;
  class_id : int array;
  classes : Fault.t list array;
  reps : Fault.t array;
}

let n_faults t = Array.length t.universe
let n_classes t = Array.length t.classes
let class_of t f = Hashtbl.find_opt t.index f |> Option.map (fun i -> t.class_id.(i))
let members t c = t.classes.(c)
let representative t c = t.reps.(c)
let representatives t = Array.to_list t.reps

(* The handle for "the fault on gate [g]'s input pin [p], stuck at
   [v]".  On a multi-fanout net that is the branch (pin) fault; on a
   fanout-free net the universe holds no pin fault and the driver's
   stem fault plays the role (they are the same physical site). *)
let input_fault nl g p v =
  let d = (Netlist.fanin nl g).(p) in
  if List.length (Netlist.fanout nl d) > 1 then
    { Fault.node = g; pin = Some p; stuck = v }
  else { Fault.node = d; pin = None; stuck = v }

let stem g v = { Fault.node = g; pin = None; stuck = v }

let compute nl =
  let universe = Array.of_list (Fault.universe nl) in
  let n = Array.length universe in
  let index = Hashtbl.create (max 16 n) in
  Array.iteri (fun i f -> Hashtbl.replace index f i) universe;
  let uf = Union_find.create n in
  (* Merging a fault absent from the universe (e.g. the stem of a
     constant driver) is a no-op, keeping every class inside the
     universe. *)
  let merge a b =
    match (Hashtbl.find_opt index a, Hashtbl.find_opt index b) with
    | Some i, Some j -> Union_find.union uf i j
    | _ -> ()
  in
  for g = 0 to Netlist.n_nodes nl - 1 do
    (* Structural equivalences across one gate boundary: the faulty
       functions are literally identical, so any test detecting one
       member detects them all (in any surrounding circuit, sequential
       included). *)
    match Netlist.kind nl g with
    | Netlist.Buf ->
      merge (input_fault nl g 0 false) (stem g false);
      merge (input_fault nl g 0 true) (stem g true)
    | Netlist.Not ->
      merge (input_fault nl g 0 false) (stem g true);
      merge (input_fault nl g 0 true) (stem g false)
    | Netlist.And ->
      merge (input_fault nl g 0 false) (stem g false);
      merge (input_fault nl g 1 false) (stem g false)
    | Netlist.Nand ->
      merge (input_fault nl g 0 false) (stem g true);
      merge (input_fault nl g 1 false) (stem g true)
    | Netlist.Or ->
      merge (input_fault nl g 0 true) (stem g true);
      merge (input_fault nl g 1 true) (stem g true)
    | Netlist.Nor ->
      merge (input_fault nl g 0 true) (stem g false);
      merge (input_fault nl g 1 true) (stem g false)
    | Netlist.Pi | Netlist.Po | Netlist.Dff | Netlist.Const0 | Netlist.Const1
    | Netlist.Xor | Netlist.Xnor | Netlist.Mux2 -> ()
  done;
  (* Densify: class ids in order of first (lowest-index) member, which
     also becomes the representative — deterministic across runs. *)
  let class_id = Array.make n (-1) in
  let next = ref 0 in
  let root_class = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let r = Union_find.find uf i in
    let c =
      match Hashtbl.find_opt root_class r with
      | Some c -> c
      | None ->
        let c = !next in
        incr next;
        Hashtbl.replace root_class r c;
        c
    in
    class_id.(i) <- c
  done;
  let classes = Array.make !next [] in
  for i = n - 1 downto 0 do
    classes.(class_id.(i)) <- universe.(i) :: classes.(class_id.(i))
  done;
  let reps = Array.map List.hd classes in
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.collapse.runs";
    Hft_obs.Registry.incr "hft.collapse.faults" ~by:n;
    Hft_obs.Registry.incr "hft.collapse.classes" ~by:!next;
    Hft_obs.Journal.record
      (Hft_obs.Journal.Collapse { faults = n; classes = !next })
  end;
  { universe; index; class_id; classes; reps }

let partition t faults =
  (* Group an arbitrary sample by class, preserving first-occurrence
     order; the leader is the first sampled member of its class.
     Faults outside the universe stay singletons. *)
  let order = ref [] in
  let groups : (int, Fault.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let singles = ref 0 in
  List.iter
    (fun f ->
      match class_of t f with
      | Some c ->
        (match Hashtbl.find_opt groups c with
         | Some cell -> cell := f :: !cell
         | None ->
           let cell = ref [ f ] in
           Hashtbl.replace groups c cell;
           order := `Class c :: !order)
      | None ->
        incr singles;
        order := `Single f :: !order)
    faults;
  List.rev_map
    (function
      | `Single f -> (f, [ f ])
      | `Class c ->
        let ms = List.rev !(Hashtbl.find groups c) in
        (List.hd ms, ms))
    !order
