(** Logic simulation: pattern-parallel two-valued and scalar
    three-valued, both with optional fault injection. *)

(** {1 Pattern-parallel (bit-sliced) two-valued simulation} *)

type pstate = {
  values : Hft_util.Bitvec.t array; (** per node, one bit per pattern *)
  n_patterns : int;
}

val pcreate : Netlist.t -> n_patterns:int -> pstate

(** Assign a PI's value across patterns. *)
val pset_pi : pstate -> int -> Hft_util.Bitvec.t -> unit

(** Set a DFF's current state across patterns. *)
val pset_state : pstate -> int -> Hft_util.Bitvec.t -> unit

(** Evaluate all combinational nodes in order; [faults] are forced
    during evaluation (stem faults force the node's value; pin faults
    force the value seen by that gate input). *)
val peval : ?faults:Fault.t list -> Netlist.t -> pstate -> unit

(** Clock edge: every DFF samples its D input ([peval] must have run). *)
val pclock : ?faults:Fault.t list -> Netlist.t -> pstate -> unit

val pvalue : pstate -> int -> Hft_util.Bitvec.t

(** {1 Scalar three-valued simulation (values 0/1/2=X)} *)

type tstate = int array

val tcreate : Netlist.t -> tstate

(** Evaluate combinationally from PI/DFF/Const values already in the
    state; X-propagation; [faults] force 0/1 at their sites. *)
val teval : ?faults:Fault.t list -> Netlist.t -> tstate -> unit

(** [teval_nodes nl st nodes] re-evaluates exactly [nodes] (which must
    be in topological order, e.g. a {!Netlist.fanout_cone}) over a state
    whose other values are already consistent — the incremental
    counterpart of {!teval} used after a source-value change. *)
val teval_nodes : ?faults:Fault.t list -> Netlist.t -> tstate -> int array -> unit

(** [teval_fn ?faults nl] pre-resolves the fault table and netlist
    arrays once, returning a single-node evaluator — for event-driven
    callers that re-evaluate individual nodes many times.  On a source
    node it only applies stem forcing (the caller owns source values). *)
val teval_fn : ?faults:Fault.t list -> Netlist.t -> tstate -> int -> unit

(** [teval_dirty nl st ~cones ~mark ~stamp] — event-driven incremental
    re-evaluation.  Each cone must be in topological order (e.g. a
    {!Netlist.fanout_cone} per changed source); before the call the
    caller writes the new source values and sets [mark.(src) <- stamp].
    A node is re-evaluated when it or one of its fanins carries the
    current stamp, and a changed result stamps the node, so the
    wavefront follows actual value changes instead of the whole cone.
    Walking the cones one after another (without a union) is exact:
    a node affected across cones re-appears in every later cone after
    its changed fanins.  [mark] is an [n_nodes]-sized scratch array the
    caller reuses across calls, bumping [stamp] each round.  When [acc]
    is given, every node whose value actually changed is consed onto it
    (possibly more than once). *)
val teval_dirty :
  ?faults:Fault.t list -> ?acc:int list ref -> Netlist.t -> tstate ->
  cones:int array list -> mark:int array -> stamp:int -> unit

(** {1 Convenience} *)

(** Run [cycles] clocked cycles applying per-cycle PI vectors from
    [stimuli]; returns the PO value matrix (cycle, po index in
    [Netlist.pos] order).  DFFs start at [init] (default all-0). *)
val run_cycles :
  ?faults:Fault.t list -> ?init:bool list -> Netlist.t ->
  stimuli:bool array array -> bool array array
