let gate_kinds =
  [| Netlist.And; Netlist.Or; Netlist.Nand; Netlist.Nor; Netlist.Xor;
     Netlist.Xnor; Netlist.Not; Netlist.Buf; Netlist.Mux2 |]

let sequential ~seed ~n_pi ~n_dff ~n_gates =
  let rng = Hft_util.Rng.create seed in
  let nl = Netlist.create ~name:(Printf.sprintf "fuzz%d" seed) () in
  let pool = ref [] in
  for i = 0 to n_pi - 1 do
    pool :=
      Netlist.add nl ~name:(Printf.sprintf "i%d" i) Netlist.Pi [||] :: !pool
  done;
  (* DFFs start on a Const0 placeholder and are rewired once the
     combinational body exists, so their D inputs can reach forward —
     that is what creates state loops. *)
  let zero = Netlist.add nl Netlist.Const0 [||] in
  let dffs =
    Array.init n_dff (fun i ->
        let d =
          Netlist.add nl ~name:(Printf.sprintf "r%d" i) Netlist.Dff [| zero |]
        in
        pool := d :: !pool;
        d)
  in
  let pick () =
    let arr = Array.of_list !pool in
    arr.(Hft_util.Rng.int rng (Array.length arr))
  in
  let last = ref (pick ()) in
  for _ = 1 to n_gates do
    let k = gate_kinds.(Hft_util.Rng.int rng (Array.length gate_kinds)) in
    let fanins =
      match k with
      | Netlist.Not | Netlist.Buf -> [| pick () |]
      | Netlist.Mux2 -> [| pick (); pick (); pick () |]
      | _ -> [| pick (); pick () |]
    in
    let id = Netlist.add nl k fanins in
    pool := id :: !pool;
    last := id
  done;
  Array.iter (fun d -> Netlist.set_fanin nl d 0 (pick ())) dffs;
  let _ = Netlist.add nl ~name:"y0" Netlist.Po [| !last |] in
  let _ = Netlist.add nl ~name:"y1" Netlist.Po [| pick () |] in
  Netlist.validate nl;
  nl
