let gate_kinds =
  [| Netlist.And; Netlist.Or; Netlist.Nand; Netlist.Nor; Netlist.Xor;
     Netlist.Xnor; Netlist.Not; Netlist.Buf; Netlist.Mux2 |]

type mix = Balanced | Xor_heavy | Mux_heavy | Chain_heavy

let mix_name = function
  | Balanced -> "balanced"
  | Xor_heavy -> "xor-heavy"
  | Mux_heavy -> "mux-heavy"
  | Chain_heavy -> "chain-heavy"

(* Per-kind weights in [gate_kinds] order
   (and/or/nand/nor/xor/xnor/not/buf/mux2). *)
let mix_weights = function
  | Balanced -> [| 1; 1; 1; 1; 1; 1; 1; 1; 1 |]
  | Xor_heavy -> [| 1; 1; 1; 1; 4; 4; 1; 1; 1 |]
  | Mux_heavy -> [| 2; 2; 1; 1; 1; 1; 1; 1; 5 |]
  | Chain_heavy -> [| 1; 1; 1; 1; 1; 1; 4; 4; 1 |]

type config = {
  g_n_pi : int;
  g_n_dff : int;
  g_n_gates : int;
  g_window : int;
  g_hub_bias : int;
  g_mix : mix;
}

let default =
  { g_n_pi = 4; g_n_dff = 3; g_n_gates = 14; g_window = 0; g_hub_bias = 0;
    g_mix = Balanced }

let generate ~seed cfg =
  let rng = Hft_util.Rng.create seed in
  let nl = Netlist.create ~name:(Printf.sprintf "fuzz%d" seed) () in
  (* Most-recent-first node pool: head = newest, tail = oldest. *)
  let pool = ref [] in
  let n_pool = ref 0 in
  let push id =
    pool := id :: !pool;
    incr n_pool
  in
  for i = 0 to cfg.g_n_pi - 1 do
    push (Netlist.add nl ~name:(Printf.sprintf "i%d" i) Netlist.Pi [||])
  done;
  let zero = Netlist.add nl Netlist.Const0 [||] in
  let dffs =
    Array.init cfg.g_n_dff (fun i ->
        let d =
          Netlist.add nl ~name:(Printf.sprintf "r%d" i) Netlist.Dff [| zero |]
        in
        push d;
        d)
  in
  (* [g_hub_bias = h > 0]: half the draws come from the [h] oldest nodes
     (PIs and early registers become high-fanout hubs whose cones
     reconverge downstream).  [g_window = w > 0]: the remaining draws
     come from the [w] newest nodes (long, narrow chains — depth).
     Both 0 degrades to a uniform draw over the whole pool. *)
  let pick () =
    let arr = Array.of_list !pool in
    let n = !n_pool in
    if cfg.g_hub_bias > 0 && Hft_util.Rng.int rng 2 = 0 then
      let h = min cfg.g_hub_bias n in
      arr.(n - 1 - Hft_util.Rng.int rng h)
    else if cfg.g_window > 0 then arr.(Hft_util.Rng.int rng (min cfg.g_window n))
    else arr.(Hft_util.Rng.int rng n)
  in
  let weights = mix_weights cfg.g_mix in
  let kind_lots =
    Array.concat
      (Array.to_list
         (Array.mapi (fun i w -> Array.make w gate_kinds.(i)) weights))
  in
  let last = ref (pick ()) in
  for _ = 1 to cfg.g_n_gates do
    let k = kind_lots.(Hft_util.Rng.int rng (Array.length kind_lots)) in
    let fanins =
      match k with
      | Netlist.Not | Netlist.Buf -> [| pick () |]
      | Netlist.Mux2 -> [| pick (); pick (); pick () |]
      | _ -> [| pick (); pick () |]
    in
    let id = Netlist.add nl k fanins in
    push id;
    last := id
  done;
  Array.iter (fun d -> Netlist.set_fanin nl d 0 (pick ())) dffs;
  let _ = Netlist.add nl ~name:"y0" Netlist.Po [| !last |] in
  let _ = Netlist.add nl ~name:"y1" Netlist.Po [| pick () |] in
  Netlist.validate nl;
  nl

let sequential ~seed ~n_pi ~n_dff ~n_gates =
  let rng = Hft_util.Rng.create seed in
  let nl = Netlist.create ~name:(Printf.sprintf "fuzz%d" seed) () in
  let pool = ref [] in
  for i = 0 to n_pi - 1 do
    pool :=
      Netlist.add nl ~name:(Printf.sprintf "i%d" i) Netlist.Pi [||] :: !pool
  done;
  (* DFFs start on a Const0 placeholder and are rewired once the
     combinational body exists, so their D inputs can reach forward —
     that is what creates state loops. *)
  let zero = Netlist.add nl Netlist.Const0 [||] in
  let dffs =
    Array.init n_dff (fun i ->
        let d =
          Netlist.add nl ~name:(Printf.sprintf "r%d" i) Netlist.Dff [| zero |]
        in
        pool := d :: !pool;
        d)
  in
  let pick () =
    let arr = Array.of_list !pool in
    arr.(Hft_util.Rng.int rng (Array.length arr))
  in
  let last = ref (pick ()) in
  for _ = 1 to n_gates do
    let k = gate_kinds.(Hft_util.Rng.int rng (Array.length gate_kinds)) in
    let fanins =
      match k with
      | Netlist.Not | Netlist.Buf -> [| pick () |]
      | Netlist.Mux2 -> [| pick (); pick (); pick () |]
      | _ -> [| pick (); pick () |]
    in
    let id = Netlist.add nl k fanins in
    pool := id :: !pool;
    last := id
  done;
  Array.iter (fun d -> Netlist.set_fanin nl d 0 (pick ())) dffs;
  let _ = Netlist.add nl ~name:"y0" Netlist.Po [| !last |] in
  let _ = Netlist.add nl ~name:"y1" Netlist.Po [| pick () |] in
  Netlist.validate nl;
  nl
