type effort = {
  mutable decisions : int;
  mutable backtracks : int;
  mutable implications : int;
}

type result = Test of (int * bool) list | Untestable | Aborted

let x = 2

(* Controlling value of a gate kind, if any, and output inversion. *)
let controlling = function
  | Netlist.And | Netlist.Nand -> Some 0
  | Netlist.Or | Netlist.Nor -> Some 1
  | Netlist.Not | Netlist.Buf | Netlist.Po | Netlist.Xor | Netlist.Xnor
  | Netlist.Mux2 | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1
    -> None

let inverts = function
  | Netlist.Not | Netlist.Nand | Netlist.Nor | Netlist.Xnor -> true
  | Netlist.And | Netlist.Or | Netlist.Xor | Netlist.Buf | Netlist.Po
  | Netlist.Mux2 | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1
    -> false

(* Effort counters are accumulated locally during the search and
   flushed to the registry once per call, so the hot loop never touches
   the metric table. *)
let flush_effort effort result =
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.podem.runs";
    Hft_obs.Registry.incr "hft.podem.decisions" ~by:effort.decisions;
    Hft_obs.Registry.incr "hft.podem.backtracks" ~by:effort.backtracks;
    Hft_obs.Registry.incr "hft.podem.implications" ~by:effort.implications;
    Hft_obs.Registry.incr
      (match result with
       | Test _ -> "hft.podem.tests"
       | Untestable -> "hft.podem.untestable"
       | Aborted -> "hft.podem.aborts")
  end

let generate ?(backtrack_limit = 500) nl ~faults ~assignable ~observe =
  let n = Netlist.n_nodes nl in
  let effort = { decisions = 0; backtracks = 0; implications = 0 } in
  let pi_val = Hashtbl.create 16 in
  let is_assignable = Array.make n false in
  List.iter (fun p -> is_assignable.(p) <- true) assignable;
  let gv = Sim.tcreate nl and fv = Sim.tcreate nl in
  let imply () =
    effort.implications <- effort.implications + 1;
    Array.fill gv 0 n x;
    Array.fill fv 0 n x;
    Hashtbl.iter
      (fun p v ->
        gv.(p) <- v;
        fv.(p) <- v)
      pi_val;
    Sim.teval nl gv;
    Sim.teval ~faults nl fv
  in
  let detected () =
    List.exists (fun o -> gv.(o) <> x && fv.(o) <> x && gv.(o) <> fv.(o)) observe
  in
  let has_d v = gv.(v) <> x && fv.(v) <> x && gv.(v) <> fv.(v) in
  (* X-path: from any D-carrying node, can a difference still reach an
     observe node through not-yet-blocked nodes? *)
  let xpath_ok () =
    let blocked v = gv.(v) <> x && fv.(v) <> x && gv.(v) = fv.(v) in
    let seen = Array.make n false in
    let q = Queue.create () in
    for v = 0 to n - 1 do
      if has_d v then begin
        seen.(v) <- true;
        Queue.add v q
      end
    done;
    (* Activated pin faults originate their difference at the consumer
       gate even before any node carries a D. *)
    List.iter
      (fun f ->
        match f.Fault.pin with
        | Some p ->
          let drv = (Netlist.fanin nl f.Fault.node).(p) in
          if gv.(drv) <> x
             && gv.(drv) <> (if f.Fault.stuck then 1 else 0)
             && (not seen.(f.Fault.node))
             && not (blocked f.Fault.node)
          then begin
            seen.(f.Fault.node) <- true;
            Queue.add f.Fault.node q
          end
        | None -> ())
      faults;
    let reach = ref false in
    let observe_set = Array.make n false in
    List.iter (fun o -> observe_set.(o) <- true) observe;
    while not (Queue.is_empty q) do
      let v = Queue.take q in
      if observe_set.(v) then reach := true;
      List.iter
        (fun w ->
          if (not seen.(w)) && not (blocked w) then begin
            seen.(w) <- true;
            Queue.add w q
          end)
        (Netlist.fanout nl v)
    done;
    !reach
  in
  (* Activation objectives: one per fault site whose good value is
     still X (several sites exist when a fault is replicated across
     time frames — any of them may be the one that can be justified). *)
  let activation_objectives () =
    List.filter_map
      (fun f ->
        let want = if f.Fault.stuck then 0 else 1 in
        let site_node =
          match f.Fault.pin with
          | None -> f.Fault.node
          | Some p -> (Netlist.fanin nl f.Fault.node).(p)
        in
        if gv.(site_node) = x then Some (site_node, want) else None)
      faults
  in
  let activated () =
    List.exists
      (fun f ->
        let want = if f.Fault.stuck then 0 else 1 in
        let site_good =
          match f.Fault.pin with
          | None -> gv.(f.Fault.node)
          | Some p -> gv.((Netlist.fanin nl f.Fault.node).(p))
        in
        site_good = want)
      faults
  in
  (* D-frontier objectives: gates with a D input (or an activated pin
     fault) and an undetermined output. *)
  let pin_fault_active v =
    List.exists
      (fun f ->
        match f.Fault.pin with
        | Some p ->
          f.Fault.node = v
          &&
          let drv = (Netlist.fanin nl v).(p) in
          gv.(drv) <> x && gv.(drv) <> (if f.Fault.stuck then 1 else 0)
        | None -> false)
      faults
  in
  let propagation_objectives () =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      match Netlist.kind nl v with
      | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1 -> ()
      | k ->
        let fi = Netlist.fanin nl v in
        let out_x = gv.(v) = x || fv.(v) = x in
        let frontier =
          Array.exists (fun i -> has_d i) fi || pin_fault_active v
        in
        if out_x && frontier then begin
          (* Set an X input to the non-controlling value (or, for kinds
             without one, a heuristic value — implication sorts it
             out). *)
          match
            Array.to_list fi
            |> List.find_opt (fun i -> gv.(i) = x || fv.(i) = x)
          with
          | Some i ->
            let v_obj =
              match controlling k with Some c -> 1 - c | None -> 1
            in
            acc := (i, v_obj) :: !acc
          | None -> ()
        end
    done;
    !acc
  in
  (* Backtrace an objective to an assignable PI with X value.  Failed
     (node, want) pairs are memoised per call: without this the search
     is exponential on reconvergent all-X regions (multiplier arrays
     across several time frames). *)
  let backtrace node want =
    let dead = Hashtbl.create 64 in
    let rec go node want =
      if Hashtbl.mem dead (node, want) then None
      else
        let result =
          match Netlist.kind nl node with
          | Netlist.Pi | Netlist.Dff ->
            (* DFFs appear here under the scan view, where flip-flop
               state is a free (pseudo-primary-input) decision. *)
            if is_assignable.(node) && not (Hashtbl.mem pi_val node) then
              Some (node, want)
            else None
          | Netlist.Const0 | Netlist.Const1 -> None
          | k ->
            let fi = Netlist.fanin nl node in
            let want' = if inverts k then 1 - want else want in
            (* Choose an X input; try them in order until one
               backtraces. *)
            let rec try_inputs idx =
              if idx >= Array.length fi then None
              else if gv.(fi.(idx)) = x then
                match go fi.(idx) want' with
                | Some r -> Some r
                | None -> try_inputs (idx + 1)
              else try_inputs (idx + 1)
            in
            try_inputs 0
        in
        if result = None then Hashtbl.replace dead (node, want) ();
        result
    in
    go node want
  in
  (* Decision stack: (pi, value, tried_both). *)
  let stack = ref [] in
  let rec backtrack () =
    effort.backtracks <- effort.backtracks + 1;
    match !stack with
    | [] -> `Exhausted
    | (pi, _, true) :: tl ->
      Hashtbl.remove pi_val pi;
      stack := tl;
      backtrack ()
    | (pi, v, false) :: tl ->
      Hashtbl.replace pi_val pi (1 - v);
      stack := (pi, 1 - v, true) :: tl;
      `Continue
  in
  let result = ref None in
  (try
     while !result = None do
       imply ();
       if detected () then result := Some (`Found)
       else if effort.backtracks > backtrack_limit then result := Some `Aborted
       else begin
         let objectives =
           if not (activated ()) then activation_objectives ()
           else if not (xpath_ok ()) then []
           else propagation_objectives ()
         in
         (* Try each candidate objective until one backtraces to a free
            assignable PI. *)
         let rec decide = function
           | [] -> true (* must backtrack *)
           | (node, want) :: rest ->
             (match backtrace node want with
              | None -> decide rest
              | Some (pi, v) ->
                effort.decisions <- effort.decisions + 1;
                Hashtbl.replace pi_val pi v;
                stack := (pi, v, false) :: !stack;
                false)
         in
         if decide objectives then
           match backtrack () with
           | `Exhausted -> result := Some `Untestable
           | `Continue -> ()
       end
     done
   with Stack_overflow -> result := Some `Aborted);
  let outcome =
    match !result with
    | Some `Found ->
      let assignment =
        Hashtbl.fold (fun p v acc -> (p, v = 1) :: acc) pi_val []
        |> List.sort compare
      in
      Test assignment
    | Some `Untestable -> Untestable
    | Some `Aborted | None -> Aborted
  in
  flush_effort effort outcome;
  (outcome, effort)

let generate_comb ?backtrack_limit nl ~fault =
  generate ?backtrack_limit nl ~faults:[ fault ] ~assignable:(Netlist.pis nl)
    ~observe:(Netlist.pos nl)

let check nl ~faults ~assignment ~observe =
  let n = Netlist.n_nodes nl in
  let gv = Sim.tcreate nl and fv = Sim.tcreate nl in
  Array.fill gv 0 n x;
  Array.fill fv 0 n x;
  List.iter
    (fun (p, b) ->
      let v = if b then 1 else 0 in
      gv.(p) <- v;
      fv.(p) <- v)
    assignment;
  Sim.teval nl gv;
  Sim.teval ~faults nl fv;
  List.exists (fun o -> gv.(o) <> x && fv.(o) <> x && gv.(o) <> fv.(o)) observe
