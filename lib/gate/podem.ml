type effort = {
  mutable decisions : int;
  mutable backtracks : int;
  mutable implications : int;
  mutable guided_cuts : int;
  mutable static_proof : bool;
}

type result = Test of (int * bool) list | Untestable | Aborted

(* Static-analysis guidance (built by [Hft_analysis.Guidance]; plain
   data here so the analysis library can sit above this one).  All node
   ids refer to the netlist the search runs on.  [g_common_required]
   are literals every detecting test must satisfy (mandatory
   assignments); [g_site_required] holds one requirement set per fault
   site — when every site's set is contradicted by the current cube, no
   completion detects and the search can cut.  The CC/CO arrays are
   SCOAP measures used purely for candidate ordering. *)
type guidance = {
  g_static_untestable : bool;
  g_common_required : (int * int) array;
  g_site_required : (int * int) array array;
  g_cc0 : int array;
  g_cc1 : int array;
  g_co : int array;
}

type provider =
  Netlist.t -> observe:int list -> faults:Fault.t list -> guidance

let x = 2

(* Debug knob for the fuzz campaign's regression canary: clearing it
   restores the pre-fix objective ladder that declared Untestable when
   the preferred propagation site's X-paths died (the seed-4246
   unsoundness), so the differential oracles can prove they would
   re-catch that bug class.  Production paths never touch it. *)
let propagation_fallbacks_enabled = ref true

(* Controlling value of a gate kind, if any, and output inversion. *)
let controlling = function
  | Netlist.And | Netlist.Nand -> Some 0
  | Netlist.Or | Netlist.Nor -> Some 1
  | Netlist.Not | Netlist.Buf | Netlist.Po | Netlist.Xor | Netlist.Xnor
  | Netlist.Mux2 | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1
    -> None

let inverts = function
  | Netlist.Not | Netlist.Nand | Netlist.Nor | Netlist.Xnor -> true
  | Netlist.And | Netlist.Or | Netlist.Xor | Netlist.Buf | Netlist.Po
  | Netlist.Mux2 | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1
    -> false

(* Effort counters are accumulated locally during the search and
   flushed to the registry once per call, so the hot loop never touches
   the metric table. *)
let flush_effort ?(guided = false) effort result =
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.podem.runs";
    Hft_obs.Registry.incr "hft.podem.decisions" ~by:effort.decisions;
    Hft_obs.Registry.incr "hft.podem.backtracks" ~by:effort.backtracks;
    Hft_obs.Registry.incr "hft.podem.implications" ~by:effort.implications;
    if guided then begin
      Hft_obs.Registry.incr "hft.podem.guided_runs";
      Hft_obs.Registry.incr "hft.podem.guided_decisions" ~by:effort.decisions;
      Hft_obs.Registry.incr "hft.podem.guided_cuts" ~by:effort.guided_cuts;
      if effort.static_proof then
        Hft_obs.Registry.incr "hft.podem.static_untestable"
    end;
    Hft_obs.Registry.incr
      (match result with
       | Test _ -> "hft.podem.tests"
       | Untestable -> "hft.podem.untestable"
       | Aborted -> "hft.podem.aborts");
    if effort.backtracks > 0 then
      Hft_obs.Journal.record
        (Hft_obs.Journal.Backtrack
           { backtracks = effort.backtracks;
             decisions = effort.decisions;
             implications = effort.implications })
  end

(* All-X good-machine fixpoint, cached per netlist (physical equality +
   {!Netlist.version}, so structural edits between calls invalidate the
   entry): every [generate] starts from the same empty test cube, so the
   first implication is a [blit] of this baseline plus a fault-cone
   patch instead of two whole-netlist passes.  Domain-local so parallel
   ATPG shards never share (or race on) a cached [tstate] — each worker
   warms its own entry for its own workspace netlist. *)
let baseline_cache : (Netlist.t * int * Sim.tstate) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let baseline nl =
  let ver = Netlist.version nl in
  let cached = Domain.DLS.get baseline_cache in
  match
    List.find_opt (fun (nl', ver', _) -> nl' == nl && ver' = ver) cached
  with
  | Some (_, _, b) -> b
  | None ->
    let b = Sim.tcreate nl in
    Sim.teval nl b;
    let keep =
      List.filter (fun (nl', _, _) -> nl' != nl) cached
      |> List.filteri (fun i _ -> i < 3)
    in
    Domain.DLS.set baseline_cache ((nl, ver, b) :: keep);
    b

let rec generate ?(backtrack_limit = 500) ?check ?guidance nl ~faults
    ~assignable ~observe =
  let t_start = if !Hft_obs.Config.enabled then Hft_obs.Clock.now () else 0.0 in
  let n = Netlist.n_nodes nl in
  let effort =
    { decisions = 0; backtracks = 0; implications = 0; guided_cuts = 0;
      static_proof = false }
  in
  match guidance with
  | Some g when g.g_static_untestable ->
    (* The analysis proved no source assignment can both activate the
       fault and propagate its effect to an observe node — Untestable
       without touching the search state. *)
    effort.static_proof <- true;
    if !Hft_obs.Config.enabled then
      Hft_obs.Registry.observe "hft.podem.time"
        (Hft_obs.Clock.now () -. t_start);
    flush_effort ~guided:true effort Untestable;
    (Untestable, effort)
  | _ ->
  let gcost v want =
    match guidance with
    | Some g -> if want = 1 then g.g_cc1.(v) else g.g_cc0.(v)
    | None -> 0
  in
  let pi_val = Hashtbl.create 16 in
  let is_assignable = Array.make n false in
  List.iter (fun p -> is_assignable.(p) <- true) assignable;
  let gv = Sim.tcreate nl and fv = Sim.tcreate nl in
  let dirty = ref [] in
  let initialized = ref false in
  (* The set of D-carrying nodes (good and faulty machines both concrete
     and different) is maintained incrementally from the implication
     wavefront: has_d can only flip at nodes whose gv or fv changed, so
     the per-iteration D consumers — detection, X-path seeding, the
     D-frontier — cost O(|D|) instead of a cone scan. *)
  let is_d_arr = Array.make n false in
  let d_list = ref [] in
  let changed = ref [] in
  let has_d v = gv.(v) <> x && fv.(v) <> x && gv.(v) <> fv.(v) in
  let update_d () =
    match !changed with
    | [] -> ()
    | ch ->
      changed := [];
      let newd = ref [] in
      List.iter
        (fun v ->
          let nd = has_d v in
          if nd && not is_d_arr.(v) then newd := v :: !newd;
          is_d_arr.(v) <- nd)
        ch;
      d_list := !newd @ List.filter (fun v -> is_d_arr.(v)) !d_list
  in
  let set_pi p v =
    Hashtbl.replace pi_val p v;
    dirty := p :: !dirty
  in
  let unset_pi p =
    Hashtbl.remove pi_val p;
    dirty := p :: !dirty
  in
  (* Mandatory assignments: literals every detecting test must satisfy
     (dominator side inputs at non-controlling values, SOCRATES style).
     They are seeded outside the decision stack, so exhausting the
     remaining decisions still proves untestability — no detecting test
     violates a mandatory literal. *)
  (match guidance with
   | None -> ()
   | Some g ->
     Array.iter
       (fun (w, v) ->
         if w >= 0 && w < n && is_assignable.(w)
            && not (Hashtbl.mem pi_val w)
         then set_pi w v)
       g.g_common_required);
  (* Event-driven implication over a topo-ordered heap.  The
     combinational fixpoint is a pure function of the sources, so after
     a decision or backtrack only nodes downstream of an actual value
     change need re-evaluation: each changed node pushes its consumers,
     the heap pops in topological order (so a node is evaluated once,
     after its fanins settled), and an evaluation that reproduces the
     old value stops the wavefront.  Reproduces a full pass bit for
     bit. *)
  let geval = Sim.teval_fn nl in
  let feval = Sim.teval_fn ~faults nl in
  let tpos = Netlist.topo_pos nl in
  let heap = Array.make (n + 1) 0 in
  let hsize = ref 0 in
  let inheap = Array.make n 0 in
  let hstamp = ref 0 in
  let hpush v =
    if inheap.(v) <> !hstamp then begin
      inheap.(v) <- !hstamp;
      incr hsize;
      heap.(!hsize) <- v;
      let i = ref !hsize in
      let up = ref true in
      while !up && !i > 1 do
        let p = !i / 2 in
        if tpos.(heap.(p)) > tpos.(heap.(!i)) then begin
          let tmp = heap.(p) in
          heap.(p) <- heap.(!i);
          heap.(!i) <- tmp;
          i := p
        end
        else up := false
      done
    end
  in
  let hpop () =
    let top = heap.(1) in
    heap.(1) <- heap.(!hsize);
    decr hsize;
    let i = ref 1 in
    let down = ref true in
    while !down do
      let l = 2 * !i and r = (2 * !i) + 1 in
      let m = ref !i in
      if l <= !hsize && tpos.(heap.(l)) < tpos.(heap.(!m)) then m := l;
      if r <= !hsize && tpos.(heap.(r)) < tpos.(heap.(!m)) then m := r;
      if !m <> !i then begin
        let tmp = heap.(!m) in
        heap.(!m) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !m
      end
      else down := false
    done;
    top
  in
  let propagate_from v = List.iter hpush (Netlist.fanout nl v) in
  let drain () =
    while !hsize > 0 do
      let v = hpop () in
      let og = gv.(v) and ofv = fv.(v) in
      geval gv v;
      feval fv v;
      if gv.(v) <> og || fv.(v) <> ofv then begin
        changed := v :: !changed;
        propagate_from v
      end
    done
  in
  let touch_source p v =
    let og = gv.(p) and ofv = fv.(p) in
    gv.(p) <- v;
    fv.(p) <- v;
    (* A stem fault on a source keeps it forced. *)
    feval fv p;
    if gv.(p) <> og || fv.(p) <> ofv then begin
      changed := p :: !changed;
      propagate_from p
    end
  in
  let imply () =
    effort.implications <- effort.implications + 1;
    if not !initialized then begin
      initialized := true;
      dirty := [];
      let base = baseline nl in
      Array.blit base 0 gv 0 n;
      Array.blit base 0 fv 0 n;
      changed := [];
      incr hstamp;
      hsize := 0;
      (* The cube is empty on the first implication in the current
         search order, but stay general. *)
      Hashtbl.iter (fun p v -> touch_source p v) pi_val;
      (* Patch the faulty machine at the injection sites; the wavefront
         carries the difference forward. *)
      List.iter
        (fun f ->
          let v = f.Fault.node in
          let ofv = fv.(v) in
          feval fv v;
          if fv.(v) <> ofv then begin
            changed := v :: !changed;
            propagate_from v
          end)
        faults;
      drain ();
      update_d ()
    end
    else
      match List.sort_uniq compare !dirty with
      | [] -> ()
      | ds ->
        dirty := [];
        changed := [];
        incr hstamp;
        hsize := 0;
        List.iter
          (fun p ->
            let v =
              match Hashtbl.find_opt pi_val p with Some v -> v | None -> x
            in
            touch_source p v)
          ds;
        drain ();
        update_d ()
  in
  let observe_set = Array.make n false in
  List.iter (fun o -> observe_set.(o) <- true) observe;
  let detected () =
    List.exists (fun v -> observe_set.(v)) !d_list
  in
  (* Guided cut: a concrete good-machine value contradicting a
     mandatory literal — or, for multi-site faults, contradicting every
     site's activation closure — means no completion of the current
     cube detects the fault, so the branch can be pruned without
     waiting for the D-frontier to die.  Sound: the closures only hold
     literals true in every detecting completion (per site), so the cut
     never removes a test. *)
  let guided_conflict () =
    match guidance with
    | None -> false
    | Some g ->
      let violated (w, v) = w >= 0 && w < n && gv.(w) <> x && gv.(w) <> v in
      Array.exists violated g.g_common_required
      || (Array.length g.g_site_required > 0
          && Array.for_all
               (fun site -> Array.exists violated site)
               g.g_site_required)
  in
  (* X-path: from any D-carrying node, can a difference still reach an
     observe node through not-yet-blocked nodes?  Pure reachability, so
     visit order is irrelevant and the first observe hit ends the walk;
     the visited set is a stamp array reused across calls instead of a
     per-call allocation. *)
  let xseen = Array.make n 0 in
  let xstamp = ref 0 in
  let xstack = Array.make n 0 in
  let xpath_ok () =
    let blocked v = gv.(v) <> x && fv.(v) <> x && gv.(v) = fv.(v) in
    incr xstamp;
    let s = !xstamp in
    let top = ref 0 in
    let push v =
      xseen.(v) <- s;
      xstack.(!top) <- v;
      incr top
    in
    List.iter (fun v -> if xseen.(v) <> s then push v) !d_list;
    (* Activated pin faults originate their difference at the consumer
       gate even before any node carries a D. *)
    List.iter
      (fun f ->
        match f.Fault.pin with
        | Some p ->
          let drv = (Netlist.fanin nl f.Fault.node).(p) in
          if gv.(drv) <> x
             && gv.(drv) <> (if f.Fault.stuck then 1 else 0)
             && xseen.(f.Fault.node) <> s
             && not (blocked f.Fault.node)
          then push f.Fault.node
        | None -> ())
      faults;
    let reach = ref false in
    while (not !reach) && !top > 0 do
      decr top;
      let v = xstack.(!top) in
      if observe_set.(v) then reach := true
      else
        List.iter
          (fun w -> if xseen.(w) <> s && not (blocked w) then push w)
          (Netlist.fanout nl v)
    done;
    !reach
  in
  (* Activation objectives: one per fault site whose good value is
     still X (several sites exist when a fault is replicated across
     time frames — any of them may be the one that can be justified). *)
  let activation_objectives () =
    let objs =
      List.filter_map
        (fun f ->
          let want = if f.Fault.stuck then 0 else 1 in
          let site_node =
            match f.Fault.pin with
            | None -> f.Fault.node
            | Some p -> (Netlist.fanin nl f.Fault.node).(p)
          in
          if gv.(site_node) = x then Some (site_node, want) else None)
        faults
    in
    match guidance with
    | None -> objs
    | Some _ ->
      (* Cheapest-to-justify site first (SCOAP CC): the search commits
         its budget to the easy activations before the hopeless ones. *)
      List.stable_sort
        (fun (a, wa) (b, wb) -> compare (gcost a wa, a) (gcost b wb, b))
        objs
  in
  let activated () =
    List.exists
      (fun f ->
        let want = if f.Fault.stuck then 0 else 1 in
        let site_good =
          match f.Fault.pin with
          | None -> gv.(f.Fault.node)
          | Some p -> gv.((Netlist.fanin nl f.Fault.node).(p))
        in
        site_good = want)
      faults
  in
  (* D-frontier objectives: gates with a D input (or an activated pin
     fault) and an undetermined output. *)
  let pin_fault_active v =
    List.exists
      (fun f ->
        match f.Fault.pin with
        | Some p ->
          f.Fault.node = v
          &&
          let drv = (Netlist.fanin nl v).(p) in
          gv.(drv) <> x && gv.(drv) <> (if f.Fault.stuck then 1 else 0)
        | None -> false)
      faults
  in
  let pseen = Array.make n 0 in
  let pstamp = ref 0 in
  let propagation_objectives () =
    (* Frontier gates either consume a D node or host an activated pin
       fault, so enumerating D consumers beats any scan.  The stamp
       array dedups gates fed by several D inputs; the sort keeps the
       historical ascending-node-id candidate order. *)
    incr pstamp;
    let s = !pstamp in
    let acc = ref [] in
    let consider v =
      if pseen.(v) <> s then begin
        pseen.(v) <- s;
        match Netlist.kind nl v with
        | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1 -> ()
        | k ->
          if gv.(v) = x || fv.(v) = x then begin
            (* Set an X input to the non-controlling value (or, for
               kinds without one, a heuristic value — implication sorts
               it out). *)
            let v_obj =
              match controlling k with Some c -> 1 - c | None -> 1
            in
            let inputs = Netlist.fanin nl v in
            let pick =
              match guidance with
              | None ->
                Array.to_list inputs
                |> List.find_opt (fun i -> gv.(i) = x || fv.(i) = x)
              | Some _ ->
                (* Cheapest X side input first: justifying the
                   non-controlling value there costs the least. *)
                Array.fold_left
                  (fun best i ->
                    if gv.(i) = x || fv.(i) = x then
                      match best with
                      | Some j when gcost j v_obj <= gcost i v_obj -> best
                      | _ -> Some i
                    else best)
                  None inputs
            in
            match pick with
            | Some i -> acc := (v, (i, v_obj)) :: !acc
            | None -> ()
          end
      end
    in
    List.iter (fun d -> List.iter consider (Netlist.fanout nl d)) !d_list;
    List.iter
      (fun f ->
        if f.Fault.pin <> None && pin_fault_active f.Fault.node then
          consider f.Fault.node)
      faults;
    (match guidance with
     | None -> List.sort (fun (a, _) (b, _) -> compare a b) !acc
     | Some g ->
       (* Best-observability frontier gate first (SCOAP CO): drive the
          difference down the path most likely to reach an observe
          node. *)
       List.sort
         (fun (a, _) (b, _) -> compare (g.g_co.(a), a) (g.g_co.(b), b))
         !acc)
    |> List.map snd
  in
  (* Completeness fallback for the frontier: the primary objective list
     offers one X input per frontier gate (and one heuristic polarity
     for kinds without a controlling value).  When every primary
     candidate fails to backtrace, the cube is not necessarily dead —
     another X input of the same gate may reach a free PI, and an
     XOR/MUX side input may propagate at the other polarity.  These
     fallbacks are only consulted after the primary list fails, so a
     search that never hits the old premature dead end is bit-identical
     to the historical one. *)
  let propagation_fallbacks () =
    incr pstamp;
    let s = !pstamp in
    let acc = ref [] in
    let consider v =
      if pseen.(v) <> s then begin
        pseen.(v) <- s;
        match Netlist.kind nl v with
        | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1 -> ()
        | k ->
          if gv.(v) = x || fv.(v) = x then
            Array.iter
              (fun i ->
                if gv.(i) = x || fv.(i) = x then
                  match controlling k with
                  | Some c -> acc := (i, 1 - c) :: !acc
                  | None ->
                    acc := (i, 1) :: !acc;
                    acc := (i, 0) :: !acc)
              (Netlist.fanin nl v)
      end
    in
    List.iter (fun d -> List.iter consider (Netlist.fanout nl d)) !d_list;
    List.iter
      (fun f ->
        if f.Fault.pin <> None && pin_fault_active f.Fault.node then
          consider f.Fault.node)
      faults;
    List.rev !acc
  in
  (* Backtrace an objective to an assignable PI with X value.  Failed
     (node, want) pairs are memoised per call: without this the search
     is exponential on reconvergent all-X regions (multiplier arrays
     across several time frames). *)
  let backtrace node want =
    let dead = Hashtbl.create 64 in
    let rec go node want =
      if Hashtbl.mem dead (node, want) then None
      else
        let result =
          match Netlist.kind nl node with
          | Netlist.Pi | Netlist.Dff ->
            (* DFFs appear here under the scan view, where flip-flop
               state is a free (pseudo-primary-input) decision. *)
            if is_assignable.(node) && not (Hashtbl.mem pi_val node) then
              Some (node, want)
            else None
          | Netlist.Const0 | Netlist.Const1 -> None
          | k ->
            let fi = Netlist.fanin nl node in
            let want' = if inverts k then 1 - want else want in
            (* Choose an X input; try them in order until one
               backtraces.  Under guidance the order is easiest-to-set
               first (SCOAP CC for the wanted value), otherwise the
               historical pin order. *)
            let order =
              let idxs = List.init (Array.length fi) Fun.id in
              match guidance with
              | None -> idxs
              | Some _ ->
                List.stable_sort
                  (fun i j ->
                    compare (gcost fi.(i) want') (gcost fi.(j) want'))
                  idxs
            in
            let rec try_inputs = function
              | [] -> None
              | idx :: rest ->
                if gv.(fi.(idx)) = x then
                  match go fi.(idx) want' with
                  | Some r -> Some r
                  | None -> try_inputs rest
                else try_inputs rest
            in
            try_inputs order
        in
        if result = None then Hashtbl.replace dead (node, want) ();
        result
    in
    go node want
  in
  (* Decision stack: (pi, value, tried_both). *)
  let stack = ref [] in
  let rec backtrack () =
    effort.backtracks <- effort.backtracks + 1;
    match !stack with
    | [] -> `Exhausted
    | (pi, _, true) :: tl ->
      unset_pi pi;
      stack := tl;
      backtrack ()
    | (pi, v, false) :: tl ->
      set_pi pi (1 - v);
      stack := (pi, 1 - v, true) :: tl;
      `Continue
  in
  let result = ref None in
  (try
     while !result = None do
       (* Cooperative deadline hook: one call per search iteration; may
          raise to abandon the attempt (the supervisor catches it). *)
       (match check with Some c -> c () | None -> ());
       imply ();
       if detected () then result := Some (`Found)
       else if effort.backtracks > backtrack_limit then result := Some `Aborted
       else if guided_conflict () then begin
         effort.guided_cuts <- effort.guided_cuts + 1;
         match backtrack () with
         | `Exhausted -> result := Some `Untestable
         | `Continue -> ()
       end
       else begin
         let objectives =
           if not (activated ()) then activation_objectives ()
           else
             (* For multi-site faults (one fault replicated across time
                frames) activation at one site must not stop the search
                from activating another: the detecting test may need a
                different site's effect.  So the X-path check only
                gates propagation, and the remaining activation
                objectives always stay live.  Single-site behaviour is
                unchanged: an activated lone site has a concrete good
                value, so [acts] is empty and this reduces to the
                classic activate / x-path / propagate ladder. *)
             let acts = activation_objectives () in
             if xpath_ok () then propagation_objectives () @ acts else acts
         in
         (* Try each candidate objective until one backtraces to a free
            assignable PI. *)
         let rec decide = function
           | [] -> true (* must backtrack *)
           | (node, want) :: rest ->
             (match backtrace node want with
              | None -> decide rest
              | Some (pi, v) ->
                effort.decisions <- effort.decisions + 1;
                set_pi pi v;
                stack := (pi, v, false) :: !stack;
                false)
         in
         if
           decide objectives
           && ((not !propagation_fallbacks_enabled)
               || not (activated ()) || not (xpath_ok ())
               || decide (propagation_fallbacks ()))
         then
           match backtrack () with
           | `Exhausted -> result := Some `Untestable
           | `Continue -> ()
       end
     done
   with Stack_overflow -> result := Some `Aborted);
  let outcome =
    match !result with
    | Some `Found ->
      let assignment =
        Hashtbl.fold (fun p v acc -> (p, v = 1) :: acc) pi_val []
        |> List.sort compare
      in
      Test assignment
    | Some `Untestable -> Untestable
    | Some `Aborted | None -> Aborted
  in
  if !Hft_obs.Config.enabled then
    Hft_obs.Registry.observe "hft.podem.time"
      (Hft_obs.Clock.now () -. t_start);
  flush_effort ~guided:(guidance <> None) effort outcome;
  match outcome, guidance with
  | Aborted, Some _ ->
    (* Guided ordering reshapes the budget-limited search, so a guided
       abort could hide a verdict the classic order would have reached.
       Falling back to an unguided run makes the guided per-fault
       verdict provably no worse than the unguided one: Test and
       Untestable are sound proofs wherever they come from, and a
       guided Aborted resolves to exactly the unguided outcome. *)
    let r2, e2 = generate ~backtrack_limit ?check nl ~faults ~assignable
        ~observe
    in
    e2.decisions <- e2.decisions + effort.decisions;
    e2.backtracks <- e2.backtracks + effort.backtracks;
    e2.implications <- e2.implications + effort.implications;
    e2.guided_cuts <- effort.guided_cuts;
    (r2, e2)
  | _ -> (outcome, effort)

let generate_comb ?backtrack_limit nl ~fault =
  generate ?backtrack_limit nl ~faults:[ fault ] ~assignable:(Netlist.pis nl)
    ~observe:(Netlist.pos nl)

let check nl ~faults ~assignment ~observe =
  let n = Netlist.n_nodes nl in
  let gv = Sim.tcreate nl and fv = Sim.tcreate nl in
  Array.fill gv 0 n x;
  Array.fill fv 0 n x;
  List.iter
    (fun (p, b) ->
      let v = if b then 1 else 0 in
      gv.(p) <- v;
      fv.(p) <- v)
    assignment;
  Sim.teval nl gv;
  Sim.teval ~faults nl fv;
  List.exists (fun o -> gv.(o) <> x && fv.(o) <> x && gv.(o) <> fv.(o)) observe
