(** Fault simulation.

    Combinational: pattern-parallel (62 patterns per machine word).
    Two strategies share one harness: [Naive] re-evaluates the whole
    netlist per fault (the historical algorithm, kept as the
    differential-testing oracle), [Cone] (the default) copies-on-write
    from the good-value state and re-evaluates only the fault's
    precomputed fanout cone ({!Netlist.fanout_cone}), comparing only
    observation points inside the cone.  Nodes outside the cone provably
    keep their good values, so both strategies report bit-identical
    detections; the event count ([hft.fsim.events]) drops from
    [n_nodes * (n_faults + 1)] to [n_nodes + sum of cone sizes].
    Sequential: cycle-accurate single-fault simulation over a stimulus
    sequence. *)

type strategy = Naive | Cone

type comb_result = {
  detected : Fault.t list;
  undetected : Fault.t list;
  n_patterns : int;
}

val coverage : comb_result -> float

(** [comb nl ~patterns faults] — [patterns] is a matrix
    [(pattern, pi index in Netlist.pis order)].  A fault is detected
    when any PO differs on any pattern.  DFF states are held at 0 (use
    {!comb} on purely combinational blocks for exact results). *)
val comb :
  ?strategy:strategy ->
  Netlist.t -> patterns:bool array array -> Fault.t list -> comb_result

(** [comb_random nl ~rng ~n_patterns faults] with uniform random
    patterns. *)
val comb_random :
  ?strategy:strategy ->
  Netlist.t -> rng:Hft_util.Rng.t -> n_patterns:int -> Fault.t list ->
  comb_result

(** [comb_scan nl ~scanned ~patterns faults] — full/partial-scan fault
    simulation as one combinational pass per pattern.  Each pattern row
    is [|pis| + |scanned|] wide: the tail columns preset the scan cells
    (in [scanned] order) as pseudo primary inputs, and the D input of
    every scan cell joins the POs as an observation point (the captured
    next state is shifted out).  Non-scanned DFFs are held at 0. *)
val comb_scan :
  ?strategy:strategy ->
  Netlist.t -> scanned:int list -> patterns:bool array array ->
  Fault.t list -> comb_result

(** [detect_groups nl ~assignment ~observe groups] — single-pattern
    detection check used for fault dropping.  [assignment] gives values
    for source nodes (PIs/DFFs; unlisted sources default to [false]);
    each group is one logical fault as a list of simultaneous injection
    sites (several when a fault is replicated across time frames).
    Returns a per-group flag: some node in [observe] differs from the
    good machine.  [on_group_events] (default: ignore) is called once
    per group with [(group index, simulation events charged to it)] —
    the cone size under [Cone], the full node count under [Naive] —
    letting callers attribute fsim cost to individual fault classes
    (the {!Hft_obs.Ledger} hook). *)
val detect_groups :
  ?on_group_events:(int -> int -> unit) ->
  ?strategy:strategy ->
  Netlist.t -> assignment:(int * bool) list -> observe:int list ->
  Fault.t list list -> bool array

(** [detect_groups_tri] — three-valued variant of {!detect_groups}:
    sources without an assignment stay at X and detection requires a
    defined, differing good/faulty value at an observe node
    ({!Podem.check}'s criterion), so a positive answer holds for any
    value of the unassigned sources — the sound drop check on circuits
    with unknown initial state. *)
val detect_groups_tri :
  ?on_group_events:(int -> int -> unit) ->
  ?strategy:strategy ->
  Netlist.t -> assignment:(int * bool) list -> observe:int list ->
  Fault.t list list -> bool array

(** Coverage as a function of pattern count: returns
    [(patterns applied, cumulative coverage)] at each checkpoint.
    Patterns come from [next_pattern], called once per pattern per PI
    bit — this is how LFSR / accumulator generators drive the same
    machinery. *)
val coverage_curve :
  Netlist.t -> checkpoints:int list ->
  next_pattern:(unit -> bool array) -> Fault.t list -> (int * float) list

(** Sequential: [sequential nl ~stimuli faults] runs each fault over the
    cycle stimulus and compares PO streams against the good machine. *)
val sequential :
  Netlist.t -> stimuli:bool array array -> Fault.t list -> comb_result
