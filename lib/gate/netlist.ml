type kind =
  | Pi
  | Po
  | Dff
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux2

type t = {
  cname : string;
  mutable kinds : kind array;
  mutable fanins : int array array;
  mutable names : string array;
  mutable n : int;
  mutable fanouts : int list array option; (* cache *)
  mutable order : int list option; (* comb_order cache *)
  mutable topo_pos : int array option; (* node -> position in comb_order *)
  mutable cones : int array option array option; (* fanout_cone cache *)
  mutable version : int; (* bumped by add/set_fanin *)
}

let create ?(name = "netlist") () =
  {
    cname = name;
    kinds = Array.make 64 Pi;
    fanins = Array.make 64 [||];
    names = Array.make 64 "";
    n = 0;
    fanouts = None;
    order = None;
    topo_pos = None;
    cones = None;
    version = 0;
  }

(* Structural copy for per-domain ATPG workspaces: node ids are array
   positions, so ids, fault sites and observe lists transfer verbatim
   between a netlist and its copy.  Derived caches are dropped — each
   domain rebuilds its own — and the version is carried over so
   version-keyed caches treat copy and original alike. *)
let copy nl =
  {
    cname = nl.cname;
    kinds = Array.copy nl.kinds;
    fanins = Array.map Array.copy nl.fanins;
    names = Array.copy nl.names;
    n = nl.n;
    fanouts = None;
    order = None;
    topo_pos = None;
    cones = None;
    version = nl.version;
  }

let arity = function
  | Pi | Const0 | Const1 -> 0
  | Po | Buf | Not | Dff -> 1
  | And | Or | Nand | Nor | Xor | Xnor -> 2
  | Mux2 -> 3

let add nl ?(name = "") kind fanins =
  if Array.length fanins <> arity kind then
    Hft_robust.Validation.fail ~site:"netlist.add"
      ~hint:
        (Printf.sprintf "this gate kind takes %d fanin(s), got %d"
           (arity kind) (Array.length fanins))
      (Printf.sprintf "arity mismatch on node %d%s" nl.n
         (if name = "" then "" else " (" ^ name ^ ")"));
  Array.iter
    (fun f ->
      if f < 0 || f >= nl.n then
        Hft_robust.Validation.fail ~site:"netlist.add"
          ~hint:"fanins must reference already-created nodes"
          (Printf.sprintf "dangling fanin %d on node %d%s (only %d nodes exist)"
             f nl.n
             (if name = "" then "" else " (" ^ name ^ ")")
             nl.n))
    fanins;
  if nl.n >= Array.length nl.kinds then begin
    let cap = 2 * Array.length nl.kinds in
    let k = Array.make cap Pi and f = Array.make cap [||] in
    let s = Array.make cap "" in
    Array.blit nl.kinds 0 k 0 nl.n;
    Array.blit nl.fanins 0 f 0 nl.n;
    Array.blit nl.names 0 s 0 nl.n;
    nl.kinds <- k;
    nl.fanins <- f;
    nl.names <- s
  end;
  let id = nl.n in
  nl.kinds.(id) <- kind;
  nl.fanins.(id) <- fanins;
  nl.names.(id) <- (if name = "" then Printf.sprintf "n%d" id else name);
  nl.n <- id + 1;
  nl.fanouts <- None;
  nl.order <- None;
  nl.topo_pos <- None;
  nl.cones <- None;
  nl.version <- nl.version + 1;
  id

let n_nodes nl = nl.n
let version nl = nl.version

let check nl i =
  if i < 0 || i >= nl.n then invalid_arg "Netlist: node out of range"

let kind nl i = check nl i; nl.kinds.(i)
let fanin nl i = check nl i; nl.fanins.(i)
let raw_kinds nl = nl.kinds
let raw_fanins nl = nl.fanins
let node_name nl i = check nl i; nl.names.(i)
let circuit_name nl = nl.cname

let fanout nl i =
  check nl i;
  let cache =
    match nl.fanouts with
    | Some c -> c
    | None ->
      let c = Array.make nl.n [] in
      for v = nl.n - 1 downto 0 do
        Array.iter (fun f -> c.(f) <- v :: c.(f)) nl.fanins.(v)
      done;
      nl.fanouts <- Some c;
      c
  in
  cache.(i)

let set_fanin nl node pin new_src =
  check nl node;
  check nl new_src;
  let fi = nl.fanins.(node) in
  if pin < 0 || pin >= Array.length fi then
    Hft_robust.Validation.fail ~site:"netlist.set_fanin"
      ~hint:"pin index must be within the node's fanin arity"
      (Printf.sprintf "pin %d out of range on node %d (arity %d)" pin node
         (Array.length fi));
  fi.(pin) <- new_src;
  nl.fanouts <- None;
  nl.order <- None;
  nl.topo_pos <- None;
  nl.cones <- None;
  nl.version <- nl.version + 1

let of_kind nl k =
  let acc = ref [] in
  for i = nl.n - 1 downto 0 do
    if nl.kinds.(i) = k then acc := i :: !acc
  done;
  !acc

let pis nl = of_kind nl Pi
let pos nl = of_kind nl Po
let dffs nl = of_kind nl Dff

let n_gates nl =
  let c = ref 0 in
  for i = 0 to nl.n - 1 do
    match nl.kinds.(i) with
    | Pi | Po | Const0 | Const1 -> ()
    | Dff | Buf | Not | And | Or | Nand | Nor | Xor | Xnor | Mux2 -> incr c
  done;
  !c

let comb_order_uncached nl =
  (* Kahn over combinational edges; Dff outputs are sources, Dff inputs
     terminate paths. *)
  let indeg = Array.make nl.n 0 in
  for v = 0 to nl.n - 1 do
    match nl.kinds.(v) with
    | Dff | Pi | Const0 | Const1 -> ()
    | Po | Buf | Not | And | Or | Nand | Nor | Xor | Xnor | Mux2 ->
      indeg.(v) <- Array.length nl.fanins.(v)
  done;
  let q = Queue.create () in
  for v = 0 to nl.n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    incr seen;
    order := v :: !order;
    List.iter
      (fun w ->
        match nl.kinds.(w) with
        | Dff -> () (* sequential edge *)
        | Pi | Const0 | Const1 -> ()
        | Po | Buf | Not | And | Or | Nand | Nor | Xor | Xnor | Mux2 ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then Queue.add w q)
      (fanout nl v)
  done;
  (* Dffs never enter the queue via fanin-counting above unless... they
     have indeg 0 and were enqueued as sources; all fine.  Check
     completeness over combinational nodes. *)
  let total = ref 0 in
  for v = 0 to nl.n - 1 do
    match nl.kinds.(v) with
    | Dff -> incr total (* enqueued as source *)
    | Pi | Const0 | Const1 | Po | Buf | Not | And | Or | Nand | Nor | Xor
    | Xnor | Mux2 -> incr total
  done;
  if !seen <> !total then
    Hft_robust.Validation.fail ~site:"netlist.comb_order"
      ~hint:"break the loop with a Dff, or fix the fanin wiring"
      (Printf.sprintf
         "combinational cycle: %d of %d nodes unreachable from sources"
         (!total - !seen) !total);
  List.rev !order

let comb_order nl =
  match nl.order with
  | Some o -> o
  | None ->
    let o = comb_order_uncached nl in
    nl.order <- Some o;
    o

let topo_pos nl =
  match nl.topo_pos with
  | Some p -> p
  | None ->
    let p = Array.make nl.n 0 in
    List.iteri (fun i v -> p.(v) <- i) (comb_order nl);
    nl.topo_pos <- Some p;
    p

let fanout_cone nl root =
  check nl root;
  let cache =
    match nl.cones with
    | Some c when Array.length c = nl.n -> c
    | Some _ | None ->
      let c = Array.make nl.n None in
      nl.cones <- Some c;
      c
  in
  match cache.(root) with
  | Some cone -> cone
  | None ->
    (* Forward closure over combinational edges only: a [Dff] consumer
       terminates the walk because a single combinational pass never
       updates its state. *)
    let pos = topo_pos nl in
    let seen = Array.make nl.n false in
    let acc = ref [] and count = ref 0 in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        acc := v :: !acc;
        incr count;
        List.iter
          (fun w -> if nl.kinds.(w) <> Dff then visit w)
          (fanout nl v)
      end
    in
    visit root;
    let cone = Array.make !count root in
    List.iteri (fun i v -> cone.(i) <- v) !acc;
    Array.sort (fun a b -> compare pos.(a) pos.(b)) cone;
    cache.(root) <- Some cone;
    cone

let fanout_cone_union nl = function
  | [] -> [||]
  | [ r ] -> fanout_cone nl r
  | roots ->
    (* Memoized cones are already sorted by topological position, so the
       union is a plain sorted-merge with duplicate elimination — no
       hashing, no re-sort. *)
    let pos = topo_pos nl in
    let merge a b =
      let la = Array.length a and lb = Array.length b in
      if la = 0 then Array.copy b
      else if lb = 0 then Array.copy a
      else begin
        let out = Array.make (la + lb) 0 in
        let i = ref 0 and j = ref 0 and k = ref 0 in
        while !i < la && !j < lb do
          let va = a.(!i) and vb = b.(!j) in
          if va = vb then begin
            out.(!k) <- va;
            incr i;
            incr j
          end
          else if pos.(va) < pos.(vb) then begin
            out.(!k) <- va;
            incr i
          end
          else begin
            out.(!k) <- vb;
            incr j
          end;
          incr k
        done;
        while !i < la do
          out.(!k) <- a.(!i);
          incr i;
          incr k
        done;
        while !j < lb do
          out.(!k) <- b.(!j);
          incr j;
          incr k
        done;
        if !k = la + lb then out else Array.sub out 0 !k
      end
    in
    List.fold_left (fun acc r -> merge acc (fanout_cone nl r)) [||] roots

let eval_bool k (ins : bool array) =
  match k with
  | Buf | Po -> ins.(0)
  | Not -> not ins.(0)
  | And -> ins.(0) && ins.(1)
  | Or -> ins.(0) || ins.(1)
  | Nand -> not (ins.(0) && ins.(1))
  | Nor -> not (ins.(0) || ins.(1))
  | Xor -> ins.(0) <> ins.(1)
  | Xnor -> ins.(0) = ins.(1)
  | Mux2 -> if ins.(0) then ins.(2) else ins.(1)
  | Pi | Dff | Const0 | Const1 ->
    invalid_arg "Netlist.eval_bool: source node"

(* 3-valued: 0, 1, 2 = X. *)
let x = 2

let tri_not = function 0 -> 1 | 1 -> 0 | _ -> x

let tri_and a b =
  if a = 0 || b = 0 then 0 else if a = 1 && b = 1 then 1 else x

let tri_or a b =
  if a = 1 || b = 1 then 1 else if a = 0 && b = 0 then 0 else x

let tri_xor a b = if a = x || b = x then x else if a <> b then 1 else 0

let tri_mux s a b =
  match s with 0 -> a | 1 -> b | _ -> if a = b then a else x

let eval_tri k (ins : int array) =
  match k with
  | Buf | Po -> ins.(0)
  | Not -> tri_not ins.(0)
  | And -> tri_and ins.(0) ins.(1)
  | Or -> tri_or ins.(0) ins.(1)
  | Nand -> tri_not (tri_and ins.(0) ins.(1))
  | Nor -> tri_not (tri_or ins.(0) ins.(1))
  | Xor -> tri_xor ins.(0) ins.(1)
  | Xnor -> tri_not (tri_xor ins.(0) ins.(1))
  | Mux2 -> tri_mux ins.(0) ins.(1) ins.(2)
  | Pi | Dff | Const0 | Const1 ->
    invalid_arg "Netlist.eval_tri: source node"

let validate nl =
  ignore (comb_order nl);
  for v = 0 to nl.n - 1 do
    Array.iter
      (fun f ->
        if nl.kinds.(f) = Po then
          Hft_robust.Validation.fail ~site:"netlist.validate"
            ~hint:"drive the consumer from the Po's fanin instead"
            (Printf.sprintf "Po node %d used as fanin of node %d" f v))
      nl.fanins.(v)
  done

let stats nl =
  Printf.sprintf "%s: %d nodes, %d gates, %d PIs, %d POs, %d DFFs"
    nl.cname nl.n (n_gates nl) (List.length (pis nl)) (List.length (pos nl))
    (List.length (dffs nl))
