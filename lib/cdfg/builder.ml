type pending_var = {
  mutable kind : Graph.var_kind;
  name : string;
}

type t = {
  graph_name : string;
  mutable vars : pending_var list; (* reversed *)
  mutable n_vars : int;
  mutable ops : (Op.kind * int array * int) list; (* reversed *)
  mutable n_ops : int;
  mutable fb : (int * int) list;
  mutable tc : int list;
  mutable tob : int list;
}

let create graph_name =
  { graph_name; vars = []; n_vars = 0; ops = []; n_ops = 0; fb = []; tc = [];
    tob = [] }

let add_var b kind name =
  let id = b.n_vars in
  b.vars <- { kind; name } :: b.vars;
  b.n_vars <- id + 1;
  id

let input b name = add_var b Graph.V_input name
let state b name = add_var b Graph.V_intermediate name
let const b c = add_var b (Graph.V_const c) (Printf.sprintf "c%d" c)

let fresh_name b prefix = Printf.sprintf "%s%d" prefix b.n_ops

let add_op b kind args name =
  let result = add_var b Graph.V_intermediate name in
  b.ops <- (kind, args, result) :: b.ops;
  b.n_ops <- b.n_ops + 1;
  result

let binop b ?name kind a c =
  let name = match name with Some n -> n | None -> fresh_name b "t" in
  add_op b kind [| a; c |] name

let move b ?name a =
  let name = match name with Some n -> n | None -> fresh_name b "m" in
  add_op b Op.Move [| a |] name

let mark_output b v =
  let pv = List.nth b.vars (b.n_vars - 1 - v) in
  (match pv.kind with
   | Graph.V_input ->
     Hft_robust.Validation.fail ~site:"builder.mark_output"
       ~hint:"route the input through an op (e.g. a move) first"
       (Printf.sprintf "variable %d (%s) is an input" v pv.name)
   | Graph.V_const _ ->
     Hft_robust.Validation.fail ~site:"builder.mark_output"
       ~hint:"constants cannot be outputs; bind through an op"
       (Printf.sprintf "variable %d (%s) is a constant" v pv.name)
   | Graph.V_intermediate | Graph.V_output -> pv.kind <- Graph.V_output)

let feedback b ~src ~dst = b.fb <- (src, dst) :: b.fb
let test_control b v = b.tc <- v :: b.tc
let test_observe b v = b.tob <- v :: b.tob

let finish b =
  let vars =
    Array.of_list (List.rev b.vars)
    |> Array.mapi (fun i pv -> { Graph.v_id = i; v_name = pv.name; v_kind = pv.kind })
  in
  let ops =
    Array.of_list (List.rev b.ops)
    |> Array.mapi (fun i (kind, args, result) ->
           { Graph.o_id = i; o_kind = kind; o_args = args; o_result = result })
  in
  Graph.make ~name:b.graph_name ~vars ~ops ~feedback:(List.rev b.fb)
    ~test_controls:(List.rev b.tc) ~test_observes:(List.rev b.tob)
