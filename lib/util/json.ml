type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal form that parses back to exactly [f].  JSON has no
   nan/inf literals, so those degrade to null rather than emitting a
   token no parser accepts. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None ->
      (match try_prec 16 with
       | Some s -> s
       | None -> Printf.sprintf "%.17g" f)

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        vs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    (* Offsets alone are hard to act on in multi-line documents. *)
    let line = ref 1 and bol = ref 0 in
    String.iteri
      (fun i c ->
        if i < !pos && c = '\n' then begin
          incr line;
          bol := i + 1
        end)
      s;
    raise
      (Bad
         (Printf.sprintf "%s at offset %d (line %d, column %d)" msg !pos !line
            (!pos - !bol + 1)))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 >= n then fail "bad \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
              (* Keep it simple: BMP code points as UTF-8. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4)
         | _ -> fail "bad escape");
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
          | _ -> false)
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt tok with
       | Some f -> Float f
       | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
