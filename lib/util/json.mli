(** Minimal JSON values: emission for machine-readable reports and a
    small recursive-descent parser used by the test suite to check that
    emitted reports are well-formed.  No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact serialisation with full string escaping.  Floats use the
    shortest decimal form that round-trips exactly (integral values
    keep a [.0] suffix so they stay floats on re-parse); nan/inf have
    no JSON literal and degrade to [null]. *)
val to_string : t -> string

(** Parse a complete JSON document; [Error msg] on malformed input or
    trailing garbage, with the failure offset and line/column in the
    message.  Numbers with a fraction or exponent parse as [Float],
    others as [Int]. *)
val parse : string -> (t, string) result

(** Object field lookup ([None] on non-objects too). *)
val member : string -> t -> t option
