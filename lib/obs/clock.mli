(** Wall-clock source for spans and timers.

    Defaults to [Unix.gettimeofday]; tests substitute a deterministic
    counter so span durations are exact. *)

(** Current time in seconds. *)
val now : unit -> float

val set_source : (unit -> float) -> unit
val reset_source : unit -> unit

(** [with_source f body] runs [body] with [f] as the clock, restoring
    the previous source afterwards (also on exceptions). *)
val with_source : (unit -> float) -> (unit -> 'a) -> 'a
