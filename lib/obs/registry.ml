(* Process-global metric registry.

   Names are dotted paths ([hft.podem.backtracks]); the catalogue in
   use is documented in the README's Observability section.  A name is
   bound to its kind on first use; re-registering with another kind is
   a programming error and raises.

   The table and the metric mutations behind [incr]/[set]/[observe]/
   [record] are guarded by one mutex so counters are never lost when
   engines run on worker domains.  Writes additionally route through
   {!Capture}: a domain in capture mode defers the write onto its tape
   instead of touching the shared state (see capture.mli). *)

let table : (string, Metric.t) Hashtbl.t = Hashtbl.create 64

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Callers must hold [lock]. *)
let find_or_create_unlocked ~kind name =
  match Hashtbl.find_opt table name with
  | Some m ->
    if Metric.snapshot m |> fun s -> s.Metric.s_kind <> kind then
      invalid_arg
        (Printf.sprintf "Hft_obs.Registry: %s re-registered with new kind"
           name);
    m
  | None ->
    let m = Metric.create ~kind name in
    Hashtbl.replace table name m;
    m

let find_or_create ~kind name = locked (fun () -> find_or_create_unlocked ~kind name)

let counter name = find_or_create ~kind:Metric.Counter name
let gauge name = find_or_create ~kind:Metric.Gauge name
let timer name = find_or_create ~kind:Metric.Timer name
let histogram name = find_or_create ~kind:Metric.Histogram name

let incr_now ?by name =
  locked (fun () ->
      Metric.incr ?by (find_or_create_unlocked ~kind:Metric.Counter name))

let incr ?by name =
  if !Config.enabled then
    if not (Capture.defer (fun () -> incr_now ?by name)) then incr_now ?by name

let set_now name v =
  locked (fun () ->
      Metric.set (find_or_create_unlocked ~kind:Metric.Gauge name) v)

let set name v =
  if !Config.enabled then
    if not (Capture.defer (fun () -> set_now name v)) then set_now name v

let observe_now name v =
  locked (fun () ->
      Metric.observe (find_or_create_unlocked ~kind:Metric.Timer name) v)

let observe name v =
  if !Config.enabled then
    if not (Capture.defer (fun () -> observe_now name v)) then observe_now name v

let record_now name v =
  locked (fun () ->
      Metric.observe (find_or_create_unlocked ~kind:Metric.Histogram name) v)

let record name v =
  if !Config.enabled then
    if not (Capture.defer (fun () -> record_now name v)) then record_now name v

let time name f =
  if not !Config.enabled then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> observe name (Clock.now () -. t0)) f
  end

let find name =
  locked (fun () -> Option.map Metric.snapshot (Hashtbl.find_opt table name))

let value name =
  match find name with None -> 0.0 | Some s -> Metric.value s

let count name =
  match find name with None -> 0 | Some s -> s.Metric.s_count

let snapshot () =
  locked (fun () ->
      Hashtbl.fold (fun _ m acc -> Metric.snapshot m :: acc) table [])
  |> List.sort (fun a b -> compare a.Metric.s_name b.Metric.s_name)

let reset () = locked (fun () -> Hashtbl.reset table)

(* Run [f] against a scratch registry: the live bindings are parked,
   [f] sees an empty table, and the bindings are restored afterwards
   (the [Metric.t] values themselves are untouched — only table
   membership moves).  Exception-safe via [Fun.protect]. *)
let isolated f =
  let saved =
    locked (fun () ->
        let s = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
        Hashtbl.reset table;
        s)
  in
  Fun.protect
    ~finally:(fun () ->
      locked (fun () ->
          Hashtbl.reset table;
          List.iter (fun (k, v) -> Hashtbl.replace table k v) saved))
    f
