(* Process-global metric registry.

   Names are dotted paths ([hft.podem.backtracks]); the catalogue in
   use is documented in the README's Observability section.  A name is
   bound to its kind on first use; re-registering with another kind is
   a programming error and raises. *)

let table : (string, Metric.t) Hashtbl.t = Hashtbl.create 64

let find_or_create ~kind name =
  match Hashtbl.find_opt table name with
  | Some m ->
    if Metric.snapshot m |> fun s -> s.Metric.s_kind <> kind then
      invalid_arg
        (Printf.sprintf "Hft_obs.Registry: %s re-registered with new kind"
           name);
    m
  | None ->
    let m = Metric.create ~kind name in
    Hashtbl.replace table name m;
    m

let counter name = find_or_create ~kind:Metric.Counter name
let gauge name = find_or_create ~kind:Metric.Gauge name
let timer name = find_or_create ~kind:Metric.Timer name
let histogram name = find_or_create ~kind:Metric.Histogram name

let incr ?by name =
  if !Config.enabled then Metric.incr ?by (counter name)

let set name v = if !Config.enabled then Metric.set (gauge name) v
let observe name v = if !Config.enabled then Metric.observe (timer name) v
let record name v = if !Config.enabled then Metric.observe (histogram name) v

let time name f =
  if not !Config.enabled then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> observe name (Clock.now () -. t0)) f
  end

let find name = Option.map Metric.snapshot (Hashtbl.find_opt table name)

let value name =
  match find name with None -> 0.0 | Some s -> Metric.value s

let count name =
  match find name with None -> 0 | Some s -> s.Metric.s_count

let snapshot () =
  Hashtbl.fold (fun _ m acc -> Metric.snapshot m :: acc) table []
  |> List.sort (fun a b -> compare a.Metric.s_name b.Metric.s_name)

let reset () = Hashtbl.reset table
