(* Shared table emitter for the experiment harness and CLI reports.

   Exactly one code path decides how a numeric row is shown, so the
   human tables and the [--json] variants cannot drift apart: Text mode
   is Hft_util.Pretty verbatim, Jsonl mode emits one object per row
   (keys from the header) with numeric-looking cells promoted to JSON
   numbers — the same convention Export uses for metric snapshots. *)

type mode = Text | Jsonl

let mode = ref Text

(* "97.3%" and "12" should both survive as numbers; anything else stays
   a string. *)
let cell_to_json (s : string) : Hft_util.Json.t =
  match int_of_string_opt s with
  | Some i -> Hft_util.Json.Int i
  | None ->
    (match float_of_string_opt s with
     | Some f -> Hft_util.Json.Float f
     | None ->
       let n = String.length s in
       if n > 1 && s.[n - 1] = '%' then
         match float_of_string_opt (String.sub s 0 (n - 1)) with
         | Some f -> Hft_util.Json.Float (f /. 100.0)
         | None -> Hft_util.Json.String s
       else Hft_util.Json.String s)

let row_to_json ?title ~header row =
  let fields = List.map2 (fun k c -> (k, cell_to_json c)) header row in
  let fields =
    match title with
    | Some t -> ("table", Hft_util.Json.String t) :: fields
    | None -> fields
  in
  Hft_util.Json.Obj fields

let emit ?title ~header rows =
  match !mode with
  | Text -> Hft_util.Pretty.print ?title ~header rows
  | Jsonl ->
    List.iter
      (fun row ->
        print_endline (Hft_util.Json.to_string (row_to_json ?title ~header row)))
      rows
