(** Domain-local capture of observability side effects.

    The parallel ATPG engine evaluates fault classes speculatively on
    worker domains, then commits the surviving results in class order
    on the orchestrating thread.  For the committed run to be
    bit-identical to the sequential one, the metric bumps and journal
    events an engine produces {e during} speculation must not hit the
    global registry/journal as they happen (their order would depend on
    scheduling, and discarded speculation would pollute the counters).
    Instead, {!Registry} and {!Journal} route their writes through this
    module: when the current domain is in {e capture} mode the write is
    deferred onto a tape, and the orchestrator {!replay}s the tape at
    commit time — same operations, deterministic order.  {e Suppress}
    mode discards writes entirely (used for per-domain workspace
    construction whose cost has no sequential counterpart).

    Modes are per-domain ({!Domain.DLS}), so the orchestrating thread's
    own writes are never affected by what worker domains are doing. *)

type tape
(** A sequence of deferred observability writes, in emission order. *)

val empty : tape

val length : tape -> int

val active : unit -> bool
(** [active ()] is true when the calling domain is capturing or
    suppressing. *)

val defer : (unit -> unit) -> bool
(** [defer th] consumes [th] when the calling domain is in capture mode
    (buffered) or suppress mode (dropped) and returns [true]; returns
    [false] — caller performs the write itself — otherwise.  Intended
    for {!Registry} and {!Journal} internals. *)

val record : (unit -> 'a) -> 'a * tape
(** [record f] runs [f] with the calling domain in capture mode and
    returns its result plus the tape of writes it deferred.  Nesting
    restores the previous mode on exit, including on exceptions. *)

val suppress : (unit -> 'a) -> 'a
(** [suppress f] runs [f] with the calling domain's writes discarded. *)

val replay : tape -> unit
(** [replay t] performs the deferred writes in emission order, in the
    calling domain's current mode (normally: for real). *)
