(* Fault-forensics ledger: one lifecycle record per collapsed fault
   class of a test campaign.

   The ATPG engines register each class when they start (representative
   plus members, as display strings — this library knows nothing of
   netlists), then resolve it exactly once and charge search/simulation
   cost to it as they go.  The ledger answers "why is coverage X%": for
   every class, how it was resolved and what it cost, plus the
   aggregated coverage waterfall.  Everything is gated on
   [Config.enabled]; registration returns [-1] when disabled and every
   other entry point treats a negative handle as a no-op, so call sites
   need no guards of their own. *)

type resolution =
  | Drop_detected of { test : int }
  | Podem_detected of { test : int; backtracks : int; frames : int }
  | Salvaged of { test : int; patterns : int }
  | Proved_untestable of { frames : int }
  | Aborted of { budget : int; frames : int; reason : string option }
  | Never_targeted

type row = {
  lr_class : int;
  lr_rep : string;
  lr_members : string list;
  lr_resolution : resolution;
  lr_fsim_events : int;
  lr_implications : int;
  lr_backtracks : int;
  lr_guided_cuts : int;
}

type test = { lt_id : int; lt_frames : int; lt_rows : (int * int) option }

(* Growable internal storage; handles are indexes, so [charge] on a hot
   drop pass is two array reads and an add. *)
type mrow = {
  m_rep : string;
  m_members : string list;
  mutable m_res : resolution;
  mutable m_fsim : int;
  mutable m_impl : int;
  mutable m_btk : int;
  mutable m_gcuts : int;
}

type mtest = { mt_frames : int; mutable mt_rows : (int * int) option }

let rows_buf : mrow array ref = ref [||]
let n_rows_ = ref 0
let tests_buf : mtest array ref = ref [||]
let n_tests_ = ref 0

(* One mutex guards both growable buffers so registrations and charges
   from worker domains are never lost.  Lock ordering: the ledger lock
   is released before calling into [Journal] (see [resolve]), so the
   only cross-module order is Ledger → Journal and never the reverse. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  locked (fun () ->
      rows_buf := [||];
      n_rows_ := 0;
      tests_buf := [||];
      n_tests_ := 0)

(* Run [f] against scratch row/test buffers, restoring the live ones
   afterwards.  Classes registered inside are invisible outside. *)
let isolated f =
  let saved =
    locked (fun () ->
        let s = (!rows_buf, !n_rows_, !tests_buf, !n_tests_) in
        rows_buf := [||];
        n_rows_ := 0;
        tests_buf := [||];
        n_tests_ := 0;
        s)
  in
  Fun.protect
    ~finally:(fun () ->
      locked (fun () ->
          let rb, nr, tb, nt = saved in
          rows_buf := rb;
          n_rows_ := nr;
          tests_buf := tb;
          n_tests_ := nt))
    f

let push buf n dummy v =
  let a = !buf in
  let cap = Array.length a in
  if !n = cap then begin
    let a' = Array.make (max 16 (2 * cap)) dummy in
    Array.blit a 0 a' 0 cap;
    a'.(cap) <- v;
    buf := a';
    n := cap + 1;
    cap
  end
  else begin
    a.(!n) <- v;
    incr n;
    !n - 1
  end

let dummy_row =
  { m_rep = ""; m_members = []; m_res = Never_targeted; m_fsim = 0;
    m_impl = 0; m_btk = 0; m_gcuts = 0 }

let dummy_test = { mt_frames = 0; mt_rows = None }

let register_class ~rep ~members =
  if not !Config.enabled then -1
  else
    locked (fun () ->
        push rows_buf n_rows_ dummy_row
          { m_rep = rep; m_members = members; m_res = Never_targeted;
            m_fsim = 0; m_impl = 0; m_btk = 0; m_gcuts = 0 })

let resolution_key = function
  | Drop_detected _ -> "drop_detected"
  | Podem_detected _ -> "podem_detected"
  | Salvaged _ -> "salvaged"
  | Proved_untestable _ -> "untestable"
  | Aborted _ -> "aborted"
  | Never_targeted -> "never_targeted"

let resolve h res =
  if h >= 0 then begin
    let faults =
      locked (fun () ->
          if h < !n_rows_ then begin
            let r = !rows_buf.(h) in
            r.m_res <- res;
            Some (List.length r.m_members)
          end
          else None)
    in
    match faults with
    | None -> ()
    | Some faults ->
      (* Journaled so an exported tape replays the waterfall offline and
         the progress streamer sees resolution velocity without a second
         hook.  Recorded after the ledger lock is released: the progress
         tap behind [Journal.on_record] reads the ledger back. *)
      Journal.record
        (Journal.Class_resolved
           { cls = h; outcome = resolution_key res; faults })
  end

let resolve h res =
  (* A capturing domain defers the whole resolve (row mutation and the
     Class_resolved record) so speculative work never reaches the shared
     ledger; the orchestrator replays committed tapes in class order. *)
  if not (Capture.defer (fun () -> resolve h res)) then resolve h res

let charge_now ?(fsim_events = 0) ?(implications = 0) ?(backtracks = 0)
    ?(guided_cuts = 0) h =
  if h >= 0 then
    locked (fun () ->
        if h < !n_rows_ then begin
          let r = !rows_buf.(h) in
          r.m_fsim <- r.m_fsim + fsim_events;
          r.m_impl <- r.m_impl + implications;
          r.m_btk <- r.m_btk + backtracks;
          r.m_gcuts <- r.m_gcuts + guided_cuts
        end)

let charge ?fsim_events ?implications ?backtracks ?guided_cuts h =
  if h >= 0 then
    if
      not
        (Capture.defer (fun () ->
             charge_now ?fsim_events ?implications ?backtracks ?guided_cuts h))
    then charge_now ?fsim_events ?implications ?backtracks ?guided_cuts h

let register_test ~frames =
  if not !Config.enabled then -1
  else
    locked (fun () ->
        push tests_buf n_tests_ dummy_test
          { mt_frames = frames; mt_rows = None })

let annotate_last_test ~first_row ~n_rows =
  if !Config.enabled then
    locked (fun () ->
        if !n_tests_ > 0 then
          !tests_buf.(!n_tests_ - 1).mt_rows <- Some (first_row, n_rows))

let n_classes () = locked (fun () -> !n_rows_)
let n_tests () = locked (fun () -> !n_tests_)

let row_of i =
  let m = !rows_buf.(i) in
  { lr_class = i; lr_rep = m.m_rep; lr_members = m.m_members;
    lr_resolution = m.m_res; lr_fsim_events = m.m_fsim;
    lr_implications = m.m_impl; lr_backtracks = m.m_btk;
    lr_guided_cuts = m.m_gcuts }

let rows () = List.init !n_rows_ row_of

let tests () =
  List.init !n_tests_ (fun i ->
      let t = !tests_buf.(i) in
      { lt_id = i; lt_frames = t.mt_frames; lt_rows = t.mt_rows })

let cost r = r.lr_fsim_events + r.lr_implications + r.lr_backtracks

let resolution_to_string = function
  | Drop_detected { test } -> Printf.sprintf "drop-detected (test %d)" test
  | Podem_detected { test; backtracks; frames } ->
    Printf.sprintf "podem-detected (test %d, %d btk, %d frames)" test
      backtracks frames
  | Salvaged { test; patterns } ->
    Printf.sprintf "salvaged (test %d, %d random patterns)" test patterns
  | Proved_untestable { frames } ->
    Printf.sprintf "untestable (%d frames)" frames
  | Aborted { budget; frames; reason } ->
    Printf.sprintf "aborted (budget %d, %d frames%s)" budget frames
      (match reason with None -> "" | Some r -> ", " ^ r)
  | Never_targeted -> "never-targeted"

(* The waterfall columns in their reporting order. *)
let outcome_keys =
  [ "drop_detected"; "podem_detected"; "salvaged"; "aborted"; "untestable";
    "never_targeted" ]

let waterfall () =
  let tally = List.map (fun k -> (k, (ref 0, ref 0))) outcome_keys in
  for i = 0 to !n_rows_ - 1 do
    let m = !rows_buf.(i) in
    let classes, faults = List.assoc (resolution_key m.m_res) tally in
    incr classes;
    faults := !faults + List.length m.m_members
  done;
  List.map (fun (k, (c, f)) -> (k, (!c, !f))) tally

let total_faults () =
  let n = ref 0 in
  for i = 0 to !n_rows_ - 1 do
    n := !n + List.length !rows_buf.(i).m_members
  done;
  !n

let waterfall_json () =
  let open Hft_util.Json in
  Obj
    (("classes", Int !n_rows_)
     :: ("faults", Int (total_faults ()))
     :: List.map
          (fun (k, (c, f)) ->
            (k, Obj [ ("classes", Int c); ("faults", Int f) ]))
          (waterfall ()))

let resolution_to_json res =
  let open Hft_util.Json in
  let fields =
    match res with
    | Drop_detected { test } -> [ ("test", Int test) ]
    | Podem_detected { test; backtracks; frames } ->
      [ ("test", Int test); ("backtracks", Int backtracks);
        ("frames", Int frames) ]
    | Salvaged { test; patterns } ->
      [ ("test", Int test); ("patterns", Int patterns) ]
    | Proved_untestable { frames } -> [ ("frames", Int frames) ]
    | Aborted { budget; frames; reason } ->
      ("budget", Int budget) :: ("frames", Int frames)
      :: (match reason with None -> [] | Some r -> [ ("reason", String r) ])
    | Never_targeted -> []
  in
  Obj (("outcome", String (resolution_key res)) :: fields)

(* Inverse of {!resolution_to_json}, for checkpoint restore. *)
let resolution_of_json j =
  let open Hft_util.Json in
  let int k = match member k j with Some (Int i) -> Some i | _ -> None in
  let str k = match member k j with Some (String s) -> Some s | _ -> None in
  match member "outcome" j with
  | Some (String "drop_detected") ->
    Option.map (fun test -> Drop_detected { test }) (int "test")
  | Some (String "podem_detected") ->
    (match (int "test", int "backtracks", int "frames") with
     | Some test, Some backtracks, Some frames ->
       Some (Podem_detected { test; backtracks; frames })
     | _ -> None)
  | Some (String "salvaged") ->
    (match (int "test", int "patterns") with
     | Some test, Some patterns -> Some (Salvaged { test; patterns })
     | _ -> None)
  | Some (String "untestable") ->
    Option.map (fun frames -> Proved_untestable { frames }) (int "frames")
  | Some (String "aborted") ->
    (match (int "budget", int "frames") with
     | Some budget, Some frames ->
       Some (Aborted { budget; frames; reason = str "reason" })
     | _ -> None)
  | Some (String "never_targeted") -> Some Never_targeted
  | _ -> None

(* The ledger-test id a detection-carrying resolution points at, if
   any — checkpoint loading uses it to discard records from a torn
   final transaction. *)
let resolution_test = function
  | Drop_detected { test } | Podem_detected { test; _ } | Salvaged { test; _ }
    -> Some test
  | Proved_untestable _ | Aborted _ | Never_targeted -> None

let row_to_json r =
  let open Hft_util.Json in
  Obj
    [ ("class", Int r.lr_class);
      ("rep", String r.lr_rep);
      ("members", List (List.map (fun m -> String m) r.lr_members));
      ("resolution", resolution_to_json r.lr_resolution);
      ("fsim_events", Int r.lr_fsim_events);
      ("implications", Int r.lr_implications);
      ("backtracks", Int r.lr_backtracks);
      ("guided_cuts", Int r.lr_guided_cuts);
      ("cost", Int (cost r)) ]

let to_json () =
  Hft_util.Json.Obj
    [ ("waterfall", waterfall_json ());
      ("rows", Hft_util.Json.List (List.map row_to_json (rows ())));
      ("tests",
       Hft_util.Json.List
         (List.map
            (fun t ->
              Hft_util.Json.Obj
                (("test", Hft_util.Json.Int t.lt_id)
                 :: ("frames", Hft_util.Json.Int t.lt_frames)
                 ::
                 (match t.lt_rows with
                  | None -> []
                  | Some (first, n) ->
                    [ ("first_row", Hft_util.Json.Int first);
                      ("n_rows", Hft_util.Json.Int n) ])))
            (tests ()))) ]

(* Line-oriented export for offline reporting: every class row, then
   every test, one JSON object per line.  Rows are recognisable by their
   "class" key and tests by their "test" key, so `hft report
   --journal-in` can tell a ledger tape from a journal tape without a
   header line. *)
let to_jsonl () =
  let b = Buffer.create 4096 in
  let line j =
    Buffer.add_string b (Hft_util.Json.to_string j);
    Buffer.add_char b '\n'
  in
  List.iter (fun r -> line (row_to_json r)) (rows ());
  List.iter
    (fun t ->
      line
        (Hft_util.Json.Obj
           (("test", Hft_util.Json.Int t.lt_id)
            :: ("frames", Hft_util.Json.Int t.lt_frames)
            ::
            (match t.lt_rows with
             | None -> []
             | Some (first, n) ->
               [ ("first_row", Hft_util.Json.Int first);
                 ("n_rows", Hft_util.Json.Int n) ]))))
    (tests ());
  Buffer.contents b

(* Most expensive first; class id breaks ties so the order is total. *)
let top_expensive ~k =
  rows ()
  |> List.sort (fun a b ->
         match compare (cost b) (cost a) with
         | 0 -> compare a.lr_class b.lr_class
         | c -> c)
  |> List.filteri (fun i _ -> i < k)
