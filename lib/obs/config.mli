(** Global enable switch for metrics and tracing.

    All of {!Registry} and {!Span} check this ref on entry; with it
    [false] (the default) every recording call is a ref dereference and
    a branch. *)

val enabled : bool ref

(** Per-phase GC/allocation profiling (default [false]).  With both
    this and {!enabled} on, every {!Span.with_} folds the phase's
    [Gc.quick_stat] deltas — minor words, major words, compactions —
    into the span's attributes ([gc_minor_w]/[gc_major_w]/[gc_compact]). *)
val gc_stats : bool ref

(** [with_enabled v f] runs [f] with the switch set to [v], restoring
    the previous value afterwards (also on exceptions). *)
val with_enabled : bool -> (unit -> 'a) -> 'a
