(** Global enable switch for metrics and tracing.

    All of {!Registry} and {!Span} check this ref on entry; with it
    [false] (the default) every recording call is a ref dereference and
    a branch. *)

val enabled : bool ref

(** [with_enabled v f] runs [f] with the switch set to [v], restoring
    the previous value afterwards (also on exceptions). *)
val with_enabled : bool -> (unit -> 'a) -> 'a
