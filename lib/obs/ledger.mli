(** Fault-forensics ledger: one lifecycle record per collapsed fault
    class of a test campaign.

    The ATPG engines ({!Hft_gate.Seq_atpg}, [Hft_scan.Full_scan])
    register each equivalence class up front, resolve it exactly once
    (dropped / PODEM-detected / untestable / aborted), and charge
    search and simulation cost to it as the campaign runs.  Faults and
    members are display strings — the ledger knows nothing of netlists,
    so it lives in [Hft_obs] below every engine.

    Registration is gated on [!Config.enabled] and returns [-1] when
    disabled; every other entry point treats a negative handle as a
    no-op, so instrumented call sites need no guards. *)

type resolution =
  | Drop_detected of { test : int }
      (** Detected by fault-simulating an earlier test ({!test} is the
          ledger id of the dropping test) — never targeted by PODEM. *)
  | Podem_detected of { test : int; backtracks : int; frames : int }
      (** PODEM produced [test] for this class after [backtracks] total
          backtracks across its attempts, at [frames] time frames. *)
  | Salvaged of { test : int; patterns : int }
      (** Targeted PODEM failed (supervisor ladder exhausted), but one
          of [patterns] random patterns detected the class — the
          graceful-degradation outcome. *)
  | Proved_untestable of { frames : int }
      (** Search space exhausted at every frame count up to [frames]. *)
  | Aborted of { budget : int; frames : int; reason : string option }
      (** The backtrack budget [budget] tripped at every frame count up
          to [frames]; [reason] carries the supervisor's failure
          evidence ({!Hft_robust} taxonomy) when the abort came from a
          supervised failure rather than plain budget exhaustion. *)
  | Never_targeted  (** Campaign ended before this class was processed. *)

type row = {
  lr_class : int;  (** handle, dense from 0 in registration order *)
  lr_rep : string;  (** representative fault, display form *)
  lr_members : string list;  (** every sampled member, rep included *)
  lr_resolution : resolution;
  lr_fsim_events : int;  (** fault-simulation node events in its cones *)
  lr_implications : int;  (** PODEM implication passes spent on it *)
  lr_backtracks : int;  (** PODEM backtracks spent on it *)
  lr_guided_cuts : int;  (** branches pruned by static-analysis guidance *)
}

type test = {
  lt_id : int;
  lt_frames : int;
  lt_rows : (int * int) option;
      (** [(first_row, n_rows)] in the campaign's pattern store, when the
          flow recorded the mapping. *)
}

(** Returns the class handle, or [-1] when observability is disabled. *)
val register_class : rep:string -> members:string list -> int

(** Record the class outcome (last write wins; engines resolve once).
    Also journals a {!Hft_obs.Journal.event.Class_resolved} event, so
    exported tapes carry the waterfall and live consumers see
    resolution velocity. *)
val resolve : int -> resolution -> unit

(** Accumulate cost counters onto a class; all default to 0. *)
val charge :
  ?fsim_events:int -> ?implications:int -> ?backtracks:int ->
  ?guided_cuts:int -> int -> unit

(** Append a test to the campaign's test table, returning its id
    ([-1] when disabled). *)
val register_test : frames:int -> int

(** Attach pattern-store coordinates to the most recently registered
    test (called by the flow's [on_test], which runs synchronously after
    {!register_test}). *)
val annotate_last_test : first_row:int -> n_rows:int -> unit

val n_classes : unit -> int
val n_tests : unit -> int
val rows : unit -> row list
val tests : unit -> test list

(** [lr_fsim_events + lr_implications + lr_backtracks] — the ranking
    used by the "most expensive faults" report. *)
val cost : row -> int

(** Waterfall outcome keys in reporting order: [drop_detected],
    [podem_detected], [salvaged], [aborted], [untestable],
    [never_targeted]. *)
val outcome_keys : string list

(** Per-outcome [(classes, faults)] tallies, in {!outcome_keys} order;
    the class counts sum to {!n_classes} by construction. *)
val waterfall : unit -> (string * (int * int)) list

(** Total sampled faults across all classes (sum of member counts). *)
val total_faults : unit -> int

val resolution_key : resolution -> string
val resolution_to_string : resolution -> string
val resolution_to_json : resolution -> Hft_util.Json.t

(** Inverse of {!resolution_to_json} ([None] on malformed input) —
    checkpoint restore. *)
val resolution_of_json : Hft_util.Json.t -> resolution option

(** The ledger-test id a detection-carrying resolution references. *)
val resolution_test : resolution -> int option
val waterfall_json : unit -> Hft_util.Json.t
val row_to_json : row -> Hft_util.Json.t
val to_json : unit -> Hft_util.Json.t

(** One JSON object per line: every class row (keyed ["class"]) then
    every test (keyed ["test"]); [""] when empty.  The offline-report
    input format ([hft report --journal-in]). *)
val to_jsonl : unit -> string

(** The [k] most expensive rows, descending cost (class id tiebreak). *)
val top_expensive : k:int -> row list

val reset : unit -> unit

(** [isolated f] runs [f] against a fresh, empty ledger and restores
    the previous rows and tests afterwards (even on exceptions). *)
val isolated : (unit -> 'a) -> 'a
