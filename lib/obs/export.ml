(* Rendering of registry snapshots: fixed-width table for humans, JSON
   for machines.  Kept apart from Registry so the registry itself has
   no opinion about presentation.  Also hosts the Chrome trace-event
   exporter for the span tree (load the file in chrome://tracing or
   https://ui.perfetto.dev). *)

let fmt_value (s : Metric.snapshot) =
  match s.Metric.s_kind with
  | Metric.Counter -> string_of_int s.Metric.s_count
  | Metric.Gauge -> Printf.sprintf "%g" s.Metric.s_last
  | Metric.Timer -> Printf.sprintf "%.3f ms" (1e3 *. s.Metric.s_sum)
  | Metric.Histogram -> Printf.sprintf "%g" s.Metric.s_sum

let fmt_detail (s : Metric.snapshot) =
  match s.Metric.s_kind with
  | Metric.Counter -> ""
  | Metric.Gauge ->
    if s.Metric.s_count <= 1 then ""
    else Printf.sprintf "min %g, max %g" s.Metric.s_min s.Metric.s_max
  | Metric.Timer ->
    if s.Metric.s_count = 0 then ""
    else
      Printf.sprintf "n=%d, mean %.3f ms, p50 %.3f ms, p95 %.3f ms, max %.3f ms"
        s.Metric.s_count
        (1e3 *. Metric.mean s)
        (1e3 *. Metric.percentile s 0.5)
        (1e3 *. Metric.percentile s 0.95)
        (1e3 *. s.Metric.s_max)
  | Metric.Histogram ->
    if s.Metric.s_count = 0 then ""
    else
      Printf.sprintf "n=%d, mean %g, p50 %g, p95 %g, max %g" s.Metric.s_count
        (Metric.mean s)
        (Metric.percentile s 0.5)
        (Metric.percentile s 0.95)
        s.Metric.s_max

let metrics_table ?(snapshot = Registry.snapshot ()) () =
  match snapshot with
  | [] -> "(no metrics recorded)\n"
  | snaps ->
    Hft_util.Pretty.render ~header:[ "metric"; "kind"; "value"; "detail" ]
      (List.map
         (fun s ->
           [ s.Metric.s_name; Metric.kind_to_string s.Metric.s_kind;
             fmt_value s; fmt_detail s ])
         snaps)

let metrics_json ?(snapshot = Registry.snapshot ()) () =
  Hft_util.Json.Obj
    (List.map (fun s -> (s.Metric.s_name, Metric.snapshot_to_json s)) snapshot)

(* OpenMetrics / Prometheus text exposition of a registry snapshot.

   Counters expose as `<name>_total`, gauges as `<name>`, and timers /
   histograms as the full `_bucket{le="..."}` / `_sum` / `_count`
   triple with cumulative bucket counts over the registry's 40
   power-of-two bins (plus the mandatory `le="+Inf"`).  Metric names
   are mangled to the exposition charset (dots become underscores:
   `hft.podem.backtracks` -> `hft_podem_backtracks`), and the document
   ends with the OpenMetrics `# EOF` marker, so a scraper — or the
   ROADMAP's future `hft serve` — ingests the file as-is. *)

let openmetrics_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

(* Exposition floats: finite shortest-ish decimal; the grammar forbids
   nothing here, but scrapers choke on "inf"/"nan" spellings other than
   the canonical ones. *)
let openmetrics_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let openmetrics ?(snapshot = Registry.snapshot ()) () =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s;
                                   Buffer.add_char b '\n') fmt in
  List.iter
    (fun (s : Metric.snapshot) ->
      let name = openmetrics_name s.Metric.s_name in
      match s.Metric.s_kind with
      | Metric.Counter ->
        line "# TYPE %s counter" name;
        line "%s_total %d" name s.Metric.s_count
      | Metric.Gauge ->
        line "# TYPE %s gauge" name;
        line "%s %s" name (openmetrics_float s.Metric.s_last)
      | Metric.Timer | Metric.Histogram ->
        line "# TYPE %s histogram" name;
        let cum = ref 0 in
        Array.iteri
          (fun i n ->
            cum := !cum + n;
            line "%s_bucket{le=\"%s\"} %d" name
              (openmetrics_float (Metric.bucket_upper i))
              !cum)
          s.Metric.s_buckets;
        line "%s_bucket{le=\"+Inf\"} %d" name s.Metric.s_count;
        line "%s_sum %s" name (openmetrics_float s.Metric.s_sum);
        line "%s_count %d" name s.Metric.s_count)
    snapshot;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* Chrome trace-event format: a flat list of complete ("ph":"X") events
   with microsecond timestamps relative to the earliest root, one per
   span.  Nesting is implied by time containment on a shared pid/tid,
   which holds by construction — a child span opens after and closes
   before its parent. *)
let chrome_trace ?(roots = Span.roots ()) () =
  let t0 =
    List.fold_left (fun acc r -> Float.min acc (Span.start r)) infinity roots
  in
  let t0 = if t0 = infinity then 0.0 else t0 in
  let rec emit acc sp =
    let ev =
      Hft_util.Json.Obj
        [ ("name", Hft_util.Json.String (Span.name sp));
          ("ph", Hft_util.Json.String "X");
          ("ts", Hft_util.Json.Float (1e6 *. (Span.start sp -. t0)));
          ("dur", Hft_util.Json.Float (1e6 *. Span.elapsed sp));
          ("pid", Hft_util.Json.Int 1);
          ("tid", Hft_util.Json.Int 1);
          ("args",
           Hft_util.Json.Obj
             (List.map
                (fun (k, v) -> (k, Hft_util.Json.String v))
                (Span.attrs sp))) ]
    in
    List.fold_left emit (ev :: acc) (Span.children sp)
  in
  let events = List.rev (List.fold_left emit [] roots) in
  Hft_util.Json.Obj
    [ ("traceEvents", Hft_util.Json.List events);
      ("displayTimeUnit", Hft_util.Json.String "ms") ]
