(* Rendering of registry snapshots: fixed-width table for humans, JSON
   for machines.  Kept apart from Registry so the registry itself has
   no opinion about presentation. *)

let fmt_value (s : Metric.snapshot) =
  match s.Metric.s_kind with
  | Metric.Counter -> string_of_int s.Metric.s_count
  | Metric.Gauge -> Printf.sprintf "%g" s.Metric.s_last
  | Metric.Timer -> Printf.sprintf "%.3f ms" (1e3 *. s.Metric.s_sum)

let fmt_detail (s : Metric.snapshot) =
  match s.Metric.s_kind with
  | Metric.Counter -> ""
  | Metric.Gauge ->
    if s.Metric.s_count <= 1 then ""
    else Printf.sprintf "min %g, max %g" s.Metric.s_min s.Metric.s_max
  | Metric.Timer ->
    if s.Metric.s_count = 0 then ""
    else
      Printf.sprintf "n=%d, mean %.3f ms, max %.3f ms" s.Metric.s_count
        (1e3 *. Metric.mean s)
        (1e3 *. s.Metric.s_max)

let metrics_table ?(snapshot = Registry.snapshot ()) () =
  match snapshot with
  | [] -> "(no metrics recorded)\n"
  | snaps ->
    Hft_util.Pretty.render ~header:[ "metric"; "kind"; "value"; "detail" ]
      (List.map
         (fun s ->
           [ s.Metric.s_name; Metric.kind_to_string s.Metric.s_kind;
             fmt_value s; fmt_detail s ])
         snaps)

let metrics_json ?(snapshot = Registry.snapshot ()) () =
  Hft_util.Json.Obj
    (List.map (fun s -> (s.Metric.s_name, Metric.snapshot_to_json s)) snapshot)
