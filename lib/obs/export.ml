(* Rendering of registry snapshots: fixed-width table for humans, JSON
   for machines.  Kept apart from Registry so the registry itself has
   no opinion about presentation.  Also hosts the Chrome trace-event
   exporter for the span tree (load the file in chrome://tracing or
   https://ui.perfetto.dev). *)

let fmt_value (s : Metric.snapshot) =
  match s.Metric.s_kind with
  | Metric.Counter -> string_of_int s.Metric.s_count
  | Metric.Gauge -> Printf.sprintf "%g" s.Metric.s_last
  | Metric.Timer -> Printf.sprintf "%.3f ms" (1e3 *. s.Metric.s_sum)
  | Metric.Histogram -> Printf.sprintf "%g" s.Metric.s_sum

let fmt_detail (s : Metric.snapshot) =
  match s.Metric.s_kind with
  | Metric.Counter -> ""
  | Metric.Gauge ->
    if s.Metric.s_count <= 1 then ""
    else Printf.sprintf "min %g, max %g" s.Metric.s_min s.Metric.s_max
  | Metric.Timer ->
    if s.Metric.s_count = 0 then ""
    else
      Printf.sprintf "n=%d, mean %.3f ms, p50 %.3f ms, p95 %.3f ms, max %.3f ms"
        s.Metric.s_count
        (1e3 *. Metric.mean s)
        (1e3 *. Metric.percentile s 0.5)
        (1e3 *. Metric.percentile s 0.95)
        (1e3 *. s.Metric.s_max)
  | Metric.Histogram ->
    if s.Metric.s_count = 0 then ""
    else
      Printf.sprintf "n=%d, mean %g, p50 %g, p95 %g, max %g" s.Metric.s_count
        (Metric.mean s)
        (Metric.percentile s 0.5)
        (Metric.percentile s 0.95)
        s.Metric.s_max

let metrics_table ?(snapshot = Registry.snapshot ()) () =
  match snapshot with
  | [] -> "(no metrics recorded)\n"
  | snaps ->
    Hft_util.Pretty.render ~header:[ "metric"; "kind"; "value"; "detail" ]
      (List.map
         (fun s ->
           [ s.Metric.s_name; Metric.kind_to_string s.Metric.s_kind;
             fmt_value s; fmt_detail s ])
         snaps)

let metrics_json ?(snapshot = Registry.snapshot ()) () =
  Hft_util.Json.Obj
    (List.map (fun s -> (s.Metric.s_name, Metric.snapshot_to_json s)) snapshot)

(* OpenMetrics / Prometheus text exposition of a registry snapshot.

   Counters expose as `<name>_total`, gauges as `<name>`, and timers /
   histograms as the full `_bucket{le="..."}` / `_sum` / `_count`
   triple with cumulative bucket counts over the registry's 40
   power-of-two bins (plus the mandatory `le="+Inf"`).  Metric names
   are mangled to the exposition charset (dots become underscores:
   `hft.podem.backtracks` -> `hft_podem_backtracks`), and the document
   ends with the OpenMetrics `# EOF` marker, so a scraper — or the
   ROADMAP's future `hft serve` — ingests the file as-is. *)

let openmetrics_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

(* Exposition floats: finite shortest-ish decimal; the grammar forbids
   nothing here, but scrapers choke on "inf"/"nan" spellings other than
   the canonical ones. *)
let openmetrics_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let openmetrics ?(snapshot = Registry.snapshot ()) () =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s;
                                   Buffer.add_char b '\n') fmt in
  List.iter
    (fun (s : Metric.snapshot) ->
      let name = openmetrics_name s.Metric.s_name in
      match s.Metric.s_kind with
      | Metric.Counter ->
        line "# TYPE %s counter" name;
        line "%s_total %d" name s.Metric.s_count
      | Metric.Gauge ->
        line "# TYPE %s gauge" name;
        line "%s %s" name (openmetrics_float s.Metric.s_last)
      | Metric.Timer | Metric.Histogram ->
        line "# TYPE %s histogram" name;
        let cum = ref 0 in
        Array.iteri
          (fun i n ->
            cum := !cum + n;
            line "%s_bucket{le=\"%s\"} %d" name
              (openmetrics_float (Metric.bucket_upper i))
              !cum)
          s.Metric.s_buckets;
        line "%s_bucket{le=\"+Inf\"} %d" name s.Metric.s_count;
        line "%s_sum %s" name (openmetrics_float s.Metric.s_sum);
        line "%s_count %d" name s.Metric.s_count)
    snapshot;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* Chrome trace-event format: complete ("ph":"X") events with
   microsecond timestamps relative to the earliest recorded instant.
   Span events land on the tid of the domain that opened them (0 for
   everything the orchestrator ran); nesting is implied by time
   containment per tid, which holds by construction — a child span
   opens after and closes before its parent on the same domain.  The
   pool's per-task {!Span.track_event} slices land on their worker's
   tid, so a parallel campaign renders as one real timeline per domain,
   with flow arrows ("ph":"s"/"f") from each speculative evaluation to
   the commit-window slice that consumed it.  "ph":"M" thread_name
   metadata labels the tracks. *)
let chrome_trace ?(roots = Span.roots ()) ?(tracks = Span.tracks ()) () =
  let t0 =
    List.fold_left
      (fun acc tk -> Float.min acc tk.Span.tk_start)
      (List.fold_left (fun acc r -> Float.min acc (Span.start r)) infinity
         roots)
      tracks
  in
  let t0 = if t0 = infinity then 0.0 else t0 in
  let us t = Hft_util.Json.Float (1e6 *. (t -. t0)) in
  let str_args kvs =
    ("args",
     Hft_util.Json.Obj
       (List.map (fun (k, v) -> (k, Hft_util.Json.String v)) kvs))
  in
  let tids = Hashtbl.create 8 in
  let seen_tid d = if not (Hashtbl.mem tids d) then Hashtbl.add tids d () in
  let rec emit acc sp =
    seen_tid (Span.domain sp);
    let ev =
      Hft_util.Json.Obj
        [ ("name", Hft_util.Json.String (Span.name sp));
          ("ph", Hft_util.Json.String "X");
          ("ts", us (Span.start sp));
          ("dur", Hft_util.Json.Float (1e6 *. Span.elapsed sp));
          ("pid", Hft_util.Json.Int 1);
          ("tid", Hft_util.Json.Int (Span.domain sp));
          str_args (Span.attrs sp) ]
    in
    List.fold_left emit (ev :: acc) (Span.children sp)
  in
  let span_events = List.rev (List.fold_left emit [] roots) in
  (* Flow starts with no matching finish would dangle in the viewer, so
     only emit the "s" half of flows some commit slice terminates. *)
  let finished_flows = Hashtbl.create 32 in
  List.iter
    (fun tk ->
      List.iter (fun id -> Hashtbl.replace finished_flows id ()) tk.Span.tk_flow_in)
    tracks;
  let flow_ev ph ?(extra = []) id tk ts =
    Hft_util.Json.Obj
      ([ ("name", Hft_util.Json.String "spec-commit");
         ("cat", Hft_util.Json.String "spec");
         ("ph", Hft_util.Json.String ph);
         ("id", Hft_util.Json.Int id);
         ("ts", us ts);
         ("pid", Hft_util.Json.Int 1);
         ("tid", Hft_util.Json.Int tk.Span.tk_domain) ]
       @ extra)
  in
  let track_events =
    List.concat_map
      (fun tk ->
        seen_tid tk.Span.tk_domain;
        let slice =
          Hft_util.Json.Obj
            [ ("name", Hft_util.Json.String tk.Span.tk_name);
              ("ph", Hft_util.Json.String "X");
              ("ts", us tk.Span.tk_start);
              ("dur", Hft_util.Json.Float (1e6 *. tk.Span.tk_dur));
              ("pid", Hft_util.Json.Int 1);
              ("tid", Hft_util.Json.Int tk.Span.tk_domain);
              str_args tk.Span.tk_args ]
        in
        let outs =
          match tk.Span.tk_flow_out with
          | Some id when Hashtbl.mem finished_flows id ->
            [ flow_ev "s" id tk (tk.Span.tk_start +. tk.Span.tk_dur) ]
          | _ -> []
        in
        let ins =
          List.map
            (fun id ->
              flow_ev "f"
                ~extra:[ ("bp", Hft_util.Json.String "e") ]
                id tk tk.Span.tk_start)
            tk.Span.tk_flow_in
        in
        (slice :: outs) @ ins)
      tracks
  in
  let thread_names =
    Hashtbl.fold (fun d () acc -> d :: acc) tids []
    |> List.sort compare
    |> List.map (fun d ->
           Hft_util.Json.Obj
             [ ("name", Hft_util.Json.String "thread_name");
               ("ph", Hft_util.Json.String "M");
               ("pid", Hft_util.Json.Int 1);
               ("tid", Hft_util.Json.Int d);
               ("args",
                Hft_util.Json.Obj
                  [ ("name",
                     Hft_util.Json.String
                       (if d = 0 then "orchestrator"
                        else Printf.sprintf "worker-%d" d)) ]) ])
  in
  Hft_util.Json.Obj
    [ ("traceEvents",
       Hft_util.Json.List (thread_names @ span_events @ track_events));
      ("displayTimeUnit", Hft_util.Json.String "ms") ]

(* Self-time attribution over the span tree: a span's self time is its
   elapsed minus its children's (clamped at 0 — children measured on
   the same clock can overrun their parent by jitter only), aggregated
   by span name.  Sorted by descending self time, then name. *)
let self_times ?(roots = Span.roots ()) () =
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let rec go sp =
    let kids = Span.children sp in
    let child_t = List.fold_left (fun a c -> a +. Span.elapsed c) 0.0 kids in
    let self = Float.max 0.0 (Span.elapsed sp -. child_t) in
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl (Span.name sp)) in
    Hashtbl.replace tbl (Span.name sp) (prev +. self);
    List.iter go kids
  in
  List.iter go roots;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (n1, t1) (n2, t2) ->
         match compare t2 t1 with 0 -> compare n1 n2 | c -> c)

(* flamegraph.pl folded-stack format: one "a;b;c <value>" line per
   distinct path, value = integer self-time microseconds.  Orchestrator
   paths come from the span tree; worker slices (domain > 0) fold as
   "worker-<d>;<name>".  Domain-0 track slices (the commit windows) are
   excluded — their time already lives inside the span tree and would
   double-count.  Lines sort lexicographically, so equal inputs fold to
   byte-equal output. *)
let folded_stacks ?(roots = Span.roots ()) ?(tracks = Span.tracks ()) () =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let add path sec =
    let us = int_of_float ((1e6 *. sec) +. 0.5) in
    if us > 0 then
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl path) in
      Hashtbl.replace tbl path (prev + us)
  in
  let rec go prefix sp =
    let path =
      if prefix = "" then Span.name sp else prefix ^ ";" ^ Span.name sp
    in
    let kids = Span.children sp in
    let child_t = List.fold_left (fun a c -> a +. Span.elapsed c) 0.0 kids in
    add path (Float.max 0.0 (Span.elapsed sp -. child_t));
    List.iter (go path) kids
  in
  List.iter (go "") roots;
  List.iter
    (fun tk ->
      if tk.Span.tk_domain > 0 then
        add
          (Printf.sprintf "worker-%d;%s" tk.Span.tk_domain tk.Span.tk_name)
          tk.Span.tk_dur)
    tracks;
  let lines = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, us) -> Buffer.add_string b (Printf.sprintf "%s %d\n" path us))
    (List.sort compare lines);
  Buffer.contents b
