(** Live campaign telemetry: the [hft-progress/1] JSONL stream, its
    terminal dashboard ([hft watch]), and the offline waterfall rebuild
    ([hft report --journal-in]).

    Start the streamer with {!start} and it taps the event journal
    ({!Journal.on_record}): span phases become [phase_begin] /
    [phase_end] events, ledger class resolutions drive cadenced
    coverage [snapshot] events (detected / dropped / aborted /
    untestable tallies, resolution rate, ETA from resolution velocity,
    cumulative GC stats, top expensive classes), and
    {!campaign_begin} / {!campaign_end} bracket each campaign with a
    [campaign_started] event and a [final] snapshot whose ["waterfall"]
    field is exactly [Ledger.waterfall_json ()] — it bit-matches the
    end-of-run report.

    Every event carries [schema], a strictly monotone [seq], and
    [time].  When the streamer is not started every hook is one ref
    dereference, and since it only ever reads engine state, engine
    effort counters are bit-identical with or without it.  A failing
    sink silences the stream instead of raising into the engine. *)

(** Where the JSONL goes.  Writes are flushed per event so a live tail
    sees complete lines. *)
type sink

val sink_of_channel : ?close:bool -> out_channel -> sink

(** In-memory sink, for tests. *)
val sink_of_buffer : Buffer.t -> sink

(** ["stderr"], ["fd:N"] (opened via [/dev/fd]) or a file path. *)
val sink_of_spec : string -> (sink, string) result

type config = {
  every_classes : int;
      (** Snapshot cadence: at most one per this many class
          resolutions (clamped to >= 1). *)
  min_interval_s : float;
      (** ... and at most one per this many seconds. *)
  top_k : int;  (** Expensive-class rows carried in each snapshot. *)
}

(** [{ every_classes = 8; min_interval_s = 0.0; top_k = 5 }] *)
val default_config : config

(** Install the streamer (replacing any previous one).  [metrics_out]
    names a file rewritten with {!Export.openmetrics} at every
    snapshot (atomically, via rename). *)
val start : ?config:config -> ?metrics_out:string -> sink -> unit

val active : unit -> bool

(** Events successfully written since {!start}. *)
val emitted : unit -> int

(** Emit a [stream_end] terminator, flush and close the sink,
    uninstall the journal tap. *)
val stop : unit -> unit

(** Bracket one campaign: emits [campaign_started] and resets the
    per-campaign cadence/rate state.  No-op when not {!active}. *)
val campaign_begin : label:string -> faults:int -> unit

(** Publish the scheduler-telemetry summary (typically
    [Hft_par.Stats.to_json]) carried by subsequent snapshots'
    ["parallel"] field — call just before {!campaign_end} so the final
    snapshot has it.  [None] (also the {!campaign_begin} reset) makes
    the field [null].  No-op when not {!active}. *)
val set_parallel : Hft_util.Json.t option -> unit

(** Emit the final snapshot ([final:true]) for the open campaign.
    No-op when not {!active} or no campaign is open. *)
val campaign_end : unit -> unit

(** {1 Watch: stream consumer} *)

(** Folded state of a (possibly live, possibly truncated) stream. *)
type view = {
  v_events : int;
  v_bad : int;  (** lines that did not parse *)
  v_campaign : string option;  (** latest campaign label *)
  v_phase : string option;  (** innermost open phase *)
  v_snapshot : Hft_util.Json.t option;  (** most recent snapshot event *)
  v_campaigns_done : int;  (** final snapshots seen *)
  v_finished : bool;
      (** a [stream_end] event was seen (emitted by {!stop}), or the
          last event was a final snapshot *)
  v_last_seq : int;
  v_seq_ok : bool;  (** seq strictly monotone so far *)
  v_unknown_events : int;
      (** events with a [type] this watch does not know — skipped, but
          counted so the dashboard can warn that the stream is newer
          than the consumer *)
  v_unknown_fields : int;
      (** snapshot fields this watch does not know, same contract *)
}

val empty_view : view

(** Fold one JSONL line into the view (blank and unparseable lines are
    counted but otherwise ignored, so a torn live tail is safe). *)
val view_line : view -> string -> view

val view_of_lines : string list -> view

(** Multi-line dashboard: coverage bar, phase, class tallies, rates,
    ETA, GC, top expensive classes.  Plain ASCII — TTY handling (cursor
    movement) is the CLI's business. *)
val render_view : view -> string

(** One-line digest of a snapshot event, for non-TTY tails. *)
val snapshot_brief : Hft_util.Json.t -> string

(** {1 Offline waterfall rebuild} *)

type offline = {
  off_source : string;  (** ["journal"] or ["ledger"] *)
  off_classes : int;
  off_faults : int;
  off_waterfall : (string * (int * int)) list;
      (** [(outcome, (classes, faults))] in {!Ledger.outcome_keys}
          order. *)
  off_tests : int;
  off_expensive : (string * string * int) list;
      (** [(rep, outcome, cost)], descending cost; ledger tapes only. *)
}

(** Rebuild the coverage waterfall from an exported tape: either a
    journal JSONL ([--journal-out], via [Class_resolved] and
    [Test_generated] events) or a ledger JSONL ([--ledger-out], class
    rows verbatim plus the expensive-class table).  A ledger tape is
    exact — it reproduces [Ledger.waterfall] field for field,
    never-targeted rows included.  A journal tape rebuilds the
    resolutions the bounded ring still held at export: for a campaign
    bigger than {!Journal.capacity} that is the surviving window, not
    the whole run, and never-targeted classes (which never journal a
    resolution) do not appear. *)
val offline_of_lines : string list -> (offline, string) result

(** Same shape as [Ledger.waterfall_json], so offline and live reports
    compare field for field. *)
val offline_waterfall_json : offline -> Hft_util.Json.t
