(* Structured event journal: a bounded ring buffer of typed events
   emitted from the gate/scan/core layers behind [Config.enabled].

   Events are recorded with a wall-clock stamp and a global sequence
   number, so the exported JSONL reads as a flight-recorder tape: what
   the engines did, in order, with the per-record cost of one array
   store.  The ring is bounded — a runaway campaign overwrites its own
   oldest history rather than growing without limit — and the number of
   overwritten records is reported ([dropped]). *)

type event =
  | Phase_begin of { name : string }
  | Phase_end of { name : string; elapsed : float }
  | Collapse of { faults : int; classes : int }
  | Atpg_target of { cls : int; rep : string; frames : int }
  | Podem_result of { cls : int; outcome : string; frames : int;
                      backtracks : int }
  | Static_untestable of { cls : int; frames : int }
  | Backtrack of { backtracks : int; decisions : int; implications : int }
  | Test_generated of { test : int; frames : int }
  | Fault_dropped of { cls : int; test : int }
  | Class_resolved of { cls : int; outcome : string; faults : int }
  | Fsim_run of { faults : int; detected : int; patterns : int; events : int }
  | Retry of { site : string; attempt : int; budget : int }
  | Degraded of { site : string; action : string }
  | Checkpoint of { classes : int; tests : int }
  | Shard_stats of { jobs : int; waves : int; tasks : int; steals : int;
                     spec_hits : int; spec_misses : int; inline : int;
                     utilization : float }
  | Note of { key : string; value : string }

type entry = { e_seq : int; e_time : float; e_domain : int; e_event : event }

let default_capacity = 4096
let cap = ref default_capacity
let buf : entry option array ref = ref (Array.make default_capacity None)
let total = ref 0

(* Ring, counters and capacity are guarded by one mutex so records from
   worker domains are never torn or lost.  Writes route through
   {!Capture} first: a capturing domain defers the record onto its tape
   instead of touching the ring (see capture.mli). *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let capacity () = locked (fun () -> !cap)

let reset () =
  locked (fun () ->
      Array.fill !buf 0 (Array.length !buf) None;
      total := 0)

let set_capacity n =
  if n < 1 then invalid_arg "Hft_obs.Journal.set_capacity";
  locked (fun () ->
      cap := n;
      buf := Array.make n None;
      total := 0)

let recorded () = locked (fun () -> !total)
let dropped () = locked (fun () -> max 0 (!total - !cap))

(* Tap for live consumers (the progress streamer): called synchronously
   after the ring store, only when enabled.  The default is a no-op, so
   the tap costs one closure call per recorded event and nothing when
   observability is off.  The tap runs outside the ring lock so it may
   itself read the registry/ledger without deadlocking. *)
let on_record : (entry -> unit) ref = ref (fun _ -> ())

(* The domain stamp is taken where the ring store happens, so entries a
   worker deferred onto a capture tape get domain 0 at replay time (the
   orchestrator performs the write) — which is what keeps committed
   tapes bit-identical across jobs counts.  Only direct worker-side
   records (there are none in the engines today) would carry a nonzero
   domain. *)
let record_now ev =
  let e =
    locked (fun () ->
        let e = { e_seq = !total; e_time = Clock.now ();
                  e_domain = Domain_id.get (); e_event = ev } in
        !buf.(!total mod !cap) <- Some e;
        incr total;
        e)
  in
  !on_record e

let record ev =
  if !Config.enabled then
    if not (Capture.defer (fun () -> record_now ev)) then record_now ev

(* Run [f] against a scratch ring of the same capacity, with the live
   tap suspended, restoring ring, counters and tap afterwards.  Events
   recorded inside are invisible outside and drive no live consumer. *)
let isolated f =
  let saved_tap = !on_record in
  let saved_buf, saved_total =
    locked (fun () ->
        let s = (!buf, !total) in
        buf := Array.make !cap None;
        total := 0;
        s)
  in
  on_record := (fun _ -> ());
  Fun.protect
    ~finally:(fun () ->
      locked (fun () ->
          buf := saved_buf;
          total := saved_total);
      on_record := saved_tap)
    f

let entries () =
  locked (fun () ->
      let n = min !total !cap in
      let first = !total - n in
      List.init n (fun i ->
          match !buf.((first + i) mod !cap) with
          | Some e -> e
          | None -> assert false))

let event_type = function
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Collapse _ -> "collapse"
  | Atpg_target _ -> "atpg_target"
  | Podem_result _ -> "podem_result"
  | Static_untestable _ -> "static_untestable"
  | Backtrack _ -> "backtrack"
  | Test_generated _ -> "test_generated"
  | Fault_dropped _ -> "fault_dropped"
  | Class_resolved _ -> "class_resolved"
  | Fsim_run _ -> "fsim_run"
  | Retry _ -> "retry"
  | Degraded _ -> "degraded"
  | Checkpoint _ -> "checkpoint"
  | Shard_stats _ -> "shard_stats"
  | Note _ -> "note"

let event_fields ev =
  let open Hft_util.Json in
  match ev with
  | Phase_begin { name } -> [ ("name", String name) ]
  | Phase_end { name; elapsed } ->
    [ ("name", String name); ("elapsed_ms", Float (1e3 *. elapsed)) ]
  | Collapse { faults; classes } ->
    [ ("faults", Int faults); ("classes", Int classes) ]
  | Atpg_target { cls; rep; frames } ->
    [ ("class", Int cls); ("rep", String rep); ("frames", Int frames) ]
  | Podem_result { cls; outcome; frames; backtracks } ->
    [ ("class", Int cls); ("outcome", String outcome);
      ("frames", Int frames); ("backtracks", Int backtracks) ]
  | Static_untestable { cls; frames } ->
    [ ("class", Int cls); ("frames", Int frames) ]
  | Backtrack { backtracks; decisions; implications } ->
    [ ("backtracks", Int backtracks); ("decisions", Int decisions);
      ("implications", Int implications) ]
  | Test_generated { test; frames } ->
    [ ("test", Int test); ("frames", Int frames) ]
  | Fault_dropped { cls; test } -> [ ("class", Int cls); ("test", Int test) ]
  | Class_resolved { cls; outcome; faults } ->
    [ ("class", Int cls); ("outcome", String outcome);
      ("faults", Int faults) ]
  | Fsim_run { faults; detected; patterns; events } ->
    [ ("faults", Int faults); ("detected", Int detected);
      ("patterns", Int patterns); ("events", Int events) ]
  | Retry { site; attempt; budget } ->
    [ ("site", String site); ("attempt", Int attempt);
      ("budget", Int budget) ]
  | Degraded { site; action } ->
    [ ("site", String site); ("action", String action) ]
  | Checkpoint { classes; tests } ->
    [ ("classes", Int classes); ("tests", Int tests) ]
  | Shard_stats { jobs; waves; tasks; steals; spec_hits; spec_misses;
                  inline; utilization } ->
    [ ("jobs", Int jobs); ("waves", Int waves); ("tasks", Int tasks);
      ("steals", Int steals); ("spec_hits", Int spec_hits);
      ("spec_misses", Int spec_misses); ("inline", Int inline);
      ("utilization", Float utilization) ]
  | Note { key; value } -> [ ("key", String key); ("value", String value) ]

let entry_to_json e =
  Hft_util.Json.Obj
    (("seq", Hft_util.Json.Int e.e_seq)
     :: ("time", Hft_util.Json.Float e.e_time)
     :: ("domain", Hft_util.Json.Int e.e_domain)
     :: ("type", Hft_util.Json.String (event_type e.e_event))
     :: event_fields e.e_event)

(* One JSON object per line; an empty journal is the empty string, so
   consumers can `wc -l` the tape. *)
let to_jsonl () =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (Hft_util.Json.to_string (entry_to_json e));
      Buffer.add_char b '\n')
    (entries ());
  Buffer.contents b
