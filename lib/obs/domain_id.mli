(** Logical domain id for telemetry tagging.

    [0] = sequential / orchestrator (the default on every fresh
    domain); the domain pool tags its workers [1 .. jobs-1] once at
    spawn.  {!Journal} stamps every entry and {!Span} every span with
    the recording domain's id, which is what gives the Chrome trace one
    timeline per domain. *)

val get : unit -> int

(** Set the calling domain's id (domain-local; worker start-up only). *)
val set : int -> unit
