(* Library root: re-exports the observability toolkit and the global
   switch, so client code reads [Hft_obs.enabled := true],
   [Hft_obs.Span.with_ "podem" ...], [Hft_obs.Registry.incr ...]. *)

module Config = Config
module Clock = Clock
module Domain_id = Domain_id
module Metric = Metric
module Capture = Capture
module Registry = Registry
module Span = Span
module Journal = Journal
module Ledger = Ledger
module Export = Export
module Table = Table
module Progress = Progress

let enabled = Config.enabled
let with_enabled = Config.with_enabled

(* Deliberately leaves [Progress] alone: `hft bench` resets the
   recorder between cells while one progress stream spans the whole
   matrix (its seq numbers must stay strictly monotone). *)
let reset () =
  Registry.reset ();
  Span.reset ();
  Journal.reset ();
  Ledger.reset ()

(* Nest the per-module isolations so [f] sees a completely fresh
   recorder (empty registry/trace/journal/ledger, journal tap
   suspended) and the caller's state — including any live progress
   stream driven off the journal tap — is untouched when [f] returns
   or raises.  The fuzz campaign runs its oracle engine checks in here:
   the oracles [reset ()] and read the ledger freely without erasing
   the campaign's own telemetry. *)
let isolated f =
  Registry.isolated (fun () ->
      Span.isolated (fun () -> Journal.isolated (fun () -> Ledger.isolated f)))
