(* Library root: re-exports the observability toolkit and the global
   switch, so client code reads [Hft_obs.enabled := true],
   [Hft_obs.Span.with_ "podem" ...], [Hft_obs.Registry.incr ...]. *)

module Config = Config
module Clock = Clock
module Metric = Metric
module Registry = Registry
module Span = Span
module Journal = Journal
module Ledger = Ledger
module Export = Export
module Table = Table

let enabled = Config.enabled
let with_enabled = Config.with_enabled

let reset () =
  Registry.reset ();
  Span.reset ();
  Journal.reset ();
  Ledger.reset ()
