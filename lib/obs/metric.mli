(** One named instrument: monotonic counter, gauge, or histogram-style
    timer (count/sum/min/max/last streaming summary — no buckets, so
    updates are O(1) and allocation-free). *)

type kind = Counter | Gauge | Timer

type t

(** Immutable copy of a metric's state, for reporting. *)
type snapshot = {
  s_name : string;
  s_kind : kind;
  s_count : int;  (** counter value, or number of observations *)
  s_sum : float;
  s_min : float;  (** [infinity] when no observation yet *)
  s_max : float;  (** [neg_infinity] when no observation yet *)
  s_last : float;
}

val create : kind:kind -> string -> t
val kind_to_string : kind -> string

(** Counter increment (default 1). *)
val incr : ?by:int -> t -> unit

(** Gauge assignment; also maintains the min/max/sum summary. *)
val set : t -> float -> unit

(** Timer/histogram observation (seconds, or any unit the caller
    chooses). *)
val observe : t -> float -> unit

val clear : t -> unit
val snapshot : t -> snapshot

(** Headline value: counters report their total, gauges their last
    value, timers their sum. *)
val value : snapshot -> float

val mean : snapshot -> float
val snapshot_to_json : snapshot -> Hft_util.Json.t
