(** One named instrument: monotonic counter, gauge, histogram-style
    timer, or raw-valued histogram.

    Timers and histograms keep a count/sum/min/max streaming summary
    {e plus} a log-bucketed distribution (40 power-of-two buckets from
    a 100 ns floor), so snapshots report p50/p95 as well as the mean —
    heavy-tailed series (PODEM time per fault, fanout-cone sizes) hide
    their tail behind a mean.  Updates stay O(1) and allocation-free. *)

type kind = Counter | Gauge | Timer | Histogram

type t

(** Immutable copy of a metric's state, for reporting. *)
type snapshot = {
  s_name : string;
  s_kind : kind;
  s_count : int;  (** counter value, or number of observations *)
  s_sum : float;
  s_min : float;  (** [infinity] when no observation yet *)
  s_max : float;  (** [neg_infinity] when no observation yet *)
  s_last : float;
      (** gauges/timers: the most recent observation; counters: the
          running total *)
  s_buckets : int array;  (** log-bucket counts (timers/histograms) *)
}

val create : kind:kind -> string -> t
val kind_to_string : kind -> string

(** Counter increment (default 1).  Maintains [last] as the cumulative
    total. *)
val incr : ?by:int -> t -> unit

(** Gauge assignment; also maintains the min/max/sum summary. *)
val set : t -> float -> unit

(** Timer/histogram observation (seconds, or any unit the caller
    chooses); also bins the value for {!percentile}. *)
val observe : t -> float -> unit

val clear : t -> unit
val snapshot : t -> snapshot

(** Headline value: counters report their total, gauges their last
    value, timers/histograms their sum. *)
val value : snapshot -> float

val mean : snapshot -> float

(** [percentile s q] — bucketed quantile estimate for an {!observe}
    stream ([q] in [0,1]), clamped to the observed min/max, exact for
    all-equal streams and otherwise within one power-of-two bucket.
    0 when nothing was observed. *)
val percentile : snapshot -> float -> float

(** Number of log buckets in every histogram (array length of
    [s_buckets]). *)
val n_buckets : int

(** Upper bound of bucket [i] (the floor value for bucket 0). *)
val bucket_upper : int -> float

val snapshot_to_json : snapshot -> Hft_util.Json.t
