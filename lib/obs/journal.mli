(** Structured event journal: a bounded ring of typed engine events.

    Recording is a no-op while [!Config.enabled] is false; when enabled,
    each {!record} stamps the event with {!Clock.now} and a global
    sequence number.  The ring holds the most recent {!capacity} events
    — older ones are overwritten and counted by {!dropped} — and exports
    as JSONL (one object per line) through {!Hft_util.Json}. *)

type event =
  | Phase_begin of { name : string }
      (** A span opened (emitted by {!Span.with_}). *)
  | Phase_end of { name : string; elapsed : float }
      (** A span closed; [elapsed] in seconds. *)
  | Collapse of { faults : int; classes : int }
      (** Fault-collapse summary: universe size and class count. *)
  | Atpg_target of { cls : int; rep : string; frames : int }
      (** PODEM is about to target ledger class [cls] at [frames]. *)
  | Podem_result of { cls : int; outcome : string; frames : int;
                      backtracks : int }
      (** One PODEM attempt finished ([outcome]: test/untestable/aborted). *)
  | Static_untestable of { cls : int; frames : int }
      (** The static analysis proved class [cls] untestable — no search
          ran for it at [frames] time frames. *)
  | Backtrack of { backtracks : int; decisions : int; implications : int }
      (** Per-PODEM-call effort summary (emitted when backtracks > 0). *)
  | Test_generated of { test : int; frames : int }
      (** A test entered the ledger's test table under id [test]. *)
  | Fault_dropped of { cls : int; test : int }
      (** Ledger class [cls] detected by fault-simulating test [test]. *)
  | Class_resolved of { cls : int; outcome : string; faults : int }
      (** Ledger class [cls] reached a final {!Hft_obs.Ledger.resolution}
          ([outcome] is its {!Hft_obs.Ledger.resolution_key}; [faults]
          counts the class members).  Emitted by [Ledger.resolve], so an
          exported journal replays the coverage waterfall offline; a
          class resolved twice (checkpoint resume rewrites) appears
          twice and the last event wins. *)
  | Fsim_run of { faults : int; detected : int; patterns : int; events : int }
      (** One fault-simulation call's totals. *)
  | Retry of { site : string; attempt : int; budget : int }
      (** The supervisor's retry ladder re-ran a failed engine call with
          an escalated [budget]. *)
  | Degraded of { site : string; action : string }
      (** The ladder was exhausted and the caller fell back ([action]:
          salvage / drop-pass-skipped / uncollapsed / ...). *)
  | Checkpoint of { classes : int; tests : int }
      (** A campaign checkpoint record was appended; running totals. *)
  | Shard_stats of { jobs : int; waves : int; tasks : int; steals : int;
                     spec_hits : int; spec_misses : int; inline : int;
                     utilization : float }
      (** Scheduler summary of one parallel campaign ({!Hft_par.Stats}):
          pool size, waves run, tasks dispatched, steals, speculation
          hits / misses / inline recomputes, and Σbusy / (jobs × wall).
          Recorded once per campaign by the flow — its content varies
          with the jobs count, so it is {e not} part of the engines'
          bit-identity surface. *)
  | Note of { key : string; value : string }  (** Free-form breadcrumb. *)

type entry = { e_seq : int; e_time : float; e_domain : int; e_event : event }
(** [e_domain] is the {!Domain_id} of the domain that performed the
    ring store — 0 for everything the orchestrator records, including
    worker writes deferred onto capture tapes and replayed at commit
    time (so committed tapes stay bit-identical across jobs counts). *)

val record : event -> unit

(** Synchronous tap called after every recorded entry (only while
    enabled).  Consumers ({!Hft_obs.Progress}) install themselves here;
    the default is a no-op.  Replace, don't chain — there is one live
    consumer at a time and {!Hft_obs.Progress.stop} restores the
    no-op. *)
val on_record : (entry -> unit) ref

(** Entries still in the ring, oldest first. *)
val entries : unit -> entry list

(** Total events recorded since the last [reset] (including
    overwritten ones). *)
val recorded : unit -> int

(** Events overwritten because the ring was full. *)
val dropped : unit -> int

val capacity : unit -> int

(** Replace the ring with an empty one of size [n] (default 4096).
    Raises [Invalid_argument] when [n < 1]. *)
val set_capacity : int -> unit

val reset : unit -> unit

(** [isolated f] runs [f] against a fresh ring of the current capacity
    with the {!on_record} tap suspended, restoring both afterwards
    (even on exceptions). *)
val isolated : (unit -> 'a) -> 'a

(** The snake_case tag exported as the ["type"] field. *)
val event_type : event -> string

val entry_to_json : entry -> Hft_util.Json.t

(** One JSON object per line, oldest first; [""] when empty. *)
val to_jsonl : unit -> string
