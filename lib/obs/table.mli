(** One shared table emitter, so every experiment and report prints
    numbers through the same code path in both human and machine
    modes. *)

type mode =
  | Text   (** {!Hft_util.Pretty} fixed-width table *)
  | Jsonl  (** one JSON object per row, keys from the header *)

val mode : mode ref

(** Cell conversion used in [Jsonl] mode: ints and floats are promoted
    to JSON numbers, ["97.3%"] becomes [0.973], anything else stays a
    string. *)
val cell_to_json : string -> Hft_util.Json.t

val row_to_json :
  ?title:string -> header:string list -> string list -> Hft_util.Json.t

(** Print [rows] under [header] in the current {!mode}.  Rows must have
    the header's width (enforced by {!Hft_util.Pretty} / [List.map2]). *)
val emit : ?title:string -> header:string list -> string list list -> unit
