(* Logical domain id of the calling domain, for tagging telemetry.

   0 is the orchestrator (the thread that runs commits and sequential
   campaigns); worker domains are tagged 1..jobs-1 by the pool when
   they start.  Domain-local, so a tag set on one domain never leaks
   into another's records, and a fresh domain defaults to 0 — exactly
   right for code that never touches the pool. *)

let key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let get () = Domain.DLS.get key
let set d = Domain.DLS.set key d
