type t = {
  sp_name : string;
  mutable sp_attrs : (string * string) list; (* reverse insertion order *)
  sp_start : float;
  sp_domain : int;
  mutable sp_elapsed : float;
  mutable sp_children : t list; (* reverse order *)
}

let name t = t.sp_name
let elapsed t = t.sp_elapsed
let start t = t.sp_start
let domain t = t.sp_domain

(* [sp_attrs] is most-recent-first, so keeping each key's first
   occurrence makes repeated [add_attr] last-write-win; the surviving
   entries come out in final-write order. *)
let attrs t =
  let seen = Hashtbl.create 8 in
  List.rev
    (List.filter
       (fun (k, _) ->
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.add seen k ();
           true
         end)
       t.sp_attrs)

let children t = List.rev t.sp_children

(* Current trace: finished roots plus the stack of open spans.  One
   process-wide trace is enough for a batch tool; the CLI resets it
   around each subcommand. *)
let finished_roots : t list ref = ref []
let stack : t list ref = ref []

(* Flat per-domain timeline slices, recorded alongside the span tree.
   Worker domains cannot open spans (their telemetry is captured onto
   tapes and replayed by the orchestrator, which would collapse every
   timeline into domain 0), so the pool measures each speculative task
   on the worker and the orchestrator flushes the slices here after the
   wave — single-writer, no lock.  [tk_flow_out] starts a flow arrow at
   the slice's end (speculation handed to the commit window);
   [tk_flow_in] lists the flows that terminate at the slice's start. *)
type track_event = {
  tk_domain : int;
  tk_name : string;
  tk_start : float;
  tk_dur : float;
  tk_args : (string * string) list;
  tk_flow_out : int option;
  tk_flow_in : int list;
}

let track : track_event list ref = ref [] (* reverse order *)

let add_track ?flow_out ?(flow_in = []) ?(args = []) ~domain:tk_domain
    ~name:tk_name ~start:tk_start ~dur:tk_dur () =
  if !Config.enabled then
    track :=
      { tk_domain; tk_name; tk_start; tk_dur; tk_args = args;
        tk_flow_out = flow_out; tk_flow_in = flow_in }
      :: !track

let tracks () = List.rev !track

let reset () =
  finished_roots := [];
  stack := [];
  track := []

(* Run [f] against a scratch trace (empty roots/stack/track), restoring
   the live one afterwards.  Spans opened inside never attach to outer
   spans and never appear in the exported trace. *)
let isolated f =
  let saved = (!finished_roots, !stack, !track) in
  finished_roots := [];
  stack := [];
  track := [];
  Fun.protect
    ~finally:(fun () ->
      let r, s, t = saved in
      finished_roots := r;
      stack := s;
      track := t)
    f

let roots () = List.rev !finished_roots

let add_attr k v =
  if !Config.enabled then
    match !stack with
    | [] -> ()
    | sp :: _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs

let add_attr_int k v = add_attr k (string_of_int v)

let with_ ?(attrs = []) name f =
  if not !Config.enabled then f ()
  else begin
    let sp =
      { sp_name = name; sp_attrs = List.rev attrs; sp_start = Clock.now ();
        sp_domain = Domain_id.get (); sp_elapsed = 0.0; sp_children = [] }
    in
    (* Allocation profile of the phase, when asked for: quick_stat is a
       handful of loads (no heap walk; [Gc.minor_words] separately
       because quick_stat's minor figure excludes the live minor heap),
       and the deltas land as ordinary attributes so every exporter
       (render, Chrome trace, progress stream) carries them for free. *)
    let gc0 =
      if !Config.gc_stats then Some (Gc.quick_stat (), Gc.minor_words ())
      else None
    in
    stack := sp :: !stack;
    Journal.record (Journal.Phase_begin { name });
    let finish () =
      sp.sp_elapsed <- Clock.now () -. sp.sp_start;
      (match gc0 with
       | None -> ()
       | Some (g0, m0) ->
         let g1 = Gc.quick_stat () in
         let words f = Printf.sprintf "%.0f" f in
         sp.sp_attrs <-
           ("gc_compact",
            string_of_int (g1.Gc.compactions - g0.Gc.compactions))
           :: ("gc_major_w", words (g1.Gc.major_words -. g0.Gc.major_words))
           :: ("gc_minor_w", words (Gc.minor_words () -. m0))
           :: sp.sp_attrs);
      Journal.record (Journal.Phase_end { name; elapsed = sp.sp_elapsed });
      (match !stack with
       | top :: rest when top == sp -> stack := rest
       | _ ->
         (* A callee escaped with spans still open (exception paths
            unwound by Fun.protect keep this balanced; this is pure
            defence).  Drop down to this span. *)
         let rec pop = function
           | top :: rest when top == sp -> rest
           | _ :: rest -> pop rest
           | [] -> []
         in
         stack := pop !stack);
      match !stack with
      | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
      | [] -> finished_roots := sp :: !finished_roots
    in
    Fun.protect ~finally:finish f
  end

let rec count t = 1 + List.fold_left (fun n c -> n + count c) 0 (children t)

let render_one t =
  let buf = Buffer.create 256 in
  let rec go depth t =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf t.sp_name;
    Buffer.add_string buf (Printf.sprintf "  %.3f ms" (1e3 *. t.sp_elapsed));
    (match attrs t with
     | [] -> ()
     | kvs ->
       Buffer.add_string buf "  {";
       List.iteri
         (fun i (k, v) ->
           if i > 0 then Buffer.add_string buf ", ";
           Buffer.add_string buf k;
           Buffer.add_char buf '=';
           Buffer.add_string buf v)
         kvs;
       Buffer.add_char buf '}');
    Buffer.add_char buf '\n';
    List.iter (go (depth + 1)) (children t)
  in
  go 0 t;
  Buffer.contents buf

let render () = String.concat "" (List.map render_one (roots ()))

let rec to_json t =
  Hft_util.Json.Obj
    [ ("name", Hft_util.Json.String t.sp_name);
      ("elapsed_ms", Hft_util.Json.Float (1e3 *. t.sp_elapsed));
      ("attrs",
       Hft_util.Json.Obj
         (List.map (fun (k, v) -> (k, Hft_util.Json.String v)) (attrs t)));
      ("children", Hft_util.Json.List (List.map to_json (children t))) ]

let trace_to_json () = Hft_util.Json.List (List.map to_json (roots ()))
