type tape = (unit -> unit) list
(* Stored in emission order (reversed once at capture end). *)

type mode = Off | Capturing of (unit -> unit) list ref | Suppressing

let key = Domain.DLS.new_key (fun () -> Off)

let empty : tape = []
let length = List.length

let active () =
  match Domain.DLS.get key with Off -> false | Capturing _ | Suppressing -> true

let defer th =
  match Domain.DLS.get key with
  | Off -> false
  | Capturing buf ->
    buf := th :: !buf;
    true
  | Suppressing -> true

let with_mode m f =
  let saved = Domain.DLS.get key in
  Domain.DLS.set key m;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) f

let record f =
  let buf = ref [] in
  let x = with_mode (Capturing buf) f in
  (x, List.rev !buf)

let suppress f = with_mode Suppressing f

let replay t = List.iter (fun th -> th ()) t
