(* Live campaign telemetry: the hft-progress/1 stream.

   Everything built so far (metrics, spans, journal, ledger) is
   post-hoc — nothing is visible until the campaign returns.  This
   module streams the campaign *while it runs*: typed JSONL events
   (campaign started, phase begin/end, cadenced coverage snapshots, a
   final snapshot) written to a sink the caller picks (file, fd or
   stderr), with strictly monotone sequence numbers so a tail can
   detect gaps and truncation.

   The subsystem is deliberately parasitic: it installs itself as the
   journal's [on_record] tap and reads the ledger, so the engines are
   untouched — when the streamer is not started (or observability is
   off) every entry point is one ref dereference, and the engines'
   effort counters are bit-identical either way because the streamer
   only ever *reads* engine state.

   Bounded and non-throwing by construction: emission is cadenced (at
   most one snapshot per [every_classes] resolutions and per
   [min_interval_s] seconds), per-event cost is one JSON serialisation
   plus a line write, and a failing sink (full disk, closed pipe)
   flips the stream into a sink-dead state instead of raising into the
   engine.

   Snapshot contract: the ["waterfall"] field is exactly
   [Ledger.waterfall_json ()], so the final snapshot of a campaign
   bit-matches the waterfall `hft report` prints for the same run.

   The ETA model: resolution velocity.  [resolved / elapsed] classes
   per second since campaign start, so [eta_s = remaining / rate] —
   no per-class cost model, just the ledger's observed throughput
   (null until the first resolution). *)

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)

type sink = {
  sk_write : string -> unit;
  sk_flush : unit -> unit;
  sk_close : unit -> unit;
}

let sink_of_channel ?(close = false) oc =
  {
    sk_write = (fun s -> output_string oc s);
    sk_flush = (fun () -> flush oc);
    sk_close = (fun () -> if close then close_out oc else flush oc);
  }

let sink_of_buffer b =
  {
    sk_write = Buffer.add_string b;
    sk_flush = (fun () -> ());
    sk_close = (fun () -> ());
  }

(* "stderr", "fd:N" (via /dev/fd, so no unsafe descriptor forging) or a
   file path. *)
let sink_of_spec spec =
  if spec = "stderr" then Ok (sink_of_channel stderr)
  else if String.length spec > 3 && String.sub spec 0 3 = "fd:" then begin
    match int_of_string_opt (String.sub spec 3 (String.length spec - 3)) with
    | None -> Error (Printf.sprintf "bad fd spec %S" spec)
    | Some fd ->
      (try
         Ok
           (sink_of_channel ~close:true
              (open_out_gen [ Open_wronly; Open_append ] 0o644
                 (Printf.sprintf "/dev/fd/%d" fd)))
       with Sys_error e -> Error (Printf.sprintf "cannot open fd %d: %s" fd e))
  end
  else
    try Ok (sink_of_channel ~close:true (open_out spec))
    with Sys_error e -> Error (Printf.sprintf "cannot open %S: %s" spec e)

(* ------------------------------------------------------------------ *)
(* Configuration and stream state                                     *)

type config = {
  every_classes : int;  (* snapshot at most once per N resolutions *)
  min_interval_s : float;  (* ... and at most once per this many seconds *)
  top_k : int;  (* expensive-class rows carried in snapshots *)
}

let default_config = { every_classes = 8; min_interval_s = 0.0; top_k = 5 }

type state = {
  st_sink : sink;
  st_cfg : config;
  st_metrics_out : string option;
  mutable st_seq : int;
  mutable st_emitted : int;
  mutable st_dead : bool;  (* sink failed; stop writing, never raise *)
  mutable st_phases : string list;  (* open-phase stack, innermost first *)
  (* per-campaign: *)
  mutable st_campaign : string option;
  mutable st_started : float;
  mutable st_since_snap : int;  (* resolutions since the last snapshot *)
  mutable st_last_snap : float;
  mutable st_snapshots : int;  (* intermediate snapshots this campaign *)
  mutable st_parallel : Hft_util.Json.t option;
      (* scheduler-telemetry summary, published by the flow just before
         campaign_end so the final snapshot carries it *)
}

let state : state option ref = ref None

let active () = !state <> None

let emitted () = match !state with Some st -> st.st_emitted | None -> 0

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)

let schema = "hft-progress/1"

let emit st fields =
  if not st.st_dead then begin
    let seq = st.st_seq in
    st.st_seq <- seq + 1;
    let doc =
      Hft_util.Json.Obj
        (("schema", Hft_util.Json.String schema)
         :: ("seq", Hft_util.Json.Int seq)
         :: ("time", Hft_util.Json.Float (Clock.now ()))
         :: fields)
    in
    try
      st.st_sink.sk_write (Hft_util.Json.to_string doc);
      st.st_sink.sk_write "\n";
      st.st_sink.sk_flush ();
      st.st_emitted <- st.st_emitted + 1
    with Sys_error _ -> st.st_dead <- true
  end

let rewrite_metrics st =
  match st.st_metrics_out with
  | None -> ()
  | Some path ->
    (* Atomic-ish rewrite: a scraper never reads a torn exposition. *)
    (try
       let tmp = path ^ ".tmp" in
       let oc = open_out tmp in
       output_string oc (Export.openmetrics ());
       close_out oc;
       Sys.rename tmp path
     with Sys_error _ -> ())

let gc_json () =
  let g = Gc.quick_stat () in
  (* [Gc.minor_words] separately: quick_stat's figure excludes the
     live minor heap. *)
  Hft_util.Json.Obj
    [ ("minor_words", Hft_util.Json.Float (Gc.minor_words ()));
      ("major_words", Hft_util.Json.Float g.Gc.major_words);
      ("compactions", Hft_util.Json.Int g.Gc.compactions) ]

(* Classes with a terminal outcome: everything but never_targeted. *)
let resolved_classes () =
  List.fold_left
    (fun acc (k, (c, _)) -> if k = "never_targeted" then acc else acc + c)
    0 (Ledger.waterfall ())

let snapshot_fields ~final st =
  let open Hft_util.Json in
  let now = Clock.now () in
  let elapsed = now -. st.st_started in
  let classes = Ledger.n_classes () in
  let resolved = resolved_classes () in
  let rate = if elapsed > 0.0 then float_of_int resolved /. elapsed else 0.0 in
  let remaining = classes - resolved in
  let eta =
    if rate > 0.0 && remaining > 0 then Float (float_of_int remaining /. rate)
    else Null
  in
  [ ("type", String "snapshot");
    ("final", Bool final);
    ("campaign",
     match st.st_campaign with Some c -> String c | None -> Null);
    ("phase",
     match st.st_phases with p :: _ -> String p | [] -> Null);
    ("elapsed_s", Float elapsed);
    ("classes", Int classes);
    ("resolved", Int resolved);
    ("tests", Int (Ledger.n_tests ()));
    ("rate_cps", Float rate);
    ("eta_s", eta);
    ("waterfall", Ledger.waterfall_json ());
    ("gc", gc_json ());
    ("parallel",
     match st.st_parallel with Some j -> j | None -> Null);
    ("top",
     List
       (List.map
          (fun (r : Ledger.row) ->
            Obj
              [ ("rep", String r.Ledger.lr_rep);
                ("outcome", String (Ledger.resolution_key r.Ledger.lr_resolution));
                ("cost", Int (Ledger.cost r)) ])
          (Ledger.top_expensive ~k:st.st_cfg.top_k))) ]

let emit_snapshot ~final st =
  emit st (snapshot_fields ~final st);
  st.st_since_snap <- 0;
  st.st_last_snap <- Clock.now ();
  if not final then st.st_snapshots <- st.st_snapshots + 1;
  rewrite_metrics st

(* ------------------------------------------------------------------ *)
(* Journal tap                                                        *)

let on_journal (e : Journal.entry) =
  match !state with
  | None -> ()
  | Some st ->
    (match e.Journal.e_event with
     | Journal.Phase_begin { name } ->
       st.st_phases <- name :: st.st_phases;
       emit st
         [ ("type", Hft_util.Json.String "phase_begin");
           ("name", Hft_util.Json.String name) ]
     | Journal.Phase_end { name; elapsed } ->
       (match st.st_phases with
        | top :: rest when top = name -> st.st_phases <- rest
        | _ ->
          (* Defensive: drop through to the matching frame, as Span
             does when a callee escapes. *)
          let rec pop = function
            | top :: rest when top = name -> rest
            | _ :: rest -> pop rest
            | [] -> []
          in
          st.st_phases <- pop st.st_phases);
       emit st
         [ ("type", Hft_util.Json.String "phase_end");
           ("name", Hft_util.Json.String name);
           ("elapsed_s", Hft_util.Json.Float elapsed) ]
     | Journal.Class_resolved _ when st.st_campaign <> None ->
       st.st_since_snap <- st.st_since_snap + 1;
       if
         st.st_since_snap >= st.st_cfg.every_classes
         && Clock.now () -. st.st_last_snap >= st.st_cfg.min_interval_s
       then emit_snapshot ~final:false st
     | _ -> ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)

let start ?(config = default_config) ?metrics_out sink =
  (match !state with
   | Some st -> st.st_sink.sk_close ()
   | None -> ());
  state :=
    Some
      {
        st_sink = sink;
        st_cfg =
          { config with every_classes = max 1 config.every_classes };
        st_metrics_out = metrics_out;
        st_seq = 0;
        st_emitted = 0;
        st_dead = false;
        st_phases = [];
        st_campaign = None;
        st_started = Clock.now ();
        st_since_snap = 0;
        st_last_snap = neg_infinity;
        st_snapshots = 0;
        st_parallel = None;
      };
  Journal.on_record := on_journal

let stop () =
  match !state with
  | None -> ()
  | Some st ->
    Journal.on_record := (fun _ -> ());
    (* Explicit terminator: spans may close (phase_end) after the last
       campaign's final snapshot, so a tail cannot use "final snapshot
       at EOF" alone to decide the stream is over. *)
    emit st
      [ ("type", Hft_util.Json.String "stream_end");
        ("events", Hft_util.Json.Int st.st_emitted) ];
    (try st.st_sink.sk_close () with Sys_error _ -> ());
    state := None

let campaign_begin ~label ~faults =
  match !state with
  | None -> ()
  | Some st ->
    st.st_campaign <- Some label;
    st.st_started <- Clock.now ();
    st.st_since_snap <- 0;
    st.st_last_snap <- neg_infinity;
    st.st_snapshots <- 0;
    st.st_parallel <- None;
    emit st
      [ ("type", Hft_util.Json.String "campaign_started");
        ("campaign", Hft_util.Json.String label);
        ("faults", Hft_util.Json.Int faults) ]

let set_parallel j =
  match !state with
  | None -> ()
  | Some st -> st.st_parallel <- j

let campaign_end () =
  match !state with
  | None -> ()
  | Some st ->
    if st.st_campaign <> None then begin
      emit_snapshot ~final:true st;
      st.st_campaign <- None
    end

(* ------------------------------------------------------------------ *)
(* Watch: fold a stream into a view and render a dashboard            *)

type view = {
  v_events : int;  (* parsed events *)
  v_bad : int;  (* lines that did not parse as events *)
  v_campaign : string option;
  v_phase : string option;
  v_snapshot : Hft_util.Json.t option;  (* most recent snapshot *)
  v_campaigns_done : int;  (* final snapshots seen *)
  v_finished : bool;  (* stream_end seen, or final snapshot at the tail *)
  v_last_seq : int;
  v_seq_ok : bool;  (* sequence numbers strictly monotone so far *)
  v_unknown_events : int;  (* event kinds this watch does not know *)
  v_unknown_fields : int;  (* snapshot fields this watch does not know *)
}

let empty_view =
  {
    v_events = 0;
    v_bad = 0;
    v_campaign = None;
    v_phase = None;
    v_snapshot = None;
    v_campaigns_done = 0;
    v_finished = false;
    v_last_seq = -1;
    v_seq_ok = true;
    v_unknown_events = 0;
    v_unknown_fields = 0;
  }

(* Forward-compat contract: a watch built against schema N must render a
   stream from schema N+1 instead of crashing or silently mis-reading
   it.  Unknown event kinds and unknown snapshot fields are therefore
   skipped but *counted*, and the dashboard prints one warning line so
   the operator knows data is being ignored. *)
let known_snapshot_fields =
  [ "schema"; "seq"; "time"; "type"; "final"; "campaign"; "phase";
    "elapsed_s"; "classes"; "resolved"; "tests"; "rate_cps"; "eta_s";
    "waterfall"; "gc"; "top"; "parallel" ]

let unknown_snapshot_fields doc =
  match doc with
  | Hft_util.Json.Obj fields ->
    List.length
      (List.filter
         (fun (k, _) -> not (List.mem k known_snapshot_fields))
         fields)
  | _ -> 0

let member_str k j =
  match Hft_util.Json.member k j with
  | Some (Hft_util.Json.String s) -> Some s
  | _ -> None

let member_int k j =
  match Hft_util.Json.member k j with
  | Some (Hft_util.Json.Int i) -> Some i
  | _ -> None

let member_float k j =
  match Hft_util.Json.member k j with
  | Some (Hft_util.Json.Float f) -> Some f
  | Some (Hft_util.Json.Int i) -> Some (float_of_int i)
  | _ -> None

let view_line v line =
  if String.trim line = "" then v
  else
    match Hft_util.Json.parse line with
    | Error _ -> { v with v_bad = v.v_bad + 1 }
    | Ok doc ->
      let seq = Option.value ~default:(-1) (member_int "seq" doc) in
      let v =
        {
          v with
          v_events = v.v_events + 1;
          v_seq_ok = v.v_seq_ok && seq > v.v_last_seq;
          v_last_seq = max seq v.v_last_seq;
          v_finished = false;
        }
      in
      (match member_str "type" doc with
       | Some "campaign_started" ->
         { v with v_campaign = member_str "campaign" doc; v_snapshot = None }
       | Some "phase_begin" -> { v with v_phase = member_str "name" doc }
       | Some "phase_end" -> { v with v_phase = None }
       | Some "snapshot" ->
         let final =
           Hft_util.Json.member "final" doc
           = Some (Hft_util.Json.Bool true)
         in
         {
           v with
           v_snapshot = Some doc;
           v_phase =
             (match member_str "phase" doc with
              | Some p -> Some p
              | None -> v.v_phase);
           v_campaigns_done =
             (v.v_campaigns_done + (if final then 1 else 0));
           v_finished = final;
           v_unknown_fields =
             v.v_unknown_fields + unknown_snapshot_fields doc;
         }
       | Some "stream_end" -> { v with v_finished = true }
       | Some _ ->
         (* A kind this watch predates: skip it, count it, keep going. *)
         { v with v_unknown_events = v.v_unknown_events + 1 }
       | None -> v)

let view_of_lines lines = List.fold_left view_line empty_view lines

(* Waterfall cell: [member.outcome.{classes,faults}]. *)
let wf_cell wf key =
  match Hft_util.Json.member key wf with
  | Some cell ->
    ( Option.value ~default:0 (member_int "classes" cell),
      Option.value ~default:0 (member_int "faults" cell) )
  | None -> (0, 0)

let bar ~width frac =
  let frac = Float.max 0.0 (Float.min 1.0 frac) in
  let full = int_of_float (frac *. float_of_int width) in
  String.make full '#' ^ String.make (width - full) '-'

let fmt_rate r =
  if r >= 100.0 then Printf.sprintf "%.0f" r else Printf.sprintf "%.1f" r

let fmt_s s = Printf.sprintf "%.2fs" s

(* One-line digest of a snapshot, for non-TTY tails. *)
let snapshot_brief doc =
  let wf =
    Option.value ~default:(Hft_util.Json.Obj [])
      (Hft_util.Json.member "waterfall" doc)
  in
  let faults = Option.value ~default:0 (member_int "faults" wf) in
  let detected =
    List.fold_left
      (fun acc k -> acc + snd (wf_cell wf k))
      0
      [ "drop_detected"; "podem_detected"; "salvaged" ]
  in
  let pct =
    if faults > 0 then 100.0 *. float_of_int detected /. float_of_int faults
    else 0.0
  in
  Printf.sprintf "snapshot seq=%d %s%s resolved %d/%d coverage %.1f%% eta %s"
    (Option.value ~default:(-1) (member_int "seq" doc))
    (match member_str "campaign" doc with
     | Some c -> c ^ " "
     | None -> "")
    (if Hft_util.Json.member "final" doc = Some (Hft_util.Json.Bool true)
     then "[final]"
     else "")
    (Option.value ~default:0 (member_int "resolved" doc))
    (Option.value ~default:0 (member_int "classes" doc))
    pct
    (match member_float "eta_s" doc with
     | Some e -> fmt_s e
     | None -> "-")

let render_view v =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  line "hft watch — %d events%s · campaigns finished: %d%s"
    v.v_events
    (if v.v_seq_ok then "" else " · SEQ GAP")
    v.v_campaigns_done
    (if v.v_finished then " · stream complete" else "");
  if v.v_unknown_events > 0 || v.v_unknown_fields > 0 then
    line
      "warning   stream is newer than this watch: skipped %d unknown \
       event(s), %d unknown snapshot field(s)"
      v.v_unknown_events v.v_unknown_fields;
  (match v.v_campaign with
   | Some c ->
     line "campaign  %s%s" c
       (match v.v_phase with Some p -> " · phase " ^ p | None -> "")
   | None -> ());
  (match v.v_snapshot with
   | None -> line "(no snapshot yet)"
   | Some doc ->
     let wf =
       Option.value ~default:(Hft_util.Json.Obj [])
         (Hft_util.Json.member "waterfall" doc)
     in
     let faults = Option.value ~default:0 (member_int "faults" wf) in
     let detected =
       List.fold_left
         (fun acc k -> acc + snd (wf_cell wf k))
         0
         [ "drop_detected"; "podem_detected"; "salvaged" ]
     in
     let frac =
       if faults > 0 then float_of_int detected /. float_of_int faults
       else 0.0
     in
     line "coverage  [%s] %.1f%% (%d/%d faults detected)" (bar ~width:30 frac)
       (100.0 *. frac) detected faults;
     let cls k = fst (wf_cell wf k) in
     line
       "classes   %d/%d resolved · drop %d · podem %d · salvaged %d · \
        aborted %d · untestable %d · pending %d"
       (Option.value ~default:0 (member_int "resolved" doc))
       (Option.value ~default:0 (member_int "classes" doc))
       (cls "drop_detected") (cls "podem_detected") (cls "salvaged")
       (cls "aborted") (cls "untestable") (cls "never_targeted");
     line "tests %d · rate %s classes/s · eta %s · elapsed %s"
       (Option.value ~default:0 (member_int "tests" doc))
       (fmt_rate (Option.value ~default:0.0 (member_float "rate_cps" doc)))
       (match member_float "eta_s" doc with
        | Some e -> fmt_s e
        | None -> "-")
       (fmt_s (Option.value ~default:0.0 (member_float "elapsed_s" doc)));
     (match Hft_util.Json.member "gc" doc with
      | Some gc ->
        line "gc        minor %.3g w · major %.3g w · compactions %d"
          (Option.value ~default:0.0 (member_float "minor_words" gc))
          (Option.value ~default:0.0 (member_float "major_words" gc))
          (Option.value ~default:0 (member_int "compactions" gc))
      | None -> ());
     (match Hft_util.Json.member "top" doc with
      | Some (Hft_util.Json.List (_ :: _ as rows)) ->
        line "top       %s"
          (String.concat " | "
             (List.map
                (fun r ->
                  Printf.sprintf "%s (%s, cost %d)"
                    (Option.value ~default:"?" (member_str "rep" r))
                    (Option.value ~default:"?" (member_str "outcome" r))
                    (Option.value ~default:0 (member_int "cost" r)))
                rows))
      | _ -> ());
     (match Hft_util.Json.member "parallel" doc with
      | Some (Hft_util.Json.Obj _ as par) ->
        line
          "parallel  jobs %d · tasks %d · steals %d · spec hit/miss \
           %d/%d · utilization %.0f%%"
          (Option.value ~default:1 (member_int "jobs" par))
          (Option.value ~default:0 (member_int "tasks" par))
          (Option.value ~default:0 (member_int "steals" par))
          (Option.value ~default:0 (member_int "spec_hits" par))
          (Option.value ~default:0 (member_int "spec_misses" par))
          (100.0
          *. Option.value ~default:0.0 (member_float "utilization" par));
        (match Hft_util.Json.member "workers" par with
         | Some (Hft_util.Json.List workers) ->
           List.iter
             (fun w ->
               let util =
                 Option.value ~default:0.0 (member_float "utilization" w)
               in
               line "  w%-2d     [%s] %3.0f%% · %d classes · %d steals"
                 (Option.value ~default:0 (member_int "domain" w))
                 (bar ~width:20 util) (100.0 *. util)
                 (Option.value ~default:0 (member_int "classes" w))
                 (Option.value ~default:0 (member_int "steals" w)))
             workers
         | _ -> ())
      | _ -> ()));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Offline waterfall rebuild (hft report --journal-in)                *)

type offline = {
  off_source : string;  (* "journal" or "ledger" *)
  off_classes : int;
  off_faults : int;
  off_waterfall : (string * (int * int)) list;  (* outcome_keys order *)
  off_tests : int;
  off_expensive : (string * string * int) list;  (* rep, outcome, cost *)
}

(* A tape line is one of three shapes: a ledger class row (has "class"
   + "resolution"), a ledger test row (has "test" but no "type"), or a
   journal event (has "type").  A journal tape rebuilds the waterfall
   from Class_resolved events (last write per class wins, mirroring
   Ledger.resolve) with totals from the Collapse event; a ledger tape
   has the rows verbatim and also yields the expensive-class table. *)
let offline_of_lines lines =
  let docs =
    List.filter_map
      (fun l ->
        if String.trim l = "" then None
        else
          match Hft_util.Json.parse l with
          | Ok d -> Some d
          | Error _ -> None)
      lines
  in
  if docs = [] then Error "no parseable JSONL lines"
  else
    let is_ledger_row d =
      Hft_util.Json.member "class" d <> None
      && Hft_util.Json.member "resolution" d <> None
    in
    let tally_of assoc =
      (* outcome_keys order first, then any unknown keys, so the table
         stays stable across schema growth. *)
      let base =
        List.map
          (fun k ->
            (k, Option.value ~default:(0, 0) (List.assoc_opt k assoc)))
          Ledger.outcome_keys
      in
      let extra =
        List.filter (fun (k, _) -> not (List.mem k Ledger.outcome_keys)) assoc
      in
      base @ extra
    in
    if List.exists is_ledger_row docs then begin
      (* Ledger tape. *)
      let tally = Hashtbl.create 8 in
      let classes = ref 0 and faults = ref 0 and tests = ref 0 in
      let expensive = ref [] in
      List.iter
        (fun d ->
          if is_ledger_row d then begin
            let outcome =
              match Hft_util.Json.member "resolution" d with
              | Some r -> Option.value ~default:"?" (member_str "outcome" r)
              | None -> "?"
            in
            let members =
              match Hft_util.Json.member "members" d with
              | Some (Hft_util.Json.List l) -> List.length l
              | _ -> 0
            in
            incr classes;
            faults := !faults + members;
            let c, f =
              Option.value ~default:(0, 0) (Hashtbl.find_opt tally outcome)
            in
            Hashtbl.replace tally outcome (c + 1, f + members);
            expensive :=
              ( Option.value ~default:"?" (member_str "rep" d),
                outcome,
                Option.value ~default:0 (member_int "cost" d) )
              :: !expensive
          end
          else if
            Hft_util.Json.member "test" d <> None
            && Hft_util.Json.member "type" d = None
          then incr tests)
        docs;
      let assoc = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] in
      Ok
        {
          off_source = "ledger";
          off_classes = !classes;
          off_faults = !faults;
          off_waterfall = tally_of assoc;
          off_tests = !tests;
          off_expensive =
            List.sort
              (fun (_, _, a) (_, _, b) -> compare b a)
              (List.rev !expensive);
        }
    end
    else begin
      (* Journal tape. *)
      let resolved : (int, string * int) Hashtbl.t = Hashtbl.create 64 in
      let tests = ref 0 in
      let saw_event = ref false in
      List.iter
        (fun d ->
          match member_str "type" d with
          | Some "class_resolved" ->
            saw_event := true;
            (match member_int "class" d with
             | Some cls ->
               Hashtbl.replace resolved cls
                 ( Option.value ~default:"?" (member_str "outcome" d),
                   Option.value ~default:0 (member_int "faults" d) )
             | None -> ())
          | Some "test_generated" ->
            saw_event := true;
            incr tests
          | Some _ -> saw_event := true
          | None -> ())
        docs;
      if not !saw_event then Error "not a journal or ledger tape"
      else begin
        (* Totals come from the resolutions themselves: the Collapse
           event on the tape describes the full fault universe, not the
           sampled class space the campaign actually targeted (that
           registration is ledger-only).  A class the window never saw
           resolve is therefore absent, not never_targeted — only
           ledger tapes carry never-targeted rows. *)
        let tally = Hashtbl.create 8 in
        let res_classes = ref 0 and res_faults = ref 0 in
        Hashtbl.iter
          (fun _ (outcome, members) ->
            incr res_classes;
            res_faults := !res_faults + members;
            let c, f =
              Option.value ~default:(0, 0) (Hashtbl.find_opt tally outcome)
            in
            Hashtbl.replace tally outcome (c + 1, f + members))
          resolved;
        let assoc = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] in
        Ok
          {
            off_source = "journal";
            off_classes = !res_classes;
            off_faults = !res_faults;
            off_waterfall = tally_of assoc;
            off_tests = !tests;
            off_expensive = [];
          }
      end
    end

let offline_waterfall_json off =
  let open Hft_util.Json in
  Obj
    (("classes", Int off.off_classes)
     :: ("faults", Int off.off_faults)
     :: List.map
          (fun (k, (c, f)) ->
            (k, Obj [ ("classes", Int c); ("faults", Int f) ]))
          off.off_waterfall)
