(** Hierarchical timed spans.

    [with_ "podem" (fun () -> ...)] times the thunk and records a span;
    spans opened while another is running become its children, so a
    synthesis flow produces one tree per root call.  Each open/close
    also lands in the event {!Journal} as [Phase_begin]/[Phase_end].
    Everything is a no-op while [!Config.enabled] is false. *)

type t

val name : t -> string

(** Wall-clock duration in seconds. *)
val elapsed : t -> float

(** Wall-clock start instant ([Clock.now] at open), for absolute-time
    exporters (Chrome trace events). *)
val start : t -> float

(** {!Domain_id} of the domain that opened the span — 0 for everything
    the orchestrator runs.  The Chrome trace exporter maps this to the
    event's [tid]. *)
val domain : t -> int

(** Attributes in insertion order; when a key was written several
    times, only the last value survives (in last-write position). *)
val attrs : t -> (string * string) list

(** Children in start order. *)
val children : t -> t list

(** Nodes in the subtree rooted at [t] (including [t]). *)
val count : t -> int

(** Run the thunk inside a new span.  Exception-safe: the span is
    closed and attached even if the thunk raises. *)
val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (no-op when none or
    disabled). *)
val add_attr : string -> string -> unit

val add_attr_int : string -> int -> unit

(** Completed root spans, oldest first. *)
val roots : unit -> t list

(** Flat per-domain timeline slices recorded beside the span tree.
    Worker domains never open spans (their telemetry replays on the
    orchestrator), so the domain pool measures each speculative task on
    its worker and flushes a slice per task here after the wave; the
    Chrome trace exporter renders them on the worker's own [tid].
    [tk_flow_out]/[tk_flow_in] carry flow-arrow ids (speculation-to-
    commit handoffs). *)
type track_event = {
  tk_domain : int;
  tk_name : string;
  tk_start : float;  (** seconds, same clock as {!start} *)
  tk_dur : float;  (** seconds *)
  tk_args : (string * string) list;
  tk_flow_out : int option;  (** flow started at the slice's end *)
  tk_flow_in : int list;  (** flows terminating at the slice's start *)
}

(** Record one slice (no-op while disabled).  Orchestrator-thread only:
    the store is unlocked single-writer. *)
val add_track :
  ?flow_out:int -> ?flow_in:int list -> ?args:(string * string) list ->
  domain:int -> name:string -> start:float -> dur:float -> unit -> unit

(** Recorded slices, oldest first. *)
val tracks : unit -> track_event list

val reset : unit -> unit

(** [isolated f] runs [f] against a fresh, empty trace and restores the
    previous one afterwards (even on exceptions). *)
val isolated : (unit -> 'a) -> 'a

(** Indented pretty-tree of one span / of every root. *)
val render_one : t -> string

val render : unit -> string

val to_json : t -> Hft_util.Json.t

(** All roots as a JSON list. *)
val trace_to_json : unit -> Hft_util.Json.t
