(** Hierarchical timed spans.

    [with_ "podem" (fun () -> ...)] times the thunk and records a span;
    spans opened while another is running become its children, so a
    synthesis flow produces one tree per root call.  Each open/close
    also lands in the event {!Journal} as [Phase_begin]/[Phase_end].
    Everything is a no-op while [!Config.enabled] is false. *)

type t

val name : t -> string

(** Wall-clock duration in seconds. *)
val elapsed : t -> float

(** Wall-clock start instant ([Clock.now] at open), for absolute-time
    exporters (Chrome trace events). *)
val start : t -> float

(** Attributes in insertion order; when a key was written several
    times, only the last value survives (in last-write position). *)
val attrs : t -> (string * string) list

(** Children in start order. *)
val children : t -> t list

(** Nodes in the subtree rooted at [t] (including [t]). *)
val count : t -> int

(** Run the thunk inside a new span.  Exception-safe: the span is
    closed and attached even if the thunk raises. *)
val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (no-op when none or
    disabled). *)
val add_attr : string -> string -> unit

val add_attr_int : string -> int -> unit

(** Completed root spans, oldest first. *)
val roots : unit -> t list

val reset : unit -> unit

(** Indented pretty-tree of one span / of every root. *)
val render_one : t -> string

val render : unit -> string

val to_json : t -> Hft_util.Json.t

(** All roots as a JSON list. *)
val trace_to_json : unit -> Hft_util.Json.t
