(** [Hft_obs]: zero-dependency observability for the hft stack.

    Five pieces: a metrics {!Registry} (named counters, gauges,
    histogram timers), hierarchical {!Span} tracing, the flight
    recorder — a typed event {!Journal} (bounded ring, JSONL export)
    and a per-fault-class forensics {!Ledger} — and {!Export}/{!Table}
    rendering via {!Hft_util.Json} (including Chrome trace events).
    Everything is off by default; flip {!enabled} (or use
    {!with_enabled}) to record.  Disabled calls cost a ref dereference
    and a branch, and the engines accumulate locally and flush per
    call, so hot loops stay hot.

    The metric name catalogue ([hft.podem.*], [hft.fsim.*],
    [hft.flow.*], ...) is documented in the README's Observability
    section. *)

module Config = Config
module Clock = Clock
module Domain_id = Domain_id
module Metric = Metric
module Capture = Capture
module Registry = Registry
module Span = Span
module Journal = Journal
module Ledger = Ledger
module Export = Export
module Table = Table
module Progress = Progress

(** Alias of [Config.enabled]. *)
val enabled : bool ref

val with_enabled : bool -> (unit -> 'a) -> 'a

(** Clear the metric registry, the span trace, the event journal and
    the fault ledger.  Does {e not} stop {!Progress}: one stream spans
    a whole bench matrix across per-cell resets. *)
val reset : unit -> unit

(** [isolated f] runs [f] against a completely fresh recorder — empty
    registry, span trace, journal (tap suspended) and ledger — and
    restores the caller's state afterwards (even on exceptions).
    Inside, [f] may freely {!reset} and read back; nothing it records
    leaks out, and nothing recorded outside is visible to it.  This is
    how the fuzz campaign runs whole differential engine campaigns as
    subroutines without erasing its own live telemetry. *)
val isolated : (unit -> 'a) -> 'a
