(** [Hft_obs]: zero-dependency observability for the hft stack.

    Three pieces: a metrics {!Registry} (named counters, gauges and
    histogram-style timers), hierarchical {!Span} tracing, and
    {!Export}/{!Table} rendering via {!Hft_util.Json}.  Everything is
    off by default; flip {!enabled} (or use {!with_enabled}) to record.
    Disabled calls cost a ref dereference and a branch, and the engines
    accumulate locally and flush per call, so hot loops stay hot.

    The metric name catalogue ([hft.podem.*], [hft.fsim.*],
    [hft.flow.*], ...) is documented in the README's Observability
    section. *)

module Config = Config
module Clock = Clock
module Metric = Metric
module Registry = Registry
module Span = Span
module Export = Export
module Table = Table

(** Alias of [Config.enabled]. *)
val enabled : bool ref

val with_enabled : bool -> (unit -> 'a) -> 'a

(** Clear both the metric registry and the span trace. *)
val reset : unit -> unit
