type kind = Counter | Gauge | Timer

type t = {
  name : string;
  kind : kind;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
  mutable last : float;
}

type snapshot = {
  s_name : string;
  s_kind : kind;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_last : float;
}

let create ~kind name =
  { name; kind; count = 0; sum = 0.0; min = infinity; max = neg_infinity;
    last = 0.0 }

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Timer -> "timer"

let incr ?(by = 1) t =
  t.count <- t.count + by;
  t.sum <- t.sum +. float_of_int by;
  t.last <- float_of_int by

let set t v =
  if t.count = 0 || v < t.min then t.min <- v;
  if t.count = 0 || v > t.max then t.max <- v;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  t.last <- v

(* Timers and gauges share the streaming-summary update; the kind only
   changes how the value is rendered (seconds vs raw). *)
let observe = set

let clear t =
  t.count <- 0;
  t.sum <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity;
  t.last <- 0.0

let snapshot t =
  { s_name = t.name; s_kind = t.kind; s_count = t.count; s_sum = t.sum;
    s_min = t.min; s_max = t.max; s_last = t.last }

let value s =
  match s.s_kind with
  | Counter -> s.s_sum
  | Gauge -> s.s_last
  | Timer -> s.s_sum

let mean s =
  if s.s_count = 0 then 0.0 else s.s_sum /. float_of_int s.s_count

let snapshot_to_json s =
  let headline =
    (* Counters are integral by construction; keep them JSON ints so
       consumers need no float coercion. *)
    match s.s_kind with
    | Counter -> Hft_util.Json.Int s.s_count
    | Gauge | Timer -> Hft_util.Json.Float (value s)
  in
  let base =
    [ ("name", Hft_util.Json.String s.s_name);
      ("kind", Hft_util.Json.String (kind_to_string s.s_kind));
      ("count", Hft_util.Json.Int s.s_count);
      ("value", headline) ]
  in
  let summary =
    match s.s_kind with
    | Counter -> []
    | Gauge | Timer ->
      if s.s_count = 0 then []
      else
        [ ("sum", Hft_util.Json.Float s.s_sum);
          ("min", Hft_util.Json.Float s.s_min);
          ("max", Hft_util.Json.Float s.s_max);
          ("mean", Hft_util.Json.Float (mean s)) ]
  in
  Hft_util.Json.Obj (base @ summary)
