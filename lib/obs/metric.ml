type kind = Counter | Gauge | Timer | Histogram

(* Log-bucketed value distribution: bucket [i >= 1] covers
   (floor·2^(i-1), floor·2^i], bucket 0 everything at or below the
   floor.  40 octaves from 100 ns span sub-microsecond timers up to
   counts around 5·10^4 s / 5·10^10 units, and the update is one
   [log2] + array increment — no allocation on the observe path. *)
let n_buckets = 40
let bucket_floor = 1e-7

let bucket_index v =
  if v <= bucket_floor then 0
  else begin
    let i = 1 + int_of_float (Float.log2 (v /. bucket_floor)) in
    if i >= n_buckets then n_buckets - 1 else i
  end

let bucket_upper i = if i = 0 then bucket_floor else bucket_floor *. (2.0 ** float_of_int i)

type t = {
  name : string;
  kind : kind;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
  mutable last : float;
  buckets : int array;
}

type snapshot = {
  s_name : string;
  s_kind : kind;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_last : float;
  s_buckets : int array;
}

let create ~kind name =
  { name; kind; count = 0; sum = 0.0; min = infinity; max = neg_infinity;
    last = 0.0; buckets = Array.make n_buckets 0 }

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Timer -> "timer"
  | Histogram -> "histogram"

let incr ?(by = 1) t =
  t.count <- t.count + by;
  t.sum <- t.sum +. float_of_int by;
  (* [last] is the running total, so counter snapshots headline the
     cumulative value rather than the most recent delta. *)
  t.last <- t.sum

let set t v =
  if t.count = 0 || v < t.min then t.min <- v;
  if t.count = 0 || v > t.max then t.max <- v;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  t.last <- v

(* Timers and histograms additionally bin the observation so snapshots
   can report percentiles; gauges ([set]) keep the streaming summary
   only. *)
let observe t v =
  set t v;
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1

let clear t =
  t.count <- 0;
  t.sum <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity;
  t.last <- 0.0;
  Array.fill t.buckets 0 n_buckets 0

let snapshot t =
  { s_name = t.name; s_kind = t.kind; s_count = t.count; s_sum = t.sum;
    s_min = t.min; s_max = t.max; s_last = t.last;
    s_buckets = Array.copy t.buckets }

let value s =
  match s.s_kind with
  | Counter -> s.s_sum
  | Gauge -> s.s_last
  | Timer | Histogram -> s.s_sum

let mean s =
  if s.s_count = 0 then 0.0 else s.s_sum /. float_of_int s.s_count

(* Bucketed quantile estimate: walk the cumulative histogram to the
   bucket holding the q-th observation and report its upper bound,
   clamped to the observed [min, max] — so an all-equal stream answers
   exactly, and any answer is off by at most one octave. *)
let percentile s q =
  let observed = Array.fold_left ( + ) 0 s.s_buckets in
  if observed = 0 then 0.0
  else begin
    let target =
      let t = int_of_float (Float.ceil (q *. float_of_int observed)) in
      if t < 1 then 1 else if t > observed then observed else t
    in
    let rec go i cum =
      if i >= n_buckets then s.s_max
      else begin
        let cum = cum + s.s_buckets.(i) in
        if cum >= target then
          Float.min s.s_max (Float.max s.s_min (bucket_upper i))
        else go (i + 1) cum
      end
    in
    go 0 0
  end

let snapshot_to_json s =
  let headline =
    (* Counters are integral by construction; keep them JSON ints so
       consumers need no float coercion. *)
    match s.s_kind with
    | Counter -> Hft_util.Json.Int s.s_count
    | Gauge | Timer | Histogram -> Hft_util.Json.Float (value s)
  in
  let base =
    [ ("name", Hft_util.Json.String s.s_name);
      ("kind", Hft_util.Json.String (kind_to_string s.s_kind));
      ("count", Hft_util.Json.Int s.s_count);
      ("value", headline) ]
  in
  let summary =
    match s.s_kind with
    | Counter -> []
    | Gauge | Timer | Histogram ->
      if s.s_count = 0 then []
      else
        [ ("sum", Hft_util.Json.Float s.s_sum);
          ("min", Hft_util.Json.Float s.s_min);
          ("max", Hft_util.Json.Float s.s_max);
          ("mean", Hft_util.Json.Float (mean s)) ]
  in
  let tail =
    match s.s_kind with
    | Timer | Histogram ->
      if s.s_count = 0 then []
      else
        [ ("p50", Hft_util.Json.Float (percentile s 0.5));
          ("p95", Hft_util.Json.Float (percentile s 0.95)) ]
    | Counter | Gauge -> []
  in
  Hft_util.Json.Obj (base @ summary @ tail)
