(* The single on/off switch for the whole observability layer.

   Every recording entry point (Registry, Span) begins with
   [if not !enabled then ...]: one ref dereference and a branch, so a
   disabled build stays within noise of an uninstrumented one.  Hot
   loops in the engines accumulate into local mutable state and flush
   once per call, so even the enabled overhead is per-invocation, not
   per-iteration. *)

let enabled = ref false

let with_enabled v f =
  let prev = !enabled in
  enabled := v;
  Fun.protect ~finally:(fun () -> enabled := prev) f
