(* The single on/off switch for the whole observability layer.

   Every recording entry point (Registry, Span) begins with
   [if not !enabled then ...]: one ref dereference and a branch, so a
   disabled build stays within noise of an uninstrumented one.  Hot
   loops in the engines accumulate into local mutable state and flush
   once per call, so even the enabled overhead is per-invocation, not
   per-iteration. *)

let enabled = ref false

(* Allocation profiling rides the span tree: when on, [Span.with_]
   brackets each phase with [Gc.quick_stat] and folds the minor/major
   word and compaction deltas into the span's attributes (and the
   progress streamer surfaces the cumulative numbers in snapshots).
   Off by default — a [Gc.quick_stat] pair per span is cheap but not
   free, and the disabled path must stay provably identical. *)
let gc_stats = ref false

let with_enabled v f =
  let prev = !enabled in
  enabled := v;
  Fun.protect ~finally:(fun () -> enabled := prev) f
