(** Process-global registry of named metrics.

    Recording functions ({!incr}, {!set}, {!observe}, {!time}) are
    no-ops while [!Config.enabled] is false; creation and snapshot
    functions always work, so reporting code need not care about the
    switch. *)

(** Find-or-create.  Raises [Invalid_argument] if [name] already exists
    with a different kind. *)
val counter : string -> Metric.t

val gauge : string -> Metric.t
val timer : string -> Metric.t
val histogram : string -> Metric.t

(** Record by name (find-or-create, then update) — gated on
    [Config.enabled]. *)
val incr : ?by:int -> string -> unit

val set : string -> float -> unit
val observe : string -> float -> unit

(** Raw-valued histogram observation (cone sizes, batch widths, ...) —
    same bucketed summary as {!observe} but rendered unitless. *)
val record : string -> float -> unit

(** [time name f] observes [f]'s wall-clock duration (seconds) under
    timer [name]; when disabled it is exactly [f ()]. *)
val time : string -> (unit -> 'a) -> 'a

val find : string -> Metric.snapshot option

(** Headline value of [name], 0 if absent. *)
val value : string -> float

(** Counter value / observation count of [name], 0 if absent. *)
val count : string -> int

(** All metrics, sorted by name. *)
val snapshot : unit -> Metric.snapshot list

val reset : unit -> unit

(** [isolated f] runs [f] against a fresh, empty registry and restores
    the previous contents afterwards (even on exceptions).  Metrics
    recorded inside are invisible outside and vice versa. *)
val isolated : (unit -> 'a) -> 'a
