(* Wall-clock source, overridable so tests can make time deterministic. *)

let source = ref Unix.gettimeofday
let now () = !source ()
let set_source f = source := f
let reset_source () = source := Unix.gettimeofday

let with_source f body =
  let prev = !source in
  source := f;
  Fun.protect ~finally:(fun () -> source := prev) body
