(** Registry snapshots rendered for people (fixed-width table) or for
    machines (one JSON object keyed by metric name, each value the
    {!Metric.snapshot_to_json} form — the same shape `hft bench` embeds
    in [BENCH_hft.json]); plus the Chrome trace-event exporter for the
    span tree. *)

val metrics_table : ?snapshot:Metric.snapshot list -> unit -> string
val metrics_json : ?snapshot:Metric.snapshot list -> unit -> Hft_util.Json.t

(** OpenMetrics / Prometheus text exposition of the snapshot: counters
    as [<name>_total], gauges bare, timers/histograms as cumulative
    [_bucket{le="..."}] lines (40 power-of-two bins plus [+Inf]) with
    [_sum]/[_count]; names mangled to the exposition charset (dots to
    underscores) and the document terminated by [# EOF].  This is what
    [--metrics-out] writes and rewrites during a campaign. *)
val openmetrics : ?snapshot:Metric.snapshot list -> unit -> string

(** [chrome_trace ()] — the span forest plus the per-domain
    {!Span.track_event} slices as a Chrome trace-event document
    ([{"traceEvents": [...]}]): one complete ("ph":"X") event per span
    on the [tid] of the domain that opened it, one per track slice on
    its worker's [tid], flow arrows ("ph":"s"/"f") from speculative
    evaluations to the commit windows that consumed them, and
    thread_name metadata ("orchestrator" / "worker-N").  [ts]/[dur] in
    microseconds relative to the earliest recorded instant.  Load the
    serialised file in [chrome://tracing] or Perfetto — a parallel
    campaign shows one timeline per domain. *)
val chrome_trace :
  ?roots:Span.t list -> ?tracks:Span.track_event list -> unit ->
  Hft_util.Json.t

(** Self time per span {e name}: elapsed minus children's elapsed
    (clamped at 0), summed across the forest, in seconds, sorted by
    descending self time then name.  [hft profile]'s per-phase table. *)
val self_times : ?roots:Span.t list -> unit -> (string * float) list

(** flamegraph.pl folded-stack rendering: one ["a;b;c <µs>"] line per
    distinct span path (value = integer self-time microseconds) plus
    one ["worker-<d>;<name> <µs>"] line per worker-domain track slice;
    domain-0 slices are excluded (already inside the span tree).  Lines
    are sorted, so equal inputs produce byte-equal output; zero-valued
    paths are dropped. *)
val folded_stacks :
  ?roots:Span.t list -> ?tracks:Span.track_event list -> unit -> string
