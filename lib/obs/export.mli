(** Registry snapshots rendered for people (fixed-width table) or for
    machines (one JSON object keyed by metric name, each value the
    {!Metric.snapshot_to_json} form — the same shape `hft bench` embeds
    in [BENCH_hft.json]). *)

val metrics_table : ?snapshot:Metric.snapshot list -> unit -> string
val metrics_json : ?snapshot:Metric.snapshot list -> unit -> Hft_util.Json.t
