(** Registry snapshots rendered for people (fixed-width table) or for
    machines (one JSON object keyed by metric name, each value the
    {!Metric.snapshot_to_json} form — the same shape `hft bench` embeds
    in [BENCH_hft.json]); plus the Chrome trace-event exporter for the
    span tree. *)

val metrics_table : ?snapshot:Metric.snapshot list -> unit -> string
val metrics_json : ?snapshot:Metric.snapshot list -> unit -> Hft_util.Json.t

(** OpenMetrics / Prometheus text exposition of the snapshot: counters
    as [<name>_total], gauges bare, timers/histograms as cumulative
    [_bucket{le="..."}] lines (40 power-of-two bins plus [+Inf]) with
    [_sum]/[_count]; names mangled to the exposition charset (dots to
    underscores) and the document terminated by [# EOF].  This is what
    [--metrics-out] writes and rewrites during a campaign. *)
val openmetrics : ?snapshot:Metric.snapshot list -> unit -> string

(** [chrome_trace ()] — the span forest as a Chrome trace-event
    document ([{"traceEvents": [...]}]): one complete ("ph":"X") event
    per span with [ts]/[dur] in microseconds relative to the earliest
    root start, span attributes under [args].  Load the serialised file
    in [chrome://tracing] or Perfetto. *)
val chrome_trace : ?roots:Span.t list -> unit -> Hft_util.Json.t
