open Hft_gate

type source = Lfsr_source | Arith_source

type block_report = {
  fu : int;
  n_gates : int;
  n_faults : int;
  coverage : (int * float) list;
  signature : int;
}

type report = { blocks : block_report list; total_coverage : float }

let default_checkpoints = [ 16; 64; 256; 1024 ]

(* A pattern source producing one bool per PI per pattern. *)
let make_source source ~seed ~n_pi =
  match source with
  | Lfsr_source ->
    let width = max 2 (min 24 (n_pi + 3)) in
    let l = Lfsr.create ~width ~seed in
    fun () ->
      let s = Lfsr.next l in
      Array.init n_pi (fun i -> s lsr (i mod width) land 1 = 1)
  | Arith_source ->
    let width = max 2 (min 24 (n_pi + 3)) in
    let g = Arith.create ~width ~seed ~increment:(2 * seed + 3) in
    fun () ->
      let s = Arith.next g in
      Array.init n_pi (fun i -> s lsr (i mod width) land 1 = 1)

let run_block ?(checkpoints = default_checkpoints) ~source ~seed ~width kinds =
  let blk = Expand.comb_block ~width kinds in
  let nl = blk.Expand.b_netlist in
  let faults = Fault.collapsed nl in
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.bist.blocks";
    Hft_obs.Registry.incr "hft.bist.block_faults" ~by:(List.length faults);
    Hft_obs.Registry.incr "hft.bist.patterns"
      ~by:(List.fold_left max 0 checkpoints)
  end;
  let n_pi = List.length (Netlist.pis nl) in
  let next_pattern = make_source source ~seed ~n_pi in
  let curve =
    match
      Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Fsim (fun () ->
          Fsim.coverage_curve nl ~checkpoints ~next_pattern faults)
    with
    | Ok curve -> curve
    | Error _ ->
      (* Keep the block in the report (its faults still weigh the
         total) but with zero measured coverage. *)
      Hft_obs.Journal.record
        (Hft_obs.Journal.Degraded
           { site = "fsim"; action = "bist-block-zeroed" });
      Hft_obs.Registry.incr "hft.robust.degraded";
      List.map (fun n -> (n, 0.0)) checkpoints
  in
  (* Signature: absorb the PO words of a fresh deterministic run. *)
  let next_pattern2 = make_source source ~seed ~n_pi in
  let sigwidth = max 2 (min 24 width) in
  let m = Misr.create ~width:sigwidth in
  let st = Sim.pcreate nl ~n_patterns:1 in
  for _ = 1 to 64 do
    let row = next_pattern2 () in
    List.iteri
      (fun i pi ->
        let v = Hft_util.Bitvec.create 1 in
        Hft_util.Bitvec.set v 0 row.(i);
        Sim.pset_pi st pi v)
      (Netlist.pis nl);
    Sim.peval nl st;
    let word =
      List.fold_left
        (fun acc po ->
          (acc lsl 1) lor (if Hft_util.Bitvec.get (Sim.pvalue st po) 0 then 1 else 0))
        0 (Netlist.pos nl)
    in
    Misr.absorb m word
  done;
  {
    fu = -1;
    n_gates = Netlist.n_gates nl;
    n_faults = List.length faults;
    coverage = curve;
    signature = Misr.signature m;
  }

let fu_kinds d f =
  List.sort_uniq compare
    (List.filter_map
       (fun (_, m) ->
         match m with
         | Hft_rtl.Datapath.Exec e when e.fu = f ->
           Some e.kind
         | Hft_rtl.Datapath.Exec _ | Hft_rtl.Datapath.Move _ -> None)
       d.Hft_rtl.Datapath.transfers)

let run ?(checkpoints = default_checkpoints) ~source ~seed d =
  Hft_obs.Span.with_ "bist-campaign"
    ~attrs:
      [ ("patterns",
         string_of_int
           (List.fold_left max 0 checkpoints)) ]
  @@ fun () ->
  let blocks =
    List.filter_map
      (fun f ->
        match fu_kinds d f with
        | [] -> None
        | kinds ->
          let r =
            run_block ~checkpoints ~source ~seed:(seed + f)
              ~width:d.Hft_rtl.Datapath.width kinds
          in
          Some { r with fu = f })
      (List.init (Hft_rtl.Datapath.n_fus d) (fun f -> f))
  in
  let weighted, total =
    List.fold_left
      (fun (acc, tot) b ->
        let final = match List.rev b.coverage with (_, c) :: _ -> c | [] -> 0.0 in
        (acc +. (final *. float_of_int b.n_faults), tot + b.n_faults))
      (0.0, 0) blocks
  in
  {
    blocks;
    total_coverage = (if total = 0 then 1.0 else weighted /. float_of_int total);
  }
