open Hft_rtl

type role = R_none | R_tpgr | R_sr | R_bilbo | R_cbilbo

type plan = {
  roles : role array;
  sr_of_fu : int array;
  n_tpgr : int;
  n_sr : int;
  n_bilbo : int;
  n_cbilbo : int;
}

let role_to_string = function
  | R_none -> "-"
  | R_tpgr -> "tpgr"
  | R_sr -> "sr"
  | R_bilbo -> "bilbo"
  | R_cbilbo -> "cbilbo"

let plan d =
  let n = Datapath.n_regs d in
  let needs_tpgr = Array.make n false in
  let sr_blocks = Array.make n [] in (* fu ids the register serves as SR *)
  let tpgr_blocks = Array.make n [] in
  let sr_of_fu = Array.make (Datapath.n_fus d) (-1) in
  for f = 0 to Datapath.n_fus d - 1 do
    let ins = Datapath.fu_input_regs d f in
    let outs = Datapath.fu_output_regs d f in
    List.iter
      (fun r ->
        needs_tpgr.(r) <- true;
        tpgr_blocks.(r) <- f :: tpgr_blocks.(r))
      ins;
    (* SR: prefer an output register that is not an input of the same
       block. *)
    match outs with
    | [] -> () (* unused unit: nothing to observe *)
    | outs ->
      let clean = List.filter (fun r -> not (List.mem r ins)) outs in
      let sr = match clean with r :: _ -> r | [] -> List.hd outs in
      sr_of_fu.(f) <- sr;
      sr_blocks.(sr) <- f :: sr_blocks.(sr)
  done;
  let roles =
    Array.init n (fun r ->
        let tp = needs_tpgr.(r) and srb = sr_blocks.(r) in
        match (tp, srb) with
        | false, [] -> R_none
        | true, [] -> R_tpgr
        | false, _ -> R_sr
        | true, _ ->
          (* Both roles.  CBILBO only when some block uses it as TPGR
             and SR simultaneously (it is both an input and the chosen
             SR of that block). *)
          let concurrent =
            List.exists (fun f -> List.mem f tpgr_blocks.(r)) srb
          in
          if concurrent then R_cbilbo else R_bilbo)
  in
  let count x = Array.fold_left (fun a r -> if r = x then a + 1 else a) 0 roles in
  {
    roles;
    sr_of_fu;
    n_tpgr = count R_tpgr;
    n_sr = count R_sr;
    n_bilbo = count R_bilbo;
    n_cbilbo = count R_cbilbo;
  }

let annotate d p =
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.bist.plans";
    Hft_obs.Registry.incr "hft.bist.tpgr" ~by:p.n_tpgr;
    Hft_obs.Registry.incr "hft.bist.sr" ~by:p.n_sr;
    Hft_obs.Registry.incr "hft.bist.bilbo" ~by:p.n_bilbo;
    Hft_obs.Registry.incr "hft.bist.cbilbo" ~by:p.n_cbilbo
  end;
  Array.iteri
    (fun r role ->
      let kind =
        match role with
        | R_none -> Datapath.Plain
        | R_tpgr -> Datapath.Tpgr
        | R_sr -> Datapath.Sr
        | R_bilbo -> Datapath.Bilbo
        | R_cbilbo -> Datapath.Cbilbo
      in
      d.Datapath.regs.(r).Datapath.r_kind <- kind)
    p.roles

let area_overhead d p =
  let saved = Array.map (fun r -> r.Datapath.r_kind) d.Datapath.regs in
  Array.iter (fun r -> r.Datapath.r_kind <- Datapath.Plain) d.Datapath.regs;
  let base = Area.datapath_area d in
  annotate d p;
  let with_bist = Area.datapath_area d in
  Array.iteri (fun i r -> r.Datapath.r_kind <- saved.(i)) d.Datapath.regs;
  (with_bist -. base) /. base
