(** Static ATPG guidance: combines {!Scoap}, {!Dominators} and
    {!Implications} into a {!Hft_gate.Podem.guidance} record, per
    fault.

    [provide] is a {!Hft_gate.Podem.provider}: pass it as [?guidance]
    to [Seq_atpg.run], [Full_scan.atpg] or [Flow.test_campaign].  The
    per-(netlist, observe) analyses are cached (keyed on physical
    identity, {!Hft_gate.Netlist.version} and the observe list), so a
    campaign that targets many faults on the same unrolled netlist pays
    for the analyses once.

    Soundness contract (what keeps guided verdicts trustworthy):
    requirement sets only contain literals true in every detecting
    test through the corresponding fault site — activation value,
    consumer side inputs at non-controlling values, post-dominator side
    inputs outside the fault cones at non-controlling values, plus
    their implication closure.  A fault is declared statically
    untestable only when every analyzable site is provably dead
    (unreachable from the observe set, or a contradictory closure);
    sites the analysis cannot model degrade to ordering-only
    guidance. *)

val provide : Hft_gate.Podem.provider

(** Drop all cached analyses (tests and long-lived sessions). *)
val reset_cache : unit -> unit
