open Hft_gate

(* Post-dominators of the fault-propagation graph.

   The graph G has a vertex per netlist node plus a virtual sink: an
   edge v -> u for every combinational consumer u of v (Dff consumers
   are excluded — a difference entering a flip-flop is not observed
   within the frame), and an edge o -> sink for every observe node o.
   A fault effect at v can only be observed by travelling a G-path from
   v to the sink, so every post-dominator of v lies on every such path.

   Post-dominators of G are dominators of the reversed graph rooted at
   the sink, computed with the Cooper–Harvey–Kennedy iteration: reverse
   postorder numbering from the sink over reversed edges, then the
   two-finger intersect climb until the idom table is stable. *)

type t = {
  d_n : int;  (* netlist nodes; the sink is vertex d_n *)
  d_idom : int array;  (* immediate post-dominator, -1 = unreachable *)
  d_rpo : int array;  (* reverse-postorder number, -1 = unreachable *)
}

let compute nl ~observe =
  let n = Netlist.n_nodes nl in
  let sink = n in
  let observed = Array.make n false in
  List.iter (fun o -> if o >= 0 && o < n then observed.(o) <- true) observe;
  (* Successors in G, i.e. predecessors in the reversed graph. *)
  let succs v =
    if v = sink then []
    else
      let comb =
        List.filter (fun u -> Netlist.kind nl u <> Netlist.Dff)
          (Netlist.fanout nl v)
      in
      if observed.(v) then sink :: comb else comb
  in
  (* Predecessors in G = successors in the reversed graph; the DFS from
     the sink walks these, so only nodes that can reach an observe node
     get an rpo number. *)
  let preds v =
    if v = sink then List.filter (fun o -> o >= 0 && o < n) observe
    else
      match Netlist.kind nl v with
      | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1 -> []
      | _ -> Array.to_list (Netlist.fanin nl v)
  in
  (* Iterative postorder DFS over the reversed graph from the sink. *)
  let rpo = Array.make (n + 1) (-1) in
  let post = Array.make (n + 1) 0 in
  let n_post = ref 0 in
  let state = Array.make (n + 1) 0 in (* 0 new, 1 open, 2 done *)
  let stack = ref [ (sink, preds sink) ] in
  state.(sink) <- 1;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, todo) :: rest ->
      (match todo with
       | [] ->
         state.(v) <- 2;
         post.(!n_post) <- v;
         incr n_post;
         stack := rest
       | w :: todo' ->
         stack := (v, todo') :: rest;
         if state.(w) = 0 then begin
           state.(w) <- 1;
           stack := (w, preds w) :: !stack
         end)
  done;
  (* Reverse postorder: the sink gets 0, everything else follows. *)
  let order = Array.make !n_post 0 in
  for i = 0 to !n_post - 1 do
    let v = post.(!n_post - 1 - i) in
    rpo.(v) <- i;
    order.(i) <- v
  done;
  let idom = Array.make (n + 1) (-1) in
  idom.(sink) <- sink;
  let rec intersect a b =
    if a = b then a
    else if rpo.(a) > rpo.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to !n_post - 1 do
      let v = order.(i) in
      (* Predecessors in the reversed graph = successors in G. *)
      let new_idom =
        List.fold_left
          (fun acc u ->
            if rpo.(u) < 0 || idom.(u) < 0 then acc
            else match acc with
              | None -> Some u
              | Some a -> Some (intersect a u))
          None (succs v)
      in
      match new_idom with
      | Some d when idom.(v) <> d ->
        idom.(v) <- d;
        changed := true
      | _ -> ()
    done
  done;
  { d_n = n; d_idom = idom; d_rpo = rpo }

let reaches t v = v >= 0 && v < t.d_n && t.d_rpo.(v) >= 0

let chain t v =
  if not (reaches t v) then []
  else begin
    let acc = ref [] in
    let cur = ref t.d_idom.(v) in
    (* The walk is bounded by the tree height; the sink terminates it. *)
    while !cur >= 0 && !cur < t.d_n do
      acc := !cur :: !acc;
      cur := t.d_idom.(!cur)
    done;
    List.rev !acc
  end
