(** Post-dominators of the fault-propagation graph.

    The propagation graph has an edge [v -> u] for every combinational
    consumer [u] of [v] ([Dff] consumers excluded — a difference
    entering a flip-flop is not observed within the frame) and an edge
    [o -> sink] for every observe node.  A node's post-dominators lie
    on {e every} path its fault effect can take to an observe node, so
    their side inputs must carry non-controlling values in any
    detecting test (SOCRATES-style mandatory assignments), and a node
    that cannot reach the sink at all is statically unobservable.

    Computed by the Cooper–Harvey–Kennedy dominator iteration on the
    reversed graph rooted at the sink: O(E · height) worst case, near
    linear on netlist-shaped graphs. *)

type t

(** [compute nl ~observe] builds the post-dominator tree with respect
    to the given observe set (typically POs plus scan-capture points). *)
val compute : Hft_gate.Netlist.t -> observe:int list -> t

(** Can a fault effect at [v] structurally reach any observe node?
    [false] is a proof of unobservability. *)
val reaches : t -> int -> bool

(** Proper post-dominators of [v], nearest first, sink excluded.
    Empty when [v] cannot reach the sink. *)
val chain : t -> int -> int list
