open Hft_gate

type t = {
  cc0 : int array;
  cc1 : int array;
  co : int array;
  sc0 : int array;
  sc1 : int array;
  so : int array;
}

let infinite = max_int / 4
let is_inf v = v >= infinite

(* Saturating addition so unreachable stays unreachable. *)
let ( +! ) a b = if is_inf a || is_inf b then infinite else min infinite (a + b)

(* Forward (controllability) sweep step for one node; returns the new
   (c0, c1) pair from the current tables.  [comb] selects the
   combinational (+1 per gate) or sequential (+1 per DFF) flavour. *)
let control_of ~comb nl c0 c1 v =
  let gate = if comb then 1 else 0 in
  let flop = 1 in
  let fi = Netlist.fanin nl v in
  match Netlist.kind nl v with
  | Netlist.Pi -> if comb then (1, 1) else (0, 0)
  | Netlist.Const0 -> (0, infinite)
  | Netlist.Const1 -> (infinite, 0)
  | Netlist.Buf | Netlist.Po ->
    let a = fi.(0) in
    let g = if Netlist.kind nl v = Netlist.Po then 0 else gate in
    (c0.(a) +! g, c1.(a) +! g)
  | Netlist.Not ->
    let a = fi.(0) in
    (c1.(a) +! gate, c0.(a) +! gate)
  | Netlist.Dff ->
    let d = fi.(0) in
    (c0.(d) +! flop, c1.(d) +! flop)
  | Netlist.And ->
    let a = fi.(0) and b = fi.(1) in
    (min c0.(a) c0.(b) +! gate, c1.(a) +! c1.(b) +! gate)
  | Netlist.Or ->
    let a = fi.(0) and b = fi.(1) in
    (c0.(a) +! c0.(b) +! gate, min c1.(a) c1.(b) +! gate)
  | Netlist.Nand ->
    let a = fi.(0) and b = fi.(1) in
    (c1.(a) +! c1.(b) +! gate, min c0.(a) c0.(b) +! gate)
  | Netlist.Nor ->
    let a = fi.(0) and b = fi.(1) in
    (min c1.(a) c1.(b) +! gate, c0.(a) +! c0.(b) +! gate)
  | Netlist.Xor ->
    let a = fi.(0) and b = fi.(1) in
    ( min (c0.(a) +! c0.(b)) (c1.(a) +! c1.(b)) +! gate,
      min (c1.(a) +! c0.(b)) (c0.(a) +! c1.(b)) +! gate )
  | Netlist.Xnor ->
    let a = fi.(0) and b = fi.(1) in
    ( min (c1.(a) +! c0.(b)) (c0.(a) +! c1.(b)) +! gate,
      min (c0.(a) +! c0.(b)) (c1.(a) +! c1.(b)) +! gate )
  | Netlist.Mux2 ->
    let s = fi.(0) and a = fi.(1) and b = fi.(2) in
    ( min (c0.(s) +! c0.(a)) (c1.(s) +! c0.(b)) +! gate,
      min (c0.(s) +! c1.(a)) (c1.(s) +! c1.(b)) +! gate )

(* Observability contribution of using net [v] on pin [pin] of node
   [u], given [u]'s own observability [ou]. *)
let observe_via ~comb nl c0 c1 obs u pin v =
  let gate = if comb then 1 else 0 in
  let ou = obs.(u) in
  let fi = Netlist.fanin nl u in
  let other i = fi.(i) in
  ignore v;
  match Netlist.kind nl u with
  | Netlist.Pi | Netlist.Const0 | Netlist.Const1 -> infinite
  | Netlist.Po -> 0
  | Netlist.Buf | Netlist.Not -> ou +! gate
  | Netlist.Dff -> ou +! 1
  | Netlist.And | Netlist.Nand ->
    let o = other (1 - pin) in
    ou +! c1.(o) +! gate
  | Netlist.Or | Netlist.Nor ->
    let o = other (1 - pin) in
    ou +! c0.(o) +! gate
  | Netlist.Xor | Netlist.Xnor ->
    let o = other (1 - pin) in
    ou +! min c0.(o) c1.(o) +! gate
  | Netlist.Mux2 ->
    let s = fi.(0) and a = fi.(1) and b = fi.(2) in
    (match pin with
     | 0 ->
       (* Select observable when the two data legs differ. *)
       ou +! min (c0.(a) +! c1.(b)) (c1.(a) +! c0.(b)) +! gate
     | 1 -> ou +! c0.(s) +! gate
     | _ -> ou +! c1.(s) +! gate)

let fixpoint ~sweeps f =
  let changed = ref true in
  let k = ref 0 in
  while !changed && !k < sweeps do
    changed := f ();
    incr k
  done

let analyze nl =
  let n = Netlist.n_nodes nl in
  let mk () = Array.make n infinite in
  let cc0 = mk () and cc1 = mk () and sc0 = mk () and sc1 = mk () in
  let co = mk () and so = mk () in
  let sweeps = n + 8 in
  (* Controllability: forward chaotic iteration in id order (ids are
     near-topological; rewired nets just take extra sweeps). *)
  let control ~comb c0 c1 =
    fixpoint ~sweeps (fun () ->
        let changed = ref false in
        for v = 0 to n - 1 do
          let n0, n1 = control_of ~comb nl c0 c1 v in
          if n0 < c0.(v) then begin c0.(v) <- n0; changed := true end;
          if n1 < c1.(v) then begin c1.(v) <- n1; changed := true end
        done;
        !changed)
  in
  control ~comb:true cc0 cc1;
  control ~comb:false sc0 sc1;
  (* Observability: backward over fanouts; a net's measure is the
     cheapest fanout branch. *)
  let observe ~comb c0 c1 obs =
    List.iter (fun p -> obs.(p) <- 0) (Netlist.pos nl);
    fixpoint ~sweeps (fun () ->
        let changed = ref false in
        for v = n - 1 downto 0 do
          if Netlist.kind nl v <> Netlist.Po then begin
            let best = ref infinite in
            List.iter
              (fun u ->
                let fi = Netlist.fanin nl u in
                Array.iteri
                  (fun pin src ->
                    if src = v then
                      best :=
                        min !best (observe_via ~comb nl c0 c1 obs u pin v))
                  fi)
              (Netlist.fanout nl v);
            if !best < obs.(v) then begin
              obs.(v) <- !best;
              changed := true
            end
          end
        done;
        !changed)
  in
  observe ~comb:true cc0 cc1 co;
  observe ~comb:false sc0 sc1 so;
  { cc0; cc1; co; sc0; sc1; so }

let worst_cc t v = max t.cc0.(v) t.cc1.(v)

let pp_node t v =
  let s x = if is_inf x then "inf" else string_of_int x in
  Printf.sprintf "cc0=%s cc1=%s co=%s sc0=%s sc1=%s so=%s" (s t.cc0.(v))
    (s t.cc1.(v)) (s t.co.(v)) (s t.sc0.(v)) (s t.sc1.(v)) (s t.so.(v))
