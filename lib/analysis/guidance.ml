open Hft_gate

(* Static guidance for PODEM: per (netlist, observe-set) analyses —
   SCOAP measures, post-dominators, the implication graph — combined
   per fault into a {!Hft_gate.Podem.guidance} record.

   Soundness invariants (they keep guided Untestable a proof and the
   guided cut test-preserving):

   - A per-site requirement set contains only literals that hold in
     every test detecting the fault through that site: the activation
     literal, non-controlling values on the consumer's other pins (pin
     faults), non-controlling values on dominator side inputs outside
     the union of all sites' fanout cones, and everything those imply.
   - A site is dead when its origin cannot reach any observe node or
     its requirement closure is self-contradictory; a fault with no
     live analyzable site is statically untestable.
   - A site the analysis cannot model (e.g. a pin fault whose consumer
     is a flip-flop, or a pin index past the fanin array after frame
     mapping) gets an empty requirement set: never violated, never
     counted dead — the guidance degrades to pure ordering for it. *)

type analyses = {
  a_scoap : Scoap.t;
  a_dom : Dominators.t;
  a_impl : Implications.t;
}

(* Engines cycle through one unrolled netlist per frame count, so a
   handful of entries covers a whole campaign.  Keyed on physical
   identity + version (structural edits invalidate) + observe set.
   Domain-local: parallel ATPG shards analyze their own workspace
   netlists, so sharing entries across domains would only race — each
   domain keeps its own small cache (cache_hits/misses counters are
   therefore scheduling-dependent at [-j > 1]; they are not part of the
   determinism contract). *)
let cache : (Netlist.t * int * int list * analyses) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let cache_cap = 8

let analyses_for nl ~observe =
  let ver = Netlist.version nl in
  let cached = Domain.DLS.get cache in
  match
    List.find_opt
      (fun (nl', ver', obs', _) -> nl' == nl && ver' = ver && obs' = observe)
      cached
  with
  | Some (_, _, _, a) ->
    Hft_obs.Registry.incr "hft.analysis.cache_hits";
    a
  | None ->
    Hft_obs.Registry.incr "hft.analysis.cache_misses";
    let a =
      { a_scoap = Scoap.analyze nl;
        a_dom = Dominators.compute nl ~observe;
        a_impl = Implications.compute nl }
    in
    let keep = List.filteri (fun i _ -> i < cache_cap - 1) cached in
    Domain.DLS.set cache ((nl, ver, observe, a) :: keep);
    a

(* Non-controlling side-input requirements for a difference crossing
   gate [g], given that inputs inside [in_ucone] may carry the
   difference (and so are unconstrained).  [skip] masks the faulted pin
   for consumer gates. *)
let side_requirements nl ~in_ucone ?(skip = -1) g =
  let fi = Netlist.fanin nl g in
  let reqs = ref [] in
  (match Netlist.kind nl g with
   | Netlist.And | Netlist.Nand ->
     Array.iteri
       (fun j a -> if j <> skip && not (in_ucone a) then reqs := (a, 1) :: !reqs)
       fi
   | Netlist.Or | Netlist.Nor ->
     Array.iteri
       (fun j a -> if j <> skip && not (in_ucone a) then reqs := (a, 0) :: !reqs)
       fi
   | Netlist.Mux2 ->
     (* [sel; a; b], sel = 1 selects b.  When the difference can only
        arrive through one data leg, the select must route that leg.
        A faulted select pin ([skip = 0]) leaves the select free. *)
     let sel = fi.(0) and a = fi.(1) and b = fi.(2) in
     if skip <> 0 && not (in_ucone sel) then begin
       let a_live = skip = 1 || in_ucone a in
       let b_live = skip = 2 || in_ucone b in
       if a_live && not b_live then reqs := (sel, 0) :: !reqs
       else if b_live && not a_live then reqs := (sel, 1) :: !reqs
     end
   | Netlist.Xor | Netlist.Xnor | Netlist.Buf | Netlist.Not | Netlist.Po
   | Netlist.Pi | Netlist.Dff | Netlist.Const0 | Netlist.Const1 -> ());
  !reqs

type site =
  | Dead  (* provably undetectable through this site *)
  | Opaque  (* unanalyzable: no requirements, no claims *)
  | Live of (int * int) list  (* closed requirement set *)

let analyze_site nl a ~in_ucone f =
  let n = Netlist.n_nodes nl in
  let origin = f.Fault.node in
  if origin < 0 || origin >= n then Opaque
  else
    let want = if f.Fault.stuck then 0 else 1 in
    let base =
      match f.Fault.pin with
      | None -> Some [ (origin, want) ]
      | Some p ->
        let fi = Netlist.fanin nl origin in
        if p < 0 || p >= Array.length fi then None
        else if Netlist.kind nl origin = Netlist.Dff then None
        else
          Some
            ((fi.(p), want)
             :: side_requirements nl ~in_ucone ~skip:p origin)
    in
    match base with
    | None -> Opaque
    | Some base ->
      if not (Dominators.reaches a.a_dom origin) then Dead
      else begin
        let dom_reqs =
          List.concat_map
            (fun d -> side_requirements nl ~in_ucone d)
            (Dominators.chain a.a_dom origin)
        in
        match Implications.closure a.a_impl (base @ dom_reqs) with
        | Implications.Contradiction -> Dead
        | Implications.Consistent lits -> Live lits
      end

let provide nl ~observe ~faults =
  Hft_obs.Registry.incr "hft.analysis.provides";
  let a = analyses_for nl ~observe in
  let ucone =
    Netlist.fanout_cone_union nl (List.map (fun f -> f.Fault.node) faults)
  in
  let n = Netlist.n_nodes nl in
  let in_cone = Array.make n false in
  Array.iter (fun v -> in_cone.(v) <- true) ucone;
  let in_ucone v = v >= 0 && v < n && in_cone.(v) in
  let sites = List.map (analyze_site nl a ~in_ucone) faults in
  let any_live_or_opaque =
    List.exists (function Dead -> false | _ -> true) sites
  in
  let static_untestable = faults <> [] && not any_live_or_opaque in
  if static_untestable then
    Hft_obs.Registry.incr "hft.analysis.static_untestable";
  (* Dead sites are dropped (they admit no detecting test, so they must
     not weaken the intersection or the cut); opaque sites keep an
     empty set, which voids the cut and the intersection — exactly the
     do-no-harm degradation. *)
  let kept =
    List.filter_map
      (function
        | Dead -> None
        | Opaque -> Some []
        | Live lits -> Some lits)
      sites
  in
  let common =
    match kept with
    | [] -> []
    | first :: rest ->
      List.filter
        (fun lit -> List.for_all (fun set -> List.mem lit set) rest)
        first
  in
  {
    Podem.g_static_untestable = static_untestable;
    g_common_required = Array.of_list common;
    g_site_required =
      (if static_untestable then [||]
       else Array.of_list (List.map Array.of_list kept));
    g_cc0 = a.a_scoap.Scoap.cc0;
    g_cc1 = a.a_scoap.Scoap.cc1;
    g_co = a.a_scoap.Scoap.co;
  }

let reset_cache () = Domain.DLS.set cache []
