(** Static binary implication graph over netlist literals
    (SOCRATES-style static learning).

    A literal is a [(node, value)] pair.  The graph holds direct
    implications read off gate semantics together with their
    contrapositives, plus learned implications discovered by ternary
    forward simulation of each literal over its combinational fanout
    cone from the all-X baseline — sound by ternary monotonicity: a
    value that settles under a partial assignment persists under every
    refinement.  Learning is capped per literal and in total, and
    skipped entirely above a node-count threshold, so construction
    stays near linear. *)

type t

type closure_result =
  | Consistent of (int * int) list
      (** every implied literal (assumptions included), sorted *)
  | Contradiction
      (** the assumptions imply both values of some node, or conflict
          with a constant-driven baseline value — unsatisfiable *)

val compute : Hft_gate.Netlist.t -> t

(** [closure t lits] — BFS over the implication graph from the given
    literals.  [Contradiction] is a proof that no source assignment
    satisfies them all. *)
val closure : t -> (int * int) list -> closure_result

(** Direct successors of one literal (tests/reports). *)
val implied : t -> int * int -> (int * int) list

(** Total stored edges (tests/reports). *)
val n_edges : t -> int
