(** SCOAP testability metrics over a gate netlist (Goldstein's
    controllability/observability analysis; survey §3.1's gate-level
    cost model and the OpenTestability exemplar).

    Combinational measures count gates on the cheapest
    justification/propagation path; sequential measures count the
    flip-flops that must be clocked.  Exact rules (clocks assumed free,
    as in the textbook simplification):

    - [Pi]: CC0 = CC1 = 1, SC0 = SC1 = 0.
    - [Const0]: CC0 = 0, CC1 = infinite (dually [Const1]).
    - [Buf]/[Not]: input measure (+1 combinational, +0 sequential).
    - [And]: CC1 = sum of input CC1s + 1, CC0 = min input CC0 + 1
      ([Or], [Nand], [Nor] by duality/inversion).
    - [Xor]: CC1 = min(CC1a+CC0b, CC0a+CC1b) + 1,
      CC0 = min(CC0a+CC0b, CC1a+CC1b) + 1 ([Xnor] swapped).
    - [Mux2] [sel; a; b] with [sel = 1] choosing [b]:
      CC1 = min(CC0sel+CC1a, CC1sel+CC1b) + 1 (CC0 alike).
    - [Dff]: CC(Q) = CC(D) + 1 and SC(Q) = SC(D) + 1.
    - CO at a [Po] fan-in is 0; through a gate it adds the cost of
      holding the side inputs non-controlling (+1 combinational);
      through a [Dff] it adds 1 to both CO and SO.  A net's CO/SO is
      the minimum over its fanout branches; a net with no fanout is
      unobservable ([infinite]).

    Values are computed by monotone fixpoint iteration, so cyclic
    netlists (combinational loops, DFF feedback) are handled: nets
    controllable or observable only through a loop saturate at
    [infinite]. *)

type t = {
  cc0 : int array;  (** combinational 0-controllability, per node *)
  cc1 : int array;  (** combinational 1-controllability *)
  co : int array;   (** combinational observability *)
  sc0 : int array;  (** sequential 0-controllability *)
  sc1 : int array;  (** sequential 1-controllability *)
  so : int array;   (** sequential observability *)
}

(** Saturation value: any measure [>= infinite] means unattainable. *)
val infinite : int

val is_inf : int -> bool

val analyze : Hft_gate.Netlist.t -> t

(** [max(cc0, cc1)] — the usual "hard to control" scalar. *)
val worst_cc : t -> int -> int

(** One-line rendering of a node's six measures (for reports). *)
val pp_node : t -> int -> string
