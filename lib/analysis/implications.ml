open Hft_gate

(* Static binary implication graph over netlist literals.

   A literal is [2*node + value].  Edges come from two sources:

   - direct implications read off gate semantics, recorded together
     with their contrapositives (e.g. for an And input [a]:
     [(a,0) -> (g,0)] and [(g,1) -> (a,1)]);
   - learned implications from per-literal ternary forward simulation:
     assert one literal on top of the all-X baseline, evaluate its
     combinational fanout cone, and every node that settles to a
     concrete value is an implied literal.  Ternary evaluation is
     monotone, so any total source assignment refining the partial one
     reproduces those values — the implication holds universally.  The
     contrapositive of each learned edge is stored too.

   The closure is a plain BFS with stamp-array scratch (no per-call
   allocation beyond the result list).  Baseline-concrete nodes
   (constants and their cones) act as unit facts: a closure literal
   that contradicts the baseline is a contradiction. *)

type closure_result = Consistent of (int * int) list | Contradiction

type t = {
  i_n : int;
  i_succs : int list array;  (* per literal, implied literals *)
  i_base : int array;  (* all-X baseline values, 0/1/2 *)
  i_edges : int;
  (* closure scratch *)
  i_stamp : int array;
  i_sval : int array;
  mutable i_clock : int;
}

let x = 2

(* Learned-edge budgets: per source literal and total, so dense
   netlists cannot blow the graph up quadratically. *)
let per_lit_cap = 32
let total_cap = 200_000
let learn_max_nodes = 20_000

let compute nl =
  let n = Netlist.n_nodes nl in
  let succs = Array.make (2 * n) [] in
  let edges = ref 0 in
  let add_edge l1 l2 =
    succs.(l1) <- l2 :: succs.(l1);
    incr edges
  in
  (* Forward rule plus contrapositive in one shot. *)
  let pair (a, va) (b, vb) =
    add_edge ((2 * a) + va) ((2 * b) + vb);
    add_edge ((2 * b) + (1 - vb)) ((2 * a) + (1 - va))
  in
  for g = 0 to n - 1 do
    let fi = Netlist.fanin nl g in
    match Netlist.kind nl g with
    | Netlist.And -> Array.iter (fun a -> pair (a, 0) (g, 0)) fi
    | Netlist.Or -> Array.iter (fun a -> pair (a, 1) (g, 1)) fi
    | Netlist.Nand -> Array.iter (fun a -> pair (a, 0) (g, 1)) fi
    | Netlist.Nor -> Array.iter (fun a -> pair (a, 1) (g, 0)) fi
    | Netlist.Buf | Netlist.Po ->
      pair (fi.(0), 0) (g, 0);
      pair (fi.(0), 1) (g, 1)
    | Netlist.Not ->
      pair (fi.(0), 0) (g, 1);
      pair (fi.(0), 1) (g, 0)
    | Netlist.Xor | Netlist.Xnor | Netlist.Mux2 | Netlist.Pi | Netlist.Dff
    | Netlist.Const0 | Netlist.Const1 -> ()
  done;
  (* All-X baseline: only constants (and what they force) are concrete. *)
  let base = Sim.tcreate nl in
  Sim.teval nl base;
  if n <= learn_max_nodes then begin
    let scratch = Array.copy base in
    let eval = Sim.teval_fn nl scratch in
    let v = ref 0 in
    while !v < n && !edges < total_cap do
      let src = !v in
      if base.(src) = x then begin
        let cone = Netlist.fanout_cone nl src in
        let restore () =
          Array.iter (fun w -> scratch.(w) <- base.(w)) cone
        in
        let b = ref 0 in
        while !b <= 1 do
          let lit = (2 * src) + !b in
          scratch.(src) <- !b;
          let learned = ref 0 in
          Array.iter
            (fun w ->
              if w <> src then begin
                eval w;
                if
                  scratch.(w) <> x && base.(w) = x
                  && !learned < per_lit_cap && !edges < total_cap
                then begin
                  incr learned;
                  add_edge lit ((2 * w) + scratch.(w));
                  (* contrapositive *)
                  add_edge
                    ((2 * w) + (1 - scratch.(w)))
                    ((2 * src) + (1 - !b))
                end
              end)
            cone;
          restore ();
          incr b
        done
      end;
      incr v
    done
  end;
  { i_n = n; i_succs = succs; i_base = base; i_edges = !edges;
    i_stamp = Array.make n 0; i_sval = Array.make n 0; i_clock = 0 }

let n_edges t = t.i_edges

let implied t (v, b) =
  if v < 0 || v >= t.i_n then []
  else List.map (fun l -> (l / 2, l land 1)) t.i_succs.((2 * v) + b)

let closure t lits =
  t.i_clock <- t.i_clock + 1;
  let s = t.i_clock in
  let contradiction = ref false in
  let acc = ref [] in
  let queue = Queue.create () in
  let assume (v, b) =
    if v >= 0 && v < t.i_n && not !contradiction then begin
      if t.i_base.(v) <> x && t.i_base.(v) <> b then contradiction := true
      else if t.i_stamp.(v) = s then begin
        if t.i_sval.(v) <> b then contradiction := true
      end
      else begin
        t.i_stamp.(v) <- s;
        t.i_sval.(v) <- b;
        acc := (v, b) :: !acc;
        Queue.add ((2 * v) + b) queue
      end
    end
  in
  List.iter assume lits;
  while (not !contradiction) && not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    List.iter (fun l' -> assume (l' / 2, l' land 1)) t.i_succs.(l)
  done;
  if !contradiction then Contradiction
  else Consistent (List.sort compare !acc)
