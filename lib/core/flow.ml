open Hft_cdfg
open Hft_rtl

type dft_report = {
  flow : string;
  n_registers : int;
  n_scan_registers : int;
  n_test_registers : int;
  n_cbilbo : int;
  datapath_loops : int;
  self_loops : int;
  sequential_depth : int option;
  area_overhead : float;
  test_sessions : int;
}

type result = {
  graph : Graph.t;
  sched : Schedule.t;
  binding : Hft_hls.Fu_bind.t;
  alloc : Hft_hls.Reg_alloc.t;
  datapath : Datapath.t;
  report : dft_report;
}

let default_resources =
  [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1); (Op.Logic_unit, 1) ]

let count_kind d k =
  Array.fold_left
    (fun acc r -> if r.Datapath.r_kind = k then acc + 1 else acc)
    0 d.Datapath.regs

let measure ~flow ~base_area d ~sessions =
  let s = Sgraph.of_datapath d in
  let scanned =
    Array.to_list d.Datapath.regs
    |> List.filter_map (fun r ->
           match r.Datapath.r_kind with
           | Datapath.Scan | Datapath.Transparent_scan -> Some r.Datapath.r_id
           | Datapath.Plain | Datapath.Tpgr | Datapath.Sr | Datapath.Bilbo
           | Datapath.Cbilbo -> None)
  in
  let g' = Hft_util.Digraph.copy s.Sgraph.graph in
  List.iter (fun r -> Hft_util.Digraph.detach g' r) scanned;
  let remaining = { s with Sgraph.graph = g' } in
  {
    flow;
    n_registers = Datapath.n_regs d;
    n_scan_registers = List.length scanned;
    n_test_registers =
      count_kind d Datapath.Tpgr + count_kind d Datapath.Sr
      + count_kind d Datapath.Bilbo + count_kind d Datapath.Cbilbo;
    n_cbilbo = count_kind d Datapath.Cbilbo;
    datapath_loops = List.length (Sgraph.nontrivial_loops remaining);
    self_loops = List.length (Sgraph.self_loop_regs remaining);
    sequential_depth = Sgraph.sequential_depth s ~scanned;
    area_overhead =
      (if base_area <= 0.0 then 0.0
       else (Area.datapath_area d -. base_area) /. base_area);
    test_sessions = sessions;
  }

(* Every flow runs under one root span with a child span per phase, so
   [--trace] shows where a synthesis run spends its time; the per-flow
   total also feeds the [hft.flow.time] timer. *)
let span = Hft_obs.Span.with_

let flow_root name g f =
  Hft_obs.Registry.time "hft.flow.time" @@ fun () ->
  span ("flow:" ^ name)
    ~attrs:[ ("ops", string_of_int (Hft_cdfg.Graph.n_ops g)) ]
    (fun () ->
      Hft_obs.Registry.incr "hft.flow.runs";
      f ())

let synthesize_conventional ?(width = 8) ?(resources = default_resources) g =
  flow_root "conventional" g @@ fun () ->
  let latency = Hft_hls.Sched_algos.latencies g in
  let sched =
    span "schedule" (fun () -> Hft_hls.List_sched.schedule ~latency g ~resources)
  in
  let binding =
    span "fu-bind" (fun () -> Hft_hls.Fu_bind.left_edge ~resources g sched)
  in
  let info = span "lifetime" (fun () -> Lifetime.compute g sched) in
  let alloc = span "reg-alloc" (fun () -> Hft_hls.Reg_alloc.left_edge g info) in
  let datapath =
    span "datapath-gen" (fun () ->
        Hft_hls.Datapath_gen.generate ~width g sched binding alloc)
  in
  let base = Area.datapath_area datapath in
  let report =
    span "measure" (fun () ->
        measure ~flow:"conventional" ~base_area:base datapath ~sessions:0)
  in
  { graph = g; sched; binding; alloc; datapath; report }

let synthesize_for_partial_scan ?(width = 8) ?(resources = default_resources) g =
  flow_root "partial-scan" g @@ fun () ->
  let base =
    span "baseline" (fun () -> (synthesize_conventional ~width ~resources g).datapath)
  in
  let base_area = Area.datapath_area base in
  (* Loop-aware scheduling+binding, scan variables from the CDFG. *)
  let ssa =
    span "sched-assign" (fun () -> Sim_sched_assign.run ~resources g None)
  in
  let sched = ssa.Sim_sched_assign.sched in
  let binding = ssa.Sim_sched_assign.binding in
  let info = span "lifetime" (fun () -> Lifetime.compute g sched) in
  let sel =
    span "scan-select" (fun () -> Scan_vars.select_effective g sched)
  in
  (* Scan variables should share scan registers: colour them first,
     preferring to join an existing scan register. *)
  let scan_set = sel.Scan_vars.scan_vars in
  let alloc =
    span "reg-alloc" (fun () -> Hft_hls.Reg_alloc.color ~order:scan_set g info)
  in
  let datapath =
    span "datapath-gen" (fun () ->
        Hft_hls.Datapath_gen.generate ~width g sched binding alloc)
  in
  (* Annotate scan registers: those holding a scan variable, plus any
     further registers needed to break residual assignment loops. *)
  let all_scan =
    span "scan-annotate" @@ fun () ->
    let scan_regs =
      List.filter_map (fun v ->
          let r = alloc.Hft_hls.Reg_alloc.reg_of_var.(v) in
          if r >= 0 then Some r else None)
        scan_set
      |> List.sort_uniq compare
    in
    let s = Sgraph.of_datapath datapath in
    let residual =
      let g' = Hft_util.Digraph.copy s.Sgraph.graph in
      List.iter (fun r -> Hft_util.Digraph.detach g' r) scan_regs;
      Hft_util.Mfvs.greedy ~ignore_self_loops:true g'
    in
    List.sort_uniq compare (scan_regs @ residual)
  in
  List.iter
    (fun r -> datapath.Datapath.regs.(r).Datapath.r_kind <- Datapath.Scan)
    all_scan;
  Hft_obs.Registry.incr "hft.scan.regs_selected" ~by:(List.length all_scan);
  Hft_obs.Span.add_attr_int "scan-regs" (List.length all_scan);
  let report =
    span "measure" (fun () ->
        measure ~flow:"partial-scan" ~base_area datapath ~sessions:0)
  in
  { graph = g; sched; binding; alloc; datapath; report }

let synthesize_for_bist ?(width = 8) ?(resources = default_resources) g =
  flow_root "bist" g @@ fun () ->
  let base =
    span "baseline" (fun () -> (synthesize_conventional ~width ~resources g).datapath)
  in
  let base_area = Area.datapath_area base in
  let latency = Hft_hls.Sched_algos.latencies g in
  let sched =
    span "schedule" (fun () -> Hft_hls.List_sched.schedule ~latency g ~resources)
  in
  let binding =
    span "fu-bind" (fun () -> Hft_hls.Fu_bind.left_edge ~resources g sched)
  in
  let info = span "lifetime" (fun () -> Lifetime.compute g sched) in
  let alloc =
    span "bist-reg-assign" (fun () ->
        Hft_bist.Reg_assign.bist_aware g sched binding info)
  in
  let datapath =
    span "datapath-gen" (fun () ->
        Hft_hls.Datapath_gen.generate ~width g sched binding alloc)
  in
  let plan, sessions =
    span "bilbo-plan" @@ fun () ->
    let plan = Hft_bist.Bilbo.plan datapath in
    Hft_bist.Bilbo.annotate datapath plan;
    let sessions = Hft_bist.Session.count datapath plan in
    Hft_obs.Registry.incr "hft.bist.sessions" ~by:sessions;
    Hft_obs.Span.add_attr_int "sessions" sessions;
    (plan, sessions)
  in
  ignore plan;
  let report =
    span "measure" (fun () -> measure ~flow:"bist" ~base_area datapath ~sessions)
  in
  { graph = g; sched; binding; alloc; datapath; report }

type flow_kind = Conventional | Partial_scan | Bist

let flow_kinds =
  [ ("conventional", Conventional); ("partial-scan", Partial_scan);
    ("bist", Bist) ]

let flow_kind_to_string k =
  fst (List.find (fun (_, k') -> k' = k) flow_kinds)

let flow_kind_of_string s = List.assoc_opt s flow_kinds

let synthesize ?width ?resources kind g =
  match kind with
  | Conventional -> synthesize_conventional ?width ?resources g
  | Partial_scan -> synthesize_for_partial_scan ?width ?resources g
  | Bist -> synthesize_for_bist ?width ?resources g

(* ------------------------------------------------------------------ *)
(* Gate-level test campaign: the uniform "expand, sample faults, ATPG,
   final coverage fault simulation" sequence the CLI bench and atpg
   commands share.                                                     *)

type atpg_strategy = Fast | Naive

type campaign = {
  c_netlist : Hft_gate.Netlist.t;
  c_faults : Hft_gate.Fault.t list;
  c_scanned : int list;
  c_atpg : Hft_gate.Seq_atpg.stats;
  c_fsim : Hft_gate.Fsim.comb_result;
  c_patterns_stored : int;
  c_t_atpg : float;
  c_t_fsim : float;
}

let test_campaign ?(strategy = Fast) ?(backtrack_limit = 20) ?(max_frames = 2)
    ?(sample = 20) ?(seed = 2024) ?(n_patterns = 64) r =
  span "test-campaign" @@ fun () ->
  let ex = Hft_gate.Expand.of_datapath r.datapath in
  let nl = ex.Hft_gate.Expand.netlist in
  let rng = Hft_util.Rng.create seed in
  let faults =
    Hft_gate.Fault.collapsed nl
    |> List.filter (fun _ -> Hft_util.Rng.int rng sample = 0)
  in
  let scanned =
    Array.to_list r.datapath.Datapath.regs
    |> List.concat_map (fun reg ->
           if reg.Datapath.r_kind = Datapath.Scan then
             Array.to_list ex.Hft_gate.Expand.reg_q.(reg.Datapath.r_id)
           else [])
  in
  let n_pi = List.length (Hft_gate.Netlist.pis nl) in
  let n_scan = List.length scanned in
  let store = Pattern_store.create () in
  let seq_tests = ref [] in
  let on_test (t : Hft_gate.Seq_atpg.test) =
    (* One store row per time frame, columns = PIs then scan loads.
       Only frame 0 carries a real scan load; later frames' rows are
       still deterministic, fault-targeting stimuli and get a zero scan
       fill. *)
    let first_row = Pattern_store.size store in
    Array.iteri
      (fun i pi_vec ->
        let row = Array.make (n_pi + n_scan) false in
        Array.blit pi_vec 0 row 0 n_pi;
        if i = 0 then Array.blit t.Hft_gate.Seq_atpg.t_scan_state 0 row n_pi n_scan;
        Pattern_store.add store row)
      t.Hft_gate.Seq_atpg.t_pi_vectors;
    (* The ATPG registered this test in the ledger just before calling
       us (synchronously), so "last test" is the right one to annotate
       with its pattern-store rows. *)
    Hft_obs.Ledger.annotate_last_test ~first_row
      ~n_rows:(Array.length t.Hft_gate.Seq_atpg.t_pi_vectors);
    (* Multi-frame tests detect through unscanned state, which a single
       combinational pass cannot reproduce — keep them for a sequential
       (unrolled) replay. *)
    if t.Hft_gate.Seq_atpg.t_frames > 1 then seq_tests := t :: !seq_tests
  in
  let t0 = Hft_obs.Clock.now () in
  let stats =
    match strategy with
    | Fast ->
      Hft_scan.Partial_scan.atpg ~backtrack_limit ~max_frames
        ~strategy:Hft_gate.Seq_atpg.Drop ~on_test nl ~faults ~scanned
    | Naive ->
      Hft_scan.Partial_scan.atpg ~backtrack_limit ~max_frames
        ~strategy:Hft_gate.Seq_atpg.Naive nl ~faults ~scanned
  in
  let t_atpg = Hft_obs.Clock.now () -. t0 in
  (* Final coverage fault simulation.  Fast: replay the ATPG-derived
     patterns (plus random fill) through the scan view — the scan cells
     are pattern-loaded pseudo PIs and their D inputs observed — so
     faults the campaign proved detectable show up as detected here.
     Naive: the historical pure-random, non-scan simulation (DFF state
     stuck at 0), kept for comparison. *)
  let t1 = Hft_obs.Clock.now () in
  let fr =
    match strategy with
    | Fast ->
      let patterns =
        Pattern_store.padded store ~rng ~n_min:n_patterns
          ~width:(n_pi + n_scan)
      in
      let fr = Hft_gate.Fsim.comb_scan nl ~scanned ~patterns faults in
      (* Faults only the multi-frame tests reach: replay those tests on
         the unrolled circuit against the leftovers and merge. *)
      (match (!seq_tests, fr.Hft_gate.Fsim.undetected) with
       | [], _ | _, [] -> fr
       | tests, leftovers ->
         let det, undet =
           Hft_gate.Seq_atpg.replay nl ~scanned ~tests leftovers
         in
         {
           fr with
           Hft_gate.Fsim.detected = fr.Hft_gate.Fsim.detected @ det;
           undetected = undet;
         })
    | Naive ->
      Hft_gate.Fsim.comb_random ~strategy:Hft_gate.Fsim.Naive nl ~rng
        ~n_patterns faults
  in
  let t_fsim = Hft_obs.Clock.now () -. t1 in
  {
    c_netlist = nl;
    c_faults = faults;
    c_scanned = scanned;
    c_atpg = stats;
    c_fsim = fr;
    c_patterns_stored = Pattern_store.size store;
    c_t_atpg = t_atpg;
    c_t_fsim = t_fsim;
  }

let report_header =
  [ "flow"; "regs"; "scan"; "test-regs"; "cbilbo"; "loops"; "self-loops";
    "depth"; "area-ovh"; "sessions" ]

let report_row r =
  [
    r.flow;
    string_of_int r.n_registers;
    string_of_int r.n_scan_registers;
    string_of_int r.n_test_registers;
    string_of_int r.n_cbilbo;
    string_of_int r.datapath_loops;
    string_of_int r.self_loops;
    (match r.sequential_depth with None -> "inf" | Some d -> string_of_int d);
    Hft_util.Pretty.pct r.area_overhead;
    string_of_int r.test_sessions;
  ]
