open Hft_cdfg
open Hft_rtl

type dft_report = {
  flow : string;
  n_registers : int;
  n_scan_registers : int;
  n_test_registers : int;
  n_cbilbo : int;
  datapath_loops : int;
  self_loops : int;
  sequential_depth : int option;
  area_overhead : float;
  test_sessions : int;
}

type result = {
  graph : Graph.t;
  sched : Schedule.t;
  binding : Hft_hls.Fu_bind.t;
  alloc : Hft_hls.Reg_alloc.t;
  datapath : Datapath.t;
  report : dft_report;
}

let default_resources =
  [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1); (Op.Logic_unit, 1) ]

let count_kind d k =
  Array.fold_left
    (fun acc r -> if r.Datapath.r_kind = k then acc + 1 else acc)
    0 d.Datapath.regs

let measure ~flow ~base_area d ~sessions =
  let s = Sgraph.of_datapath d in
  let scanned =
    Array.to_list d.Datapath.regs
    |> List.filter_map (fun r ->
           match r.Datapath.r_kind with
           | Datapath.Scan | Datapath.Transparent_scan -> Some r.Datapath.r_id
           | Datapath.Plain | Datapath.Tpgr | Datapath.Sr | Datapath.Bilbo
           | Datapath.Cbilbo -> None)
  in
  let g' = Hft_util.Digraph.copy s.Sgraph.graph in
  List.iter (fun r -> Hft_util.Digraph.detach g' r) scanned;
  let remaining = { s with Sgraph.graph = g' } in
  {
    flow;
    n_registers = Datapath.n_regs d;
    n_scan_registers = List.length scanned;
    n_test_registers =
      count_kind d Datapath.Tpgr + count_kind d Datapath.Sr
      + count_kind d Datapath.Bilbo + count_kind d Datapath.Cbilbo;
    n_cbilbo = count_kind d Datapath.Cbilbo;
    datapath_loops = List.length (Sgraph.nontrivial_loops remaining);
    self_loops = List.length (Sgraph.self_loop_regs remaining);
    sequential_depth = Sgraph.sequential_depth s ~scanned;
    area_overhead =
      (if base_area <= 0.0 then 0.0
       else (Area.datapath_area d -. base_area) /. base_area);
    test_sessions = sessions;
  }

(* Every flow runs under one root span with a child span per phase, so
   [--trace] shows where a synthesis run spends its time; the per-flow
   total also feeds the [hft.flow.time] timer. *)
let span = Hft_obs.Span.with_

let flow_root name g f =
  Hft_obs.Registry.time "hft.flow.time" @@ fun () ->
  span ("flow:" ^ name)
    ~attrs:[ ("ops", string_of_int (Hft_cdfg.Graph.n_ops g)) ]
    (fun () ->
      Hft_obs.Registry.incr "hft.flow.runs";
      f ())

let synthesize_conventional ?(width = 8) ?(resources = default_resources) g =
  flow_root "conventional" g @@ fun () ->
  let latency = Hft_hls.Sched_algos.latencies g in
  let sched =
    span "schedule" (fun () -> Hft_hls.List_sched.schedule ~latency g ~resources)
  in
  let binding =
    span "fu-bind" (fun () -> Hft_hls.Fu_bind.left_edge ~resources g sched)
  in
  let info = span "lifetime" (fun () -> Lifetime.compute g sched) in
  let alloc = span "reg-alloc" (fun () -> Hft_hls.Reg_alloc.left_edge g info) in
  let datapath =
    span "datapath-gen" (fun () ->
        Hft_hls.Datapath_gen.generate ~width g sched binding alloc)
  in
  let base = Area.datapath_area datapath in
  let report =
    span "measure" (fun () ->
        measure ~flow:"conventional" ~base_area:base datapath ~sessions:0)
  in
  { graph = g; sched; binding; alloc; datapath; report }

let synthesize_for_partial_scan ?(width = 8) ?(resources = default_resources) g =
  flow_root "partial-scan" g @@ fun () ->
  let base =
    span "baseline" (fun () -> (synthesize_conventional ~width ~resources g).datapath)
  in
  let base_area = Area.datapath_area base in
  (* Loop-aware scheduling+binding, scan variables from the CDFG. *)
  let ssa =
    span "sched-assign" (fun () -> Sim_sched_assign.run ~resources g None)
  in
  let sched = ssa.Sim_sched_assign.sched in
  let binding = ssa.Sim_sched_assign.binding in
  let info = span "lifetime" (fun () -> Lifetime.compute g sched) in
  let sel =
    span "scan-select" (fun () -> Scan_vars.select_effective g sched)
  in
  (* Scan variables should share scan registers: colour them first,
     preferring to join an existing scan register. *)
  let scan_set = sel.Scan_vars.scan_vars in
  let alloc =
    span "reg-alloc" (fun () -> Hft_hls.Reg_alloc.color ~order:scan_set g info)
  in
  let datapath =
    span "datapath-gen" (fun () ->
        Hft_hls.Datapath_gen.generate ~width g sched binding alloc)
  in
  (* Annotate scan registers: those holding a scan variable, plus any
     further registers needed to break residual assignment loops. *)
  let all_scan =
    span "scan-annotate" @@ fun () ->
    let scan_regs =
      List.filter_map (fun v ->
          let r = alloc.Hft_hls.Reg_alloc.reg_of_var.(v) in
          if r >= 0 then Some r else None)
        scan_set
      |> List.sort_uniq compare
    in
    let s = Sgraph.of_datapath datapath in
    let residual =
      let g' = Hft_util.Digraph.copy s.Sgraph.graph in
      List.iter (fun r -> Hft_util.Digraph.detach g' r) scan_regs;
      Hft_util.Mfvs.greedy ~ignore_self_loops:true g'
    in
    List.sort_uniq compare (scan_regs @ residual)
  in
  List.iter
    (fun r -> datapath.Datapath.regs.(r).Datapath.r_kind <- Datapath.Scan)
    all_scan;
  Hft_obs.Registry.incr "hft.scan.regs_selected" ~by:(List.length all_scan);
  Hft_obs.Span.add_attr_int "scan-regs" (List.length all_scan);
  let report =
    span "measure" (fun () ->
        measure ~flow:"partial-scan" ~base_area datapath ~sessions:0)
  in
  { graph = g; sched; binding; alloc; datapath; report }

let synthesize_for_bist ?(width = 8) ?(resources = default_resources) g =
  flow_root "bist" g @@ fun () ->
  let base =
    span "baseline" (fun () -> (synthesize_conventional ~width ~resources g).datapath)
  in
  let base_area = Area.datapath_area base in
  let latency = Hft_hls.Sched_algos.latencies g in
  let sched =
    span "schedule" (fun () -> Hft_hls.List_sched.schedule ~latency g ~resources)
  in
  let binding =
    span "fu-bind" (fun () -> Hft_hls.Fu_bind.left_edge ~resources g sched)
  in
  let info = span "lifetime" (fun () -> Lifetime.compute g sched) in
  let alloc =
    span "bist-reg-assign" (fun () ->
        Hft_bist.Reg_assign.bist_aware g sched binding info)
  in
  let datapath =
    span "datapath-gen" (fun () ->
        Hft_hls.Datapath_gen.generate ~width g sched binding alloc)
  in
  let plan, sessions =
    span "bilbo-plan" @@ fun () ->
    let plan = Hft_bist.Bilbo.plan datapath in
    Hft_bist.Bilbo.annotate datapath plan;
    let sessions = Hft_bist.Session.count datapath plan in
    Hft_obs.Registry.incr "hft.bist.sessions" ~by:sessions;
    Hft_obs.Span.add_attr_int "sessions" sessions;
    (plan, sessions)
  in
  ignore plan;
  let report =
    span "measure" (fun () -> measure ~flow:"bist" ~base_area datapath ~sessions)
  in
  { graph = g; sched; binding; alloc; datapath; report }

type flow_kind = Conventional | Partial_scan | Bist

let flow_kinds =
  [ ("conventional", Conventional); ("partial-scan", Partial_scan);
    ("bist", Bist) ]

let flow_kind_to_string k =
  fst (List.find (fun (_, k') -> k' = k) flow_kinds)

let flow_kind_of_string s = List.assoc_opt s flow_kinds

let synthesize ?width ?resources kind g =
  match kind with
  | Conventional -> synthesize_conventional ?width ?resources g
  | Partial_scan -> synthesize_for_partial_scan ?width ?resources g
  | Bist -> synthesize_for_bist ?width ?resources g

(* ------------------------------------------------------------------ *)
(* Gate-level test campaign: the uniform "expand, sample faults, ATPG,
   final coverage fault simulation" sequence the CLI bench and atpg
   commands share.                                                     *)

type atpg_strategy = Fast | Naive

type campaign = {
  c_netlist : Hft_gate.Netlist.t;
  c_faults : Hft_gate.Fault.t list;
  c_scanned : int list;
  c_atpg : Hft_gate.Seq_atpg.stats;
  c_fsim : Hft_gate.Fsim.comb_result;
  c_patterns_stored : int;
  c_resumed_classes : int;
  c_resumed_tests : int;
  c_t_atpg : float;
  c_t_fsim : float;
  c_par : Hft_par.Stats.t;
}

let test_campaign ?(strategy = Fast) ?(backtrack_limit = 20) ?(max_frames = 2)
    ?(sample = 20) ?(seed = 2024) ?(n_patterns = 64)
    ?(supervisor = Some Hft_robust.Supervisor.default) ?checkpoint
    ?(resume = false) ?(guided = true) ?jobs ?campaign r =
  span "test-campaign" @@ fun () ->
  if checkpoint <> None && not !Hft_obs.Config.enabled then
    Hft_robust.Validation.fail ~site:"flow.test_campaign"
      ~hint:"enable observability (the CLI does this for --checkpoint)"
      "checkpointing needs the fault ledger";
  if checkpoint <> None && strategy = Naive then
    Hft_robust.Validation.fail ~site:"flow.test_campaign"
      ~hint:"drop --naive or drop --checkpoint"
      "checkpointing needs the fast strategy";
  let ex = Hft_gate.Expand.of_datapath r.datapath in
  let nl = ex.Hft_gate.Expand.netlist in
  let rng = Hft_util.Rng.create seed in
  let faults =
    Hft_gate.Fault.collapsed nl
    |> List.filter (fun _ -> Hft_util.Rng.int rng sample = 0)
  in
  let scanned =
    Array.to_list r.datapath.Datapath.regs
    |> List.concat_map (fun reg ->
           if reg.Datapath.r_kind = Datapath.Scan then
             Array.to_list ex.Hft_gate.Expand.reg_q.(reg.Datapath.r_id)
           else [])
  in
  let n_pi = List.length (Hft_gate.Netlist.pis nl) in
  let n_scan = List.length scanned in
  (* Live telemetry bracket: a campaign_started event now, the final
     snapshot just before we return.  No-ops unless the CLI started a
     progress stream (--progress-out). *)
  Hft_obs.Progress.campaign_begin
    ~label:(match campaign with Some c -> c | None -> r.report.flow)
    ~faults:(List.length faults);
  (* Checkpoint fingerprint: everything that shapes the fault sample,
     the search and the pattern layout.  A resume against a checkpoint
     written under different knobs would silently diverge, so any
     mismatch is an input error. *)
  let netlist_hash =
    (* Structural identity: two circuits with the same shape knobs and
       fault count (e.g. a design and its one-gate-off revision) must
       still refuse to resume each other's checkpoints. *)
    let h = ref 0 in
    let mix v = h := ((!h * 1000003) lxor v) land max_int in
    for v = 0 to Hft_gate.Netlist.n_nodes nl - 1 do
      mix (Hashtbl.hash (Hft_gate.Netlist.kind nl v));
      Array.iter mix (Hft_gate.Netlist.fanin nl v)
    done;
    !h land 0x3FFFFFFF
  in
  let meta =
    let open Hft_util.Json in
    [ ("flow", String r.report.flow);
      ("netlist", Int netlist_hash);
      ("strategy",
       String (match strategy with Fast -> "fast" | Naive -> "naive"));
      ("backtrack_limit", Int backtrack_limit);
      ("max_frames", Int max_frames);
      ("sample", Int sample);
      ("seed", Int seed);
      ("n_patterns", Int n_patterns);
      ("n_faults", Int (List.length faults));
      ("n_pi", Int n_pi);
      ("n_scan", Int n_scan);
      ("guided", Bool (guided && strategy = Fast)) ]
  in
  let restored =
    match checkpoint with
    | Some path when resume && Sys.file_exists path ->
      (match Hft_robust.Checkpoint.load ~path with
       | Error msg ->
         Hft_robust.Validation.fail ~site:"flow.checkpoint"
           ~hint:"delete the file to start a fresh campaign"
           (Printf.sprintf "cannot load %s: %s" path msg)
       | Ok ck ->
         List.iter
           (fun (k, v) ->
             match List.assoc_opt k ck.Hft_robust.Checkpoint.meta with
             | Some v' when v' = v -> ()
             | Some v' ->
               Hft_robust.Validation.fail ~site:"flow.checkpoint"
                 ~hint:"rerun with the original options, or delete the file"
                 (Printf.sprintf "%s fingerprint mismatch: checkpoint %s, run %s"
                    k
                    (Hft_util.Json.to_string v')
                    (Hft_util.Json.to_string v))
             | None ->
               Hft_robust.Validation.fail ~site:"flow.checkpoint"
                 ~hint:"the file predates this campaign's fingerprint"
                 (Printf.sprintf "checkpoint meta lacks %S" k))
           meta;
         Some ck)
    | _ -> None
  in
  let writer =
    match checkpoint with
    | None -> None
    | Some path ->
      let w = Hft_robust.Checkpoint.create ~path ~meta in
      (* Resume rewrites the repaired state in place: a torn tail must
         not survive on disk, or its lines would double once the engine
         regenerates the rolled-back transaction. *)
      (match restored with
       | None -> ()
       | Some ck ->
         List.iter
           (fun t -> Hft_robust.Checkpoint.append_test w t)
           ck.Hft_robust.Checkpoint.tests;
         List.iter
           (fun (c : Hft_robust.Checkpoint.cls) ->
             Hft_robust.Checkpoint.append_class w ~rep:c.ck_rep
               c.ck_resolution)
           ck.Hft_robust.Checkpoint.classes);
      Some w
  in
  Fun.protect
    ~finally:(fun () ->
      match writer with
      | Some w -> Hft_robust.Checkpoint.close w
      | None -> ())
  @@ fun () ->
  let store = Pattern_store.create () in
  let seq_tests = ref [] in
  let store_test (t : Hft_gate.Seq_atpg.test) =
    (* One store row per time frame, columns = PIs then scan loads.
       Only frame 0 carries a real scan load; later frames' rows are
       still deterministic, fault-targeting stimuli and get a zero scan
       fill. *)
    let first_row = Pattern_store.size store in
    Array.iteri
      (fun i pi_vec ->
        let row = Array.make (n_pi + n_scan) false in
        Array.blit pi_vec 0 row 0 n_pi;
        if i = 0 then Array.blit t.Hft_gate.Seq_atpg.t_scan_state 0 row n_pi n_scan;
        Pattern_store.add store row)
      t.Hft_gate.Seq_atpg.t_pi_vectors;
    (* The ATPG registered this test in the ledger just before calling
       us (synchronously), so "last test" is the right one to annotate
       with its pattern-store rows. *)
    Hft_obs.Ledger.annotate_last_test ~first_row
      ~n_rows:(Array.length t.Hft_gate.Seq_atpg.t_pi_vectors);
    (* Multi-frame tests detect through unscanned state, which a single
       combinational pass cannot reproduce — keep them for a sequential
       (unrolled) replay. *)
    if t.Hft_gate.Seq_atpg.t_frames > 1 then seq_tests := t :: !seq_tests
  in
  (* The engine appends the test line before any class line resolves to
     it ({!Hft_robust.Checkpoint} transaction ordering), so on_test
     serializes first, then feeds the store. *)
  let on_test (t : Hft_gate.Seq_atpg.test) =
    (match writer with
     | None -> ()
     | Some w ->
       Hft_robust.Checkpoint.append_test w
         {
           Hft_robust.Checkpoint.ck_frames = t.Hft_gate.Seq_atpg.t_frames;
           ck_vectors = t.Hft_gate.Seq_atpg.t_pi_vectors;
           ck_scan = t.Hft_gate.Seq_atpg.t_scan_state;
           ck_detects =
             List.map
               (fun (f : Hft_gate.Fault.t) -> (f.node, f.pin, f.stuck))
               t.Hft_gate.Seq_atpg.t_detects;
         });
    store_test t
  in
  (* Resume: replay the checkpointed tests through the same store path
     (ledger test ids realign with checkpoint order) and hand the ATPG a
     rep -> resolution lookup so restored classes are never re-run. *)
  let resumed_tests =
    match restored with
    | None -> 0
    | Some ck ->
      List.iter
        (fun (t : Hft_robust.Checkpoint.test) ->
          ignore (Hft_obs.Ledger.register_test ~frames:t.ck_frames : int);
          store_test
            {
              Hft_gate.Seq_atpg.t_frames = t.ck_frames;
              t_pi_vectors = t.ck_vectors;
              t_scan_state = t.ck_scan;
              t_detects =
                List.map
                  (fun (node, pin, stuck) ->
                    { Hft_gate.Fault.node; pin; stuck })
                  t.ck_detects;
            })
        ck.Hft_robust.Checkpoint.tests;
      List.length ck.Hft_robust.Checkpoint.tests
  in
  let resumed_classes = ref 0 in
  let resolved =
    match restored with
    | None -> None
    | Some ck ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (c : Hft_robust.Checkpoint.cls) ->
          Hashtbl.replace tbl c.ck_rep c.ck_resolution)
        ck.Hft_robust.Checkpoint.classes;
      Some
        (fun rep ->
          match Hashtbl.find_opt tbl rep with
          | Some res ->
            incr resumed_classes;
            Some res
          | None -> None)
  in
  let on_resolved =
    match writer with
    | None -> None
    | Some w -> Some (fun ~rep res -> Hft_robust.Checkpoint.append_class w ~rep res)
  in
  let t0 = Hft_obs.Clock.now () in
  let par_stats = ref None in
  let on_par_stats s = par_stats := Some s in
  let stats =
    match strategy with
    | Fast ->
      (* Static-analysis guidance rides only the fast strategy: the
         naive flow is the historical baseline and stays bit-identical
         regardless of [guided]. *)
      let guidance =
        if guided then Some Hft_analysis.Guidance.provide else None
      in
      Hft_scan.Partial_scan.atpg ~backtrack_limit ~max_frames
        ~strategy:Hft_gate.Seq_atpg.Drop ~on_test ~supervisor ?resolved
        ?on_resolved ?guidance ~on_par_stats ?jobs nl ~faults ~scanned
    | Naive ->
      Hft_scan.Partial_scan.atpg ~backtrack_limit ~max_frames
        ~strategy:Hft_gate.Seq_atpg.Naive ~supervisor ~on_par_stats ?jobs nl
        ~faults ~scanned
  in
  let t_atpg = Hft_obs.Clock.now () -. t0 in
  let par =
    (* The engine always reports — degenerate sequential summary at
       jobs = 1 — so every campaign record carries utilization. *)
    match !par_stats with
    | Some s -> s
    | None ->
      Hft_par.Stats.sequential ~classes:0
        ~wall_ns:(int_of_float (t_atpg *. 1e9))
  in
  (* Publish the scheduler telemetry: counters and gauges into the
     registry (the hft.par series), one Shard_stats event onto the
     journal, and
     the summary onto the progress stream so the final snapshot's
     ["parallel"] object carries it.  All three are jobs-dependent by
     nature, so none participate in the engine bit-identity surfaces —
     the journal event in particular is recorded only here, never by
     the engines, so committed tapes stay identical across jobs. *)
  let open Hft_par.Stats in
  Hft_obs.Registry.incr "hft.par.tasks" ~by:par.s_tasks;
  Hft_obs.Registry.incr "hft.par.waves" ~by:par.s_waves;
  Hft_obs.Registry.incr "hft.par.steals" ~by:(steals par);
  Hft_obs.Registry.incr "hft.par.spec_hits" ~by:(spec_hits par);
  Hft_obs.Registry.incr "hft.par.spec_misses" ~by:(spec_misses par);
  Hft_obs.Registry.incr "hft.par.inline_recomputes" ~by:(inline par);
  Hft_obs.Registry.set "hft.par.jobs" (float_of_int par.s_jobs);
  Hft_obs.Registry.set "hft.par.utilization" (utilization par);
  Hft_obs.Registry.set "hft.par.occupancy" (occupancy par);
  Array.iter
    (fun w ->
      Hft_obs.Registry.observe "hft.par.worker_busy_s"
        (float_of_int w.w_busy_ns /. 1e9))
    par.s_workers;
  Hft_obs.Journal.record
    (Hft_obs.Journal.Shard_stats
       {
         jobs = par.s_jobs;
         waves = par.s_waves;
         tasks = par.s_tasks;
         steals = steals par;
         spec_hits = spec_hits par;
         spec_misses = spec_misses par;
         inline = inline par;
         utilization = utilization par;
       });
  Hft_obs.Progress.set_parallel (Some (to_json par));
  (* Final coverage fault simulation.  Fast: replay the ATPG-derived
     patterns (plus random fill) through the scan view — the scan cells
     are pattern-loaded pseudo PIs and their D inputs observed — so
     faults the campaign proved detectable show up as detected here.
     Naive: the historical pure-random, non-scan simulation (DFF state
     stuck at 0), kept for comparison. *)
  let t1 = Hft_obs.Clock.now () in
  (* Final-coverage degrade chain (supervised runs only): cone-limited
     pass, then a naive (full-resimulation) retry, then an empty result
     — a broken measurement never sinks the campaign.  A failed
     multi-frame replay keeps the combinational result. *)
  let degraded action =
    Hft_obs.Journal.record (Hft_obs.Journal.Degraded { site = "fsim"; action });
    Hft_obs.Registry.incr "hft.robust.degraded"
  in
  let protected_fsim ~primary ~fallback f =
    match supervisor with
    | None -> f primary
    | Some _ ->
      (match
         Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Fsim (fun () ->
             f primary)
       with
       | Ok fr -> fr
       | Error _ when primary = Hft_gate.Fsim.Cone ->
         degraded "final-fsim-naive-retry";
         (match
            Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Fsim
              (fun () -> f Hft_gate.Fsim.Naive)
          with
          | Ok fr -> fr
          | Error _ ->
            degraded "final-fsim-empty";
            fallback ())
       | Error _ ->
         degraded "final-fsim-empty";
         fallback ())
  in
  let fr =
    match strategy with
    | Fast ->
      let patterns =
        Pattern_store.padded store ~rng ~n_min:n_patterns
          ~width:(n_pi + n_scan)
      in
      let fr =
        protected_fsim ~primary:Hft_gate.Fsim.Cone
          ~fallback:(fun () ->
            { Hft_gate.Fsim.detected = []; undetected = faults;
              n_patterns = Array.length patterns })
          (fun strategy ->
            Hft_gate.Fsim.comb_scan ~strategy nl ~scanned ~patterns faults)
      in
      (* Faults only the multi-frame tests reach: replay those tests on
         the unrolled circuit against the leftovers and merge. *)
      (match (!seq_tests, fr.Hft_gate.Fsim.undetected) with
       | [], _ | _, [] -> fr
       | tests, leftovers ->
         let replay_leg () =
           Hft_gate.Seq_atpg.replay nl ~scanned ~tests leftovers
         in
         let merge (det, undet) =
           {
             fr with
             Hft_gate.Fsim.detected = fr.Hft_gate.Fsim.detected @ det;
             undetected = undet;
           }
         in
         (match supervisor with
          | None -> merge (replay_leg ())
          | Some _ ->
            (match
               Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Fsim
                 replay_leg
             with
             | Ok r -> merge r
             | Error _ ->
               degraded "seq-replay-skipped";
               fr)))
    | Naive ->
      protected_fsim ~primary:Hft_gate.Fsim.Naive
        ~fallback:(fun () ->
          { Hft_gate.Fsim.detected = []; undetected = faults; n_patterns })
        (fun strategy ->
          Hft_gate.Fsim.comb_random ~strategy nl ~rng ~n_patterns faults)
  in
  let t_fsim = Hft_obs.Clock.now () -. t1 in
  Hft_obs.Progress.campaign_end ();
  {
    c_netlist = nl;
    c_faults = faults;
    c_scanned = scanned;
    c_atpg = stats;
    c_fsim = fr;
    c_patterns_stored = Pattern_store.size store;
    c_resumed_classes = !resumed_classes;
    c_resumed_tests = resumed_tests;
    c_t_atpg = t_atpg;
    c_t_fsim = t_fsim;
    c_par = par;
  }

let report_header =
  [ "flow"; "regs"; "scan"; "test-regs"; "cbilbo"; "loops"; "self-loops";
    "depth"; "area-ovh"; "sessions" ]

let report_row r =
  [
    r.flow;
    string_of_int r.n_registers;
    string_of_int r.n_scan_registers;
    string_of_int r.n_test_registers;
    string_of_int r.n_cbilbo;
    string_of_int r.datapath_loops;
    string_of_int r.self_loops;
    (match r.sequential_depth with None -> "inf" | Some d -> string_of_int d);
    Hft_util.Pretty.pct r.area_overhead;
    string_of_int r.test_sessions;
  ]
