type t = { mutable rows : bool array list; mutable n : int }

let create () = { rows = []; n = 0 }

let add t row =
  t.rows <- row :: t.rows;
  t.n <- t.n + 1

let size t = t.n

let patterns t = Array.of_list (List.rev t.rows)

let fit width row =
  if Array.length row = width then row
  else begin
    let out = Array.make width false in
    Array.blit row 0 out 0 (min width (Array.length row));
    out
  end

let padded t ~rng ~n_min ~width =
  let stored = List.rev_map (fit width) t.rows in
  let fill = max 0 (n_min - t.n) in
  let random =
    List.init fill (fun _ -> Array.init width (fun _ -> Hft_util.Rng.bool rng))
  in
  Array.of_list (stored @ random)
