(** One-call synthesis-for-testability flows.

    Each flow takes a behaviour and a resource budget and returns a
    complete data path plus a uniform DFT report — these are the entry
    points the examples and the CLI use. *)

open Hft_cdfg

type dft_report = {
  flow : string;
  n_registers : int;
  n_scan_registers : int;
  n_test_registers : int;       (** BIST roles of any kind *)
  n_cbilbo : int;
  datapath_loops : int;         (** non-self loops in the S-graph *)
  self_loops : int;
  sequential_depth : int option;
  area_overhead : float;        (** vs the conventional flow's area *)
  test_sessions : int;          (** BIST flows; 0 otherwise *)
}

type result = {
  graph : Graph.t;
  sched : Schedule.t;
  binding : Hft_hls.Fu_bind.t;
  alloc : Hft_hls.Reg_alloc.t;
  datapath : Hft_rtl.Datapath.t;
  report : dft_report;
}

val default_resources : (Op.fu_class * int) list

(** Plain cost-driven synthesis; the baseline all reports are measured
    against. *)
val synthesize_conventional :
  ?width:int -> ?resources:(Op.fu_class * int) list -> Graph.t -> result

(** Loop-aware synthesis for partial scan: scan-variable selection
    (Potkonjak–Dey–Roy), loop-avoiding binding, scan annotation; the
    resulting S-graph is loop-free modulo self-loops. *)
val synthesize_for_partial_scan :
  ?width:int -> ?resources:(Op.fu_class * int) list -> Graph.t -> result

(** BIST-oriented synthesis: self-adjacency-avoiding assignment plus a
    BILBO role plan and session schedule. *)
val synthesize_for_bist :
  ?width:int -> ?resources:(Op.fu_class * int) list -> Graph.t -> result

(** {1 Uniform flow dispatch}

    One name per flow, so callers (the CLI, the lint driver, tests)
    can select a flow by string without enumerating the entry points. *)

type flow_kind = Conventional | Partial_scan | Bist

val flow_kinds : (string * flow_kind) list
val flow_kind_to_string : flow_kind -> string
val flow_kind_of_string : string -> flow_kind option

val synthesize :
  ?width:int -> ?resources:(Op.fu_class * int) list -> flow_kind -> Graph.t ->
  result

val report_header : string list
val report_row : dft_report -> string list

(** {1 Gate-level test campaign}

    The uniform post-synthesis sequence: expand the data path to gates,
    sample the collapsed fault list, run (partial-scan) sequential ATPG,
    then measure final coverage by fault simulation.

    [Fast] (default) is the optimized pipeline — equivalence-class
    collapsing, fault dropping after every generated test, cone-limited
    fault simulation — and every ATPG test lands in a {!Pattern_store},
    so the final coverage run replays deterministic, fault-targeting
    patterns through the scan view ({!Hft_gate.Fsim.comb_scan}: scan
    cells pattern-loaded and observed) with random fill up to
    [n_patterns].  [Naive] reproduces the historical behaviour: one
    PODEM call per fault, full-resimulation fault simulation of
    [n_patterns] pure-random patterns with all DFFs stuck at 0 (which is
    why it reports near-zero coverage on register-dominated paths). *)

type atpg_strategy = Fast | Naive

type campaign = {
  c_netlist : Hft_gate.Netlist.t;
  c_faults : Hft_gate.Fault.t list;   (** the sampled fault list *)
  c_scanned : int list;               (** scan-cell DFF node ids *)
  c_atpg : Hft_gate.Seq_atpg.stats;
  c_fsim : Hft_gate.Fsim.comb_result;
  c_patterns_stored : int;            (** ATPG-derived pattern rows *)
  c_resumed_classes : int;            (** classes restored on resume *)
  c_resumed_tests : int;              (** tests restored on resume *)
  c_t_atpg : float;                   (** ATPG leg wall seconds *)
  c_t_fsim : float;                   (** fsim leg wall seconds *)
  c_par : Hft_par.Stats.t;
      (** scheduler telemetry for the ATPG leg — real per-worker
          measurements when [jobs > 1], the degenerate
          {!Hft_par.Stats.sequential} summary otherwise, so every
          campaign carries a utilization figure *)
}

(** [test_campaign r] — [sample] keeps one fault in N ([seed] fixes the
    sample), [backtrack_limit]/[max_frames] bound the PODEM search,
    [n_patterns] is the minimum final-fsim pattern count.

    [supervisor] (default {!Hft_robust.Supervisor.default}) runs the
    ATPG and every fault-simulation leg under the typed failure
    discipline; [~supervisor:None] restores the bare engines.

    [checkpoint] names an {!Hft_robust.Checkpoint} file ([hft-ckpt/1]
    JSONL): every generated test and class resolution is appended and
    flushed as the campaign runs.  With [resume] an existing file is
    loaded first — its fingerprint (flow, strategy, every search knob,
    fault/PI/scan counts) must match the current run exactly
    ({!Hft_robust.Validation.Invalid} otherwise) — restored tests are
    replayed into the pattern store and restored classes are never
    re-targeted, so an interrupted campaign continues bit-identically
    to an uninterrupted one.  Checkpointing needs observability enabled
    and the [Fast] strategy.

    [guided] (default [true], [Fast] strategy only) threads
    {!Hft_analysis.Guidance} into every PODEM call: static untestability
    proofs, mandatory-assignment seeding and SCOAP-ordered search.
    Per-fault verdicts are provably no worse than unguided (a guided
    abort falls back to the unguided search); [~guided:false] restores
    the historical search bit for bit.  The flag is part of the
    checkpoint fingerprint.

    [jobs] shards the ATPG phase over an OCaml 5 domain pool (see
    {!Hft_gate.Seq_atpg.run}).  Coverage, verdicts, tests and ledger
    waterfalls are bit-identical at any jobs count, so [jobs] is
    deliberately {e not} part of the checkpoint fingerprint: a campaign
    checkpointed at one jobs count resumes correctly at another.

    [campaign] labels this run in the [hft-progress/1] live-telemetry
    stream (default: the flow name).  When {!Hft_obs.Progress} is
    started the campaign is bracketed by a [campaign_started] event and
    a final snapshot; otherwise the bracket is a no-op.

    Scheduler telemetry ([c_par]) is additionally published once per
    campaign — [hft.par.*] registry series, one [Shard_stats] journal
    event, and the final progress snapshot's ["parallel"] object.  All
    of these are jobs-dependent summaries and sit outside the engine
    bit-identity surfaces. *)
val test_campaign :
  ?strategy:atpg_strategy -> ?backtrack_limit:int -> ?max_frames:int ->
  ?sample:int -> ?seed:int -> ?n_patterns:int ->
  ?supervisor:Hft_robust.Supervisor.policy option ->
  ?checkpoint:string -> ?resume:bool -> ?guided:bool -> ?jobs:int ->
  ?campaign:string ->
  result -> campaign
