(** One-call synthesis-for-testability flows.

    Each flow takes a behaviour and a resource budget and returns a
    complete data path plus a uniform DFT report — these are the entry
    points the examples and the CLI use. *)

open Hft_cdfg

type dft_report = {
  flow : string;
  n_registers : int;
  n_scan_registers : int;
  n_test_registers : int;       (** BIST roles of any kind *)
  n_cbilbo : int;
  datapath_loops : int;         (** non-self loops in the S-graph *)
  self_loops : int;
  sequential_depth : int option;
  area_overhead : float;        (** vs the conventional flow's area *)
  test_sessions : int;          (** BIST flows; 0 otherwise *)
}

type result = {
  graph : Graph.t;
  sched : Schedule.t;
  binding : Hft_hls.Fu_bind.t;
  alloc : Hft_hls.Reg_alloc.t;
  datapath : Hft_rtl.Datapath.t;
  report : dft_report;
}

val default_resources : (Op.fu_class * int) list

(** Plain cost-driven synthesis; the baseline all reports are measured
    against. *)
val synthesize_conventional :
  ?width:int -> ?resources:(Op.fu_class * int) list -> Graph.t -> result

(** Loop-aware synthesis for partial scan: scan-variable selection
    (Potkonjak–Dey–Roy), loop-avoiding binding, scan annotation; the
    resulting S-graph is loop-free modulo self-loops. *)
val synthesize_for_partial_scan :
  ?width:int -> ?resources:(Op.fu_class * int) list -> Graph.t -> result

(** BIST-oriented synthesis: self-adjacency-avoiding assignment plus a
    BILBO role plan and session schedule. *)
val synthesize_for_bist :
  ?width:int -> ?resources:(Op.fu_class * int) list -> Graph.t -> result

(** {1 Uniform flow dispatch}

    One name per flow, so callers (the CLI, the lint driver, tests)
    can select a flow by string without enumerating the entry points. *)

type flow_kind = Conventional | Partial_scan | Bist

val flow_kinds : (string * flow_kind) list
val flow_kind_to_string : flow_kind -> string
val flow_kind_of_string : string -> flow_kind option

val synthesize :
  ?width:int -> ?resources:(Op.fu_class * int) list -> flow_kind -> Graph.t ->
  result

val report_header : string list
val report_row : dft_report -> string list
