(** Accumulates the test patterns generated during a flow (deterministic
    ATPG tests, notably) so later stages — the final coverage fault
    simulation above all — replay them instead of relying on pure random
    patterns.  Rows are plain bit vectors; the producer fixes the column
    convention (here: PI values then scan-cell loads). *)

type t

val create : unit -> t

(** Append one pattern row (insertion order is preserved). *)
val add : t -> bool array -> unit

val size : t -> int

(** All stored rows, oldest first. *)
val patterns : t -> bool array array

(** [padded t ~rng ~n_min ~width] — the stored rows fitted to [width]
    columns (truncated / zero-padded), followed by uniform random rows
    up to a total of at least [n_min]. *)
val padded :
  t -> rng:Hft_util.Rng.t -> n_min:int -> width:int -> bool array array
