(** Typed lint findings.

    Every check in {!Rules} reports through this one type so the
    reporting layer ({!Report}) and the CLI exit-code policy treat all
    rules uniformly.  Codes are stable strings ([HFT-Lnnn]) documented
    in the README rule catalogue. *)

type severity = Error | Warning | Info

(** Where a finding points.  Register/FU ids refer to the linted
    {!Hft_rtl.Datapath}; net ids to the expanded {!Hft_gate.Netlist}. *)
type location =
  | Design                  (** whole-design finding *)
  | Register of int
  | Fu of int
  | Net of int
  | Loop of int list        (** S-graph register cycle *)

type t = {
  code : string;            (** e.g. ["HFT-L001"] *)
  severity : severity;
  loc : location;
  message : string;
}

val make : code:string -> severity:severity -> loc:location -> string -> t

val severity_to_string : severity -> string

(** Render a location with register/FU names resolved against the data
    path ([None]: raw ids). *)
val loc_to_string : ?datapath:Hft_rtl.Datapath.t -> location -> string

(** Sort key: errors first, then warnings, then info; ties broken by
    code then location (deterministic output). *)
val compare : t -> t -> int

val errors : t list -> t list
val has_errors : t list -> bool

(** ["2 errors, 1 warning, 3 info"] *)
val summary : t list -> string
