type severity = Error | Warning | Info

type location =
  | Design
  | Register of int
  | Fu of int
  | Net of int
  | Loop of int list

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
}

let make ~code ~severity ~loc message = { code; severity; loc; message }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let loc_to_string ?datapath loc =
  let reg_name r =
    match datapath with
    | Some d when r >= 0 && r < Hft_rtl.Datapath.n_regs d ->
      d.Hft_rtl.Datapath.regs.(r).Hft_rtl.Datapath.r_name
    | _ -> Printf.sprintf "r%d" r
  in
  match loc with
  | Design -> "design"
  | Register r -> reg_name r
  | Fu f ->
    (match datapath with
     | Some d when f >= 0 && f < Hft_rtl.Datapath.n_fus d ->
       d.Hft_rtl.Datapath.fus.(f).Hft_rtl.Datapath.f_name
     | _ -> Printf.sprintf "fu%d" f)
  | Net i -> Printf.sprintf "net%d" i
  | Loop regs -> String.concat ">" (List.map reg_name regs)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 ->
    (match String.compare a.code b.code with
     | 0 -> Stdlib.compare (a.loc, a.message) (b.loc, b.message)
     | c -> c)
  | c -> c

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = errors ds <> []

let summary ds =
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  Printf.sprintf "%s, %s, %d info"
    (part (count Error) "error")
    (part (count Warning) "warning")
    (count Info)
