(* SCOAP moved to Hft_analysis so the ATPG guidance layer can use it
   without depending on the linter; this re-export keeps the historical
   Hft_lint.Scoap API intact. *)
include Hft_analysis.Scoap
