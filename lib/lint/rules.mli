(** The lint rule catalogue.

    Each rule inspects one layer of a synthesized design and reports
    {!Diagnostic.t}s under a stable code:

    - [HFT-L001] (error): nontrivial S-graph assignment loop with no
      scanned or BIST member — the survey's Fig. 1 problem; sequential
      ATPG cost grows exponentially with such loops (§3.1).
    - [HFT-L002] (warning): register whose RTL control or observe range
      is unbounded or unattainable (De Micheli ranges, §4.1).
    - [HFT-L003] (error): combinational cycle in the gate netlist.
    - [HFT-L004] (warning): dangling net — a node whose output drives
      nothing (unobservable logic).
    - [HFT-L005] (error): scan-chain integrity violation — the chain
      over the scan registers is malformed or does not shift.
    - [HFT-L006] (error): a register's BIST kind cannot support the
      role(s) its functional-unit blocks demand — e.g. pattern
      generator and response compactor for the same block without a
      concurrent BILBO (§5.1, Parulkar–Gupta–Breuer condition).
    - [HFT-L007] (warning): net harder to control than the SCOAP
      threshold.
    - [HFT-L008] (warning): net harder to observe than the SCOAP
      threshold.
    - [HFT-L009] (warning): statically uncontrollable net — the SCOAP
      fixpoint saturates (CC0 or CC1 infinite), so no input assignment
      produces that value; stuck-at faults needing it are
      combinationally untestable.
    - [HFT-L010] (warning): statically unobservable net — CO saturates,
      so no sensitizable path reaches an output; every fault on the net
      is combinationally unobservable.  (Dangling nets stay HFT-L004.)

    Rules are individually callable (the tests do) and composed by
    {!all}; expensive inputs (gate expansion, SCOAP, S-graph) are
    shared lazily through the context. *)

type config = {
  cc_threshold : int;      (** HFT-L007 fires above this worst-case CC *)
  co_threshold : int;      (** HFT-L008 fires above this CO *)
  rtl_threshold : int;     (** HFT-L002 also fires when a bounded
                               min-range exceeds this many cycles *)
  max_loop_len : int;      (** S-graph loop enumeration bound *)
  max_loop_count : int;
  max_per_rule : int;      (** per-rule finding cap; the excess is
                               summarised in one info diagnostic *)
}

val default : config

type ctx = {
  datapath : Hft_rtl.Datapath.t;
  graph : Hft_cdfg.Graph.t option;
  sgraph : Hft_rtl.Sgraph.t lazy_t;
  expand : Hft_gate.Expand.t lazy_t;  (** shared read-only expansion *)
  scoap : Scoap.t lazy_t;
}

val ctx : ?graph:Hft_cdfg.Graph.t -> Hft_rtl.Datapath.t -> ctx

(** Registers counting as direct test access points (scan or BIST). *)
val access_regs : Hft_rtl.Datapath.t -> int list

(** Combinational SCCs of a netlist (DFF fanins are sequential edges);
    the structural core of [HFT-L003], usable on bare netlists. *)
val comb_cycles : Hft_gate.Netlist.t -> int list list

(** Nets driving nothing (non-[Po], non-constant); core of [HFT-L004]. *)
val dangling_nets : Hft_gate.Netlist.t -> int list

(** Logic nets with a saturated CC0 or CC1; core of [HFT-L009]. *)
val uncontrollable_nets : Hft_gate.Netlist.t -> Scoap.t -> int list

(** Driven logic nets with a saturated CO; core of [HFT-L010]. *)
val unobservable_nets : Hft_gate.Netlist.t -> Scoap.t -> int list

val l001_assignment_loops : config -> ctx -> Diagnostic.t list
val l002_rtl_ranges : config -> ctx -> Diagnostic.t list
val l003_comb_cycles : config -> ctx -> Diagnostic.t list
val l004_dangling_nets : config -> ctx -> Diagnostic.t list
val l005_scan_chain : config -> ctx -> Diagnostic.t list
val l006_bist_roles : config -> ctx -> Diagnostic.t list
val l007_hard_control : config -> ctx -> Diagnostic.t list
val l008_hard_observe : config -> ctx -> Diagnostic.t list
val l009_uncontrollable : config -> ctx -> Diagnostic.t list
val l010_unobservable : config -> ctx -> Diagnostic.t list

(** Every rule, with the per-rule cap applied; unsorted. *)
val all : config -> ctx -> Diagnostic.t list
