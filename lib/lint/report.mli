(** Rendering of lint results: fixed-width table for humans, JSON for
    machines (the CI smoke test and any downstream tooling parse the
    latter with {!Hft_util.Json}). *)

(** Table of findings (sorted: errors first) plus a summary line. *)
val to_table : ?datapath:Hft_rtl.Datapath.t -> Diagnostic.t list -> string

(** Machine-readable report.  [meta] fields (e.g. bench and flow names)
    are prepended to the toplevel object:

    {v
    { "design": ..., "summary": {"errors": n, "warnings": n, "info": n},
      "diagnostics": [ {"code", "severity", "location", "message"} ] }
    v} *)
val to_json :
  ?meta:(string * Hft_util.Json.t) list ->
  ?datapath:Hft_rtl.Datapath.t ->
  Diagnostic.t list ->
  Hft_util.Json.t
