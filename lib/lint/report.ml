open Hft_util

let sorted ds = List.stable_sort Diagnostic.compare ds

let to_table ?datapath ds =
  let ds = sorted ds in
  let rows =
    List.map
      (fun (d : Diagnostic.t) ->
        [ d.Diagnostic.code;
          Diagnostic.severity_to_string d.Diagnostic.severity;
          Diagnostic.loc_to_string ?datapath d.Diagnostic.loc;
          d.Diagnostic.message ])
      ds
  in
  let table =
    if rows = [] then "no findings\n"
    else
      Pretty.render
        ~aligns:[ Pretty.Left; Pretty.Left; Pretty.Left; Pretty.Left ]
        ~header:[ "code"; "severity"; "location"; "message" ]
        rows
  in
  table ^ Diagnostic.summary ds ^ "\n"

let count sev ds =
  List.length (List.filter (fun d -> d.Diagnostic.severity = sev) ds)

let to_json ?(meta = []) ?datapath ds =
  let ds = sorted ds in
  let design =
    match datapath with
    | Some d -> Json.String d.Hft_rtl.Datapath.name
    | None -> Json.Null
  in
  Json.Obj
    (meta
    @ [
        ("design", design);
        ( "summary",
          Json.Obj
            [
              ("errors", Json.Int (count Diagnostic.Error ds));
              ("warnings", Json.Int (count Diagnostic.Warning ds));
              ("info", Json.Int (count Diagnostic.Info ds));
            ] );
        ( "diagnostics",
          Json.List
            (List.map
               (fun (d : Diagnostic.t) ->
                 Json.Obj
                   [
                     ("code", Json.String d.Diagnostic.code);
                     ( "severity",
                       Json.String
                         (Diagnostic.severity_to_string d.Diagnostic.severity)
                     );
                     ( "location",
                       Json.String
                         (Diagnostic.loc_to_string ?datapath d.Diagnostic.loc)
                     );
                     ("message", Json.String d.Diagnostic.message);
                   ])
               ds) );
      ])
