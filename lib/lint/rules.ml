open Hft_rtl
open Hft_gate

type config = {
  cc_threshold : int;
  co_threshold : int;
  rtl_threshold : int;
  max_loop_len : int;
  max_loop_count : int;
  max_per_rule : int;
}

let default =
  {
    cc_threshold = 250;
    co_threshold = 500;
    rtl_threshold = 8;
    max_loop_len = 8;
    max_loop_count = 64;
    max_per_rule = 20;
  }

type ctx = {
  datapath : Datapath.t;
  graph : Hft_cdfg.Graph.t option;
  sgraph : Sgraph.t lazy_t;
  expand : Expand.t lazy_t;
  scoap : Scoap.t lazy_t;
}

let ctx ?graph datapath =
  let sgraph = lazy (Sgraph.of_datapath datapath) in
  let expand = lazy (Expand.of_datapath datapath) in
  let scoap =
    lazy (Scoap.analyze (Lazy.force expand).Expand.netlist)
  in
  { datapath; graph; sgraph; expand; scoap }

let reg_kind d r = d.Datapath.regs.(r).Datapath.r_kind

let reg_name d r = d.Datapath.regs.(r).Datapath.r_name

(* Scan and BIST registers alike give the tester a direct handle on
   the state they hold, so either breaks an assignment loop for test
   purposes. *)
let is_access_kind = function
  | Datapath.Scan | Datapath.Transparent_scan | Datapath.Tpgr | Datapath.Sr
  | Datapath.Bilbo | Datapath.Cbilbo -> true
  | Datapath.Plain -> false

let access_regs d =
  List.init (Datapath.n_regs d) Fun.id
  |> List.filter (fun r -> is_access_kind (reg_kind d r))

let scanned_regs d =
  List.init (Datapath.n_regs d) Fun.id
  |> List.filter (fun r ->
         match reg_kind d r with
         | Datapath.Scan | Datapath.Transparent_scan -> true
         | _ -> false)

(* ------------------------------------------------------------------ *)
(* HFT-L001: assignment loops without a test access point             *)
(* ------------------------------------------------------------------ *)

let l001_assignment_loops cfg ctx =
  let d = ctx.datapath in
  let s = Lazy.force ctx.sgraph in
  let loops =
    Sgraph.nontrivial_loops ~max_len:cfg.max_loop_len
      ~max_count:cfg.max_loop_count s
  in
  let unbroken =
    List.filter
      (fun l -> not (List.exists (fun r -> is_access_kind (reg_kind d r)) l))
      loops
  in
  (* Suggest breakers: a feedback set of the unbroken part of the graph. *)
  let suggestion =
    lazy
      (let g' = Hft_util.Digraph.copy s.Sgraph.graph in
       List.iter (fun r -> Hft_util.Digraph.detach g' r) (access_regs d);
       Hft_util.Mfvs.greedy ~ignore_self_loops:true g')
  in
  List.map
    (fun l ->
      let break_with =
        match List.filter (fun r -> List.mem r l) (Lazy.force suggestion) with
        | r :: _ -> r
        | [] -> List.hd l
      in
      Diagnostic.make ~code:"HFT-L001" ~severity:Diagnostic.Error
        ~loc:(Diagnostic.Loop l)
        (Printf.sprintf
           "assignment loop %s has no scanned or BIST register; scanning %s \
            would break it"
           (String.concat " -> " (List.map (reg_name d) l))
           (reg_name d break_with)))
    unbroken

(* ------------------------------------------------------------------ *)
(* HFT-L002: unbounded / unattainable RTL control and observe ranges  *)
(* ------------------------------------------------------------------ *)

let l002_rtl_ranges cfg ctx =
  let d = ctx.datapath in
  let s = Lazy.force ctx.sgraph in
  let scanned = scanned_regs d in
  let reports = Testability.analyze ~scanned s in
  List.filter_map
    (fun (r : Testability.node_report) ->
      if List.mem r.Testability.reg scanned then None
      else
        let describe what (rg : Testability.range) =
          match (rg.Testability.min_cycles, rg.Testability.max_cycles) with
          | None, _ -> Some (Printf.sprintf "cannot be %sed" what)
          | Some m, _ when m > cfg.rtl_threshold ->
            Some (Printf.sprintf "needs %d cycles to %s" m what)
          | _, None -> Some (Printf.sprintf "unbounded %s range" what)
          | Some _, Some _ -> None
        in
        let parts =
          List.filter_map Fun.id
            [ describe "control" r.Testability.control;
              describe "observe" r.Testability.observe ]
        in
        if parts = [] then None
        else
          Some
            (Diagnostic.make ~code:"HFT-L002" ~severity:Diagnostic.Warning
               ~loc:(Diagnostic.Register r.Testability.reg)
               (Printf.sprintf "register %s: %s"
                  (reg_name d r.Testability.reg)
                  (String.concat "; " parts))))
    reports

(* ------------------------------------------------------------------ *)
(* HFT-L003: combinational cycles in the gate netlist                 *)
(* ------------------------------------------------------------------ *)

let comb_cycles nl =
  let n = Netlist.n_nodes nl in
  let g = Hft_util.Digraph.create n in
  for v = 0 to n - 1 do
    (* DFF fanin is a sequential edge; everything else combinational. *)
    if Netlist.kind nl v <> Netlist.Dff then
      Array.iter (fun f -> Hft_util.Digraph.add_edge g f v) (Netlist.fanin nl v)
  done;
  let members = Hft_util.Digraph.scc_members g in
  Array.to_list members
  |> List.filter_map (fun vs ->
         match vs with
         | [] | [ _ ] ->
           (* [add] forbids forward refs, so a 1-node comb cycle would
              need a self-edge via [set_fanin]; check anyway. *)
           (match vs with
            | [ v ] when Hft_util.Digraph.mem_edge g v v -> Some [ v ]
            | _ -> None)
         | vs -> Some vs)

let l003_comb_cycles _cfg ctx =
  let nl = (Lazy.force ctx.expand).Expand.netlist in
  List.map
    (fun vs ->
      let names =
        List.map (fun v -> Netlist.node_name nl v) vs |> String.concat ", "
      in
      Diagnostic.make ~code:"HFT-L003" ~severity:Diagnostic.Error
        ~loc:(Diagnostic.Net (List.hd vs))
        (Printf.sprintf "combinational cycle through %d nets (%s)"
           (List.length vs) names))
    (comb_cycles nl)

(* ------------------------------------------------------------------ *)
(* HFT-L004: dangling nets                                            *)
(* ------------------------------------------------------------------ *)

let dangling_nets nl =
  let acc = ref [] in
  for v = Netlist.n_nodes nl - 1 downto 0 do
    (* Constants are wiring stock, not logic; an unused one is noise. *)
    let exempt =
      match Netlist.kind nl v with
      | Netlist.Po | Netlist.Const0 | Netlist.Const1 -> true
      | _ -> false
    in
    if (not exempt) && Netlist.fanout nl v = [] then acc := v :: !acc
  done;
  !acc

let l004_dangling_nets _cfg ctx =
  let nl = (Lazy.force ctx.expand).Expand.netlist in
  List.map
    (fun v ->
      Diagnostic.make ~code:"HFT-L004" ~severity:Diagnostic.Warning
        ~loc:(Diagnostic.Net v)
        (Printf.sprintf "net %s drives nothing (unobservable logic)"
           (Netlist.node_name nl v)))
    (dangling_nets nl)

(* ------------------------------------------------------------------ *)
(* HFT-L005: scan-chain integrity                                     *)
(* ------------------------------------------------------------------ *)

let l005_scan_chain _cfg ctx =
  let d = ctx.datapath in
  let scan_regs =
    List.filter (fun r -> reg_kind d r = Datapath.Scan)
      (List.init (Datapath.n_regs d) Fun.id)
  in
  if scan_regs = [] then []
  else begin
    (* Fresh expansion: chain insertion rewires the netlist in place
       and must not disturb the shared one. *)
    let ex = Expand.of_datapath d in
    let bad_width =
      List.filter_map
        (fun r ->
          let bits = Array.length ex.Expand.reg_q.(r) in
          if bits <> d.Datapath.width then
            Some
              (Diagnostic.make ~code:"HFT-L005" ~severity:Diagnostic.Error
                 ~loc:(Diagnostic.Register r)
                 (Printf.sprintf
                    "scan register %s expands to %d cells, expected %d"
                    (reg_name d r) bits d.Datapath.width))
          else None)
        scan_regs
    in
    if bad_width <> [] then bad_width
    else
      let cells =
        List.concat_map (fun r -> Array.to_list ex.Expand.reg_q.(r)) scan_regs
      in
      match
        let chain = Hft_scan.Chain.insert ex.Expand.netlist cells in
        Hft_scan.Chain.verify_shift chain
      with
      | true -> []
      | false ->
        [ Diagnostic.make ~code:"HFT-L005" ~severity:Diagnostic.Error
            ~loc:Diagnostic.Design
            (Printf.sprintf
               "scan chain over %d cells (%d registers) does not shift \
                cleanly"
               (List.length cells) (List.length scan_regs)) ]
      | exception Invalid_argument msg ->
        [ Diagnostic.make ~code:"HFT-L005" ~severity:Diagnostic.Error
            ~loc:Diagnostic.Design
            (Printf.sprintf "scan chain could not be threaded: %s" msg) ]
  end

(* ------------------------------------------------------------------ *)
(* HFT-L006: BIST role capability                                     *)
(* ------------------------------------------------------------------ *)

let l006_bist_roles _cfg ctx =
  let d = ctx.datapath in
  let has_bist =
    List.exists
      (fun r ->
        match reg_kind d r with
        | Datapath.Tpgr | Datapath.Sr | Datapath.Bilbo | Datapath.Cbilbo ->
          true
        | _ -> false)
      (List.init (Datapath.n_regs d) Fun.id)
  in
  if not has_bist then []
  else begin
    let plan = Hft_bist.Bilbo.plan d in
    let capable required kind =
      match (required, kind) with
      | Hft_bist.Bilbo.R_none, _ -> true
      | _, Datapath.Cbilbo -> true
      | Hft_bist.Bilbo.R_cbilbo, _ -> false
      | Hft_bist.Bilbo.R_bilbo, Datapath.Bilbo -> true
      | Hft_bist.Bilbo.R_bilbo, _ -> false
      | Hft_bist.Bilbo.R_tpgr, (Datapath.Tpgr | Datapath.Bilbo) -> true
      | Hft_bist.Bilbo.R_sr, (Datapath.Sr | Datapath.Bilbo) -> true
      | (Hft_bist.Bilbo.R_tpgr | Hft_bist.Bilbo.R_sr), _ -> false
    in
    let role_text = function
      | Hft_bist.Bilbo.R_none -> "no role"
      | Hft_bist.Bilbo.R_tpgr -> "pattern generation"
      | Hft_bist.Bilbo.R_sr -> "response compaction"
      | Hft_bist.Bilbo.R_bilbo -> "pattern generation and response \
                                   compaction in different sessions"
      | Hft_bist.Bilbo.R_cbilbo -> "pattern generation and response \
                                    compaction for the same block"
    in
    List.filter_map
      (fun r ->
        let required = plan.Hft_bist.Bilbo.roles.(r) in
        if capable required (reg_kind d r) then None
        else
          Some
            (Diagnostic.make ~code:"HFT-L006" ~severity:Diagnostic.Error
               ~loc:(Diagnostic.Register r)
               (Printf.sprintf
                  "register %s (%s) must support %s; needs %s"
                  (reg_name d r)
                  (Datapath.reg_kind_to_string (reg_kind d r))
                  (role_text required)
                  (match required with
                   | Hft_bist.Bilbo.R_cbilbo -> "a concurrent BILBO"
                   | Hft_bist.Bilbo.R_bilbo -> "a reconfigurable BILBO"
                   | _ -> "a BIST-capable register"))))
      (List.init (Datapath.n_regs d) Fun.id)
  end

(* ------------------------------------------------------------------ *)
(* HFT-L007 / L008: SCOAP threshold checks                            *)
(* ------------------------------------------------------------------ *)

let is_logic nl v =
  match Netlist.kind nl v with
  | Netlist.Pi | Netlist.Po | Netlist.Const0 | Netlist.Const1 -> false
  | _ -> true

let l007_hard_control cfg ctx =
  let nl = (Lazy.force ctx.expand).Expand.netlist in
  let m = Lazy.force ctx.scoap in
  let acc = ref [] in
  for v = Netlist.n_nodes nl - 1 downto 0 do
    if is_logic nl v && Scoap.worst_cc m v > cfg.cc_threshold then
      acc :=
        Diagnostic.make ~code:"HFT-L007" ~severity:Diagnostic.Warning
          ~loc:(Diagnostic.Net v)
          (Printf.sprintf "net %s is hard to control (%s, threshold %d)"
             (Netlist.node_name nl v) (Scoap.pp_node m v) cfg.cc_threshold)
        :: !acc
  done;
  !acc

let l008_hard_observe cfg ctx =
  let nl = (Lazy.force ctx.expand).Expand.netlist in
  let m = Lazy.force ctx.scoap in
  let acc = ref [] in
  for v = Netlist.n_nodes nl - 1 downto 0 do
    if is_logic nl v && m.Scoap.co.(v) > cfg.co_threshold then
      acc :=
        Diagnostic.make ~code:"HFT-L008" ~severity:Diagnostic.Warning
          ~loc:(Diagnostic.Net v)
          (Printf.sprintf "net %s is hard to observe (%s, threshold %d)"
             (Netlist.node_name nl v) (Scoap.pp_node m v) cfg.co_threshold)
        :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* HFT-L009 / L010: statically unattainable measures                   *)
(*                                                                     *)
(* A saturated SCOAP measure is qualitatively different from a large   *)
(* one: [infinite] means the fixpoint found NO input assignment that   *)
(* sets the value (controllability) or NO sensitized path to an        *)
(* output (observability) in the pure combinational view — every       *)
(* stuck-at fault on such a net is dead weight for a combinational     *)
(* tester.  These come from the shared {!Hft_analysis.Scoap} engine,   *)
(* the same measures the guided-ATPG layer orders its search by.       *)
(* ------------------------------------------------------------------ *)

let uncontrollable_nets nl m =
  let acc = ref [] in
  for v = Netlist.n_nodes nl - 1 downto 0 do
    if
      is_logic nl v
      && (Scoap.is_inf m.Scoap.cc0.(v) || Scoap.is_inf m.Scoap.cc1.(v))
    then acc := v :: !acc
  done;
  !acc

let unobservable_nets nl m =
  let acc = ref [] in
  for v = Netlist.n_nodes nl - 1 downto 0 do
    (* Dangling nets are already HFT-L004; only flag driven logic whose
       every path to an output is blocked. *)
    if is_logic nl v && Netlist.fanout nl v <> [] && Scoap.is_inf m.Scoap.co.(v)
    then acc := v :: !acc
  done;
  !acc

let l009_uncontrollable _cfg ctx =
  let nl = (Lazy.force ctx.expand).Expand.netlist in
  let m = Lazy.force ctx.scoap in
  List.map
    (fun v ->
      let which =
        match
          (Scoap.is_inf m.Scoap.cc0.(v), Scoap.is_inf m.Scoap.cc1.(v))
        with
        | true, true -> "either value"
        | true, false -> "0"
        | _ -> "1"
      in
      Diagnostic.make ~code:"HFT-L009" ~severity:Diagnostic.Warning
        ~loc:(Diagnostic.Net v)
        (Printf.sprintf
           "net %s cannot be set to %s from the inputs (SCOAP CC infinite); \
            stuck-at faults needing that value are combinationally untestable"
           (Netlist.node_name nl v) which))
    (uncontrollable_nets nl m)

let l010_unobservable _cfg ctx =
  let nl = (Lazy.force ctx.expand).Expand.netlist in
  let m = Lazy.force ctx.scoap in
  List.map
    (fun v ->
      Diagnostic.make ~code:"HFT-L010" ~severity:Diagnostic.Warning
        ~loc:(Diagnostic.Net v)
        (Printf.sprintf
           "net %s has no sensitizable path to any output (SCOAP CO \
            infinite); every fault on it is combinationally unobservable"
           (Netlist.node_name nl v)))
    (unobservable_nets nl m)

(* ------------------------------------------------------------------ *)

let cap cfg code ds =
  let n = List.length ds in
  if n <= cfg.max_per_rule then ds
  else
    let kept = List.filteri (fun i _ -> i < cfg.max_per_rule) ds in
    kept
    @ [ Diagnostic.make ~code ~severity:Diagnostic.Info ~loc:Diagnostic.Design
          (Printf.sprintf "%d further %s findings suppressed"
             (n - cfg.max_per_rule) code) ]

let all cfg ctx =
  List.concat
    [
      cap cfg "HFT-L001" (l001_assignment_loops cfg ctx);
      cap cfg "HFT-L002" (l002_rtl_ranges cfg ctx);
      cap cfg "HFT-L003" (l003_comb_cycles cfg ctx);
      cap cfg "HFT-L004" (l004_dangling_nets cfg ctx);
      cap cfg "HFT-L005" (l005_scan_chain cfg ctx);
      cap cfg "HFT-L006" (l006_bist_roles cfg ctx);
      cap cfg "HFT-L007" (l007_hard_control cfg ctx);
      cap cfg "HFT-L008" (l008_hard_observe cfg ctx);
      cap cfg "HFT-L009" (l009_uncontrollable cfg ctx);
      cap cfg "HFT-L010" (l010_unobservable cfg ctx);
    ]
