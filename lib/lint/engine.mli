(** One-call lint drivers.

    The engine runs the whole {!Rules} catalogue over a synthesized
    design and returns sorted diagnostics; the CLI's [hft lint] and the
    test-suite oracle ("synthesize, then lint must come back clean")
    both enter here. *)

(** Lint a bare data path (e.g. the Fig. 1 bindings, which have no full
    flow result); [graph] enables behavioural context where a rule can
    use it. *)
val lint_datapath :
  ?config:Rules.config ->
  ?graph:Hft_cdfg.Graph.t ->
  Hft_rtl.Datapath.t ->
  Diagnostic.t list

(** Lint a complete flow result. *)
val lint_flow :
  ?config:Rules.config -> Hft_core.Flow.result -> Diagnostic.t list

(** Run the catalogue on a prepared context (sorted output). *)
val run : ?config:Rules.config -> Rules.ctx -> Diagnostic.t list

(** [true] when the design has no error-severity findings. *)
val clean : Diagnostic.t list -> bool
