(** SCOAP testability metrics — re-export of {!Hft_analysis.Scoap},
    which holds the implementation (the ATPG guidance layer consumes it
    from there); see that module for the full rule set.  The type
    equation keeps existing [Hft_lint.Scoap] consumers source-
    compatible. *)

type t = Hft_analysis.Scoap.t = {
  cc0 : int array;  (** combinational 0-controllability, per node *)
  cc1 : int array;  (** combinational 1-controllability *)
  co : int array;   (** combinational observability *)
  sc0 : int array;  (** sequential 0-controllability *)
  sc1 : int array;  (** sequential 1-controllability *)
  so : int array;   (** sequential observability *)
}

(** Saturation value: any measure [>= infinite] means unattainable. *)
val infinite : int

val is_inf : int -> bool

val analyze : Hft_gate.Netlist.t -> t

(** [max(cc0, cc1)] — the usual "hard to control" scalar. *)
val worst_cc : t -> int -> int

(** One-line rendering of a node's six measures (for reports). *)
val pp_node : t -> int -> string
