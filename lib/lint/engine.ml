let run ?(config = Rules.default) ctx =
  List.stable_sort Diagnostic.compare (Rules.all config ctx)

let lint_datapath ?config ?graph d = run ?config (Rules.ctx ?graph d)

let lint_flow ?config (r : Hft_core.Flow.result) =
  run ?config (Rules.ctx ~graph:r.Hft_core.Flow.graph r.Hft_core.Flow.datapath)

let clean ds = not (Diagnostic.has_errors ds)
