open Hft_gate

let select_gate_level nl =
  let s = Gsgraph.of_netlist nl in
  Gsgraph.scan_selection s

let select_rtl_level d ex =
  let s = Hft_rtl.Sgraph.of_datapath d in
  let regs = Hft_rtl.Sgraph.scan_selection s in
  List.concat_map (fun r -> Array.to_list ex.Expand.reg_q.(r)) regs

let annotate_rtl d regs =
  Hft_obs.Registry.incr "hft.scan.regs_annotated" ~by:(List.length regs);
  List.iter
    (fun r ->
      d.Hft_rtl.Datapath.regs.(r).Hft_rtl.Datapath.r_kind <-
        Hft_rtl.Datapath.Scan)
    regs

let atpg ?backtrack_limit ?max_frames ?strategy ?on_test ?supervisor ?resolved
    ?on_resolved ?guidance ?on_par_stats ?jobs nl ~faults ~scanned =
  Hft_obs.Span.with_ "partial-scan-atpg" @@ fun () ->
  Seq_atpg.run ?backtrack_limit ?max_frames ?strategy ?on_test ?supervisor
    ?resolved ?on_resolved ?guidance ?on_par_stats ?jobs nl ~faults ~scanned
