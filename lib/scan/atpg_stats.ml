type t = {
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
  decisions : int;
  backtracks : int;
  implications : int;
}

let empty =
  { detected = 0; untestable = 0; aborted = 0; total = 0; decisions = 0;
    backtracks = 0; implications = 0 }

let add_outcome ?(n = 1) t result (e : Hft_gate.Podem.effort) =
  (* [n > 1] when the outcome covers a whole equivalence class: the
     search effort was spent once, but the verdict holds for each
     member. *)
  let t =
    {
      t with
      total = t.total + n;
      decisions = t.decisions + e.Hft_gate.Podem.decisions;
      backtracks = t.backtracks + e.Hft_gate.Podem.backtracks;
      implications = t.implications + e.Hft_gate.Podem.implications;
    }
  in
  match result with
  | Hft_gate.Podem.Test _ -> { t with detected = t.detected + n }
  | Hft_gate.Podem.Untestable -> { t with untestable = t.untestable + n }
  | Hft_gate.Podem.Aborted -> { t with aborted = t.aborted + n }

let add_detected t ~n =
  { t with total = t.total + n; detected = t.detected + n }

let coverage t =
  if t.total = 0 then 1.0 else float_of_int t.detected /. float_of_int t.total

let efficiency t =
  if t.total = 0 then 1.0
  else float_of_int (t.detected + t.untestable) /. float_of_int t.total

let header =
  [ "faults"; "det"; "unt"; "abo"; "cov"; "eff"; "decisions"; "backtracks" ]

let to_row t =
  [ string_of_int t.total; string_of_int t.detected;
    string_of_int t.untestable; string_of_int t.aborted;
    Hft_util.Pretty.pct (coverage t); Hft_util.Pretty.pct (efficiency t);
    string_of_int t.decisions; string_of_int t.backtracks ]
