open Hft_gate

type result = {
  chain : Chain.t;
  tests : (int * bool) list list;
  stats : Atpg_stats.t;
}

(* Full scan makes every DFF a pseudo primary input (scan load) and its
   D input a pseudo primary output (scan capture), so ATPG and fault
   dropping are purely combinational.  With every source concretely
   assigned (PODEM's X positions filled with 0), a two-valued detection
   check is exact — no three-valued confirmation needed, unlike the
   sequential case in {!Hft_gate.Seq_atpg}. *)
let atpg ?(backtrack_limit = 500) ?(strategy = Seq_atpg.Drop)
    ?(supervisor = Some Hft_robust.Supervisor.default) ?guidance
    ?on_par_stats ?(jobs = 1) nl ~faults =
  let jobs = Hft_par.clamp_jobs jobs in
  let t_start = Hft_obs.Clock.now () in
  Hft_obs.Span.with_ "full-scan-atpg"
    ~attrs:[ ("faults", string_of_int (List.length faults)) ]
  @@ fun () ->
  let dffs = Netlist.dffs nl in
  let assignable = Netlist.pis nl @ dffs in
  let observe =
    Netlist.pos nl @ List.map (fun d -> (Netlist.fanin nl d).(0)) dffs
  in
  let naive_groups () = List.map (fun f -> (f, [ f ])) faults in
  let groups =
    match strategy with
    | Seq_atpg.Naive -> naive_groups ()
    | Seq_atpg.Drop ->
      let collapse () =
        let fc = Fault_collapse.compute nl in
        Fault_collapse.partition fc faults
      in
      (match supervisor with
       | None -> collapse ()
       | Some _ ->
         (match
            Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Collapse
              collapse
          with
          | Ok p -> p
          | Error _ ->
            Hft_obs.Journal.record
              (Hft_obs.Journal.Degraded
                 { site = "collapse"; action = "uncollapsed" });
            Hft_obs.Registry.incr "hft.robust.degraded";
            naive_groups ()))
  in
  let leaders = Array.of_list (List.map fst groups) in
  let members = Array.of_list (List.map snd groups) in
  let sizes = Array.of_list (List.map (fun (_, ms) -> List.length ms) groups) in
  let n_groups = Array.length leaders in
  let dropped = Array.make n_groups false in
  (* Forensics ledger rows, one per class ([-1] handles = no-ops when
     observability is off; see {!Hft_obs.Ledger}). *)
  let obs = !Hft_obs.Config.enabled in
  let lh =
    if obs then
      Array.init n_groups (fun gi ->
          Hft_obs.Ledger.register_class
            ~rep:(Fault.to_string nl leaders.(gi))
            ~members:(List.map (Fault.to_string nl) members.(gi)))
    else Array.make n_groups (-1)
  in
  let stats = ref Atpg_stats.empty in
  let tests = ref [] in
  (* One supervised PODEM call for one class on netlist [net] —
     identical search whether [net] is the shared netlist (sequential /
     commit path) or a per-domain {!Netlist.copy} workspace: node ids
     are positions, so faults, assignable and observe transfer
     verbatim and the result is the same. *)
  let podem_for net f =
    let gd =
      Option.map (fun provide -> provide net ~observe ~faults:[ f ]) guidance
    in
    match supervisor with
    | None ->
      Ok
        (Podem.generate ~backtrack_limit ?guidance:gd net ~faults:[ f ]
           ~assignable ~observe)
    | Some policy ->
      Hft_robust.Supervisor.ladder policy ~site:Hft_robust.Chaos.Podem
        ~budget:backtrack_limit (fun ~budget ~check ->
          Podem.generate ~backtrack_limit:budget ?check ?guidance:gd net
            ~faults:[ f ] ~assignable ~observe)
  in
  (* Commit one class in order.  [spec] is the speculated (outcome,
     telemetry tape) a worker evaluated for this class; replayed here it
     is bit-identical to computing inline, which is also the fallback
     (no speculation at [jobs = 1], dead shard, stale window). *)
  let process ?spec gi f =
      if dropped.(gi) then
        stats := Atpg_stats.add_detected !stats ~n:sizes.(gi)
      else begin
        if obs then
          Hft_obs.Journal.record
            (Hft_obs.Journal.Atpg_target
               { cls = lh.(gi); rep = Fault.to_string nl f; frames = 1 });
        let supervised =
          match spec with
          | Some (outcome, tape) ->
            Hft_obs.Capture.replay tape;
            outcome
          | None -> podem_for nl f
        in
        let r, e, abort_evidence =
          match supervised with
          | Ok (r, e) -> (r, e, (backtrack_limit, None))
          | Error fail ->
            (* Ladder exhausted: count the class as a plain PODEM abort
               (zero effort — the attempts died before reporting), with
               the failure as ledger evidence. *)
            let budget =
              match supervisor with
              | Some policy ->
                Hft_robust.Supervisor.final_budget policy
                  ~budget:backtrack_limit
              | None -> backtrack_limit
            in
            Hft_obs.Journal.record
              (Hft_obs.Journal.Degraded { site = "podem"; action = "abort" });
            Hft_obs.Registry.incr "hft.robust.degraded";
            ( Podem.Aborted,
              { Podem.decisions = 0; backtracks = 0; implications = 0;
                guided_cuts = 0; static_proof = false },
              (budget, Some (Hft_robust.Failure.to_string fail)) )
        in
        stats := Atpg_stats.add_outcome ~n:sizes.(gi) !stats r e;
        Hft_obs.Ledger.charge lh.(gi) ~implications:e.Podem.implications
          ~backtracks:e.Podem.backtracks ~guided_cuts:e.Podem.guided_cuts;
        if obs && e.Podem.static_proof then
          Hft_obs.Journal.record
            (Hft_obs.Journal.Static_untestable { cls = lh.(gi); frames = 1 });
        if obs then
          Hft_obs.Journal.record
            (Hft_obs.Journal.Podem_result
               { cls = lh.(gi);
                 outcome =
                   (match r with
                    | Podem.Test _ -> "test"
                    | Podem.Untestable -> "untestable"
                    | Podem.Aborted -> "aborted");
                 frames = 1;
                 backtracks = e.Podem.backtracks });
        match r with
        | Podem.Test assignment ->
          tests := assignment :: !tests;
          let tid = Hft_obs.Ledger.register_test ~frames:1 in
          if obs then
            Hft_obs.Journal.record
              (Hft_obs.Journal.Test_generated { test = tid; frames = 1 });
          Hft_obs.Ledger.resolve lh.(gi)
            (Hft_obs.Ledger.Podem_detected
               { test = tid; backtracks = e.Podem.backtracks; frames = 1 });
          if strategy = Seq_atpg.Drop then begin
            let pending = ref [] in
            for gj = n_groups - 1 downto gi + 1 do
              if not dropped.(gj) then pending := gj :: !pending
            done;
            match !pending with
            | [] -> ()
            | pending ->
              let parr = Array.of_list pending in
              let run_drop () =
                Fsim.detect_groups nl
                  ~on_group_events:(fun k ev ->
                    Hft_obs.Ledger.charge lh.(parr.(k)) ~fsim_events:ev)
                  ~assignment ~observe
                  (List.map (fun gj -> [ leaders.(gj) ]) pending)
              in
              let flags =
                match supervisor with
                | None -> run_drop ()
                | Some _ ->
                  (match
                     Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Fsim
                       run_drop
                   with
                   | Ok flags -> flags
                   | Error _ ->
                     (* Lose the sweep, keep the test. *)
                     Hft_obs.Journal.record
                       (Hft_obs.Journal.Degraded
                          { site = "fsim"; action = "drop-pass-skipped" });
                     Hft_obs.Registry.incr "hft.robust.degraded";
                     Array.make (List.length pending) false)
              in
              List.iteri
                (fun k gj ->
                  if flags.(k) then begin
                    dropped.(gj) <- true;
                    Hft_obs.Ledger.resolve lh.(gj)
                      (Hft_obs.Ledger.Drop_detected { test = tid });
                    if obs then
                      Hft_obs.Journal.record
                        (Hft_obs.Journal.Fault_dropped
                           { cls = lh.(gj); test = tid })
                  end)
                pending;
              Hft_obs.Registry.incr "hft.full_scan.dropped"
                ~by:
                  (List.fold_left
                     (fun acc gj -> if dropped.(gj) then acc + 1 else acc)
                     0 pending)
          end
        | Podem.Untestable ->
          Hft_obs.Ledger.resolve lh.(gi)
            (Hft_obs.Ledger.Proved_untestable { frames = 1 })
        | Podem.Aborted ->
          let budget, reason = abort_evidence in
          Hft_obs.Ledger.resolve lh.(gi)
            (Hft_obs.Ledger.Aborted { budget; frames = 1; reason })
      end
  in
  (* Parallel driver: windows of pending classes are PODEM-evaluated
     speculatively on per-domain {!Netlist.copy} workspaces, then every
     class of the chunk commits in order through [process] — including
     classes dropped meanwhile, whose speculation is discarded.  See
     {!Seq_atpg.run} for the determinism argument; the combinational
     engine is the same shape minus the frame ladder. *)
  let par_stats = ref None in
  let run_parallel pool =
    let stats_c =
      Option.map (fun _ -> Hft_par.Stats.collector ~jobs) on_par_stats
    in
    Hft_par.Pool.parallel pool ?stats:stats_c
      ~init:(fun () ->
        let c = Netlist.copy nl in
        ignore (Netlist.comb_order c);
        c)
    @@ fun section ->
    let win = 2 * jobs in
    let cursor = ref 0 in
    while !cursor < n_groups do
      let chunk_start = !cursor in
      let picked = ref [] in
      let count = ref 0 in
      let i = ref chunk_start in
      while !count < win && !i < n_groups do
        if not dropped.(!i) then begin
          picked := !i :: !picked;
          incr count
        end;
        incr i
      done;
      let chunk_end = !i in
      let window = Array.of_list (List.rev !picked) in
      let specs, fails =
        if Array.length window = 0 then ([||], [])
        else begin
          (match stats_c with
           | Some c ->
             Hft_par.Stats.note_window c ~filled:(Array.length window)
               ~cap:win
           | None -> ());
          section.run ~n:(Array.length window) ~f:(fun ws k ->
              Hft_obs.Capture.record (fun () ->
                  podem_for ws leaders.(window.(k))))
        end
      in
      List.iter
        (fun _fail ->
          Hft_obs.Journal.record
            (Hft_obs.Journal.Degraded
               { site = "shard"; action = "sequential-fallback" });
          Hft_obs.Registry.incr "hft.robust.degraded")
        fails;
      let spec_of = Array.make (chunk_end - chunk_start) None in
      let task_of = Array.make (chunk_end - chunk_start) (-1) in
      Array.iteri
        (fun k gi ->
          spec_of.(gi - chunk_start) <- specs.(k);
          task_of.(gi - chunk_start) <- k)
        window;
      for gi = chunk_start to chunk_end - 1 do
        (* Speculation accounting, one bucket per dispatched task: a
           class still pending at its commit replays its speculation
           (hit) or recomputes inline (dead shard left [None]); a class
           dropped by an earlier commit discards it (miss).  Chunk
           classes that were already dropped at pick time were never
           dispatched. *)
        (match stats_c with
         | Some c when task_of.(gi - chunk_start) >= 0 ->
           let task = task_of.(gi - chunk_start) in
           if dropped.(gi) then Hft_par.Stats.note_miss c ~task
           else if spec_of.(gi - chunk_start) <> None then
             Hft_par.Stats.note_hit c ~task
           else Hft_par.Stats.note_inline c
         | _ -> ());
        process ?spec:(spec_of.(gi - chunk_start)) gi leaders.(gi)
      done;
      cursor := chunk_end
    done;
    match stats_c with
    | Some c -> par_stats := Some (Hft_par.Stats.finish c ~classes:n_groups)
    | None -> ()
  in
  if jobs > 1 && n_groups > 1 then run_parallel (Hft_par.Pool.get ~jobs)
  else Array.iteri (fun gi f -> process gi f) leaders;
  (match on_par_stats with
   | None -> ()
   | Some k ->
     let s =
       match !par_stats with
       | Some s -> s
       | None ->
         Hft_par.Stats.sequential ~classes:n_groups
           ~wall_ns:
             (int_of_float ((Hft_obs.Clock.now () -. t_start) *. 1e9))
     in
     k s);
  let chain = Chain.insert nl dffs in
  { chain; tests = List.rev !tests; stats = !stats }

let insert nl = Chain.insert nl (Netlist.dffs nl)
