open Hft_gate

type result = {
  chain : Chain.t;
  tests : (int * bool) list list;
  stats : Atpg_stats.t;
}

(* Full scan makes every DFF a pseudo primary input (scan load) and its
   D input a pseudo primary output (scan capture), so ATPG and fault
   dropping are purely combinational.  With every source concretely
   assigned (PODEM's X positions filled with 0), a two-valued detection
   check is exact — no three-valued confirmation needed, unlike the
   sequential case in {!Hft_gate.Seq_atpg}. *)
let atpg ?(backtrack_limit = 500) ?(strategy = Seq_atpg.Drop) nl ~faults =
  Hft_obs.Span.with_ "full-scan-atpg"
    ~attrs:[ ("faults", string_of_int (List.length faults)) ]
  @@ fun () ->
  let dffs = Netlist.dffs nl in
  let assignable = Netlist.pis nl @ dffs in
  let observe =
    Netlist.pos nl @ List.map (fun d -> (Netlist.fanin nl d).(0)) dffs
  in
  let groups =
    match strategy with
    | Seq_atpg.Naive -> List.map (fun f -> (f, [ f ])) faults
    | Seq_atpg.Drop ->
      let fc = Fault_collapse.compute nl in
      Fault_collapse.partition fc faults
  in
  let leaders = Array.of_list (List.map fst groups) in
  let sizes = Array.of_list (List.map (fun (_, ms) -> List.length ms) groups) in
  let n_groups = Array.length leaders in
  let dropped = Array.make n_groups false in
  let stats = ref Atpg_stats.empty in
  let tests = ref [] in
  Array.iteri
    (fun gi f ->
      if dropped.(gi) then
        stats := Atpg_stats.add_detected !stats ~n:sizes.(gi)
      else begin
        let r, e =
          Podem.generate ~backtrack_limit nl ~faults:[ f ] ~assignable ~observe
        in
        stats := Atpg_stats.add_outcome ~n:sizes.(gi) !stats r e;
        match r with
        | Podem.Test assignment ->
          tests := assignment :: !tests;
          if strategy = Seq_atpg.Drop then begin
            let pending = ref [] in
            for gj = n_groups - 1 downto gi + 1 do
              if not dropped.(gj) then pending := gj :: !pending
            done;
            match !pending with
            | [] -> ()
            | pending ->
              let flags =
                Fsim.detect_groups nl ~assignment ~observe
                  (List.map (fun gj -> [ leaders.(gj) ]) pending)
              in
              List.iteri
                (fun k gj -> if flags.(k) then dropped.(gj) <- true)
                pending;
              Hft_obs.Registry.incr "hft.full_scan.dropped"
                ~by:
                  (List.fold_left
                     (fun acc gj -> if dropped.(gj) then acc + 1 else acc)
                     0 pending)
          end
        | Podem.Untestable | Podem.Aborted -> ()
      end)
    leaders;
  let chain = Chain.insert nl dffs in
  { chain; tests = List.rev !tests; stats = !stats }

let insert nl = Chain.insert nl (Netlist.dffs nl)
