open Hft_gate

type result = {
  chain : Chain.t;
  tests : (int * bool) list list;
  stats : Atpg_stats.t;
}

(* Full scan makes every DFF a pseudo primary input (scan load) and its
   D input a pseudo primary output (scan capture), so ATPG and fault
   dropping are purely combinational.  With every source concretely
   assigned (PODEM's X positions filled with 0), a two-valued detection
   check is exact — no three-valued confirmation needed, unlike the
   sequential case in {!Hft_gate.Seq_atpg}. *)
let atpg ?(backtrack_limit = 500) ?(strategy = Seq_atpg.Drop)
    ?(supervisor = Some Hft_robust.Supervisor.default) ?guidance nl ~faults =
  Hft_obs.Span.with_ "full-scan-atpg"
    ~attrs:[ ("faults", string_of_int (List.length faults)) ]
  @@ fun () ->
  let dffs = Netlist.dffs nl in
  let assignable = Netlist.pis nl @ dffs in
  let observe =
    Netlist.pos nl @ List.map (fun d -> (Netlist.fanin nl d).(0)) dffs
  in
  let naive_groups () = List.map (fun f -> (f, [ f ])) faults in
  let groups =
    match strategy with
    | Seq_atpg.Naive -> naive_groups ()
    | Seq_atpg.Drop ->
      let collapse () =
        let fc = Fault_collapse.compute nl in
        Fault_collapse.partition fc faults
      in
      (match supervisor with
       | None -> collapse ()
       | Some _ ->
         (match
            Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Collapse
              collapse
          with
          | Ok p -> p
          | Error _ ->
            Hft_obs.Journal.record
              (Hft_obs.Journal.Degraded
                 { site = "collapse"; action = "uncollapsed" });
            Hft_obs.Registry.incr "hft.robust.degraded";
            naive_groups ()))
  in
  let leaders = Array.of_list (List.map fst groups) in
  let members = Array.of_list (List.map snd groups) in
  let sizes = Array.of_list (List.map (fun (_, ms) -> List.length ms) groups) in
  let n_groups = Array.length leaders in
  let dropped = Array.make n_groups false in
  (* Forensics ledger rows, one per class ([-1] handles = no-ops when
     observability is off; see {!Hft_obs.Ledger}). *)
  let obs = !Hft_obs.Config.enabled in
  let lh =
    if obs then
      Array.init n_groups (fun gi ->
          Hft_obs.Ledger.register_class
            ~rep:(Fault.to_string nl leaders.(gi))
            ~members:(List.map (Fault.to_string nl) members.(gi)))
    else Array.make n_groups (-1)
  in
  let stats = ref Atpg_stats.empty in
  let tests = ref [] in
  Array.iteri
    (fun gi f ->
      if dropped.(gi) then
        stats := Atpg_stats.add_detected !stats ~n:sizes.(gi)
      else begin
        if obs then
          Hft_obs.Journal.record
            (Hft_obs.Journal.Atpg_target
               { cls = lh.(gi); rep = Fault.to_string nl f; frames = 1 });
        let gd =
          Option.map (fun provide -> provide nl ~observe ~faults:[ f ])
            guidance
        in
        let supervised =
          match supervisor with
          | None ->
            Ok
              (Podem.generate ~backtrack_limit ?guidance:gd nl ~faults:[ f ]
                 ~assignable ~observe)
          | Some policy ->
            Hft_robust.Supervisor.ladder policy ~site:Hft_robust.Chaos.Podem
              ~budget:backtrack_limit (fun ~budget ~check ->
                Podem.generate ~backtrack_limit:budget ?check ?guidance:gd nl
                  ~faults:[ f ] ~assignable ~observe)
        in
        let r, e, abort_evidence =
          match supervised with
          | Ok (r, e) -> (r, e, (backtrack_limit, None))
          | Error fail ->
            (* Ladder exhausted: count the class as a plain PODEM abort
               (zero effort — the attempts died before reporting), with
               the failure as ledger evidence. *)
            let budget =
              match supervisor with
              | Some policy ->
                Hft_robust.Supervisor.final_budget policy
                  ~budget:backtrack_limit
              | None -> backtrack_limit
            in
            Hft_obs.Journal.record
              (Hft_obs.Journal.Degraded { site = "podem"; action = "abort" });
            Hft_obs.Registry.incr "hft.robust.degraded";
            ( Podem.Aborted,
              { Podem.decisions = 0; backtracks = 0; implications = 0;
                guided_cuts = 0; static_proof = false },
              (budget, Some (Hft_robust.Failure.to_string fail)) )
        in
        stats := Atpg_stats.add_outcome ~n:sizes.(gi) !stats r e;
        Hft_obs.Ledger.charge lh.(gi) ~implications:e.Podem.implications
          ~backtracks:e.Podem.backtracks ~guided_cuts:e.Podem.guided_cuts;
        if obs && e.Podem.static_proof then
          Hft_obs.Journal.record
            (Hft_obs.Journal.Static_untestable { cls = lh.(gi); frames = 1 });
        if obs then
          Hft_obs.Journal.record
            (Hft_obs.Journal.Podem_result
               { cls = lh.(gi);
                 outcome =
                   (match r with
                    | Podem.Test _ -> "test"
                    | Podem.Untestable -> "untestable"
                    | Podem.Aborted -> "aborted");
                 frames = 1;
                 backtracks = e.Podem.backtracks });
        match r with
        | Podem.Test assignment ->
          tests := assignment :: !tests;
          let tid = Hft_obs.Ledger.register_test ~frames:1 in
          if obs then
            Hft_obs.Journal.record
              (Hft_obs.Journal.Test_generated { test = tid; frames = 1 });
          Hft_obs.Ledger.resolve lh.(gi)
            (Hft_obs.Ledger.Podem_detected
               { test = tid; backtracks = e.Podem.backtracks; frames = 1 });
          if strategy = Seq_atpg.Drop then begin
            let pending = ref [] in
            for gj = n_groups - 1 downto gi + 1 do
              if not dropped.(gj) then pending := gj :: !pending
            done;
            match !pending with
            | [] -> ()
            | pending ->
              let parr = Array.of_list pending in
              let run_drop () =
                Fsim.detect_groups nl
                  ~on_group_events:(fun k ev ->
                    Hft_obs.Ledger.charge lh.(parr.(k)) ~fsim_events:ev)
                  ~assignment ~observe
                  (List.map (fun gj -> [ leaders.(gj) ]) pending)
              in
              let flags =
                match supervisor with
                | None -> run_drop ()
                | Some _ ->
                  (match
                     Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Fsim
                       run_drop
                   with
                   | Ok flags -> flags
                   | Error _ ->
                     (* Lose the sweep, keep the test. *)
                     Hft_obs.Journal.record
                       (Hft_obs.Journal.Degraded
                          { site = "fsim"; action = "drop-pass-skipped" });
                     Hft_obs.Registry.incr "hft.robust.degraded";
                     Array.make (List.length pending) false)
              in
              List.iteri
                (fun k gj ->
                  if flags.(k) then begin
                    dropped.(gj) <- true;
                    Hft_obs.Ledger.resolve lh.(gj)
                      (Hft_obs.Ledger.Drop_detected { test = tid });
                    if obs then
                      Hft_obs.Journal.record
                        (Hft_obs.Journal.Fault_dropped
                           { cls = lh.(gj); test = tid })
                  end)
                pending;
              Hft_obs.Registry.incr "hft.full_scan.dropped"
                ~by:
                  (List.fold_left
                     (fun acc gj -> if dropped.(gj) then acc + 1 else acc)
                     0 pending)
          end
        | Podem.Untestable ->
          Hft_obs.Ledger.resolve lh.(gi)
            (Hft_obs.Ledger.Proved_untestable { frames = 1 })
        | Podem.Aborted ->
          let budget, reason = abort_evidence in
          Hft_obs.Ledger.resolve lh.(gi)
            (Hft_obs.Ledger.Aborted { budget; frames = 1; reason })
      end)
    leaders;
  let chain = Chain.insert nl dffs in
  { chain; tests = List.rev !tests; stats = !stats }

let insert nl = Chain.insert nl (Netlist.dffs nl)
