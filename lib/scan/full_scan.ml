open Hft_gate

type result = {
  chain : Chain.t;
  tests : (int * bool) list list;
  stats : Atpg_stats.t;
}

let atpg ?(backtrack_limit = 500) nl ~faults =
  Hft_obs.Span.with_ "full-scan-atpg"
    ~attrs:[ ("faults", string_of_int (List.length faults)) ]
  @@ fun () ->
  let dffs = Netlist.dffs nl in
  let assignable = Netlist.pis nl @ dffs in
  let observe =
    Netlist.pos nl @ List.map (fun d -> (Netlist.fanin nl d).(0)) dffs
  in
  let stats = ref Atpg_stats.empty in
  let tests = ref [] in
  List.iter
    (fun f ->
      let r, e = Podem.generate ~backtrack_limit nl ~faults:[ f ] ~assignable ~observe in
      stats := Atpg_stats.add_outcome !stats r e;
      match r with
      | Podem.Test assignment -> tests := assignment :: !tests
      | Podem.Untestable | Podem.Aborted -> ())
    faults;
  let chain = Chain.insert nl dffs in
  { chain; tests = List.rev !tests; stats = !stats }

let insert nl = Chain.insert nl (Netlist.dffs nl)
