(** Shared ATPG outcome record used by the scan methodologies. *)

type t = {
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
  decisions : int;
  backtracks : int;
  implications : int;
}

val empty : t

(** [add_outcome ?n t r e] records one PODEM verdict; [n] (default 1)
    replicates it over an equivalence class while counting the effort
    once. *)
val add_outcome :
  ?n:int -> t -> Hft_gate.Podem.result -> Hft_gate.Podem.effort -> t

(** [add_detected t ~n] records [n] faults detected by fault dropping —
    no PODEM call, no effort. *)
val add_detected : t -> n:int -> t

val coverage : t -> float

(** Fault efficiency: (detected + proven untestable) / total. *)
val efficiency : t -> float

val to_row : t -> string list
val header : string list
