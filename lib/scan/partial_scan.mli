(** Partial scan: scan a subset of flip-flops, chosen to break S-graph
    loops (Cheng–Agrawal / Lee–Reddy) or from RTL knowledge
    (survey §3.1, §4.1), then run sequential ATPG on the rest.

    The survey's headline comparison (E1/E4): RTL-level selection needs
    markedly fewer scan flip-flops than gate-level MFVS for equal loop
    breaking, because one RTL register covers [width] flip-flops chosen
    together. *)

open Hft_gate

(** Gate-level selection: MFVS of the FF S-graph, self-loops
    tolerated. *)
val select_gate_level : Netlist.t -> int list

(** RTL-guided selection: scan registers chosen on the data-path
    S-graph, mapped down to their DFF bits through the expansion's
    provenance. *)
val select_rtl_level : Hft_rtl.Datapath.t -> Expand.t -> int list

(** Mark the chosen datapath registers as scan registers (mutates
    register kinds) — used for area accounting. *)
val annotate_rtl : Hft_rtl.Datapath.t -> int list -> unit

(** Sequential ATPG with the given scan set ({!Seq_atpg.run}
    pass-through: collapsing + fault dropping by default, [on_test]
    observes every generated test, [supervisor]/[resolved]/[on_resolved]
    forward the campaign-supervision and checkpoint hooks, [guidance]
    forwards static-analysis ATPG guidance). *)
val atpg :
  ?backtrack_limit:int -> ?max_frames:int ->
  ?strategy:Seq_atpg.strategy -> ?on_test:(Seq_atpg.test -> unit) ->
  ?supervisor:Hft_robust.Supervisor.policy option ->
  ?resolved:(string -> Hft_obs.Ledger.resolution option) ->
  ?on_resolved:(rep:string -> Hft_obs.Ledger.resolution -> unit) ->
  ?guidance:Podem.provider ->
  ?on_par_stats:(Hft_par.Stats.t -> unit) ->
  ?jobs:int ->
  Netlist.t -> faults:Fault.t list -> scanned:int list -> Seq_atpg.stats
