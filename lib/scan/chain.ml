open Hft_gate

type t = {
  netlist : Netlist.t;
  cells : int list;
  scan_en : int;
  scan_in : int;
  scan_out : int;
}

let insert nl dffs =
  if dffs = [] then invalid_arg "Chain.insert: empty chain";
  List.iter
    (fun d ->
      if Netlist.kind nl d <> Netlist.Dff then
        invalid_arg "Chain.insert: not a DFF")
    dffs;
  let scan_en = Netlist.add nl ~name:"scan_en" Netlist.Pi [||] in
  let scan_in = Netlist.add nl ~name:"scan_in" Netlist.Pi [||] in
  let prev = ref scan_in in
  List.iter
    (fun d ->
      let d_orig = (Netlist.fanin nl d).(0) in
      let mux =
        Netlist.add nl
          ~name:(Printf.sprintf "smux_%s" (Netlist.node_name nl d))
          Netlist.Mux2
          [| scan_en; d_orig; !prev |]
      in
      Netlist.set_fanin nl d 0 mux;
      prev := d)
    dffs;
  let scan_out = Netlist.add nl ~name:"scan_out" Netlist.Po [| !prev |] in
  Netlist.validate nl;
  Hft_obs.Registry.incr "hft.scan.chains";
  Hft_obs.Registry.incr "hft.scan.cells_inserted" ~by:(List.length dffs);
  { netlist = nl; cells = dffs; scan_en; scan_in; scan_out }

let test_cycles t ~n_tests =
  let len = List.length t.cells in
  (n_tests * (len + 1)) + len

let verify_shift t =
  let nl = t.netlist in
  let len = List.length t.cells in
  let pis = Netlist.pis nl in
  let pos = Netlist.pos nl in
  let scan_out_idx =
    let rec idx i = function
      | [] -> invalid_arg "verify_shift"
      | p :: tl -> if p = t.scan_out then i else idx (i + 1) tl
    in
    idx 0 pos
  in
  let sequence = List.init (2 * len) (fun i -> i mod 3 = 1) in
  (* Feed the sequence with scan_en high; after len cycles the first
     bits start appearing at scan-out in order. *)
  let stimuli =
    Array.of_list
      (List.map
         (fun bit ->
           Array.of_list
             (List.map
                (fun p ->
                  if p = t.scan_en then true
                  else if p = t.scan_in then bit
                  else false)
                pis))
         sequence)
  in
  let outs = Sim.run_cycles nl ~stimuli in
  (* scan_out at cycle (len - 1 + i) shows input bit i... with capture
     at each cycle: out at cycle c equals the bit inserted at c-len
     (still in flight for c < len).  Check the steady-state window. *)
  let ok = ref true in
  List.iteri
    (fun i bit ->
      let c = i + len in
      if c < Array.length outs then
        if outs.(c).(scan_out_idx) <> bit then ok := false)
    (List.filteri (fun i _ -> i + len < 2 * len) sequence);
  !ok
