(** Full scan: every flip-flop becomes a scan cell.

    For ATPG purposes scan reduces the sequential problem to a
    combinational one: flip-flop outputs are pseudo-primary inputs and
    their D inputs pseudo-primary outputs. *)

open Hft_gate

type result = {
  chain : Chain.t;
  tests : (int * bool) list list; (** one combinational test per entry *)
  stats : Atpg_stats.t;
}

(** Combinational ATPG over the scan view of [nl] (no structural change
    needed): full PI+FF controllability, PO+FF-input observability.
    The default [Drop] strategy collapses the fault list into structural
    equivalence classes and fault-simulates every generated test against
    the pending classes (two-valued, exact here because all sources are
    concretely assigned), dropping detections before the next PODEM
    call; [Naive] is the historical one-PODEM-call-per-fault loop.

    [supervisor] (default {!Hft_robust.Supervisor.default}) runs
    collapse, PODEM and the drop passes under the typed failure
    discipline: exhausted PODEM ladders count as aborts with the
    failure recorded as ledger evidence, failed collapse/drop passes
    skip the optimisation.  [~supervisor:None] restores the bare
    engines.

    [guidance] (a {!Hft_gate.Podem.provider}) threads static-analysis
    guidance into every PODEM call; omitting it keeps the historical
    search bit for bit.

    [on_par_stats] receives the campaign's scheduler telemetry once,
    after the last class commits ({!Hft_par.Stats.t}; degenerate
    sequential summary when [jobs = 1]); collection never changes
    results. *)
val atpg :
  ?backtrack_limit:int -> ?strategy:Seq_atpg.strategy ->
  ?supervisor:Hft_robust.Supervisor.policy option ->
  ?guidance:Podem.provider ->
  ?on_par_stats:(Hft_par.Stats.t -> unit) -> ?jobs:int -> Netlist.t ->
  faults:Fault.t list -> result

(** Structural insertion of the full chain ([Chain.insert] on all
    DFFs). *)
val insert : Netlist.t -> Chain.t
