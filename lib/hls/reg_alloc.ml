open Hft_cdfg
open Hft_util

type t = { reg_of_var : int array; n_regs : int }

let spread_to_members info candidates track_of =
  let nv = Array.length info.Lifetime.intervals in
  let reg_of_var = Array.make nv (-1) in
  List.iter
    (fun rep ->
      let track = track_of rep in
      List.iter
        (fun v -> reg_of_var.(v) <- track)
        (Lifetime.class_members info rep))
    candidates;
  reg_of_var

let left_edge g info =
  let candidates = Lifetime.register_candidates g info in
  let items =
    List.map (fun rep -> (rep, Lifetime.class_interval info rep)) candidates
  in
  let assign, n = Interval.left_edge items in
  (* Left-edge ignores the final-boundary write exclusions; patch any
     violations by spilling one side to a fresh register. *)
  let track_tbl = Hashtbl.create 16 in
  List.iter (fun (rep, t) -> Hashtbl.replace track_tbl rep t) assign;
  let n_regs = ref n in
  let rec fix reps =
    match reps with
    | [] -> ()
    | rep :: tl ->
      List.iter
        (fun rep' ->
          if Hashtbl.find track_tbl rep = Hashtbl.find track_tbl rep'
             && Lifetime.conflict info rep rep'
          then begin
            Hashtbl.replace track_tbl rep' !n_regs;
            incr n_regs
          end)
        tl;
      fix tl
  in
  fix candidates;
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.reg_alloc.runs";
    Hft_obs.Registry.incr "hft.reg_alloc.candidates"
      ~by:(List.length candidates);
    Hft_obs.Registry.incr "hft.reg_alloc.spills" ~by:(!n_regs - n);
    Hft_obs.Registry.incr "hft.reg_alloc.regs" ~by:!n_regs
  end;
  let reg_of_var =
    spread_to_members info candidates (Hashtbl.find track_tbl)
  in
  { reg_of_var; n_regs = !n_regs }

let color ?(extra_conflicts = []) ?order ?prefer g info =
  let candidates = Lifetime.register_candidates g info in
  let rep_of v = Union_find.find info.Lifetime.merged v in
  let extra =
    List.map (fun (a, b) -> (rep_of a, rep_of b)) extra_conflicts
  in
  let conflict_checks = ref 0 in
  let conflict a b =
    incr conflict_checks;
    a <> b
    && (Lifetime.conflict info a b
        || List.mem (a, b) extra || List.mem (b, a) extra)
  in
  let dedup_keep_order l =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun x ->
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.add seen x ();
          true
        end)
      l
  in
  let order =
    match order with
    | Some o ->
      let o = dedup_keep_order (List.map rep_of o) in
      (* Keep only candidates; append any the caller forgot. *)
      let o = List.filter (fun r -> List.mem r candidates) o in
      o @ List.filter (fun r -> not (List.mem r o)) candidates
    | None ->
      List.sort
        (fun a b ->
          compare
            ((Lifetime.class_interval info a).Interval.lo, a)
            ((Lifetime.class_interval info b).Interval.lo, b))
        candidates
  in
  let prefer =
    match prefer with
    | Some f -> f
    | None -> fun _rep ~feasible ->
      (match feasible with [] -> None | r :: _ -> Some r)
  in
  let color_of = Hashtbl.create 16 in
  let n_regs = ref 0 in
  List.iter
    (fun rep ->
      let used_by_conflicting =
        List.filter_map
          (fun rep' ->
            match Hashtbl.find_opt color_of rep' with
            | Some c when conflict rep rep' -> Some c
            | _ -> None)
          order
        |> List.sort_uniq compare
      in
      let feasible =
        List.init !n_regs (fun c -> c)
        |> List.filter (fun c -> not (List.mem c used_by_conflicting))
      in
      match prefer rep ~feasible with
      | Some c when List.mem c feasible -> Hashtbl.replace color_of rep c
      | Some _ ->
        invalid_arg "Reg_alloc.color: prefer returned an infeasible register"
      | None ->
        Hashtbl.replace color_of rep !n_regs;
        incr n_regs)
    order;
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.reg_alloc.runs";
    Hft_obs.Registry.incr "hft.reg_alloc.candidates"
      ~by:(List.length candidates);
    Hft_obs.Registry.incr "hft.reg_alloc.conflict_checks"
      ~by:!conflict_checks;
    Hft_obs.Registry.incr "hft.reg_alloc.regs" ~by:!n_regs
  end;
  let reg_of_var =
    spread_to_members info candidates (Hashtbl.find color_of)
  in
  { reg_of_var; n_regs = !n_regs }

let vars_of_reg t r =
  let acc = ref [] in
  Array.iteri (fun v reg -> if reg = r then acc := v :: !acc) t.reg_of_var;
  List.rev !acc

let validate ?(extra_conflicts = []) g info t =
  let nv = Array.length t.reg_of_var in
  (* Merge classes stay together. *)
  for v = 0 to nv - 1 do
    let rep = Union_find.find info.Lifetime.merged v in
    if t.reg_of_var.(v) >= 0 && t.reg_of_var.(rep) >= 0
       && t.reg_of_var.(v) <> t.reg_of_var.(rep)
    then invalid_arg "Reg_alloc.validate: merge class split"
  done;
  (* Registerable classes are mapped. *)
  List.iter
    (fun rep ->
      if t.reg_of_var.(rep) < 0 then
        invalid_arg "Reg_alloc.validate: unmapped register candidate")
    (Lifetime.register_candidates g info);
  (* No conflicting pair shares. *)
  for u = 0 to nv - 1 do
    for v = u + 1 to nv - 1 do
      if t.reg_of_var.(u) >= 0 && t.reg_of_var.(u) = t.reg_of_var.(v)
         && Lifetime.conflict info u v
      then
        invalid_arg
          (Printf.sprintf "Reg_alloc.validate: vars %d,%d conflict in reg %d" u
             v t.reg_of_var.(u))
    done
  done;
  List.iter
    (fun (a, b) ->
      if t.reg_of_var.(a) >= 0 && t.reg_of_var.(a) = t.reg_of_var.(b)
         && not (Union_find.same info.Lifetime.merged a b)
      then invalid_arg "Reg_alloc.validate: extra conflict violated")
    extra_conflicts
