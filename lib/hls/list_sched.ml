open Hft_cdfg

type resources = (Op.fu_class * int) list

let schedule ?latency ?priority ?max_steps g ~resources =
  let n = Graph.n_ops g in
  let latency =
    match latency with Some l -> l | None -> Array.make n 1
  in
  let max_steps =
    match max_steps with
    | Some m -> m
    | None -> (Array.fold_left ( + ) 0 latency + 4) * 2
  in
  let priority =
    match priority with
    | Some p -> p
    | None ->
      (* Least mobility first: priority = -(alap - asap). *)
      let asap = Sched_algos.asap ~latency g in
      let horizon = asap.Schedule.n_steps in
      let alap = Sched_algos.alap ~latency g ~n_steps:horizon in
      Array.map (fun m -> -m) (Sched_algos.mobility ~asap ~alap)
  in
  (* Check the resource table covers every class used. *)
  Array.iter
    (fun o ->
      match Op.fu_class (Graph.op g o).Graph.o_kind with
      | None -> ()
      | Some cl ->
        (match List.assoc_opt cl resources with
         | Some k when k >= 1 -> ()
         | Some _ | None ->
           invalid_arg
             (Printf.sprintf "List_sched: no %s units allocated"
                (Op.fu_class_to_string cl))))
    (Array.init n (fun i -> i));
  let dg = Graph.op_graph g in
  let start = Array.make n 0 in
  let unscheduled = ref n in
  let step = ref 0 in
  let candidate_evals = ref 0 in
  (* busy.(class slot accounting): list of (class, finish_step) *)
  let busy = ref [] in
  while !unscheduled > 0 && !step <= max_steps do
    incr step;
    let c = !step in
    busy := List.filter (fun (_, fin) -> fin >= c) !busy;
    let free cl =
      let total = match List.assoc_opt cl resources with Some k -> k | None -> 0 in
      let used = List.length (List.filter (fun (cl', _) -> cl' = cl) !busy) in
      total - used
    in
    let ready o =
      start.(o) = 0
      && List.for_all
           (fun p -> start.(p) > 0 && start.(p) + latency.(p) - 1 < c)
           (Hft_util.Digraph.pred dg o)
    in
    let candidates =
      List.init n (fun i -> i)
      |> List.filter ready
      |> List.sort (fun a b -> compare (-priority.(a), a) (-priority.(b), b))
    in
    candidate_evals := !candidate_evals + List.length candidates;
    List.iter
      (fun o ->
        match Op.fu_class (Graph.op g o).Graph.o_kind with
        | None ->
          (* moves: free *)
          start.(o) <- c;
          decr unscheduled
        | Some cl ->
          if free cl > 0 then begin
            start.(o) <- c;
            busy := (cl, c + latency.(o) - 1) :: !busy;
            decr unscheduled
          end)
      candidates
  done;
  if !unscheduled > 0 then invalid_arg "List_sched: step budget exhausted";
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.sched.runs";
    Hft_obs.Registry.incr "hft.sched.steps" ~by:!step;
    Hft_obs.Registry.incr "hft.sched.candidate_evals" ~by:!candidate_evals
  end;
  let n_steps =
    Array.fold_left max 1 (Array.mapi (fun o s -> s + latency.(o) - 1) start)
  in
  Schedule.make g ~n_steps ~latency start

let used_resources g sched = Schedule.fu_demand g sched
