open Hft_cdfg

type t = {
  fu_of_op : int array;
  instances : (Op.fu_class * int list) array;
}

let op_steps sched o = (sched.Schedule.start.(o), Schedule.finish_step sched o)

let ops_conflict sched a b =
  let sa, fa = op_steps sched a and sb, fb = op_steps sched b in
  sa <= fb && sb <= fa

let bind ?resources ~choose g sched =
  let n = Graph.n_ops g in
  let candidate_evals = ref 0 in
  let opened = ref 0 in
  let fu_of_op = Array.make n (-1) in
  let inst_class : Op.fu_class option array ref = ref (Array.make 8 None) in
  let inst_ops : int list array ref = ref (Array.make 8 []) in
  let n_inst = ref 0 in
  let grow () =
    if !n_inst >= Array.length !inst_class then begin
      let nc = Array.make (2 * !n_inst) None in
      let no = Array.make (2 * !n_inst) [] in
      Array.blit !inst_class 0 nc 0 !n_inst;
      Array.blit !inst_ops 0 no 0 !n_inst;
      inst_class := nc;
      inst_ops := no
    end
  in
  let snapshot () =
    {
      fu_of_op = Array.copy fu_of_op;
      instances =
        Array.init !n_inst (fun i ->
            match !inst_class.(i) with
            | Some c -> (c, List.rev !inst_ops.(i))
            | None -> assert false);
    }
  in
  let order =
    List.init n (fun i -> i)
    |> List.sort (fun a b ->
           compare (sched.Schedule.start.(a), a) (sched.Schedule.start.(b), b))
  in
  List.iter
    (fun o ->
      match Op.fu_class (Graph.op g o).Graph.o_kind with
      | None -> ()
      | Some cl ->
        let candidates = ref [] in
        candidate_evals := !candidate_evals + !n_inst;
        for i = !n_inst - 1 downto 0 do
          if !inst_class.(i) = Some cl
             && List.for_all
                  (fun o' -> not (ops_conflict sched o o'))
                  !inst_ops.(i)
          then candidates := i :: !candidates
        done;
        let candidates = !candidates in
        let cap =
          match resources with
          | None -> max_int
          | Some r ->
            (match List.assoc_opt cl r with Some k -> k | None -> 0)
        in
        let open_count = ref 0 in
        for i = 0 to !n_inst - 1 do
          if !inst_class.(i) = Some cl then incr open_count
        done;
        let can_open = !open_count < cap in
        if candidates = [] && not can_open then
          invalid_arg
            (Printf.sprintf "Fu_bind: cannot place op %d (%s cap %d)" o
               (Op.fu_class_to_string cl) cap);
        let decision =
          if candidates = [] then `Open
          else choose (snapshot ()) ~op:o ~candidates ~can_open
        in
        (match decision with
         | `Use i ->
           if not (List.mem i candidates) then
             invalid_arg "Fu_bind: choose returned a non-candidate";
           fu_of_op.(o) <- i;
           !inst_ops.(i) <- o :: !inst_ops.(i)
         | `Open ->
           if not can_open then invalid_arg "Fu_bind: cannot open instance";
           grow ();
           fu_of_op.(o) <- !n_inst;
           !inst_class.(!n_inst) <- Some cl;
           !inst_ops.(!n_inst) <- [ o ];
           incr opened;
           incr n_inst))
    order;
  if !Hft_obs.Config.enabled then begin
    Hft_obs.Registry.incr "hft.bind.runs";
    Hft_obs.Registry.incr "hft.bind.candidate_evals" ~by:!candidate_evals;
    Hft_obs.Registry.incr "hft.bind.instances_opened" ~by:!opened
  end;
  (snapshot ())

let left_edge ?resources g sched =
  bind ?resources g sched ~choose:(fun _ ~op:_ ~candidates ~can_open:_ ->
      match candidates with
      | i :: _ -> `Use i
      | [] -> `Open)

let validate g sched t =
  Array.iteri
    (fun o inst ->
      match Op.fu_class (Graph.op g o).Graph.o_kind with
      | None ->
        if inst <> -1 then invalid_arg "Fu_bind.validate: move has an instance"
      | Some cl ->
        if inst < 0 || inst >= Array.length t.instances then
          invalid_arg "Fu_bind.validate: unbound op";
        let c, ops = t.instances.(inst) in
        if c <> cl then invalid_arg "Fu_bind.validate: class mismatch";
        if not (List.mem o ops) then
          invalid_arg "Fu_bind.validate: instance does not list op")
    t.fu_of_op;
  Array.iter
    (fun (_, ops) ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a < b && ops_conflict sched a b then
                invalid_arg
                  (Printf.sprintf "Fu_bind.validate: ops %d,%d overlap" a b))
            ops)
        ops)
    t.instances

let of_class_indices g sched idx =
  let n = Graph.n_ops g in
  if Array.length idx <> n then invalid_arg "Fu_bind.of_class_indices: length";
  (* Map (class, local index) -> global instance id, in order of first
     appearance. *)
  let table = Hashtbl.create 8 in
  let insts = ref [] in
  let n_inst = ref 0 in
  let fu_of_op = Array.make n (-1) in
  for o = 0 to n - 1 do
    match Op.fu_class (Graph.op g o).Graph.o_kind with
    | None -> ()
    | Some cl ->
      let key = (cl, idx.(o)) in
      let inst =
        match Hashtbl.find_opt table key with
        | Some i -> i
        | None ->
          let i = !n_inst in
          Hashtbl.add table key i;
          insts := (cl, ref []) :: !insts;
          incr n_inst;
          i
      in
      fu_of_op.(o) <- inst;
      let _, ops = List.nth (List.rev !insts) inst in
      ops := o :: !ops
  done;
  let t =
    {
      fu_of_op;
      instances =
        Array.of_list
          (List.rev_map (fun (c, ops) -> (c, List.rev !ops)) !insts);
    }
  in
  validate g sched t;
  t
