(* Fixed-size domain pool with per-worker work-stealing deques.

   Architecture: [Pool.get ~jobs] spawns [jobs - 1] domains once and
   parks them on a condition variable.  Each [section.run] call is one
   "wave": the calling thread installs a closure, bumps an epoch,
   broadcasts, and participates as worker 0; workers run the closure
   and the last one out signals completion.  The closure drains
   per-worker deques of task indexes — owner pops the front (lowest
   index, most commit-urgent), thieves steal from the back — so load
   balances without a contended global queue while front-of-line tasks
   still finish early.

   Every worker body is wrapped in [Supervisor.protect ~site:Shard]:
   an exception (or injected chaos) kills that shard's remaining work,
   not the process.  Tasks the dead shard never completed simply stay
   [None] in the result array and the caller recomputes them inline —
   graceful degradation to sequential, one shard at a time. *)

let clamp_jobs j = if j < 1 then 1 else if j > 64 then 64 else j

let jobs_from_env () =
  match Sys.getenv_opt "HFT_JOBS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> clamp_jobs j
     | _ -> 1)

type 'ws section = {
  run :
    'a.
    n:int ->
    f:('ws -> int -> 'a) ->
    'a option array * Hft_robust.Failure.t list;
}

(* A bounded deque over a fixed index range; tasks are ints and nobody
   pushes after construction, so two cursors under a mutex suffice. *)
module Deque = struct
  type t = {
    d_lock : Mutex.t;
    d_items : int array;
    mutable d_lo : int;
    mutable d_hi : int;
  }

  let make items =
    { d_lock = Mutex.create (); d_items = items; d_lo = 0;
      d_hi = Array.length items }

  let pop_front d =
    Mutex.lock d.d_lock;
    let r =
      if d.d_lo < d.d_hi then begin
        let v = d.d_items.(d.d_lo) in
        d.d_lo <- d.d_lo + 1;
        Some v
      end
      else None
    in
    Mutex.unlock d.d_lock;
    r

  let steal_back d =
    Mutex.lock d.d_lock;
    let r =
      if d.d_lo < d.d_hi then begin
        let v = d.d_items.(d.d_hi - 1) in
        d.d_hi <- d.d_hi - 1;
        Some v
      end
      else None
    in
    Mutex.unlock d.d_lock;
    r
end

module Pool = struct
  type t = {
    p_jobs : int;
    p_lock : Mutex.t;
    p_work : Condition.t;        (* workers wait here for a new epoch *)
    p_done : Condition.t;        (* the caller waits here for the wave *)
    mutable p_epoch : int;
    mutable p_fn : (int -> unit) option;  (* worker id -> unit *)
    mutable p_finished : int;    (* workers done with the current epoch *)
    mutable p_shutdown : bool;
    mutable p_domains : unit Domain.t list;
  }

  let jobs t = t.p_jobs

  (* Body exceptions never escape [fn] (worker bodies are protected),
     but keep the accounting alive even if one does: a worker that
     failed to run its wave must still report in or the caller hangs. *)
  let run_wave fn wid = try fn wid with _ -> ()

  let worker_loop t wid () =
    let epoch = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      Mutex.lock t.p_lock;
      while (not t.p_shutdown) && t.p_epoch = !epoch do
        Condition.wait t.p_work t.p_lock
      done;
      if t.p_shutdown then begin
        Mutex.unlock t.p_lock;
        continue_ := false
      end
      else begin
        epoch := t.p_epoch;
        let fn = Option.get t.p_fn in
        Mutex.unlock t.p_lock;
        run_wave fn wid;
        Mutex.lock t.p_lock;
        t.p_finished <- t.p_finished + 1;
        if t.p_finished = t.p_jobs - 1 then Condition.signal t.p_done;
        Mutex.unlock t.p_lock
      end
    done

  (* Run [fn 0] .. [fn (jobs-1)], worker 0 on the calling thread.  The
     final lock round-trip gives the caller a happens-before edge over
     everything the workers wrote. *)
  let launch t fn =
    if t.p_jobs <= 1 then run_wave fn 0
    else begin
      Mutex.lock t.p_lock;
      t.p_fn <- Some fn;
      t.p_finished <- 0;
      t.p_epoch <- t.p_epoch + 1;
      Condition.broadcast t.p_work;
      Mutex.unlock t.p_lock;
      run_wave fn 0;
      Mutex.lock t.p_lock;
      while t.p_finished < t.p_jobs - 1 do
        Condition.wait t.p_done t.p_lock
      done;
      t.p_fn <- None;
      Mutex.unlock t.p_lock
    end

  let shutdown t =
    Mutex.lock t.p_lock;
    t.p_shutdown <- true;
    Condition.broadcast t.p_work;
    Mutex.unlock t.p_lock;
    List.iter Domain.join t.p_domains;
    Mutex.lock t.p_lock;
    t.p_domains <- [];
    Mutex.unlock t.p_lock

  let pools : (int * t) list ref = ref []
  let pools_lock = Mutex.create ()
  let at_exit_installed = ref false

  let create jobs =
    let t =
      { p_jobs = jobs; p_lock = Mutex.create ();
        p_work = Condition.create (); p_done = Condition.create ();
        p_epoch = 0; p_fn = None; p_finished = 0; p_shutdown = false;
        p_domains = [] }
    in
    t.p_domains <-
      List.init (jobs - 1) (fun i -> Domain.spawn (worker_loop t (i + 1)));
    t

  let get ~jobs =
    let jobs = clamp_jobs jobs in
    Mutex.lock pools_lock;
    let t =
      match List.assoc_opt jobs !pools with
      | Some t -> t
      | None ->
        let t = create jobs in
        pools := (jobs, t) :: !pools;
        if not !at_exit_installed then begin
          at_exit_installed := true;
          at_exit (fun () ->
              let ps =
                Mutex.lock pools_lock;
                let ps = !pools in
                pools := [];
                Mutex.unlock pools_lock;
                ps
              in
              List.iter (fun (_, t) -> shutdown t) ps)
        end;
        t
    in
    Mutex.unlock pools_lock;
    t

  let parallel (type ws) t ~(init : unit -> ws) (k : ws section -> 'b) : 'b =
    (* One lazily-built workspace per worker; slot [w] is only ever
       touched by worker [w] (worker ids are stable across waves), so
       no lock is needed. *)
    let slots : ws option array = Array.make t.p_jobs None in
    let workspace wid =
      match slots.(wid) with
      | Some ws -> ws
      | None ->
        let ws = init () in
        slots.(wid) <- Some ws;
        ws
    in
    let run : type a. n:int -> f:(ws -> int -> a) ->
      a option array * Hft_robust.Failure.t list =
     fun ~n ~f ->
      let results = Array.make n None in
      let fails = ref [] in
      let fails_lock = Mutex.create () in
      let deques =
        Array.init t.p_jobs (fun w ->
            (* Round-robin striping keeps each deque front-loaded with
               low task indexes, so owners work commit-order first. *)
            let mine = ref [] in
            for k = n - 1 downto 0 do
              if k mod t.p_jobs = w then mine := k :: !mine
            done;
            Deque.make (Array.of_list !mine))
      in
      let body wid =
        match
          Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Shard
            (fun () ->
              let ws = workspace wid in
              let rec drain () =
                match Deque.pop_front deques.(wid) with
                | Some k ->
                  results.(k) <- Some (f ws k);
                  drain ()
                | None -> steal 1
              and steal off =
                if off < t.p_jobs then
                  match Deque.steal_back deques.((wid + off) mod t.p_jobs) with
                  | Some k ->
                    results.(k) <- Some (f ws k);
                    steal 1
                  | None -> steal (off + 1)
              in
              drain ())
        with
        | Ok () -> ()
        | Error fail ->
          Mutex.lock fails_lock;
          fails := fail :: !fails;
          Mutex.unlock fails_lock
      in
      launch t body;
      (results, List.rev !fails)
    in
    k { run }
end
