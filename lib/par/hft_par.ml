(* Fixed-size domain pool with per-worker work-stealing deques.

   Architecture: [Pool.get ~jobs] spawns [jobs - 1] domains once and
   parks them on a condition variable.  Each [section.run] call is one
   "wave": the calling thread installs a closure, bumps an epoch,
   broadcasts, and participates as worker 0; workers run the closure
   and the last one out signals completion.  The closure drains
   per-worker deques of task indexes — owner pops the front (lowest
   index, most commit-urgent), thieves steal from the back — so load
   balances without a contended global queue while front-of-line tasks
   still finish early.

   Every worker body is wrapped in [Supervisor.protect ~site:Shard]:
   an exception (or injected chaos) kills that shard's remaining work,
   not the process.  Tasks the dead shard never completed simply stay
   [None] in the result array and the caller recomputes them inline —
   graceful degradation to sequential, one shard at a time. *)

let clamp_jobs j = if j < 1 then 1 else if j > 64 then 64 else j

let jobs_from_env () =
  match Sys.getenv_opt "HFT_JOBS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> clamp_jobs j
     | _ -> 1)

type 'ws section = {
  run :
    'a.
    n:int ->
    f:('ws -> int -> 'a) ->
    'a option array * Hft_robust.Failure.t list;
}

(* Scheduler telemetry.  A [collector] accumulates lock-free while the
   pool runs: the per-worker arrays below are written only by their
   owning worker (worker ids are stable across waves), the
   wave/commit-side fields only by the orchestrating thread, and the
   merge in [finish] runs after [launch]'s final lock round-trip — the
   same happens-before edge the result array already relies on.  All of
   it is observational: the engines' task order, results and committed
   telemetry are identical with a collector attached or not. *)
module Stats = struct
  type worker = {
    w_domain : int;
    w_evaluated : int;  (** speculative tasks this worker ran *)
    w_classes : int;  (** committed classes attributed to it *)
    w_steals : int;  (** tasks it took from other workers' deques *)
    w_stolen : int;  (** tasks other workers took from its deque *)
    w_spec_hits : int;
    w_spec_misses : int;
    w_inline : int;  (** inline recomputes (orchestrator only) *)
    w_busy_ns : int;
    w_idle_ns : int;  (** in-wave time not spent on tasks *)
    w_stall_ns : int;  (** commit-window time (orchestrator only) *)
  }

  type t = {
    s_jobs : int;
    s_waves : int;
    s_tasks : int;  (** tasks dispatched across all waves *)
    s_wall_ns : int;
    s_window_fill : int;  (** Σ commit-window occupancy *)
    s_window_cap : int;  (** Σ commit-window capacity *)
    s_critical_ns : int;  (** Σ per-wave max busy + commit stalls *)
    s_workers : worker array;
  }

  let sum_w t f = Array.fold_left (fun a w -> a + f w) 0 t.s_workers
  let busy_ns t = sum_w t (fun w -> w.w_busy_ns)
  let steals t = sum_w t (fun w -> w.w_steals)
  let spec_hits t = sum_w t (fun w -> w.w_spec_hits)
  let spec_misses t = sum_w t (fun w -> w.w_spec_misses)
  let inline t = sum_w t (fun w -> w.w_inline)

  (** Σ busy / (jobs × wall): 1.0 = every domain on useful work for the
      whole campaign. *)
  let utilization t =
    let denom = t.s_jobs * max 1 t.s_wall_ns in
    float_of_int (busy_ns t) /. float_of_int denom

  let occupancy t =
    if t.s_window_cap = 0 then 0.0
    else float_of_int t.s_window_fill /. float_of_int t.s_window_cap

  let spec_miss_rate t =
    if t.s_tasks = 0 then 0.0
    else float_of_int (spec_misses t) /. float_of_int t.s_tasks

  let ms ns = 1e-6 *. float_of_int ns

  let worker_to_json ~wall_ns w =
    Hft_util.Json.Obj
      [ ("domain", Hft_util.Json.Int w.w_domain);
        ("evaluated", Hft_util.Json.Int w.w_evaluated);
        ("classes", Hft_util.Json.Int w.w_classes);
        ("steals", Hft_util.Json.Int w.w_steals);
        ("stolen", Hft_util.Json.Int w.w_stolen);
        ("spec_hits", Hft_util.Json.Int w.w_spec_hits);
        ("spec_misses", Hft_util.Json.Int w.w_spec_misses);
        ("inline", Hft_util.Json.Int w.w_inline);
        ("busy_ms", Hft_util.Json.Float (ms w.w_busy_ns));
        ("idle_ms", Hft_util.Json.Float (ms w.w_idle_ns));
        ("stall_ms", Hft_util.Json.Float (ms w.w_stall_ns));
        ("utilization",
         Hft_util.Json.Float
           (float_of_int w.w_busy_ns /. float_of_int (max 1 wall_ns))) ]

  let to_json t =
    Hft_util.Json.Obj
      [ ("jobs", Hft_util.Json.Int t.s_jobs);
        ("waves", Hft_util.Json.Int t.s_waves);
        ("tasks", Hft_util.Json.Int t.s_tasks);
        ("wall_ms", Hft_util.Json.Float (ms t.s_wall_ns));
        ("critical_ms", Hft_util.Json.Float (ms t.s_critical_ns));
        ("window_fill", Hft_util.Json.Int t.s_window_fill);
        ("window_cap", Hft_util.Json.Int t.s_window_cap);
        ("occupancy", Hft_util.Json.Float (occupancy t));
        ("utilization", Hft_util.Json.Float (utilization t));
        ("steals", Hft_util.Json.Int (steals t));
        ("spec_hits", Hft_util.Json.Int (spec_hits t));
        ("spec_misses", Hft_util.Json.Int (spec_misses t));
        ("inline", Hft_util.Json.Int (inline t));
        ("spec_miss_rate", Hft_util.Json.Float (spec_miss_rate t));
        ("workers",
         Hft_util.Json.List
           (Array.to_list
              (Array.map (worker_to_json ~wall_ns:t.s_wall_ns) t.s_workers))) ]

  (* Degenerate stats for a campaign the engine ran sequentially
     (jobs = 1, or nothing to parallelise): one fully-busy worker, no
     speculation.  Emitted so every bench cell carries a utilization
     field regardless of path. *)
  let sequential ~classes ~wall_ns =
    { s_jobs = 1; s_waves = 0; s_tasks = 0; s_wall_ns = wall_ns;
      s_window_fill = 0; s_window_cap = 0; s_critical_ns = wall_ns;
      s_workers =
        [| { w_domain = 0; w_evaluated = 0; w_classes = classes;
             w_steals = 0; w_stolen = 0; w_spec_hits = 0; w_spec_misses = 0;
             w_inline = 0; w_busy_ns = wall_ns; w_idle_ns = 0;
             w_stall_ns = 0 } |] }

  type collector = {
    c_jobs : int;
    c_t0 : float;
    (* orchestrator-written *)
    mutable c_waves : int;
    mutable c_tasks : int;
    mutable c_window_fill : int;
    mutable c_window_cap : int;
    mutable c_critical_ns : int;
    mutable c_stall_ns : int;
    mutable c_last_wave_end : float option;
    mutable c_commit_flows : int list;  (* bind at the next commit slice *)
    mutable c_flow_base : int;  (* flow-id base of the current wave *)
    mutable c_next_flow : int;
    c_hits : int array;  (* per evaluating worker *)
    c_misses : int array;
    mutable c_inline : int;
    (* owner-written (slot [w] only ever touched by worker [w]) *)
    c_evaluated : int array;
    c_busy_ns : int array;
    c_idle_ns : int array;
    c_steal_from : int array array;  (* [thief].(victim) *)
    c_slices : (int * float * float * int) list array;
        (* per worker, reverse: task, start, dur, stolen_from (-1 = own) *)
    (* wave-scoped *)
    mutable c_owner : int array;  (* task -> evaluating worker, -1 = never *)
    mutable c_busy_snap : int array;  (* busy at wave start *)
  }

  let ns s = int_of_float (s *. 1e9)

  let collector ~jobs =
    { c_jobs = jobs; c_t0 = Hft_obs.Clock.now (); c_waves = 0; c_tasks = 0;
      c_window_fill = 0; c_window_cap = 0; c_critical_ns = 0; c_stall_ns = 0;
      c_last_wave_end = None; c_commit_flows = []; c_flow_base = 0;
      c_next_flow = 0; c_hits = Array.make jobs 0;
      c_misses = Array.make jobs 0; c_inline = 0;
      c_evaluated = Array.make jobs 0; c_busy_ns = Array.make jobs 0;
      c_idle_ns = Array.make jobs 0;
      c_steal_from = Array.init jobs (fun _ -> Array.make jobs 0);
      c_slices = Array.make jobs []; c_owner = [||]; c_busy_snap = [||] }

  (* Close the commit window that has been open since the last wave
     ended: account its duration as orchestrator stall and emit one
     "commit-window" slice on domain 0, terminating the flow arrows of
     every speculation committed inside it. *)
  let flush_commit c now =
    match c.c_last_wave_end with
    | None -> ()
    | Some t_end ->
      c.c_stall_ns <- c.c_stall_ns + max 0 (ns (now -. t_end));
      Hft_obs.Span.add_track ~flow_in:(List.rev c.c_commit_flows)
        ~args:
          [ ("committed", string_of_int (List.length c.c_commit_flows)) ]
        ~domain:0 ~name:"commit-window" ~start:t_end ~dur:(now -. t_end) ();
      c.c_commit_flows <- [];
      c.c_last_wave_end <- None

  let wave_begin c ~n =
    let now = Hft_obs.Clock.now () in
    flush_commit c now;
    c.c_waves <- c.c_waves + 1;
    c.c_tasks <- c.c_tasks + n;
    c.c_flow_base <- c.c_next_flow;
    c.c_next_flow <- c.c_next_flow + n;
    c.c_owner <- Array.make n (-1);
    c.c_busy_snap <- Array.copy c.c_busy_ns

  let wave_end c =
    let now = Hft_obs.Clock.now () in
    (* Flush the workers' task slices to the trace store (orchestrator
       thread; slice lists were owner-written before [launch]
       returned). *)
    Array.iteri
      (fun wid slices ->
        List.iter
          (fun (task, start, dur, stolen_from) ->
            let args =
              ("task", string_of_int task)
              ::
              (if stolen_from >= 0 then
                 [ ("stolen_from", string_of_int stolen_from) ]
               else [])
            in
            Hft_obs.Span.add_track ~flow_out:(c.c_flow_base + task) ~args
              ~domain:wid ~name:"eval" ~start ~dur ())
          (List.rev slices);
        c.c_slices.(wid) <- [])
      c.c_slices;
    let crit = ref 0 in
    Array.iteri
      (fun wid snap ->
        let d = c.c_busy_ns.(wid) - snap in
        if d > !crit then crit := d)
      c.c_busy_snap;
    c.c_critical_ns <- c.c_critical_ns + !crit;
    c.c_last_wave_end <- Some now

  (* Worker-side hooks, called from the pool's task loop. *)
  let worker_begin _c = Hft_obs.Clock.now ()

  let worker_end c wid t_enter =
    let wall = ns (Hft_obs.Clock.now () -. t_enter) in
    let busy = c.c_busy_ns.(wid) - c.c_busy_snap.(wid) in
    c.c_idle_ns.(wid) <- c.c_idle_ns.(wid) + max 0 (wall - busy)

  let task_run c ~wid ~task ~stolen_from run =
    let t0 = Hft_obs.Clock.now () in
    c.c_owner.(task) <- wid;
    c.c_evaluated.(wid) <- c.c_evaluated.(wid) + 1;
    if stolen_from >= 0 then
      c.c_steal_from.(wid).(stolen_from) <-
        c.c_steal_from.(wid).(stolen_from) + 1;
    let r = run () in
    let t1 = Hft_obs.Clock.now () in
    c.c_busy_ns.(wid) <- c.c_busy_ns.(wid) + max 0 (ns (t1 -. t0));
    c.c_slices.(wid) <- (task, t0, t1 -. t0, stolen_from) :: c.c_slices.(wid);
    r

  (* Engine-side hooks: the commit loop calls exactly one of
     [note_hit] / [note_miss] / [note_inline] per dispatched task, which
     is what makes hits + misses + inline = tasks a law rather than an
     approximation. *)
  let note_window c ~filled ~cap =
    c.c_window_fill <- c.c_window_fill + filled;
    c.c_window_cap <- c.c_window_cap + cap

  let owner_of c ~task =
    if task >= 0 && task < Array.length c.c_owner && c.c_owner.(task) >= 0
    then c.c_owner.(task)
    else 0

  let note_hit c ~task =
    let w = owner_of c ~task in
    c.c_hits.(w) <- c.c_hits.(w) + 1;
    c.c_commit_flows <- (c.c_flow_base + task) :: c.c_commit_flows

  let note_miss c ~task =
    let w = owner_of c ~task in
    c.c_misses.(w) <- c.c_misses.(w) + 1

  let note_inline c = c.c_inline <- c.c_inline + 1

  let finish c ~classes =
    let now = Hft_obs.Clock.now () in
    flush_commit c now;
    let wall_ns = max 0 (ns (now -. c.c_t0)) in
    let stolen = Array.make c.c_jobs 0 in
    Array.iteri
      (fun _thief row ->
        Array.iteri (fun v n -> stolen.(v) <- stolen.(v) + n) row)
      c.c_steal_from;
    let hits_other =
      Array.fold_left ( + ) 0 c.c_hits - c.c_hits.(0)
    in
    let workers =
      Array.init c.c_jobs (fun w ->
          { w_domain = w;
            w_evaluated = c.c_evaluated.(w);
            w_classes =
              (if w = 0 then classes - hits_other else c.c_hits.(w));
            w_steals = Array.fold_left ( + ) 0 c.c_steal_from.(w);
            w_stolen = stolen.(w);
            w_spec_hits = c.c_hits.(w);
            w_spec_misses = c.c_misses.(w);
            w_inline = (if w = 0 then c.c_inline else 0);
            w_busy_ns = c.c_busy_ns.(w);
            w_idle_ns = c.c_idle_ns.(w);
            w_stall_ns = (if w = 0 then c.c_stall_ns else 0) })
    in
    { s_jobs = c.c_jobs; s_waves = c.c_waves; s_tasks = c.c_tasks;
      s_wall_ns = wall_ns; s_window_fill = c.c_window_fill;
      s_window_cap = c.c_window_cap;
      s_critical_ns = c.c_critical_ns + c.c_stall_ns; s_workers = workers }
end

(* A bounded deque over a fixed index range; tasks are ints and nobody
   pushes after construction, so two cursors under a mutex suffice. *)
module Deque = struct
  type t = {
    d_lock : Mutex.t;
    d_items : int array;
    mutable d_lo : int;
    mutable d_hi : int;
  }

  let make items =
    { d_lock = Mutex.create (); d_items = items; d_lo = 0;
      d_hi = Array.length items }

  let pop_front d =
    Mutex.lock d.d_lock;
    let r =
      if d.d_lo < d.d_hi then begin
        let v = d.d_items.(d.d_lo) in
        d.d_lo <- d.d_lo + 1;
        Some v
      end
      else None
    in
    Mutex.unlock d.d_lock;
    r

  let steal_back d =
    Mutex.lock d.d_lock;
    let r =
      if d.d_lo < d.d_hi then begin
        let v = d.d_items.(d.d_hi - 1) in
        d.d_hi <- d.d_hi - 1;
        Some v
      end
      else None
    in
    Mutex.unlock d.d_lock;
    r
end

module Pool = struct
  type t = {
    p_jobs : int;
    p_lock : Mutex.t;
    p_work : Condition.t;        (* workers wait here for a new epoch *)
    p_done : Condition.t;        (* the caller waits here for the wave *)
    mutable p_epoch : int;
    mutable p_fn : (int -> unit) option;  (* worker id -> unit *)
    mutable p_finished : int;    (* workers done with the current epoch *)
    mutable p_shutdown : bool;
    mutable p_domains : unit Domain.t list;
  }

  let jobs t = t.p_jobs

  (* Body exceptions never escape [fn] (worker bodies are protected),
     but keep the accounting alive even if one does: a worker that
     failed to run its wave must still report in or the caller hangs. *)
  let run_wave fn wid = try fn wid with _ -> ()

  let worker_loop t wid () =
    (* Tag the domain once for telemetry: journal entries and spans this
       worker records directly (there are none on the engines' committed
       paths) carry its id, and the Chrome trace maps it to a tid. *)
    Hft_obs.Domain_id.set wid;
    let epoch = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      Mutex.lock t.p_lock;
      while (not t.p_shutdown) && t.p_epoch = !epoch do
        Condition.wait t.p_work t.p_lock
      done;
      if t.p_shutdown then begin
        Mutex.unlock t.p_lock;
        continue_ := false
      end
      else begin
        epoch := t.p_epoch;
        let fn = Option.get t.p_fn in
        Mutex.unlock t.p_lock;
        run_wave fn wid;
        Mutex.lock t.p_lock;
        t.p_finished <- t.p_finished + 1;
        if t.p_finished = t.p_jobs - 1 then Condition.signal t.p_done;
        Mutex.unlock t.p_lock
      end
    done

  (* Run [fn 0] .. [fn (jobs-1)], worker 0 on the calling thread.  The
     final lock round-trip gives the caller a happens-before edge over
     everything the workers wrote. *)
  let launch t fn =
    if t.p_jobs <= 1 then run_wave fn 0
    else begin
      Mutex.lock t.p_lock;
      t.p_fn <- Some fn;
      t.p_finished <- 0;
      t.p_epoch <- t.p_epoch + 1;
      Condition.broadcast t.p_work;
      Mutex.unlock t.p_lock;
      run_wave fn 0;
      Mutex.lock t.p_lock;
      while t.p_finished < t.p_jobs - 1 do
        Condition.wait t.p_done t.p_lock
      done;
      t.p_fn <- None;
      Mutex.unlock t.p_lock
    end

  let shutdown t =
    Mutex.lock t.p_lock;
    t.p_shutdown <- true;
    Condition.broadcast t.p_work;
    Mutex.unlock t.p_lock;
    List.iter Domain.join t.p_domains;
    Mutex.lock t.p_lock;
    t.p_domains <- [];
    Mutex.unlock t.p_lock

  let pools : (int * t) list ref = ref []
  let pools_lock = Mutex.create ()
  let at_exit_installed = ref false

  let create jobs =
    let t =
      { p_jobs = jobs; p_lock = Mutex.create ();
        p_work = Condition.create (); p_done = Condition.create ();
        p_epoch = 0; p_fn = None; p_finished = 0; p_shutdown = false;
        p_domains = [] }
    in
    t.p_domains <-
      List.init (jobs - 1) (fun i -> Domain.spawn (worker_loop t (i + 1)));
    t

  let get ~jobs =
    let jobs = clamp_jobs jobs in
    Mutex.lock pools_lock;
    let t =
      match List.assoc_opt jobs !pools with
      | Some t -> t
      | None ->
        let t = create jobs in
        pools := (jobs, t) :: !pools;
        if not !at_exit_installed then begin
          at_exit_installed := true;
          at_exit (fun () ->
              let ps =
                Mutex.lock pools_lock;
                let ps = !pools in
                pools := [];
                Mutex.unlock pools_lock;
                ps
              in
              List.iter (fun (_, t) -> shutdown t) ps)
        end;
        t
    in
    Mutex.unlock pools_lock;
    t

  let parallel (type ws) t ?stats ~(init : unit -> ws) (k : ws section -> 'b)
      : 'b =
    (* One lazily-built workspace per worker; slot [w] is only ever
       touched by worker [w] (worker ids are stable across waves), so
       no lock is needed. *)
    let slots : ws option array = Array.make t.p_jobs None in
    let workspace wid =
      match slots.(wid) with
      | Some ws -> ws
      | None ->
        let ws = init () in
        slots.(wid) <- Some ws;
        ws
    in
    let run : type a. n:int -> f:(ws -> int -> a) ->
      a option array * Hft_robust.Failure.t list =
     fun ~n ~f ->
      let results = Array.make n None in
      let fails = ref [] in
      let fails_lock = Mutex.create () in
      let deques =
        Array.init t.p_jobs (fun w ->
            (* Round-robin striping keeps each deque front-loaded with
               low task indexes, so owners work commit-order first. *)
            let mine = ref [] in
            for k = n - 1 downto 0 do
              if k mod t.p_jobs = w then mine := k :: !mine
            done;
            Deque.make (Array.of_list !mine))
      in
      (match stats with Some c -> Stats.wave_begin c ~n | None -> ());
      let body wid =
        let t_enter =
          match stats with Some c -> Stats.worker_begin c | None -> 0.0
        in
        let exec ws ~stolen_from k =
          match stats with
          | None -> results.(k) <- Some (f ws k)
          | Some c ->
            results.(k) <-
              Some (Stats.task_run c ~wid ~task:k ~stolen_from (fun () ->
                        f ws k))
        in
        (match
           Hft_robust.Supervisor.protect ~site:Hft_robust.Chaos.Shard
             (fun () ->
               let ws = workspace wid in
               let rec drain () =
                 match Deque.pop_front deques.(wid) with
                 | Some k ->
                   exec ws ~stolen_from:(-1) k;
                   drain ()
                 | None -> steal 1
               and steal off =
                 if off < t.p_jobs then
                   let victim = (wid + off) mod t.p_jobs in
                   match Deque.steal_back deques.(victim) with
                   | Some k ->
                     exec ws ~stolen_from:victim k;
                     steal 1
                   | None -> steal (off + 1)
               in
               drain ())
         with
         | Ok () -> ()
         | Error fail ->
           Mutex.lock fails_lock;
           fails := fail :: !fails;
           Mutex.unlock fails_lock);
        match stats with
        | Some c -> Stats.worker_end c wid t_enter
        | None -> ()
      in
      launch t body;
      (match stats with Some c -> Stats.wave_end c | None -> ());
      (results, List.rev !fails)
    in
    k { run }
end
