(** [Hft_par]: a fixed-size OCaml 5 domain pool for the ATPG engines.

    The engines split a fault campaign into collapsed fault classes and
    evaluate them speculatively on the pool — each worker drains its own
    deque of class indexes front-first (lowest class index first, i.e.
    most commit-urgent first) and steals from the back of other workers'
    deques when it runs dry.  Results come back as an [option] per task:
    [None] means that task's shard died (or chaos killed it) and the
    caller must fall back to computing the task inline.  Determinism is
    the {e caller's} contract — the pool only promises that every task
    ran at most once and that all side effects of worker bodies
    happened-before [run] returned.

    The calling thread participates as worker 0, so [jobs = n] uses
    exactly [n] domains ([n - 1] spawned).  Pools persist per jobs
    count and are reused across campaigns — domain spawn costs are paid
    once per process, not once per [run]. *)

val clamp_jobs : int -> int
(** Clamp a user-supplied jobs count to [1 .. 64]. *)

val jobs_from_env : unit -> int
(** Parse [HFT_JOBS]; unset, unparsable or < 1 mean [1]. *)

type 'ws section = {
  run :
    'a.
    n:int ->
    f:('ws -> int -> 'a) ->
    'a option array * Hft_robust.Failure.t list;
}
(** One parallel section with per-worker workspaces of type ['ws].
    [run ~n ~f] evaluates [f ws k] for [k = 0 .. n-1] across the pool
    and returns the results plus the failures of any shard whose body
    was killed ({!Hft_robust.Supervisor.protect} wraps each worker,
    site {!Hft_robust.Chaos.site} [Shard]).  [results.(k) = None] iff
    task [k] never completed — its shard died first; re-run it inline.
    Workspaces are created lazily, one per worker, and persist across
    successive [run] calls of the same section. *)

module Pool : sig
  type t

  val get : jobs:int -> t
  (** The process-wide pool with [clamp_jobs jobs] workers, spawning it
      on first use.  Pools are cached per jobs count and shut down at
      process exit. *)

  val jobs : t -> int

  val parallel : t -> init:(unit -> 'ws) -> ('ws section -> 'b) -> 'b
  (** [parallel t ~init k] opens a section whose per-worker workspaces
      are built by [init] (on the worker that uses them, at most once
      per worker) and runs [k] with it.  [k] runs on the calling
      thread; only [section.run] bodies execute on the pool. *)
end
