(** [Hft_par]: a fixed-size OCaml 5 domain pool for the ATPG engines.

    The engines split a fault campaign into collapsed fault classes and
    evaluate them speculatively on the pool — each worker drains its own
    deque of class indexes front-first (lowest class index first, i.e.
    most commit-urgent first) and steals from the back of other workers'
    deques when it runs dry.  Results come back as an [option] per task:
    [None] means that task's shard died (or chaos killed it) and the
    caller must fall back to computing the task inline.  Determinism is
    the {e caller's} contract — the pool only promises that every task
    ran at most once and that all side effects of worker bodies
    happened-before [run] returned.

    The calling thread participates as worker 0, so [jobs = n] uses
    exactly [n] domains ([n - 1] spawned).  Pools persist per jobs
    count and are reused across campaigns — domain spawn costs are paid
    once per process, not once per [run]. *)

val clamp_jobs : int -> int
(** Clamp a user-supplied jobs count to [1 .. 64]. *)

val jobs_from_env : unit -> int
(** Parse [HFT_JOBS]; unset, unparsable or < 1 mean [1]. *)

type 'ws section = {
  run :
    'a.
    n:int ->
    f:('ws -> int -> 'a) ->
    'a option array * Hft_robust.Failure.t list;
}

(** Scheduler telemetry for one parallel campaign.

    A {!Stats.collector} rides along a {!Pool.parallel} section and
    accumulates lock-free: per-worker cells are written only by their
    owning domain, commit-side tallies only by the orchestrating
    thread, and the merge happens after the wave barrier's
    happens-before edge.  Collection is purely observational — task
    order, results and committed telemetry are bit-identical with or
    without a collector.

    Three conservation laws hold by construction and are gated in CI:
    {ul
    {- [spec_hits + spec_misses + inline = tasks] — the engine commit
       loop buckets every dispatched task exactly once;}
    {- [Σ w_classes = committed classes] — hits are attributed to the
       evaluating worker, everything else to the orchestrator;}
    {- [Σ (busy + idle + stall) ≤ jobs × wall] — idle counts in-wave
       time only (parked workers are not busy-waiting).}} *)
module Stats : sig
  type worker = {
    w_domain : int;
    w_evaluated : int;  (** speculative tasks this worker ran *)
    w_classes : int;  (** committed classes attributed to it *)
    w_steals : int;  (** tasks it took from other workers' deques *)
    w_stolen : int;  (** tasks other workers took from its deque *)
    w_spec_hits : int;  (** its speculations replayed at commit *)
    w_spec_misses : int;  (** its speculations discarded at commit *)
    w_inline : int;  (** inline recomputes (orchestrator only) *)
    w_busy_ns : int;  (** time on speculative tasks *)
    w_idle_ns : int;  (** in-wave time not spent on tasks *)
    w_stall_ns : int;  (** commit-window time (orchestrator only) *)
  }

  type t = {
    s_jobs : int;
    s_waves : int;
    s_tasks : int;  (** tasks dispatched across all waves *)
    s_wall_ns : int;  (** collector lifetime *)
    s_window_fill : int;  (** Σ commit-window occupancy *)
    s_window_cap : int;  (** Σ commit-window capacity *)
    s_critical_ns : int;  (** Σ per-wave max busy + commit stalls *)
    s_workers : worker array;  (** indexed by domain id, worker 0 first *)
  }

  val busy_ns : t -> int
  val steals : t -> int
  val spec_hits : t -> int
  val spec_misses : t -> int
  val inline : t -> int

  (** Σ busy / (jobs × wall) — 1.0 means every domain spent the whole
      campaign on useful work. *)
  val utilization : t -> float

  (** Mean commit-window occupancy, Σfill / Σcap ([0] when no waves). *)
  val occupancy : t -> float

  (** spec_misses / tasks ([0] when no tasks). *)
  val spec_miss_rate : t -> float

  val to_json : t -> Hft_util.Json.t

  (** Degenerate stats for a sequentially-run campaign: one fully-busy
      worker holding all [classes], no speculation — so every consumer
      sees a utilization field regardless of engine path. *)
  val sequential : classes:int -> wall_ns:int -> t

  type collector

  (** Start collecting; pass the result to {!Pool.parallel}. *)
  val collector : jobs:int -> collector

  (** Engine-side commit-loop hooks (orchestrator thread only).  The
      loop must call exactly one of {!note_hit} / {!note_miss} /
      {!note_inline} per dispatched task; [task] is the wave-local
      index. *)
  val note_window : collector -> filled:int -> cap:int -> unit

  val note_hit : collector -> task:int -> unit
  val note_miss : collector -> task:int -> unit
  val note_inline : collector -> unit

  (** Merge and seal: [classes] is the campaign's committed class
      count.  Also closes the final commit window and flushes its trace
      slice. *)
  val finish : collector -> classes:int -> t
end
(** One parallel section with per-worker workspaces of type ['ws].
    [run ~n ~f] evaluates [f ws k] for [k = 0 .. n-1] across the pool
    and returns the results plus the failures of any shard whose body
    was killed ({!Hft_robust.Supervisor.protect} wraps each worker,
    site {!Hft_robust.Chaos.site} [Shard]).  [results.(k) = None] iff
    task [k] never completed — its shard died first; re-run it inline.
    Workspaces are created lazily, one per worker, and persist across
    successive [run] calls of the same section. *)

module Pool : sig
  type t

  val get : jobs:int -> t
  (** The process-wide pool with [clamp_jobs jobs] workers, spawning it
      on first use.  Pools are cached per jobs count and shut down at
      process exit. *)

  val jobs : t -> int

  val parallel :
    t -> ?stats:Stats.collector -> init:(unit -> 'ws) ->
    ('ws section -> 'b) -> 'b
  (** [parallel t ~init k] opens a section whose per-worker workspaces
      are built by [init] (on the worker that uses them, at most once
      per worker) and runs [k] with it.  [k] runs on the calling
      thread; only [section.run] bodies execute on the pool.  [stats]
      attaches a scheduler-telemetry collector: each [run] becomes one
      measured wave (per-task busy slices, steal counts, idle time,
      commit-stall windows) at no change to results. *)
end
