(** Variable lifetimes under a schedule.

    Lifetimes are half-open intervals over step boundaries: a variable
    produced at the end of step [c] and last read during step [u]
    occupies a register during steps [c+1 .. u], encoded as
    [Interval.make c u].  Conventions:

    - primary inputs are loaded at boundary 0 and live to their last use;
    - primary outputs live to the end of the iteration ([n_steps]);
    - feedback sources live to [n_steps] (they are latched into the
      state register at the iteration boundary);
    - feedback destinations (state variables) are live from boundary 0;
    - constants are wired, not registered: their lifetime is empty.

    Variables tied by a feedback pair must share a register; {!classes}
    returns the induced register-sharing pre-merge. *)

type info = {
  intervals : Hft_util.Interval.t array; (** per variable id *)
  merged : Hft_util.Union_find.t;        (** register sharing classes *)
  wrap_moves : (int * int) list;
    (** feedback pairs [(src, dst)] whose lifetimes overlap and thus
        could {e not} be merged; the data path must copy [src]'s register
        into [dst]'s at the end of the iteration, and [dst]'s register
        receives a write at the final step boundary *)
  held_final : bool array;
    (** per variable: the value must survive the final step boundary
        (primary outputs, merged feedback sources, wrap destinations) and
        so must not share a register with anything written there *)
  n_steps : int;
}

val compute : Graph.t -> Schedule.t -> info

(** Classes receiving an end-of-iteration wrap write (the [dst] sides of
    [wrap_moves], as class representatives). *)
val wrap_written_classes : info -> int list

(** [conflict info u v] — must [u] and [v] be kept in different
    registers?  Members of the same class never conflict with each
    other; a class conflicts when any member pair does.  Classes written
    at the final step boundary (wrap writes, births at [n_steps])
    conflict with each other even when their intervals are empty — two
    values cannot be latched into one register on the same clock
    edge. *)
val conflict : info -> int -> int -> bool

(** Representative-keyed lifetime of a merge class: hull of members. *)
val class_interval : info -> int -> Hft_util.Interval.t

(** Members of a variable's merge class (including itself). *)
val class_members : info -> int -> int list

(** Registerable variables: one representative per merge class.  Classes
    with an empty lifetime are skipped unless they contain a primary
    output or feedback source, which must be latched at the final step
    boundary regardless. *)
val register_candidates : Graph.t -> info -> int list
