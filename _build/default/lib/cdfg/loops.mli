(** CDFG loop analysis (survey section 3.3.1).

    A CDFG loop is a cycle of data-dependency edges once loop-carried
    feedback pairs are included.  Every CDFG loop necessarily becomes a
    data-path loop in any implementation, unless one of the variables
    carried around the loop is held in a scan register. *)

type loop = {
  ops : int list;   (** operation ids around the cycle, smallest first *)
  vars : int list;  (** variables carried along the cycle's edges *)
}

(** Enumerate loops, bounded; defaults generous enough for the benchmark
    suite ([max_len = 24], [max_count = 4096]). *)
val enumerate : ?max_len:int -> ?max_count:int -> Graph.t -> loop list

(** [breaks g loop scan_vars] — does scanning one of [scan_vars] break
    [loop]?  True iff some scanned variable is carried on the loop. *)
val breaks : loop -> int list -> bool

(** Loops not broken by the given scan-variable set. *)
val unbroken : loop list -> int list -> loop list

(** For each variable, the number of enumerated loops it lies on — the
    raw ingredient of the loop-cutting effectiveness measure. *)
val loop_membership : Graph.t -> loop list -> int array
