(** Schedules: the assignment of each operation to control steps.

    Control steps are numbered [1 .. n_steps].  An operation with start
    step [c] and latency [l] finishes at step [c + l - 1]; its result is
    available at the step boundary [c + l - 1] and can first be consumed
    in step [c + l].  There is no operation chaining within a step. *)

type t = {
  start : int array;      (** per op, 1-based start step *)
  latency : int array;    (** per op, >= 1 *)
  n_steps : int;
}

(** [make g ~n_steps ?latency start] validates the schedule against the
    CDFG's dependencies; raises [Invalid_argument] on violation.
    [latency] defaults to 1 for every op ([Move] included). *)
val make : Graph.t -> n_steps:int -> ?latency:int array -> int array -> t

val finish_step : t -> int -> int

(** Ops running (occupying their FU) during step [c], i.e. with
    [start <= c <= finish]. *)
val ops_in_step : t -> int -> int list

(** True when all data dependencies are satisfied (used by property
    tests; [make] already enforces it). *)
val is_valid : Graph.t -> t -> bool

(** Per-class FU demand: the max number of same-class ops simultaneously
    executing in any step. *)
val fu_demand : Graph.t -> t -> (Op.fu_class * int) list

val pp : Graph.t -> t -> string
