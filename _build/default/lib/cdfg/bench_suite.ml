open Builder

(* HAL differential equation solver:
     while (x < a) {
       xl = x + dx;
       ul = u - 3*x*u*dx - 3*y*dx;
       yl = y + u*dx;
       x = xl; u = ul; y = yl;
     } *)
let diffeq () =
  let b = create "diffeq" in
  let x = input b "x" in
  let y = input b "y" in
  let u = input b "u" in
  let dx = input b "dx" in
  let a = input b "a" in
  let three = const b 3 in
  let xl = binop b Op.Add x dx ~name:"xl" in
  let m1 = binop b Op.Mul three x ~name:"m1" in
  let m2 = binop b Op.Mul u dx ~name:"m2" in
  let m3 = binop b Op.Mul m1 m2 ~name:"m3" in
  let m4 = binop b Op.Mul three y ~name:"m4" in
  let m5 = binop b Op.Mul m4 dx ~name:"m5" in
  let s1 = binop b Op.Sub u m3 ~name:"s1" in
  let ul = binop b Op.Sub s1 m5 ~name:"ul" in
  let m6 = binop b Op.Mul u dx ~name:"m6" in
  let yl = binop b Op.Add y m6 ~name:"yl" in
  let c = binop b Op.Lt xl a ~name:"cond" in
  mark_output b c;
  mark_output b yl;
  feedback b ~src:xl ~dst:x;
  feedback b ~src:ul ~dst:u;
  feedback b ~src:yl ~dst:y;
  finish b

(* 5th-order elliptic wave digital filter assembled from two-port
   adaptor sections.  Each first-degree all-pass section around state
   s_i uses one multiplier (adaptor coefficient g_i) and adders:
       d  = in - s_i
       t  = g_i * d
       out = s_i + t          (reflected wave)
       s_i' = in + t          (next state)
   Sections are interleaved with the input/output summing network of
   the ladder: 5 states, 8 multipliers (5 adaptors + 3 scaling taps),
   22 add/sub operations. *)
let ewf () =
  let b = create "ewf" in
  let xin = input b "xin" in
  let g = Array.init 5 (fun i -> input b (Printf.sprintf "g%d" i)) in
  let k = Array.init 3 (fun i -> input b (Printf.sprintf "k%d" i)) in
  let s = Array.init 5 (fun i -> state b (Printf.sprintf "s%d" i)) in
  let adaptor idx inp =
    let d = binop b Op.Sub inp s.(idx) ~name:(Printf.sprintf "d%d" idx) in
    let t = binop b Op.Mul g.(idx) d ~name:(Printf.sprintf "t%d" idx) in
    let out = binop b Op.Add s.(idx) t ~name:(Printf.sprintf "r%d" idx) in
    let s' = binop b Op.Add inp t ~name:(Printf.sprintf "sn%d" idx) in
    feedback b ~src:s' ~dst:s.(idx);
    out
  in
  (* Upper all-pass branch: sections 0-1-2 in cascade. *)
  let u0 = adaptor 0 xin in
  let u1 = adaptor 1 u0 in
  let u2 = adaptor 2 u1 in
  (* Lower all-pass branch: sections 3-4 in cascade. *)
  let l0 = adaptor 3 xin in
  let l1 = adaptor 4 l0 in
  (* Output summing network with three scaling taps. *)
  let sum = binop b Op.Add u2 l1 ~name:"sum" in
  let dif = binop b Op.Sub u2 l1 ~name:"dif" in
  let w0 = binop b Op.Mul k.(0) sum ~name:"w0" in
  let w1 = binop b Op.Mul k.(1) dif ~name:"w1" in
  let w2 = binop b Op.Mul k.(2) sum ~name:"w2" in
  let y0 = binop b Op.Add w0 w1 ~name:"y0" in
  let y1 = binop b Op.Sub w2 w1 ~name:"y1" in
  let yout = binop b Op.Add y0 y1 ~name:"yout" in
  mark_output b yout;
  finish b

let fir8 () =
  let b = create "fir8" in
  let x = input b "x" in
  let c = Array.init 8 (fun i -> input b (Printf.sprintf "c%d" i)) in
  let taps = Array.init 7 (fun i -> state b (Printf.sprintf "z%d" i)) in
  (* Products over the delay line. *)
  let prods =
    Array.init 8 (fun i ->
        let src = if i = 0 then x else taps.(i - 1) in
        binop b Op.Mul c.(i) src ~name:(Printf.sprintf "p%d" i))
  in
  let acc = ref prods.(0) in
  for i = 1 to 7 do
    acc := binop b Op.Add !acc prods.(i) ~name:(Printf.sprintf "a%d" i)
  done;
  mark_output b !acc;
  (* Shift the delay line with register moves. *)
  for i = 6 downto 1 do
    let mv = move b taps.(i - 1) ~name:(Printf.sprintf "sh%d" i) in
    feedback b ~src:mv ~dst:taps.(i)
  done;
  let mv0 = move b x ~name:"sh0" in
  feedback b ~src:mv0 ~dst:taps.(0);
  finish b

(* One direct-form-II biquad:
     w  = x - a1*w1 - a2*w2
     y  = b0*w + b1*w1 + b2*w2
     w2 = w1; w1 = w *)
let biquad b tag x =
  let nm s = Printf.sprintf "%s_%s" tag s in
  let a1 = input b (nm "a1") in
  let a2 = input b (nm "a2") in
  let b0 = input b (nm "b0") in
  let b1 = input b (nm "b1") in
  let b2 = input b (nm "b2") in
  let w1 = state b (nm "w1") in
  let w2 = state b (nm "w2") in
  let m1 = binop b Op.Mul a1 w1 ~name:(nm "m1") in
  let m2 = binop b Op.Mul a2 w2 ~name:(nm "m2") in
  let s1 = binop b Op.Sub x m1 ~name:(nm "s1") in
  let w = binop b Op.Sub s1 m2 ~name:(nm "w") in
  let m3 = binop b Op.Mul b0 w ~name:(nm "m3") in
  let m4 = binop b Op.Mul b1 w1 ~name:(nm "m4") in
  let m5 = binop b Op.Mul b2 w2 ~name:(nm "m5") in
  let s2 = binop b Op.Add m3 m4 ~name:(nm "s2") in
  let y = binop b Op.Add s2 m5 ~name:(nm "y") in
  let w1copy = move b w1 ~name:(nm "w1c") in
  feedback b ~src:w1copy ~dst:w2;
  feedback b ~src:w ~dst:w1;
  y

let iir4 () =
  let b = create "iir4" in
  let x = input b "x" in
  let y1 = biquad b "bq1" x in
  let y2 = biquad b "bq2" y1 in
  mark_output b y2;
  finish b

(* Normalised lattice stage:
     f_out = f_in - k*b_state
     b_out = b_state + k*f_out     (b_out registered into next stage) *)
let ar_lattice () =
  let b = create "ar_lattice" in
  let f = ref (input b "fin") in
  let prev_b = ref None in
  for i = 0 to 3 do
    let k = input b (Printf.sprintf "k%d" i) in
    let bs = state b (Printf.sprintf "b%d" i) in
    let m1 = binop b Op.Mul k bs ~name:(Printf.sprintf "lm%d" i) in
    let fo = binop b Op.Sub !f m1 ~name:(Printf.sprintf "f%d" i) in
    let m2 = binop b Op.Mul k fo ~name:(Printf.sprintf "lm%db" i) in
    let bo = binop b Op.Add bs m2 ~name:(Printf.sprintf "bo%d" i) in
    (match !prev_b with
     | None -> mark_output b bo (* final backward wave leaves the lattice *)
     | Some dst -> feedback b ~src:bo ~dst);
    prev_b := Some bs;
    f := fo
  done;
  (* Close the delay line: last backward wave re-enters the last state. *)
  (match !prev_b with
   | Some dst ->
     let mv = move b !f ~name:"bclose" in
     feedback b ~src:mv ~dst
   | None -> assert false);
  mark_output b !f;
  finish b

let tseng () =
  let b = create "tseng" in
  let i1 = input b "i1" in
  let i2 = input b "i2" in
  let i3 = input b "i3" in
  let i4 = input b "i4" in
  let t1 = binop b Op.Add i1 i2 ~name:"t1" in
  let t2 = binop b Op.And i3 i4 ~name:"t2" in
  let t3 = binop b Op.Sub t1 i3 ~name:"t3" in
  let t4 = binop b Op.Or t2 i1 ~name:"t4" in
  let t5 = binop b Op.Mul t3 t4 ~name:"t5" in
  let t6 = binop b Op.Add t5 t2 ~name:"t6" in
  let t7 = binop b Op.Lt t6 i4 ~name:"t7" in
  mark_output b t6;
  mark_output b t7;
  finish b

(* 4-point DCT as two butterfly stages with rotation coefficients. *)
let dct4 () =
  let b = create "dct4" in
  let x = Array.init 4 (fun i -> input b (Printf.sprintf "x%d" i)) in
  let c = Array.init 4 (fun i -> input b (Printf.sprintf "c%d" i)) in
  (* Stage 1: butterflies. *)
  let s0 = binop b Op.Add x.(0) x.(3) ~name:"s0" in
  let s1 = binop b Op.Add x.(1) x.(2) ~name:"s1" in
  let d0 = binop b Op.Sub x.(0) x.(3) ~name:"d0" in
  let d1 = binop b Op.Sub x.(1) x.(2) ~name:"d1" in
  (* Stage 2: rotations. *)
  let y0a = binop b Op.Mul c.(0) s0 ~name:"y0a" in
  let y0b = binop b Op.Mul c.(0) s1 ~name:"y0b" in
  let y0 = binop b Op.Add y0a y0b ~name:"y0" in
  let y2a = binop b Op.Mul c.(2) s0 ~name:"y2a" in
  let y2b = binop b Op.Mul c.(2) s1 ~name:"y2b" in
  let y2 = binop b Op.Sub y2a y2b ~name:"y2" in
  let y1a = binop b Op.Mul c.(1) d0 ~name:"y1a" in
  let y1b = binop b Op.Mul c.(3) d1 ~name:"y1b" in
  let y1 = binop b Op.Add y1a y1b ~name:"y1" in
  let y3a = binop b Op.Mul c.(3) d0 ~name:"y3a" in
  let y3b = binop b Op.Mul c.(1) d1 ~name:"y3b" in
  let y3 = binop b Op.Sub y3a y3b ~name:"y3" in
  List.iter (mark_output b) [ y0; y1; y2; y3 ];
  finish b

(* 4-tap LMS adaptive FIR:
     y   = sum c_i * z_i          (z_0 = x, z_i taps)
     e   = d - y
     g   = mu * e
     c_i' = c_i + g * z_i         (coefficient update loops)
     z_i' = z_{i-1}               (delay line) *)
let lms4 () =
  let b = create "lms4" in
  let x = input b "x" in
  let d = input b "d" in
  let mu = input b "mu" in
  let c = Array.init 4 (fun i -> state b (Printf.sprintf "c%d" i)) in
  let z = Array.init 3 (fun i -> state b (Printf.sprintf "z%d" i)) in
  let tap i = if i = 0 then x else z.(i - 1) in
  let prods =
    Array.init 4 (fun i -> binop b Op.Mul c.(i) (tap i) ~name:(Printf.sprintf "p%d" i))
  in
  let acc01 = binop b Op.Add prods.(0) prods.(1) ~name:"acc01" in
  let acc23 = binop b Op.Add prods.(2) prods.(3) ~name:"acc23" in
  let y = binop b Op.Add acc01 acc23 ~name:"y" in
  let e = binop b Op.Sub d y ~name:"e" in
  let gmu = binop b Op.Mul mu e ~name:"g" in
  Array.iteri
    (fun i ci ->
      let upd = binop b Op.Mul gmu (tap i) ~name:(Printf.sprintf "u%d" i) in
      let ci' = binop b Op.Add ci upd ~name:(Printf.sprintf "cn%d" i) in
      feedback b ~src:ci' ~dst:ci)
    c;
  for i = 2 downto 1 do
    let mv = move b z.(i - 1) ~name:(Printf.sprintf "zs%d" i) in
    feedback b ~src:mv ~dst:z.(i)
  done;
  let mv0 = move b x ~name:"zs0" in
  feedback b ~src:mv0 ~dst:z.(0);
  mark_output b y;
  mark_output b e;
  finish b

let all () =
  [ ("diffeq", diffeq ()); ("ewf", ewf ()); ("fir8", fir8 ());
    ("iir4", iir4 ()); ("ar_lattice", ar_lattice ()); ("tseng", tseng ());
    ("dct4", dct4 ()); ("lms4", lms4 ()) ]

let by_name n =
  match List.assoc_opt n (all ()) with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Bench_suite.by_name: unknown %s" n)

let chain n =
  let b = create (Printf.sprintf "chain%d" n) in
  let x = input b "x" in
  let y = input b "y" in
  let acc = ref x in
  for i = 1 to n do
    acc := binop b Op.Add !acc y ~name:(Printf.sprintf "n%d" i)
  done;
  mark_output b !acc;
  finish b

let tree depth =
  let b = create (Printf.sprintf "tree%d" depth) in
  let n = 1 lsl depth in
  let leaves = Array.init n (fun i -> input b (Printf.sprintf "x%d" i)) in
  let rec reduce level vs =
    match vs with
    | [ v ] -> v
    | _ ->
      let rec pair acc = function
        | a :: c :: tl ->
          pair (binop b Op.Add a c ~name:(Printf.sprintf "l%d_%d" level (List.length acc)) :: acc) tl
        | [ a ] -> pair (a :: acc) []
        | [] -> List.rev acc
      in
      reduce (level + 1) (pair [] vs)
  in
  let r = reduce 0 (Array.to_list leaves) in
  mark_output b r;
  finish b

let random rng ~n_inputs ~n_ops ~p_feedback =
  let open Hft_util in
  let b = create "random" in
  let pool = ref [] in
  for i = 0 to n_inputs - 1 do
    pool := input b (Printf.sprintf "in%d" i) :: !pool
  done;
  let kinds = [| Op.Add; Op.Sub; Op.Mul; Op.Add; Op.Sub |] in
  let produced = ref [] in
  for i = 0 to n_ops - 1 do
    let arr = Array.of_list !pool in
    let a = arr.(Rng.int rng (Array.length arr)) in
    let c = arr.(Rng.int rng (Array.length arr)) in
    let kind = kinds.(Rng.int rng (Array.length kinds)) in
    let r = binop b kind a c ~name:(Printf.sprintf "r%d" i) in
    pool := r :: !pool;
    produced := r :: !produced
  done;
  (* Mark the last few results as outputs so everything is reachable. *)
  (match !produced with
   | [] -> ()
   | last :: _ -> mark_output b last);
  (* Random feedback: route some produced values back to state vars. *)
  List.iter
    (fun r ->
      if Rng.float rng < p_feedback then begin
        let s = state b (Printf.sprintf "st%d" r) in
        (* State feeds nothing yet; hook it into the graph via a move to
           keep it registered, then close the loop. *)
        let mv = move b s ~name:(Printf.sprintf "stm%d" r) in
        mark_output b mv;
        feedback b ~src:r ~dst:s
      end)
    !produced;
  finish b
