(** Imperative construction of {!Graph.t} values.

    Typical use:
    {[
      let b = Builder.create "diffeq" in
      let x = Builder.input b "x" in
      let dx = Builder.input b "dx" in
      let xl = Builder.binop b Op.Add x dx ~name:"xl" in
      Builder.feedback b ~src:xl ~dst:x;
      Builder.mark_output b xl;
      let g = Builder.finish b in
      ...
    ]} *)

type t

val create : string -> t

(** Declare a primary input variable. *)
val input : t -> string -> int

(** Declare a state variable: not a primary input, holds the value
    carried over from the previous iteration (initially 0/reset). *)
val state : t -> string -> int

(** Declare a compile-time constant. *)
val const : t -> int -> int

(** [binop b kind a c] adds a two-operand operation and returns its
    result variable.  [name] defaults to a generated temporary name. *)
val binop : t -> ?name:string -> Op.kind -> int -> int -> int

(** Unary register move. *)
val move : t -> ?name:string -> int -> int

(** Mark a variable as a primary output. *)
val mark_output : t -> int -> unit

(** Loop-carried pair: next iteration's [dst] is this iteration's
    [src]. *)
val feedback : t -> src:int -> dst:int -> unit

(** Request a behavioural test-mode control / observe point on a
    variable (survey section 3.4). *)
val test_control : t -> int -> unit
val test_observe : t -> int -> unit

(** Validate and freeze. *)
val finish : t -> Graph.t
