(** Behaviour-preserving CDFG transformations for testability
    (survey section 3.4; Dey–Potkonjak ITC'94).

    A {e deflection operation} is an operation with an identity element
    as one operand (add-0, mul-1): inserting one on a data edge leaves
    the computed function unchanged but splits a variable's lifetime in
    two, relieving register-sharing bottlenecks so scan variables can
    share scan registers. *)

(** [insert_deflection g ~var ~consumer] rebuilds [g] with a deflection
    op between the definition of [var] and its use by op [consumer]:
    the consumer reads [var'] = [var] + 0 instead.  Raises
    [Invalid_argument] if [consumer] does not read [var]. *)
val insert_deflection : Graph.t -> var:int -> consumer:int -> Graph.t

(** [insert_deflections g pairs] applies several insertions; pairs are
    [(var, consumer op id)] in the {e original} graph's numbering. *)
val insert_deflections : Graph.t -> (int * int) list -> Graph.t

(** [add_test_points g ~controls ~observes] marks variables with
    test-mode control/observe points (metadata consumed by synthesis;
    each costs one test register / I/O route in the area model). *)
val add_test_points : Graph.t -> controls:int list -> observes:int list -> Graph.t

(** [equivalent ~width ~trials rng a b] — empirical behaviour check:
    run both graphs on [trials] random input/state valuations and
    compare every primary output and feedback source by name.  The
    graphs must declare identical input/output/state names. *)
val equivalent :
  width:int -> trials:int -> Hft_util.Rng.t -> Graph.t -> Graph.t -> bool
