type loop = { ops : int list; vars : int list }

(* The variables carried by cycle edge o1 -> o2 are the result of o1
   when o2 consumes it directly, plus, when the edge is a feedback edge,
   both the feedback source and destination variables (they share a
   register, so scanning either breaks the loop). *)
let edge_vars g o1 o2 =
  let r = (Graph.op g o1).Graph.o_result in
  let direct =
    if Array.exists (fun a -> a = r) (Graph.op g o2).Graph.o_args then [ r ]
    else []
  in
  let via_feedback =
    List.concat_map
      (fun (src, dst) ->
        let produced_by_o1 =
          match Graph.producer g src with
          | Some p -> p.Graph.o_id = o1
          | None -> false
        in
        let consumed_by_o2 =
          Array.exists (fun a -> a = dst) (Graph.op g o2).Graph.o_args
        in
        if produced_by_o1 && consumed_by_o2 then [ src; dst ] else [])
      g.Graph.feedback
  in
  List.sort_uniq compare (direct @ via_feedback)

let enumerate ?(max_len = 24) ?(max_count = 4096) g =
  let dg = Graph.op_graph_with_feedback g in
  let cycles = Hft_util.Digraph.cycles dg ~max_len ~max_count in
  List.map
    (fun ops ->
      let rec pairs = function
        | [] -> []
        | [ last ] -> [ (last, List.hd ops) ]
        | a :: (b :: _ as tl) -> (a, b) :: pairs tl
      in
      let vars =
        List.concat_map (fun (a, b) -> edge_vars g a b) (pairs ops)
        |> List.sort_uniq compare
      in
      { ops; vars })
    cycles

let breaks loop scan_vars = List.exists (fun v -> List.mem v loop.vars) scan_vars
let unbroken loops scan_vars =
  List.filter (fun l -> not (breaks l scan_vars)) loops

let loop_membership g loops =
  let counts = Array.make (Graph.n_vars g) 0 in
  List.iter
    (fun l -> List.iter (fun v -> counts.(v) <- counts.(v) + 1) l.vars)
    loops;
  counts
