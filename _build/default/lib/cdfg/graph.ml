type var_kind = V_input | V_output | V_intermediate | V_const of int
type var = { v_id : int; v_name : string; v_kind : var_kind }

type op = {
  o_id : int;
  o_kind : Op.kind;
  o_args : int array;
  o_result : int;
}

type t = {
  name : string;
  vars : var array;
  ops : op array;
  feedback : (int * int) list;
  test_controls : int list;
  test_observes : int list;
}

let n_vars g = Array.length g.vars
let n_ops g = Array.length g.ops

let var g i =
  if i < 0 || i >= n_vars g then invalid_arg "Graph.var";
  g.vars.(i)

let op g i =
  if i < 0 || i >= n_ops g then invalid_arg "Graph.op";
  g.ops.(i)

let producer g v =
  let found = ref None in
  Array.iter (fun o -> if o.o_result = v then found := Some o) g.ops;
  !found

let consumers g v =
  Array.to_list g.ops
  |> List.filter (fun o -> Array.exists (fun a -> a = v) o.o_args)

let inputs g =
  Array.to_list g.vars |> List.filter (fun v -> v.v_kind = V_input)

let outputs g =
  Array.to_list g.vars |> List.filter (fun v -> v.v_kind = V_output)

let is_output g v = (var g v).v_kind = V_output
let state_vars g = List.map snd g.feedback

let op_profile g =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun o ->
      match Op.fu_class o.o_kind with
      | None -> ()
      | Some c ->
        Hashtbl.replace tbl c (1 + (try Hashtbl.find tbl c with Not_found -> 0)))
    g.ops;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl [] |> List.sort compare

let op_graph g =
  let dg = Hft_util.Digraph.create (n_ops g) in
  Array.iter
    (fun o ->
      Array.iter
        (fun a ->
          match producer g a with
          | Some p -> Hft_util.Digraph.add_edge dg p.o_id o.o_id
          | None -> ())
        o.o_args)
    g.ops;
  dg

let op_graph_with_feedback g =
  let dg = op_graph g in
  List.iter
    (fun (src, dst) ->
      match producer g src with
      | None -> ()
      | Some p ->
        List.iter
          (fun c -> Hft_util.Digraph.add_edge dg p.o_id c.o_id)
          (consumers g dst))
    g.feedback;
  dg

let var_by_name g name =
  let found = ref None in
  Array.iter (fun v -> if v.v_name = name then found := Some v.v_id) g.vars;
  match !found with Some i -> i | None -> raise Not_found

let run ~width g ~inputs ?(state = []) ?(force = []) () =
  let values = Array.make (n_vars g) 0 in
  let have = Array.make (n_vars g) false in
  let forced v = List.assoc_opt v force in
  Array.iter
    (fun v ->
      match v.v_kind with
      | V_const c ->
        values.(v.v_id) <- c;
        have.(v.v_id) <- true
      | V_input | V_output | V_intermediate -> ())
    g.vars;
  List.iter
    (fun (name, x) ->
      let id = var_by_name g name in
      values.(id) <- x;
      have.(id) <- true)
    inputs;
  List.iter
    (fun (name, x) ->
      let id = var_by_name g name in
      values.(id) <- x;
      have.(id) <- true)
    state;
  (* State variables default to 0 when not supplied. *)
  List.iter
    (fun (_, dst) -> if not have.(dst) then have.(dst) <- true)
    g.feedback;
  (* Test-mode control points override everything. *)
  List.iter
    (fun (v, x) ->
      values.(v) <- x;
      have.(v) <- true)
    force;
  (match Hft_util.Digraph.topological_sort (op_graph g) with
   | None -> invalid_arg "Graph.run: cyclic op graph"
   | Some order ->
     List.iter
       (fun oid ->
         let o = g.ops.(oid) in
         Array.iter
           (fun a ->
             if not have.(a) then
               invalid_arg
                 (Printf.sprintf "Graph.run: variable %s has no value"
                    (var g a).v_name))
           o.o_args;
         let args = Array.to_list (Array.map (fun a -> values.(a)) o.o_args) in
         (match forced o.o_result with
          | Some x -> values.(o.o_result) <- x
          | None -> values.(o.o_result) <- Op.eval ~width o.o_kind args);
         have.(o.o_result) <- true)
       order);
  Array.to_list (Array.mapi (fun i v -> (i, v)) values)

let value_of g result name = List.assoc (var_by_name g name) result

let to_dot g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" g.name);
  Array.iter
    (fun v ->
      let shape =
        match v.v_kind with
        | V_input -> "invtriangle"
        | V_output -> "triangle"
        | V_const _ -> "diamond"
        | V_intermediate -> "plaintext"
      in
      Buffer.add_string buf
        (Printf.sprintf "  v%d [label=\"%s\" shape=%s];\n" v.v_id v.v_name shape))
    g.vars;
  Array.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  o%d [label=\"%s\" shape=circle];\n" o.o_id
           (Op.to_string o.o_kind));
      Array.iter
        (fun a -> Buffer.add_string buf (Printf.sprintf "  v%d -> o%d;\n" a o.o_id))
        o.o_args;
      Buffer.add_string buf (Printf.sprintf "  o%d -> v%d;\n" o.o_id o.o_result))
    g.ops;
  List.iter
    (fun (src, dst) ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d -> v%d [style=dashed,label=\"z\"];\n" src dst))
    g.feedback;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let make ~name ~vars ~ops ~feedback ~test_controls ~test_observes =
  let g = { name; vars; ops; feedback; test_controls; test_observes } in
  (* ids are positional *)
  Array.iteri
    (fun i v -> if v.v_id <> i then invalid_arg "Graph.make: var id mismatch")
    vars;
  Array.iteri
    (fun i o -> if o.o_id <> i then invalid_arg "Graph.make: op id mismatch")
    ops;
  (* arity *)
  Array.iter
    (fun o ->
      if Array.length o.o_args <> Op.arity o.o_kind then
        invalid_arg "Graph.make: arity mismatch";
      Array.iter
        (fun a ->
          if a < 0 || a >= Array.length vars then
            invalid_arg "Graph.make: dangling arg")
        o.o_args;
      if o.o_result < 0 || o.o_result >= Array.length vars then
        invalid_arg "Graph.make: dangling result")
    ops;
  (* single assignment; no producing inputs/constants *)
  let producers = Array.make (Array.length vars) 0 in
  Array.iter
    (fun o -> producers.(o.o_result) <- producers.(o.o_result) + 1)
    ops;
  Array.iteri
    (fun i n ->
      if n > 1 then
        invalid_arg
          (Printf.sprintf "Graph.make: variable %s produced twice"
             vars.(i).v_name);
      match vars.(i).v_kind with
      | (V_input | V_const _) when n > 0 ->
        invalid_arg "Graph.make: input/const has a producer"
      | (V_output | V_intermediate) when n = 0 ->
        (* outputs or intermediates may be driven by feedback dst role or
           be aliases of inputs only if they appear as feedback dst *)
        if not (List.exists (fun (_, dst) -> dst = i) feedback) then
          invalid_arg
            (Printf.sprintf "Graph.make: variable %s has no producer"
               vars.(i).v_name)
      | _ -> ())
    producers;
  (* feedback pairs reference valid vars; src must have a producer *)
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= Array.length vars || dst < 0 || dst >= Array.length vars
      then invalid_arg "Graph.make: dangling feedback";
      if producers.(src) = 0 && vars.(src).v_kind <> V_input then
        invalid_arg "Graph.make: feedback source never produced")
    feedback;
  (* intra-iteration acyclicity *)
  if not (Hft_util.Digraph.is_acyclic (op_graph g)) then
    invalid_arg "Graph.make: cyclic intra-iteration dependencies";
  g
