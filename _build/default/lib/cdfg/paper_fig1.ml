open Builder

let graph () =
  let b = create "paper_fig1" in
  let a = input b "a" in
  let bb = input b "b" in
  let d = input b "d" in
  let f = input b "f" in
  let p = input b "p" in
  let q = input b "q" in
  let g = input b "g" in
  let c = binop b Op.Add a bb ~name:"c" in (* +1 *)
  let e = binop b Op.Add c d ~name:"e" in (* +2 *)
  let r = binop b Op.Add p q ~name:"r" in (* +3 *)
  let s = binop b Op.Add r g ~name:"s" in (* +4 *)
  let t = binop b Op.Add e f ~name:"t" in (* +5 *)
  mark_output b t;
  mark_output b s;
  finish b

let op_ids () = [ ("+1", 0); ("+2", 1); ("+3", 2); ("+4", 3); ("+5", 4) ]

(* Operation order in [graph]: +1, +2, +3, +4, +5. *)
let schedule_b g = Schedule.make g ~n_steps:3 [| 1; 2; 2; 3; 3 |]
let schedule_c g = Schedule.make g ~n_steps:3 [| 1; 2; 1; 2; 3 |]
let binding_b = [| 0; 1; 0; 1; 0 |]
let binding_c = [| 0; 0; 1; 1; 0 |]
