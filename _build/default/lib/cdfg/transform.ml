let rebuild g ~extra_vars ~extra_ops ~rewrite_arg =
  (* Rebuild the graph with [extra_vars]/[extra_ops] appended and every
     (op, arg-position) rewritten through [rewrite_arg]. *)
  let nv = Graph.n_vars g in
  let vars =
    Array.append
      (Array.init nv (Graph.var g))
      (Array.of_list
         (List.mapi
            (fun i (name, kind) -> { Graph.v_id = nv + i; v_name = name; v_kind = kind })
            extra_vars))
  in
  let no = Graph.n_ops g in
  let ops =
    Array.append
      (Array.init no (fun i ->
           let o = Graph.op g i in
           { o with Graph.o_args = Array.mapi (fun pos a -> rewrite_arg i pos a) o.Graph.o_args }))
      (Array.of_list
         (List.mapi
            (fun i (kind, args, result) ->
              { Graph.o_id = no + i; o_kind = kind; o_args = args; o_result = result })
            extra_ops))
  in
  Graph.make ~name:g.Graph.name ~vars ~ops ~feedback:g.Graph.feedback
    ~test_controls:g.Graph.test_controls ~test_observes:g.Graph.test_observes

let insert_deflection g ~var ~consumer =
  let o = Graph.op g consumer in
  if not (Array.exists (fun a -> a = var) o.Graph.o_args) then
    invalid_arg "Transform.insert_deflection: consumer does not read var";
  let nv = Graph.n_vars g in
  let zero = nv and fresh = nv + 1 in
  let vname = (Graph.var g var).Graph.v_name in
  let extra_vars =
    [ (Printf.sprintf "c0_defl_%s" vname, Graph.V_const 0);
      (Printf.sprintf "%s_defl%d" vname consumer, Graph.V_intermediate) ]
  in
  let extra_ops = [ (Op.Add, [| var; zero |], fresh) ] in
  rebuild g ~extra_vars ~extra_ops ~rewrite_arg:(fun oid _pos a ->
      if oid = consumer && a = var then fresh else a)

let insert_deflections g pairs =
  (* Original var/op ids are stable under [insert_deflection] (new ids
     are appended), so sequential application is sound. *)
  List.fold_left (fun g (var, consumer) -> insert_deflection g ~var ~consumer)
    g pairs

let add_test_points g ~controls ~observes =
  Graph.make ~name:g.Graph.name
    ~vars:(Array.init (Graph.n_vars g) (Graph.var g))
    ~ops:(Array.init (Graph.n_ops g) (Graph.op g))
    ~feedback:g.Graph.feedback
    ~test_controls:(List.sort_uniq compare (controls @ g.Graph.test_controls))
    ~test_observes:(List.sort_uniq compare (observes @ g.Graph.test_observes))

let equivalent ~width ~trials rng a b =
  let names vs = List.map (fun v -> v.Graph.v_name) vs |> List.sort compare in
  let state_names g =
    List.map (fun v -> (Graph.var g v).Graph.v_name) (Graph.state_vars g)
    |> List.sort_uniq compare
  in
  names (Graph.inputs a) = names (Graph.inputs b)
  && names (Graph.outputs a) = names (Graph.outputs b)
  && state_names a = state_names b
  &&
  let in_names = names (Graph.inputs a) in
  let st_names = state_names a in
  let out_names = names (Graph.outputs a) in
  let fb_src_names g =
    List.map (fun (s, _) -> (Graph.var g s).Graph.v_name) g.Graph.feedback
    |> List.sort_uniq compare
  in
  let watch = List.sort_uniq compare (out_names @ fb_src_names a) in
  fb_src_names a = fb_src_names b
  && List.for_all
       (fun _ ->
         let ins = List.map (fun n -> (n, Hft_util.Rng.word rng)) in_names in
         let st = List.map (fun n -> (n, Hft_util.Rng.word rng)) st_names in
         let ra = Graph.run ~width a ~inputs:ins ~state:st () in
         let rb = Graph.run ~width b ~inputs:ins ~state:st () in
         List.for_all
           (fun n -> Graph.value_of a ra n = Graph.value_of b rb n)
           watch)
       (List.init trials (fun i -> i))
