type t = { start : int array; latency : int array; n_steps : int }

let finish_step t o = t.start.(o) + t.latency.(o) - 1

let validate g t =
  let n = Graph.n_ops g in
  if Array.length t.start <> n || Array.length t.latency <> n then
    invalid_arg "Schedule: wrong array length";
  Array.iteri
    (fun o s ->
      if s < 1 || finish_step t o > t.n_steps then
        invalid_arg (Printf.sprintf "Schedule: op %d out of range" o);
      if t.latency.(o) < 1 then invalid_arg "Schedule: latency < 1")
    t.start;
  let dg = Graph.op_graph g in
  Hft_util.Digraph.iter_edges
    (fun u v ->
      if t.start.(v) <= finish_step t u then
        invalid_arg
          (Printf.sprintf "Schedule: op %d starts before producer %d finishes" v u))
    dg

let make g ~n_steps ?latency start =
  let latency =
    match latency with
    | Some l -> l
    | None -> Array.make (Graph.n_ops g) 1
  in
  let t = { start; latency; n_steps } in
  validate g t;
  t

let is_valid g t =
  match validate g t with () -> true | exception Invalid_argument _ -> false

let ops_in_step t c =
  let acc = ref [] in
  for o = Array.length t.start - 1 downto 0 do
    if t.start.(o) <= c && c <= finish_step t o then acc := o :: !acc
  done;
  !acc

let fu_demand g t =
  let tbl = Hashtbl.create 8 in
  for c = 1 to t.n_steps do
    let per_class = Hashtbl.create 8 in
    List.iter
      (fun o ->
        match Op.fu_class (Graph.op g o).Graph.o_kind with
        | None -> ()
        | Some cl ->
          Hashtbl.replace per_class cl
            (1 + (try Hashtbl.find per_class cl with Not_found -> 0)))
      (ops_in_step t c);
    Hashtbl.iter
      (fun cl n ->
        let cur = try Hashtbl.find tbl cl with Not_found -> 0 in
        if n > cur then Hashtbl.replace tbl cl n)
      per_class
  done;
  Hashtbl.fold (fun cl n acc -> (cl, n) :: acc) tbl [] |> List.sort compare

let pp g t =
  let buf = Buffer.create 128 in
  for c = 1 to t.n_steps do
    Buffer.add_string buf (Printf.sprintf "step %d:" c);
    List.iter
      (fun o ->
        let { Graph.o_kind; o_result; _ } = Graph.op g o in
        Buffer.add_string buf
          (Printf.sprintf " [%d:%s->%s]" o (Op.to_string o_kind)
             (Graph.var g o_result).Graph.v_name))
      (ops_in_step t c);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
