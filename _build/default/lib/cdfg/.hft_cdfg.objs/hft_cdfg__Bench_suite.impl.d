lib/cdfg/bench_suite.ml: Array Builder Hft_util List Op Printf Rng
