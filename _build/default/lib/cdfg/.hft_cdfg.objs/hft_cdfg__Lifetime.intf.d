lib/cdfg/lifetime.mli: Graph Hft_util Schedule
