lib/cdfg/schedule.ml: Array Buffer Graph Hashtbl Hft_util List Op Printf
