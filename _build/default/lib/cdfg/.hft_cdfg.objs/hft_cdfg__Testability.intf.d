lib/cdfg/testability.mli: Graph
