lib/cdfg/transform.ml: Array Graph Hft_util List Op Printf
