lib/cdfg/lifetime.ml: Array Graph Hashtbl Hft_util Interval List Schedule Union_find
