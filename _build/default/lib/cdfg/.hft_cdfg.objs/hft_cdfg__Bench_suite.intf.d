lib/cdfg/bench_suite.mli: Graph Hft_util
