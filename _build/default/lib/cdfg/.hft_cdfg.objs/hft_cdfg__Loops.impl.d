lib/cdfg/loops.ml: Array Graph Hft_util List
