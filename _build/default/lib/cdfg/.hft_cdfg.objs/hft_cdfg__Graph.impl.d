lib/cdfg/graph.ml: Array Buffer Hashtbl Hft_util List Op Printf
