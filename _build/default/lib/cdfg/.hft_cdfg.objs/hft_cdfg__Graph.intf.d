lib/cdfg/graph.mli: Hft_util Op
