lib/cdfg/loops.mli: Graph
