lib/cdfg/op.ml: Sys
