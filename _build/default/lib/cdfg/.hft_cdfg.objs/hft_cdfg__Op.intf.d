lib/cdfg/op.mli:
