lib/cdfg/paper_fig1.mli: Graph Schedule
