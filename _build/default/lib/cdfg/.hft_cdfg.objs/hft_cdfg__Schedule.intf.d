lib/cdfg/schedule.mli: Graph Op
