lib/cdfg/testability.ml: Array Graph List Op
