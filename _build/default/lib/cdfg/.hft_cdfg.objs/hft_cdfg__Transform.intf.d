lib/cdfg/transform.mli: Graph Hft_util
