lib/cdfg/builder.mli: Graph Op
