lib/cdfg/builder.ml: Array Graph List Op Printf
