lib/cdfg/paper_fig1.ml: Builder Op Schedule
