(** Operation kinds of the behavioural (CDFG) level.

    The surveyed techniques target data-flow-intensive designs (DSP
    filters, arithmetic pipelines), so the operation set is arithmetic
    and logic; control flow is represented by comparison results consumed
    by the controller and by loop-carried feedback edges. *)

type kind =
  | Add
  | Sub
  | Mul
  | Lt
  | Gt
  | Eq
  | And
  | Or
  | Xor
  | Shl          (** shift left by constant amount (second operand) *)
  | Shr
  | Move         (** unary register-to-register transfer; needs no FU *)

(** Functional-unit classes operations are bound to.  [Move] needs no
    functional unit (pure interconnect), so it has no class. *)
type fu_class = Alu | Multiplier | Comparator | Logic_unit | Shifter

val arity : kind -> int
val fu_class : kind -> fu_class option
val is_commutative : kind -> bool

(** Identity element of the operation on the given operand position,
    when one exists: fixing that operand to the value makes the op a
    pass-through of the other operand.  E.g. [Add] port 1 → [0],
    [Mul] port 1 → [1], [Sub] port 1 → [0] (but not port 0).  This drives
    deflection-operation insertion (Dey–Potkonjak) and transparency paths
    for hierarchical test. *)
val identity_on : kind -> int -> int option

(** Transparency of the op from input port [i] to the output:
    [`Identity v] — fixing the {e other} operand to [v] passes port [i]
    through unchanged; [`Invertible v] — fixing the other operand to [v]
    makes the output an invertible function of port [i] (value still
    fully observable); [`Opaque] — information is lost. *)
val transparency : kind -> int -> [ `Identity of int | `Invertible of int | `Opaque ]

(** Reference semantics over native ints (used to check gate expansions
    and to execute behaviours).  Shifts and comparisons follow hardware
    conventions on [width]-bit two's-complement words. *)
val eval : width:int -> kind -> int list -> int

val to_string : kind -> string
val fu_class_to_string : fu_class -> string
val all : kind list
