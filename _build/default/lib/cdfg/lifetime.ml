open Hft_util

type info = {
  intervals : Interval.t array;
  merged : Union_find.t;
  wrap_moves : (int * int) list;
  held_final : bool array;
  n_steps : int;
}

let compute g sched =
  let nv = Graph.n_vars g in
  let birth = Array.make nv max_int in
  let death = Array.make nv min_int in
  let touch v lo hi =
    if lo < birth.(v) then birth.(v) <- lo;
    if hi > death.(v) then death.(v) <- hi
  in
  let state_set = Graph.state_vars g in
  Array.iter
    (fun { Graph.v_id = v; v_kind; _ } ->
      match v_kind with
      | Graph.V_const _ -> ()
      | Graph.V_input -> touch v 0 0
      | Graph.V_output | Graph.V_intermediate ->
        if List.mem v state_set then touch v 0 0)
    (Array.init nv (Graph.var g));
  (* First pass: births from producers (op ids are not necessarily in
     dependency order after transformations). *)
  Array.iter
    (fun { Graph.o_id = o; o_result; _ } ->
      let fin = Schedule.finish_step sched o in
      touch o_result fin fin)
    (Array.init (Graph.n_ops g) (Graph.op g));
  (* Second pass: deaths from consumers. *)
  Array.iter
    (fun { Graph.o_id = o; o_args; _ } ->
      Array.iter
        (fun a ->
          match (Graph.var g a).Graph.v_kind with
          | Graph.V_const _ -> ()
          | Graph.V_input | Graph.V_output | Graph.V_intermediate ->
            (* Operands must stay stable until the consumer finishes
               (multi-cycle units are not pipelined). *)
            touch a birth.(a) (Schedule.finish_step sched o))
        o_args)
    (Array.init (Graph.n_ops g) (Graph.op g));
  (* Outputs and feedback sources persist to the end of the iteration. *)
  Array.iter
    (fun { Graph.v_id = v; v_kind; _ } ->
      if v_kind = Graph.V_output && death.(v) > min_int then
        death.(v) <- sched.Schedule.n_steps)
    (Array.init nv (Graph.var g));
  List.iter
    (fun (src, _) ->
      if death.(src) > min_int then death.(src) <- sched.Schedule.n_steps)
    g.Graph.feedback;
  let intervals =
    Array.init nv (fun v ->
        if birth.(v) = max_int then Interval.make 0 0
        else Interval.make birth.(v) (max birth.(v) death.(v)))
  in
  (* A feedback pair can share one register only when the source is
     produced at or after the destination's last use; otherwise the
     write would clobber live state and the data path must insert an
     end-of-iteration move instead. *)
  let merged = Union_find.create nv in
  let wrap_moves = ref [] in
  List.iter
    (fun (src, dst) ->
      if not (Interval.overlaps intervals.(src) intervals.(dst)) then
        Union_find.union merged src dst
      else wrap_moves := (src, dst) :: !wrap_moves)
    g.Graph.feedback;
  (* Values that must survive the final step boundary: primary outputs
     (read from their register after the iteration) and merged feedback
     sources / wrap destinations (they carry state into the next
     iteration).  Unmerged feedback sources are consumed {e at} the
     final edge by the wrap move, so they may be overwritten by it. *)
  let held_final = Array.make nv false in
  Array.iter
    (fun { Graph.v_id = v; v_kind; _ } ->
      if v_kind = Graph.V_output then held_final.(v) <- true)
    (Array.init nv (Graph.var g));
  List.iter
    (fun (src, dst) ->
      if Union_find.same merged src dst then held_final.(src) <- true
      else held_final.(dst) <- true)
    g.Graph.feedback;
  { intervals; merged; wrap_moves = List.rev !wrap_moves; held_final;
    n_steps = sched.Schedule.n_steps }

let class_members info v =
  let rep = Union_find.find info.merged v in
  let n = Array.length info.intervals in
  let acc = ref [] in
  for u = n - 1 downto 0 do
    if Union_find.find info.merged u = rep then acc := u :: !acc
  done;
  !acc

let class_interval info v =
  List.fold_left
    (fun acc u -> Interval.hull acc info.intervals.(u))
    (Interval.make 0 0) (class_members info v)

let wrap_written_classes info =
  List.map (fun (_, dst) -> Union_find.find info.merged dst) info.wrap_moves
  |> List.sort_uniq compare

(* A class is "written at the final boundary" when it receives a wrap
   move or contains a variable born at n_steps. *)
let final_write info v =
  let members = class_members info v in
  List.exists
    (fun u -> info.intervals.(u).Interval.lo = info.n_steps)
    members
  || List.exists
       (fun (_, dst) -> Union_find.same info.merged dst v)
       info.wrap_moves

let held_final_class info v =
  List.exists (fun u -> info.held_final.(u)) (class_members info v)

let conflict info u v =
  if Union_find.same info.merged u v then false
  else
    let interval_clash =
      List.exists
        (fun a ->
          List.exists
            (fun b -> Interval.overlaps info.intervals.(a) info.intervals.(b))
            (class_members info v))
        (class_members info u)
    in
    interval_clash
    || (final_write info u && final_write info v)
    || (final_write info u && held_final_class info v)
    || (held_final_class info u && final_write info v)

let register_candidates g info =
  let nv = Graph.n_vars g in
  let fb_srcs = List.map fst g.Graph.feedback in
  let fb_dsts = List.map snd g.Graph.feedback in
  let needs_storage v =
    (* Even with an empty conflict interval, an output, feedback source
       or state variable must be latched somewhere. *)
    (Graph.var g v).Graph.v_kind = Graph.V_output
    || List.mem v fb_srcs || List.mem v fb_dsts
  in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  for v = 0 to nv - 1 do
    match (Graph.var g v).Graph.v_kind with
    | Graph.V_const _ -> ()
    | Graph.V_input | Graph.V_output | Graph.V_intermediate ->
      let rep = Hft_util.Union_find.find info.merged v in
      if not (Hashtbl.mem seen rep) then begin
        Hashtbl.add seen rep ();
        if (not (Interval.is_empty (class_interval info rep)))
           || List.exists needs_storage (class_members info rep)
        then acc := rep :: !acc
      end
  done;
  List.rev !acc
