type kind =
  | Add
  | Sub
  | Mul
  | Lt
  | Gt
  | Eq
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Move

type fu_class = Alu | Multiplier | Comparator | Logic_unit | Shifter

let arity = function
  | Move -> 1
  | Add | Sub | Mul | Lt | Gt | Eq | And | Or | Xor | Shl | Shr -> 2

let fu_class = function
  | Add | Sub -> Some Alu
  | Mul -> Some Multiplier
  | Lt | Gt | Eq -> Some Comparator
  | And | Or | Xor -> Some Logic_unit
  | Shl | Shr -> Some Shifter
  | Move -> None

let is_commutative = function
  | Add | Mul | Eq | And | Or | Xor -> true
  | Sub | Lt | Gt | Shl | Shr | Move -> false

let identity_on kind port =
  match (kind, port) with
  | Add, _ -> Some 0
  | Sub, 1 -> Some 0
  | Mul, _ -> Some 1
  | Or, _ -> Some 0
  | Xor, _ -> Some 0
  | And, _ -> Some (-1) (* all-ones word *)
  | (Shl | Shr), 1 -> Some 0
  | _ -> None

let transparency kind port =
  (* [port] is the data input; the returned constant goes on the other
     input. *)
  let other = 1 - port in
  match identity_on kind other with
  | Some v -> `Identity v
  | None ->
    (match (kind, port) with
     | Sub, 1 -> `Invertible 0 (* 0 - b = -b: invertible *)
     | Move, 0 -> `Identity 0
     | _ -> `Opaque)

let mask_of_width width = if width >= Sys.int_size then -1 else (1 lsl width) - 1

let eval ~width kind args =
  let m = mask_of_width width in
  let sign_bit = 1 lsl (width - 1) in
  let to_signed x =
    let x = x land m in
    if width < Sys.int_size && x land sign_bit <> 0 then x - (m + 1) else x
  in
  match (kind, args) with
  | Add, [ a; b ] -> (a + b) land m
  | Sub, [ a; b ] -> (a - b) land m
  | Mul, [ a; b ] -> a * b land m
  | Lt, [ a; b ] -> if to_signed a < to_signed b then 1 else 0
  | Gt, [ a; b ] -> if to_signed a > to_signed b then 1 else 0
  | Eq, [ a; b ] -> if a land m = b land m then 1 else 0
  | And, [ a; b ] -> a land b land m
  | Or, [ a; b ] -> (a lor b) land m
  | Xor, [ a; b ] -> (a lxor b) land m
  | Shl, [ a; b ] -> (a lsl (b land m land 31)) land m
  | Shr, [ a; b ] -> (a land m) lsr (b land m land 31)
  | Move, [ a ] -> a land m
  | _ -> invalid_arg "Op.eval: arity mismatch"

let to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Lt -> "<"
  | Gt -> ">"
  | Eq -> "=="
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Move -> "mv"

let fu_class_to_string = function
  | Alu -> "alu"
  | Multiplier -> "mul"
  | Comparator -> "cmp"
  | Logic_unit -> "log"
  | Shifter -> "shf"

let all = [ Add; Sub; Mul; Lt; Gt; Eq; And; Or; Xor; Shl; Shr; Move ]
