type level = Full | Partial | None_

type classification = {
  controllability : level array;
  observability : level array;
}

let level_to_string = function
  | Full -> "full"
  | Partial -> "partial"
  | None_ -> "none"

let max_level a b =
  match (a, b) with
  | Full, _ | _, Full -> Full
  | Partial, _ | _, Partial -> Partial
  | None_, None_ -> None_

let lt_level a b =
  let rank = function None_ -> 0 | Partial -> 1 | Full -> 2 in
  rank a < rank b

(* A constant is "settable" to value [c] trivially; a variable is
   settable to a specific constant whenever it is at least partially
   controllable (we can hunt for an assignment reaching one value much
   more easily than all values). *)
let settable_to ctrl g v _c =
  match (Graph.var g v).Graph.v_kind with
  | Graph.V_const _ -> true
  | Graph.V_input -> true
  | Graph.V_output | Graph.V_intermediate -> ctrl.(v) <> None_

let analyze g =
  let nv = Graph.n_vars g in
  let ctrl = Array.make nv None_ in
  let obs = Array.make nv None_ in
  Array.iter
    (fun { Graph.v_id = v; v_kind; _ } ->
      match v_kind with
      | Graph.V_input -> ctrl.(v) <- Full
      | Graph.V_const _ -> ctrl.(v) <- Partial (* fixed value only *)
      | Graph.V_output | Graph.V_intermediate -> ())
    (Array.init nv (Graph.var g));
  List.iter (fun v -> ctrl.(v) <- Full) g.Graph.test_controls;
  (* State variables: controllable to the extent their feedback source
     is (after enough iterations); start them as Partial so the
     fixpoint can climb. *)
  List.iter (fun (_, dst) -> ctrl.(dst) <- max_level ctrl.(dst) Partial)
    g.Graph.feedback;
  (* Controllability fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun { Graph.o_kind; o_args; o_result; _ } ->
        let lv =
          match o_kind with
          | Op.Move -> ctrl.(o_args.(0))
          | _ ->
            (* Full if some port is Full and every other port can be set
               to that port's transparency constant. *)
            let n = Array.length o_args in
            let full_via port =
              ctrl.(o_args.(port)) = Full
              &&
              match Op.transparency o_kind port with
              | `Identity c | `Invertible c ->
                let ok = ref true in
                for q = 0 to n - 1 do
                  if q <> port && not (settable_to ctrl g o_args.(q) c) then
                    ok := false
                done;
                !ok
              | `Opaque -> false
            in
            let any_full = full_via 0 || (n > 1 && full_via 1) in
            if any_full then Full
            else if Array.exists (fun a -> ctrl.(a) <> None_) o_args then
              Partial
            else None_
        in
        if lt_level ctrl.(o_result) lv then begin
          ctrl.(o_result) <- lv;
          changed := true
        end)
      (Array.init (Graph.n_ops g) (Graph.op g));
    (* Feedback promotes state-variable controllability. *)
    List.iter
      (fun (src, dst) ->
        if lt_level ctrl.(dst) ctrl.(src) then begin
          ctrl.(dst) <- ctrl.(src);
          changed := true
        end)
      g.Graph.feedback
  done;
  (* Observability fixpoint, backwards from outputs. *)
  Array.iter
    (fun { Graph.v_id = v; v_kind; _ } ->
      if v_kind = Graph.V_output then obs.(v) <- Full)
    (Array.init nv (Graph.var g));
  List.iter (fun v -> obs.(v) <- Full) g.Graph.test_observes;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun { Graph.o_kind; o_args; o_result; _ } ->
        Array.iteri
          (fun port a ->
            let lv =
              match obs.(o_result) with
              | None_ -> None_
              | out_lv ->
                (match o_kind with
                 | Op.Move -> out_lv
                 | _ ->
                   (match Op.transparency o_kind port with
                    | `Identity c | `Invertible c ->
                      (* Other ports must be settable to the pass-through
                         constant for faithful propagation. *)
                      let n = Array.length o_args in
                      let ok = ref true in
                      for q = 0 to n - 1 do
                        if q <> port && not (settable_to ctrl g o_args.(q) c)
                        then ok := false
                      done;
                      if !ok then out_lv else Partial
                    | `Opaque -> Partial))
            in
            if lt_level obs.(a) lv then begin
              obs.(a) <- lv;
              changed := true
            end)
          o_args)
      (Array.init (Graph.n_ops g) (Graph.op g));
    (* A feedback source is observable to the extent its destination is
       (one iteration later). *)
    List.iter
      (fun (src, dst) ->
        if lt_level obs.(src) obs.(dst) then begin
          obs.(src) <- obs.(dst);
          changed := true
        end)
      g.Graph.feedback
  done;
  { controllability = ctrl; observability = obs }

let hard_variables g cls =
  let nv = Graph.n_vars g in
  let acc = ref [] in
  for v = nv - 1 downto 0 do
    match (Graph.var g v).Graph.v_kind with
    | Graph.V_const _ -> ()
    | Graph.V_input ->
      if cls.observability.(v) <> Full then acc := v :: !acc
    | Graph.V_output ->
      if cls.controllability.(v) <> Full then acc := v :: !acc
    | Graph.V_intermediate ->
      if cls.controllability.(v) <> Full || cls.observability.(v) <> Full then
        acc := v :: !acc
  done;
  !acc

let repair_points g cls =
  let hard = hard_variables g cls in
  let controls =
    List.filter
      (fun v ->
        cls.controllability.(v) <> Full
        && (Graph.var g v).Graph.v_kind <> Graph.V_input)
      hard
  in
  let observes = List.filter (fun v -> cls.observability.(v) <> Full) hard in
  (controls, observes)
