(** Figure 1 of the paper, executably.

    The CDFG has two addition chains and a joining addition:
    {v
        +1: c = a + b        +3: r = p + q
        +2: e = c + d        +4: s = r + g
        +5: t = e + f
    v}
    Under a 3-control-step performance constraint and a 2-adder resource
    constraint, the paper contrasts two schedule/binding pairs:

    - {!schedule_b} / {!binding_b}:
      [{+1:(1,A1), +2:(2,A2), +3:(2,A1), +4:(3,A2), +5:(3,A1)}] —
      the chain +1(A1) → +2(A2) → +5(A1) creates the assignment loop
      RA1 → RA2 → RA1, so one register must be scanned;
    - {!schedule_c} / {!binding_c}:
      [{+1:(1,A1), +2:(2,A1), +3:(1,A2), +4:(2,A2), +5:(3,A1)}] —
      only self-loops remain and no scan register is needed. *)

val graph : unit -> Graph.t

(** Index of each named operation in {!graph}. *)
val op_ids : unit -> (string * int) list

val schedule_b : Graph.t -> Schedule.t
val schedule_c : Graph.t -> Schedule.t

(** Adder instance (0 = A1, 1 = A2) per operation id. *)
val binding_b : int array
val binding_c : int array
