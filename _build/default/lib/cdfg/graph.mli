(** Control-data flow graphs.

    A CDFG is a single-assignment data-flow graph: every non-input
    variable is produced by exactly one operation.  Iterative behaviours
    (filters, the HAL differential-equation loop) carry state across
    iterations through {e feedback pairs} [(src, dst)]: at the end of an
    iteration the value of variable [src] becomes the next iteration's
    value of variable [dst].  Feedback pairs are what create data-path
    loops during synthesis (survey section 3.3.1).

    Use {!Builder} to construct values of this type; the constructors
    here are exposed for pattern matching only. *)

type var_kind =
  | V_input                    (** primary input *)
  | V_output                   (** primary output (may also feed ops) *)
  | V_intermediate
  | V_const of int             (** compile-time constant *)

type var = { v_id : int; v_name : string; v_kind : var_kind }

type op = {
  o_id : int;
  o_kind : Op.kind;
  o_args : int array;          (** variable ids, length [Op.arity] *)
  o_result : int;              (** variable id *)
}

type t = private {
  name : string;
  vars : var array;
  ops : op array;
  feedback : (int * int) list; (** (src var, dst var) loop-carried pairs *)
  test_controls : int list;    (** vars given a test-mode control point *)
  test_observes : int list;    (** vars given a test-mode observe point *)
}

(** {1 Accessors} *)

val n_vars : t -> int
val n_ops : t -> int
val var : t -> int -> var
val op : t -> int -> op

(** [producer g v] is the op producing [v], if any (inputs and constants
    have none). *)
val producer : t -> int -> op option

(** Ops consuming [v], in id order. *)
val consumers : t -> int -> op list

val inputs : t -> var list
val outputs : t -> var list
val is_output : t -> int -> bool

(** Feedback destination variables ("state" variables). *)
val state_vars : t -> int list

(** Count ops per functional-unit class. *)
val op_profile : t -> (Op.fu_class * int) list

(** {1 Derived graphs} *)

(** Operation-level dependency digraph: edge [u -> v] when [v] consumes
    the result of [u].  Acyclic by construction (intra-iteration). *)
val op_graph : t -> Hft_util.Digraph.t

(** Same plus feedback edges [producer(src) -> consumers(dst)]; cycles of
    this graph are the CDFG loops. *)
val op_graph_with_feedback : t -> Hft_util.Digraph.t

(** {1 Execution} *)

(** [run ~width g ~inputs ~state] executes one iteration: returns the
    value of every variable, keyed by id.  [inputs] supplies primary
    inputs by name; [state] supplies feedback-destination variables by
    name (defaults to 0).  [force] models test-mode control points: the
    listed variables take the given values regardless of what their
    producers compute.  Used as the reference model when validating
    synthesised implementations. *)
val run :
  width:int -> t -> inputs:(string * int) list -> ?state:(string * int) list ->
  ?force:(int * int) list -> unit -> (int * int) list

(** Value of the named variable in a [run] result. *)
val value_of : t -> (int * int) list -> string -> int

(** Variable id by name; raises [Not_found]. *)
val var_by_name : t -> string -> int

val to_dot : t -> string

(** Internal constructor for {!Builder}; checks single assignment,
    acyclicity, arity, and feedback sanity.  Raises [Invalid_argument]
    with a diagnostic on malformed input. *)
val make :
  name:string -> vars:var array -> ops:op array ->
  feedback:(int * int) list -> test_controls:int list ->
  test_observes:int list -> t
