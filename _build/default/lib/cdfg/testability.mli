(** Behavioural testability analysis (Chen–Karnik–Saab, survey §3.4).

    Classifies every variable by how well it can be driven from primary
    inputs ({e controllability}) and propagated to primary outputs
    ({e observability}) through the behaviour, using operation
    transparency:

    - a variable is {e fully controllable} when some operation input
      path lets an arbitrary value be justified onto it;
    - it is {e partially controllable} when only part of its value
      space is reachable (information is lost through an opaque op);
    - dually for observability via propagation to outputs.

    Test-mode control/observe points already present in the graph count
    as direct access. *)

type level = Full | Partial | None_

type classification = {
  controllability : level array; (** per variable id *)
  observability : level array;
}

val analyze : Graph.t -> classification

(** Variables that are hard to test: not fully controllable or not
    fully observable (outputs/inputs excluded as appropriate). *)
val hard_variables : Graph.t -> classification -> int list

(** Pick test points for all hard variables: returns
    [(controls, observes)] — the smallest straightforward repair
    (control point on every non-fully-controllable variable, observe
    point on every non-fully-observable one). *)
val repair_points : Graph.t -> classification -> int list * int list

val level_to_string : level -> string
