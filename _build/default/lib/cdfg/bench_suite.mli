(** The standard high-level-synthesis benchmark behaviours the surveyed
    papers evaluate on, re-encoded as CDFGs from their published
    data-flow graphs.

    [ewf] is built structurally as a 5th-order elliptic wave digital
    filter from two-port adaptor sections (see DESIGN.md §2 for the
    substitution note): the op mix (additions ≫ multiplications) and the
    feedback-state structure match the classic benchmark. *)

(** HAL second-order differential-equation solver: 6 ×, 2 +, 2 −, 1 <;
    states x, y, u. *)
val diffeq : unit -> Graph.t

(** 5th-order elliptic wave digital filter: 5 states, 8 multipliers,
    20 adders/subtractors. *)
val ewf : unit -> Graph.t

(** 8-tap FIR filter: 8 ×, 7 +, 7-deep delay line. *)
val fir8 : unit -> Graph.t

(** 4th-order IIR (two cascaded direct-form-II biquads): 10 ×, 8 ±,
    4 states. *)
val iir4 : unit -> Graph.t

(** 4-stage AR lattice filter: 8 ×, 8 ±, 4 states. *)
val ar_lattice : unit -> Graph.t

(** Tseng–Siewiorek style mixed-operation example (no feedback). *)
val tseng : unit -> Graph.t

(** 4-point DCT butterfly network: 8 ×, 8 ±, feed-forward. *)
val dct4 : unit -> Graph.t

(** 4-tap LMS adaptive FIR: output, error and coefficient-update loops
    (4 coefficient states + 3 delay taps) — the loop-heaviest entry. *)
val lms4 : unit -> Graph.t

(** All of the above with their conventional names. *)
val all : unit -> (string * Graph.t) list

val by_name : string -> Graph.t

(** {1 Parametric generators for property tests} *)

(** Chain of [n] additions. *)
val chain : int -> Graph.t

(** Complete binary reduction tree over [2^depth] inputs. *)
val tree : int -> Graph.t

(** Random DAG with [n_ops] operations and [n_inputs] inputs; includes
    feedback with probability [p_feedback] per candidate. *)
val random : Hft_util.Rng.t -> n_inputs:int -> n_ops:int -> p_feedback:float -> Graph.t
