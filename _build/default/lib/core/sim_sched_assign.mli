(** Simultaneous scheduling and assignment with a testability cost
    function (Potkonjak–Dey–Roy TCAD'95, survey §3.3.2).

    Hardware sharing creates {e assignment loops}: when the operations
    along a CDFG path from [u] to [v] occupy several units and [u] and
    [v] share one, the unit's output register cycles back to itself
    through the other units (paper Figure 1).  Scheduling and binding
    together lets the allocator price each (step, unit) choice by the
    loops it would create and avoid them when slack permits. *)

open Hft_cdfg

type result = {
  sched : Schedule.t;
  binding : Hft_hls.Fu_bind.t;
  est_assignment_loops : int; (** loops the cost function still accepted *)
}

(** Greedy least-slack-first scheduling+binding under [resources];
    candidate (unit) choices are priced by new assignment-loop creation
    (weight [loop_cost], default high) and by unit-opening cost. *)
val run :
  ?loop_cost:float -> resources:(Op.fu_class * int) list ->
  Graph.t -> Schedule.t option -> result

(** Count the assignment loops a binding implies: op pairs [(u,v)]
    sharing a unit with a dependency path between them that leaves the
    unit (length >= 2 loop in the register graph). *)
val assignment_loops : Graph.t -> Hft_hls.Fu_bind.t -> int

(** Conventional flow measured identically, for the E3 rows. *)
val conventional :
  resources:(Op.fu_class * int) list -> Graph.t -> result
