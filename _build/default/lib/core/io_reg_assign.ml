open Hft_cdfg

type result = {
  alloc : Hft_hls.Reg_alloc.t;
  n_io_registers : int;
  n_registers : int;
}

let io_register_count g (alloc : Hft_hls.Reg_alloc.t) =
  let io_vars =
    List.map (fun v -> v.Graph.v_id) (Graph.inputs g @ Graph.outputs g)
  in
  List.filter_map
    (fun v ->
      let r = alloc.Hft_hls.Reg_alloc.reg_of_var.(v) in
      if r >= 0 then Some r else None)
    io_vars
  |> List.sort_uniq compare |> List.length

let assign g sched =
  let info = Lifetime.compute g sched in
  let rep v = Hft_util.Union_find.find info.Lifetime.merged v in
  let outputs = List.map (fun v -> rep v.Graph.v_id) (Graph.outputs g) in
  let inputs = List.map (fun v -> rep v.Graph.v_id) (Graph.inputs g) in
  let io = List.sort_uniq compare (outputs @ inputs) in
  (* Which registers have been claimed by an I/O class so far. *)
  let io_regs = Hashtbl.create 8 in
  let order =
    (* Outputs first, then inputs, then intermediates by lifetime
       start — the paper's phase order. *)
    outputs @ inputs
  in
  let prefer repv ~feasible =
    if List.mem repv io then
      (* Phase 1/2 of the paper: every primary output / input gets its
         own register, so the number of I/O-connected registers is
         maximal. *)
      None
    else
      (* Intermediates: prefer an I/O register, else any feasible. *)
      match List.filter (Hashtbl.mem io_regs) feasible with
      | r :: _ -> Some r
      | [] -> (match feasible with r :: _ -> Some r | [] -> None)
  in
  (* The allocator numbers fresh registers sequentially, one per [None]
     we return, so we can mirror its counter and know which register an
     I/O class that opens fresh will receive — intermediates visited
     later then see it in [io_regs]. *)
  let next_fresh = ref 0 in
  let prefer_recording repv ~feasible =
    let r = prefer repv ~feasible in
    (match r with
     | Some reg -> if List.mem repv io then Hashtbl.replace io_regs reg ()
     | None ->
       if List.mem repv io then Hashtbl.replace io_regs !next_fresh ();
       incr next_fresh);
    r
  in
  let alloc = Hft_hls.Reg_alloc.color ~order ~prefer:prefer_recording g info in
  {
    alloc;
    n_io_registers = io_register_count g alloc;
    n_registers = alloc.Hft_hls.Reg_alloc.n_regs;
  }

let assign_conventional g sched =
  let info = Lifetime.compute g sched in
  let alloc = Hft_hls.Reg_alloc.left_edge g info in
  {
    alloc;
    n_io_registers = io_register_count g alloc;
    n_registers = alloc.Hft_hls.Reg_alloc.n_regs;
  }
