(** Hierarchical test generation via test environments
    (Bhatia–Jha "Genesis" EDTC'94; Vishakantaiah et al. ATKET/CHEETA;
    survey §6).

    A module's {e test environment} is a pair of symbolic paths: a
    justification scheme driving arbitrary values onto the module's
    inputs from primary inputs (through transparent operations — add
    with 0, multiply by 1), and a propagation scheme making its output
    visible at a primary output.  Precomputed module tests can then be
    translated to system-level tests mechanically, instead of burning
    sequential-ATPG effort on the flat netlist. *)

open Hft_cdfg

(** A concrete test environment for an operation: [chain] lists the
    (consumer op, data port) propagation steps from the op's result to
    [observe_output]; every other input along the chain is held at the
    step's transparency constant.  A variable with a test-mode observe
    point ends the chain immediately ([observe_output] then names the
    variable). *)
type env = {
  op : int;
  chain : (int * int) list;
  observe_output : string;
}

(** [environment g o] — an environment for op [o] (validated on sample
    values), or [None]. *)
val environment : ?width:int -> Graph.t -> int -> env option

(** [justify g ~wanted] finds primary-input/state assignments making
    each (variable, value) pair hold simultaneously; [None] when the
    justification paths conflict.  Variables with test-mode control
    points are directly assignable. *)
val justify :
  width:int -> Graph.t -> wanted:(int * int) list -> (string * int) list option

(** Per-FU-instance coverage: an instance is hierarchically testable
    when at least one of its ops has an environment (the
    assignment-phase objective of Genesis).
    Returns (covered, uncovered) instance ids. *)
val covered_instances :
  ?width:int -> Graph.t -> Hft_hls.Fu_bind.t -> int list * int list

(** Add test points until every instance is covered; returns the
    modified graph and the number of points added. *)
val ensure_coverage :
  ?width:int -> Graph.t -> Hft_hls.Fu_bind.t -> Graph.t * int

type composed = {
  vectors_translated : int;
  vectors_confirmed : int;  (** behavioural run really shows the value *)
}

(** Translate module-level operand pairs through an environment and
    confirm each end-to-end with [Graph.run]. *)
val compose :
  width:int -> Graph.t -> env -> (int * int) list -> composed
