(** Scan-variable selection at the behavioural level (survey §3.3.1).

    Breaking CDFG loops by scanning {e variables} rather than gate-level
    flip-flops exploits a freedom MFVS does not have: several scan
    variables with disjoint lifetimes can share one scan register, so
    the right objective is minimum {e scan registers}, not minimum
    cut vertices.

    Three selectors are provided:
    - {!select_mfvs}: vertex-count-minimal cut (gate-level thinking),
      the baseline;
    - {!select_effective} (Potkonjak–Dey–Roy): greedy on loop-cutting
      effectiveness × hardware-sharing effectiveness;
    - {!select_boundary} (Lee–Jha–Wolf): loop boundary variables first,
      preferring short lifetimes. *)

open Hft_cdfg

type selection = {
  scan_vars : int list;
  n_scan_registers : int;  (** after lifetime-sharing of the chosen vars *)
}

(** Scan registers needed to host the chosen variables (left-edge over
    their merge-class lifetimes; members of one class count once). *)
val registers_needed : Graph.t -> Lifetime.info -> int list -> int

(** All loops broken? *)
val breaks_all : Graph.t -> int list -> bool

val select_mfvs : Graph.t -> Schedule.t -> selection
val select_effective : Graph.t -> Schedule.t -> selection
val select_boundary : Graph.t -> Schedule.t -> selection
