open Hft_rtl

type report = {
  implications_before : int;
  implications_after : int;
  extra_vectors : int;
  controller : Controller.t;
}

(* Build a test vector that keeps (s1 = v1) but gives every implied
   signal a different value than the implication demands. *)
let breaking_vector c ((s1, v1), _) =
  let imps = Controller.implications c in
  let mine = List.filter (fun (a, _) -> a = (s1, v1)) imps in
  let flipped =
    List.map
      (fun (_, (s2, v2)) ->
        (* choose any domain value other than v2; enables are 0/1 *)
        let v' =
          match s2 with
          | Controller.Reg_enable _ -> 1 - v2
          | Controller.Reg_select _ | Controller.Fu_select _ ->
            if v2 = 0 then 1 else 0
        in
        (s2, v'))
      mine
  in
  (s1, v1) :: flipped

let harden ?(max_vectors = 8) d =
  let c0 = Controller.of_datapath d in
  let before = List.length (Controller.implications c0) in
  let rec go c added =
    if added >= max_vectors then c
    else
      match Controller.implications c with
      | [] -> c
      | imps ->
        (* Attack the antecedent with the most implications. *)
        let by_antecedent = Hashtbl.create 16 in
        List.iter
          (fun (a, _) ->
            Hashtbl.replace by_antecedent a
              (1 + (try Hashtbl.find by_antecedent a with Not_found -> 0)))
          imps;
        let best =
          Hashtbl.fold
            (fun a n acc ->
              match acc with
              | Some (_, m) when m >= n -> acc
              | _ -> Some (a, n))
            by_antecedent None
        in
        (match best with
         | None -> c
         | Some (a, _) ->
           let imp = List.find (fun (x, _) -> x = a) imps in
           let tv = breaking_vector c imp in
           let c' = Controller.add_test_vectors c [ tv ] in
           let now = List.length (Controller.implications c') in
           if now < List.length imps then go c' (added + 1)
           else c (* no progress: stop *))
  in
  let c = go c0 0 in
  {
    implications_before = before;
    implications_after = List.length (Controller.implications c);
    extra_vectors = List.length c.Controller.test_vectors;
    controller = c;
  }
