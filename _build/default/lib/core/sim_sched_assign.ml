open Hft_cdfg
open Hft_util

type result = {
  sched : Schedule.t;
  binding : Hft_hls.Fu_bind.t;
  est_assignment_loops : int;
}

(* Does a dependency path from [u] to [v] pass through an op outside
   [members]?  Only such paths create assignment loops: a chain kept
   entirely on one unit merely recirculates through the unit's own
   output register (a tolerated self-loop, paper Figure 1(c)). *)
let escaping_path g members u v =
  let dg = Graph.op_graph g in
  let inside o = o = u || o = v || List.mem o members in
  let n = Digraph.order dg in
  let seen = Array.make n false in
  let q = Queue.create () in
  (* Start from u's successors that are outside the member set. *)
  List.iter
    (fun w ->
      if (not (inside w)) && not seen.(w) then begin
        seen.(w) <- true;
        Queue.add w q
      end)
    (Digraph.succ dg u);
  let found = ref false in
  while not (Queue.is_empty q) do
    let w = Queue.take q in
    List.iter
      (fun x ->
        if x = v then found := true
        else if (not (inside x)) && not seen.(x) then begin
          seen.(x) <- true;
          Queue.add x q
        end)
      (Digraph.succ dg w)
  done;
  !found

let assignment_loops g (binding : Hft_hls.Fu_bind.t) =
  let count = ref 0 in
  Array.iter
    (fun (_, ops) ->
      List.iter
        (fun u ->
          List.iter
            (fun v -> if u <> v && escaping_path g ops u v then incr count)
            ops)
        ops)
    binding.Hft_hls.Fu_bind.instances;
  !count

let loop_creating_pairs g members o =
  List.length
    (List.filter
       (fun o' ->
         o' <> o
         && (escaping_path g (o :: members) o' o
             || escaping_path g (o :: members) o o'))
       members)

let bind_loop_aware ?(loop_cost = 100.0) ~resources g sched =
  let choose (partial : Hft_hls.Fu_bind.t) ~op ~candidates ~can_open =
    let cost inst =
      let _, members = partial.Hft_hls.Fu_bind.instances.(inst) in
      loop_cost *. float_of_int (loop_creating_pairs g members op)
    in
    let best =
      List.fold_left
        (fun acc inst ->
          match acc with
          | None -> Some (inst, cost inst)
          | Some (_, c) when cost inst < c -> Some (inst, cost inst)
          | Some _ -> acc)
        None candidates
    in
    match best with
    | Some (inst, c) ->
      (* Opening a fresh unit costs one unit of "area pressure"; avoid a
         loop whenever the cap allows. *)
      if c > 0.0 && can_open then `Open else `Use inst
    | None -> `Open
  in
  Hft_hls.Fu_bind.bind ~resources ~choose g sched

(* Move one op to another instance of its class (steps permitting). *)
let rebind g sched (binding : Hft_hls.Fu_bind.t) o inst =
  let instances =
    Array.mapi
      (fun i (cl, ops) ->
        let ops = List.filter (fun o' -> o' <> o) ops in
        if i = inst then (cl, List.sort compare (o :: ops)) else (cl, ops))
      binding.Hft_hls.Fu_bind.instances
  in
  let fu_of_op = Array.copy binding.Hft_hls.Fu_bind.fu_of_op in
  fu_of_op.(o) <- inst;
  let b = { Hft_hls.Fu_bind.fu_of_op; instances } in
  match Hft_hls.Fu_bind.validate g sched b with
  | () -> Some b
  | exception Invalid_argument _ -> None

(* Local search: move single ops between instances while it reduces the
   assignment-loop count. *)
let improve g sched binding =
  let current = ref binding in
  let score = ref (assignment_loops g binding) in
  let progress = ref true in
  while !progress && !score > 0 do
    progress := false;
    Array.iteri
      (fun o inst0 ->
        if inst0 >= 0 && not !progress then
          Array.iteri
            (fun inst (cl, _) ->
              if (not !progress) && inst <> inst0
                 && Some cl
                    = Hft_cdfg.Op.fu_class (Graph.op g o).Graph.o_kind
              then
                match rebind g sched !current o inst with
                | Some b ->
                  let s = assignment_loops g b in
                  if s < !score then begin
                    current := b;
                    score := s;
                    progress := true
                  end
                | None -> ())
            !current.Hft_hls.Fu_bind.instances)
      !current.Hft_hls.Fu_bind.fu_of_op
  done;
  !current

let run ?loop_cost ~resources g sched_opt =
  let sched =
    match sched_opt with
    | Some s -> s
    | None -> Hft_hls.List_sched.schedule g ~resources
  in
  (* Two seeds — the loop-aware greedy and the conventional left-edge —
     each polished by local search; keep the better. *)
  let seeds =
    [ bind_loop_aware ?loop_cost ~resources g sched;
      Hft_hls.Fu_bind.left_edge ~resources g sched ]
  in
  let binding =
    List.map (fun b -> improve g sched b) seeds
    |> List.map (fun b -> (assignment_loops g b, b))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.hd |> snd
  in
  { sched; binding; est_assignment_loops = assignment_loops g binding }

let conventional ~resources g =
  let sched = Hft_hls.List_sched.schedule g ~resources in
  let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
  { sched; binding; est_assignment_loops = assignment_loops g binding }
