open Hft_cdfg

type alternative = B | C

let datapath which =
  let g = Paper_fig1.graph () in
  let sched, idx =
    match which with
    | B -> (Paper_fig1.schedule_b g, Paper_fig1.binding_b)
    | C -> (Paper_fig1.schedule_c g, Paper_fig1.binding_c)
  in
  let binding = Hft_hls.Fu_bind.of_class_indices g sched idx in
  let info = Lifetime.compute g sched in
  (* Register style of the figure: results of ops bound to one adder
     share that adder's output register (RA1/RA2). *)
  let result_fu = Hashtbl.create 8 in
  Array.iteri
    (fun o inst ->
      Hashtbl.replace result_fu (Graph.op g o).Graph.o_result inst)
    binding.Hft_hls.Fu_bind.fu_of_op;
  let results =
    List.init (Graph.n_ops g) (fun o -> (Graph.op g o).Graph.o_result)
    |> List.sort (fun a b ->
           compare (Hashtbl.find result_fu a, a) (Hashtbl.find result_fu b, b))
  in
  let chosen = Hashtbl.create 8 in
  let next_fresh = ref 0 in
  let prefer rep ~feasible =
    match Hashtbl.find_opt result_fu rep with
    | Some inst ->
      let r =
        match Hashtbl.find_opt chosen inst with
        | Some c when List.mem c feasible -> Some c
        | Some _ | None -> None
      in
      (match r with
       | Some c -> Some c
       | None ->
         Hashtbl.replace chosen inst !next_fresh;
         incr next_fresh;
         None)
    | None ->
      (match feasible with
       | [] ->
         incr next_fresh;
         None
       | c :: _ -> Some c)
  in
  let alloc = Hft_hls.Reg_alloc.color g info ~order:results ~prefer in
  (g, Hft_hls.Datapath_gen.generate ~width:8 g sched binding alloc)

type outcome = {
  nontrivial_loops : int list list;
  self_loops : int list;
  scan_registers_needed : int;
}

let analyze which =
  let _, d = datapath which in
  let s = Hft_rtl.Sgraph.of_datapath d in
  let nt = Hft_rtl.Sgraph.nontrivial_loops s in
  {
    nontrivial_loops = nt;
    self_loops = Hft_rtl.Sgraph.self_loop_regs s;
    scan_registers_needed =
      List.length (Hft_rtl.Sgraph.scan_selection s);
  }

let render () =
  let row which tag =
    let o = analyze which in
    [ tag;
      string_of_int (List.length o.nontrivial_loops);
      String.concat " "
        (List.map
           (fun l -> "[" ^ String.concat ">" (List.map string_of_int l) ^ "]")
           o.nontrivial_loops);
      string_of_int (List.length o.self_loops);
      string_of_int o.scan_registers_needed ]
  in
  Hft_util.Pretty.render
    ~title:
      "Figure 1: loops formed during assignment (schedule/binding (b) vs (c))"
    ~header:[ "binding"; "assignment loops"; "loop (regs)"; "self-loops";
              "scan regs needed" ]
    [ row B "(b) {+1:A1 +2:A2 +3:A1 +4:A2 +5:A1}";
      row C "(c) {+1:A1 +2:A1 +3:A2 +4:A2 +5:A1}" ]
