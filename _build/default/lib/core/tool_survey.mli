(** Table 1 of the paper: operational level of testability insertion for
    the commercial EDA test-synthesis tools of 1996, as typed data. *)

type insertion_level =
  | Hdl
  | Technology_independent
  | Technology_dependent
  | Hdl_and_technology_dependent
  | Tech_independent_or_dependent

type entry = {
  vendor : string;
  synthesis_base : string;
  level : insertion_level;
}

val table1 : entry list
val level_to_string : insertion_level -> string

(** The table exactly as the paper prints it. *)
val render : unit -> string
