type insertion_level =
  | Hdl
  | Technology_independent
  | Technology_dependent
  | Hdl_and_technology_dependent
  | Tech_independent_or_dependent

type entry = {
  vendor : string;
  synthesis_base : string;
  level : insertion_level;
}

let table1 =
  [
    { vendor = "Sunrise"; synthesis_base = "Viewlogic";
      level = Technology_dependent };
    { vendor = "Mentor"; synthesis_base = "Autologic II";
      level = Technology_independent };
    { vendor = "LogicVision";
      synthesis_base = "Synopsys HDL & Design Compiler"; level = Hdl };
    { vendor = "IBM"; synthesis_base = "Booledozer";
      level = Tech_independent_or_dependent };
    { vendor = "Synopsys";
      synthesis_base = "Synopsys HDL & Design Compiler";
      level = Hdl_and_technology_dependent };
    { vendor = "Compass"; synthesis_base = "ASIC Synthesizer";
      level = Technology_dependent };
    { vendor = "AT&T"; synthesis_base = "Synovation";
      level = Hdl_and_technology_dependent };
  ]

let level_to_string = function
  | Hdl -> "HDL"
  | Technology_independent -> "technology-independent"
  | Technology_dependent -> "technology-dependent"
  | Hdl_and_technology_dependent -> "HDL and technology-dependent"
  | Tech_independent_or_dependent -> "tech-independent or tech-dependent"

let render () =
  Hft_util.Pretty.render
    ~title:"Table 1: Operational Level of Testability Insertion"
    ~header:[ "Name"; "Synthesis Base"; "Testability Insertion Level" ]
    (List.map
       (fun e -> [ e.vendor; e.synthesis_base; level_to_string e.level ])
       table1)
