(** Testable register assignment maximising I/O registers
    (Lee–Wolf–Jha–Acken ICCD'92, survey §3.2).

    Registers connected to primary inputs/outputs are inherently
    controllable/observable; assigning as many intermediate variables as
    possible to such registers — outputs first, then inputs, then merge
    — improves the controllability and observability of the whole data
    path while usually keeping the register count minimal. *)

open Hft_cdfg

type result = {
  alloc : Hft_hls.Reg_alloc.t;
  n_io_registers : int;   (** registers holding an input or output var *)
  n_registers : int;
}

(** The paper's ordered assignment. *)
val assign : Graph.t -> Schedule.t -> result

(** Conventional left-edge, measured the same way, for comparison. *)
val assign_conventional : Graph.t -> Schedule.t -> result

(** I/O-register count of an arbitrary allocation. *)
val io_register_count : Graph.t -> Hft_hls.Reg_alloc.t -> int
