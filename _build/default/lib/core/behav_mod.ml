open Hft_cdfg

type report = {
  graph : Graph.t;
  hard_before : int;
  hard_after : int;
  test_controls : int;
  test_observes : int;
}

let add_test_statements g =
  let cls = Testability.analyze g in
  let hard_before = List.length (Testability.hard_variables g cls) in
  let controls, observes = Testability.repair_points g cls in
  let g' = Transform.add_test_points g ~controls ~observes in
  let cls' = Testability.analyze g' in
  {
    graph = g';
    hard_before;
    hard_after = List.length (Testability.hard_variables g' cls');
    test_controls = List.length controls;
    test_observes = List.length observes;
  }

type deflection_report = {
  graph_defl : Graph.t;
  scan_regs_before : int;
  scan_regs_after : int;
  deflections : int;
}

let scan_regs ~resources g =
  let sched = Hft_hls.List_sched.schedule g ~resources in
  (Scan_vars.select_effective g sched).Scan_vars.n_scan_registers

let deflect_for_scan_sharing ?(max_tries = 6) ~resources g =
  let before = scan_regs ~resources g in
  let rec improve g current tries applied =
    if tries <= 0 then (g, current, applied)
    else begin
      let sched = Hft_hls.List_sched.schedule g ~resources in
      let sel = Scan_vars.select_effective g sched in
      let info = Lifetime.compute g sched in
      (* Find a conflicting pair among the scan variables and split the
         lifetime of one of them at one of its consumers. *)
      let pairs =
        List.concat_map
          (fun u ->
            List.filter_map
              (fun v ->
                if u < v && Lifetime.conflict info u v then Some (u, v)
                else None)
              sel.Scan_vars.scan_vars)
          sel.Scan_vars.scan_vars
      in
      let candidates =
        List.concat_map
          (fun (u, v) ->
            List.concat_map
              (fun var ->
                List.map
                  (fun consumer -> (var, consumer.Graph.o_id))
                  (Graph.consumers g var))
              [ u; v ])
          pairs
      in
      let try_one (var, consumer) =
        match Transform.insert_deflection g ~var ~consumer with
        | g' ->
          (match scan_regs ~resources g' with
           | n when n < current -> Some (g', n)
           | _ -> None
           | exception Invalid_argument _ -> None)
        | exception Invalid_argument _ -> None
      in
      let rec first = function
        | [] -> None
        | c :: tl -> (match try_one c with Some r -> Some r | None -> first tl)
      in
      match first candidates with
      | Some (g', n) -> improve g' n (tries - 1) (applied + 1)
      | None -> (g, current, applied)
    end
  in
  let graph_defl, after, deflections = improve g before max_tries 0 in
  { graph_defl; scan_regs_before = before; scan_regs_after = after;
    deflections }
