(** Behaviour modification for testability (survey §3.4).

    Two complementary moves:
    - test statements (Chen–Karnik–Saab): give hard-to-control /
      hard-to-observe variables direct test-mode access;
    - deflection operations (Dey–Potkonjak): add identity operations
      (add-0) to split lifetimes so that chosen scan variables can share
      scan registers, cutting the scan-register bill. *)

open Hft_cdfg

type report = {
  graph : Graph.t;               (** the modified behaviour *)
  hard_before : int;
  hard_after : int;
  test_controls : int;
  test_observes : int;
}

(** Test-statement insertion for every hard variable. *)
val add_test_statements : Graph.t -> report

type deflection_report = {
  graph_defl : Graph.t;
  scan_regs_before : int;
  scan_regs_after : int;
  deflections : int;
}

(** Try deflections that split the lifetimes of conflicting scan
    variables; keep those that reduce the scan-register count under the
    given resources (re-scheduling the modified behaviour each time).
    [max_tries] bounds the search. *)
val deflect_for_scan_sharing :
  ?max_tries:int -> resources:(Op.fu_class * int) list -> Graph.t ->
  deflection_report
