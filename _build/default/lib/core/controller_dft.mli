(** Controller-based DFT (Dey–Gangaram–Potkonjak ICCAD'95, survey §3.5).

    Even with both the controller and the data path individually
    testable, the composite resists sequential ATPG: the controller only
    ever emits its functional control vectors, so value combinations it
    never produces become implications the ATPG keeps running into.  The
    remedy is a handful of {e extra control vectors}, reachable in test
    mode only, chosen to break the identified implications. *)

type report = {
  implications_before : int;
  implications_after : int;
  extra_vectors : int;
  controller : Hft_rtl.Controller.t; (** with the test vectors added *)
}

(** Break as many implications as possible with at most [max_vectors]
    extra vectors (greedy: each new vector flips the consequents of the
    largest implication group of one antecedent). *)
val harden : ?max_vectors:int -> Hft_rtl.Datapath.t -> report
