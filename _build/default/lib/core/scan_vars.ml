open Hft_cdfg
open Hft_util

type selection = { scan_vars : int list; n_scan_registers : int }

let registers_needed g info vars =
  let reps =
    List.map (fun v -> Union_find.find info.Lifetime.merged v) vars
    |> List.sort_uniq compare
  in
  ignore g;
  let items = List.map (fun r -> (r, Lifetime.class_interval info r)) reps in
  if items = [] then 0 else snd (Interval.left_edge items)

let breaks_all g vars =
  Loops.unbroken (Loops.enumerate g) vars = []

(* Candidate scan variables: anything carried on some loop. *)
let candidates loops =
  List.concat_map (fun l -> l.Loops.vars) loops |> List.sort_uniq compare

let finish g info vars =
  { scan_vars = List.sort compare vars;
    n_scan_registers = registers_needed g info vars }

(* Greedy minimum-vertex cut over the loop/variable covering matrix. *)
let select_mfvs g sched =
  let info = Lifetime.compute g sched in
  let loops = Loops.enumerate g in
  let rec go unbroken chosen =
    if unbroken = [] then chosen
    else begin
      let cands = candidates unbroken in
      let best =
        List.fold_left
          (fun acc v ->
            let cut =
              List.length
                (List.filter (fun l -> List.mem v l.Loops.vars) unbroken)
            in
            match acc with
            | Some (_, c) when c >= cut -> acc
            | _ -> Some (v, cut))
          None cands
      in
      match best with
      | None -> chosen
      | Some (v, _) -> go (Loops.unbroken unbroken [ v ]) (v :: chosen)
    end
  in
  finish g info (go loops [])

(* Potkonjak-Dey-Roy: loop-cutting effectiveness x sharing
   effectiveness.  Sharing effectiveness of v: how many other candidate
   variables could share a register with v (disjoint lifetimes). *)
let select_effective g sched =
  let info = Lifetime.compute g sched in
  let loops = Loops.enumerate g in
  let all_cands = candidates loops in
  let sharing v =
    let n =
      List.length
        (List.filter
           (fun u -> u <> v && not (Lifetime.conflict info u v))
           all_cands)
    in
    1.0 +. float_of_int n
  in
  let rec go unbroken chosen =
    if unbroken = [] then chosen
    else begin
      let cands = candidates unbroken in
      let score v =
        let cut =
          List.length (List.filter (fun l -> List.mem v l.Loops.vars) unbroken)
        in
        (* Prefer variables that share a register with an already-chosen
           scan variable: they are free. *)
        let free_bonus =
          if List.exists (fun u -> not (Lifetime.conflict info u v)) chosen
          then 2.0
          else 1.0
        in
        float_of_int cut *. sharing v *. free_bonus
      in
      let best =
        List.fold_left
          (fun acc v ->
            match acc with
            | Some (_, s) when s >= score v -> acc
            | _ -> Some (v, score v))
          None cands
      in
      match best with
      | None -> chosen
      | Some (v, _) -> go (Loops.unbroken unbroken [ v ]) (v :: chosen)
    end
  in
  finish g info (go loops [])

(* Lee-Jha-Wolf: boundary variables (the loop-carried pairs bound every
   loop) first, shorter lifetimes preferred. *)
let select_boundary g sched =
  let info = Lifetime.compute g sched in
  let loops = Loops.enumerate g in
  let boundary =
    List.concat_map (fun (s, d) -> [ s; d ]) g.Graph.feedback
    |> List.sort_uniq compare
  in
  let lifetime_len v = Interval.length info.Lifetime.intervals.(v) in
  let sorted_boundary =
    List.sort (fun a b -> compare (lifetime_len a, a) (lifetime_len b, b))
      boundary
  in
  let rec from_boundary unbroken chosen = function
    | [] -> (unbroken, chosen)
    | v :: tl ->
      if unbroken = [] then (unbroken, chosen)
      else if List.exists (fun l -> List.mem v l.Loops.vars) unbroken then
        from_boundary (Loops.unbroken unbroken [ v ]) (v :: chosen) tl
      else from_boundary unbroken chosen tl
  in
  let unbroken, chosen = from_boundary loops [] sorted_boundary in
  (* Any remaining loops (created by non-boundary cycles): fall back to
     effectiveness selection on what is left. *)
  let rec mop_up unbroken chosen =
    if unbroken = [] then chosen
    else
      match candidates unbroken with
      | [] -> chosen
      | cands ->
        let v =
          List.fold_left
            (fun acc u -> if lifetime_len u < lifetime_len acc then u else acc)
            (List.hd cands) cands
        in
        mop_up (Loops.unbroken unbroken [ v ]) (v :: chosen)
  in
  finish g info (mop_up unbroken chosen)
