lib/core/io_reg_assign.ml: Array Graph Hashtbl Hft_cdfg Hft_hls Hft_util Lifetime List
