lib/core/behav_mod.mli: Graph Hft_cdfg Op
