lib/core/fig1_exp.ml: Array Graph Hashtbl Hft_cdfg Hft_hls Hft_rtl Hft_util Lifetime List Paper_fig1 String
