lib/core/controller_dft.ml: Controller Hashtbl Hft_rtl List
