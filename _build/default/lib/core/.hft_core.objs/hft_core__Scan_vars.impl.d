lib/core/scan_vars.ml: Array Graph Hft_cdfg Hft_util Interval Lifetime List Loops Union_find
