lib/core/flow.ml: Area Array Datapath Graph Hft_bist Hft_cdfg Hft_hls Hft_rtl Hft_util Lifetime List Op Scan_vars Schedule Sgraph Sim_sched_assign
