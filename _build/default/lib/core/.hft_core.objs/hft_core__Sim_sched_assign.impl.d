lib/core/sim_sched_assign.ml: Array Digraph Graph Hft_cdfg Hft_hls Hft_util List Queue Schedule
