lib/core/tool_survey.mli:
