lib/core/tool_survey.ml: Hft_util List
