lib/core/behav_mod.ml: Graph Hft_cdfg Hft_hls Lifetime List Scan_vars Testability Transform
