lib/core/io_reg_assign.mli: Graph Hft_cdfg Hft_hls Schedule
