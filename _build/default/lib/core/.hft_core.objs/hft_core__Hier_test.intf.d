lib/core/hier_test.mli: Graph Hft_cdfg Hft_hls
