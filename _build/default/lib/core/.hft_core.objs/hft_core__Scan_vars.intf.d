lib/core/scan_vars.mli: Graph Hft_cdfg Lifetime Schedule
