lib/core/sim_sched_assign.mli: Graph Hft_cdfg Hft_hls Op Schedule
