lib/core/fig1_exp.mli: Hft_cdfg Hft_rtl
