lib/core/flow.mli: Graph Hft_cdfg Hft_hls Hft_rtl Op Schedule
