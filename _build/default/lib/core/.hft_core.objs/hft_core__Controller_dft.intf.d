lib/core/controller_dft.mli: Hft_rtl
