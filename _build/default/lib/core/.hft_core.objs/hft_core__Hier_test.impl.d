lib/core/hier_test.ml: Array Graph Hft_cdfg Hft_hls List Op Transform
