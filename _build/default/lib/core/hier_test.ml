open Hft_cdfg

type env = {
  op : int;
  chain : (int * int) list;
  observe_output : string;
}

type composed = { vectors_translated : int; vectors_confirmed : int }

let mask width v = v land ((1 lsl width) - 1)

(* ------------------------------------------------------------------ *)
(* Justification                                                      *)
(* ------------------------------------------------------------------ *)

(* Functional solver: bindings is an assoc (var -> required value);
   returns extended bindings or None. *)
let rec solve ~width g bindings (v, value) =
  let value = mask width value in
  match List.assoc_opt v bindings with
  | Some x -> if x = value then Some bindings else None
  | None ->
    let bindings = (v, value) :: bindings in
    if List.mem v g.Graph.test_controls then Some bindings
    else
      (match (Graph.var g v).Graph.v_kind with
       | Graph.V_input -> Some bindings
       | Graph.V_const c -> if mask width c = value then Some bindings else None
       | Graph.V_output | Graph.V_intermediate ->
         (match Graph.producer g v with
          | None ->
            (* Pure state variable: only its reset value 0 is available
               in the first iteration. *)
            if value = 0 then Some bindings else None
          | Some o ->
            let kind = o.Graph.o_kind in
            if kind = Op.Move then
              solve ~width g bindings (o.Graph.o_args.(0), value)
            else begin
              let try_port p =
                match Op.transparency kind p with
                | `Identity c ->
                  let other = o.Graph.o_args.(1 - p) in
                  (match solve ~width g bindings (other, c) with
                   | Some b -> solve ~width g b (o.Graph.o_args.(p), value)
                   | None -> None)
                | `Invertible c ->
                  (* out = f(arg); for Sub port 1 with other = 0:
                     out = -arg, so arg = -value. *)
                  let other = o.Graph.o_args.(1 - p) in
                  (match solve ~width g bindings (other, c) with
                   | Some b ->
                     solve ~width g b (o.Graph.o_args.(p), mask width (- value))
                   | None -> None)
                | `Opaque -> None
              in
              match try_port 0 with
              | Some b -> Some b
              | None -> if Op.arity kind > 1 then try_port 1 else None
            end))

let justify ~width g ~wanted =
  let rec go bindings = function
    | [] -> Some bindings
    | w :: tl ->
      (match solve ~width g bindings w with
       | Some b -> go b tl
       | None -> None)
  in
  match go [] wanted with
  | None -> None
  | Some bindings ->
    (* Project onto primary inputs and state variables. *)
    let pis =
      List.filter_map
        (fun (v, value) ->
          match (Graph.var g v).Graph.v_kind with
          | Graph.V_input -> Some ((Graph.var g v).Graph.v_name, value)
          | Graph.V_const _ | Graph.V_output | Graph.V_intermediate -> None)
        bindings
    in
    Some pis

(* ------------------------------------------------------------------ *)
(* Propagation chains                                                 *)
(* ------------------------------------------------------------------ *)

(* DFS from a variable to an output (or observe point) through
   transparent consumer ports. *)
let rec find_chain g visited v =
  if List.mem v g.Graph.test_observes then
    Some ([], (Graph.var g v).Graph.v_name)
  else if (Graph.var g v).Graph.v_kind = Graph.V_output then
    Some ([], (Graph.var g v).Graph.v_name)
  else
    let step o =
      if List.mem o.Graph.o_id visited then None
      else
        let kind = o.Graph.o_kind in
        let ports = List.init (Op.arity kind) (fun p -> p) in
        let usable p =
          o.Graph.o_args.(p) = v
          && (kind = Op.Move
              || match Op.transparency kind p with
                 | `Identity _ | `Invertible _ -> true
                 | `Opaque -> false)
        in
        let rec try_ports = function
          | [] -> None
          | p :: tl ->
            if usable p then
              match
                find_chain g (o.Graph.o_id :: visited) o.Graph.o_result
              with
              | Some (chain, out) -> Some ((o.Graph.o_id, p) :: chain, out)
              | None -> try_ports tl
            else try_ports tl
        in
        try_ports ports
    in
    let rec try_consumers = function
      | [] -> None
      | o :: tl -> (match step o with Some r -> Some r | None -> try_consumers tl)
    in
    try_consumers (Graph.consumers g v)

(* Side conditions a chain imposes: every non-data input at its
   transparency constant. *)
let chain_side_conditions g chain =
  List.concat_map
    (fun (oid, p) ->
      let o = Graph.op g oid in
      if o.Graph.o_kind = Op.Move then []
      else
        match Op.transparency o.Graph.o_kind p with
        | `Identity c | `Invertible c -> [ (o.Graph.o_args.(1 - p), c) ]
        | `Opaque -> [])
    chain

(* Expected output value after pushing [value] through the chain. *)
let chain_expected ~width g chain value =
  List.fold_left
    (fun v (oid, p) ->
      let o = Graph.op g oid in
      if o.Graph.o_kind = Op.Move then v
      else
        let c =
          match Op.transparency o.Graph.o_kind p with
          | `Identity c | `Invertible c -> c
          | `Opaque -> 0
        in
        let args = if p = 0 then [ v; mask width c ] else [ mask width c; v ] in
        Op.eval ~width o.Graph.o_kind args)
    value chain

let observe_value ~width g env run_result =
  mask width (Graph.value_of g run_result env.observe_output)

(* ------------------------------------------------------------------ *)
(* Environments                                                       *)
(* ------------------------------------------------------------------ *)

let try_pair ~width g env (a, b) =
  let o = Graph.op g env.op in
  let kind = o.Graph.o_kind in
  let wanted =
    (if Op.arity kind > 1 then
       [ (o.Graph.o_args.(0), a); (o.Graph.o_args.(1), b) ]
     else [ (o.Graph.o_args.(0), a) ])
    @ chain_side_conditions g env.chain
  in
  let rec go bindings = function
    | [] -> Some bindings
    | w :: tl ->
      (match solve ~width g bindings w with
       | Some b -> go b tl
       | None -> None)
  in
  match go [] wanted with
  | None -> None
  | Some bindings ->
    let pis =
      List.filter_map
        (fun (v, value) ->
          match (Graph.var g v).Graph.v_kind with
          | Graph.V_input -> Some ((Graph.var g v).Graph.v_name, value)
          | Graph.V_const _ | Graph.V_output | Graph.V_intermediate -> None)
        bindings
    in
    (* Fill every unbound input with zero to run deterministically. *)
    let all_inputs =
      List.map
        (fun v ->
          match List.assoc_opt v.Graph.v_name pis with
          | Some x -> (v.Graph.v_name, x)
          | None -> (v.Graph.v_name, 0))
        (Graph.inputs g)
    in
    (* Variables with test-mode control points are loaded directly. *)
    let force =
      List.filter (fun (v, _) -> List.mem v g.Graph.test_controls) bindings
    in
    let result = Graph.run ~width g ~inputs:all_inputs ~force () in
    let module_out =
      Op.eval ~width kind
        (if Op.arity kind > 1 then [ mask width a; mask width b ]
         else [ mask width a ])
    in
    let expected = chain_expected ~width g env.chain module_out in
    Some (observe_value ~width g env result = mask width expected)

let environment ?(width = 8) g o =
  let result = (Graph.op g o).Graph.o_result in
  match find_chain g [] result with
  | None -> None
  | Some (chain, observe_output) ->
    let env = { op = o; chain; observe_output } in
    (* Validate on a few sample operand pairs. *)
    let samples = [ (5, 3); (1, 1); (11, 7) ] in
    let ok =
      List.for_all
        (fun pair -> match try_pair ~width g env pair with
           | Some true -> true
           | Some false | None -> false)
        samples
    in
    if ok then Some env else None

let covered_instances ?width g (binding : Hft_hls.Fu_bind.t) =
  let covered = ref [] and uncovered = ref [] in
  Array.iteri
    (fun i (_, ops) ->
      if List.exists (fun o -> environment ?width g o <> None) ops then
        covered := i :: !covered
      else uncovered := i :: !uncovered)
    binding.Hft_hls.Fu_bind.instances;
  (List.rev !covered, List.rev !uncovered)

let ensure_coverage ?width g binding =
  let _, uncovered = covered_instances ?width g binding in
  let points = ref 0 in
  let g' =
    List.fold_left
      (fun g i ->
        let _, ops = binding.Hft_hls.Fu_bind.instances.(i) in
        match ops with
        | [] -> g
        | o :: _ ->
          let op = Graph.op g o in
          let controls = Array.to_list op.Graph.o_args in
          let observes = [ op.Graph.o_result ] in
          points := !points + List.length controls + 1;
          Transform.add_test_points g ~controls ~observes)
      g uncovered
  in
  (g', !points)

let compose ~width g env pairs =
  let confirmed =
    List.length
      (List.filter
         (fun pair -> try_pair ~width g env pair = Some true)
         pairs)
  in
  { vectors_translated = List.length pairs; vectors_confirmed = confirmed }
