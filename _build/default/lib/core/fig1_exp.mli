(** Executable reproduction of the paper's Figure 1.

    Builds the two schedule/binding alternatives with the figure's
    register style — each adder owns a dedicated output register
    (RA1/RA2) — and returns the generated data path, ready for S-graph
    loop inspection. *)

type alternative = B | C  (** Figure 1(b) / Figure 1(c) *)

val datapath : alternative -> Hft_cdfg.Graph.t * Hft_rtl.Datapath.t

type outcome = {
  nontrivial_loops : int list list; (** register loops, as register ids *)
  self_loops : int list;
  scan_registers_needed : int;
}

val analyze : alternative -> outcome

(** The two-row table of the figure: binding, loops, self-loops, scan
    registers. *)
val render : unit -> string
