open Hft_cdfg
open Hft_rtl

type control_role =
  | Enable of int
  | Reg_leg of int * int
  | Fu_leg of int * int * int
  | Fn_sel of int * Op.kind

type t = {
  netlist : Netlist.t;
  width : int;
  reg_q : int array array;
  reg_d_src : int array array;
  data_pis : (string * int array) list;
  control_pis : (string * int) list;
  controls : (control_role * int) list;
  outputs : (string * int array) list;
}

type block = {
  b_netlist : Netlist.t;
  b_a : int array;
  b_b : int array;
  b_sel : (string * int) list;
  b_out : int array;
}

(* ------------------------------------------------------------------ *)
(* Word-level gate builders                                           *)
(* ------------------------------------------------------------------ *)

let add_gate = Netlist.add

(* Smart gate constructors with constant folding: arithmetic built over
   constant operands (carry-ins, multiplier partial-product padding,
   comparator padding) would otherwise leave redundant — hence
   untestable — gates in the netlist. *)
let is0 nl v = Netlist.kind nl v = Netlist.Const0
let is1 nl v = Netlist.kind nl v = Netlist.Const1
let const0 nl = add_gate nl Netlist.Const0 [||]
let const1 nl = add_gate nl Netlist.Const1 [||]

let rec mk_not nl a =
  if is0 nl a then const1 nl
  else if is1 nl a then const0 nl
  else add_gate nl Netlist.Not [| a |]

and mk_and nl a b =
  if is0 nl a || is0 nl b then const0 nl
  else if is1 nl a then b
  else if is1 nl b then a
  else add_gate nl Netlist.And [| a; b |]

and mk_or nl a b =
  if is1 nl a || is1 nl b then const1 nl
  else if is0 nl a then b
  else if is0 nl b then a
  else add_gate nl Netlist.Or [| a; b |]

and mk_xor nl a b =
  if is0 nl a then b
  else if is0 nl b then a
  else if is1 nl a then mk_not nl b
  else if is1 nl b then mk_not nl a
  else add_gate nl Netlist.Xor [| a; b |]

and mk_xnor nl a b =
  if is1 nl a then b
  else if is1 nl b then a
  else if is0 nl a then mk_not nl b
  else if is0 nl b then mk_not nl a
  else add_gate nl Netlist.Xnor [| a; b |]

let mk_mux nl s a b =
  if is0 nl s then a
  else if is1 nl s then b
  else if a = b then a
  else add_gate nl Netlist.Mux2 [| s; a; b |]

(* Full adder: returns (sum, carry); constant inputs fold away. *)
let full_adder nl a b c =
  let axb = mk_xor nl a b in
  let sum = mk_xor nl axb c in
  let ab = mk_and nl a b in
  let axb_c = mk_and nl axb c in
  let carry = mk_or nl ab axb_c in
  (sum, carry)

(* Sum bit only (no carry), for the most significant position when the
   carry-out is not consumed — dead carry gates would be untestable. *)
let sum_only nl a b c = mk_xor nl (mk_xor nl a b) c

(* Ripple-carry add of two words with carry-in node; returns
   (sum bits, carry-out, carry-into-msb).  With [need_cout:false] the
   final carry logic is not built and the returned carries alias the
   carry into the MSB. *)
let ripple_add ?(need_cout = true) nl a b cin =
  let w = Array.length a in
  let sums = Array.make w 0 in
  let carry = ref cin in
  let c_into_msb = ref cin in
  for i = 0 to w - 1 do
    if i = w - 1 then begin
      c_into_msb := !carry;
      if need_cout then begin
        let s, c = full_adder nl a.(i) b.(i) !carry in
        sums.(i) <- s;
        carry := c
      end
      else sums.(i) <- sum_only nl a.(i) b.(i) !carry
    end
    else begin
      let s, c = full_adder nl a.(i) b.(i) !carry in
      sums.(i) <- s;
      carry := c
    end
  done;
  (sums, !carry, !c_into_msb)

let word_not nl a = Array.map (fun bit -> mk_not nl bit) a

let adder nl a b =
  let zero = const0 nl in
  let sums, _, _ = ripple_add ~need_cout:false nl a b zero in
  sums

let subtractor nl a b =
  let one = const1 nl in
  let nb = word_not nl b in
  let sums, _, _ = ripple_add ~need_cout:false nl a nb one in
  sums

(* Carry of a + b + c without the sum gate. *)
let carry_only nl a b c =
  let axb = mk_xor nl a b in
  let ab = mk_and nl a b in
  let axb_c = mk_and nl axb c in
  mk_or nl ab axb_c

(* Signed a < b computed as N xor V of (a - b); only the carry chain
   and the MSB sum are materialised. *)
let less_than nl a b =
  let w = Array.length a in
  let one = const1 nl in
  let nb = word_not nl b in
  let carry = ref one in
  for i = 0 to w - 2 do
    carry := carry_only nl a.(i) nb.(i) !carry
  done;
  let cmsb = !carry in
  let n = sum_only nl a.(w - 1) nb.(w - 1) cmsb in
  let cout = carry_only nl a.(w - 1) nb.(w - 1) cmsb in
  let v = mk_xor nl cout cmsb in
  mk_xor nl n v

let equal_word nl a b =
  let w = Array.length a in
  let bits = Array.init w (fun i -> mk_xnor nl a.(i) b.(i)) in
  let rec reduce = function
    | [ x ] -> x
    | x :: y :: tl -> reduce (mk_and nl x y :: tl)
    | [] -> assert false
  in
  reduce (Array.to_list bits)

(* Array multiplier, low word of the product. *)
let multiplier nl a b =
  let w = Array.length a in
  let zero = const0 nl in
  (* Partial product rows, each shifted; accumulate with ripple adds. *)
  let acc = ref (Array.make w zero) in
  for j = 0 to w - 1 do
    let row =
      Array.init w (fun i -> if i < j then zero else mk_and nl a.(i - j) b.(j))
    in
    acc := adder nl !acc row
  done;
  !acc

let bitwise nl kind a b =
  let mk =
    match kind with
    | Netlist.And -> mk_and
    | Netlist.Or -> mk_or
    | Netlist.Xor -> mk_xor
    | _ -> fun nl a b -> add_gate nl kind [| a; b |]
  in
  Array.init (Array.length a) (fun i -> mk nl a.(i) b.(i))

(* One-bit result padded to a word. *)
let pad_bit nl bit w =
  let zero = add_gate nl Netlist.Const0 [||] in
  Array.init w (fun i -> if i = 0 then bit else zero)

let kind_result nl ~width a b = function
  | Op.Add -> adder nl a b
  | Op.Sub -> subtractor nl a b
  | Op.Mul -> multiplier nl a b
  | Op.Lt -> pad_bit nl (less_than nl a b) width
  | Op.Gt -> pad_bit nl (less_than nl b a) width
  | Op.Eq -> pad_bit nl (equal_word nl a b) width
  | Op.And -> bitwise nl Netlist.And a b
  | Op.Or -> bitwise nl Netlist.Or a b
  | Op.Xor -> bitwise nl Netlist.Xor a b
  | Op.Move -> a
  | Op.Shl | Op.Shr ->
    invalid_arg "Expand: variable shifts are not supported at gate level"

(* One-hot AND-OR selection of n words by n select bits. *)
let one_hot_select nl words sels =
  match (words, sels) with
  | [ w ], _ -> w
  | [], _ -> invalid_arg "Expand: empty selection"
  | words, sels ->
    let width = Array.length (List.hd words) in
    let masked =
      List.map2
        (fun word sel ->
          Array.init width (fun i -> mk_and nl word.(i) sel))
        words sels
    in
    List.fold_left
      (fun acc word ->
        Array.init width (fun i -> mk_or nl acc.(i) word.(i)))
      (List.hd masked) (List.tl masked)

let fu_block nl ~width ~kinds ~sel a b =
  match kinds with
  | [ k ] -> kind_result nl ~width a b k
  | kinds ->
    let words = List.map (fun k -> kind_result nl ~width a b k) kinds in
    one_hot_select nl words sel

(* ------------------------------------------------------------------ *)
(* Standalone combinational blocks                                    *)
(* ------------------------------------------------------------------ *)

let comb_block ~width kinds =
  if kinds = [] then invalid_arg "Expand.comb_block: no kinds";
  let nl = Netlist.create ~name:"block" () in
  let a =
    Array.init width (fun i -> add_gate nl ~name:(Printf.sprintf "a%d" i) Netlist.Pi [||])
  in
  let b =
    Array.init width (fun i -> add_gate nl ~name:(Printf.sprintf "b%d" i) Netlist.Pi [||])
  in
  let sel_named =
    if List.length kinds = 1 then []
    else
      List.map
        (fun k ->
          let name = Printf.sprintf "fn_%s" (Op.to_string k) in
          (name, add_gate nl ~name Netlist.Pi [||]))
        kinds
  in
  let out_val =
    fu_block nl ~width ~kinds ~sel:(List.map snd sel_named) a b
  in
  let out =
    Array.mapi
      (fun i v -> add_gate nl ~name:(Printf.sprintf "y%d" i) Netlist.Po [| v |])
      out_val
  in
  { b_netlist = nl; b_a = a; b_b = b; b_sel = sel_named; b_out = out }

let eval_block blk ~kind_index ~a ~b =
  let nl = blk.b_netlist in
  let st = Sim.pcreate nl ~n_patterns:1 in
  let set_word bits value =
    Array.iteri
      (fun i node ->
        let v = Hft_util.Bitvec.create 1 in
        Hft_util.Bitvec.set v 0 (value lsr i land 1 = 1);
        Sim.pset_pi st node v)
      bits
  in
  set_word blk.b_a a;
  set_word blk.b_b b;
  List.iteri
    (fun i (_, node) ->
      let v = Hft_util.Bitvec.create 1 in
      Hft_util.Bitvec.set v 0 (i = kind_index);
      Sim.pset_pi st node v)
    blk.b_sel;
  Sim.peval nl st;
  Array.to_list blk.b_out
  |> List.mapi (fun i po ->
         if Hft_util.Bitvec.get (Sim.pvalue st po) 0 then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

(* ------------------------------------------------------------------ *)
(* Data-path expansion                                                *)
(* ------------------------------------------------------------------ *)

let reg_write_sources d r =
  List.filter_map
    (fun (_, m) ->
      match m with
      | Datapath.Move { src; dst } when dst = r -> Some (`S src)
      | Datapath.Exec e when e.dst = r -> Some (`F e.fu)
      | Datapath.Exec _ | Datapath.Move _ -> None)
    d.Datapath.transfers
  |> List.sort_uniq compare

let of_datapath d =
  let width = d.Datapath.width in
  let nl = Netlist.create ~name:(d.Datapath.name ^ "_gates") () in
  let control_pis = ref [] in
  let controls = ref [] in
  let control role name =
    let node = add_gate nl ~name Netlist.Pi [||] in
    control_pis := (name, node) :: !control_pis;
    controls := (role, node) :: !controls;
    node
  in
  (* Data PIs. *)
  let data_pis =
    Array.to_list d.Datapath.inports
    |> List.map (fun name ->
           ( name,
             Array.init width (fun i ->
                 add_gate nl ~name:(Printf.sprintf "%s[%d]" name i) Netlist.Pi
                   [||]) ))
  in
  (* Register DFFs are created first with a placeholder D input (the
     netlist is append-only but fanin arrays are exposed by reference),
     so the mux logic below can reference Q values; the real D nets are
     patched in before validation. *)
  let zero = add_gate nl ~name:"const0" Netlist.Const0 [||] in
  let reg_q =
    Array.map
      (fun r ->
        Array.init width (fun i ->
            add_gate nl
              ~name:(Printf.sprintf "%s[%d]" r.Datapath.r_name i)
              Netlist.Dff [| zero |]))
      d.Datapath.regs
  in
  let one = add_gate nl ~name:"const1" Netlist.Const1 [||] in
  let word_of_src = function
    | Datapath.Sreg r -> reg_q.(r)
    | Datapath.Sport p -> snd (List.nth data_pis p)
    | Datapath.Sconst c ->
      Array.init width (fun i -> if c lsr i land 1 = 1 then one else zero)
  in
  (* FU instances. *)
  let fu_out =
    Array.map
      (fun f ->
        let ports = Datapath.fu_port_sources d f.Datapath.f_id in
        let port_word p =
          match ports.(p) with
          | [] -> Array.make width zero (* unused port *)
          | [ s ] -> word_of_src s
          | sources ->
            let sels =
              List.mapi
                (fun i _ ->
                  control
                    (Fu_leg (f.Datapath.f_id, p, i))
                    (Printf.sprintf "sel_%s_p%d_leg%d" f.Datapath.f_name p i))
                sources
            in
            one_hot_select nl (List.map word_of_src sources) sels
        in
        let a = port_word 0 and b = port_word 1 in
        (* Op kinds executed by this instance. *)
        let kinds =
          List.sort_uniq compare
            (List.filter_map
               (fun (_, m) ->
                 match m with
                 | Datapath.Exec e when e.fu = f.Datapath.f_id -> Some e.kind
                 | Datapath.Exec _ | Datapath.Move _ -> None)
               d.Datapath.transfers)
        in
        match kinds with
        | [] -> Array.make width zero
        | kinds ->
          let sel =
            if List.length kinds = 1 then []
            else
              List.map
                (fun k ->
                  control
                    (Fn_sel (f.Datapath.f_id, k))
                    (Printf.sprintf "fn_%s_%s" f.Datapath.f_name (Op.to_string k)))
                kinds
          in
          fu_block nl ~width ~kinds ~sel a b)
      d.Datapath.fus
  in
  (* Register D inputs: one-hot select over write sources, gated by the
     enable. *)
  let reg_d_src =
    Array.map
      (fun r ->
        let rid = r.Datapath.r_id in
        let sources = reg_write_sources d rid in
        let words =
          List.map
            (function
              | `F fu -> fu_out.(fu)
              | `S src -> word_of_src src)
            sources
        in
        let newval =
          match words with
          | [] -> reg_q.(rid) (* never written: holds *)
          | [ w ] -> w
          | words ->
            let sels =
              List.mapi
                (fun i _ ->
                  control (Reg_leg (rid, i))
                    (Printf.sprintf "sel_%s_leg%d" r.Datapath.r_name i))
                words
            in
            one_hot_select nl words sels
        in
        let en = control (Enable rid) (Printf.sprintf "en_%s" r.Datapath.r_name) in
        Array.init width (fun i -> mk_mux nl en reg_q.(rid).(i) newval.(i)))
      d.Datapath.regs
  in
  (* Patch DFF fanins (append-only structure: mutate the fanin arrays
     in place — they are exposed by reference from [Netlist.fanin]). *)
  Array.iteri
    (fun rid bits ->
      Array.iteri
        (fun i dff -> Netlist.set_fanin nl dff 0 reg_d_src.(rid).(i))
        bits)
    reg_q;
  (* POs. *)
  let outputs =
    Array.to_list d.Datapath.outports
    |> List.map (fun (name, r) ->
           ( name,
             Array.init width (fun i ->
                 add_gate nl
                   ~name:(Printf.sprintf "%s[%d]" name i)
                   Netlist.Po
                   [| reg_q.(r).(i) |]) ))
  in
  Netlist.validate nl;
  {
    netlist = nl;
    width;
    reg_q;
    reg_d_src;
    data_pis;
    control_pis = List.rev !control_pis;
    controls = List.rev !controls;
    outputs;
  }

(* ------------------------------------------------------------------ *)
(* Functional driving of the expanded netlist                         *)
(* ------------------------------------------------------------------ *)

let leg_index sources s =
  let rec go i = function
    | [] -> invalid_arg "Expand.run_iteration: source not in mux fan-in"
    | x :: tl -> if x = s then i else go (i + 1) tl
  in
  go 0 sources

let roles_for_step d step =
  List.concat_map
    (fun (s, m) ->
      if s <> step then []
      else
        match m with
        | Datapath.Exec e ->
          let reg_legs = reg_write_sources d e.dst in
          let ports = Datapath.fu_port_sources d e.fu in
          (Enable e.dst
           ::
           (if List.length reg_legs > 1 then
              [ Reg_leg (e.dst, leg_index reg_legs (`F e.fu)) ]
            else []))
          @ (if List.length
                  (List.sort_uniq compare
                     (List.filter_map
                        (fun (_, m') ->
                          match m' with
                          | Datapath.Exec e' when e'.fu = e.fu -> Some e'.kind
                          | Datapath.Exec _ | Datapath.Move _ -> None)
                        d.Datapath.transfers))
               > 1
             then [ Fn_sel (e.fu, e.kind) ]
             else [])
          @ List.concat
              (Array.to_list
                 (Array.mapi
                    (fun p src ->
                      if List.length ports.(p) > 1 then
                        [ Fu_leg (e.fu, p, leg_index ports.(p) src) ]
                      else [])
                    e.srcs))
        | Datapath.Move { src; dst } ->
          let reg_legs = reg_write_sources d dst in
          Enable dst
          ::
          (if List.length reg_legs > 1 then
             [ Reg_leg (dst, leg_index reg_legs (`S src)) ]
           else []))
    d.Datapath.transfers

let run_iteration d ex ~inputs ?(state = []) () =
  let nl = ex.netlist in
  let st = Sim.pcreate nl ~n_patterns:1 in
  let set_node node b =
    let v = Hft_util.Bitvec.create 1 in
    Hft_util.Bitvec.set v 0 b;
    Sim.pset_pi st node v
  in
  (* Data inputs held constant through the iteration. *)
  List.iter
    (fun (name, value) ->
      match List.assoc_opt name ex.data_pis with
      | None -> ()
      | Some bits ->
        Array.iteri (fun i node -> set_node node (value lsr i land 1 = 1)) bits)
    inputs;
  (* Preset register state (by register name). *)
  List.iter
    (fun (rname, value) ->
      Array.iteri
        (fun rid r ->
          if r.Datapath.r_name = rname then
            Array.iteri
              (fun i dff ->
                let v = Hft_util.Bitvec.create 1 in
                Hft_util.Bitvec.set v 0 (value lsr i land 1 = 1);
                Sim.pset_state st dff v)
              ex.reg_q.(rid))
        d.Datapath.regs)
    state;
  (* Per-step one-hot control values derived from the transfer table. *)
  (* Per-step one-hot control values derived from the transfer table. *)
  let active_roles step = roles_for_step d step in
  for step = 0 to d.Datapath.n_steps do
    let active = active_roles step in
    List.iter
      (fun (role, node) -> set_node node (List.mem role active))
      ex.controls;
    Sim.peval nl st;
    Sim.pclock nl st
  done;
  (* Refresh combinational nodes (POs) from the final register state. *)
  Sim.peval nl st;
  List.map
    (fun (name, po_bits) ->
      let v =
        Array.to_list po_bits
        |> List.mapi (fun i po ->
               if Hft_util.Bitvec.get (Sim.pvalue st po) 0 then 1 lsl i else 0)
        |> List.fold_left ( + ) 0
      in
      (name, v))
    ex.outputs
