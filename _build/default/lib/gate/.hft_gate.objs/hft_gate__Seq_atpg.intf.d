lib/gate/seq_atpg.mli: Fault Netlist
