lib/gate/expand.mli: Hft_cdfg Hft_rtl Netlist
