lib/gate/fault.mli: Netlist
