lib/gate/sim.mli: Fault Hft_util Netlist
