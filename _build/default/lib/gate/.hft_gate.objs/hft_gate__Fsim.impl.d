lib/gate/fsim.ml: Array Bitvec Fault Hft_util List Netlist Rng Sim
