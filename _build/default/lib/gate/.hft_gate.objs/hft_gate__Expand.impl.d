lib/gate/expand.ml: Array Datapath Hft_cdfg Hft_rtl Hft_util List Netlist Op Printf Sim
