lib/gate/ctrl_expand.ml: Array Controller Datapath Expand Hashtbl Hft_rtl List Netlist Printf Seq_atpg
