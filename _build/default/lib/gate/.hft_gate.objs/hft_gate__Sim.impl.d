lib/gate/sim.ml: Array Bitvec Fault Hft_util List Netlist
