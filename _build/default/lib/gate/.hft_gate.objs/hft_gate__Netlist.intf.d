lib/gate/netlist.mli:
