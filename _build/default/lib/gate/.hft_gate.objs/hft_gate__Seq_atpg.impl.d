lib/gate/seq_atpg.ml: Array Fault Hashtbl Lazy List Netlist Podem Printf
