lib/gate/gsgraph.mli: Hft_util Netlist
