lib/gate/gsgraph.ml: Array Digraph Hashtbl Hft_util List Mfvs Netlist Queue
