lib/gate/ctrl_expand.mli: Expand Fault Hft_rtl Netlist Seq_atpg
