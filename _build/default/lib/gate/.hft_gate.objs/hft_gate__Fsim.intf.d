lib/gate/fsim.mli: Fault Hft_util Netlist
