lib/gate/podem.mli: Fault Netlist
