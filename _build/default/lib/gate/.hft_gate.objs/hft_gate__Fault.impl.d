lib/gate/fault.ml: Array List Netlist Printf
