lib/gate/netlist.ml: Array List Printf Queue
