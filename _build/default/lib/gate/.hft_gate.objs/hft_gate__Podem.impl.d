lib/gate/podem.ml: Array Fault Hashtbl List Netlist Queue Sim
