(** Sequential ATPG by iterative time-frame expansion.

    The sequential circuit is unrolled into [frames] combinational
    copies; DFF outputs in frame 0 start at X (unknown initial state)
    except for {e scanned} flip-flops, whose frame-0 value is a free
    decision variable (scan load) and whose final-frame D input is
    observable (scan out).  The fault is injected in every frame.

    This module is the measurement instrument for the survey's central
    empirical claim (§3.1): test generation effort explodes with
    S-graph loops and grows with sequential depth, and scan — full or
    partial — is what tames it. *)

type stats = {
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
  decisions : int;
  backtracks : int;
  implications : int;
  frames_used : int;
}

val fault_coverage : stats -> float

(** [run nl ~faults ~scanned ~max_frames ~backtrack_limit] attempts each
    fault with growing frame counts (1, 2, ... max_frames), recording
    aggregate effort.  [scanned] lists DFF node ids treated as scan
    cells.  [assignable_pis] restricts which of the original PIs ATPG
    may drive (default: all) — used for controller–data-path composites
    whose control lines are internally driven.
    [strapped] PIs get a single shared copy across all frames (test-mode
    and test-select pins are held constant during a test in reality, and
    one decision instead of one per frame keeps the search tractable). *)
val run :
  ?backtrack_limit:int -> ?min_frames:int -> ?max_frames:int ->
  ?assignable_pis:int list -> ?strapped:int list ->
  Netlist.t -> faults:Fault.t list -> scanned:int list -> stats

(** Unroll helper exposed for tests: returns the unrolled netlist, the
    assignable PI ids, the observe ids, and a function mapping a fault
    to its per-frame injection sites. *)
val unroll :
  ?assignable_pis:int list -> ?strapped:int list -> Netlist.t -> frames:int ->
  scanned:int list ->
  Netlist.t * int list * int list * (Fault.t -> Fault.t list)
