(** RTL → gate expansion.

    Turns a {!Hft_rtl.Datapath} into a sequential gate netlist:

    - each register becomes [width] DFFs guarded by an enable
      ([D = enable ? new : Q]);
    - register-input and FU-port multiplexers become one-hot AND–OR mux
      trees whose leg-select lines are primary inputs;
    - functional units become ripple-carry adders/subtractors, array
      multipliers, signed comparators and bitwise logic, with one-hot
      function-select lines when an instance executes several op kinds;
    - primary input ports and all control lines are PIs; output-register
      bits are POs.

    Making control lines primary inputs reflects the survey's standard
    assumption (§3.5) that the controller is testable separately and its
    outputs are fully controllable in test mode; the Dey–Gangaram–
    Potkonjak experiment (E11) revisits exactly this assumption by
    restricting those lines to controller-reachable vectors.

    A provenance map links registers and ports to node ids so scan and
    BIST instrumentation can be applied at gate level. *)

(** What a control PI means, so drivers need not parse names. *)
type control_role =
  | Enable of int                (** register enable *)
  | Reg_leg of int * int         (** (register, write-mux leg) one-hot *)
  | Fu_leg of int * int * int    (** (fu, port, mux leg) one-hot *)
  | Fn_sel of int * Hft_cdfg.Op.kind (** (fu, kind) function select *)

type t = {
  netlist : Netlist.t;
  width : int;
  reg_q : int array array;          (** register id -> Q bit nodes (DFFs) *)
  reg_d_src : int array array;      (** register id -> pre-mux D value nodes *)
  data_pis : (string * int array) list; (** inport name -> PI bit nodes *)
  control_pis : (string * int) list;    (** control line name -> PI node *)
  controls : (control_role * int) list; (** role -> PI node *)
  outputs : (string * int array) list;  (** outport name -> PO nodes *)
}

val of_datapath : Hft_rtl.Datapath.t -> t

(** Control roles active during a given step of the functional
    schedule — the per-state control vector, role-typed.  Used both by
    {!run_iteration} and by the controller synthesis in
    {!Ctrl_expand}. *)
val roles_for_step : Hft_rtl.Datapath.t -> int -> control_role list

(** Drive the expanded netlist through one full iteration (steps
    0..n_steps) with the functional control sequence derived from the
    transfer table, then read the output registers.  [state] presets
    registers by name.  This is the gate-level twin of
    [Datapath.simulate] and is checked against it in the test suite. *)
val run_iteration :
  Hft_rtl.Datapath.t -> t -> inputs:(string * int) list ->
  ?state:(string * int) list -> unit -> (string * int) list

(** Standalone combinational expansion of one functional-unit class
    executing the given op kinds: returns the netlist plus operand PI
    bits, function-select PI names, and result PO bits.  Used for module
    tests and BIST logic-block experiments. *)
type block = {
  b_netlist : Netlist.t;
  b_a : int array;
  b_b : int array;
  b_sel : (string * int) list;
  b_out : int array;
}

val comb_block : width:int -> Hft_cdfg.Op.kind list -> block

(** Reference check helper: evaluate [block] on integer operands with
    the [i]-th kind selected (one-hot), returning the result word. *)
val eval_block : block -> kind_index:int -> a:int -> b:int -> int
