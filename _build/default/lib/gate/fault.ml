type t = { node : int; pin : int option; stuck : bool }

let to_string nl f =
  match f.pin with
  | None ->
    Printf.sprintf "%s/SA%d" (Netlist.node_name nl f.node)
      (if f.stuck then 1 else 0)
  | Some p ->
    Printf.sprintf "%s.in%d/SA%d" (Netlist.node_name nl f.node) p
      (if f.stuck then 1 else 0)

let universe nl =
  let acc = ref [] in
  for v = Netlist.n_nodes nl - 1 downto 0 do
    (match Netlist.kind nl v with
     | Netlist.Po | Netlist.Const0 | Netlist.Const1 -> ()
     | Netlist.Pi | Netlist.Dff | Netlist.Buf | Netlist.Not | Netlist.And
     | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor | Netlist.Xnor
     | Netlist.Mux2 ->
       acc := { node = v; pin = None; stuck = false }
              :: { node = v; pin = None; stuck = true } :: !acc);
    (* Branch faults on multi-fanout drivers. *)
    (match Netlist.kind nl v with
     | Netlist.Pi | Netlist.Const0 | Netlist.Const1 -> ()
     | Netlist.Po | Netlist.Dff | Netlist.Buf | Netlist.Not | Netlist.And
     | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor | Netlist.Xnor
     | Netlist.Mux2 ->
       Array.iteri
         (fun p driver ->
           if List.length (Netlist.fanout nl driver) > 1 then
             acc := { node = v; pin = Some p; stuck = false }
                    :: { node = v; pin = Some p; stuck = true } :: !acc)
         (Netlist.fanin nl v))
  done;
  !acc

let collapsed nl =
  List.filter
    (fun f ->
      match f.pin with
      | Some _ -> true
      | None ->
        (match Netlist.kind nl f.node with
         | Netlist.Buf ->
           (* Equivalent to the driver's stem fault. *)
           false
         | Netlist.Not ->
           (* Output faults kept; (input faults are not generated as
              stems anyway). *)
           true
         | Netlist.Pi | Netlist.Dff | Netlist.And | Netlist.Or | Netlist.Nand
         | Netlist.Nor | Netlist.Xor | Netlist.Xnor | Netlist.Mux2 -> true
         | Netlist.Po | Netlist.Const0 | Netlist.Const1 -> false))
    (universe nl)
