(** Logic simulation: pattern-parallel two-valued and scalar
    three-valued, both with optional fault injection. *)

(** {1 Pattern-parallel (bit-sliced) two-valued simulation} *)

type pstate = {
  values : Hft_util.Bitvec.t array; (** per node, one bit per pattern *)
  n_patterns : int;
}

val pcreate : Netlist.t -> n_patterns:int -> pstate

(** Assign a PI's value across patterns. *)
val pset_pi : pstate -> int -> Hft_util.Bitvec.t -> unit

(** Set a DFF's current state across patterns. *)
val pset_state : pstate -> int -> Hft_util.Bitvec.t -> unit

(** Evaluate all combinational nodes in order; [faults] are forced
    during evaluation (stem faults force the node's value; pin faults
    force the value seen by that gate input). *)
val peval : ?faults:Fault.t list -> Netlist.t -> pstate -> unit

(** Clock edge: every DFF samples its D input ([peval] must have run). *)
val pclock : ?faults:Fault.t list -> Netlist.t -> pstate -> unit

val pvalue : pstate -> int -> Hft_util.Bitvec.t

(** {1 Scalar three-valued simulation (values 0/1/2=X)} *)

type tstate = int array

val tcreate : Netlist.t -> tstate

(** Evaluate combinationally from PI/DFF/Const values already in the
    state; X-propagation; [faults] force 0/1 at their sites. *)
val teval : ?faults:Fault.t list -> Netlist.t -> tstate -> unit

(** {1 Convenience} *)

(** Run [cycles] clocked cycles applying per-cycle PI vectors from
    [stimuli]; returns the PO value matrix (cycle, po index in
    [Netlist.pos] order).  DFFs start at [init] (default all-0). *)
val run_cycles :
  ?faults:Fault.t list -> ?init:bool list -> Netlist.t ->
  stimuli:bool array array -> bool array array
