open Hft_rtl

type t = {
  expansion : Expand.t;
  netlist : Netlist.t;
  reset : int;
  test_mode : int;
  test_sel : int list;
  state_bits : int list;
  assignable : int list;
  n_datapath_nodes : int;
}

let mk_or_list nl = function
  | [] -> Netlist.add nl Netlist.Const0 [||]
  | [ x ] -> x
  | x :: tl -> List.fold_left (fun acc y -> Netlist.add nl Netlist.Or [| acc; y |]) x tl

(* Is [role] asserted by controller test vector [tv]? *)
let role_in_vector tv role =
  match role with
  | Expand.Enable r -> Controller.value tv (Controller.Reg_enable r) = 1
  | Expand.Reg_leg (r, leg) ->
    Controller.value tv (Controller.Reg_select r) = leg
    && Controller.value tv (Controller.Reg_enable r) = 1
  | Expand.Fu_leg (f, p, leg) ->
    Controller.value tv (Controller.Fu_select (f, p)) = leg
  | Expand.Fn_sel _ -> false (* not part of the controller's vocabulary *)

let compose d (c : Controller.t) =
  let ex = Expand.of_datapath d in
  let nl = ex.Expand.netlist in
  let n_datapath_nodes = Netlist.n_nodes nl in
  (* Snapshot control-line consumers before adding controller logic. *)
  let sinks =
    List.map (fun (role, pi) -> (role, pi, Netlist.fanout nl pi)) ex.Expand.controls
  in
  let n_states = d.Datapath.n_steps + 1 in
  let reset = Netlist.add nl ~name:"reset" Netlist.Pi [||] in
  let test_mode = Netlist.add nl ~name:"test_mode" Netlist.Pi [||] in
  let nreset = Netlist.add nl Netlist.Not [| reset |] in
  (* One-hot state register; D nets patched after all bits exist. *)
  let zero = Netlist.add nl Netlist.Const0 [||] in
  let state_bits =
    List.init n_states (fun i ->
        Netlist.add nl ~name:(Printf.sprintf "fsm_s%d" i) Netlist.Dff [| zero |])
  in
  let state = Array.of_list state_bits in
  List.iteri
    (fun i dff ->
      let prev = state.((i + n_states - 1) mod n_states) in
      let walk = Netlist.add nl Netlist.And [| nreset; prev |] in
      let d_net =
        if i = 0 then Netlist.add nl Netlist.Or [| reset; walk |] else walk
      in
      Netlist.set_fanin nl dff 0 d_net)
    state_bits;
  (* Test-vector selection inputs (one-hot). *)
  let test_sel =
    List.mapi
      (fun j _ -> Netlist.add nl ~name:(Printf.sprintf "test_sel%d" j) Netlist.Pi [||])
      c.Controller.test_vectors
  in
  (* Fn_sel roles keep direct access in test mode through free PIs. *)
  let fn_free = Hashtbl.create 4 in
  let extra_pis = ref [] in
  let line_for role =
    let active_states =
      List.filteri (fun s _ -> List.mem role (Expand.roles_for_step d s))
        state_bits
    in
    let functional = mk_or_list nl active_states in
    let test_term =
      match role with
      | Expand.Fn_sel _ ->
        let pi =
          match Hashtbl.find_opt fn_free role with
          | Some pi -> pi
          | None ->
            let pi = Netlist.add nl ~name:"fn_test" Netlist.Pi [||] in
            Hashtbl.replace fn_free role pi;
            extra_pis := pi :: !extra_pis;
            pi
        in
        Some pi
      | Expand.Enable _ | Expand.Reg_leg _ | Expand.Fu_leg _ ->
        let terms =
          List.filteri
            (fun j _ -> role_in_vector (List.nth c.Controller.test_vectors j) role)
            test_sel
        in
        if terms = [] then None else Some (mk_or_list nl terms)
    in
    match test_term with
    | None ->
      (* No test freedom for this line: gated by not-test-mode. *)
      let ntm = Netlist.add nl Netlist.Not [| test_mode |] in
      Netlist.add nl Netlist.And [| ntm; functional |]
    | Some t -> Netlist.add nl Netlist.Mux2 [| test_mode; functional; t |]
  in
  (* Rewire every control consumer onto the decoded line. *)
  List.iter
    (fun (role, pi, consumers) ->
      let line = line_for role in
      List.iter
        (fun w ->
          Array.iteri
            (fun pin src -> if src = pi then Netlist.set_fanin nl w pin line)
            (Netlist.fanin nl w))
        consumers)
    sinks;
  Netlist.validate nl;
  let control_set = List.map snd ex.Expand.controls in
  let assignable =
    List.filter (fun p -> not (List.mem p control_set)) (Netlist.pis nl)
  in
  { expansion = ex; netlist = nl; reset; test_mode; test_sel; state_bits;
    assignable; n_datapath_nodes }

let atpg ?(backtrack_limit = 50) ?(max_frames = 4) t ~faults =
  (* Restrict assignability to the composite's real inputs: the
     disconnected control PIs stay at X and influence nothing.  Shorter
     unrolls are pointless — the FSM needs a reset plus its full walk —
     so attempt directly at the deepest frame count. *)
  Seq_atpg.run ~backtrack_limit ~min_frames:max_frames ~max_frames
    ~assignable_pis:t.assignable
    ~strapped:(t.test_mode :: t.test_sel)
    t.netlist ~faults ~scanned:[]
