open Hft_util

type pstate = { values : Bitvec.t array; n_patterns : int }

let pcreate nl ~n_patterns =
  {
    values = Array.init (Netlist.n_nodes nl) (fun _ -> Bitvec.create n_patterns);
    n_patterns;
  }

let pset_pi st pi v = Bitvec.assign ~dst:st.values.(pi) v

let pset_state = pset_pi
let pvalue st v = st.values.(v)

(* Fault forcing helpers. *)
let stem_faults faults v =
  List.filter (fun f -> f.Fault.node = v && f.Fault.pin = None) faults

let pin_fault faults v p =
  List.find_opt (fun f -> f.Fault.node = v && f.Fault.pin = Some p) faults

let force_bitvec dst stuck =
  Bitvec.fill dst stuck

let peval ?(faults = []) nl st =
  let order = Netlist.comb_order nl in
  let scratch = Array.init 3 (fun _ -> Bitvec.create st.n_patterns) in
  let read v consumer pin =
    match pin_fault faults consumer pin with
    | Some f ->
      let tmp = scratch.(pin) in
      force_bitvec tmp f.Fault.stuck;
      tmp
    | None -> st.values.(v)
  in
  List.iter
    (fun v ->
      (match Netlist.kind nl v with
       | Netlist.Pi | Netlist.Dff -> () (* sources: keep assigned values *)
       | Netlist.Const0 -> Bitvec.fill st.values.(v) false
       | Netlist.Const1 -> Bitvec.fill st.values.(v) true
       | Netlist.Po | Netlist.Buf ->
         Bitvec.assign ~dst:st.values.(v) (read (Netlist.fanin nl v).(0) v 0)
       | Netlist.Not ->
         Bitvec.not_ ~dst:st.values.(v) (read (Netlist.fanin nl v).(0) v 0)
       | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
       | Netlist.Xnor ->
         let fi = Netlist.fanin nl v in
         let a = read fi.(0) v 0 and b = read fi.(1) v 1 in
         (match Netlist.kind nl v with
          | Netlist.And -> Bitvec.and_ ~dst:st.values.(v) a b
          | Netlist.Or -> Bitvec.or_ ~dst:st.values.(v) a b
          | Netlist.Xor -> Bitvec.xor ~dst:st.values.(v) a b
          | Netlist.Nand ->
            Bitvec.and_ ~dst:scratch.(2) a b;
            Bitvec.not_ ~dst:st.values.(v) scratch.(2)
          | Netlist.Nor ->
            Bitvec.or_ ~dst:scratch.(2) a b;
            Bitvec.not_ ~dst:st.values.(v) scratch.(2)
          | Netlist.Xnor ->
            Bitvec.xor ~dst:scratch.(2) a b;
            Bitvec.not_ ~dst:st.values.(v) scratch.(2)
          | _ -> assert false)
       | Netlist.Mux2 ->
         let fi = Netlist.fanin nl v in
         let s = read fi.(0) v 0 in
         let a = read fi.(1) v 1 and b = read fi.(2) v 2 in
         Bitvec.mux ~dst:st.values.(v) s a b);
      (* Stem faults override the computed value. *)
      List.iter
        (fun f -> force_bitvec st.values.(v) f.Fault.stuck)
        (stem_faults faults v))
    order

let pclock ?(faults = []) nl st =
  (* Sample D inputs simultaneously. *)
  let dffs = Netlist.dffs nl in
  let sampled =
    List.map
      (fun d ->
        let src = (Netlist.fanin nl d).(0) in
        let v =
          match pin_fault faults d 0 with
          | Some f ->
            let tmp = Bitvec.create st.n_patterns in
            force_bitvec tmp f.Fault.stuck;
            tmp
          | None -> Bitvec.copy st.values.(src)
        in
        (d, v))
      dffs
  in
  List.iter
    (fun (d, v) ->
      Bitvec.assign ~dst:st.values.(d) v;
      (* Stem fault on the DFF forces its state. *)
      List.iter
        (fun f -> force_bitvec st.values.(d) f.Fault.stuck)
        (stem_faults faults d))
    sampled

type tstate = int array

let tcreate nl = Array.make (Netlist.n_nodes nl) 2

let teval ?(faults = []) nl st =
  let read v consumer pin =
    match pin_fault faults consumer pin with
    | Some f -> if f.Fault.stuck then 1 else 0
    | None -> st.(v)
  in
  List.iter
    (fun v ->
      (match Netlist.kind nl v with
       | Netlist.Pi | Netlist.Dff -> ()
       | Netlist.Const0 -> st.(v) <- 0
       | Netlist.Const1 -> st.(v) <- 1
       | Netlist.Po | Netlist.Buf | Netlist.Not ->
         let a = read (Netlist.fanin nl v).(0) v 0 in
         st.(v) <- Netlist.eval_tri (Netlist.kind nl v) [| a |]
       | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
       | Netlist.Xnor ->
         let fi = Netlist.fanin nl v in
         st.(v) <-
           Netlist.eval_tri (Netlist.kind nl v)
             [| read fi.(0) v 0; read fi.(1) v 1 |]
       | Netlist.Mux2 ->
         let fi = Netlist.fanin nl v in
         st.(v) <-
           Netlist.eval_tri Netlist.Mux2
             [| read fi.(0) v 0; read fi.(1) v 1; read fi.(2) v 2 |]);
      List.iter
        (fun f -> st.(v) <- (if f.Fault.stuck then 1 else 0))
        (stem_faults faults v))
    (Netlist.comb_order nl)

let run_cycles ?(faults = []) ?init nl ~stimuli =
  let pis = Netlist.pis nl in
  let pos = Netlist.pos nl in
  let dffs = Netlist.dffs nl in
  let st = pcreate nl ~n_patterns:1 in
  (match init with
   | None -> ()
   | Some bits ->
     List.iteri
       (fun i d ->
         let v = Bitvec.create 1 in
         Bitvec.set v 0 (List.nth bits i);
         pset_state st d v)
       dffs);
  Array.map
    (fun stimulus ->
      List.iteri
        (fun i pi ->
          let v = Bitvec.create 1 in
          Bitvec.set v 0 stimulus.(i);
          pset_pi st pi v)
        pis;
      peval ~faults nl st;
      let out =
        Array.of_list (List.map (fun po -> Bitvec.get st.values.(po) 0) pos)
      in
      pclock ~faults nl st;
      out)
    stimuli
