(** Gate-level sequential netlists.

    Nodes are dense integer ids.  A [Dff]'s value is its current state;
    its single fanin is the D input sampled at each clock edge.  [Po]
    nodes are observation points with one fanin.  [Mux2] fanins are
    [\[| select; a; b |\]] with [select = 1] choosing [b]. *)

type kind =
  | Pi
  | Po
  | Dff
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux2

type t

val create : ?name:string -> unit -> t

(** [add nl kind fanins] appends a node and returns its id.  Arity is
    checked ([Pi]/[Const*]: 0, [Po]/[Buf]/[Not]/[Dff]: 1, [Mux2]: 3,
    binary gates: 2). *)
val add : t -> ?name:string -> kind -> int array -> int

val n_nodes : t -> int
val kind : t -> int -> kind
val fanin : t -> int -> int array
val node_name : t -> int -> string
val circuit_name : t -> string

(** Fanout lists (computed on first use, cached; do not [add] after). *)
val fanout : t -> int -> int list

(** [set_fanin nl node pin new_src] rewires one input (used by scan
    insertion and expansion to close forward references); invalidates
    the fanout/order caches. *)
val set_fanin : t -> int -> int -> int -> unit

val pis : t -> int list
val pos : t -> int list
val dffs : t -> int list

(** Gate count excluding [Pi]/[Po]/[Const] bookkeeping nodes. *)
val n_gates : t -> int

(** Combinational evaluation order: every non-[Dff] node appears after
    its fanins, with [Dff]s treated as sources.  Raises
    [Invalid_argument] on a combinational cycle. *)
val comb_order : t -> int list

(** Eval one gate over booleans ([Pi]/[Dff]/[Const] excluded). *)
val eval_bool : kind -> bool array -> bool

(** 3-valued evaluation; values are [0], [1], [2] (= X). *)
val eval_tri : kind -> int array -> int

val validate : t -> unit
val stats : t -> string
