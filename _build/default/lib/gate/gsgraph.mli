(** Gate-level S-graph: flip-flop adjacency through combinational paths
    (Cheng–Agrawal / Lee–Reddy, survey §3.1).

    Vertex [i] is the [i]-th DFF in [Netlist.dffs] order; an edge
    [i -> j] means a purely combinational path from FF[i]'s output to
    FF[j]'s D input.  Conventional gate-level partial scan selects an
    MFVS of this graph. *)

type t = {
  graph : Hft_util.Digraph.t;
  dff_ids : int array;  (** vertex -> netlist node id *)
}

val of_netlist : Netlist.t -> t

(** Greedy MFVS scan selection (self-loops tolerated by default),
    returned as netlist DFF node ids. *)
val scan_selection : ?ignore_self_loops:bool -> t -> int list

val n_loops : ?max_len:int -> ?max_count:int -> t -> int

(** Max combinational-hop depth from a PI-fed FF to a PO-feeding FF. *)
val sequential_depth : t -> int
