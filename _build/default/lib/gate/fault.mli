(** Single stuck-at faults.

    A fault is stuck-at-[stuck] either on a node's output stem
    ([pin = None]) or on one input pin of a gate ([pin = Some i] — the
    fanout branch feeding that pin).  The standard universe is stem
    faults everywhere plus branch faults where the driver has fanout
    greater than one (checkpoint-style); straightforward equivalences
    (buffer chains, inverter chains) are collapsed. *)

type t = {
  node : int;
  pin : int option;
  stuck : bool;
}

val to_string : Netlist.t -> t -> string

(** Full universe before collapsing. *)
val universe : Netlist.t -> t list

(** Universe after collapsing trivial equivalences:
    - [Buf]/[Po] stem faults are equivalent to their input stem fault;
    - a gate input pin fault whose driver has fanout 1 is equivalent to
      the driver's stem fault;
    - [Not] input s-a-v is equivalent to output s-a-(not v), so inverter
      input faults are dropped. *)
val collapsed : Netlist.t -> t list
