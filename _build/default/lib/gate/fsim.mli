(** Fault simulation.

    Combinational: pattern-parallel (62 patterns per machine word) with
    full-resimulation per fault — simple, exact, and fast enough for the
    benchmark sizes here.  Sequential: cycle-accurate single-fault
    simulation over a stimulus sequence. *)

type comb_result = {
  detected : Fault.t list;
  undetected : Fault.t list;
  n_patterns : int;
}

val coverage : comb_result -> float

(** [comb nl ~patterns faults] — [patterns] is a matrix
    [(pattern, pi index in Netlist.pis order)].  A fault is detected
    when any PO differs on any pattern.  DFF states are held at 0 (use
    {!comb} on purely combinational blocks for exact results). *)
val comb : Netlist.t -> patterns:bool array array -> Fault.t list -> comb_result

(** [comb_random nl ~rng ~n_patterns faults] with uniform random
    patterns. *)
val comb_random :
  Netlist.t -> rng:Hft_util.Rng.t -> n_patterns:int -> Fault.t list ->
  comb_result

(** Coverage as a function of pattern count: returns
    [(patterns applied, cumulative coverage)] at each checkpoint.
    Patterns come from [next_pattern], called once per pattern per PI
    bit — this is how LFSR / accumulator generators drive the same
    machinery. *)
val coverage_curve :
  Netlist.t -> checkpoints:int list ->
  next_pattern:(unit -> bool array) -> Fault.t list -> (int * float) list

(** Sequential: [sequential nl ~stimuli faults] runs each fault over the
    cycle stimulus and compares PO streams against the good machine. *)
val sequential :
  Netlist.t -> stimuli:bool array array -> Fault.t list -> comb_result
