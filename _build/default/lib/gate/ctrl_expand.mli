(** Controller–data-path composition at gate level.

    {!Expand.of_datapath} leaves every control line a primary input —
    the survey's default assumption that control is fully accessible in
    test mode.  This module instead synthesises the Moore controller
    into the same netlist: a one-hot state register walks the control
    steps and decodes exactly the functional control vectors, so
    sequential ATPG faces the real control-signal implications the
    Dey–Gangaram–Potkonjak technique (survey §3.5) is about.

    Test vectors added to the {!Hft_rtl.Controller} become extra
    decode terms gated by a [test_mode] primary input and one-hot
    [test_sel] inputs, restoring exactly the combinations the DFT
    technique grants. *)

type t = {
  expansion : Expand.t;       (** the underlying data-path expansion *)
  netlist : Netlist.t;        (** same netlist, now with the FSM inside *)
  reset : int;                (** PI: forces state 0 *)
  test_mode : int;            (** PI: enables the test decode terms *)
  test_sel : int list;        (** PIs: one-hot choice of test vector *)
  state_bits : int list;      (** one-hot state DFFs, step order *)
  assignable : int list;      (** PIs ATPG may drive (excludes the
                                  now-disconnected control lines) *)
  n_datapath_nodes : int;     (** nodes below this id belong to the
                                  data-path expansion, which is identical
                                  across compositions of the same data
                                  path — sample faults below it to
                                  compare controllers fairly *)
}

(** Compose; the controller (typically from
    [Controller.of_datapath] or [Controller_dft.harden]) supplies the
    functional and test vectors. *)
val compose : Hft_rtl.Datapath.t -> Hft_rtl.Controller.t -> t

(** Sequential ATPG over the composite (wraps {!Seq_atpg.run} with the
    right assignable set). *)
val atpg :
  ?backtrack_limit:int -> ?max_frames:int -> t -> faults:Fault.t list ->
  Seq_atpg.stats
