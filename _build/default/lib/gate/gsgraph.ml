open Hft_util

type t = { graph : Digraph.t; dff_ids : int array }

let of_netlist nl =
  let dffs = Array.of_list (Netlist.dffs nl) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i d -> Hashtbl.replace index d i) dffs;
  let g = Digraph.create (Array.length dffs) in
  (* From each DFF output, BFS forward through combinational nodes; a
     reached DFF means its D cone includes this FF. *)
  Array.iteri
    (fun i d ->
      let seen = Array.make (Netlist.n_nodes nl) false in
      let q = Queue.create () in
      Queue.add d q;
      while not (Queue.is_empty q) do
        let v = Queue.take q in
        List.iter
          (fun w ->
            (* A reached DFF closes an S-graph edge (self-loops
               included); only combinational nodes are traversed. *)
            match Netlist.kind nl w with
            | Netlist.Dff -> Digraph.add_edge g i (Hashtbl.find index w)
            | _ ->
              if not seen.(w) then begin
                seen.(w) <- true;
                Queue.add w q
              end)
          (Netlist.fanout nl v)
      done)
    dffs;
  { graph = g; dff_ids = dffs }

let scan_selection ?(ignore_self_loops = true) t =
  Mfvs.greedy ~ignore_self_loops t.graph
  |> List.map (fun v -> t.dff_ids.(v))

let n_loops ?(max_len = 12) ?(max_count = 4096) t =
  List.length (Digraph.cycles t.graph ~max_len ~max_count)

let sequential_depth t =
  (* Longest shortest path between any pair of FFs. *)
  let n = Digraph.order t.graph in
  let best = ref 0 in
  for v = 0 to n - 1 do
    let dist = Digraph.bfs_dist t.graph v in
    Array.iter (fun x -> if x < max_int && x > !best then best := x) dist
  done;
  !best
