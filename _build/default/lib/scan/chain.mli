(** Scan chains: structural insertion and test-length accounting. *)

open Hft_gate

type t = {
  netlist : Netlist.t;      (** the modified netlist *)
  cells : int list;         (** scan DFF node ids, scan-in first *)
  scan_en : int;            (** scan-enable PI *)
  scan_in : int;            (** scan-in PI *)
  scan_out : int;           (** scan-out PO *)
}

(** [insert nl dffs] rewires each listed DFF's D input through a scan
    mux ([scan_en] selects the chain path) and threads them into one
    chain.  The input netlist is modified in place and returned in the
    chain record. *)
val insert : Netlist.t -> int list -> t

(** Cycles to apply [n_tests] scan tests: per test, [length] shift
    cycles plus one capture, plus a final unload. *)
val test_cycles : t -> n_tests:int -> int

(** Shift-register integrity pattern: does a 01100... sequence shifted
    through the chain (scan_en = 1) emerge intact at scan-out after
    [length] cycles?  Verifies the chain wiring by simulation. *)
val verify_shift : t -> bool
