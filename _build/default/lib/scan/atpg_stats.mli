(** Shared ATPG outcome record used by the scan methodologies. *)

type t = {
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
  decisions : int;
  backtracks : int;
  implications : int;
}

val empty : t
val add_outcome : t -> Hft_gate.Podem.result -> Hft_gate.Podem.effort -> t
val coverage : t -> float

(** Fault efficiency: (detected + proven untestable) / total. *)
val efficiency : t -> float

val to_row : t -> string list
val header : string list
