(** Full scan: every flip-flop becomes a scan cell.

    For ATPG purposes scan reduces the sequential problem to a
    combinational one: flip-flop outputs are pseudo-primary inputs and
    their D inputs pseudo-primary outputs. *)

open Hft_gate

type result = {
  chain : Chain.t;
  tests : (int * bool) list list; (** one combinational test per entry *)
  stats : Atpg_stats.t;
}

(** Combinational ATPG over the scan view of [nl] (no structural change
    needed): full PI+FF controllability, PO+FF-input observability. *)
val atpg : ?backtrack_limit:int -> Netlist.t -> faults:Fault.t list -> result

(** Structural insertion of the full chain ([Chain.insert] on all
    DFFs). *)
val insert : Netlist.t -> Chain.t
