(** End-to-end scan test application.

    Translates a combinational scan-view test into the actual
    shift/capture/shift sequence on the chain-inserted netlist and
    verifies by sequential simulation that the faulty machine's response
    stream differs from the good machine's — closing the loop between
    ATPG and silicon-level test application. *)

open Hft_gate

(** [apply_and_check chain ~assignment ~fault] — [assignment] maps PI
    node ids and scan-cell DFF node ids (as returned by full-scan ATPG)
    to values.  Builds the cycle-accurate stimulus (load, capture,
    unload) and returns whether the fault is caught by comparing good
    vs faulty streams at POs and scan-out. *)
val apply_and_check :
  Chain.t -> assignment:(int * bool) list -> fault:Fault.t -> bool

(** The stimulus matrix itself (for inspection / vector export). *)
val stimulus : Chain.t -> assignment:(int * bool) list -> bool array array
