open Hft_gate

type t = {
  netlist : Netlist.t;
  input_cells : (int * int) list;
  output_cells : (int * int) list;
  bs_shift : int;
  extest : int;
  bs_in : int;
  bs_out : int;
}

let insert nl =
  let pis = Netlist.pis nl in
  let pos = Netlist.pos nl in
  if pis = [] || pos = [] then invalid_arg "Boundary.insert: need PIs and POs";
  (* Consumers of each PI, snapshotted before any additions. *)
  let pi_sinks = List.map (fun p -> (p, Netlist.fanout nl p)) pis in
  let bs_shift = Netlist.add nl ~name:"bs_shift" Netlist.Pi [||] in
  let extest = Netlist.add nl ~name:"extest" Netlist.Pi [||] in
  let bs_in = Netlist.add nl ~name:"bs_in" Netlist.Pi [||] in
  let prev = ref bs_in in
  (* Input cells: sample the pin, hold during EXTEST, shift in shift
     mode; the core input is taken from the cell when EXTEST is on. *)
  let input_cells =
    List.map
      (fun (p, sinks) ->
        let zero = Netlist.add nl Netlist.Const0 [||] in
        let cell =
          Netlist.add nl
            ~name:(Printf.sprintf "bc_in_%s" (Netlist.node_name nl p))
            Netlist.Dff [| zero |]
        in
        let sample_or_hold = Netlist.add nl Netlist.Mux2 [| extest; p; cell |] in
        let d = Netlist.add nl Netlist.Mux2 [| bs_shift; sample_or_hold; !prev |] in
        Netlist.set_fanin nl cell 0 d;
        let core_in = Netlist.add nl Netlist.Mux2 [| extest; p; cell |] in
        List.iter
          (fun w ->
            Array.iteri
              (fun pin src -> if src = p then Netlist.set_fanin nl w pin core_in)
              (Netlist.fanin nl w))
          sinks;
        prev := cell;
        (p, cell))
      pi_sinks
  in
  (* Output cells: capture the core's output drivers. *)
  let output_cells =
    List.map
      (fun po ->
        let driver = (Netlist.fanin nl po).(0) in
        let zero = Netlist.add nl Netlist.Const0 [||] in
        let cell =
          Netlist.add nl
            ~name:(Printf.sprintf "bc_out_%s" (Netlist.node_name nl po))
            Netlist.Dff [| zero |]
        in
        let d = Netlist.add nl Netlist.Mux2 [| bs_shift; driver; !prev |] in
        Netlist.set_fanin nl cell 0 d;
        prev := cell;
        (po, cell))
      pos
  in
  let bs_out = Netlist.add nl ~name:"bs_out" Netlist.Po [| !prev |] in
  Netlist.validate nl;
  { netlist = nl; input_cells; output_cells; bs_shift; extest; bs_in; bs_out }

let cells t = List.map snd t.input_cells @ List.map snd t.output_cells

(* One simulation step with the given pin values (assoc by node). *)
let mk_state t = Sim.pcreate t.netlist ~n_patterns:1

let set st node b =
  let v = Hft_util.Bitvec.create 1 in
  Hft_util.Bitvec.set v 0 b;
  Sim.pset_pi st node v

let step t st ~shift ~ext ~scan_bit ~pins =
  let nl = t.netlist in
  List.iter
    (fun p ->
      if p <> t.bs_shift && p <> t.extest && p <> t.bs_in then
        set st p (try List.assq p pins with Not_found -> false))
    (Netlist.pis nl);
  set st t.bs_shift shift;
  set st t.extest ext;
  set st t.bs_in scan_bit;
  Sim.peval nl st;
  let out =
    Hft_util.Bitvec.get (Sim.pvalue st t.bs_out) 0
  in
  Sim.pclock nl st;
  out

let verify_shift t =
  let st = mk_state t in
  let len = List.length (cells t) in
  let sequence = List.init (2 * len) (fun i -> i mod 3 = 1) in
  let outs =
    List.map (fun bit -> step t st ~shift:true ~ext:false ~scan_bit:bit ~pins:[])
      sequence
  in
  (* Bit i emerges at cycle i + len. *)
  List.for_all2
    (fun i bit -> List.nth outs (i + len) = bit)
    (List.init len (fun i -> i))
    (List.filteri (fun i _ -> i < len) sequence)

let extest_roundtrip t ~inputs =
  let n_in = List.length t.input_cells in
  let n_out = List.length t.output_cells in
  if List.length inputs <> n_in then
    invalid_arg "Boundary.extest_roundtrip: one bit per input cell";
  let st = mk_state t in
  (* Full chain load: input-cell values followed by don't-cares for the
     output cells; first bit shifted in ends at the chain's far end
     (the last output cell), so feed the reversed chain image. *)
  let chain_image = inputs @ List.init n_out (fun _ -> false) in
  List.iter
    (fun bit -> ignore (step t st ~shift:true ~ext:false ~scan_bit:bit ~pins:[]))
    (List.rev chain_image);
  (* One EXTEST capture cycle: pins driven to the complement of each
     cell value, proving the cells drive the core. *)
  let pins =
    List.map2 (fun (p, _) v -> (p, not v)) t.input_cells inputs
  in
  ignore (step t st ~shift:false ~ext:true ~scan_bit:false ~pins);
  (* Shift out: each shift step returns bs_out before its clock edge,
     so the first read is the last output cell's captured value. *)
  let reads =
    List.init n_out (fun _ ->
        step t st ~shift:true ~ext:false ~scan_bit:false ~pins:[])
  in
  List.rev reads
