(** Boundary scan in the style of IEEE 1149.1 (survey §4.2).

    Every primary input and output of the core gets a boundary cell —
    a scannable register threaded into one boundary chain — plus two
    mode pins:

    - [bs_shift]: the chain shifts from [bs_in] towards [bs_out];
    - [extest]: the core's inputs are driven from the input cells
      (instead of the pins), and output cells capture the core's
      outputs — the board-level test configuration the standard calls
      EXTEST.  With both low the circuit is functionally transparent
      and the cells SAMPLE pin/core values on each clock.

    The synthesis caveat the survey raises (such structures
    over-constrain plain RTL synthesis) is what motivates inserting
    them structurally, as done here. *)

open Hft_gate

type t = {
  netlist : Netlist.t;
  input_cells : (int * int) list;  (** (original PI, cell DFF) in chain order *)
  output_cells : (int * int) list; (** (original PO, cell DFF) *)
  bs_shift : int;
  extest : int;
  bs_in : int;
  bs_out : int;
}

(** Wrap every PI and PO of the netlist (modifies it in place). *)
val insert : Netlist.t -> t

(** Shift-register integrity of the boundary chain. *)
val verify_shift : t -> bool

(** EXTEST round trip: shift [inputs] (one bit per input cell, chain
    order) into the boundary register, run one captured core cycle with
    [extest] high, and return the values captured in the output cells
    (read by shifting out).  The pins are held at the opposite of each
    driven value during EXTEST to prove the cells, not the pins, drive
    the core. *)
val extest_roundtrip : t -> inputs:bool list -> bool list
