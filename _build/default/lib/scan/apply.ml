open Hft_gate

let stimulus chain ~assignment =
  let nl = chain.Chain.netlist in
  let pis = Netlist.pis nl in
  let cells = chain.Chain.cells in
  let len = List.length cells in
  let value_of node =
    match List.assoc_opt node assignment with Some b -> b | None -> false
  in
  (* Shift-in order: the last cell of the chain receives the first bit
     shifted in, so feed values for cells in reverse chain order. *)
  let load_bits = List.rev_map value_of cells in
  let row ~scan_en ~scan_in ~functional =
    Array.of_list
      (List.map
         (fun p ->
           if p = chain.Chain.scan_en then scan_en
           else if p = chain.Chain.scan_in then scan_in
           else if functional then value_of p
           else false)
         pis)
  in
  let load =
    List.map (fun bit -> row ~scan_en:true ~scan_in:bit ~functional:false)
      load_bits
  in
  let capture = [ row ~scan_en:false ~scan_in:false ~functional:true ] in
  let unload =
    List.init len (fun _ -> row ~scan_en:true ~scan_in:false ~functional:false)
  in
  Array.of_list (load @ capture @ unload)

let apply_and_check chain ~assignment ~fault =
  let nl = chain.Chain.netlist in
  let stim = stimulus chain ~assignment in
  let good = Sim.run_cycles nl ~stimuli:stim in
  let bad = Sim.run_cycles ~faults:[ fault ] nl ~stimuli:stim in
  good <> bad
