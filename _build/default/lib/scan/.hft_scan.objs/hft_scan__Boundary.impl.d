lib/scan/boundary.ml: Array Hft_gate Hft_util List Netlist Printf Sim
