lib/scan/apply.mli: Chain Fault Hft_gate
