lib/scan/apply.ml: Array Chain Hft_gate List Netlist Sim
