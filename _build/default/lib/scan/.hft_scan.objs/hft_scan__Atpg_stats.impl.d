lib/scan/atpg_stats.ml: Hft_gate Hft_util
