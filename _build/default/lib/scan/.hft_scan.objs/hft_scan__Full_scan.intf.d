lib/scan/full_scan.mli: Atpg_stats Chain Fault Hft_gate Netlist
