lib/scan/partial_scan.mli: Expand Fault Hft_gate Hft_rtl Netlist Seq_atpg
