lib/scan/atpg_stats.mli: Hft_gate
