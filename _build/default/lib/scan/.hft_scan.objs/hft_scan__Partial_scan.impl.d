lib/scan/partial_scan.ml: Array Expand Gsgraph Hft_gate Hft_rtl List Seq_atpg
