lib/scan/chain.mli: Hft_gate Netlist
