lib/scan/full_scan.ml: Array Atpg_stats Chain Hft_gate List Netlist Podem
