lib/scan/chain.ml: Array Hft_gate List Netlist Printf Sim
