lib/scan/boundary.mli: Hft_gate Netlist
