open Hft_util

type range = { min_cycles : int option; max_cycles : int option }
type node_report = { reg : int; control : range; observe : range }

let big = max_int / 2

(* Longest acyclic distance from sources in a graph that may contain
   cycles: vertices inside any cycle get [None] (unbounded); others get
   the longest path over the condensation DAG. *)
let longest_or_unbounded g sources =
  let n = Digraph.order g in
  let _, comp = Digraph.scc g in
  let in_cycle = Array.make n false in
  (* A vertex is in a cycle when its SCC has >1 member or a self loop. *)
  let members = Digraph.scc_members g in
  Array.iter
    (fun vs ->
      match vs with
      | [ v ] -> if Digraph.has_self_loop g v then in_cycle.(v) <- true
      | vs -> List.iter (fun v -> in_cycle.(v) <- true) vs)
    members;
  (* Longest path on the condensation, seeded at the sources' comps. *)
  let ncomp = Array.length members in
  let cond = Digraph.create ncomp in
  Digraph.iter_edges
    (fun u v -> if comp.(u) <> comp.(v) then Digraph.add_edge cond comp.(u) comp.(v))
    g;
  let dist = Array.make ncomp (-1) in
  List.iter (fun v -> dist.(comp.(v)) <- 0) sources;
  (match Digraph.topological_sort cond with
   | None -> assert false
   | Some order ->
     List.iter
       (fun c ->
         if dist.(c) >= 0 then
           List.iter
             (fun c' -> if dist.(c) + 1 > dist.(c') then dist.(c') <- dist.(c) + 1)
             (Digraph.succ cond c))
       order);
  (* Unbounded if the vertex is in a cycle reachable from sources, or
     downstream of such a cycle. *)
  let tainted = Array.make ncomp false in
  (match Digraph.topological_sort cond with
   | None -> assert false
   | Some order ->
     List.iter
       (fun c ->
         let cyclic =
           match members.(c) with
           | [ v ] -> Digraph.has_self_loop g v
           | _ -> true
         in
         if cyclic && dist.(c) >= 0 then tainted.(c) <- true;
         if tainted.(c) then
           List.iter
             (fun c' -> if dist.(c') >= 0 then tainted.(c') <- true)
             (Digraph.succ cond c))
       order);
  Array.init n (fun v ->
      let c = comp.(v) in
      if dist.(c) < 0 then None (* unreachable handled by caller's min *)
      else if tainted.(c) then Some None (* reachable, unbounded *)
      else Some (Some dist.(c)))

let analyze ?(scanned = []) s =
  let d = s.Sgraph.datapath in
  let g = s.Sgraph.graph in
  let controllable =
    List.sort_uniq compare (Datapath.input_registers d @ scanned)
  in
  let observable =
    List.sort_uniq compare (Datapath.output_registers d @ scanned)
  in
  let profile = Sgraph.depth_profile s ~scanned in
  (* Scanned registers are direct access points: justification paths
     never need to pass {e into} one (any path through it is dominated
     by starting there), and propagation paths never pass {e out} of
     one.  Cutting those edges also breaks every loop a scanned register
     lies on, which is what bounds the ranges. *)
  let g_ctrl = Digraph.copy g in
  List.iter
    (fun r -> List.iter (fun p -> Digraph.remove_edge g_ctrl p r) (Digraph.pred g_ctrl r))
    scanned;
  let g_obs = Digraph.copy g in
  List.iter
    (fun r -> List.iter (fun q -> Digraph.remove_edge g_obs r q) (Digraph.succ g_obs r))
    scanned;
  let cmax = longest_or_unbounded g_ctrl controllable in
  let omax = longest_or_unbounded (Digraph.transpose g_obs) observable in
  List.map
    (fun (r, cmin, omin) ->
      let mk mind maxd =
        {
          min_cycles = (if mind >= big then None else Some mind);
          max_cycles =
            (match maxd with
             | None -> None (* unreachable: min is None as well *)
             | Some None -> None (* reachable through a loop: unbounded *)
             | Some (Some x) -> Some x);
        }
      in
      { reg = r; control = mk cmin cmax.(r); observe = mk omin omax.(r) })
    profile

let hard_nodes ?(threshold = 2) reports =
  List.filter
    (fun r ->
      let bad rg =
        match (rg.min_cycles, rg.max_cycles) with
        | None, _ -> true
        | Some m, _ when m > threshold -> true
        | _, None -> true
        | Some _, Some _ -> false
      in
      bad r.control || bad r.observe)
    reports

let scan_for_hard_nodes ?(threshold = 2) s =
  let n = Datapath.n_regs s.Sgraph.datapath in
  let rec go scanned =
    let hard = hard_nodes ~threshold (analyze ~scanned s) in
    if hard = [] || List.length scanned >= n then List.sort compare scanned
    else begin
      (* Try each unscanned register; keep the one minimising the
         remaining hard-node count. *)
      let best = ref None in
      for r = 0 to n - 1 do
        if not (List.mem r scanned) then begin
          let h =
            List.length (hard_nodes ~threshold (analyze ~scanned:(r :: scanned) s))
          in
          match !best with
          | Some (_, hb) when hb <= h -> ()
          | _ -> best := Some (r, h)
        end
      done;
      match !best with
      | None -> List.sort compare scanned
      | Some (r, h) ->
        if h >= List.length hard then
          (* No single scan helps; scan a hard node directly to
             guarantee progress. *)
          (match hard with
           | { reg; _ } :: _ when not (List.mem reg scanned) ->
             go (reg :: scanned)
           | _ -> List.sort compare scanned)
        else go (r :: scanned)
    end
  in
  go []

let pp_report d reports =
  let show = function
    | None -> "inf"
    | Some x -> string_of_int x
  in
  let rows =
    List.map
      (fun r ->
        [ d.Datapath.regs.(r.reg).Datapath.r_name;
          show r.control.min_cycles; show r.control.max_cycles;
          show r.observe.min_cycles; show r.observe.max_cycles ])
      reports
  in
  Pretty.render ~header:[ "reg"; "c-min"; "c-max"; "o-min"; "o-max" ] rows
