(** RTL testability analysis (De Micheli-style ranges, survey §4.1).

    For every register we report how many clock cycles are needed to
    {e control} it (justify an arbitrary value from primary inputs) and
    to {e observe} it (propagate its content to a primary output),
    as \[min, max\] ranges.  A register inside a data-path loop has an
    unbounded maximum (the loop can recirculate indefinitely), which is
    exactly what makes it a hard node for sequential ATPG. *)

type range = {
  min_cycles : int option;  (** [None] = impossible *)
  max_cycles : int option;  (** [None] = unbounded (register in a loop) *)
}

type node_report = {
  reg : int;
  control : range;
  observe : range;
}

val analyze : ?scanned:int list -> Sgraph.t -> node_report list

(** Hard nodes: control or observe minimum above [threshold], impossible,
    or unbounded maximum. *)
val hard_nodes : ?threshold:int -> node_report list -> node_report list

(** RTL-guided partial-scan selection: repeatedly scan the register
    whose scanning most reduces the hard-node count, until none remain
    (or no progress).  Returns the scan set — typically smaller than a
    gate-level selection because RTL connectivity is exact
    (survey §4.1). *)
val scan_for_hard_nodes : ?threshold:int -> Sgraph.t -> int list

val pp_report : Datapath.t -> node_report list -> string
