open Hft_util

type result = {
  k : int;
  test_points : int list;
  loops_covered : int;
  loops_total : int;
}

let big = max_int / 2

let loop_list s = Sgraph.nontrivial_loops s @ List.map (fun r -> [ r ]) (Sgraph.self_loop_regs s)

let distances s ~test_points =
  let d = s.Sgraph.datapath in
  let g = s.Sgraph.graph in
  let controllable =
    List.sort_uniq compare (Datapath.input_registers d @ test_points)
  in
  let observable =
    List.sort_uniq compare (Datapath.output_registers d @ test_points)
  in
  let bfs graph sources =
    let dist = Array.make (Digraph.order graph) big in
    let q = Queue.create () in
    List.iter
      (fun v ->
        if dist.(v) = big then begin
          dist.(v) <- 0;
          Queue.add v q
        end)
      sources;
    while not (Queue.is_empty q) do
      let v = Queue.take q in
      List.iter
        (fun w ->
          if dist.(w) = big then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end)
        (Digraph.succ graph v)
    done;
    dist
  in
  (bfs g controllable, bfs (Digraph.transpose g) observable)

let loop_covered cdist odist ~k loop =
  List.exists (fun r -> cdist.(r) <= k) loop
  && List.exists (fun r -> odist.(r) <= k) loop

let covered s ~k ~test_points =
  let cdist, odist = distances s ~test_points in
  List.for_all (loop_covered cdist odist ~k) (loop_list s)

let insert s ~k =
  let loops = loop_list s in
  let n = Datapath.n_regs s.Sgraph.datapath in
  let rec go points =
    let cdist, odist = distances s ~test_points:points in
    let uncovered =
      List.filter (fun l -> not (loop_covered cdist odist ~k l)) loops
    in
    if uncovered = [] then points
    else begin
      (* Greedy: the candidate register covering the most uncovered
         loops when granted a test point. *)
      let best = ref (-1) and best_gain = ref (-1) in
      for r = 0 to n - 1 do
        if not (List.mem r points) then begin
          let cdist', odist' = distances s ~test_points:(r :: points) in
          let gain =
            List.length
              (List.filter (loop_covered cdist' odist' ~k) uncovered)
          in
          if gain > !best_gain then begin
            best_gain := gain;
            best := r
          end
        end
      done;
      if !best < 0 || !best_gain <= 0 then points (* cannot improve *)
      else go (!best :: points)
    end
  in
  let points = go [] in
  let cdist, odist = distances s ~test_points:points in
  {
    k;
    test_points = List.sort compare points;
    loops_covered = List.length (List.filter (loop_covered cdist odist ~k) loops);
    loops_total = List.length loops;
  }

let sweep s ~max_k = List.init (max_k + 1) (fun k -> insert s ~k)
