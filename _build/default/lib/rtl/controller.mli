(** Moore-machine controllers decoded from a data path's transfer table.

    One state per control step (plus the initial load state 0).  Each
    state drives a {e control vector}: one select field per multiplexed
    resource and one enable bit per register.  The controller is the
    substrate of the controller-DFT analysis of Dey–Gangaram–Potkonjak
    (survey §3.5): sequential ATPG sees only the vectors listed here, so
    value combinations never produced become hard conflicts. *)

type signal =
  | Reg_enable of int          (** register id *)
  | Fu_select of int * int     (** (fu id, port): mux select field *)
  | Reg_select of int          (** register-input mux select field *)

(** A control vector: value of every signal in one state.  Select fields
    are small integers (mux leg index); enables are 0/1. *)
type vector = (signal * int) list

type t = {
  n_states : int;              (** = n_steps + 1, state 0 loads inputs *)
  signals : signal list;       (** every controlled signal, fixed order *)
  vectors : vector array;      (** one per state *)
  test_vectors : vector list;  (** extra vectors reachable in test mode *)
}

(** Decode a controller from the data path. *)
val of_datapath : Datapath.t -> t

(** Value of [signal] in [vector] (0 when absent: inactive default). *)
val value : vector -> signal -> int

(** All (signal, value) pairs that appear in no functional vector —
    combinations sequential ATPG cannot justify without test vectors. *)
val unreachable_values : t -> (signal * int) list

(** Pairwise implications across functional+test vectors: [(s1,v1)]
    implies [(s2,v2)] when every vector giving [s1 = v1] also gives
    [s2 = v2] (and [s1 = v1] occurs at least once).  Trivial
    self-implications are excluded.  These implications are the ATPG
    conflict source the controller-DFT technique removes. *)
val implications : t -> ((signal * int) * (signal * int)) list

(** [add_test_vectors c vs] extends the test-mode vector set. *)
val add_test_vectors : t -> vector list -> t

(** Number of distinct full control vectors (functional + test). *)
val n_vectors : t -> int

val signal_to_string : signal -> string
