lib/rtl/sgraph.mli: Datapath Hft_util
