lib/rtl/klevel.ml: Array Datapath Digraph Hft_util List Queue Sgraph
