lib/rtl/controller.ml: Array Datapath List Printf
