lib/rtl/controller.mli: Datapath
