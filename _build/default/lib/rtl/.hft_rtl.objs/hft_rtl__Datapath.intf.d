lib/rtl/datapath.mli: Hft_cdfg
