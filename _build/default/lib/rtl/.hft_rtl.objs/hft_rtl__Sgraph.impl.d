lib/rtl/sgraph.ml: Array Datapath Digraph Hft_util List Mfvs Queue
