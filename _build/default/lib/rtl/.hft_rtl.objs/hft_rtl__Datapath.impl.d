lib/rtl/datapath.ml: Array Buffer Hashtbl Hft_cdfg List Printf String
