lib/rtl/tscan.mli: Sgraph
