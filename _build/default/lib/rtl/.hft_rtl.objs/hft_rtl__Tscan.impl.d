lib/rtl/tscan.ml: Area Datapath List Sgraph
