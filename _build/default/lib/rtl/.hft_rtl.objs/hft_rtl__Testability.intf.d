lib/rtl/testability.mli: Datapath Sgraph
