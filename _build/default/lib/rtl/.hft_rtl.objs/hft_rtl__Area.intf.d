lib/rtl/area.mli: Datapath
