lib/rtl/area.ml: Array Datapath Hft_cdfg
