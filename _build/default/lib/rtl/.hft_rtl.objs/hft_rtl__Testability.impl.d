lib/rtl/testability.ml: Array Datapath Digraph Hft_util List Pretty Sgraph
