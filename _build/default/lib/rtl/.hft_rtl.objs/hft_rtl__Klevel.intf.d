lib/rtl/klevel.mli: Sgraph
