(** Non-scan DFT by k-level loop access (Dey–Potkonjak ICCAD'94,
    survey §4.2).

    Instead of placing a scan register {e on} every data-path loop
    (k = 0 access), it suffices for high test efficiency that every loop
    be {e k-level controllable and observable}: reachable from a test
    point within [k] register levels in both directions.  Test points
    are implemented with register-file slots and constants on functional
    units, so they are cheaper than scan conversions and several loops
    can share one. *)

type result = {
  k : int;
  test_points : int list;       (** registers granted a test point *)
  loops_covered : int;
  loops_total : int;
}

(** Is every non-self loop within [k] hops of a controllable point
    (input registers + test points) and of an observable point (output
    registers + test points)? *)
val covered : Sgraph.t -> k:int -> test_points:int list -> bool

(** Greedy test-point insertion until every loop is k-level accessible.
    [k = 0] reproduces the classical "access a register in every loop"
    requirement for comparison. *)
val insert : Sgraph.t -> k:int -> result

(** Test points needed at each access level, versus the k = 0 (scan
    MFVS) baseline: the trade-off curve of the technique. *)
val sweep : Sgraph.t -> max_k:int -> result list
