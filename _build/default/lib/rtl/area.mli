(** Unit-cost area model.

    All surveyed comparisons report {e relative} overheads, so a
    gate-equivalent cost table is sufficient (DESIGN.md §2).  Costs are
    per bit except [fu_cost] which is per unit at the data-path width. *)

type cost_table = {
  reg_bit : float;            (** plain register, per bit *)
  scan_bit : float;           (** scan register, per bit *)
  tscan_bit : float;          (** transparent scan, per bit *)
  tpgr_bit : float;           (** LFSR-configurable register, per bit *)
  sr_bit : float;             (** MISR-configurable register, per bit *)
  bilbo_bit : float;          (** BILBO (TPGR or SR), per bit *)
  cbilbo_bit : float;         (** concurrent BILBO, per bit *)
  mux_leg_bit : float;        (** one extra mux input, per bit *)
  alu_bit : float;
  mul_bit : float;            (** per bit² (array multiplier) *)
  cmp_bit : float;
  logic_bit : float;
  shift_bit : float;
  test_point : float;         (** one k-level test point (register file
                                  slot + constant + routing) *)
}

(** Costs in NAND-gate equivalents, calibrated to textbook cell counts
    (DFF ≈ 6, scan DFF ≈ 8, BILBO bit ≈ 13, CBILBO bit ≈ 22...). *)
val default : cost_table

(** Area of a data path under the table (registers at their annotated
    DFT kinds, FUs, mux legs, behavioural test points excluded). *)
val datapath_area : ?table:cost_table -> Datapath.t -> float

(** Area of the registers only — the quantity BIST papers report
    overhead against. *)
val register_area : ?table:cost_table -> Datapath.t -> float

(** [overhead ~base d] = (area(d) - base) / base. *)
val overhead : ?table:cost_table -> base:float -> Datapath.t -> float
