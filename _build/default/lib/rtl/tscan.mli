(** Partial scan with transparent scan cells on non-register nodes
    (Steensma–Catthoor–De Man ITC'91; Vishakantaiah et al.; survey §4.1).

    A data-path loop can be broken either by converting one of its
    {e registers} to a scan register, or by placing a {e transparent
    scan} cell on a functional unit's output — a register that is
    bypassed in normal mode, so it costs no functional cycle, and one
    such cell cuts {e every} loop routed through that unit.  Mixing the
    two typically needs far fewer cells than register scan alone. *)

type selection = {
  scan_regs : int list;   (** registers converted to scan *)
  tscan_fus : int list;   (** units given a transparent output cell *)
}

(** Every non-self S-graph loop contains a scanned register or crosses a
    transparent-scanned unit? *)
val covered : Sgraph.t -> selection -> bool

(** Greedy cover: at each step take the register or unit breaking the
    most uncovered loops (ties: units first — one cell, many loops). *)
val select : Sgraph.t -> selection

(** Cells used by a selection (scan registers + transparent cells). *)
val n_cells : selection -> int

(** Annotate the data path (register kinds; transparent cells are added
    as [Transparent_scan]-kind bookkeeping on the unit's output
    registers' metadata is not possible, so the count is returned for
    area accounting instead). *)
val area_delta : width:int -> selection -> float
