type signal =
  | Reg_enable of int
  | Fu_select of int * int
  | Reg_select of int

type vector = (signal * int) list

type t = {
  n_states : int;
  signals : signal list;
  vectors : vector array;
  test_vectors : vector list;
}

let value vec s = match List.assoc_opt s vec with Some v -> v | None -> 0

(* Mux leg index of a source at an FU port / register input; legs are
   numbered by the canonical source order the datapath reports. *)
let leg_index sources s =
  let rec go i = function
    | [] -> invalid_arg "Controller: source not in mux fan-in"
    | x :: tl -> if x = s then i else go (i + 1) tl
  in
  go 0 sources

let reg_write_sources d r =
  List.filter_map
    (fun (_, m) ->
      match m with
      | Datapath.Move { src; dst } when dst = r -> Some (`S src)
      | Datapath.Exec e when e.dst = r -> Some (`F e.fu)
      | Datapath.Exec _ | Datapath.Move _ -> None)
    d.Datapath.transfers
  |> List.sort_uniq compare

let of_datapath d =
  let signals =
    let regs = Array.to_list d.Datapath.regs in
    let enables = List.map (fun r -> Reg_enable r.Datapath.r_id) regs in
    let reg_sels =
      List.filter_map
        (fun r ->
          if List.length (reg_write_sources d r.Datapath.r_id) > 1 then
            Some (Reg_select r.Datapath.r_id)
          else None)
        regs
    in
    let fu_sels =
      Array.to_list d.Datapath.fus
      |> List.concat_map (fun f ->
             let ports = Datapath.fu_port_sources d f.Datapath.f_id in
             List.filter_map
               (fun p ->
                 if List.length ports.(p) > 1 then
                   Some (Fu_select (f.Datapath.f_id, p))
                 else None)
               [ 0; 1 ])
    in
    enables @ reg_sels @ fu_sels
  in
  let vectors =
    Array.init (d.Datapath.n_steps + 1) (fun step ->
        let vec = ref [] in
        let put s v =
          if List.assoc_opt s !vec = None then vec := (s, v) :: !vec
        in
        List.iter
          (fun (s, m) ->
            if s = step then
              match m with
              | Datapath.Exec e ->
                put (Reg_enable e.dst) 1;
                let srcs = reg_write_sources d e.dst in
                if List.length srcs > 1 then
                  put (Reg_select e.dst)
                    (leg_index srcs (`F e.fu));
                let ports = Datapath.fu_port_sources d e.fu in
                Array.iteri
                  (fun p src ->
                    if List.length ports.(p) > 1 then
                      put (Fu_select (e.fu, p)) (leg_index ports.(p) src))
                  e.srcs
              | Datapath.Move { src; dst } ->
                put (Reg_enable dst) 1;
                let srcs = reg_write_sources d dst in
                if List.length srcs > 1 then
                  put (Reg_select dst) (leg_index srcs (`S src)))
          d.Datapath.transfers;
        !vec)
  in
  { n_states = d.Datapath.n_steps + 1; signals; vectors; test_vectors = [] }

let all_vectors c = Array.to_list c.vectors @ c.test_vectors

(* Domain of a signal: enables are 0/1; select fields range over the
   values seen plus 0. *)
let domain c s =
  match s with
  | Reg_enable _ -> [ 0; 1 ]
  | Reg_select _ | Fu_select _ ->
    List.map (fun v -> value v s) (all_vectors c)
    |> List.cons 0 |> List.sort_uniq compare

let unreachable_values c =
  let vs = all_vectors c in
  List.concat_map
    (fun s ->
      List.filter_map
        (fun dv ->
          if List.exists (fun vec -> value vec s = dv) vs then None
          else Some (s, dv))
        (domain c s))
    c.signals

let implications c =
  let vs = all_vectors c in
  let atoms =
    List.concat_map (fun s -> List.map (fun v -> (s, v)) (domain c s)) c.signals
  in
  List.concat_map
    (fun (s1, v1) ->
      let support = List.filter (fun vec -> value vec s1 = v1) vs in
      if support = [] then []
      else
        List.filter_map
          (fun (s2, v2) ->
            if s1 = s2 then None
            else if List.for_all (fun vec -> value vec s2 = v2) support then
              Some ((s1, v1), (s2, v2))
            else None)
          atoms)
    atoms

let add_test_vectors c vs = { c with test_vectors = c.test_vectors @ vs }

let n_vectors c =
  let canon vec =
    List.map (fun s -> value vec s) c.signals
  in
  List.map canon (all_vectors c) |> List.sort_uniq compare |> List.length

let signal_to_string = function
  | Reg_enable r -> Printf.sprintf "en_r%d" r
  | Fu_select (f, p) -> Printf.sprintf "sel_f%d_p%d" f p
  | Reg_select r -> Printf.sprintf "sel_r%d" r
