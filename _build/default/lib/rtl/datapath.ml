type reg_kind =
  | Plain
  | Scan
  | Transparent_scan
  | Tpgr
  | Sr
  | Bilbo
  | Cbilbo

type reg = {
  r_id : int;
  r_name : string;
  mutable r_kind : reg_kind;
  r_vars : int list;
}

type fu = {
  f_id : int;
  f_name : string;
  f_class : Hft_cdfg.Op.fu_class;
  f_ops : int list;
}

type src = Sreg of int | Sport of int | Sconst of int

type micro =
  | Exec of { op : int; kind : Hft_cdfg.Op.kind; fu : int; srcs : src array; dst : int }
  | Move of { src : src; dst : int }

type t = {
  name : string;
  width : int;
  regs : reg array;
  fus : fu array;
  inports : string array;
  outports : (string * int) array;
  transfers : (int * micro) list;
  n_steps : int;
}

let n_regs d = Array.length d.regs
let n_fus d = Array.length d.fus

let fu_port_sources d f =
  let ports = Array.make 2 [] in
  List.iter
    (fun (_, m) ->
      match m with
      | Exec e when e.fu = f ->
        Array.iteri
          (fun p s -> if not (List.mem s ports.(p)) then ports.(p) <- s :: ports.(p))
          e.srcs
      | Exec _ | Move _ -> ())
    d.transfers;
  Array.map List.rev ports

let fu_input_regs d f =
  Array.to_list (fu_port_sources d f)
  |> List.concat
  |> List.filter_map (function Sreg r -> Some r | Sport _ | Sconst _ -> None)
  |> List.sort_uniq compare

let fu_output_regs d f =
  List.filter_map
    (fun (_, m) ->
      match m with
      | Exec e when e.fu = f -> Some e.dst
      | Exec _ | Move _ -> None)
    d.transfers
  |> List.sort_uniq compare

let reg_sources d r =
  List.filter_map
    (fun (_, m) ->
      match m with
      | Move { src; dst } when dst = r -> Some src
      | Exec _ | Move _ -> None)
    d.transfers
  |> List.sort_uniq compare

let reg_of_var d v =
  let found = ref None in
  Array.iter (fun r -> if List.mem v r.r_vars then found := Some r.r_id) d.regs;
  !found

let fu_of_op d o =
  let found = ref None in
  Array.iter (fun f -> if List.mem o f.f_ops then found := Some f.f_id) d.fus;
  !found

let input_registers d =
  (* Registers loadable from a primary input port, via moves or as a
     direct Exec source would not count: input register = register with
     a port among its write sources. *)
  Array.to_list d.regs
  |> List.filter_map (fun r ->
         let from_port =
           List.exists
             (fun (_, m) ->
               match m with
               | Move { src = Sport _; dst } -> dst = r.r_id
               | Exec _ | Move _ -> false)
             d.transfers
         in
         if from_port then Some r.r_id else None)

let output_registers d =
  Array.to_list d.outports |> List.map snd |> List.sort_uniq compare

let io_registers d =
  List.sort_uniq compare (input_registers d @ output_registers d)

let self_adjacent_regs d =
  let n = n_fus d in
  let acc = ref [] in
  for f = 0 to n - 1 do
    let ins = fu_input_regs d f and outs = fu_output_regs d f in
    List.iter (fun r -> if List.mem r ins && not (List.mem r !acc) then acc := r :: !acc) outs
  done;
  List.sort compare !acc

let mux_legs d =
  let count sources = max 0 (List.length sources - 1) in
  let fu_legs =
    Array.to_list d.fus
    |> List.map (fun f ->
           Array.to_list (fu_port_sources d f.f_id)
           |> List.map count |> List.fold_left ( + ) 0)
    |> List.fold_left ( + ) 0
  in
  let reg_write_sources r =
    (* All distinct sources writing register r: moves and FU outputs. *)
    List.filter_map
      (fun (_, m) ->
        match m with
        | Move { src; dst } when dst = r -> Some (`S src)
        | Exec e when e.dst = r -> Some (`F e.fu)
        | Exec _ | Move _ -> None)
      d.transfers
    |> List.sort_uniq compare
  in
  let reg_legs =
    Array.to_list d.regs
    |> List.map (fun r -> count (reg_write_sources r.r_id))
    |> List.fold_left ( + ) 0
  in
  fu_legs + reg_legs

let validate d =
  let check_reg r ctx =
    if r < 0 || r >= n_regs d then
      invalid_arg (Printf.sprintf "Datapath.validate: bad register in %s" ctx)
  in
  let check_src s ctx =
    match s with
    | Sreg r -> check_reg r ctx
    | Sport p ->
      if p < 0 || p >= Array.length d.inports then
        invalid_arg (Printf.sprintf "Datapath.validate: bad port in %s" ctx)
    | Sconst _ -> ()
  in
  Array.iter (fun (_, r) -> check_reg r "outport") d.outports;
  let writes = Hashtbl.create 16 in
  let fu_busy = Hashtbl.create 16 in
  List.iter
    (fun (step, m) ->
      if step < 0 || step > d.n_steps then
        invalid_arg "Datapath.validate: step out of range";
      match m with
      | Exec e ->
        if e.fu < 0 || e.fu >= n_fus d then
          invalid_arg "Datapath.validate: bad fu";
        check_reg e.dst "exec dst";
        Array.iter (fun s -> check_src s "exec src") e.srcs;
        if Hashtbl.mem fu_busy (step, e.fu) then
          invalid_arg
            (Printf.sprintf "Datapath.validate: fu %d double-booked at step %d"
               e.fu step);
        Hashtbl.add fu_busy (step, e.fu) ();
        if Hashtbl.mem writes (step, e.dst) then
          invalid_arg
            (Printf.sprintf
               "Datapath.validate: register %d written twice at step %d" e.dst
               step);
        Hashtbl.add writes (step, e.dst) ()
      | Move { src; dst } ->
        check_src src "move src";
        check_reg dst "move dst";
        if Hashtbl.mem writes (step, dst) then
          invalid_arg
            (Printf.sprintf
               "Datapath.validate: register %d written twice at step %d" dst
               step);
        Hashtbl.add writes (step, dst) ())
    d.transfers

let simulate d ~inputs ?(state = []) () =
  let regs = Array.make (n_regs d) 0 in
  List.iter
    (fun (name, v) ->
      Array.iter (fun r -> if r.r_name = name then regs.(r.r_id) <- v) d.regs)
    state;
  let port_val p =
    let name = d.inports.(p) in
    match List.assoc_opt name inputs with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Datapath.simulate: missing input %s" name)
  in
  let read = function
    | Sreg r -> regs.(r)
    | Sport p -> port_val p
    | Sconst c -> c
  in
  for step = 0 to d.n_steps do
    (* All reads happen before the end-of-step writes (edge-triggered). *)
    let pending =
      List.filter_map
        (fun (s, m) ->
          if s <> step then None
          else
            match m with
            | Exec e ->
              let args = Array.to_list (Array.map read e.srcs) in
              Some (e.dst, Hft_cdfg.Op.eval ~width:d.width e.kind args)
            | Move { src; dst } -> Some (dst, read src))
        d.transfers
    in
    List.iter (fun (dst, v) -> regs.(dst) <- v) pending
  done;
  let outs =
    Array.to_list d.outports |> List.map (fun (name, r) -> (name, regs.(r)))
  in
  (outs, Array.to_list (Array.mapi (fun i v -> (i, v)) regs))

let reg_kind_to_string = function
  | Plain -> "reg"
  | Scan -> "scan"
  | Transparent_scan -> "tscan"
  | Tpgr -> "tpgr"
  | Sr -> "sr"
  | Bilbo -> "bilbo"
  | Cbilbo -> "cbilbo"

let src_to_string d = function
  | Sreg r -> d.regs.(r).r_name
  | Sport p -> "@" ^ d.inports.(p)
  | Sconst c -> string_of_int c

let pp d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "datapath %s: %d regs, %d fus, %d steps\n" d.name
       (n_regs d) (n_fus d) d.n_steps);
  Array.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [%s] holds {%s}\n" r.r_name
           (reg_kind_to_string r.r_kind)
           (String.concat "," (List.map string_of_int r.r_vars))))
    d.regs;
  Array.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  %s (%s) ops {%s}\n" f.f_name
           (Hft_cdfg.Op.fu_class_to_string f.f_class)
           (String.concat "," (List.map string_of_int f.f_ops))))
    d.fus;
  List.iter
    (fun (step, m) ->
      match m with
      | Exec e ->
        Buffer.add_string buf
          (Printf.sprintf "  step %d: %s <- %s(%s)\n" step
             d.regs.(e.dst).r_name d.fus.(e.fu).f_name
             (String.concat ", "
                (Array.to_list (Array.map (src_to_string d) e.srcs))))
      | Move { src; dst } ->
        Buffer.add_string buf
          (Printf.sprintf "  step %d: %s <- %s\n" step d.regs.(dst).r_name
             (src_to_string d src)))
    (List.sort compare d.transfers);
  Buffer.contents buf

let to_dot d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=TB;\n" d.name);
  Array.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  r%d [label=\"%s\\n%s\" shape=box];\n" r.r_id
           r.r_name (reg_kind_to_string r.r_kind)))
    d.regs;
  Array.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  f%d [label=\"%s\" shape=trapezium];\n" f.f_id f.f_name))
    d.fus;
  Array.iter
    (fun f ->
      List.iter
        (fun r -> Buffer.add_string buf (Printf.sprintf "  r%d -> f%d;\n" r f.f_id))
        (fu_input_regs d f.f_id);
      List.iter
        (fun r -> Buffer.add_string buf (Printf.sprintf "  f%d -> r%d;\n" f.f_id r))
        (fu_output_regs d f.f_id))
    d.fus;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
