type selection = { scan_regs : int list; tscan_fus : int list }

(* Loops as edge-labelled paths: consecutive register pairs with the
   set of units that could carry the edge. *)
let labelled_loops s =
  let d = s.Sgraph.datapath in
  let fus_between r1 r2 =
    List.filter
      (fun f ->
        List.mem r1 (Datapath.fu_input_regs d f)
        && List.mem r2 (Datapath.fu_output_regs d f))
      (List.init (Datapath.n_fus d) (fun f -> f))
  in
  List.map
    (fun loop ->
      let rec edges = function
        | [] -> []
        | [ last ] -> [ (last, List.hd loop) ]
        | a :: (b :: _ as tl) -> (a, b) :: edges tl
      in
      let es = edges loop in
      (loop, List.map (fun (a, b) -> ((a, b), fus_between a b)) es))
    (Sgraph.nontrivial_loops s)

let loop_covered sel (regs, edges) =
  List.exists (fun r -> List.mem r sel.scan_regs) regs
  || List.exists
       (fun (_, fus) -> List.exists (fun f -> List.mem f sel.tscan_fus) fus)
       edges

let covered s sel = List.for_all (loop_covered sel) (labelled_loops s)

let select s =
  let d = s.Sgraph.datapath in
  let loops = labelled_loops s in
  let rec go sel uncovered =
    if uncovered = [] then sel
    else begin
      let gain_reg r =
        List.length
          (List.filter (fun (regs, _) -> List.mem r regs) uncovered)
      in
      let gain_fu f =
        List.length
          (List.filter
             (fun (_, edges) ->
               List.exists (fun (_, fus) -> List.mem f fus) edges)
             uncovered)
      in
      let best_fu =
        List.fold_left
          (fun acc f ->
            match acc with
            | Some (_, g) when g >= gain_fu f -> acc
            | _ -> if gain_fu f > 0 then Some (f, gain_fu f) else acc)
          None
          (List.init (Datapath.n_fus d) (fun f -> f))
      in
      let best_reg =
        List.fold_left
          (fun acc r ->
            match acc with
            | Some (_, g) when g >= gain_reg r -> acc
            | _ -> if gain_reg r > 0 then Some (r, gain_reg r) else acc)
          None
          (List.init (Datapath.n_regs d) (fun r -> r))
      in
      let sel' =
        match (best_fu, best_reg) with
        | Some (f, gf), Some (_, gr) when gf >= gr ->
          { sel with tscan_fus = f :: sel.tscan_fus }
        | _, Some (r, _) -> { sel with scan_regs = r :: sel.scan_regs }
        | Some (f, _), None -> { sel with tscan_fus = f :: sel.tscan_fus }
        | None, None -> sel (* nothing can cover the rest *)
      in
      if sel' = sel then sel
      else go sel' (List.filter (fun l -> not (loop_covered sel' l)) uncovered)
    end
  in
  let sel = go { scan_regs = []; tscan_fus = [] } loops in
  { scan_regs = List.sort compare sel.scan_regs;
    tscan_fus = List.sort compare sel.tscan_fus }

let n_cells sel = List.length sel.scan_regs + List.length sel.tscan_fus

let area_delta ~width sel =
  let t = Area.default in
  let w = float_of_int width in
  (* Scan conversion: incremental over a plain register; transparent
     cell: a full extra (bypassable) register. *)
  (float_of_int (List.length sel.scan_regs)
   *. (t.Area.scan_bit -. t.Area.reg_bit) *. w)
  +. (float_of_int (List.length sel.tscan_fus) *. t.Area.tscan_bit *. w)
