open Hft_util

type t = { graph : Digraph.t; datapath : Datapath.t }

let of_datapath d =
  let g = Digraph.create (Datapath.n_regs d) in
  (* Through a functional unit: any register on some input port mux can
     reach any register the unit's output can be latched into. *)
  Array.iter
    (fun f ->
      let ins = Datapath.fu_input_regs d f.Datapath.f_id in
      let outs = Datapath.fu_output_regs d f.Datapath.f_id in
      List.iter (fun i -> List.iter (fun o -> Digraph.add_edge g i o) outs) ins)
    d.Datapath.fus;
  (* Direct register-to-register moves. *)
  Array.iter
    (fun r ->
      List.iter
        (function
          | Datapath.Sreg src -> Digraph.add_edge g src r.Datapath.r_id
          | Datapath.Sport _ | Datapath.Sconst _ -> ())
        (Datapath.reg_sources d r.Datapath.r_id))
    d.Datapath.regs;
  { graph = g; datapath = d }

let loops ?(max_len = 16) ?(max_count = 4096) s =
  Digraph.cycles s.graph ~max_len ~max_count

let nontrivial_loops ?max_len ?max_count s =
  List.filter (fun l -> List.length l > 1) (loops ?max_len ?max_count s)

let self_loop_regs s = Digraph.self_loops s.graph

let is_loop_free ?(ignore_self_loops = true) s ~scanned =
  Mfvs.is_feedback_set ~ignore_self_loops s.graph scanned

let scan_selection ?(ignore_self_loops = true) s =
  Mfvs.greedy ~ignore_self_loops s.graph

(* Depth analysis: controllable sources are input registers and scanned
   registers; observable sinks are output registers and scanned
   registers.  Distances are counted in register-to-register hops with
   scanned registers acting as cut points (paths do not pass through
   them). *)
let big = max_int / 2

let cut_graph s ~scanned =
  let g = Digraph.copy s.graph in
  (* Scanned registers still source/sink edges but do not transmit:
     model by splitting — simpler: compute distances on the original
     graph but forbid relaxation through scanned vertices. *)
  ignore scanned;
  g

let multi_source_dist g ~through_ok sources =
  let n = Digraph.order g in
  let dist = Array.make n big in
  let q = Queue.create () in
  List.iter
    (fun v ->
      if dist.(v) = big then begin
        dist.(v) <- 0;
        Queue.add v q
      end)
    sources;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    if dist.(v) = 0 || through_ok v then
      List.iter
        (fun w ->
          if dist.(w) = big then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end)
        (Digraph.succ g v)
  done;
  dist

let depth_profile s ~scanned =
  let d = s.datapath in
  let g = cut_graph s ~scanned in
  let controllable =
    List.sort_uniq compare (Datapath.input_registers d @ scanned)
  in
  let observable =
    List.sort_uniq compare (Datapath.output_registers d @ scanned)
  in
  let through_ok v = not (List.mem v scanned) in
  let cdist = multi_source_dist g ~through_ok controllable in
  let odist =
    multi_source_dist (Digraph.transpose g) ~through_ok observable
  in
  List.init (Datapath.n_regs d) (fun r -> (r, cdist.(r), odist.(r)))

let sequential_depth s ~scanned =
  let d = s.datapath in
  let profile = depth_profile s ~scanned in
  let outs = Datapath.output_registers d in
  let depths =
    List.filter_map
      (fun (r, c, _) -> if List.mem r outs then Some c else None)
      profile
  in
  match depths with
  | [] -> Some 0
  | _ ->
    let m = List.fold_left max 0 depths in
    if m >= big then None else Some m
