(** Register-adjacency S-graphs of a data path.

    Nodes are registers; there is an edge [r1 -> r2] when a strictly
    combinational path (through muxes and a functional unit, or a direct
    move path) leads from [r1]'s output to [r2]'s input.  Cycle structure
    and sequential depth of this graph are the empirical predictors of
    sequential-ATPG cost the survey builds on (§3.1): test generation
    complexity grows exponentially with loop length and linearly with
    depth. *)

type t = {
  graph : Hft_util.Digraph.t;  (** vertex = register id *)
  datapath : Datapath.t;
}

(** Structural S-graph: an edge exists when the mux fan-ins allow the
    connection in {e some} control configuration. *)
val of_datapath : Datapath.t -> t

(** Loops of the S-graph (bounded enumeration), each a register list.
    Self-loops are length-1 entries. *)
val loops : ?max_len:int -> ?max_count:int -> t -> int list list

(** Loops other than self-loops. *)
val nontrivial_loops : ?max_len:int -> ?max_count:int -> t -> int list list

val self_loop_regs : t -> int list

(** [is_loop_free ~ignore_self_loops s ~scanned] — acyclic once the
    scanned registers are removed? *)
val is_loop_free : ?ignore_self_loops:bool -> t -> scanned:int list -> bool

(** Scan registers needed to break all loops (greedy MFVS, self-loops
    tolerated by default as in gate-level partial scan). *)
val scan_selection : ?ignore_self_loops:bool -> t -> int list

(** Sequential depth: the longest shortest-path distance from any input
    register to any output register once scanned registers are treated
    as pseudo-primary I/O; [None] when some output register is
    unreachable. *)
val sequential_depth : t -> scanned:int list -> int option

(** Maximum over registers of the distance {e from} the nearest
    controllable register (input or scanned) and {e to} the nearest
    observable one — the per-register depth profile used by testable
    register assignment. *)
val depth_profile : t -> scanned:int list -> (int * int * int) list
(** [(reg, control_depth, observe_depth)]; [max_int/2] when unreachable. *)
