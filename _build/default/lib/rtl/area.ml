type cost_table = {
  reg_bit : float;
  scan_bit : float;
  tscan_bit : float;
  tpgr_bit : float;
  sr_bit : float;
  bilbo_bit : float;
  cbilbo_bit : float;
  mux_leg_bit : float;
  alu_bit : float;
  mul_bit : float;
  cmp_bit : float;
  logic_bit : float;
  shift_bit : float;
  test_point : float;
}

let default = {
  reg_bit = 6.0;
  scan_bit = 8.0;
  tscan_bit = 9.0;
  tpgr_bit = 11.0;
  sr_bit = 11.0;
  bilbo_bit = 13.0;
  cbilbo_bit = 22.0;
  mux_leg_bit = 3.0;
  alu_bit = 12.0;
  mul_bit = 9.0;
  cmp_bit = 5.0;
  logic_bit = 2.0;
  shift_bit = 4.0;
  test_point = 40.0;
}

let reg_bit_cost table = function
  | Datapath.Plain -> table.reg_bit
  | Datapath.Scan -> table.scan_bit
  | Datapath.Transparent_scan -> table.tscan_bit
  | Datapath.Tpgr -> table.tpgr_bit
  | Datapath.Sr -> table.sr_bit
  | Datapath.Bilbo -> table.bilbo_bit
  | Datapath.Cbilbo -> table.cbilbo_bit

let fu_cost table width = function
  | Hft_cdfg.Op.Alu -> table.alu_bit *. float_of_int width
  | Hft_cdfg.Op.Multiplier ->
    table.mul_bit *. float_of_int (width * width)
  | Hft_cdfg.Op.Comparator -> table.cmp_bit *. float_of_int width
  | Hft_cdfg.Op.Logic_unit -> table.logic_bit *. float_of_int width
  | Hft_cdfg.Op.Shifter -> table.shift_bit *. float_of_int width

let register_area ?(table = default) d =
  let w = float_of_int d.Datapath.width in
  Array.fold_left
    (fun acc r -> acc +. (w *. reg_bit_cost table r.Datapath.r_kind))
    0.0 d.Datapath.regs

let datapath_area ?(table = default) d =
  let w = float_of_int d.Datapath.width in
  let fus =
    Array.fold_left
      (fun acc f -> acc +. fu_cost table d.Datapath.width f.Datapath.f_class)
      0.0 d.Datapath.fus
  in
  let muxes = w *. table.mux_leg_bit *. float_of_int (Datapath.mux_legs d) in
  register_area ~table d +. fus +. muxes

let overhead ?(table = default) ~base d =
  if base <= 0.0 then invalid_arg "Area.overhead: base must be positive";
  (datapath_area ~table d -. base) /. base
