(** Register-transfer-level data paths.

    A data path is the structural result of high-level synthesis:
    registers, functional units, multiplexers (implicit: a functional
    unit port or register with several sources gets one), input/output
    ports, plus the {e transfer table} — which micro-operations happen in
    each control step.  The transfer table is what the {!Controller}
    decodes, and the structure is what {!Sgraph} and the gate-level
    expansion consume. *)

type reg_kind =
  | Plain
  | Scan               (** serial scan register (full/partial scan) *)
  | Transparent_scan   (** transparent scan on a non-register node *)
  | Tpgr               (** BIST pseudorandom test pattern generator *)
  | Sr                 (** BIST signature register *)
  | Bilbo              (** TPGR or SR (one role per session) *)
  | Cbilbo             (** concurrent BILBO: both roles at once *)

type reg = {
  r_id : int;
  r_name : string;
  mutable r_kind : reg_kind;
  r_vars : int list;   (** CDFG variables stored in this register *)
}

type fu = {
  f_id : int;
  f_name : string;
  f_class : Hft_cdfg.Op.fu_class;
  f_ops : int list;    (** CDFG operations bound to this unit *)
}

(** A data source reaching a functional-unit port or a register input. *)
type src =
  | Sreg of int        (** register id *)
  | Sport of int       (** primary input port index *)
  | Sconst of int      (** hard-wired constant *)

type micro =
  | Exec of { op : int; kind : Hft_cdfg.Op.kind; fu : int; srcs : src array; dst : int }
      (** run CDFG op [op] on [fu], result latched into register [dst] *)
  | Move of { src : src; dst : int }
      (** direct register transfer / input load *)

type t = {
  name : string;
  width : int;
  regs : reg array;
  fus : fu array;
  inports : string array;
  outports : (string * int) array;  (** (name, source register) *)
  transfers : (int * micro) list;   (** (control step, micro-op); step 0
                                        holds initial input loads *)
  n_steps : int;
}

(** {1 Structural queries} *)

val n_regs : t -> int
val n_fus : t -> int

(** Registers directly feeding some input port of [fu] (through its
    muxes), i.e. all [Sreg] sources over every step. *)
val fu_input_regs : t -> int -> int list

(** Registers latched from [fu]'s output. *)
val fu_output_regs : t -> int -> int list

(** Possible sources of each port of [fu] — the port's mux fan-in. *)
val fu_port_sources : t -> int -> src list array

(** Mux fan-in of a register input. *)
val reg_sources : t -> int -> src list

(** Register holding CDFG variable [v], if registered. *)
val reg_of_var : t -> int -> int option

(** FU executing CDFG op [o], if any ([Move]s have none). *)
val fu_of_op : t -> int -> int option

(** Registers connected to primary input ports / output ports
    (the survey's "I/O registers", Lee et al. §3.2). *)
val input_registers : t -> int list
val output_registers : t -> int list
val io_registers : t -> int list

(** Self-adjacent registers: [r] both feeds an FU and latches that FU's
    result (survey §5.1). *)
val self_adjacent_regs : t -> int list

(** Count multiplexer inputs (area: every source beyond the first on a
    port or register input costs one mux leg). *)
val mux_legs : t -> int

(** {1 Simulation} *)

(** Execute the transfer table for one iteration.  [state] presets
    register contents by register name (default 0); returns
    [(outputs by name, final register contents by register id)].
    Used to check synthesised data paths against [Graph.run]. *)
val simulate :
  t -> inputs:(string * int) list -> ?state:(string * int) list -> unit ->
  (string * int) list * (int * int) list

(** {1 Validation and display} *)

(** Structural invariants: transfer targets exist, each register is
    written at most once per step boundary, each FU runs at most one op
    per step, sources are defined.  Raises [Invalid_argument]. *)
val validate : t -> unit

val reg_kind_to_string : reg_kind -> string
val pp : t -> string
val to_dot : t -> string
