open Hft_cdfg
open Hft_util

let io_class_reps g info =
  let io_vars =
    List.map (fun v -> v.Graph.v_id) (Graph.inputs g @ Graph.outputs g)
  in
  List.map (Union_find.find info.Lifetime.merged) io_vars
  |> List.sort_uniq compare

let io_sharable_count g sched =
  let info = Lifetime.compute g sched in
  let io = io_class_reps g info in
  let candidates = Lifetime.register_candidates g info in
  let inters = List.filter (fun rep -> not (List.mem rep io)) candidates in
  List.length
    (List.filter
       (fun rep -> List.exists (fun r -> not (Lifetime.conflict info rep r)) io)
       inters)

let schedule ?latency g ~resources =
  let n = Graph.n_ops g in
  let latency =
    match latency with Some l -> l | None -> Array.make n 1
  in
  (* Priority: consume inputs early (shorten input lifetimes), produce
     outputs late is handled by the improvement pass; critical ops keep
     precedence via mobility. *)
  let asap = Sched_algos.asap ~latency g in
  let alap = Sched_algos.alap ~latency g ~n_steps:asap.Schedule.n_steps in
  let mob = Sched_algos.mobility ~asap ~alap in
  let consumes_input o =
    Array.exists
      (fun a -> (Graph.var g a).Graph.v_kind = Graph.V_input)
      (Graph.op g o).Graph.o_args
  in
  let priority =
    Array.init n (fun o ->
        (if consumes_input o then 100 else 0) - (10 * mob.(o)))
  in
  let base = List_sched.schedule ~latency ~priority g ~resources in
  (* Local improvement: try shifting each op later/earlier within the
     schedule's step count when it strictly increases the number of
     I/O-sharable intermediates (keeping validity and resource bounds). *)
  let resources_ok sched =
    List.for_all
      (fun (cl, used) ->
        match List.assoc_opt cl resources with
        | Some cap -> used <= cap
        | None -> false)
      (Schedule.fu_demand g sched)
  in
  let score sched = io_sharable_count g sched in
  let current = ref base in
  let improved = ref true in
  while !improved do
    improved := false;
    for o = 0 to n - 1 do
      let s0 = !current.Schedule.start.(o) in
      List.iter
        (fun delta ->
          let s = s0 + delta in
          if s >= 1 && s + latency.(o) - 1 <= !current.Schedule.n_steps then begin
            let start = Array.copy !current.Schedule.start in
            start.(o) <- s;
            match
              Schedule.make g ~n_steps:!current.Schedule.n_steps ~latency start
            with
            | sched ->
              if resources_ok sched && score sched > score !current then begin
                current := sched;
                improved := true
              end
            | exception Invalid_argument _ -> ()
          end)
        [ -2; -1; 1; 2 ]
    done
  done;
  !current
