open Hft_cdfg
open Hft_rtl

let generate ?name ~width g sched (binding : Fu_bind.t) (alloc : Reg_alloc.t) =
  let name = match name with Some n -> n | None -> g.Graph.name in
  let info = Lifetime.compute g sched in
  let reg_of v = alloc.Reg_alloc.reg_of_var.(v) in
  (* Registers. *)
  let regs =
    Array.init alloc.Reg_alloc.n_regs (fun r ->
        {
          Datapath.r_id = r;
          r_name = Printf.sprintf "R%d" r;
          r_kind = Datapath.Plain;
          r_vars = Reg_alloc.vars_of_reg alloc r;
        })
  in
  (* Functional units. *)
  let class_counters = Hashtbl.create 8 in
  let fus =
    Array.mapi
      (fun i (cl, ops) ->
        let k =
          let c = try Hashtbl.find class_counters cl with Not_found -> 0 in
          Hashtbl.replace class_counters cl (c + 1);
          c + 1
        in
        {
          Datapath.f_id = i;
          f_name = Printf.sprintf "%s%d" (String.uppercase_ascii
                                            (Op.fu_class_to_string cl)) k;
          f_class = cl;
          f_ops = ops;
        })
      binding.Fu_bind.instances
  in
  (* Ports. *)
  let inputs = Graph.inputs g in
  let inports = Array.of_list (List.map (fun v -> v.Graph.v_name) inputs) in
  let port_of_var =
    List.mapi (fun i v -> (v.Graph.v_id, i)) inputs
  in
  let src_of_arg a =
    match (Graph.var g a).Graph.v_kind with
    | Graph.V_const c -> Datapath.Sconst c
    | Graph.V_input | Graph.V_output | Graph.V_intermediate ->
      let r = reg_of a in
      if r < 0 then
        invalid_arg
          (Printf.sprintf "Datapath_gen: argument %s unregistered"
             (Graph.var g a).Graph.v_name)
      else Datapath.Sreg r
  in
  (* Transfers. *)
  let transfers = ref [] in
  let add step m = transfers := (step, m) :: !transfers in
  (* Input loads at step 0. *)
  List.iter
    (fun (v, p) ->
      let r = reg_of v in
      if r >= 0 then add 0 (Datapath.Move { src = Datapath.Sport p; dst = r }))
    port_of_var;
  (* Operations. *)
  Array.iter
    (fun { Graph.o_id = o; o_kind; o_args; o_result } ->
      let dst = reg_of o_result in
      if dst >= 0 then begin
        let step = Schedule.finish_step sched o in
        match o_kind with
        | Op.Move ->
          let src = src_of_arg o_args.(0) in
          (* A move within one register is the identity: drop it. *)
          if src <> Datapath.Sreg dst then
            add step (Datapath.Move { src; dst })
        | _ ->
          let fu = binding.Fu_bind.fu_of_op.(o) in
          if fu < 0 then invalid_arg "Datapath_gen: unbound op";
          add step
            (Datapath.Exec
               { op = o; kind = o_kind; fu; srcs = Array.map src_of_arg o_args;
                 dst })
      end
      (* dead result: prune the op *))
    (Array.init (Graph.n_ops g) (Graph.op g));
  (* End-of-iteration copies for unmerged feedback pairs. *)
  List.iter
    (fun (src, dst) ->
      let rs = reg_of src and rd = reg_of dst in
      if rs < 0 || rd < 0 then
        invalid_arg "Datapath_gen: feedback variable unregistered";
      if rs <> rd then
        add sched.Schedule.n_steps
          (Datapath.Move { src = Datapath.Sreg rs; dst = rd }))
    info.Lifetime.wrap_moves;
  let outports =
    Array.of_list
      (List.map
         (fun v ->
           let r = reg_of v.Graph.v_id in
           if r < 0 then
             invalid_arg
               (Printf.sprintf "Datapath_gen: output %s unregistered"
                  v.Graph.v_name)
           else (v.Graph.v_name, r))
         (Graph.outputs g))
  in
  let d =
    {
      Datapath.name;
      width;
      regs;
      fus;
      inports;
      outports;
      transfers = List.rev !transfers;
      n_steps = sched.Schedule.n_steps;
    }
  in
  Datapath.validate d;
  d

let check_against_behaviour ~width ~trials rng g d =
  let open Hft_util in
  let input_names = List.map (fun v -> v.Graph.v_name) (Graph.inputs g) in
  let states = Graph.state_vars g in
  (* State variables that are not primary inputs are preset through the
     simulator's register state; those that are inputs arrive through
     their port load. *)
  let pure_states =
    List.filter
      (fun v -> (Graph.var g v).Graph.v_kind <> Graph.V_input)
      states
  in
  let reg_name v =
    match Datapath.reg_of_var d v with
    | Some r -> d.Datapath.regs.(r).Datapath.r_name
    | None -> invalid_arg "check_against_behaviour: state not registered"
  in
  let ok = ref true in
  for _ = 1 to trials do
    let ins = List.map (fun n -> (n, Rng.int rng (1 lsl (width - 1)))) input_names in
    let stv = List.map (fun v -> (v, Rng.int rng (1 lsl (width - 1)))) pure_states in
    let behaviour =
      Graph.run ~width g ~inputs:ins
        ~state:(List.map (fun (v, x) -> ((Graph.var g v).Graph.v_name, x)) stv)
        ()
    in
    let sim_state = List.map (fun (v, x) -> (reg_name v, x)) stv in
    let outs, final_regs = Datapath.simulate d ~inputs:ins ~state:sim_state () in
    (* Primary outputs match. *)
    List.iter
      (fun (name, value) ->
        if Graph.value_of g behaviour name <> value then ok := false)
      outs;
    (* Next-iteration state: the register holding each feedback dst must
       now contain the behaviour's feedback src value. *)
    List.iter
      (fun (src, dst) ->
        match Datapath.reg_of_var d dst with
        | None -> ok := false
        | Some r ->
          let got = List.assoc r final_regs in
          let expect = List.assoc src behaviour in
          if got <> expect then ok := false)
      g.Graph.feedback
  done;
  !ok

let conventional ?name ~width ?mul_latency ~resources g =
  let latency = Sched_algos.latencies ?mul_latency g in
  let sched = List_sched.schedule ~latency g ~resources in
  let binding = Fu_bind.left_edge ~resources g sched in
  let info = Lifetime.compute g sched in
  let alloc = Reg_alloc.left_edge g info in
  generate ?name ~width g sched binding alloc
