lib/hls/reg_alloc.mli: Graph Hft_cdfg Lifetime
