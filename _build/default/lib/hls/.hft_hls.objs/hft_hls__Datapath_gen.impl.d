lib/hls/datapath_gen.ml: Array Datapath Fu_bind Graph Hashtbl Hft_cdfg Hft_rtl Hft_util Lifetime List List_sched Op Printf Reg_alloc Rng Sched_algos Schedule String
