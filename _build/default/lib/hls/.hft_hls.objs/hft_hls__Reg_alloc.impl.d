lib/hls/reg_alloc.ml: Array Hashtbl Hft_cdfg Hft_util Interval Lifetime List Printf Union_find
