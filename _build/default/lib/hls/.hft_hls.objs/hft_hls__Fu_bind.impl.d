lib/hls/fu_bind.ml: Array Graph Hashtbl Hft_cdfg List Op Printf Schedule
