lib/hls/mobility_path.mli: Graph Hft_cdfg Op Schedule
