lib/hls/datapath_gen.mli: Fu_bind Hft_cdfg Hft_rtl Hft_util Reg_alloc
