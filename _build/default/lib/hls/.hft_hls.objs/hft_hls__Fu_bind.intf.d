lib/hls/fu_bind.mli: Graph Hft_cdfg Op Schedule
