lib/hls/list_sched.mli: Graph Hft_cdfg Op Schedule
