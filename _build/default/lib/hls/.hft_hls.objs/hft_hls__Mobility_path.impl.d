lib/hls/mobility_path.ml: Array Graph Hft_cdfg Hft_util Lifetime List List_sched Sched_algos Schedule Union_find
