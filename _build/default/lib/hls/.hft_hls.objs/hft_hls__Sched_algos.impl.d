lib/hls/sched_algos.ml: Array Graph Hft_cdfg Hft_util List Op Printf Schedule
