lib/hls/list_sched.ml: Array Graph Hft_cdfg Hft_util List Op Printf Sched_algos Schedule
