lib/hls/sched_algos.mli: Graph Hft_cdfg Schedule
