open Hft_cdfg

let latencies ?(mul_latency = 1) g =
  Array.init (Graph.n_ops g) (fun o ->
      match (Graph.op g o).Graph.o_kind with
      | Op.Mul -> mul_latency
      | Op.Add | Op.Sub | Op.Lt | Op.Gt | Op.Eq | Op.And | Op.Or | Op.Xor
      | Op.Shl | Op.Shr | Op.Move -> 1)

let default_latency g = function
  | Some l -> l
  | None -> Array.make (Graph.n_ops g) 1

let asap ?latency g =
  let latency = default_latency g latency in
  let dg = Graph.op_graph g in
  let start = Array.make (Graph.n_ops g) 1 in
  (match Hft_util.Digraph.topological_sort dg with
   | None -> invalid_arg "Sched_algos.asap: cyclic op graph"
   | Some order ->
     List.iter
       (fun o ->
         let fin = start.(o) + latency.(o) - 1 in
         List.iter
           (fun c -> if fin + 1 > start.(c) then start.(c) <- fin + 1)
           (Hft_util.Digraph.succ dg o))
       order);
  let n_steps =
    Array.fold_left max 1
      (Array.mapi (fun o s -> s + latency.(o) - 1) start)
  in
  Schedule.make g ~n_steps ~latency start

let critical_path ?latency g = (asap ?latency g).Schedule.n_steps

let alap ?latency g ~n_steps =
  let latency = default_latency g latency in
  let cp = critical_path ~latency g in
  if n_steps < cp then
    invalid_arg
      (Printf.sprintf "Sched_algos.alap: n_steps %d below critical path %d"
         n_steps cp);
  let dg = Graph.op_graph g in
  let finish = Array.make (Graph.n_ops g) n_steps in
  (match Hft_util.Digraph.topological_sort dg with
   | None -> invalid_arg "Sched_algos.alap: cyclic op graph"
   | Some order ->
     List.iter
       (fun o ->
         List.iter
           (fun c ->
             let latest = finish.(c) - latency.(c) - latency.(o) + 1 in
             let fin_o = latest + latency.(o) - 1 in
             if fin_o < finish.(o) then finish.(o) <- fin_o)
           (Hft_util.Digraph.succ dg o))
       (List.rev order));
  let start = Array.mapi (fun o f -> f - latency.(o) + 1) finish in
  Schedule.make g ~n_steps ~latency start

let mobility ~asap ~alap =
  Array.mapi (fun o s -> alap.Schedule.start.(o) - s) asap.Schedule.start
