(** Mobility-path scheduling (Lee–Wolf–Jha ICCAD'92, survey §3.2).

    Re-schedules within operation mobility so that intermediate-variable
    lifetimes avoid overlapping input/output variable lifetimes, letting
    more intermediates share I/O registers and shortening the
    input-register → output-register sequential depth.  Implemented as
    list scheduling with an I/O-affinity priority followed by a local
    improvement pass that shifts ops within their slack when doing so
    removes an intermediate/I-O lifetime overlap. *)

open Hft_cdfg

val schedule :
  ?latency:int array -> Graph.t -> resources:(Op.fu_class * int) list ->
  Schedule.t

(** Number of intermediate merge classes whose lifetime overlaps no
    input/output variable class — the sharing opportunity the technique
    maximises (reported by E2). *)
val io_sharable_count : Graph.t -> Schedule.t -> int
