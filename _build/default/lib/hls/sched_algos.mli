(** Unconstrained scheduling: ASAP, ALAP, mobility.

    These are the estimation primitives every surveyed technique builds
    on (survey §1.1): mobility (slack) drives list-scheduling priority
    and the simultaneous scheduling/assignment search of Potkonjak–Dey–
    Roy. *)

open Hft_cdfg

(** Per-op latency table: [Multiplier] ops take [mul_latency] steps,
    everything else 1. *)
val latencies : ?mul_latency:int -> Graph.t -> int array

(** As-soon-as-possible schedule; its [n_steps] is the critical path. *)
val asap : ?latency:int array -> Graph.t -> Schedule.t

(** As-late-as-possible within [n_steps]; raises [Invalid_argument] when
    [n_steps] is below the critical path. *)
val alap : ?latency:int array -> Graph.t -> n_steps:int -> Schedule.t

(** [mobility asap alap] per op. *)
val mobility : asap:Schedule.t -> alap:Schedule.t -> int array

(** Critical-path length under the latency table. *)
val critical_path : ?latency:int array -> Graph.t -> int
