(** Data-path construction from (schedule, FU binding, register
    allocation).

    The generated transfer table:
    - step 0 loads every registered primary input from its port;
    - each operation executes on its bound unit at its finish step,
      latching into its result's register;
    - [Move] operations become direct register transfers;
    - unmergeable feedback pairs get an end-of-iteration copy
      (see {!Hft_cdfg.Lifetime}).

    Operations whose result is dead (never consumed, not an output, not
    feedback) are pruned, as a synthesis tool would. *)

val generate :
  ?name:string -> width:int ->
  Hft_cdfg.Graph.t -> Hft_cdfg.Schedule.t -> Fu_bind.t -> Reg_alloc.t ->
  Hft_rtl.Datapath.t

(** [check_against_behaviour ~width ~trials rng g d] — run random
    single-iteration comparisons between [Graph.run] and
    [Datapath.simulate]; true when every primary output and every state
    register matches on every trial. *)
val check_against_behaviour :
  width:int -> trials:int -> Hft_util.Rng.t -> Hft_cdfg.Graph.t ->
  Hft_rtl.Datapath.t -> bool

(** Conventional synthesis in one call: list-schedule under [resources],
    left-edge binding and allocation, generate.  The baseline every
    experiment compares against. *)
val conventional :
  ?name:string -> width:int -> ?mul_latency:int ->
  resources:(Hft_cdfg.Op.fu_class * int) list ->
  Hft_cdfg.Graph.t -> Hft_rtl.Datapath.t
