(** Binding of operations to functional-unit instances.

    Two operations can share an instance when they have the same unit
    class and disjoint execution step ranges.  The [choose] hook is how
    testability-aware bindings (assignment-loop avoidance, state-coverage
    maximisation) steer the allocator without reimplementing it. *)

open Hft_cdfg

type t = {
  fu_of_op : int array;
    (** op -> instance id; [-1] for [Move] (no unit needed) *)
  instances : (Op.fu_class * int list) array;
    (** instance id -> (class, ops bound to it) *)
}

(** Execution interval of an op in steps, inclusive. *)
val op_steps : Schedule.t -> int -> int * int

(** Do two ops exclude each other on one instance? *)
val ops_conflict : Schedule.t -> int -> int -> bool

(** Generic allocator.  Ops are visited in increasing start step.  For
    each op, [choose] picks among [candidates] (compatible existing
    instances of the right class) or asks to open a new instance; it may
    only return [`Open] when [can_open] (instance count below the
    [resources] cap for the class, no cap when absent).  When
    [candidates] is empty and opening is impossible, [Invalid_argument]
    is raised (the resource cap was infeasible). *)
val bind :
  ?resources:(Op.fu_class * int) list ->
  choose:(t -> op:int -> candidates:int list -> can_open:bool ->
          [ `Use of int | `Open ]) ->
  Graph.t -> Schedule.t -> t

(** First-fit (left-edge over step intervals): the conventional
    binding. *)
val left_edge : ?resources:(Op.fu_class * int) list -> Graph.t -> Schedule.t -> t

(** Binding from explicit per-op instance indices {e within} the op's
    class (e.g. the paper's Figure 1 adder assignment [A1]/[A2]);
    validates class consistency and step-overlap freedom. *)
val of_class_indices : Graph.t -> Schedule.t -> int array -> t

(** All instance-sharing invariants hold. *)
val validate : Graph.t -> Schedule.t -> t -> unit
