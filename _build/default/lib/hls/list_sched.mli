(** Resource-constrained list scheduling.

    Classic algorithm: walk control steps; at each step start the
    highest-priority ready operations while same-class units remain
    free.  The default priority is least mobility first (critical ops
    never wait).  [Move] operations need no functional unit and are
    scheduled as soon as ready. *)

open Hft_cdfg

type resources = (Op.fu_class * int) list

(** [schedule g ~resources] — raises [Invalid_argument] when a needed
    class is missing or has count [< 1].  [priority] overrides op
    priority (higher runs first); default is negative mobility at the
    ASAP-feasible horizon.  [max_steps] guards against livelock
    (default: generous). *)
val schedule :
  ?latency:int array -> ?priority:int array -> ?max_steps:int ->
  Graph.t -> resources:resources -> Schedule.t

(** Smallest per-class counts that still admit the returned schedule —
    convenience for reporting. *)
val used_resources : Graph.t -> Schedule.t -> resources
