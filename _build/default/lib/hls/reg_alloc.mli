(** Register allocation: mapping variables to registers.

    The conventional objective is register-count minimisation (left-edge
    over lifetimes).  Every surveyed testable-register-assignment
    technique is the same colouring problem with extra conflict edges
    (self-adjacency avoidance), a visiting order, or a colour-preference
    rule — all pluggable here. *)

open Hft_cdfg

type t = {
  reg_of_var : int array;  (** var -> register, [-1] when unregistered *)
  n_regs : int;
}

(** Left-edge allocation over merge-class lifetimes: minimal register
    count for pure interval conflicts. *)
val left_edge : Graph.t -> Lifetime.info -> t

(** Greedy conflict-graph colouring over merge-class representatives.

    - [extra_conflicts]: additional (var, var) pairs that must not share
      (translated to class representatives);
    - [order]: visiting order of class representatives (default:
      interval start, then id);
    - [prefer]: given the class representative and the feasible existing
      registers, return the one to use or [None] to open a new register
      (default: smallest feasible). *)
val color :
  ?extra_conflicts:(int * int) list ->
  ?order:int list ->
  ?prefer:(int -> feasible:int list -> int option) ->
  Graph.t -> Lifetime.info -> t

(** Check: no two conflicting variables share a register, every
    registerable class is mapped, merge classes are kept together. *)
val validate :
  ?extra_conflicts:(int * int) list -> Graph.t -> Lifetime.info -> t -> unit

(** Variables stored in register [r]. *)
val vars_of_reg : t -> int -> int list
