type t = {
  n : int;
  mutable m : int;
  succ : int list array;
  pred : int list array;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create";
  { n; m = 0; succ = Array.make n []; pred = Array.make n [] }

let order g = g.n
let size g = g.m

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph: vertex out of range"

let mem_edge g u v =
  check g u;
  check g v;
  List.mem v g.succ.(u)

let add_edge g u v =
  if not (mem_edge g u v) then begin
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.m <- g.m + 1
  end

let remove_edge g u v =
  if mem_edge g u v then begin
    g.succ.(u) <- List.filter (fun w -> w <> v) g.succ.(u);
    g.pred.(v) <- List.filter (fun w -> w <> u) g.pred.(v);
    g.m <- g.m - 1
  end

let succ g v = check g v; g.succ.(v)
let pred g v = check g v; g.pred.(v)
let out_degree g v = List.length (succ g v)
let in_degree g v = List.length (pred g v)

let detach g v =
  check g v;
  List.iter (fun w -> remove_edge g v w) (succ g v);
  List.iter (fun w -> remove_edge g w v) (pred g v)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) g.succ.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v l -> (u, v) :: l) g [])

let copy g =
  { n = g.n; m = g.m; succ = Array.copy g.succ; pred = Array.copy g.pred }

let transpose g =
  { n = g.n; m = g.m; succ = Array.copy g.pred; pred = Array.copy g.succ }

let has_self_loop g v = mem_edge g v v

let self_loops g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if has_self_loop g v then acc := v :: !acc
  done;
  !acc

(* Tarjan's SCC, iterative to survive deep graphs. *)
let scc g =
  let n = g.n in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Explicit DFS stack: (vertex, remaining successors). *)
  let strongconnect v0 =
    let call = Stack.create () in
    index.(v0) <- !next_index;
    low.(v0) <- !next_index;
    incr next_index;
    stack := v0 :: !stack;
    on_stack.(v0) <- true;
    Stack.push (v0, ref g.succ.(v0)) call;
    while not (Stack.is_empty call) do
      let v, rest = Stack.top call in
      match !rest with
      | w :: tl ->
        rest := tl;
        if index.(w) = -1 then begin
          index.(w) <- !next_index;
          low.(w) <- !next_index;
          incr next_index;
          stack := w :: !stack;
          on_stack.(w) <- true;
          Stack.push (w, ref g.succ.(w)) call
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
      | [] ->
        ignore (Stack.pop call);
        if low.(v) = index.(v) then begin
          (* v is the root of an SCC: pop it. *)
          let rec pop () =
            match !stack with
            | [] -> ()
            | w :: tl ->
              stack := tl;
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w <> v then pop ()
          in
          pop ();
          incr next_comp
        end;
        (match Stack.top_opt call with
         | Some (parent, _) -> low.(parent) <- min low.(parent) low.(v)
         | None -> ())
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (!next_comp, comp)

let scc_members g =
  let count, comp = scc g in
  let members = Array.make count [] in
  for v = g.n - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members

let topological_sort g =
  let indeg = Array.init g.n (fun v -> in_degree g v) in
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let out = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    incr seen;
    out := v :: !out;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (succ g v)
  done;
  if !seen = g.n then Some (List.rev !out) else None

let is_acyclic ?(ignore_self_loops = false) g =
  if ignore_self_loops then begin
    let g' = copy g in
    List.iter (fun v -> remove_edge g' v v) (self_loops g');
    topological_sort g' <> None
  end
  else topological_sort g <> None

let reachable g v0 =
  check g v0;
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  seen.(v0) <- true;
  Queue.add v0 queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      (succ g v)
  done;
  seen

let bfs_dist g v0 =
  check g v0;
  let dist = Array.make g.n max_int in
  let queue = Queue.create () in
  dist.(v0) <- 0;
  Queue.add v0 queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    List.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (succ g v)
  done;
  dist

let longest_path_from_sources g =
  match topological_sort g with
  | None -> invalid_arg "Digraph.longest_path_from_sources: cyclic graph"
  | Some order ->
    let dist = Array.make g.n 0 in
    List.iter
      (fun v ->
        List.iter
          (fun w -> if dist.(v) + 1 > dist.(w) then dist.(w) <- dist.(v) + 1)
          (succ g v))
      order;
    dist

(* Bounded elementary-cycle enumeration.  For each start vertex s (in
   increasing order) we search for cycles whose smallest vertex is s,
   which yields each elementary cycle exactly once. *)
let cycles g ~max_len ~max_count =
  let found = ref [] in
  let count = ref 0 in
  let on_path = Array.make g.n false in
  let exception Done in
  let rec extend s path len v =
    if !count >= max_count then raise Done;
    List.iter
      (fun w ->
        if w = s then begin
          found := (s :: List.rev path) :: !found;
          incr count;
          if !count >= max_count then raise Done
        end
        else if w > s && (not on_path.(w)) && len < max_len then begin
          on_path.(w) <- true;
          extend s (w :: path) (len + 1) w;
          on_path.(w) <- false
        end)
      (List.sort compare (succ g v))
  in
  (try
     for s = 0 to g.n - 1 do
       if max_len >= 1 then begin
         on_path.(s) <- true;
         extend s [] 1 s;
         on_path.(s) <- false
       end
     done
   with Done -> ());
  List.rev !found

let to_dot ?(name = string_of_int) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph g {\n";
  for v = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (name v))
  done;
  iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
