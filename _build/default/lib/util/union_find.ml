type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find uf x =
  let p = uf.parent.(x) in
  if p = x then x
  else begin
    let r = find uf p in
    uf.parent.(x) <- r;
    r
  end

let union uf x y =
  let rx = find uf x and ry = find uf y in
  if rx <> ry then
    if uf.rank.(rx) < uf.rank.(ry) then uf.parent.(rx) <- ry
    else if uf.rank.(rx) > uf.rank.(ry) then uf.parent.(ry) <- rx
    else begin
      uf.parent.(ry) <- rx;
      uf.rank.(rx) <- uf.rank.(rx) + 1
    end

let same uf x y = find uf x = find uf y

let groups uf =
  let tbl = Hashtbl.create 16 in
  let n = Array.length uf.parent in
  for x = n - 1 downto 0 do
    let r = find uf x in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (x :: cur)
  done;
  Hashtbl.fold (fun r ms acc -> (r, ms) :: acc) tbl []
  |> List.sort compare
