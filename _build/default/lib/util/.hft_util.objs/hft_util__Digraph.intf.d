lib/util/digraph.mli:
