lib/util/mfvs.mli: Digraph
