lib/util/mfvs.ml: Array Digraph List
