lib/util/interval.mli:
