lib/util/pretty.mli:
