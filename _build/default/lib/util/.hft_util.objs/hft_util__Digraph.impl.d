lib/util/digraph.ml: Array Buffer List Printf Queue Stack
