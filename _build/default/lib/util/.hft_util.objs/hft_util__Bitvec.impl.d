lib/util/bitvec.ml: Array Rng String Sys
