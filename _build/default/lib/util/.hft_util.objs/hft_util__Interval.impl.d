lib/util/interval.ml: Array List Printf
