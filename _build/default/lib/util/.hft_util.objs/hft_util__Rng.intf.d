lib/util/rng.mli:
