(** Deterministic splittable pseudo-random generator (splitmix64).

    Every stochastic experiment in the framework takes an explicit [Rng.t]
    so results are reproducible run-to-run without touching the global
    [Random] state. *)

type t

val create : int -> t

(** Independent stream derived from the current state. *)
val split : t -> t

(** 64 pseudo-random bits as an [int64]. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [0 .. bound-1]; [bound > 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** [word t] is a full-width nonnegative native int (62 random bits). *)
val word : t -> int

(** Uniform float in [0,1). *)
val float : t -> float

(** Fisher–Yates shuffle (in place). *)
val shuffle : t -> 'a array -> unit
