(** Minimum feedback vertex set (MFVS) computation.

    Breaking every directed cycle of an S-graph by removing (scanning) a
    minimum set of vertices is the canonical gate-level partial-scan
    formulation (Cheng–Agrawal, Lee–Reddy; survey section 3.1).  The
    problem is NP-hard; [greedy] is the standard degree-product heuristic
    and [exact] a branch-and-bound usable on small graphs. *)

(** [greedy ?ignore_self_loops g] returns a vertex set whose removal
    makes [g] acyclic.  When [ignore_self_loops] is [true] (the partial
    scan convention: self-loops are tolerated by sequential ATPG),
    self-loop-only vertices are not forced into the set.  Default
    [false]. *)
val greedy : ?ignore_self_loops:bool -> Digraph.t -> int list

(** [exact ?ignore_self_loops ?limit g] is a minimum feedback vertex set
    found by iterative-deepening search, trying sizes [0 .. limit]
    (default [limit = 12]); falls back to [greedy] beyond the limit. *)
val exact : ?ignore_self_loops:bool -> ?limit:int -> Digraph.t -> int list

(** [is_feedback_set ?ignore_self_loops g vs] checks that removing [vs]
    leaves [g] acyclic. *)
val is_feedback_set : ?ignore_self_loops:bool -> Digraph.t -> int list -> bool
