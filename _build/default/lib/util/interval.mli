(** Half-open integer intervals [\[lo, hi)] used for variable lifetimes.

    A variable produced at the end of control step [c] and last consumed
    during control step [u] occupies a register during steps
    [c+1 .. u], which we encode as the interval [\[c, u)] over step
    boundaries.  Empty intervals ([lo >= hi]) conflict with nothing. *)

type t = { lo : int; hi : int }

val make : int -> int -> t

val is_empty : t -> bool

(** Two lifetimes conflict iff their non-empty intervals intersect. *)
val overlaps : t -> t -> bool

(** Smallest interval containing both. *)
val hull : t -> t -> t

val contains : t -> int -> bool
val length : t -> int
val to_string : t -> string

(** [left_edge items] performs left-edge channel assignment: each item
    [(key, interval)] is assigned the smallest track index such that no
    two overlapping intervals share a track.  Returns assignments in the
    input key order and the number of tracks used.  Classical register
    allocation for straight-line lifetimes. *)
val left_edge : ('a * t) list -> ('a * int) list * int

(** Maximum number of simultaneously-live intervals — a lower bound on
    any feasible track count. *)
val max_overlap : t list -> int
