(** Fixed-width plain-text tables.

    All experiment harnesses print through this module so every
    reproduced table has the same layout in `bench_output.txt` and the
    examples. *)

type align = Left | Right

(** [render ~title ~header rows] lays out a table; every row must have
    the same arity as [header].  Numeric-looking cells default to
    right-alignment unless [aligns] overrides. *)
val render :
  ?title:string -> ?aligns:align list -> header:string list ->
  string list list -> string

(** [print] is [render] sent to stdout. *)
val print :
  ?title:string -> ?aligns:align list -> header:string list ->
  string list list -> unit

(** Format helpers used by the experiment tables. *)
val fi : int -> string
val ff : ?dp:int -> float -> string
val pct : ?dp:int -> float -> string
