(** Disjoint-set forest with path compression and union by rank.

    Used to pre-merge variables that are forced to share a register
    (loop-carried feedback pairs, user merge constraints) before conflict
    graph construction. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

(** [groups uf] lists the classes as (representative, members) with
    members sorted increasingly. *)
val groups : t -> (int * int list) list
