type align = Left | Right

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '%'
                 || c = '+' || c = 'x')
       s

let render ?title ?aligns ~header rows =
  let ncols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Pretty.render: ragged row")
    rows;
  let cells = header :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)))
    cells;
  let align_of i cell_is_header cell =
    match aligns with
    | Some al when List.length al = ncols -> List.nth al i
    | _ ->
      if cell_is_header then Left
      else if looks_numeric cell then Right
      else Left
  in
  let buf = Buffer.create 256 in
  (match title with
   | Some t ->
     Buffer.add_string buf t;
     Buffer.add_char buf '\n'
   | None -> ());
  let sep () =
    Array.iter
      (fun w ->
        Buffer.add_char buf '+';
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let row is_header r =
    List.iteri
      (fun i c ->
        let w = widths.(i) in
        let pad = w - String.length c in
        Buffer.add_string buf "| ";
        (match align_of i is_header c with
         | Left ->
           Buffer.add_string buf c;
           Buffer.add_string buf (String.make pad ' ')
         | Right ->
           Buffer.add_string buf (String.make pad ' ');
           Buffer.add_string buf c);
        Buffer.add_char buf ' ')
      r;
    Buffer.add_string buf "|\n"
  in
  sep ();
  row true header;
  sep ();
  List.iter (row false) rows;
  sep ();
  Buffer.contents buf

let print ?title ?aligns ~header rows =
  print_string (render ?title ?aligns ~header rows)

let fi = string_of_int
let ff ?(dp = 2) x = Printf.sprintf "%.*f" dp x
let pct ?(dp = 1) x = Printf.sprintf "%.*f%%" dp (100.0 *. x)
