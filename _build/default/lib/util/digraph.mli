(** Mutable directed graphs over integer vertices [0 .. n-1].

    This is the workhorse structure of the whole framework: CDFG
    dependency graphs, register S-graphs, gate-level flip-flop graphs and
    BIST conflict graphs are all instances.  Vertices are dense integer
    ids; parallel edges are collapsed; self-loops are allowed and tracked
    explicitly because partial-scan theory treats them specially. *)

type t

(** [create n] is an empty graph with vertices [0 .. n-1]. *)
val create : int -> t

(** Number of vertices. *)
val order : t -> int

(** Number of (distinct) edges, self-loops included. *)
val size : t -> int

(** [add_edge g u v] adds edge [u -> v].  Adding an existing edge is a
    no-op.  Raises [Invalid_argument] if [u] or [v] is out of range. *)
val add_edge : t -> int -> int -> unit

(** [remove_edge g u v] removes edge [u -> v] if present. *)
val remove_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool

(** Successors of a vertex, unordered. *)
val succ : t -> int -> int list

(** Predecessors of a vertex, unordered. *)
val pred : t -> int -> int list

val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** [detach g v] removes every edge incident to [v], leaving the vertex
    in place (useful for feedback-vertex-set computations). *)
val detach : t -> int -> unit

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> (int * int) list

val copy : t -> t

(** Graph with every edge reversed. *)
val transpose : t -> t

val has_self_loop : t -> int -> bool
val self_loops : t -> int list

(** {1 Classical algorithms} *)

(** [scc g] is [(count, comp)] where [comp.(v)] is the strongly-connected
    component index of [v], components numbered [0 .. count-1] in reverse
    topological order of the condensation (Tarjan). *)
val scc : t -> int * int array

(** Vertices of each SCC, indexed by component id. *)
val scc_members : t -> int list array

(** [topological_sort g] is [Some order] when [g] is acyclic (self-loops
    count as cycles), [None] otherwise. *)
val topological_sort : t -> int list option

(** [is_acyclic ~ignore_self_loops g] *)
val is_acyclic : ?ignore_self_loops:bool -> t -> bool

(** [reachable g v] is the set of vertices reachable from [v] (including
    [v]) as a boolean array. *)
val reachable : t -> int -> bool array

(** [bfs_dist g v] is the array of BFS hop distances from [v];
    unreachable vertices get [max_int]. *)
val bfs_dist : t -> int -> int array

(** Longest path lengths (in edges) from sources, valid only on acyclic
    graphs; raises [Invalid_argument] on cyclic input. *)
val longest_path_from_sources : t -> int array

(** [cycles g ~max_len ~max_count] enumerates elementary cycles of length
    [<= max_len] (a self-loop has length 1), at most [max_count] of them,
    each as a vertex list with the smallest vertex first.  Bounded
    Johnson-style search; deterministic order. *)
val cycles : t -> max_len:int -> max_count:int -> int list list

(** DOT text of the graph; [name] labels vertices. *)
val to_dot : ?name:(int -> string) -> t -> string
