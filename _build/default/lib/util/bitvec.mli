(** Packed bit vectors over native-int words.

    Backing store for pattern-parallel fault simulation: one [Bitvec.t]
    per circuit node holds the node's value under [width] test patterns
    simultaneously. *)

type t

(** Usable bits per word ([Sys.int_size - 1], i.e. 62 on 64-bit). *)
val word_bits : int

val create : int -> t

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit
val fill : t -> bool -> unit
val copy : t -> t

(** [assign ~dst src] copies [src]'s bits into [dst] (same length). *)
val assign : dst:t -> t -> unit

(** Bitwise operations into [dst]; all arguments must share a length. *)
val and_ : dst:t -> t -> t -> unit
val or_ : dst:t -> t -> t -> unit
val xor : dst:t -> t -> t -> unit
val not_ : dst:t -> t -> unit

(** [mux ~dst s a b] selects per bit: [s ? b : a]
    (select=1 chooses the second data input). *)
val mux : dst:t -> t -> t -> t -> unit

val equal : t -> t -> bool

(** Number of set bits. *)
val popcount : t -> int

(** Indices of set bits, increasing. *)
val ones : t -> int list

(** [any_diff a b] is true when the vectors differ in some bit. *)
val any_diff : t -> t -> bool

(** Randomise all bits from the generator. *)
val randomize : Rng.t -> t -> unit

val to_string : t -> string
