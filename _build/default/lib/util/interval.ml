type t = { lo : int; hi : int }

let make lo hi = { lo; hi }
let is_empty i = i.lo >= i.hi
let overlaps a b =
  (not (is_empty a)) && (not (is_empty b)) && a.lo < b.hi && b.lo < a.hi

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = min a.lo b.lo; hi = max a.hi b.hi }

let contains i x = x >= i.lo && x < i.hi
let length i = if is_empty i then 0 else i.hi - i.lo
let to_string i = Printf.sprintf "[%d,%d)" i.lo i.hi

let left_edge items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let (_, a) = arr.(i) and (_, b) = arr.(j) in
      compare (a.lo, a.hi, i) (b.lo, b.hi, j))
    order;
  let track_of = Array.make n 0 in
  (* tracks.(t) holds the right edge of the last interval on track t. *)
  let tracks = ref [||] in
  let ntracks = ref 0 in
  Array.iter
    (fun idx ->
      let (_, iv) = arr.(idx) in
      if is_empty iv then track_of.(idx) <- 0
      else begin
        let placed = ref false in
        let t = ref 0 in
        while (not !placed) && !t < !ntracks do
          if !tracks.(!t) <= iv.lo then begin
            !tracks.(!t) <- iv.hi;
            track_of.(idx) <- !t;
            placed := true
          end;
          incr t
        done;
        if not !placed then begin
          let nt = Array.make (!ntracks + 1) min_int in
          Array.blit !tracks 0 nt 0 !ntracks;
          nt.(!ntracks) <- iv.hi;
          track_of.(idx) <- !ntracks;
          tracks := nt;
          incr ntracks
        end
      end)
    order;
  let result =
    Array.to_list (Array.mapi (fun i (key, _) -> (key, track_of.(i))) arr)
  in
  (result, max !ntracks (if n > 0 then 1 else 0))

let max_overlap intervals =
  let events =
    List.concat_map
      (fun i -> if is_empty i then [] else [ (i.lo, 1); (i.hi, -1) ])
      intervals
  in
  let sorted = List.sort compare events in
  let best = ref 0 and cur = ref 0 in
  List.iter
    (fun (_, d) ->
      cur := !cur + d;
      if !cur > !best then best := !cur)
    sorted;
  !best
