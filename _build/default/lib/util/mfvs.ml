let strip_self_loops g =
  let g = Digraph.copy g in
  List.iter (fun v -> Digraph.remove_edge g v v) (Digraph.self_loops g);
  g

let is_feedback_set ?(ignore_self_loops = false) g vs =
  let g = if ignore_self_loops then strip_self_loops g else Digraph.copy g in
  List.iter (fun v -> Digraph.detach g v) vs;
  Digraph.is_acyclic g

(* Trim vertices that cannot lie on any cycle (in- or out-degree zero),
   iterating to a fixed point.  Works in place. *)
let trim g =
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to Digraph.order g - 1 do
      let indeg = Digraph.in_degree g v and outdeg = Digraph.out_degree g v in
      if (indeg = 0 && outdeg > 0) || (outdeg = 0 && indeg > 0) then begin
        Digraph.detach g v;
        changed := true
      end
    done
  done

let greedy ?(ignore_self_loops = false) g =
  let g = if ignore_self_loops then strip_self_loops g else Digraph.copy g in
  let fvs = ref [] in
  (* Vertices with self-loops must be cut first: they are on a cycle no
     other cut can break. *)
  List.iter
    (fun v ->
      fvs := v :: !fvs;
      Digraph.detach g v)
    (Digraph.self_loops g);
  trim g;
  while not (Digraph.is_acyclic g) do
    (* Pick, inside some non-trivial SCC, the vertex maximising the
       in*out degree product — the classical Lee–Reddy style choice. *)
    let members = Digraph.scc_members g in
    let best = ref (-1) and best_score = ref (-1) in
    Array.iter
      (fun vs ->
        match vs with
        | [] | [ _ ] -> ()
        | vs ->
          List.iter
            (fun v ->
              let s = Digraph.in_degree g v * Digraph.out_degree g v in
              if s > !best_score then begin
                best_score := s;
                best := v
              end)
            vs)
      members;
    if !best < 0 then
      (* Remaining cycles must be self-loops created by detach order;
         cut any vertex with a self-loop. *)
      (match Digraph.self_loops g with
       | [] -> assert false
       | v :: _ ->
         fvs := v :: !fvs;
         Digraph.detach g v)
    else begin
      fvs := !best :: !fvs;
      Digraph.detach g !best
    end;
    trim g
  done;
  List.sort compare !fvs

let exact ?(ignore_self_loops = false) ?(limit = 12) g =
  let g0 = if ignore_self_loops then strip_self_loops g else Digraph.copy g in
  if Digraph.is_acyclic g0 then []
  else begin
    let forced = Digraph.self_loops g0 in
    let g1 = Digraph.copy g0 in
    List.iter (fun v -> Digraph.detach g1 v) forced;
    (* Candidate vertices: those in non-trivial SCCs after forcing. *)
    let members = Digraph.scc_members g1 in
    let candidates =
      Array.to_list members
      |> List.filter (fun vs -> List.length vs > 1)
      |> List.concat
      |> List.sort compare
    in
    let acyclic_with cut =
      let g' = Digraph.copy g1 in
      List.iter (fun v -> Digraph.detach g' v) cut;
      Digraph.is_acyclic g'
    in
    let rec choose k rest acc =
      if k = 0 then if acyclic_with acc then Some acc else None
      else
        match rest with
        | [] -> None
        | v :: tl ->
          (match choose (k - 1) tl (v :: acc) with
           | Some s -> Some s
           | None ->
             (* Only worth skipping v if enough candidates remain. *)
             if List.length tl >= k then choose k tl acc else None)
    in
    let rec deepen k =
      if k > limit || k > List.length candidates then
        greedy ~ignore_self_loops g
      else
        match choose k candidates [] with
        | Some s -> List.sort compare (forced @ s)
        | None -> deepen (k + 1)
    in
    if acyclic_with [] then List.sort compare forced else deepen 1
  end
