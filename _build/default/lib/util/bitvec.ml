let word_bits = Sys.int_size - 1

type t = { len : int; words : int array }

let nwords len = (len + word_bits - 1) / word_bits

let mask_last t =
  (* Keep unused high bits of the last word at zero so equality and
     popcount are exact. *)
  let rem = t.len mod word_bits in
  if rem <> 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land ((1 lsl rem) - 1)
  end

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; words = Array.make (max 1 (nwords len)) 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.get";
  t.words.(i / word_bits) lsr (i mod word_bits) land 1 = 1

let set t i b =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.set";
  let w = i / word_bits and o = i mod word_bits in
  if b then t.words.(w) <- t.words.(w) lor (1 lsl o)
  else t.words.(w) <- t.words.(w) land lnot (1 lsl o)

let fill t b =
  Array.fill t.words 0 (Array.length t.words)
    (if b then (1 lsl word_bits) - 1 else 0);
  if b then mask_last t

let copy t = { len = t.len; words = Array.copy t.words }

let assign ~dst src =
  if dst.len <> src.len then invalid_arg "Bitvec.assign: length mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let check2 a b = if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let and_ ~dst a b =
  check2 dst a;
  check2 a b;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) land b.words.(i)
  done

let or_ ~dst a b =
  check2 dst a;
  check2 a b;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) lor b.words.(i)
  done

let xor ~dst a b =
  check2 dst a;
  check2 a b;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) lxor b.words.(i)
  done

let word_mask = (1 lsl word_bits) - 1

let not_ ~dst a =
  check2 dst a;
  for i = 0 to Array.length dst.words - 1 do
    (* Native ints carry [Sys.int_size] bits; keep only the low
       [word_bits] so popcount and equality stay exact. *)
    dst.words.(i) <- lnot a.words.(i) land word_mask
  done;
  mask_last dst

let mux ~dst s a b =
  check2 dst s;
  check2 s a;
  check2 a b;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <-
      (a.words.(i) land lnot s.words.(i)) lor (b.words.(i) land s.words.(i))
  done;
  mask_last dst

let equal a b = a.len = b.len && a.words = b.words

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  (* Kernighan variant is faster, but clarity wins for our sizes. *)
  go w 0

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let ones t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc

let any_diff a b =
  check2 a b;
  let rec go i =
    i < Array.length a.words && (a.words.(i) <> b.words.(i) || go (i + 1))
  in
  go 0

let randomize rng t =
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- Rng.word rng
  done;
  mask_last t

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')
