(** Arithmetic built-in self-test
    (Mukherjee–Kassab–Rajski–Tyszer VTS'95, survey §5.4).

    Instead of dedicated LFSR/MISR hardware, existing adders generate
    patterns (an accumulator stepping by a constant) and compact
    responses (rotate-carry accumulation).  Pattern quality is judged by
    {e subspace state coverage}: the fraction of low-order [k]-bit input
    subspaces an operation's two input streams exercise. *)

type gen

(** Accumulator generator: [s(n+1) = s(n) + increment mod 2^width].
    Odd increments sweep the full space. *)
val create : width:int -> seed:int -> increment:int -> gen

val next : gen -> int

(** [pattern_stream gen n] — [n] successive states. *)
val pattern_stream : gen -> int -> int list

(** [subspace_coverage ~k pairs] over an operand-pair stream: fraction
    of the [2^2k] joint low-[k]-bit states covered. *)
val subspace_coverage : k:int -> (int * int) list -> float

(** Coverage-guided binding: assign operations to unit instances (same
    rules as {!Hft_hls.Fu_bind.bind}) choosing the instance whose
    accumulated input-state set grows most (union of member input
    states), under the per-class caps. *)
val coverage_bind :
  resources:(Hft_cdfg.Op.fu_class * int) list ->
  width:int -> samples:int -> seed:int ->
  Hft_cdfg.Graph.t -> Hft_cdfg.Schedule.t -> Hft_hls.Fu_bind.t

(** Input-pair stream seen by an op when the behaviour runs on the
    accumulator stimulus (all primary inputs driven by one generator
    each, states default 0). *)
val op_streams :
  width:int -> samples:int -> seed:int -> Hft_cdfg.Graph.t ->
  (int * (int * int) list) list

(** Response compaction by rotate-carry addition; the software model of
    an adder-based compactor. *)
val compact : width:int -> int list -> int
