(** Multiple-input signature registers (SRs).

    Internal-XOR form over the same primitive polynomials as {!Lfsr}:
    each cycle the state shifts with polynomial feedback and absorbs a
    parallel input word.  Equal fault-free streams always give equal
    signatures; differing streams collide (alias) with probability
    about [2^-width]. *)

type t

val create : width:int -> t
val absorb : t -> int -> unit
val signature : t -> int

(** Signature of a whole stream from a fresh register. *)
val of_stream : width:int -> int list -> int
