type t = { w : int; taps : int list; mutable s : int }

let create ~width = { w = width; taps = Lfsr.taps width; s = 0 }

let absorb t word =
  let mask = (1 lsl t.w) - 1 in
  let msb = t.s lsr (t.w - 1) land 1 in
  let shifted = (t.s lsl 1) land mask in
  let feedback =
    if msb = 1 then
      List.fold_left (fun acc p -> acc lxor (1 lsl (p - 1))) 0 t.taps land mask
    else 0
  in
  t.s <- shifted lxor feedback lxor (word land mask)

let signature t = t.s

let of_stream ~width stream =
  let t = create ~width in
  List.iter (absorb t) stream;
  signature t
