open Hft_gate

type t = {
  netlist : Netlist.t;
  expansion : Expand.t;
  bist_mode : int;
  cfg_pins : (int * int) list;
  roles : Bilbo.role array;
}

(* XOR-reduce a node list. *)
let xor_reduce nl = function
  | [] -> Netlist.add nl Netlist.Const0 [||]
  | x :: tl ->
    List.fold_left (fun acc y -> Netlist.add nl Netlist.Xor [| acc; y |]) x tl

(* LFSR next-state nets for a register's Q bits (internal-XOR form:
   shift up, feedback into bit 0). *)
let lfsr_next nl q =
  let w = Array.length q in
  let taps = Lfsr.taps (max 2 (min 24 w)) in
  let fb = xor_reduce nl (List.map (fun p -> q.((p - 1) mod w)) taps) in
  Array.init w (fun i -> if i = 0 then fb else q.(i - 1))

(* MISR next-state: LFSR shift xor the absorbed input word. *)
let misr_next nl q input =
  let shifted = lfsr_next nl q in
  Array.init (Array.length q) (fun i ->
      Netlist.add nl Netlist.Xor [| shifted.(i); input.(i) |])

let insert (ex : Expand.t) d (plan : Bilbo.plan) =
  let nl = ex.Expand.netlist in
  let bist_mode = Netlist.add nl ~name:"bist_mode" Netlist.Pi [||] in
  let cfg_pins = ref [] in
  let n_regs = Hft_rtl.Datapath.n_regs d in
  for r = 0 to n_regs - 1 do
    let role = plan.Bilbo.roles.(r) in
    let q = ex.Expand.reg_q.(r) in
    let normal_d = Array.map (fun dff -> (Netlist.fanin nl dff).(0)) q in
    let bist_d =
      match role with
      | Bilbo.R_none -> None
      | Bilbo.R_tpgr -> Some (lfsr_next nl q)
      | Bilbo.R_sr | Bilbo.R_cbilbo ->
        (* Absorb the register's functional D value (the routed block
           output when the session's control configuration is held). *)
        Some (misr_next nl q normal_d)
      | Bilbo.R_bilbo ->
        let cfg =
          Netlist.add nl
            ~name:(Printf.sprintf "bist_cfg_%s"
                     d.Hft_rtl.Datapath.regs.(r).Hft_rtl.Datapath.r_name)
            Netlist.Pi [||]
        in
        cfg_pins := (r, cfg) :: !cfg_pins;
        let tp = lfsr_next nl q in
        let sr = misr_next nl q normal_d in
        Some
          (Array.init (Array.length q) (fun i ->
               Netlist.add nl Netlist.Mux2 [| cfg; sr.(i); tp.(i) |]))
    in
    match bist_d with
    | None -> ()
    | Some bist_d ->
      Array.iteri
        (fun i dff ->
          let mux =
            Netlist.add nl Netlist.Mux2 [| bist_mode; normal_d.(i); bist_d.(i) |]
          in
          Netlist.set_fanin nl dff 0 mux)
        q
  done;
  Netlist.validate nl;
  { netlist = nl; expansion = ex; bist_mode; cfg_pins = List.rev !cfg_pins;
    roles = plan.Bilbo.roles }

(* Control configuration routing [fu]: the roles of the step in which
   it executes. *)
let step_of_fu d fu =
  let found = ref None in
  List.iter
    (fun (s, m) ->
      match m with
      | Hft_rtl.Datapath.Exec e when e.fu = fu && !found = None ->
        found := Some s
      | Hft_rtl.Datapath.Exec _ | Hft_rtl.Datapath.Move _ -> ())
    d.Hft_rtl.Datapath.transfers;
  match !found with
  | Some s -> s
  | None -> invalid_arg "Insitu: unit never executes"

let word_of_q st q =
  Array.to_list q
  |> List.mapi (fun i dff ->
         if Hft_util.Bitvec.get (Sim.pvalue st dff) 0 then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let run_session ?fault ?step t d ~fu ~sr_reg ~cycles ~seed =
  let nl = t.netlist in
  let ex = t.expansion in
  let faults = match fault with None -> [] | Some f -> [ f ] in
  let st = Sim.pcreate nl ~n_patterns:1 in
  let set node b =
    let v = Hft_util.Bitvec.create 1 in
    Hft_util.Bitvec.set v 0 b;
    Sim.pset_pi st node v
  in
  (* Hold the control configuration of one of the unit's execution
     steps. *)
  let step = match step with Some s -> s | None -> step_of_fu d fu in
  let active = Expand.roles_for_step d step in
  List.iter
    (fun (role, node) -> set node (List.mem role active))
    ex.Expand.controls;
  set t.bist_mode true;
  (* BILBO cfg: TPGR unless this is the session's SR. *)
  List.iter (fun (r, pin) -> set pin (r <> sr_reg)) t.cfg_pins;
  (* Data PIs at a fixed value. *)
  List.iter
    (fun (_, bits) -> Array.iter (fun p -> set p false) bits)
    ex.Expand.data_pis;
  (* Seed every test register deterministically (nonzero). *)
  Array.iteri
    (fun r q ->
      if t.roles.(r) <> Bilbo.R_none then begin
        let s = (seed + (r * 37)) lor 1 in
        Array.iteri
          (fun i dff ->
            let v = Hft_util.Bitvec.create 1 in
            Hft_util.Bitvec.set v 0 (s lsr (i mod 24) land 1 = 1);
            Sim.pset_state st dff v
          )
          q
      end)
    ex.Expand.reg_q;
  for _ = 1 to cycles do
    Sim.peval ~faults nl st;
    Sim.pclock ~faults nl st
  done;
  word_of_q st ex.Expand.reg_q.(sr_reg)

type campaign_report = {
  n_faults : int;
  detected : int;
  sessions : (int * int) list;
}

let campaign t d (plan : Bilbo.plan) ~faults ~cycles ~seed =
  (* One session per (execution step, unit): every routed configuration
     of every block gets exercised, which is how the paper's "set of
     acyclic logic blocks" covers the mux fabric too. *)
  let configs =
    List.filter_map
      (fun (s, m) ->
        match m with
        | Hft_rtl.Datapath.Exec e when plan.Bilbo.sr_of_fu.(e.fu) >= 0 ->
          Some (s, e.fu, plan.Bilbo.sr_of_fu.(e.fu))
        | Hft_rtl.Datapath.Exec _ | Hft_rtl.Datapath.Move _ -> None)
      d.Hft_rtl.Datapath.transfers
    |> List.sort_uniq compare
  in
  let sessions =
    List.map
      (fun (step, fu, sr) ->
        (step, fu, sr, run_session ~step t d ~fu ~sr_reg:sr ~cycles ~seed))
      configs
  in
  let detected =
    List.length
      (List.filter
         (fun f ->
           List.exists
             (fun (step, fu, sr, gold) ->
               run_session ~fault:f ~step t d ~fu ~sr_reg:sr ~cycles ~seed
               <> gold)
             sessions)
         faults)
  in
  {
    n_faults = List.length faults;
    detected;
    sessions = List.map (fun (_, fu, _, gold) -> (fu, gold)) sessions;
  }

let coverage r =
  if r.n_faults = 0 then 1.0
  else float_of_int r.detected /. float_of_int r.n_faults
