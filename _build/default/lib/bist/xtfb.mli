(** Extended test function blocks (Harmanani–Papachristou ICCAD'93,
    survey §5.1).

    An XTFB is an ALU with {e multiple} output registers.  During test,
    input registers act as TPGRs and only one output register need be
    an SR, so self-adjacent registers are tolerated as long as they
    only have to be TPGRs — each block merely needs one output register
    that is not among its inputs.  This needs fewer blocks (hence less
    test area) than strict TFBs while still avoiding CBILBOs. *)

open Hft_cdfg

type result = {
  xtfb_of_op : int array;
  n_xtfbs : int;
  n_output_registers : int;   (** lifetime-coloured within each block *)
  n_tpgr_only : int;          (** self-adjacent registers kept as TPGRs *)
  n_srs : int;                (** one per block *)
  classes : Op.fu_class array;
}

(** Greedy grouping: ops join a block of their class when they do not
    execute simultaneously and the block keeps at least one
    "clean" output (a result variable feeding no operation of the same
    block) to serve as SR. *)
val map : Graph.t -> Schedule.t -> result

(** No block is left without a clean SR candidate. *)
val cbilbo_free : Graph.t -> result -> bool

val area : width:int -> result -> float
