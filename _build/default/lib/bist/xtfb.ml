open Hft_cdfg

type result = {
  xtfb_of_op : int array;
  n_xtfbs : int;
  n_output_registers : int;
  n_tpgr_only : int;
  n_srs : int;
  classes : Op.fu_class array;
}

(* Does [group @ [o]] keep a clean SR candidate?  A member's result is
   clean when no member of the group consumes it. *)
let has_clean_sr g members =
  List.exists
    (fun o ->
      let v = (Graph.op g o).Graph.o_result in
      List.for_all
        (fun o' ->
          not (Array.exists (fun a -> a = v) (Graph.op g o').Graph.o_args))
        members)
    members

let map g sched =
  let info = Lifetime.compute g sched in
  let n = Graph.n_ops g in
  let xtfb_of_op = Array.make n (-1) in
  let members : int list ref list ref = ref [] in
  let classes = ref [] in
  let n_xtfbs = ref 0 in
  for o = 0 to n - 1 do
    match Op.fu_class (Graph.op g o).Graph.o_kind with
    | None -> ()
    | Some cl ->
      let rec try_blocks idx = function
        | [] ->
          xtfb_of_op.(o) <- !n_xtfbs;
          members := !members @ [ ref [ o ] ];
          classes := !classes @ [ cl ];
          incr n_xtfbs
        | m :: tl ->
          let candidate = o :: !m in
          if List.nth !classes idx = cl
             && List.for_all
                  (fun o' ->
                    o = o'
                    || not (Hft_hls.Fu_bind.ops_conflict sched o o'))
                  !m
             && has_clean_sr g candidate
          then begin
            xtfb_of_op.(o) <- idx;
            m := candidate
          end
          else try_blocks (idx + 1) tl
      in
      try_blocks 0 !members
  done;
  (* Output registers per block: colour member results by lifetime. *)
  let n_output_registers = ref 0 in
  let n_tpgr_only = ref 0 in
  List.iter
    (fun m ->
      let items =
        List.map
          (fun o ->
            let v = (Graph.op g o).Graph.o_result in
            (v, info.Lifetime.intervals.(v)))
          !m
      in
      let assign, k = Hft_util.Interval.left_edge items in
      n_output_registers := !n_output_registers + k;
      (* Registers holding a variable consumed inside the block are
         self-adjacent: they stay TPGR-only. *)
      let consumed_inside v =
        List.exists
          (fun o' ->
            Array.exists (fun a -> a = v) (Graph.op g o').Graph.o_args)
          !m
      in
      let regs = List.sort_uniq compare (List.map snd assign) in
      List.iter
        (fun reg ->
          let holds =
            List.filter_map (fun (v, r) -> if r = reg then Some v else None)
              assign
          in
          if List.exists consumed_inside holds then incr n_tpgr_only)
        regs)
    !members;
  {
    xtfb_of_op;
    n_xtfbs = !n_xtfbs;
    n_output_registers = !n_output_registers;
    n_tpgr_only = !n_tpgr_only;
    n_srs = !n_xtfbs;
    classes = Array.of_list !classes;
  }

let cbilbo_free g r =
  (* Rebuild groups and re-check the clean-SR property. *)
  let groups = Array.make r.n_xtfbs [] in
  Array.iteri
    (fun o b -> if b >= 0 then groups.(b) <- o :: groups.(b))
    r.xtfb_of_op;
  Array.for_all (fun m -> m = [] || has_clean_sr g m) groups

let area ~width r =
  let table = Hft_rtl.Area.default in
  let w = float_of_int width in
  let alu_cost cl =
    match cl with
    | Op.Alu -> table.Hft_rtl.Area.alu_bit *. w
    | Op.Multiplier -> table.Hft_rtl.Area.mul_bit *. w *. w
    | Op.Comparator -> table.Hft_rtl.Area.cmp_bit *. w
    | Op.Logic_unit -> table.Hft_rtl.Area.logic_bit *. w
    | Op.Shifter -> table.Hft_rtl.Area.shift_bit *. w
  in
  let alus = Array.fold_left (fun acc cl -> acc +. alu_cost cl) 0.0 r.classes in
  let srs = float_of_int r.n_srs *. table.Hft_rtl.Area.sr_bit *. w in
  let tpgrs =
    float_of_int r.n_tpgr_only *. table.Hft_rtl.Area.tpgr_bit *. w
  in
  let plain =
    float_of_int (max 0 (r.n_output_registers - r.n_srs - r.n_tpgr_only))
    *. table.Hft_rtl.Area.reg_bit *. w
  in
  let muxes =
    float_of_int (2 * r.n_xtfbs) *. table.Hft_rtl.Area.mux_leg_bit *. w
  in
  alus +. srs +. tpgrs +. plain +. muxes
