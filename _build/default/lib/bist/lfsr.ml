type t = { w : int; taps : int list; mutable s : int }

(* Standard maximal-length tap tables (XAPP052-style), 1-based bit
   positions. *)
let taps = function
  | 2 -> [ 2; 1 ]
  | 3 -> [ 3; 2 ]
  | 4 -> [ 4; 3 ]
  | 5 -> [ 5; 3 ]
  | 6 -> [ 6; 5 ]
  | 7 -> [ 7; 6 ]
  | 8 -> [ 8; 6; 5; 4 ]
  | 9 -> [ 9; 5 ]
  | 10 -> [ 10; 7 ]
  | 11 -> [ 11; 9 ]
  | 12 -> [ 12; 6; 4; 1 ]
  | 13 -> [ 13; 4; 3; 1 ]
  | 14 -> [ 14; 5; 3; 1 ]
  | 15 -> [ 15; 14 ]
  | 16 -> [ 16; 15; 13; 4 ]
  | 17 -> [ 17; 14 ]
  | 18 -> [ 18; 11 ]
  | 19 -> [ 19; 6; 2; 1 ]
  | 20 -> [ 20; 17 ]
  | 21 -> [ 21; 19 ]
  | 22 -> [ 22; 21 ]
  | 23 -> [ 23; 18 ]
  | 24 -> [ 24; 23; 22; 17 ]
  | w -> invalid_arg (Printf.sprintf "Lfsr: unsupported width %d" w)

let create ~width ~seed =
  let t = taps width in
  let mask = (1 lsl width) - 1 in
  let s = seed land mask in
  { w = width; taps = t; s = (if s = 0 then 1 else s) }

let width t = t.w
let state t = t.s

let next t =
  let fb =
    List.fold_left (fun acc p -> acc lxor (t.s lsr (p - 1) land 1)) 0 t.taps
  in
  t.s <- ((t.s lsl 1) lor fb) land ((1 lsl t.w) - 1);
  t.s

let bits t n = List.init n (fun _ -> next t land 1 = 1)

let period t =
  let start = t.s in
  let count = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    ignore (next t);
    incr count;
    if t.s = start then continue_ := false;
    if !count > 1 lsl (t.w + 1) then invalid_arg "Lfsr.period: runaway"
  done;
  !count
