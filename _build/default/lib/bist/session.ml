open Hft_rtl

type path = { fu : int; tpgrs : int list; sr : int }

let paths d (p : Bilbo.plan) =
  List.filter_map
    (fun f ->
      let sr = p.Bilbo.sr_of_fu.(f) in
      if sr < 0 then None
      else Some { fu = f; tpgrs = Datapath.fu_input_regs d f; sr })
    (List.init (Datapath.n_fus d) (fun f -> f))

let regs_of p = List.sort_uniq compare (p.sr :: p.tpgrs)

let conflict a b =
  a.fu = b.fu
  || List.exists (fun r -> List.mem r (regs_of b)) (regs_of a)

let schedule ps =
  let n = List.length ps in
  let arr = Array.of_list ps in
  let colour = Array.make n (-1) in
  let n_sessions = ref 0 in
  for i = 0 to n - 1 do
    let used =
      List.filter_map
        (fun j ->
          if j < i && conflict arr.(i) arr.(j) then Some colour.(j) else None)
        (List.init n (fun j -> j))
    in
    let rec first c = if List.mem c used then first (c + 1) else c in
    let c = first 0 in
    colour.(i) <- c;
    if c + 1 > !n_sessions then n_sessions := c + 1
  done;
  (Array.to_list colour, !n_sessions)

let count d p = snd (schedule (paths d p))

let concurrency_aware_alloc g (binding : Hft_hls.Fu_bind.t) info =
  let open Hft_cdfg in
  let nv = Graph.n_vars g in
  (* Affinity of a variable: the unit instances its register would tie
     into a test path (consumers + producer). *)
  let affinity = Array.make nv [] in
  Array.iteri
    (fun o inst ->
      if inst >= 0 then begin
        let op = Graph.op g o in
        Array.iter
          (fun a -> affinity.(a) <- inst :: affinity.(a))
          op.Graph.o_args;
        affinity.(op.Graph.o_result) <- inst :: affinity.(op.Graph.o_result)
      end)
    binding.Hft_hls.Fu_bind.fu_of_op;
  let aff v = List.sort_uniq compare affinity.(v) in
  let extra = ref [] in
  for u = 0 to nv - 1 do
    for v = u + 1 to nv - 1 do
      if aff u <> [] && aff v <> [] && aff u <> aff v then
        extra := (u, v) :: !extra
    done
  done;
  Hft_hls.Reg_alloc.color ~extra_conflicts:!extra g info

let optimize d (p : Bilbo.plan) =
  let sr_of_fu = Array.copy p.Bilbo.sr_of_fu in
  let plan_with sr_of_fu =
    (* Recompute role counts for the changed SR set; roles themselves
       are only needed for counting, so rebuild through Bilbo.plan's
       shape by hand. *)
    { p with Bilbo.sr_of_fu }
  in
  let current = ref (count d (plan_with sr_of_fu)) in
  for f = 0 to Datapath.n_fus d - 1 do
    if sr_of_fu.(f) >= 0 then begin
      let ins = Datapath.fu_input_regs d f in
      let outs = Datapath.fu_output_regs d f in
      let clean = List.filter (fun r -> not (List.mem r ins)) outs in
      let candidates = if clean = [] then outs else clean in
      List.iter
        (fun r ->
          if r <> sr_of_fu.(f) then begin
            let saved = sr_of_fu.(f) in
            sr_of_fu.(f) <- r;
            let n = count d (plan_with sr_of_fu) in
            if n < !current then current := n else sr_of_fu.(f) <- saved
          end)
        candidates
    end
  done;
  plan_with sr_of_fu
