open Hft_cdfg
open Hft_util

let registered_kind g v =
  match (Graph.var g v).Graph.v_kind with
  | Graph.V_const _ -> false
  | Graph.V_input | Graph.V_output | Graph.V_intermediate -> true

let rep_of info v = Union_find.find info.Lifetime.merged v

(* Per instance: class representatives appearing as args / results. *)
let instance_io g (binding : Hft_hls.Fu_bind.t) info =
  Array.map
    (fun (_, ops) ->
      let args =
        List.concat_map
          (fun o ->
            Array.to_list (Graph.op g o).Graph.o_args
            |> List.filter (registered_kind g)
            |> List.map (rep_of info))
          ops
        |> List.sort_uniq compare
      in
      let results =
        List.map (fun o -> rep_of info (Graph.op g o).Graph.o_result) ops
        |> List.sort_uniq compare
      in
      (args, results))
    binding.Hft_hls.Fu_bind.instances

(* A class is "doomed" on an instance when it contains both an argument
   and a result of that instance: whatever register holds it is
   self-adjacent there regardless of the assignment (the TFB/XTFB
   architectures, not assignment, are the cure for those). *)
let doomed_table io =
  Array.map
    (fun (args, results) -> List.filter (fun r -> List.mem r results) args)
    io

let self_adjacency_conflicts g (binding : Hft_hls.Fu_bind.t) info =
  let io = instance_io g binding info in
  let doomed = doomed_table io in
  let pairs = ref [] in
  Array.iteri
    (fun i (args, results) ->
      List.iter
        (fun a ->
          List.iter
            (fun r ->
              if a <> r
                 (* Sharing two classes both doomed on this instance
                    costs nothing extra; keep them packable. *)
                 && not (List.mem a doomed.(i) && List.mem r doomed.(i))
              then pairs := (a, r) :: !pairs)
            results)
        args)
    io;
  List.sort_uniq compare !pairs

let bist_aware g _sched binding info =
  let io = instance_io g binding info in
  let doomed = doomed_table io in
  let extra_conflicts = self_adjacency_conflicts g binding info in
  (* Visit doomed classes first, instance by instance, and pack each
     instance's doomed classes into as few registers as possible. *)
  let doomed_order = Array.to_list doomed |> List.concat in
  let doomed_home = Hashtbl.create 8 in (* instance-mate packing *)
  let instance_of_rep rep =
    let found = ref [] in
    Array.iteri
      (fun i reps -> if List.mem rep reps then found := i :: !found)
      doomed;
    !found
  in
  (* The allocator numbers fresh registers sequentially, one per [None]
     returned, so mirroring its counter lets later doomed classes pack
     into homes opened fresh. *)
  let next_fresh = ref 0 in
  let prefer rep ~feasible =
    let mates = instance_of_rep rep in
    let packed =
      List.filter_map (fun i -> Hashtbl.find_opt doomed_home i) mates
      |> List.filter (fun r -> List.mem r feasible)
    in
    let choice =
      match packed with
      | r :: _ -> Some r
      | [] -> (match feasible with r :: _ -> Some r | [] -> None)
    in
    let home =
      match choice with
      | Some r -> r
      | None ->
        let r = !next_fresh in
        incr next_fresh;
        r
    in
    List.iter (fun i -> Hashtbl.replace doomed_home i home) mates;
    choice
  in
  Hft_hls.Reg_alloc.color ~extra_conflicts ~order:doomed_order ~prefer g info

let self_adjacent_count g (binding : Hft_hls.Fu_bind.t)
    (alloc : Hft_hls.Reg_alloc.t) =
  let reg_of v = alloc.Hft_hls.Reg_alloc.reg_of_var.(v) in
  let self_adjacent = Hashtbl.create 8 in
  Array.iter
    (fun (_, ops) ->
      let in_regs =
        List.concat_map
          (fun o ->
            Array.to_list (Graph.op g o).Graph.o_args
            |> List.filter_map (fun a ->
                   let r = reg_of a in
                   if r >= 0 then Some r else None))
          ops
      in
      let out_regs =
        List.filter_map
          (fun o ->
            let r = reg_of (Graph.op g o).Graph.o_result in
            if r >= 0 then Some r else None)
          ops
      in
      List.iter
        (fun r -> if List.mem r in_regs then Hashtbl.replace self_adjacent r ())
        out_regs)
    binding.Hft_hls.Fu_bind.instances;
  Hashtbl.length self_adjacent
