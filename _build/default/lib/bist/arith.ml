open Hft_cdfg

type gen = { width : int; increment : int; mutable s : int }

let create ~width ~seed ~increment =
  let mask = (1 lsl width) - 1 in
  { width; increment = increment lor 1 (* odd: full period *) land mask;
    s = seed land mask }

let next g =
  g.s <- (g.s + g.increment) land ((1 lsl g.width) - 1);
  g.s

let pattern_stream g n = List.init n (fun _ -> next g)

let subspace_coverage ~k pairs =
  if k <= 0 then invalid_arg "Arith.subspace_coverage";
  let mask = (1 lsl k) - 1 in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (a, b) -> Hashtbl.replace seen (a land mask, b land mask) ())
    pairs;
  float_of_int (Hashtbl.length seen) /. float_of_int (1 lsl (2 * k))

(* Run the behaviour [samples] times on accumulator-driven inputs and
   collect each op's operand pairs. *)
let op_streams ~width ~samples ~seed g =
  let inputs = Graph.inputs g in
  let gens =
    List.mapi
      (fun i v ->
        (v.Graph.v_name, create ~width ~seed:(seed + (i * 97)) ~increment:(2 * i + 3)))
      inputs
  in
  let streams = Array.make (Graph.n_ops g) [] in
  for _ = 1 to samples do
    let ins = List.map (fun (n, gen) -> (n, next gen)) gens in
    let values = Graph.run ~width g ~inputs:ins () in
    Array.iteri
      (fun o { Graph.o_args; _ } ->
        let arg i =
          if Array.length o_args > i then List.assoc o_args.(i) values else 0
        in
        streams.(o) <- (arg 0, arg 1) :: streams.(o))
      (Array.init (Graph.n_ops g) (Graph.op g))
  done;
  Array.to_list (Array.mapi (fun o s -> (o, List.rev s)) streams)

let coverage_bind ~resources ~width ~samples ~seed g sched =
  let streams = op_streams ~width ~samples ~seed g in
  let k = min 3 width in
  let choose (partial : Hft_hls.Fu_bind.t) ~op ~candidates ~can_open =
    let my = List.assoc op streams in
    let gain inst =
      let _, members = partial.Hft_hls.Fu_bind.instances.(inst) in
      let union =
        List.concat_map (fun o -> List.assoc o streams) members @ my
      in
      subspace_coverage ~k union
    in
    let best =
      List.fold_left
        (fun acc inst ->
          match acc with
          | None -> Some (inst, gain inst)
          | Some (_, s) when gain inst > s -> Some (inst, gain inst)
          | Some _ -> acc)
        None candidates
    in
    match best with
    | Some (inst, s) ->
      (* Opening a fresh unit keeps this op's own coverage undiluted;
         prefer it when allowed and the shared coverage is poor. *)
      let own = subspace_coverage ~k my in
      if can_open && s < own *. 0.75 then `Open else `Use inst
    | None -> if can_open then `Open else `Use (List.hd candidates)
  in
  Hft_hls.Fu_bind.bind ~resources ~choose g sched

let compact ~width stream =
  let mask = (1 lsl width) - 1 in
  List.fold_left
    (fun acc word ->
      (* rotate-carry addition: the carry out re-enters at the LSB *)
      let sum = acc + (word land mask) in
      (sum + (sum lsr width)) land mask)
    0 stream
