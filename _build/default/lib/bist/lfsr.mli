(** Linear-feedback shift registers for pseudorandom test pattern
    generation (TPGRs).

    Fibonacci form over a primitive polynomial, so any nonzero seed
    yields the maximal period [2^width - 1]. *)

type t

(** [create ~width ~seed] — [2 <= width <= 24]; a zero seed is replaced
    by 1 (the all-zero state is the lock-up state). *)
val create : width:int -> seed:int -> t

val width : t -> int

(** Current state (a [width]-bit word). *)
val state : t -> int

(** Advance one step and return the new state. *)
val next : t -> int

(** [bits t n] — next [n] output bits (LSB stream). *)
val bits : t -> int -> bool list

(** Period of the generator starting from its current state (walks the
    cycle; intended for tests at small widths). *)
val period : t -> int

(** Primitive-polynomial tap positions (1-based) for a width. *)
val taps : int -> int list
