(** TPGR/SR sharing-aware register assignment
    (Parulkar–Gupta–Breuer DAC'95, survey §5.1).

    After scheduling and module binding are fixed, register assignment
    still decides which registers end up as module inputs and outputs.
    Steering variables used by the same unit into the same registers
    maximises TPGR/SR sharing across logic blocks, so fewer registers
    need test hardware at all. *)

open Hft_cdfg

(** Sharing-aware colouring: prefers the feasible register already
    holding operands (or results) of the same functional unit. *)
val sharing_aware :
  Graph.t -> Schedule.t -> Hft_hls.Fu_bind.t -> Lifetime.info ->
  Hft_hls.Reg_alloc.t

(** Number of registers requiring any test role (TPGR, SR, BILBO or
    CBILBO) in the generated data path — what sharing minimises. *)
val test_register_count : Hft_rtl.Datapath.t -> int
