(** Test-session scheduling (Harris–Orailoğlu DAC'94, survey §5.2).

    Each logic block's BIST test is a {e test path}: its TPGR registers,
    the unit, and its SR.  Two paths conflict when they share any
    resource (register or unit — a register cannot generate patterns
    for one block and capture responses for another in the same
    session).  Colouring the conflict graph gives the number of test
    sessions; fewer sessions = higher test concurrency = shorter test
    time. *)

type path = {
  fu : int;
  tpgrs : int list;
  sr : int;
}

val paths : Hft_rtl.Datapath.t -> Bilbo.plan -> path list

(** Conflict: shared register (in any role) between two paths. *)
val conflict : path -> path -> bool

(** Greedy colouring; returns (session index per path, session count). *)
val schedule : path list -> int list * int

(** One-call: number of sessions a data path needs under a plan. *)
val count : Hft_rtl.Datapath.t -> Bilbo.plan -> int

(** Conflict-aware SR re-selection (the Harris–Orailoğlu objective):
    for each block, try every output register not among its inputs as
    the SR and keep the combination minimising the session count
    (greedy, one block at a time).  Returns the improved plan. *)
val optimize : Hft_rtl.Datapath.t -> Bilbo.plan -> Bilbo.plan

(** Concurrency-aware register assignment: variables are kept apart
    unless they touch exactly the same set of unit instances, so each
    register belongs to one block's test path and the paths stay
    resource-disjoint.  Trades registers for test concurrency — the
    Harris–Orailoğlu synthesis objective at the assignment level. *)
val concurrency_aware_alloc :
  Hft_cdfg.Graph.t -> Hft_hls.Fu_bind.t -> Hft_cdfg.Lifetime.info ->
  Hft_hls.Reg_alloc.t
