lib/bist/run.ml: Arith Array Expand Fault Fsim Hft_gate Hft_rtl Hft_util Lfsr List Misr Netlist Sim
