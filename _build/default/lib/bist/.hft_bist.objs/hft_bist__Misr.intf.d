lib/bist/misr.mli:
