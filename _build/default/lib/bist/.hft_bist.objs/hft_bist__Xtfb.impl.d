lib/bist/xtfb.ml: Array Graph Hft_cdfg Hft_hls Hft_rtl Hft_util Lifetime List Op
