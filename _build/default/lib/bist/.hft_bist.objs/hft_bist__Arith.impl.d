lib/bist/arith.ml: Array Graph Hashtbl Hft_cdfg Hft_hls List
