lib/bist/arith.mli: Hft_cdfg Hft_hls
