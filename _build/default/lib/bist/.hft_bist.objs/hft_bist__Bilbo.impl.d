lib/bist/bilbo.ml: Area Array Datapath Hft_rtl List
