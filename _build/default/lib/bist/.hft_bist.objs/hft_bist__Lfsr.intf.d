lib/bist/lfsr.mli:
