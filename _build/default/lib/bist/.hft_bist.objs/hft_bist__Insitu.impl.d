lib/bist/insitu.ml: Array Bilbo Expand Hft_gate Hft_rtl Hft_util Lfsr List Netlist Printf Sim
