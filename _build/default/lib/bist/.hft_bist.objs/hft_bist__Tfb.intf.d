lib/bist/tfb.mli: Graph Hft_cdfg Lifetime Op Schedule
