lib/bist/run.mli: Hft_cdfg Hft_rtl
