lib/bist/xtfb.mli: Graph Hft_cdfg Op Schedule
