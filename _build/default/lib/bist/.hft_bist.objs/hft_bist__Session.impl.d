lib/bist/session.ml: Array Bilbo Datapath Graph Hft_cdfg Hft_hls Hft_rtl List
