lib/bist/bilbo.mli: Hft_rtl
