lib/bist/insitu.mli: Bilbo Expand Fault Hft_gate Hft_rtl Netlist
