lib/bist/share.mli: Graph Hft_cdfg Hft_hls Hft_rtl Lifetime Schedule
