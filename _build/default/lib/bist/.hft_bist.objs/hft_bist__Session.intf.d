lib/bist/session.mli: Bilbo Hft_cdfg Hft_hls Hft_rtl
