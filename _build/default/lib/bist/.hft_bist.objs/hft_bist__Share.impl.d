lib/bist/share.ml: Array Bilbo Graph Hashtbl Hft_cdfg Hft_hls Lifetime List
