lib/bist/reg_assign.mli: Graph Hft_cdfg Hft_hls Lifetime Schedule
