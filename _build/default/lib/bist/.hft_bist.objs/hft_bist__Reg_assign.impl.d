lib/bist/reg_assign.ml: Array Graph Hashtbl Hft_cdfg Hft_hls Hft_util Lifetime List Union_find
