open Hft_cdfg

let sharing_aware g _sched (binding : Hft_hls.Fu_bind.t) info =
  (* For every variable, the FU instances that consume / produce it. *)
  let consumers_fu = Hashtbl.create 32 in
  let producer_fu = Hashtbl.create 32 in
  Array.iteri
    (fun o inst ->
      if inst >= 0 then begin
        let op = Graph.op g o in
        Array.iter
          (fun a ->
            let cur = try Hashtbl.find consumers_fu a with Not_found -> [] in
            Hashtbl.replace consumers_fu a (inst :: cur))
          op.Graph.o_args;
        Hashtbl.replace producer_fu op.Graph.o_result inst
      end)
    binding.Hft_hls.Fu_bind.fu_of_op;
  (* Track, as colouring proceeds, which FUs each register feeds or
     latches. *)
  let reg_feeds : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let reg_latches : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let fus_of tbl v =
    match Hashtbl.find_opt tbl v with Some l -> l | None -> []
  in
  let class_fus info rep tbl =
    List.concat_map (fun v -> fus_of tbl v) (Lifetime.class_members info rep)
  in
  let record rep reg =
    let feeds = class_fus info rep consumers_fu in
    let latches =
      List.concat_map
        (fun v ->
          match Hashtbl.find_opt producer_fu v with
          | Some f -> [ f ]
          | None -> [])
        (Lifetime.class_members info rep)
    in
    Hashtbl.replace reg_feeds reg
      (List.sort_uniq compare (feeds @ fus_of reg_feeds reg));
    Hashtbl.replace reg_latches reg
      (List.sort_uniq compare (latches @ fus_of reg_latches reg))
  in
  let choice = Hashtbl.create 16 in
  let prefer rep ~feasible =
    let my_feeds = List.sort_uniq compare (class_fus info rep consumers_fu) in
    let my_latch =
      List.filter_map
        (fun v -> Hashtbl.find_opt producer_fu v)
        (Lifetime.class_members info rep)
      |> List.sort_uniq compare
    in
    let score reg =
      let overlap a b = List.length (List.filter (fun x -> List.mem x b) a) in
      overlap my_feeds (fus_of reg_feeds reg)
      + overlap my_latch (fus_of reg_latches reg)
    in
    let best =
      List.fold_left
        (fun acc reg ->
          match acc with
          | None -> Some (reg, score reg)
          | Some (_, s) when score reg > s -> Some (reg, score reg)
          | Some _ -> acc)
        None feasible
    in
    match best with
    | Some (reg, s) when s > 0 ->
      Hashtbl.replace choice rep reg;
      record rep reg;
      Some reg
    | Some (reg, _) ->
      (* No sharing gain: still reuse the first feasible register to
         keep the register count minimal. *)
      Hashtbl.replace choice rep reg;
      record rep reg;
      Some reg
    | None -> None
  in
  let alloc = Hft_hls.Reg_alloc.color ~prefer g info in
  (* Record newly opened registers too (prefer returned None). *)
  Array.iteri
    (fun v reg -> if reg >= 0 then record v reg)
    alloc.Hft_hls.Reg_alloc.reg_of_var;
  alloc

let test_register_count d =
  let p = Bilbo.plan d in
  Array.fold_left
    (fun acc role -> if role = Bilbo.R_none then acc else acc + 1)
    0 p.Bilbo.roles
