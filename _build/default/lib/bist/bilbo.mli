(** BILBO-style BIST planning on a data path (Könemann–Mucha–Zwiehoff,
    survey §5).

    Every functional unit is a pseudorandom logic block: its input
    registers must act as TPGRs and one output register as an SR.  A
    register required in both roles {e for the same block} needs a
    concurrent BILBO (CBILBO); one required in different roles for
    different blocks can be an ordinary BILBO (one role per session). *)

type role = R_none | R_tpgr | R_sr | R_bilbo | R_cbilbo

type plan = {
  roles : role array;             (** per register id *)
  sr_of_fu : int array;           (** per fu id: chosen SR register *)
  n_tpgr : int;
  n_sr : int;
  n_bilbo : int;
  n_cbilbo : int;
}

(** Compute a role plan.  SR choice per block prefers an output
    register that is not among the block's inputs; when every output is
    also an input the block forces a CBILBO (the exact condition of
    Parulkar–Gupta–Breuer). *)
val plan : Hft_rtl.Datapath.t -> plan

(** Write the plan's roles into the data path's register kinds (for
    area accounting). *)
val annotate : Hft_rtl.Datapath.t -> plan -> unit

(** Area overhead of the plan versus all-plain registers, under the
    default cost table. *)
val area_overhead : Hft_rtl.Datapath.t -> plan -> float

val role_to_string : role -> string
