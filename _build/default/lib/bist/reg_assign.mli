(** BIST-aware register assignment (Avra ITC'91, survey §5.1).

    Conventional register allocation merrily assigns a module's input
    variable and output variable to one register, creating self-adjacent
    registers that must become expensive CBILBOs.  This assignment adds
    conflict edges between variables that are an input and an output of
    the same bound functional unit, steering the colouring away from
    self-adjacency at (usually) no register-count cost. *)

open Hft_cdfg

(** Extra conflicts: (arg var, result var) pairs across all op pairs
    sharing a functional-unit instance.  Pairs inside a forced merge
    class (loop-carried state) are unavoidable and skipped. *)
val self_adjacency_conflicts :
  Graph.t -> Hft_hls.Fu_bind.t -> Lifetime.info -> (int * int) list

(** Colouring with those conflicts. *)
val bist_aware :
  Graph.t -> Schedule.t -> Hft_hls.Fu_bind.t -> Lifetime.info ->
  Hft_hls.Reg_alloc.t

(** Number of self-adjacent registers a (graph, binding, allocation)
    triple will produce — the quantity [bist_aware] minimises. *)
val self_adjacent_count :
  Graph.t -> Hft_hls.Fu_bind.t -> Hft_hls.Reg_alloc.t -> int
