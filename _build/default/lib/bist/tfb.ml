open Hft_cdfg

type result = {
  tfb_of_op : int array;
  n_tfbs : int;
  n_test_registers : int;
  classes : Op.fu_class array;
}

let compatible g sched info o1 o2 =
  let op1 = Graph.op g o1 and op2 = Graph.op g o2 in
  let v1 = op1.Graph.o_result and v2 = op2.Graph.o_result in
  Op.fu_class op1.Graph.o_kind = Op.fu_class op2.Graph.o_kind
  && Op.fu_class op1.Graph.o_kind <> None
  && (not (Hft_hls.Fu_bind.ops_conflict sched o1 o2))
  && (not (Hft_util.Interval.overlaps info.Lifetime.intervals.(v1)
             info.Lifetime.intervals.(v2)))
  (* cross-condition: v1 must not feed o2 and v2 must not feed o1 *)
  && (not (Array.exists (fun a -> a = v1) op2.Graph.o_args))
  && not (Array.exists (fun a -> a = v2) op1.Graph.o_args)

let map g sched =
  let info = Lifetime.compute g sched in
  let n = Graph.n_ops g in
  let tfb_of_op = Array.make n (-1) in
  let members : int list ref list ref = ref [] in
  let classes = ref [] in
  let n_tfbs = ref 0 in
  for o = 0 to n - 1 do
    match Op.fu_class (Graph.op g o).Graph.o_kind with
    | None -> () (* moves need no TFB *)
    | Some cl ->
      (* First fit: a TFB whose every member is compatible. *)
      let rec try_tfbs idx = function
        | [] ->
          tfb_of_op.(o) <- !n_tfbs;
          members := !members @ [ ref [ o ] ];
          classes := !classes @ [ cl ];
          incr n_tfbs
        | m :: tl ->
          if List.nth !classes idx = cl
             && List.for_all (fun o' -> compatible g sched info o o') !m
          then begin
            tfb_of_op.(o) <- idx;
            m := o :: !m
          end
          else try_tfbs (idx + 1) tl
      in
      try_tfbs 0 !members
  done;
  {
    tfb_of_op;
    n_tfbs = !n_tfbs;
    n_test_registers = !n_tfbs;
    classes = Array.of_list !classes;
  }

let self_adjacency_free g r =
  let ok = ref true in
  Array.iteri
    (fun o tfb ->
      if tfb >= 0 then begin
        let v = (Graph.op g o).Graph.o_result in
        Array.iteri
          (fun o' tfb' ->
            if tfb' = tfb
               && Array.exists (fun a -> a = v) (Graph.op g o').Graph.o_args
            then ok := false)
          r.tfb_of_op
      end)
    r.tfb_of_op;
  !ok

let area ~width r =
  let table = Hft_rtl.Area.default in
  let w = float_of_int width in
  let per_tfb cl =
    let alu =
      match cl with
      | Op.Alu -> table.Hft_rtl.Area.alu_bit *. w
      | Op.Multiplier -> table.Hft_rtl.Area.mul_bit *. w *. w
      | Op.Comparator -> table.Hft_rtl.Area.cmp_bit *. w
      | Op.Logic_unit -> table.Hft_rtl.Area.logic_bit *. w
      | Op.Shifter -> table.Hft_rtl.Area.shift_bit *. w
    in
    alu
    +. (table.Hft_rtl.Area.bilbo_bit *. w)
    +. (2.0 *. table.Hft_rtl.Area.mux_leg_bit *. w)
  in
  Array.fold_left (fun acc cl -> acc +. per_tfb cl) 0.0 r.classes
