(** End-to-end pseudorandom BIST campaigns.

    For each logic block of a data path (a functional unit together
    with its op kinds), run the pattern source against the block's gate
    expansion, fault-simulate, and collect the block's coverage curve
    and MISR signature.  This is the measurement harness behind the
    BIST experiment tables (E6/E7/E9). *)

type source = Lfsr_source | Arith_source

type block_report = {
  fu : int;
  n_gates : int;
  n_faults : int;
  coverage : (int * float) list;  (** (patterns, cumulative coverage) *)
  signature : int;
}

type report = {
  blocks : block_report list;
  total_coverage : float;         (** fault-weighted at the last checkpoint *)
}

val run :
  ?checkpoints:int list -> source:source -> seed:int ->
  Hft_rtl.Datapath.t -> report

(** Same machinery on one standalone block (kind list) — used to compare
    LFSR vs accumulator sources directly. *)
val run_block :
  ?checkpoints:int list -> source:source -> seed:int -> width:int ->
  Hft_cdfg.Op.kind list -> block_report
