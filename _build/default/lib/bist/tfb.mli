(** Test-function-block data-path synthesis
    (Papachristou–Chiu–Harmanani DAC'91, survey §5.1).

    The building block (TFB) is an ALU with an input multiplexer pair
    and a single test register at its output.  Mapping unit: the
    {e action} [(v, o(v))] — a variable together with the operation
    producing it.  Two actions merge into one TFB when (i) their
    variables' lifetimes are disjoint, and (ii) neither variable feeds
    the other's operation (so the TFB's output register never becomes
    its own input — structurally no self-adjacent register, hence no
    CBILBO ever). *)

open Hft_cdfg

type result = {
  tfb_of_op : int array;       (** op id -> TFB index *)
  n_tfbs : int;
  n_test_registers : int;      (** one BILBO per TFB *)
  classes : Op.fu_class array; (** per TFB *)
}

val compatible : Graph.t -> Schedule.t -> Lifetime.info -> int -> int -> bool

(** Greedy prime-sequence covering (first-fit over compatible sets). *)
val map : Graph.t -> Schedule.t -> result

(** Structural guarantee check: no TFB's output variable is consumed by
    an operation of the same TFB. *)
val self_adjacency_free : Graph.t -> result -> bool

(** Unit-cost area of the TFB implementation (ALUs + BILBO registers +
    2 muxes per TFB), for comparison rows. *)
val area : width:int -> result -> float
