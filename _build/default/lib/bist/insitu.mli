(** In-situ BIST: functional registers structurally reconfigured as
    pattern generators and signature registers (survey §5).

    {!insert} rewires the gate-level expansion so that, with
    [bist_mode] high,

    - TPGR-role registers become internal-XOR LFSRs (ignoring their
      functional D inputs),
    - SR/CBILBO-role registers become MISRs absorbing their functional
      D inputs (a CBILBO's MISR state stream doubles as its pattern
      stream, which is exactly why the cell is expensive),
    - BILBO-role registers take either behaviour, chosen by a per-
      register configuration pin,

    while [bist_mode] low leaves the circuit functionally untouched.

    {!run_session} then holds one control-step configuration (routing
    one logic block), clocks the circuit and reads the block's
    signature; {!campaign} does this for every block against every
    sampled fault — actual built-in self-test, simulated
    cycle-accurately. *)

open Hft_gate

type t = {
  netlist : Netlist.t;
  expansion : Expand.t;
  bist_mode : int;                    (** PI *)
  cfg_pins : (int * int) list;        (** (register, pin): 1 = TPGR role *)
  roles : Bilbo.role array;           (** per register *)
}

val insert : Expand.t -> Hft_rtl.Datapath.t -> Bilbo.plan -> t

(** Signature of [sr_reg] after clocking [cycles] with the control
    configuration of the step in which [fu] executes; TPGRs are seeded
    deterministically from [seed].  [fault] optionally injects a stuck-at
    fault for the whole session. *)
val run_session :
  ?fault:Fault.t -> ?step:int -> t -> Hft_rtl.Datapath.t -> fu:int ->
  sr_reg:int -> cycles:int -> seed:int -> int

type campaign_report = {
  n_faults : int;
  detected : int;
  sessions : (int * int) list;        (** (fu, golden signature) *)
}

(** Full self-test: one session per (execution step, unit) pair; a
    fault counts as detected when any session's signature deviates from
    gold. *)
val campaign :
  t -> Hft_rtl.Datapath.t -> Bilbo.plan -> faults:Fault.t list ->
  cycles:int -> seed:int -> campaign_report

val coverage : campaign_report -> float
