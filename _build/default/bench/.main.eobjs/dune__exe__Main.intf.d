bench/main.mli:
