(* Quickstart: describe a behaviour, synthesise it three ways, compare
   the testability reports.

     dune exec examples/quickstart.exe *)

open Hft_cdfg
open Hft_core

let () =
  (* A small IIR section: y = b0*x + w1; w1' = b1*x - a1*y. *)
  let b = Builder.create "quickstart" in
  let x = Builder.input b "x" in
  let b0 = Builder.input b "b0" in
  let b1 = Builder.input b "b1" in
  let a1 = Builder.input b "a1" in
  let w1 = Builder.state b "w1" in
  let m0 = Builder.binop b Op.Mul b0 x ~name:"m0" in
  let y = Builder.binop b Op.Add m0 w1 ~name:"y" in
  let m1 = Builder.binop b Op.Mul b1 x ~name:"m1" in
  let m2 = Builder.binop b Op.Mul a1 y ~name:"m2" in
  let w1n = Builder.binop b Op.Sub m1 m2 ~name:"w1n" in
  Builder.mark_output b y;
  Builder.feedback b ~src:w1n ~dst:w1;
  let g = Builder.finish b in

  Printf.printf "behaviour: %d ops, %d variables, %d state register(s)\n"
    (Graph.n_ops g) (Graph.n_vars g)
    (List.length (Graph.state_vars g));

  (* One iteration of the behaviour, as a sanity check. *)
  let r =
    Graph.run ~width:16 g
      ~inputs:[ ("x", 3); ("b0", 2); ("b1", 1); ("a1", 1) ]
      ~state:[ ("w1", 10) ] ()
  in
  Printf.printf "y(x=3, w1=10) = %d\n\n" (Graph.value_of g r "y");

  (* Three synthesis flows, one table. *)
  let rows =
    List.map
      (fun r -> Flow.report_row r.Flow.report)
      [ Flow.synthesize_conventional ~width:8 g;
        Flow.synthesize_for_partial_scan ~width:8 g;
        Flow.synthesize_for_bist ~width:8 g ]
  in
  Hft_util.Pretty.print
    ~title:"synthesis-for-testability comparison"
    ~header:Flow.report_header rows;

  (* The partial-scan flow really is loop-free: show the S-graph. *)
  let ps = Flow.synthesize_for_partial_scan ~width:8 g in
  let s = Hft_rtl.Sgraph.of_datapath ps.Flow.datapath in
  Printf.printf
    "\npartial-scan data path: %d registers (%d scanned), %d non-self loop(s) left\n"
    (Hft_rtl.Datapath.n_regs ps.Flow.datapath)
    ps.Flow.report.Flow.n_scan_registers
    (List.length (Hft_rtl.Sgraph.nontrivial_loops s))
