examples/bist_datapath.mli:
