examples/boundary_scan.ml: Bench_suite Expand Hft_cdfg Hft_gate Hft_hls Hft_scan List Netlist Op Printf String
