examples/fig1_loops.ml: Array Fig1_exp Graph Hft_cdfg Hft_core Hft_rtl List Op Paper_fig1 Printf Sim_sched_assign String
