examples/bist_datapath.ml: Array Bench_suite Hft_bist Hft_cdfg Hft_hls Hft_rtl Hft_util Lifetime List Op Printf
