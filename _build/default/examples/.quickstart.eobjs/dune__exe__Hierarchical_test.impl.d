examples/hierarchical_test.ml: Array Bench_suite Graph Hft_cdfg Hft_core Hft_gate Hft_hls Hier_test List Op Printf
