examples/quickstart.mli:
