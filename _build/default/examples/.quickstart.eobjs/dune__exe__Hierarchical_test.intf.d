examples/hierarchical_test.mli:
