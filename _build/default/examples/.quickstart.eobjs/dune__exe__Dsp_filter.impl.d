examples/dsp_filter.ml: Array Bench_suite Flow Graph Hft_cdfg Hft_core Hft_gate Hft_hls Hft_rtl Hft_scan Hft_util List Loops Op Printf Scan_vars String
