examples/quickstart.ml: Builder Flow Graph Hft_cdfg Hft_core Hft_rtl Hft_util List Op Printf
