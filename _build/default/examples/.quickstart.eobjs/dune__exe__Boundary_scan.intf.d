examples/boundary_scan.mli:
