examples/fig1_loops.mli:
