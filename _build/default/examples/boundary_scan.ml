(* Boundary scan around a synthesised data path: chain integrity,
   functional transparency, and an EXTEST round trip driven entirely
   from the boundary register.

     dune exec examples/boundary_scan.exe *)

open Hft_cdfg
open Hft_gate

let () =
  let g = Bench_suite.tseng () in
  let d =
    Hft_hls.Datapath_gen.conventional ~width:4
      ~resources:
        [ (Op.Multiplier, 1); (Op.Alu, 1); (Op.Comparator, 1);
          (Op.Logic_unit, 1) ]
      g
  in
  let ex = Expand.of_datapath d in
  Printf.printf "core: %s\n" (Netlist.stats ex.Expand.netlist);
  let t = Hft_scan.Boundary.insert ex.Expand.netlist in
  Printf.printf
    "boundary chain: %d input cells + %d output cells\n"
    (List.length t.Hft_scan.Boundary.input_cells)
    (List.length t.Hft_scan.Boundary.output_cells);
  Printf.printf "shift integrity: %b\n"
    (Hft_scan.Boundary.verify_shift t);

  (* EXTEST: drive a pattern from the boundary register and read the
     captured response back through the chain. *)
  let n_in = List.length t.Hft_scan.Boundary.input_cells in
  let pattern = List.init n_in (fun i -> i mod 2 = 0) in
  let response = Hft_scan.Boundary.extest_roundtrip t ~inputs:pattern in
  Printf.printf "EXTEST drive  : %s\n"
    (String.concat ""
       (List.map (fun b -> if b then "1" else "0") pattern));
  Printf.printf "captured resp : %s\n"
    (String.concat ""
       (List.map (fun b -> if b then "1" else "0") response));

  (* A combinational core makes the EXTEST capture easy to read:
     y0 = a & b, y1 = a ^ b. *)
  let nl = Netlist.create ~name:"comb_core" () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Pi [||] in
  let g1 = Netlist.add nl Netlist.And [| a; b |] in
  let g2 = Netlist.add nl Netlist.Xor [| a; b |] in
  let _ = Netlist.add nl ~name:"y0" Netlist.Po [| g1 |] in
  let _ = Netlist.add nl ~name:"y1" Netlist.Po [| g2 |] in
  let t2 = Hft_scan.Boundary.insert nl in
  print_endline "\ncombinational core (y0 = a&b, y1 = a^b):";
  List.iter
    (fun (av, bv) ->
      match Hft_scan.Boundary.extest_roundtrip t2 ~inputs:[ av; bv ] with
      | [ y0; y1 ] ->
        Printf.printf "  EXTEST a=%b b=%b -> y0=%b y1=%b\n" av bv y0 y1
      | _ -> ())
    [ (false, false); (false, true); (true, false); (true, true) ]
