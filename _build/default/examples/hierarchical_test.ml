(* Hierarchical test generation: module test environments and the reuse
   of precomputed module tests at the system level.

     dune exec examples/hierarchical_test.exe *)

open Hft_cdfg
open Hft_core

let resources = [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1) ]

let () =
  let g = Bench_suite.diffeq () in
  let width = 8 in
  let sched = Hft_hls.List_sched.schedule g ~resources in
  let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in

  (* Which operations have test environments? *)
  print_endline "test environments per operation:";
  Array.iter
    (fun { Graph.o_id; o_kind; o_result; _ } ->
      match Hier_test.environment ~width g o_id with
      | Some env ->
        Printf.printf "  op %2d (%s -> %-4s): observe at %-5s via %d hop(s)\n"
          o_id (Op.to_string o_kind)
          (Graph.var g o_result).Graph.v_name
          env.Hier_test.observe_output
          (List.length env.Hier_test.chain)
      | None ->
        Printf.printf "  op %2d (%s -> %-4s): no environment\n" o_id
          (Op.to_string o_kind)
          (Graph.var g o_result).Graph.v_name)
    (Array.init (Graph.n_ops g) (Graph.op g));

  let covered, uncovered = Hier_test.covered_instances ~width g binding in
  Printf.printf "\nfunctional units with an environment: %d of %d\n"
    (List.length covered)
    (List.length covered + List.length uncovered);

  (* Repair coverage with test points where needed. *)
  let g', points = Hier_test.ensure_coverage ~width g binding in
  let covered', _ = Hier_test.covered_instances ~width g' binding in
  Printf.printf "after inserting %d test point(s): %d covered\n" points
    (List.length covered');

  (* Generate module tests with PODEM on the multiplier block and
     translate them through an environment. *)
  (match Graph.producer g (Graph.var_by_name g "m6") with
   | None -> ()
   | Some o ->
     (match Hier_test.environment ~width g o.Graph.o_id with
      | None -> print_endline "m6 has no environment"
      | Some env ->
        let blk = Hft_gate.Expand.comb_block ~width:4 [ Op.Mul ] in
        let nl = blk.Hft_gate.Expand.b_netlist in
        let faults = Hft_gate.Fault.collapsed nl in
        let module_tests =
          List.filter_map
            (fun f ->
              match Hft_gate.Podem.generate_comb nl ~fault:f with
              | Hft_gate.Podem.Test assign, _ ->
                let word bits =
                  Array.to_list bits
                  |> List.mapi (fun i pi ->
                         match List.assoc_opt pi assign with
                         | Some true -> 1 lsl i
                         | Some false | None -> 0)
                  |> List.fold_left ( + ) 0
                in
                Some (word blk.Hft_gate.Expand.b_a, word blk.Hft_gate.Expand.b_b)
              | Hft_gate.Podem.Untestable, _ | Hft_gate.Podem.Aborted, _ -> None)
            faults
          |> List.sort_uniq compare
        in
        Printf.printf
          "\nmodule ATPG on the 4-bit multiplier: %d faults, %d distinct test vectors\n"
          (List.length faults) (List.length module_tests);
        let c = Hier_test.compose ~width g env module_tests in
        Printf.printf
          "translated through m6's environment: %d vectors, %d confirmed at the primary output\n"
          c.Hier_test.vectors_translated c.Hier_test.vectors_confirmed))
