(* The paper's Figure 1, executed: the same five-addition CDFG under a
   3-step / 2-adder constraint, bound two ways.

     dune exec examples/fig1_loops.exe *)

open Hft_cdfg
open Hft_core

let () =
  let g = Paper_fig1.graph () in
  print_endline "CDFG of Figure 1 (two addition chains joining in +5):";
  List.iter
    (fun (name, o) ->
      let op = Graph.op g o in
      Printf.printf "  %s: %s = %s + %s\n" name
        (Graph.var g op.Graph.o_result).Graph.v_name
        (Graph.var g op.Graph.o_args.(0)).Graph.v_name
        (Graph.var g op.Graph.o_args.(1)).Graph.v_name)
    (Paper_fig1.op_ids ());
  print_newline ();
  print_string (Fig1_exp.render ());
  print_newline ();

  (* Walk through alternative (b) in detail. *)
  let _, d = Fig1_exp.datapath Fig1_exp.B in
  print_endline "data path of alternative (b):";
  print_string (Hft_rtl.Datapath.pp d);
  let o = Fig1_exp.analyze Fig1_exp.B in
  List.iter
    (fun loop ->
      Printf.printf "assignment loop: %s\n"
        (String.concat " -> "
           (List.map
              (fun r -> d.Hft_rtl.Datapath.regs.(r).Hft_rtl.Datapath.r_name)
              (loop @ [ List.hd loop ]))))
    o.Fig1_exp.nontrivial_loops;

  (* And confirm the loop-aware binder reproduces alternative (c)'s
     quality on its own. *)
  let r = Sim_sched_assign.run ~resources:[ (Op.Alu, 2) ] g None in
  Printf.printf
    "\nloop-aware simultaneous scheduling+binding: %d assignment loop(s)\n"
    r.Sim_sched_assign.est_assignment_loops
