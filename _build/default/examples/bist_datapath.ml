(* Self-testable data-path synthesis: the differential-equation solver
   under four BIST architectures.

     dune exec examples/bist_datapath.exe *)

open Hft_cdfg

let resources =
  [ (Op.Multiplier, 2); (Op.Alu, 1); (Op.Comparator, 1) ]

let () =
  let g = Bench_suite.diffeq () in
  let width = 8 in
  let sched = Hft_hls.List_sched.schedule g ~resources in
  let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
  let info = Lifetime.compute g sched in

  (* 1. Conventional assignment + BILBO planning. *)
  let conv_alloc = Hft_hls.Reg_alloc.left_edge g info in
  let d_conv = Hft_hls.Datapath_gen.generate ~width g sched binding conv_alloc in
  let p_conv = Hft_bist.Bilbo.plan d_conv in

  (* 2. BIST-aware assignment (Avra). *)
  let aware = Hft_bist.Reg_assign.bist_aware g sched binding info in
  let d_aware = Hft_hls.Datapath_gen.generate ~width g sched binding aware in
  let p_aware = Hft_bist.Bilbo.plan d_aware in

  (* 3./4. TFB and XTFB architectures. *)
  let tfb = Hft_bist.Tfb.map g sched in
  let xtfb = Hft_bist.Xtfb.map g sched in

  let row tag tpgr sr bilbo cbilbo sessions area =
    [ tag; string_of_int tpgr; string_of_int sr; string_of_int bilbo;
      string_of_int cbilbo; sessions; area ]
  in
  let plan_row tag d (p : Hft_bist.Bilbo.plan) =
    row tag p.Hft_bist.Bilbo.n_tpgr p.Hft_bist.Bilbo.n_sr
      p.Hft_bist.Bilbo.n_bilbo p.Hft_bist.Bilbo.n_cbilbo
      (string_of_int (Hft_bist.Session.count d p))
      (Hft_util.Pretty.pct (Hft_bist.Bilbo.area_overhead d p))
  in
  Hft_util.Pretty.print
    ~title:"BIST architectures on diffeq (width 8)"
    ~header:[ "architecture"; "tpgr"; "sr"; "bilbo"; "cbilbo"; "sessions"; "reg area ovh" ]
    [
      plan_row "conventional + BILBO" d_conv p_conv;
      plan_row "BIST-aware assignment [3]" d_aware p_aware;
      row "TFB data path [31]" 0 0 tfb.Hft_bist.Tfb.n_test_registers 0 "-"
        (Printf.sprintf "%.0f abs" (Hft_bist.Tfb.area ~width tfb));
      row "XTFB data path [19]" xtfb.Hft_bist.Xtfb.n_tpgr_only
        xtfb.Hft_bist.Xtfb.n_srs 0 0 "-"
        (Printf.sprintf "%.0f abs" (Hft_bist.Xtfb.area ~width xtfb));
    ];

  (* Pseudorandom BIST campaign on the conventional data path. *)
  print_endline "\npseudorandom BIST campaign (per logic block):";
  let report =
    Hft_bist.Run.run ~checkpoints:[ 64; 256; 1024 ]
      ~source:Hft_bist.Run.Lfsr_source ~seed:3 d_conv
  in
  List.iter
    (fun b ->
      Printf.printf "  %-6s %4d gates %4d faults  coverage:"
        d_conv.Hft_rtl.Datapath.fus.(b.Hft_bist.Run.fu).Hft_rtl.Datapath.f_name
        b.Hft_bist.Run.n_gates b.Hft_bist.Run.n_faults;
      List.iter
        (fun (n, c) -> Printf.printf "  %d:%s" n (Hft_util.Pretty.pct c))
        b.Hft_bist.Run.coverage;
      Printf.printf "  signature 0x%X\n" b.Hft_bist.Run.signature)
    report.Hft_bist.Run.blocks;
  Printf.printf "fault-weighted total coverage: %s\n"
    (Hft_util.Pretty.pct report.Hft_bist.Run.total_coverage)
