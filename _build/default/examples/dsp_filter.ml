(* DSP filter study: the 5th-order elliptic wave filter through the
   partial-scan pipeline, measured down to gate-level sequential ATPG.

     dune exec examples/dsp_filter.exe *)

open Hft_cdfg
open Hft_core

let resources = [ (Op.Multiplier, 2); (Op.Alu, 2) ]

let () =
  let g = Bench_suite.ewf () in
  Printf.printf "elliptic wave filter: %d ops (%s), %d states\n\n"
    (Graph.n_ops g)
    (String.concat ", "
       (List.map
          (fun (c, n) -> Printf.sprintf "%d %s" n (Op.fu_class_to_string c))
          (Graph.op_profile g)))
    (List.length (Graph.state_vars g));

  (* Behavioural loop analysis. *)
  let sched = Hft_hls.List_sched.schedule g ~resources in
  let loops = Loops.enumerate g in
  Printf.printf "CDFG loops: %d\n" (List.length loops);
  List.iter
    (fun (tag, sel) ->
      Printf.printf "  %-22s %d scan vars -> %d scan registers\n" tag
        (List.length sel.Scan_vars.scan_vars)
        sel.Scan_vars.n_scan_registers)
    [ ("vertex-minimal (MFVS):", Scan_vars.select_mfvs g sched);
      ("effectiveness [33]:", Scan_vars.select_effective g sched);
      ("boundary vars [24]:", Scan_vars.select_boundary g sched) ];
  print_newline ();

  (* Conventional vs loop-aware synthesis. *)
  let conv = Flow.synthesize_conventional ~width:4 ~resources g in
  let scan = Flow.synthesize_for_partial_scan ~width:4 ~resources g in
  Hft_util.Pretty.print ~title:"flow comparison (width 4)"
    ~header:Flow.report_header
    [ Flow.report_row conv.Flow.report; Flow.report_row scan.Flow.report ];

  (* Gate level: sample faults, run sequential ATPG on both. *)
  let rng = Hft_util.Rng.create 41 in
  let atpg tag (r : Flow.result) scanned_sel =
    let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
    let nl = ex.Hft_gate.Expand.netlist in
    let faults =
      Hft_gate.Fault.collapsed nl
      |> List.filter (fun _ -> Hft_util.Rng.int rng 40 = 0)
    in
    let scanned = scanned_sel r ex in
    let stats =
      Hft_scan.Partial_scan.atpg ~backtrack_limit:40 ~max_frames:3 nl ~faults
        ~scanned
    in
    Printf.printf
      "  %-14s %3d faults sampled: coverage %5s, %6d backtracks, %d scan cells\n"
      tag (List.length faults)
      (Hft_util.Pretty.pct (Hft_gate.Seq_atpg.fault_coverage stats))
      stats.Hft_gate.Seq_atpg.backtracks (List.length scanned)
  in
  print_endline "\ngate-level sequential ATPG (sampled faults):";
  atpg "no DFT" conv (fun _ _ -> []);
  atpg "partial scan" scan (fun r ex ->
      (* scan cells = bits of the registers the flow annotated *)
      Array.to_list r.Flow.datapath.Hft_rtl.Datapath.regs
      |> List.concat_map (fun reg ->
             if reg.Hft_rtl.Datapath.r_kind = Hft_rtl.Datapath.Scan then
               Array.to_list ex.Hft_gate.Expand.reg_q.(reg.Hft_rtl.Datapath.r_id)
             else []))
