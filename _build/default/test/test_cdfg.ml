open Hft_cdfg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Op                                                                 *)
(* ------------------------------------------------------------------ *)

let test_op_eval () =
  let e k args = Op.eval ~width:8 k args in
  check_int "add wraps" 4 (e Op.Add [ 250; 10 ]);
  check_int "sub wraps" 246 (e Op.Sub [ 0; 10 ]);
  check_int "mul masks" 0 (e Op.Mul [ 16; 16 ]);
  check_int "lt signed" 1 (e Op.Lt [ 255; 1 ]) (* -1 < 1 *);
  check_int "gt" 1 (e Op.Gt [ 5; 3 ]);
  check_int "eq modulo width" 1 (e Op.Eq [ 256; 0 ]);
  check_int "and" 0b1000 (e Op.And [ 0b1100; 0b1010 ]);
  check_int "xor" 0b0110 (e Op.Xor [ 0b1100; 0b1010 ]);
  check_int "shl" 8 (e Op.Shl [ 1; 3 ]);
  check_int "shr" 1 (e Op.Shr [ 8; 3 ]);
  check_int "move" 42 (e Op.Move [ 42 ])

let test_op_identity () =
  check "add id" true (Op.identity_on Op.Add 0 = Some 0);
  check "mul id" true (Op.identity_on Op.Mul 1 = Some 1);
  check "sub right id" true (Op.identity_on Op.Sub 1 = Some 0);
  check "sub left no id" true (Op.identity_on Op.Sub 0 = None);
  check "lt no id" true (Op.identity_on Op.Lt 0 = None)

let test_op_transparency () =
  check "add transparent" true (Op.transparency Op.Add 0 = `Identity 0);
  check "mul transparent" true (Op.transparency Op.Mul 0 = `Identity 1);
  check "sub port1 invertible" true (Op.transparency Op.Sub 1 = `Invertible 0);
  check "lt opaque" true (Op.transparency Op.Lt 0 = `Opaque)

(* ------------------------------------------------------------------ *)
(* Builder / Graph                                                    *)
(* ------------------------------------------------------------------ *)

let tiny () =
  let b = Builder.create "tiny" in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let s = Builder.binop b Op.Add x y ~name:"s" in
  let p = Builder.binop b Op.Mul s y ~name:"p" in
  Builder.mark_output b p;
  Builder.finish b

let test_builder_basic () =
  let g = tiny () in
  check_int "vars" 4 (Graph.n_vars g);
  check_int "ops" 2 (Graph.n_ops g);
  check_int "inputs" 2 (List.length (Graph.inputs g));
  check_int "outputs" 1 (List.length (Graph.outputs g));
  let p = Graph.var_by_name g "p" in
  check "p is output" true (Graph.is_output g p);
  (match Graph.producer g p with
   | Some o -> check "producer kind" true (o.Graph.o_kind = Op.Mul)
   | None -> Alcotest.fail "no producer");
  let s = Graph.var_by_name g "s" in
  check_int "s consumers" 1 (List.length (Graph.consumers g s))

let test_run_semantics () =
  let g = tiny () in
  let r = Graph.run ~width:16 g ~inputs:[ ("x", 3); ("y", 4) ] () in
  check_int "p = (3+4)*4" 28 (Graph.value_of g r "p")

let test_diffeq_runs () =
  let g = Bench_suite.diffeq () in
  check_int "11 ops" 11 (Graph.n_ops g);
  check_int "3 states" 3 (List.length (Graph.state_vars g));
  let r =
    Graph.run ~width:16 g
      ~inputs:[ ("x", 1); ("y", 2); ("u", 3); ("dx", 1); ("a", 10) ]
      ()
  in
  (* xl = x+dx = 2; yl = y + u*dx = 5; ul = u - 3*x*u*dx - 3*y*dx = 3-9-6 *)
  check_int "xl" 2 (Graph.value_of g r "xl");
  check_int "yl" 5 (Graph.value_of g r "yl");
  check_int "ul" ((3 - 9 - 6) land 0xFFFF) (Graph.value_of g r "ul");
  check_int "cond" 1 (Graph.value_of g r "cond")

let test_op_graph_acyclic () =
  List.iter
    (fun (name, g) ->
      check (name ^ " intra-iteration acyclic") true
        (Hft_util.Digraph.is_acyclic (Graph.op_graph g)))
    (Bench_suite.all ())

let test_feedback_creates_cycles () =
  let g = Bench_suite.diffeq () in
  check "with feedback: cyclic" false
    (Hft_util.Digraph.is_acyclic (Graph.op_graph_with_feedback g))

let test_single_assignment_enforced () =
  let bad () =
    let vars =
      [| { Graph.v_id = 0; v_name = "x"; v_kind = Graph.V_input };
         { Graph.v_id = 1; v_name = "t"; v_kind = Graph.V_intermediate } |]
    in
    let ops =
      [| { Graph.o_id = 0; o_kind = Op.Add; o_args = [| 0; 0 |]; o_result = 1 };
         { Graph.o_id = 1; o_kind = Op.Add; o_args = [| 0; 1 |]; o_result = 1 } |]
    in
    Graph.make ~name:"bad" ~vars ~ops ~feedback:[] ~test_controls:[]
      ~test_observes:[]
  in
  check "double assignment rejected" true
    (match bad () with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_op_profile () =
  let g = Bench_suite.diffeq () in
  let p = Graph.op_profile g in
  check_int "6 multipliers" 6 (List.assoc Op.Multiplier p);
  check_int "4 alu" 4 (List.assoc Op.Alu p);
  check_int "1 cmp" 1 (List.assoc Op.Comparator p)

(* ------------------------------------------------------------------ *)
(* Schedule                                                           *)
(* ------------------------------------------------------------------ *)

let test_schedule_valid () =
  let g = tiny () in
  let s = Schedule.make g ~n_steps:2 [| 1; 2 |] in
  check "valid" true (Schedule.is_valid g s);
  check_int "finish of op0" 1 (Schedule.finish_step s 0)

let test_schedule_dependency_violation () =
  let g = tiny () in
  check "same-step chaining rejected" true
    (match Schedule.make g ~n_steps:2 [| 1; 1 |] with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_schedule_multicycle () =
  let g = tiny () in
  (* op0 takes 2 cycles: finishes at 2, so op1 at 3. *)
  let s = Schedule.make g ~n_steps:3 ~latency:[| 2; 1 |] [| 1; 3 |] in
  check "multicycle ok" true (Schedule.is_valid g s);
  check "op0 occupies steps 1-2" true
    (List.mem 0 (Schedule.ops_in_step s 1) && List.mem 0 (Schedule.ops_in_step s 2));
  check "chaining with latency rejected" true
    (match Schedule.make g ~n_steps:3 ~latency:[| 2; 1 |] [| 1; 2 |] with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_fu_demand () =
  let g = Bench_suite.diffeq () in
  (* ASAP-ish: all six multiplications spread over steps; construct a
     4-step schedule manually: see op order in Bench_suite.diffeq. *)
  let s = Schedule.make g ~n_steps:4 [| 1; 1; 1; 2; 1; 2; 3; 4; 2; 3; 2 |] in
  let d = Schedule.fu_demand g s in
  check "mult demand >= 3" true (List.assoc Op.Multiplier d >= 3)

(* ------------------------------------------------------------------ *)
(* Lifetime                                                           *)
(* ------------------------------------------------------------------ *)

let test_lifetimes_tiny () =
  let g = tiny () in
  let s = Schedule.make g ~n_steps:2 [| 1; 2 |] in
  let info = Lifetime.compute g s in
  let x = Graph.var_by_name g "x" in
  let sv = Graph.var_by_name g "s" in
  let p = Graph.var_by_name g "p" in
  let y = Graph.var_by_name g "y" in
  check "x alive [0,1)" true (info.Lifetime.intervals.(x) = Hft_util.Interval.make 0 1);
  check "y alive [0,2)" true (info.Lifetime.intervals.(y) = Hft_util.Interval.make 0 2);
  check "s alive [1,2)" true (info.Lifetime.intervals.(sv) = Hft_util.Interval.make 1 2);
  (* p produced at end of step 2 = boundary 2, output persists to
     n_steps = 2: interval [2,2) is empty by our convention — it leaves
     through the output port at the final boundary. *)
  check "x and s don't conflict" false (Lifetime.conflict info x sv);
  check "y and s conflict" true (Lifetime.conflict info y sv);
  ignore p

let test_lifetime_feedback_merge () =
  let g = Bench_suite.diffeq () in
  (* Any valid schedule. *)
  let s = Schedule.make g ~n_steps:4 [| 1; 1; 1; 2; 1; 2; 3; 4; 2; 3; 2 |] in
  let info = Lifetime.compute g s in
  let x = Graph.var_by_name g "x" in
  let xl = Graph.var_by_name g "xl" in
  check "x and xl merged" true (Hft_util.Union_find.same info.Lifetime.merged x xl);
  check "merged pair never conflicts" false (Lifetime.conflict info x xl);
  (* xl persists to the end as feedback source. *)
  check "xl lives to end" true
    (info.Lifetime.intervals.(xl).Hft_util.Interval.hi = 4)

let test_register_candidates () =
  let g = tiny () in
  let s = Schedule.make g ~n_steps:2 [| 1; 2 |] in
  let info = Lifetime.compute g s in
  let cands = Lifetime.register_candidates g info in
  (* x, y, s have non-empty lifetimes; p's conflict interval is empty
     but it is an output, so it still needs storage. *)
  check_int "four register classes" 4 (List.length cands)

(* ------------------------------------------------------------------ *)
(* Loops                                                              *)
(* ------------------------------------------------------------------ *)

let test_diffeq_loops () =
  let g = Bench_suite.diffeq () in
  let loops = Loops.enumerate g in
  check "has loops" true (List.length loops > 0);
  (* x, u, y each have a self-feedback loop. *)
  let x = Graph.var_by_name g "x" in
  let u = Graph.var_by_name g "u" in
  let y = Graph.var_by_name g "y" in
  check "x on a loop" true (List.exists (fun l -> List.mem x l.Loops.vars) loops);
  check "u on a loop" true (List.exists (fun l -> List.mem u l.Loops.vars) loops);
  check "y on a loop" true (List.exists (fun l -> List.mem y l.Loops.vars) loops)

let test_loop_breaking () =
  let g = Bench_suite.diffeq () in
  let loops = Loops.enumerate g in
  let x = Graph.var_by_name g "x" in
  let xl = Graph.var_by_name g "xl" in
  let u = Graph.var_by_name g "u" in
  let ul = Graph.var_by_name g "ul" in
  let y = Graph.var_by_name g "y" in
  let yl = Graph.var_by_name g "yl" in
  (* Scanning all six state vars must break everything. *)
  check_int "all loops broken" 0
    (List.length (Loops.unbroken loops [ x; xl; u; ul; y; yl ]));
  (* Scanning only x leaves u and y loops. *)
  check "x alone insufficient" true
    (List.length (Loops.unbroken loops [ x; xl ]) > 0)

let test_fig1_no_cdfg_loops () =
  let g = Paper_fig1.graph () in
  check_int "figure 1 CDFG is loop-free" 0 (List.length (Loops.enumerate g))

let test_fir_loops () =
  let g = Bench_suite.fir8 () in
  let loops = Loops.enumerate g in
  (* The delay line is a chain ending back at z0 <- x: moves z_{i-1} ->
     z_i do not cycle; but wait, z taps shift forward so there IS no
     cycle through the tap chain — each tap's value comes from the
     previous tap, and x is a fresh input.  The graph has no loop. *)
  check_int "fir delay line is acyclic" 0 (List.length loops)

let test_lattice_loops () =
  let g = Bench_suite.ar_lattice () in
  check "lattice has loops" true (List.length (Loops.enumerate g) > 0)

(* ------------------------------------------------------------------ *)
(* Transform                                                          *)
(* ------------------------------------------------------------------ *)

let test_deflection_preserves_behaviour () =
  let g = Bench_suite.diffeq () in
  let s1 = Graph.var_by_name g "s1" in
  let consumer =
    match Graph.consumers g s1 with o :: _ -> o.Graph.o_id | [] -> assert false
  in
  let g' = Transform.insert_deflection g ~var:s1 ~consumer in
  check_int "one extra op" (Graph.n_ops g + 1) (Graph.n_ops g');
  let rng = Hft_util.Rng.create 11 in
  check "equivalent" true (Transform.equivalent ~width:16 ~trials:50 rng g g')

let test_deflection_bad_consumer () =
  let g = tiny () in
  let x = Graph.var_by_name g "x" in
  check "wrong consumer rejected" true
    (match Transform.insert_deflection g ~var:x ~consumer:1 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_test_points () =
  let g = tiny () in
  let s = Graph.var_by_name g "s" in
  let g' = Transform.add_test_points g ~controls:[ s ] ~observes:[ s ] in
  check "control recorded" true (List.mem s g'.Graph.test_controls);
  check "observe recorded" true (List.mem s g'.Graph.test_observes)

let prop_deflection_equivalence =
  QCheck.Test.make ~name:"random deflections preserve behaviour" ~count:30
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g =
        Bench_suite.random rng ~n_inputs:4 ~n_ops:12 ~p_feedback:0.2
      in
      (* Pick a random (var, consumer) pair. *)
      let edges =
        List.concat_map
          (fun o ->
            Array.to_list o.Graph.o_args
            |> List.filter_map (fun a ->
                   match (Graph.var g a).Graph.v_kind with
                   | Graph.V_const _ -> None
                   | _ -> Some (a, o.Graph.o_id)))
          (List.init (Graph.n_ops g) (Graph.op g))
      in
      match edges with
      | [] -> true
      | _ ->
        let v, c = List.nth edges (Hft_util.Rng.int rng (List.length edges)) in
        let g' = Transform.insert_deflection g ~var:v ~consumer:c in
        Transform.equivalent ~width:16 ~trials:20 rng g g')

(* ------------------------------------------------------------------ *)
(* Testability                                                        *)
(* ------------------------------------------------------------------ *)

let test_testability_tiny () =
  let g = tiny () in
  let cls = Testability.analyze g in
  let x = Graph.var_by_name g "x" in
  let s = Graph.var_by_name g "s" in
  let p = Graph.var_by_name g "p" in
  check "input fully controllable" true (cls.Testability.controllability.(x) = Testability.Full);
  check "s fully controllable (add)" true (cls.Testability.controllability.(s) = Testability.Full);
  (* p = s * y: controllable via s with y settable to 1. *)
  check "p fully controllable" true (cls.Testability.controllability.(p) = Testability.Full);
  check "output fully observable" true (cls.Testability.observability.(p) = Testability.Full);
  (* s observable through the multiply by making y = 1. *)
  check "s observable" true (cls.Testability.observability.(s) = Testability.Full)

let test_testability_opaque_sink () =
  (* v feeds only a comparator: observability of v is partial. *)
  let b = Builder.create "cmp_sink" in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let s = Builder.binop b Op.Add x y ~name:"s" in
  let c = Builder.binop b Op.Lt s y ~name:"c" in
  Builder.mark_output b c;
  let g = Builder.finish b in
  let cls = Testability.analyze g in
  let s = Graph.var_by_name g "s" in
  check "comparator sink partial observability" true
    (cls.Testability.observability.(s) = Testability.Partial)

let test_testability_repair () =
  let b = Builder.create "hard" in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let s = Builder.binop b Op.Add x y ~name:"s" in
  let c = Builder.binop b Op.Lt s y ~name:"c" in
  Builder.mark_output b c;
  let g = Builder.finish b in
  let cls = Testability.analyze g in
  let controls, observes = Testability.repair_points g cls in
  let g' = Transform.add_test_points g ~controls ~observes in
  let cls' = Testability.analyze g' in
  check_int "no hard variables after repair" 0
    (List.length (Testability.hard_variables g' cls'))

(* ------------------------------------------------------------------ *)
(* Paper figure 1                                                     *)
(* ------------------------------------------------------------------ *)

let test_fig1_schedules_valid () =
  let g = Paper_fig1.graph () in
  check "schedule (b) valid" true (Schedule.is_valid g (Paper_fig1.schedule_b g));
  check "schedule (c) valid" true (Schedule.is_valid g (Paper_fig1.schedule_c g))

let test_fig1_resource_constraint () =
  let g = Paper_fig1.graph () in
  List.iter
    (fun sched ->
      let d = Schedule.fu_demand g sched in
      check "two adders suffice" true (List.assoc Op.Alu d <= 2))
    [ Paper_fig1.schedule_b g; Paper_fig1.schedule_c g ]

let test_fig1_semantics () =
  let g = Paper_fig1.graph () in
  let r =
    Graph.run ~width:16 g
      ~inputs:[ ("a", 1); ("b", 2); ("d", 3); ("f", 4); ("p", 5); ("q", 6); ("g", 7) ]
      ()
  in
  check_int "t = a+b+d+f" 10 (Graph.value_of g r "t");
  check_int "s = p+q+g" 18 (Graph.value_of g r "s")

(* ------------------------------------------------------------------ *)
(* Bench suite sanity                                                 *)
(* ------------------------------------------------------------------ *)

let test_suite_profiles () =
  let profile name =
    Graph.op_profile (Bench_suite.by_name name)
  in
  check_int "ewf muls" 8 (List.assoc Op.Multiplier (profile "ewf"));
  check_int "ewf adds" 20 (List.assoc Op.Alu (profile "ewf"));
  check_int "fir muls" 8 (List.assoc Op.Multiplier (profile "fir8"));
  check_int "iir muls" 10 (List.assoc Op.Multiplier (profile "iir4"));
  check_int "lattice muls" 8 (List.assoc Op.Multiplier (profile "ar_lattice"))

let test_suite_states () =
  let states name = List.length (Graph.state_vars (Bench_suite.by_name name)) in
  check_int "ewf states" 5 (states "ewf");
  check_int "fir states" 7 (states "fir8");
  check_int "iir states" 4 (states "iir4");
  check_int "lattice states" 4 (states "ar_lattice");
  check_int "tseng stateless" 0 (states "tseng")

let test_fir_semantics () =
  let g = Bench_suite.fir8 () in
  (* All taps zero: y = c0 * x. *)
  let r =
    Graph.run ~width:16 g
      ~inputs:
        (("x", 3)
         :: List.init 8 (fun i -> (Printf.sprintf "c%d" i), if i = 0 then 5 else 1))
      ()
  in
  check_int "y = 15 with empty delay line" 15 (Graph.value_of g r "a7")

let test_dct4_semantics () =
  let g = Bench_suite.dct4 () in
  (* With c0=c1=c2=c3=1: y0 = (x0+x3)+(x1+x2), y1 = (x0-x3)+(x1-x2). *)
  let ins =
    [ ("x0", 5); ("x1", 3); ("x2", 2); ("x3", 1);
      ("c0", 1); ("c1", 1); ("c2", 1); ("c3", 1) ]
  in
  let r = Graph.run ~width:16 g ~inputs:ins () in
  check_int "y0" 11 (Graph.value_of g r "y0");
  check_int "y1" 5 (Graph.value_of g r "y1");
  check_int "y2 = (x0+x3)-(x1+x2)" 1 (Graph.value_of g r "y2")

let test_lms4_semantics () =
  let g = Bench_suite.lms4 () in
  (* Zero taps and coefficients except c0=2: y = 2x; e = d - y;
     coefficient update cn0 = c0 + mu*e*x. *)
  let r =
    Graph.run ~width:16 g
      ~inputs:[ ("x", 3); ("d", 10); ("mu", 1) ]
      ~state:[ ("c0", 2) ] ()
  in
  check_int "y = 6" 6 (Graph.value_of g r "y");
  check_int "e = 4" 4 (Graph.value_of g r "e");
  check_int "cn0 = 2 + 4*3" 14 (Graph.value_of g r "cn0")

let test_lms4_loops_rich () =
  let g = Bench_suite.lms4 () in
  let loops = Loops.enumerate g in
  (* Four coefficient loops at least. *)
  check "at least 4 loops" true (List.length loops >= 4)

let prop_random_graphs_wellformed =
  QCheck.Test.make ~name:"random CDFGs validate and run" ~count:100
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:3 ~n_ops:15 ~p_feedback:0.15 in
      let ins =
        List.map (fun v -> (v.Graph.v_name, Hft_util.Rng.int rng 100))
          (Graph.inputs g)
      in
      let r = Graph.run ~width:16 g ~inputs:ins () in
      List.length r = Graph.n_vars g)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hft_cdfg"
    [
      ( "op",
        [
          Alcotest.test_case "eval" `Quick test_op_eval;
          Alcotest.test_case "identity elements" `Quick test_op_identity;
          Alcotest.test_case "transparency" `Quick test_op_transparency;
        ] );
      ( "graph",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basic;
          Alcotest.test_case "run semantics" `Quick test_run_semantics;
          Alcotest.test_case "diffeq evaluates" `Quick test_diffeq_runs;
          Alcotest.test_case "op graphs acyclic" `Quick test_op_graph_acyclic;
          Alcotest.test_case "feedback cycles" `Quick test_feedback_creates_cycles;
          Alcotest.test_case "single assignment" `Quick test_single_assignment_enforced;
          Alcotest.test_case "op profile" `Quick test_op_profile;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "valid" `Quick test_schedule_valid;
          Alcotest.test_case "dependency violation" `Quick test_schedule_dependency_violation;
          Alcotest.test_case "multicycle" `Quick test_schedule_multicycle;
          Alcotest.test_case "fu demand" `Quick test_fu_demand;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "tiny lifetimes" `Quick test_lifetimes_tiny;
          Alcotest.test_case "feedback merge" `Quick test_lifetime_feedback_merge;
          Alcotest.test_case "register candidates" `Quick test_register_candidates;
        ] );
      ( "loops",
        [
          Alcotest.test_case "diffeq loops" `Quick test_diffeq_loops;
          Alcotest.test_case "loop breaking" `Quick test_loop_breaking;
          Alcotest.test_case "fig1 loop-free" `Quick test_fig1_no_cdfg_loops;
          Alcotest.test_case "fir acyclic" `Quick test_fir_loops;
          Alcotest.test_case "lattice loops" `Quick test_lattice_loops;
        ] );
      ( "transform",
        [
          Alcotest.test_case "deflection equivalence" `Quick test_deflection_preserves_behaviour;
          Alcotest.test_case "bad consumer" `Quick test_deflection_bad_consumer;
          Alcotest.test_case "test points" `Quick test_test_points;
          qt prop_deflection_equivalence;
        ] );
      ( "testability",
        [
          Alcotest.test_case "tiny classification" `Quick test_testability_tiny;
          Alcotest.test_case "opaque sink" `Quick test_testability_opaque_sink;
          Alcotest.test_case "repair" `Quick test_testability_repair;
        ] );
      ( "paper_fig1",
        [
          Alcotest.test_case "schedules valid" `Quick test_fig1_schedules_valid;
          Alcotest.test_case "resource constraint" `Quick test_fig1_resource_constraint;
          Alcotest.test_case "semantics" `Quick test_fig1_semantics;
        ] );
      ( "bench_suite",
        [
          Alcotest.test_case "profiles" `Quick test_suite_profiles;
          Alcotest.test_case "states" `Quick test_suite_states;
          Alcotest.test_case "fir semantics" `Quick test_fir_semantics;
          Alcotest.test_case "dct4 semantics" `Quick test_dct4_semantics;
          Alcotest.test_case "lms4 semantics" `Quick test_lms4_semantics;
          Alcotest.test_case "lms4 loops" `Quick test_lms4_loops_rich;
          qt prop_random_graphs_wellformed;
        ] );
    ]
